(** Admission control: a global in-flight memory budget and per-tenant
    quotas deciding which engine serves each job.

    The server only ever holds payload bytes for jobs it has admitted;
    {!admit} charges a job's footprint against the global budget the
    moment it is accepted and {!release} returns it once the reply is
    written, so [in_flight_bytes] bounds the server's live matrix bytes
    (queued {e and} executing) at all times — the service-level
    analogue of the ooc engine's per-job window budget.

    Routing (per PAPER §"decomposition under a memory budget", applied
    at the tenant level): a job whose footprint fits its tenant's quota
    runs on the in-memory fused engine; a bigger one is demoted to the
    out-of-core engine with the tenant's [window_bytes] residency
    allowance, so a tenant can always submit matrices far beyond its
    quota without holding more than its window of mapped file at a
    time. A job that would push the {e global} budget over is refused
    outright — the server replies {!Protocol.Busy} and the client
    retries.

    Thread-safe: acceptor threads admit while the dispatcher releases. *)

type tenant = { name : string; quota_bytes : int; window_bytes : int }

type t

val create :
  ?budget_bytes:int ->
  ?default_quota_bytes:int ->
  ?default_window_bytes:int ->
  ?tenants:tenant list ->
  unit ->
  t
(** [budget_bytes] (default 1 GiB) caps global in-flight payload bytes.
    Tenants not in [tenants] get [default_quota_bytes] (default 16 MiB)
    and [default_window_bytes] (default 4 MiB).
    @raise Invalid_argument on non-positive sizes. *)

type route =
  | Fused  (** in-memory, coalescable into {!Xpose_cpu.Fused_f64} batches *)
  | Ooc of { window_bytes : int }
      (** staged to a file and run by {!Xpose_ooc.Ooc_f64} under the
          tenant's residency window *)

type decision = Admit of route | Reject of Protocol.reject_reason

val admit : t -> tenant:string -> bytes:int -> decision
(** Decide one job of [bytes] payload. [Admit] charges the budget —
    every [Admit] must be paired with exactly one {!release}. *)

val release : t -> bytes:int -> unit

val in_flight_bytes : t -> int
val budget_bytes : t -> int

val tenant_of : t -> string -> tenant
(** The tenant's configured (or default) limits. *)
