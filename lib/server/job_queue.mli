(** Per-priority in-order job queues with count and byte limits.

    Three FIFO lanes (one per {!Protocol.priority}); {!pop} always
    serves the highest-priority non-empty lane, FIFO within it, so a
    lone high-priority job overtakes any backlog of normal traffic but
    jobs of equal priority complete in submission order.

    {!offer} enforces the queue-shaping half of admission control: a
    lane at its job-count cap, or a queue already holding its byte cap
    of payloads, turns the job away — the server answers with an
    explicit {!Protocol.Busy} backpressure reply instead of queueing
    without bound. (The global in-flight memory budget, which also
    covers jobs already dispatched to the engines, lives in
    {!Admission}.)

    Not synchronized: the server guards each queue with its own mutex.
    All operations are O(1). *)

type 'a t

val create : ?max_jobs:int -> ?max_bytes:int -> unit -> 'a t
(** [max_jobs] (default 1024) caps each priority lane's job count;
    [max_bytes] (default 256 MiB) caps the payload bytes queued across
    all lanes. @raise Invalid_argument if either is < 1. *)

val offer :
  'a t ->
  priority:Protocol.priority ->
  bytes:int ->
  'a ->
  [ `Ok | `Queue_full | `Bytes_full ]
(** Append to the priority's lane, or refuse without enqueueing. *)

val pop : 'a t -> (Protocol.priority * int * 'a) option
(** Highest-priority, oldest job, with its accounted byte size;
    releases its bytes/count from the limits. *)

val length : 'a t -> int
(** Total queued jobs across lanes. *)

val bytes : 'a t -> int
(** Total queued payload bytes. *)

val depth : 'a t -> Protocol.priority -> int
(** Queued jobs in one lane. *)
