type 'a lane = { q : (int * 'a) Queue.t }

type 'a t = {
  max_jobs : int;
  max_bytes : int;
  lanes : 'a lane array; (* indexed by priority: high, normal, low *)
  mutable total_bytes : int;
}

let lane_index = function
  | Protocol.High -> 0
  | Protocol.Normal -> 1
  | Protocol.Low -> 2

let lane_priority = [| Protocol.High; Protocol.Normal; Protocol.Low |]

let create ?(max_jobs = 1024) ?(max_bytes = 256 * 1024 * 1024) () =
  if max_jobs < 1 then invalid_arg "Job_queue.create: max_jobs must be >= 1";
  if max_bytes < 1 then invalid_arg "Job_queue.create: max_bytes must be >= 1";
  {
    max_jobs;
    max_bytes;
    lanes = Array.init 3 (fun _ -> { q = Queue.create () });
    total_bytes = 0;
  }

let offer t ~priority ~bytes job =
  let lane = t.lanes.(lane_index priority) in
  if Queue.length lane.q >= t.max_jobs then `Queue_full
  else if t.total_bytes + bytes > t.max_bytes then `Bytes_full
  else begin
    Queue.push (bytes, job) lane.q;
    t.total_bytes <- t.total_bytes + bytes;
    `Ok
  end

let pop t =
  let rec go i =
    if i >= Array.length t.lanes then None
    else
      let lane = t.lanes.(i) in
      match Queue.take_opt lane.q with
      | Some (bytes, job) ->
          t.total_bytes <- t.total_bytes - bytes;
          Some (lane_priority.(i), bytes, job)
      | None -> go (i + 1)
  in
  go 0

let length t =
  Array.fold_left (fun acc lane -> acc + Queue.length lane.q) 0 t.lanes

let bytes t = t.total_bytes

let depth t priority = Queue.length t.lanes.(lane_index priority).q
