module S = Xpose_core.Storage.Float64

type buf = S.t

type priority = High | Normal | Low

let priority_to_string = function
  | High -> "high"
  | Normal -> "normal"
  | Low -> "low"

let priority_of_string = function
  | "high" -> Some High
  | "normal" -> Some Normal
  | "low" -> Some Low
  | _ -> None

type reject_reason = Queue_full | Budget_exhausted

type request =
  | Transpose of {
      id : int;
      trace : int;
      tenant : string;
      priority : priority;
      m : int;
      n : int;
      payload : buf;
    }
  | Stats of { id : int }
  | Stats_text of { id : int }

type response =
  | Result of { id : int; m : int; n : int; payload : buf }
  | Busy of {
      id : int;
      reason : reject_reason;
      queued_jobs : int;
      queued_bytes : int;
    }
  | Error_reply of { id : int; message : string }
  | Stats_reply of { id : int; json : string }

type error =
  [ `Truncated | `Oversized of int | `Bad_tag of int | `Corrupt of string ]

let error_to_string : error -> string = function
  | `Truncated -> "truncated frame"
  | `Oversized n -> Printf.sprintf "oversized frame (%d bytes)" n
  | `Bad_tag t -> Printf.sprintf "unknown message tag 0x%02x" t
  | `Corrupt msg -> Printf.sprintf "corrupt frame: %s" msg

let default_max_frame_bytes = 64 * 1024 * 1024

(* Message tags. Requests are < 0x80, responses >= 0x80. *)
let tag_transpose = 0x01
let tag_stats = 0x02
let tag_stats_text = 0x03
let tag_result = 0x81
let tag_busy = 0x82
let tag_error = 0x83
let tag_stats_reply = 0x84

let priority_byte = function High -> 0 | Normal -> 1 | Low -> 2

let priority_of_byte = function
  | 0 -> Some High
  | 1 -> Some Normal
  | 2 -> Some Low
  | _ -> None

let reason_byte = function Queue_full -> 0 | Budget_exhausted -> 1

let reason_of_byte = function
  | 0 -> Some Queue_full
  | 1 -> Some Budget_exhausted
  | _ -> None

(* -- little write/read helpers over a growing Buffer / a Bytes cursor -- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Protocol: u32 out of range";
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let put_u16 b v =
  if v < 0 || v > 0xffff then invalid_arg "Protocol: u16 out of range";
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let put_string16 b s =
  put_u16 b (String.length s);
  Buffer.add_string b s

let put_string32 b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_payload b (a : buf) =
  let len = Bigarray.Array1.dim a in
  let raw = Bytes.create (len * 8) in
  for i = 0 to len - 1 do
    Bytes.set_int64_le raw (i * 8)
      (Int64.bits_of_float (Bigarray.Array1.unsafe_get a i))
  done;
  Buffer.add_bytes b raw

(* A decode cursor. Reads return [Error `Truncated] past the end rather
   than raising, threaded with [let*]. *)
type cursor = { body : Bytes.t; mutable pos : int }

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let take cur n : (int, error) result =
  if n < 0 || cur.pos + n > Bytes.length cur.body then Error `Truncated
  else begin
    let p = cur.pos in
    cur.pos <- p + n;
    Ok p
  end

let get_u8 cur =
  let* p = take cur 1 in
  Ok (Char.code (Bytes.get cur.body p))

let get_u16 cur =
  let* p = take cur 2 in
  Ok ((Char.code (Bytes.get cur.body p) lsl 8)
     lor Char.code (Bytes.get cur.body (p + 1)))

let get_u32 cur =
  let* p = take cur 4 in
  Ok ((Char.code (Bytes.get cur.body p) lsl 24)
     lor (Char.code (Bytes.get cur.body (p + 1)) lsl 16)
     lor (Char.code (Bytes.get cur.body (p + 2)) lsl 8)
     lor Char.code (Bytes.get cur.body (p + 3)))

let get_string16 cur =
  let* len = get_u16 cur in
  let* p = take cur len in
  Ok (Bytes.sub_string cur.body p len)

let get_string32 ~max_bytes cur =
  let* len = get_u32 cur in
  if len > max_bytes then Error (`Oversized len)
  else
    let* p = take cur len in
    Ok (Bytes.sub_string cur.body p len)

let get_payload ~max_bytes cur ~m ~n =
  (* [m] and [n] are u32 fields >= 1, so [m * n * 8] can exceed
     [max_int] on 64-bit (and wrap): bound with division first.
     [m > max_bytes / 8 / n] is exact — both sides integral — and once
     it holds the product is known oversized without computing it. *)
  if m > max_bytes / 8 / n then
    Error (`Oversized (if m > max_int / 8 / n then max_int else m * n * 8))
  else
    let elems = m * n in
    let* p = take cur (elems * 8) in
    let a = S.create elems in
    for i = 0 to elems - 1 do
      Bigarray.Array1.unsafe_set a i
        (Int64.float_of_bits (Bytes.get_int64_le cur.body (p + (i * 8))))
    done;
    Ok a

let done_ cur v =
  if cur.pos <> Bytes.length cur.body then
    Error (`Corrupt "trailing bytes after message")
  else Ok v

(* -- requests -------------------------------------------------------- *)

let encode_request = function
  | Transpose { id; trace; tenant; priority; m; n; payload } ->
      if Bigarray.Array1.dim payload <> m * n then
        invalid_arg "Protocol.encode_request: payload size is not m * n";
      let b = Buffer.create ((m * n * 8) + 64) in
      put_u8 b tag_transpose;
      put_u32 b id;
      put_u8 b (priority_byte priority);
      put_u32 b trace;
      put_string16 b tenant;
      put_u32 b m;
      put_u32 b n;
      put_payload b payload;
      Buffer.to_bytes b
  | Stats { id } ->
      let b = Buffer.create 8 in
      put_u8 b tag_stats;
      put_u32 b id;
      Buffer.to_bytes b
  | Stats_text { id } ->
      let b = Buffer.create 8 in
      put_u8 b tag_stats_text;
      put_u32 b id;
      Buffer.to_bytes b

let get_priority cur =
  let* pb = get_u8 cur in
  match priority_of_byte pb with
  | Some p -> Ok p
  | None -> Error (`Corrupt (Printf.sprintf "bad priority byte %d" pb))

let get_reason cur =
  let* rb = get_u8 cur in
  match reason_of_byte rb with
  | Some r -> Ok r
  | None -> Error (`Corrupt (Printf.sprintf "bad reject reason %d" rb))

let get_shape cur =
  let* m = get_u32 cur in
  let* n = get_u32 cur in
  if m < 1 || n < 1 then
    Error (`Corrupt (Printf.sprintf "non-positive shape %dx%d" m n))
  else Ok (m, n)

let decode_request ?(max_bytes = default_max_frame_bytes) body :
    (request, error) result =
  let cur = { body; pos = 0 } in
  let* tag = get_u8 cur in
  if tag = tag_transpose then begin
    let* id = get_u32 cur in
    let* priority = get_priority cur in
    let* trace = get_u32 cur in
    let* tenant = get_string16 cur in
    let* m, n = get_shape cur in
    let* payload = get_payload ~max_bytes cur ~m ~n in
    done_ cur (Transpose { id; trace; tenant; priority; m; n; payload })
  end
  else if tag = tag_stats then begin
    let* id = get_u32 cur in
    done_ cur (Stats { id })
  end
  else if tag = tag_stats_text then begin
    let* id = get_u32 cur in
    done_ cur (Stats_text { id })
  end
  else Error (`Bad_tag tag)

(* -- responses ------------------------------------------------------- *)

let encode_response = function
  | Result { id; m; n; payload } ->
      if Bigarray.Array1.dim payload <> m * n then
        invalid_arg "Protocol.encode_response: payload size is not m * n";
      let b = Buffer.create ((m * n * 8) + 32) in
      put_u8 b tag_result;
      put_u32 b id;
      put_u32 b m;
      put_u32 b n;
      put_payload b payload;
      Buffer.to_bytes b
  | Busy { id; reason; queued_jobs; queued_bytes } ->
      let b = Buffer.create 16 in
      put_u8 b tag_busy;
      put_u32 b id;
      put_u8 b (reason_byte reason);
      put_u32 b queued_jobs;
      put_u32 b queued_bytes;
      Buffer.to_bytes b
  | Error_reply { id; message } ->
      let b = Buffer.create (16 + String.length message) in
      put_u8 b tag_error;
      put_u32 b id;
      put_string16 b message;
      Buffer.to_bytes b
  | Stats_reply { id; json } ->
      let b = Buffer.create (16 + String.length json) in
      put_u8 b tag_stats_reply;
      put_u32 b id;
      put_string32 b json;
      Buffer.to_bytes b

let decode_response ?(max_bytes = default_max_frame_bytes) body :
    (response, error) result =
  let cur = { body; pos = 0 } in
  let* tag = get_u8 cur in
  if tag = tag_result then begin
    let* id = get_u32 cur in
    let* m, n = get_shape cur in
    let* payload = get_payload ~max_bytes cur ~m ~n in
    done_ cur (Result { id; m; n; payload })
  end
  else if tag = tag_busy then begin
    let* id = get_u32 cur in
    let* reason = get_reason cur in
    let* queued_jobs = get_u32 cur in
    let* queued_bytes = get_u32 cur in
    done_ cur (Busy { id; reason; queued_jobs; queued_bytes })
  end
  else if tag = tag_error then begin
    let* id = get_u32 cur in
    let* message = get_string16 cur in
    done_ cur (Error_reply { id; message })
  end
  else if tag = tag_stats_reply then begin
    let* id = get_u32 cur in
    let* json = get_string32 ~max_bytes cur in
    done_ cur (Stats_reply { id; json })
  end
  else Error (`Bad_tag tag)

let request_id = function
  | Transpose { id; _ } | Stats { id } | Stats_text { id } -> id

let response_id = function
  | Result { id; _ }
  | Busy { id; _ }
  | Error_reply { id; _ }
  | Stats_reply { id; _ } ->
      id

let equal_buf (a : buf) (b : buf) =
  let la = Bigarray.Array1.dim a and lb = Bigarray.Array1.dim b in
  la = lb
  &&
  let ok = ref true in
  for i = 0 to la - 1 do
    if
      Int64.bits_of_float (Bigarray.Array1.unsafe_get a i)
      <> Int64.bits_of_float (Bigarray.Array1.unsafe_get b i)
    then ok := false
  done;
  !ok

let equal_request a b =
  match (a, b) with
  | ( Transpose { id; trace; tenant; priority; m; n; payload },
      Transpose
        {
          id = id';
          trace = trace';
          tenant = tenant';
          priority = priority';
          m = m';
          n = n';
          payload = payload';
        } ) ->
      id = id' && trace = trace' && tenant = tenant' && priority = priority'
      && m = m' && n = n'
      && equal_buf payload payload'
  | Stats { id }, Stats { id = id' } -> id = id'
  | Stats_text { id }, Stats_text { id = id' } -> id = id'
  | _, _ -> false

let equal_response a b =
  match (a, b) with
  | ( Result { id; m; n; payload },
      Result { id = id'; m = m'; n = n'; payload = payload' } ) ->
      id = id' && m = m' && n = n' && equal_buf payload payload'
  | ( Busy { id; reason; queued_jobs; queued_bytes },
      Busy
        {
          id = id';
          reason = reason';
          queued_jobs = qj';
          queued_bytes = qb';
        } ) ->
      id = id' && reason = reason' && queued_jobs = qj' && queued_bytes = qb'
  | Error_reply { id; message }, Error_reply { id = id'; message = msg' } ->
      id = id' && message = msg'
  | Stats_reply { id; json }, Stats_reply { id = id'; json = json' } ->
      id = id' && json = json'
  | _, _ -> false

(* -- framing --------------------------------------------------------- *)

let write_all fd bytes pos len =
  let pos = ref pos and remaining = ref len in
  while !remaining > 0 do
    let n = Unix.write fd bytes !pos !remaining in
    pos := !pos + n;
    remaining := !remaining - n
  done

let write_frame fd body =
  let len = Bytes.length body in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int len);
  write_all fd header 0 4;
  write_all fd body 0 len

(* Returns [`Eof] only when the close lands exactly between frames. *)
let read_all fd bytes len =
  let pos = ref 0 in
  let eof = ref false in
  while !pos < len && not !eof do
    let n = Unix.read fd bytes !pos (len - !pos) in
    if n = 0 then eof := true else pos := !pos + n
  done;
  !pos

let read_frame ?(max_bytes = default_max_frame_bytes) fd =
  let header = Bytes.create 4 in
  match read_all fd header 4 with
  | 0 -> Error `Eof
  | k when k < 4 -> Error `Truncated
  | _ ->
      let len = Int32.to_int (Bytes.get_int32_be header 0) in
      if len < 0 || len > max_bytes then Error (`Oversized len)
      else
        let body = Bytes.create len in
        if read_all fd body len < len then Error `Truncated
        else Ok body
