type tenant = { name : string; quota_bytes : int; window_bytes : int }

type t = {
  budget : int;
  default_quota : int;
  default_window : int;
  tenants : (string, tenant) Hashtbl.t;
  mu : Mutex.t;
  mutable in_flight : int;
}

type route = Fused | Ooc of { window_bytes : int }
type decision = Admit of route | Reject of Protocol.reject_reason

let m_fused = lazy (Xpose_obs.Metrics.counter "server.admit.fused")
let m_ooc = lazy (Xpose_obs.Metrics.counter "server.admit.ooc")
let m_rejected = lazy (Xpose_obs.Metrics.counter "server.admit.rejected")
let g_inflight = lazy (Xpose_obs.Metrics.gauge "server.inflight_bytes")

let create ?(budget_bytes = 1024 * 1024 * 1024)
    ?(default_quota_bytes = 16 * 1024 * 1024)
    ?(default_window_bytes = 4 * 1024 * 1024) ?(tenants = []) () =
  if budget_bytes < 1 then
    invalid_arg "Admission.create: budget_bytes must be >= 1";
  if default_quota_bytes < 1 then
    invalid_arg "Admission.create: default_quota_bytes must be >= 1";
  if default_window_bytes < 8 then
    invalid_arg "Admission.create: default_window_bytes must be >= 8";
  let table = Hashtbl.create 16 in
  List.iter
    (fun tn ->
      if tn.quota_bytes < 1 || tn.window_bytes < 8 then
        invalid_arg
          (Printf.sprintf "Admission.create: tenant %S has non-positive limits"
             tn.name);
      Hashtbl.replace table tn.name tn)
    tenants;
  {
    budget = budget_bytes;
    default_quota = default_quota_bytes;
    default_window = default_window_bytes;
    tenants = table;
    mu = Mutex.create ();
    in_flight = 0;
  }

let tenant_of t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tn -> tn
  | None ->
      { name; quota_bytes = t.default_quota; window_bytes = t.default_window }

let admit t ~tenant ~bytes =
  let tn = tenant_of t tenant in
  Mutex.lock t.mu;
  let decision =
    if t.in_flight + bytes > t.budget then Reject Protocol.Budget_exhausted
    else begin
      t.in_flight <- t.in_flight + bytes;
      if bytes <= tn.quota_bytes then Admit Fused
      else Admit (Ooc { window_bytes = tn.window_bytes })
    end
  in
  let now = t.in_flight in
  Mutex.unlock t.mu;
  Xpose_obs.Metrics.set_gauge (Lazy.force g_inflight) (float_of_int now);
  (match decision with
  | Admit Fused -> Xpose_obs.Metrics.incr (Lazy.force m_fused)
  | Admit (Ooc _) -> Xpose_obs.Metrics.incr (Lazy.force m_ooc)
  | Reject _ -> Xpose_obs.Metrics.incr (Lazy.force m_rejected));
  decision

let release t ~bytes =
  Mutex.lock t.mu;
  t.in_flight <- t.in_flight - bytes;
  assert (t.in_flight >= 0);
  let now = t.in_flight in
  Mutex.unlock t.mu;
  Xpose_obs.Metrics.set_gauge (Lazy.force g_inflight) (float_of_int now)

let in_flight_bytes t =
  Mutex.lock t.mu;
  let v = t.in_flight in
  Mutex.unlock t.mu;
  v

let budget_bytes t = t.budget
