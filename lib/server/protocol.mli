(** The job server's wire protocol: length-framed binary messages.

    A connection carries a stream of frames in each direction. Every
    frame is a 4-byte big-endian body length followed by the body; the
    body's first byte is a message tag. Integers are big-endian;
    float64 payloads travel as IEEE-754 bit patterns, row-major, and
    are decoded straight into a {!Xpose_core.Storage.Float64} buffer so
    the engines can run on the decoded message without a copy.

    Every request carries a client-chosen [id] that the matching
    response echoes, so a pipelining client can reorder replies (the
    server may complete a coalesced batch before an earlier lone job).

    The codec is total: {!decode_request} / {!decode_response} never
    raise on hostile bytes — truncated, oversized, or corrupt frames
    come back as [Error] values the server answers with a protocol
    error reply. *)

type buf = Xpose_core.Storage.Float64.t

type priority = High | Normal | Low

val priority_to_string : priority -> string
val priority_of_string : string -> priority option

type reject_reason =
  | Queue_full  (** the priority queue is at its job-count limit *)
  | Budget_exhausted
      (** admitting the payload would push in-flight bytes over the
          server's global memory budget *)

type request =
  | Transpose of {
      id : int;
      trace : int;
          (** client-chosen trace id (u32), propagated through the
              queue, the coalescer, and the engine's pass spans so one
              Chrome trace shows the request end to end. [0] means
              "untraced" by convention; {!Xpose_obs.Tracer.fresh_trace_id}
              supplies non-colliding ids. *)
      tenant : string;
      priority : priority;
      m : int;
      n : int;
      payload : buf;  (** row-major [m x n], exactly [m * n] elements *)
    }
  | Stats of { id : int }
  | Stats_text of { id : int }
      (** Prometheus text exposition of the server's metrics registry;
          answered with a {!Stats_reply} whose [json] field carries the
          text body (the frame is format-agnostic bytes). *)

type response =
  | Result of { id : int; m : int; n : int; payload : buf }
      (** the transposed matrix: [n x m] for an [m x n] request *)
  | Busy of {
      id : int;
      reason : reject_reason;
      queued_jobs : int;
      queued_bytes : int;
    }  (** backpressure: resubmit later; nothing was queued *)
  | Error_reply of { id : int; message : string }
  | Stats_reply of { id : int; json : string }

type error =
  [ `Truncated  (** body shorter than its fields claim *)
  | `Oversized of int  (** declared size exceeds the frame cap *)
  | `Bad_tag of int
  | `Corrupt of string  (** field-level inconsistency, with detail *) ]

val error_to_string : error -> string

val default_max_frame_bytes : int
(** 64 MiB: the largest body either side accepts. *)

(** {1 Codec}

    Encoders return the frame {e body} (no length header); decoders
    take one body. [max_bytes] bounds the payload a decoder will
    allocate (default {!default_max_frame_bytes}). *)

val encode_request : request -> Bytes.t
val decode_request : ?max_bytes:int -> Bytes.t -> (request, error) result
val encode_response : response -> Bytes.t
val decode_response : ?max_bytes:int -> Bytes.t -> (response, error) result

val request_id : request -> int
val response_id : response -> int

val equal_request : request -> request -> bool
(** Structural equality, comparing payload buffers element-wise (float
    bit patterns, so NaNs round-trip); used by the codec tests. *)

val equal_response : response -> response -> bool

(** {1 Framing I/O}

    Blocking, over a connected socket (or any fd). *)

val write_frame : Unix.file_descr -> Bytes.t -> unit
(** Write the 4-byte length header and the body, handling short
    writes. @raise Unix.Unix_error on I/O failure. *)

val read_frame :
  ?max_bytes:int ->
  Unix.file_descr ->
  (Bytes.t, [ `Eof | `Truncated | `Oversized of int ]) result
(** Read one length header and body. [`Eof] is a clean close at a frame
    boundary; [`Truncated] a close mid-frame; [`Oversized] a header
    announcing a body over [max_bytes] (the connection should be
    dropped — the stream cannot resynchronize).
    @raise Unix.Unix_error on I/O failure. *)
