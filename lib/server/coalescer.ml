type key = { priority : Protocol.priority; m : int; n : int }

type 'a group = {
  g_key : key;
  deadline_ns : int; (* first-arrival time + window; 0 = ready now *)
  mutable jobs_rev : 'a list;
  mutable count : int;
  seq : int; (* arrival order of the group, for stable dispatch order *)
}

type 'a t = {
  max_batch : int;
  window_ns : int;
  (* Open batchable groups by key; [order] keeps every pending group
     (batchable or not) in arrival order. Removal from [order] happens
     lazily at [ready]/[flush]. *)
  open_groups : (key, 'a group) Hashtbl.t;
  mutable order : 'a group list; (* reversed: most recent first *)
  mutable pending : int;
  mutable next_seq : int;
}

let m_batches = lazy (Xpose_obs.Metrics.counter "server.batches")
let m_batched = lazy (Xpose_obs.Metrics.counter "server.batched_jobs")

let create ?(max_batch = 8) ?(window_ns = 2_000_000) () =
  if max_batch < 1 then invalid_arg "Coalescer.create: max_batch must be >= 1";
  if window_ns < 0 then invalid_arg "Coalescer.create: window_ns must be >= 0";
  {
    max_batch;
    window_ns;
    open_groups = Hashtbl.create 16;
    order = [];
    pending = 0;
    next_seq = 0;
  }

let new_group t ~key ~deadline_ns job =
  let g =
    {
      g_key = key;
      deadline_ns;
      jobs_rev = [ job ];
      count = 1;
      seq = t.next_seq;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.order <- g :: t.order;
  g

let add t ~now_ns ~batchable ~key job =
  t.pending <- t.pending + 1;
  if not batchable then ignore (new_group t ~key ~deadline_ns:0 job)
  else
    match Hashtbl.find_opt t.open_groups key with
    | Some g ->
        g.jobs_rev <- job :: g.jobs_rev;
        g.count <- g.count + 1;
        (* A full group is closed to further joins; it is picked up by
           the next [ready] call. *)
        if g.count >= t.max_batch then Hashtbl.remove t.open_groups key
    | None ->
        let g = new_group t ~key ~deadline_ns:(now_ns + t.window_ns) job in
        if t.max_batch = 1 then () else Hashtbl.add t.open_groups key g

let priority_rank = function
  | Protocol.High -> 0
  | Protocol.Normal -> 1
  | Protocol.Low -> 2

let take t ~dispatchable =
  let gone, kept = List.partition dispatchable t.order in
  t.order <- kept;
  List.iter
    (fun g ->
      (match Hashtbl.find_opt t.open_groups g.g_key with
      | Some g' when g' == g -> Hashtbl.remove t.open_groups g.g_key
      | _ -> ());
      t.pending <- t.pending - g.count)
    gone;
  let batches =
    List.sort
      (fun a b ->
        match
          compare (priority_rank a.g_key.priority) (priority_rank b.g_key.priority)
        with
        | 0 -> compare a.seq b.seq
        | c -> c)
      gone
  in
  (match batches with
  | [] -> ()
  | _ ->
      Xpose_obs.Metrics.incr ~by:(List.length batches) (Lazy.force m_batches);
      Xpose_obs.Metrics.incr
        ~by:(List.fold_left (fun acc g -> acc + g.count) 0 batches)
        (Lazy.force m_batched));
  List.map (fun g -> (g.g_key, List.rev g.jobs_rev)) batches

let ready t ~now_ns =
  take t ~dispatchable:(fun g ->
      g.count >= t.max_batch || g.deadline_ns <= now_ns)

let flush t = take t ~dispatchable:(fun _ -> true)

let next_deadline_ns t =
  List.fold_left
    (fun acc g ->
      match acc with
      | Some d when d <= g.deadline_ns -> acc
      | _ -> Some g.deadline_ns)
    None t.order

let pending t = t.pending
