module P = Protocol

type t = { fd : Unix.file_descr; mutable next_id : int; mutable open_ : bool }

exception Protocol_failure of string

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     Unix.close fd;
     raise e);
  { fd; next_id = 1; open_ = true }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_client ~socket_path f =
  let t = connect ~socket_path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let fail msg = raise (Protocol_failure msg)

let roundtrip t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  P.write_frame t.fd (P.encode_request req);
  match P.read_frame t.fd with
  | Error `Eof -> fail "server closed the connection"
  | Error `Truncated -> fail "truncated reply frame"
  | Error (`Oversized n) -> fail (Printf.sprintf "oversized reply (%d B)" n)
  | Ok body -> (
      match P.decode_response body with
      | Error e -> fail (P.error_to_string e)
      | Ok resp ->
          if P.response_id resp <> id then
            fail
              (Printf.sprintf "reply id %d does not match request id %d"
                 (P.response_id resp) id);
          resp)

let transpose ?(tenant = "") ?(priority = P.Normal) ?trace t ~m ~n payload =
  let trace =
    match trace with
    | Some tr -> tr
    | None -> Xpose_obs.Tracer.fresh_trace_id ()
  in
  (* The submit span brackets the whole round trip and carries the same
     trace id the server propagates into its queue/coalesce/dispatch
     and engine pass spans — the client-side anchor of the end-to-end
     trace. *)
  Xpose_obs.Tracer.with_span ~cat:"client"
    ~args:(fun () ->
      [
        ("trace", Xpose_obs.Tracer.Int trace);
        ("id", Xpose_obs.Tracer.Int t.next_id);
        ("m", Xpose_obs.Tracer.Int m);
        ("n", Xpose_obs.Tracer.Int n);
      ])
    "client.submit"
    (fun () ->
      roundtrip t
        (P.Transpose { id = t.next_id; trace; tenant; priority; m; n; payload }))

let stats t =
  match roundtrip t (P.Stats { id = t.next_id }) with
  | P.Stats_reply { json; _ } -> json
  | _ -> fail "expected a stats reply"

let stats_text t =
  match roundtrip t (P.Stats_text { id = t.next_id }) with
  | P.Stats_reply { json; _ } -> json
  | _ -> fail "expected a stats reply"
