(** A blocking client for the job server.

    One connection, synchronous request/response: {!transpose} and
    {!stats} send a frame and block until the matching reply arrives
    (replies carry the request id; a synchronous client never has more
    than one outstanding, so ids only need to be locally fresh — the
    client numbers them itself). The load driver opens one client per
    traffic thread. *)

type t

val connect : socket_path:string -> t
(** @raise Unix.Unix_error if the server is not listening. *)

val close : t -> unit
(** Idempotent. *)

val with_client : socket_path:string -> (t -> 'a) -> 'a

exception Protocol_failure of string
(** The server broke framing (truncated/oversized/unparseable reply)
    or closed mid-request. *)

val transpose :
  ?tenant:string ->
  ?priority:Protocol.priority ->
  ?trace:int ->
  t ->
  m:int ->
  n:int ->
  Protocol.buf ->
  Protocol.response
(** Submit the row-major [m x n] payload (not modified; the reply
    carries a fresh buffer). Returns the server's reply: [Result] on
    success, [Busy] under backpressure, [Error_reply] on a rejected or
    failed job. Default tenant [""], priority [Normal].

    [trace] is the request's end-to-end trace id (default: a
    {!Xpose_obs.Tracer.fresh_trace_id}). The whole round trip runs
    inside a [client.submit] span carrying it; in a co-traced server
    process the queue/coalesce/dispatch and engine pass spans share the
    same id, so one Chrome trace shows the request end to end.
    @raise Protocol_failure / Unix.Unix_error on transport failure. *)

val stats : t -> string
(** Fetch the server's metrics snapshot as JSON.
    @raise Protocol_failure if the server answers anything else. *)

val stats_text : t -> string
(** Fetch the Prometheus text exposition of the server's metrics (the
    [Stats_text] request).
    @raise Protocol_failure if the server answers anything else. *)
