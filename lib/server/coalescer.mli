(** Shape-coalescing batcher: groups same-shape fused jobs so the
    dispatcher can run one {!Xpose_cpu.Fused_f64.transpose_batch} — one
    plan-cache lookup, one pool fan-out — instead of a pass sequence
    per request (the request-level analogue of TTC's amortized
    planning).

    Jobs are keyed by [(priority, m, n)]. A group is dispatched when it
    reaches [max_batch] jobs, or when [window_ns] has elapsed since its
    {e first} job arrived — bounded added latency, no reordering within
    a group. Non-batchable jobs (the ooc route transposes a private
    staging file per job) bypass grouping and come back ready at once.

    Pure bookkeeping over a caller-supplied clock ([now_ns]), so policy
    tests are deterministic; the server feeds it
    {!Xpose_obs.Clock.now_ns} under the dispatcher lock. Dispatch
    totals are published as the [server.batches] /
    [server.batched_jobs] counters — their ratio is the coalesce ratio
    in the stats reply. *)

type key = { priority : Protocol.priority; m : int; n : int }

type 'a t

val create : ?max_batch:int -> ?window_ns:int -> unit -> 'a t
(** [max_batch] (default 8) caps a group; [window_ns] (default 2ms) is
    the grouping window. @raise Invalid_argument if [max_batch < 1] or
    [window_ns < 0]. *)

val add : 'a t -> now_ns:int -> batchable:bool -> key:key -> 'a -> unit
(** Stage one job. With [batchable:false] the job forms its own
    singleton group, ready immediately. *)

val ready : 'a t -> now_ns:int -> (key * 'a list) list
(** Remove and return every dispatchable group: full ones, expired
    ones, and non-batchable singletons — higher priorities first, then
    in first-arrival order; jobs within a group in arrival order. *)

val flush : 'a t -> (key * 'a list) list
(** Remove and return everything pending (shutdown drain). *)

val next_deadline_ns : 'a t -> int option
(** Earliest instant at which {!ready} could return more than it would
    now — the dispatcher's sleep bound. [None] when nothing is
    pending. *)

val pending : 'a t -> int
(** Jobs currently staged. *)
