(** Transpose-as-a-service: the concurrent job server.

    One {!start} binds a Unix-domain socket and assembles the pipeline:

    - an {e acceptor domain} (the service-level generalization of
      {!Xpose_ooc.Io_domain}'s in-order worker idiom) accepts
      connections and runs one lightweight reader thread per
      connection: decode a {!Protocol} frame, consult {!Admission},
      and either feed the {!Job_queue} or answer immediately
      ([Busy] backpressure, [Stats_reply], protocol errors);
    - a {e dispatcher} drains the per-priority queues into the
      {!Coalescer} and executes ready groups through
      {!Xpose_tune.Engine_select.dispatch_batch}: fused groups as one
      {!Xpose_cpu.Fused_f64.transpose_batch} over the worker pool at
      the shape's tuned panel width and split policy (same-shape
      requests share one plan-cache hit), ooc-routed jobs through a
      staging file and {!Xpose_ooc.Ooc_f64.transpose_file} under the
      tenant's window capped by the tuned window;
    - a {!Xpose_cpu.Pool} of worker domains does the element moving.

    Replies go back over the request's connection, tagged with the
    request [id]; a connection's replies may be reordered by
    coalescing and priorities. All [server.*] metrics (requests,
    responses, rejects, batches, queue-depth gauges, in-flight-bytes
    gauge, latency histogram) live in the process
    {!Xpose_obs.Metrics} registry, which the [Stats] request snapshots
    as JSON and the [Stats_text] request renders as a Prometheus text
    exposition.

    Every stage is traced when the process tracer records: each
    request's [trace] id is carried through the queue (a retroactive
    [server.queue_wait] span from arrival to dequeue), the coalescer
    ([server.coalesce], dequeue to dispatch), the batch execution
    ([server.dispatch]), and — via {!Xpose_obs.Tracer} ambient args —
    into every engine pass/panel span the batch runs, so one Chrome
    trace shows a request end to end under a single trace id.

    {!stop} is the clean-shutdown path: stop accepting, wake and join
    every reader, drain-and-execute everything admitted (no admitted
    job is dropped — its client is always answered), then tear down
    the pool. Idempotent. *)

type config = {
  socket_path : string;
  workers : int;  (** pool lanes for the engines (>= 1) *)
  budget_bytes : int;  (** global in-flight payload budget *)
  default_quota_bytes : int;  (** per-tenant in-memory footprint quota *)
  default_window_bytes : int;  (** per-tenant ooc residency window *)
  tenants : Admission.tenant list;  (** explicit per-tenant overrides *)
  max_queue_jobs : int;  (** per-priority queue depth cap *)
  max_queue_bytes : int;  (** queued payload bytes cap *)
  coalesce_window_ns : int;  (** same-shape grouping window *)
  max_batch : int;  (** coalesced group size cap *)
  max_frame_bytes : int;  (** largest accepted request frame *)
  write_timeout_s : float;
      (** send timeout on every accepted socket: a reply write that
          stalls this long against a peer that stopped reading marks
          the connection dead and the reply is dropped, so a slow
          client cannot stall the dispatcher for everyone else.
          [0.] means no timeout (writes block). *)
  prefetch : bool;  (** ooc jobs double-buffer via an I/O domain *)
  metrics_file : string option;
      (** when set, a writer thread rewrites this file with the
          Prometheus text exposition ({!Xpose_obs.Exposition.render})
          every [metrics_interval_s] — write-temp-then-rename, so a
          scraper never sees a torn file — plus once more on {!stop} *)
  metrics_interval_s : float;  (** dump period, > 0 (default 1 s) *)
  tuning_db : string option;
      (** when set, the tuning DB written by [xpose tune] is loaded at
          startup and consulted on every dispatch: fused batches run at
          the tuned panel width and split policy (or whatever engine the
          DB picked for the shape), and ooc jobs use the tuned window
          capped at the tenant's. A missing or unreadable file degrades
          to an empty DB — every lookup a miss, default parameters. The
          [tune_db.hits] / [tune_db.misses] counters in the stats reply
          report how often requests found tuned entries. *)
}

val default_config : socket_path:string -> config
(** 2 workers, 1 GiB budget, 16 MiB quota, 4 MiB window, 1024-job /
    256 MiB queues, 2 ms coalesce window, batches of 8, 64 MiB frames,
    5 s write timeout, prefetch on. *)

type t

val start : config -> t
(** Bind [socket_path] (replacing a stale socket file), spawn the
    acceptor domain, dispatcher, and pool, and return once the server
    accepts connections.
    @raise Invalid_argument on nonsensical config values;
    @raise Unix.Unix_error if the socket cannot be bound. *)

val stop : t -> unit
(** Clean shutdown as described above, plus the observability half of
    the drain: once the dispatcher has answered the last admitted job,
    the tracer sink is {!Xpose_obs.Tracer.flush}ed (so a SIGTERM-driven
    stop cannot lose the trace) and the metrics writer makes a final
    dump. Idempotent; must be called from the thread/domain that called
    {!start}. *)

val live_connections : t -> int
(** Connections currently held open by the server. A connection is
    reclaimed (fd closed, forgotten) as soon as its peer has gone away
    {e and} its last in-flight reply has been written, so this does not
    grow with the total number of clients ever served. *)

val stats_json : unit -> string
(** The stats payload the [Stats] request returns: the process metrics
    registry as JSON (see {!Xpose_obs.Metrics.render_json}). *)
