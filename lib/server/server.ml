module P = Protocol
module ES = Xpose_tune.Engine_select
module FM = Xpose_mmap.File_matrix
module Metrics = Xpose_obs.Metrics
module Tracer = Xpose_obs.Tracer

type config = {
  socket_path : string;
  workers : int;
  budget_bytes : int;
  default_quota_bytes : int;
  default_window_bytes : int;
  tenants : Admission.tenant list;
  max_queue_jobs : int;
  max_queue_bytes : int;
  coalesce_window_ns : int;
  max_batch : int;
  max_frame_bytes : int;
  write_timeout_s : float;
  prefetch : bool;
  metrics_file : string option;
  metrics_interval_s : float;
  tuning_db : string option;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 2;
    budget_bytes = 1024 * 1024 * 1024;
    default_quota_bytes = 16 * 1024 * 1024;
    default_window_bytes = 4 * 1024 * 1024;
    tenants = [];
    max_queue_jobs = 1024;
    max_queue_bytes = 256 * 1024 * 1024;
    coalesce_window_ns = 2_000_000;
    max_batch = 8;
    max_frame_bytes = P.default_max_frame_bytes;
    write_timeout_s = 5.0;
    prefetch = true;
    metrics_file = None;
    metrics_interval_s = 1.0;
    tuning_db = None;
  }

(* -- metrics ----------------------------------------------------------- *)

let m_connections = lazy (Metrics.counter "server.connections")
let m_requests = lazy (Metrics.counter "server.requests")
let m_responses = lazy (Metrics.counter "server.responses")
let m_stats_requests = lazy (Metrics.counter "server.stats_requests")
let m_protocol_errors = lazy (Metrics.counter "server.protocol_errors")
let m_rej_queue = lazy (Metrics.counter "server.rejects.queue_full")
let m_rej_budget = lazy (Metrics.counter "server.rejects.budget")
let m_job_errors = lazy (Metrics.counter "server.job_errors")
let h_latency = lazy (Metrics.histogram "server.latency_ns")
let h_queue_wait = lazy (Metrics.histogram "server.queue_wait_ns")
let h_coalesce = lazy (Metrics.histogram "server.coalesce_delay_ns")
let g_depth_high = lazy (Metrics.gauge "server.queue_depth.high")
let g_depth_normal = lazy (Metrics.gauge "server.queue_depth.normal")
let g_depth_low = lazy (Metrics.gauge "server.queue_depth.low")

let stats_json () = Metrics.render_json ()

(* -- connections ------------------------------------------------------- *)

(* Replies are written by whichever side finishes the work (reader
   thread for immediate answers, dispatcher for job results), so every
   write goes through the connection's mutex. The accepted fd carries a
   send timeout ([write_timeout_s]): a write that fails — including one
   that times out against a stalled peer's full socket buffer — marks
   the connection dead and further replies to it are dropped (their
   jobs still ran; admission bytes are still released), so one stuck
   client cannot stall the dispatcher for everyone else.

   [inflight], [reader_done], and [closed] (all guarded by the
   server's [cmu]) drive reclamation: once the reader has exited and
   the last queued job's reply has gone out, the fd is closed and the
   conn dropped from the server's list — a long-running server does
   not accumulate an fd per client that ever connected. *)
type conn = {
  fd : Unix.file_descr;
  wmu : Mutex.t;
  mutable alive : bool;
  mutable inflight : int;  (* admitted jobs not yet answered *)
  mutable reader_done : bool;
  mutable closed : bool;
}

let send_response conn resp =
  Mutex.lock conn.wmu;
  (try
     if conn.alive then begin
       P.write_frame conn.fd (P.encode_response resp);
       Metrics.incr (Lazy.force m_responses)
     end
   with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false);
  Mutex.unlock conn.wmu

(* -- jobs -------------------------------------------------------------- *)

type job = {
  j_conn : conn;
  j_id : int;
  j_trace : int;
  j_m : int;
  j_n : int;
  j_payload : P.buf;
  j_bytes : int;
  j_route : Admission.route;
  j_arrival_ns : float;
  (* stamped by the dispatcher when the job leaves the queue; together
     with [j_arrival_ns] and the dispatch time it splits latency into
     queue wait and coalesce delay *)
  mutable j_dequeue_ns : float;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  pool : Xpose_cpu.Pool.t;
  admission : Admission.t;
  plan_cache : Xpose_core.Plan.Cache.t;
  (* shape -> tuned parameters; an empty DB (no [tuning_db] configured,
     or an unreadable file) makes every dispatch a miss, i.e. exactly
     the pre-tuning behaviour *)
  selector : ES.t;
  (* queue, guarded by [qmu]; readers enqueue, the dispatcher drains *)
  qmu : Mutex.t;
  queue : job Job_queue.t;
  (* dispatcher wake-up: readers write one byte after enqueueing, the
     dispatcher selects on the read end with its coalesce deadline as
     the timeout (no Condition.timedwait in the stdlib) *)
  wake_rd : Unix.file_descr;
  wake_wr : Unix.file_descr;
  (* lifecycle *)
  stop_readers : bool Atomic.t;
  stop_dispatch : bool Atomic.t;
  conns : conn list ref;
  (* ids of reader threads that have exited, awaiting a join by the
     acceptor's sweep; guarded by [cmu] like [conns] *)
  finished_readers : int list ref;
  cmu : Mutex.t;
  mutable acceptor : unit Domain.t option;
  mutable dispatcher : Thread.t option;
  stop_metrics : bool Atomic.t;
  mutable metrics_writer : Thread.t option;
  mutable stopped : bool;
}

let now_ns () = Xpose_obs.Clock.now_ns ()

let wake t =
  (* Nonblocking: if the pipe is full the dispatcher is already awake. *)
  try ignore (Unix.write t.wake_wr (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let update_depth_gauges t =
  Metrics.set_gauge (Lazy.force g_depth_high)
    (float_of_int (Job_queue.depth t.queue P.High));
  Metrics.set_gauge (Lazy.force g_depth_normal)
    (float_of_int (Job_queue.depth t.queue P.Normal));
  Metrics.set_gauge (Lazy.force g_depth_low)
    (float_of_int (Job_queue.depth t.queue P.Low))

(* -- connection reclamation -------------------------------------------- *)

(* Close and forget a connection once its reader has exited and its
   last in-flight reply has gone out. Caller holds [t.cmu]; the
   [closed] flag keeps [stop] and the acceptor's shutdown sweep off a
   reclaimed (possibly reused) fd number. *)
let reclaim_locked t conn =
  if conn.reader_done && conn.inflight = 0 && not conn.closed then begin
    conn.closed <- true;
    t.conns := List.filter (fun c -> c != conn) !(t.conns);
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let conn_job_started t conn =
  Mutex.lock t.cmu;
  conn.inflight <- conn.inflight + 1;
  Mutex.unlock t.cmu

let conn_job_finished t conn =
  Mutex.lock t.cmu;
  conn.inflight <- conn.inflight - 1;
  reclaim_locked t conn;
  Mutex.unlock t.cmu

let live_connections t =
  Mutex.lock t.cmu;
  let n = List.length !(t.conns) in
  Mutex.unlock t.cmu;
  n

(* -- request handling (reader threads) --------------------------------- *)

let clamp_u32 v = if v > 0xffff_ffff then 0xffff_ffff else max 0 v

let busy_reply t ~id ~reason =
  Mutex.lock t.qmu;
  let jobs = Job_queue.length t.queue and bytes = Job_queue.bytes t.queue in
  Mutex.unlock t.qmu;
  P.Busy
    {
      id;
      reason;
      queued_jobs = clamp_u32 jobs;
      queued_bytes = clamp_u32 bytes;
    }

let handle_transpose t conn ~id ~trace ~tenant ~priority ~m ~n ~payload =
  Metrics.incr (Lazy.force m_requests);
  let bytes = m * n * 8 in
  match Admission.admit t.admission ~tenant ~bytes with
  | Admission.Reject reason ->
      Metrics.incr
        (Lazy.force
           (match reason with
           | P.Queue_full -> m_rej_queue
           | P.Budget_exhausted -> m_rej_budget));
      send_response conn (busy_reply t ~id ~reason)
  | Admission.Admit route -> (
      let job =
        {
          j_conn = conn;
          j_id = id;
          j_trace = trace;
          j_m = m;
          j_n = n;
          j_payload = payload;
          j_bytes = bytes;
          j_route = route;
          j_arrival_ns = now_ns ();
          j_dequeue_ns = 0.0;
        }
      in
      conn_job_started t conn;
      Mutex.lock t.qmu;
      let verdict = Job_queue.offer t.queue ~priority ~bytes job in
      if verdict = `Ok then update_depth_gauges t;
      Mutex.unlock t.qmu;
      match verdict with
      | `Ok -> wake t
      | `Queue_full | `Bytes_full ->
          Admission.release t.admission ~bytes;
          Metrics.incr (Lazy.force m_rej_queue);
          send_response conn (busy_reply t ~id ~reason:P.Queue_full);
          conn_job_finished t conn)

let serve_conn t conn =
  let rec loop () =
    if Atomic.get t.stop_readers then ()
    else
      match P.read_frame ~max_bytes:t.cfg.max_frame_bytes conn.fd with
      | Error `Eof -> ()
      | Error `Truncated -> ()
      | Error (`Oversized _ as e) ->
          (* The stream cannot resynchronize after an oversized header:
             answer and drop the connection. *)
          Metrics.incr (Lazy.force m_protocol_errors);
          send_response conn
            (P.Error_reply { id = 0; message = P.error_to_string e });
          ()
      | Ok body -> (
          match P.decode_request ~max_bytes:t.cfg.max_frame_bytes body with
          | Error e ->
              (* Frame boundaries survive a bad body; keep the
                 connection. *)
              Metrics.incr (Lazy.force m_protocol_errors);
              send_response conn
                (P.Error_reply { id = 0; message = P.error_to_string e });
              loop ()
          | Ok (P.Stats { id }) ->
              Metrics.incr (Lazy.force m_stats_requests);
              send_response conn (P.Stats_reply { id; json = stats_json () });
              loop ()
          | Ok (P.Stats_text { id }) ->
              Metrics.incr (Lazy.force m_stats_requests);
              send_response conn
                (P.Stats_reply { id; json = Xpose_obs.Exposition.render () });
              loop ()
          | Ok (P.Transpose { id; trace; tenant; priority; m; n; payload }) ->
              handle_transpose t conn ~id ~trace ~tenant ~priority ~m ~n
                ~payload;
              loop ())
  in
  (* The connection is NOT marked dead here: jobs this reader enqueued
     may still be awaiting dispatch, and their replies go out over this
     fd (a peer that half-closed its send side still reads). A failed
     write marks it dead in [send_response]. The fd is reclaimed as
     soon as nothing more can be written to it — right now if no job
     is in flight, otherwise when the dispatcher answers the last
     one. *)
  (try loop () with Unix.Unix_error _ | Sys_error _ -> ());
  Mutex.lock t.cmu;
  conn.reader_done <- true;
  reclaim_locked t conn;
  t.finished_readers := Thread.id (Thread.self ()) :: !(t.finished_readers);
  Mutex.unlock t.cmu

(* -- acceptor domain --------------------------------------------------- *)

let acceptor_loop t () =
  let readers : (int, Thread.t) Hashtbl.t = Hashtbl.create 32 in
  (* Join readers that have announced their exit, so the thread table
     stays bounded by the number of live connections rather than
     growing by one per client that ever connected. *)
  let sweep () =
    Mutex.lock t.cmu;
    let finished = !(t.finished_readers) in
    t.finished_readers := [];
    Mutex.unlock t.cmu;
    List.iter
      (fun tid ->
        match Hashtbl.find_opt readers tid with
        | Some th ->
            Thread.join th;
            Hashtbl.remove readers tid
        | None -> ())
      finished
  in
  let rec loop () =
    if Atomic.get t.stop_readers then ()
    else begin
      sweep ();
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listen_fd with
          | fd, _ ->
              Metrics.incr (Lazy.force m_connections);
              (* Bound every reply write: a peer that stops reading
                 surfaces as a timed-out write, not a dispatcher that
                 hangs on its full socket buffer. 0 keeps writes
                 blocking (the OS convention for SO_SNDTIMEO). *)
              (try
                 Unix.setsockopt_float fd Unix.SO_SNDTIMEO
                   t.cfg.write_timeout_s
               with Unix.Unix_error _ | Invalid_argument _ -> ());
              let conn =
                {
                  fd;
                  wmu = Mutex.create ();
                  alive = true;
                  inflight = 0;
                  reader_done = false;
                  closed = false;
                }
              in
              Mutex.lock t.cmu;
              t.conns := conn :: !(t.conns);
              Mutex.unlock t.cmu;
              let th = Thread.create (serve_conn t) conn in
              Hashtbl.replace readers (Thread.id th) th
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  (try loop () with Unix.Unix_error _ -> ());
  (* Wake readers blocked in [read]: half-close the receive side; the
     send side stays open until [stop] has drained their jobs. Under
     [cmu] so a concurrent reclaim cannot close (and the OS reuse) an
     fd between the snapshot and the shutdown call. *)
  Mutex.lock t.cmu;
  List.iter
    (fun c ->
      if not c.closed then
        try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
    !(t.conns);
  Mutex.unlock t.cmu;
  Hashtbl.iter (fun _ th -> Thread.join th) readers

(* -- job execution (dispatcher) ---------------------------------------- *)

let finish t job resp =
  send_response job.j_conn resp;
  Metrics.observe (Lazy.force h_latency) (now_ns () -. job.j_arrival_ns);
  Admission.release t.admission ~bytes:job.j_bytes;
  conn_job_finished t job.j_conn

let fail_batch t jobs exn =
  Metrics.incr ~by:(List.length jobs) (Lazy.force m_job_errors);
  let message = Printexc.to_string exn in
  List.iter
    (fun job -> finish t job (P.Error_reply { id = job.j_id; message }))
    jobs

let run_fused t ~m ~n jobs =
  match
    ES.dispatch_batch t.selector t.pool ~m ~n
      (Array.of_list (List.map (fun j -> j.j_payload) jobs))
  with
  | () ->
      List.iter
        (fun job ->
          finish t job
            (P.Result { id = job.j_id; m = n; n = m; payload = job.j_payload }))
        jobs
  | exception exn -> fail_batch t jobs exn

(* An over-quota job never runs in RAM: its payload is staged to a
   file and transposed there by the windowed engine, mapping at most
   the tenant's window at a time. *)
let run_ooc t ~window_bytes job =
  let m = job.j_m and n = job.j_n in
  (* The tenant window is a residency promise; a tuned window may
     shrink it, never grow it. *)
  let window_bytes = ES.window_bytes_for t.selector ~m ~n ~default:window_bytes in
  match
    let path = Filename.temp_file "xpose_server" ".mat" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        FM.create ~path ~elements:(m * n);
        FM.with_map ~path (fun file ->
            Bigarray.Array1.blit job.j_payload file);
        Xpose_ooc.Ooc_f64.transpose_file ~pool:t.pool ~window_bytes
          ~prefetch:t.cfg.prefetch ~cache:t.plan_cache ~path ~m ~n ();
        FM.with_map ~write:false ~path (fun file ->
            Bigarray.Array1.blit file job.j_payload))
  with
  | () ->
      finish t job
        (P.Result { id = job.j_id; m = n; n = m; payload = job.j_payload })
  | exception exn -> fail_batch t [ job ] exn

(* Retroactive wait spans: a job's queue wait and coalesce delay are
   only known at dispatch, so the spans are built from the stamped
   arrival/dequeue times after the fact. The histograms are always
   observed; trace events only when the tracer records. *)
let observe_waits jobs ~dispatch_ns =
  List.iter
    (fun job ->
      let queue_wait = Float.max 0.0 (job.j_dequeue_ns -. job.j_arrival_ns) in
      let coalesce = Float.max 0.0 (dispatch_ns -. job.j_dequeue_ns) in
      Metrics.observe (Lazy.force h_queue_wait) queue_wait;
      Metrics.observe (Lazy.force h_coalesce) coalesce;
      if Tracer.enabled () then begin
        let args =
          [ ("trace", Tracer.Int job.j_trace); ("id", Tracer.Int job.j_id) ]
        in
        let tid = (Domain.self () :> int) in
        let span name ts_ns dur_ns : Tracer.event =
          { name; cat = "server"; ph = `Complete; ts_ns; dur_ns; tid;
            seq = Tracer.next_seq (); args }
        in
        Tracer.emit (span "server.queue_wait" job.j_arrival_ns queue_wait);
        Tracer.emit (span "server.coalesce" job.j_dequeue_ns coalesce)
      end)
    jobs

let batch_trace_args jobs =
  match jobs with
  | [ j ] -> [ ("trace", Tracer.Int j.j_trace) ]
  | js ->
      [
        ( "trace",
          Tracer.Str
            (String.concat ","
               (List.map (fun j -> string_of_int j.j_trace) js)) );
      ]

let execute_batch t (key : Coalescer.key) jobs =
  match jobs with
  | [] -> ()
  | first :: _ ->
      let dispatch_ns = now_ns () in
      observe_waits jobs ~dispatch_ns;
      let trace_args = batch_trace_args jobs in
      (* Ambient args ride into the engine's pass/panel spans, which run
         on pool worker domains with no lexical path back here; one
         batch executes at a time, so the global cell is race-free. *)
      Tracer.with_ambient_args trace_args (fun () ->
          Tracer.with_span ~cat:"server"
            ~args:(fun () ->
              trace_args
              @ [
                  ("jobs", Tracer.Int (List.length jobs));
                  ("m", Tracer.Int key.Coalescer.m);
                  ("n", Tracer.Int key.Coalescer.n);
                ])
            "server.dispatch"
            (fun () ->
              match first.j_route with
              | Admission.Fused ->
                  run_fused t ~m:key.Coalescer.m ~n:key.Coalescer.n jobs
              | Admission.Ooc { window_bytes } ->
                  List.iter (fun job -> run_ooc t ~window_bytes job) jobs))

let dispatcher_loop t () =
  let coal =
    Coalescer.create ~max_batch:t.cfg.max_batch
      ~window_ns:t.cfg.coalesce_window_ns ()
  in
  let scratch = Bytes.create 64 in
  let rec loop () =
    let now = int_of_float (now_ns ()) in
    (* Drain the queues into the coalescer. *)
    Mutex.lock t.qmu;
    let rec drain acc =
      match Job_queue.pop t.queue with
      | Some (priority, _, job) ->
          job.j_dequeue_ns <- now_ns ();
          drain ((priority, job) :: acc)
      | None -> acc
    in
    let drained = drain [] in
    if drained <> [] then update_depth_gauges t;
    Mutex.unlock t.qmu;
    List.iter
      (fun (priority, job) ->
        let batchable = job.j_route = Admission.Fused in
        Coalescer.add coal ~now_ns:now ~batchable
          ~key:{ Coalescer.priority; m = job.j_m; n = job.j_n }
          job)
      (List.rev drained);
    let stopping = Atomic.get t.stop_dispatch in
    let batches =
      if stopping then Coalescer.flush coal else Coalescer.ready coal ~now_ns:now
    in
    match batches with
    | _ :: _ ->
        List.iter (fun (key, jobs) -> execute_batch t key jobs) batches;
        loop ()
    | [] ->
        if stopping then begin
          (* Readers are joined before [stop_dispatch] is raised, so an
             empty queue and empty coalescer mean nothing is left. *)
          Mutex.lock t.qmu;
          let empty = Job_queue.length t.queue = 0 in
          Mutex.unlock t.qmu;
          if empty && Coalescer.pending coal = 0 then () else loop ()
        end
        else begin
          let timeout =
            match Coalescer.next_deadline_ns coal with
            | Some d -> Float.max 0.0005 (float_of_int (d - now) /. 1e9)
            | None -> 0.05
          in
          (match Unix.select [ t.wake_rd ] [] [] timeout with
          | [], _, _ -> ()
          | _ :: _, _, _ -> (
              try ignore (Unix.read t.wake_rd scratch 0 64)
              with Unix.Unix_error _ -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          loop ()
        end
  in
  loop ()

(* -- metrics exposition dump ------------------------------------------- *)

(* Rewrite the whole file each tick (write-temp-then-rename, so a
   scraper never reads a half-written exposition), plus one final dump
   on shutdown so the file reflects the drained server. *)
let metrics_writer_loop t path () =
  let write () =
    try
      let tmp = path ^ ".tmp" in
      let oc = open_out tmp in
      output_string oc (Xpose_obs.Exposition.render ());
      close_out oc;
      Sys.rename tmp path
    with Sys_error _ -> ()
  in
  let interval = Float.max 0.05 t.cfg.metrics_interval_s in
  while not (Atomic.get t.stop_metrics) do
    write ();
    let slept = ref 0.0 in
    while !slept < interval && not (Atomic.get t.stop_metrics) do
      Thread.delay 0.05;
      slept := !slept +. 0.05
    done
  done;
  write ()

(* -- lifecycle --------------------------------------------------------- *)

let start cfg =
  if cfg.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if cfg.max_batch < 1 then invalid_arg "Server.start: max_batch must be >= 1";
  if cfg.coalesce_window_ns < 0 then
    invalid_arg "Server.start: coalesce_window_ns must be >= 0";
  if cfg.max_frame_bytes < 64 then
    invalid_arg "Server.start: max_frame_bytes must be >= 64";
  if not (cfg.write_timeout_s >= 0.0) then
    invalid_arg "Server.start: write_timeout_s must be >= 0";
  if not (cfg.metrics_interval_s > 0.0) then
    invalid_arg "Server.start: metrics_interval_s must be > 0";
  (* Coalesce deadlines and latency need a wall clock, but an embedding
     application (or a deterministic-clock test) may have installed its
     own source — only fill in the default when nothing has. *)
  Xpose_obs.Clock.install_if_unset (fun () -> Unix.gettimeofday () *. 1e9);
  (* A peer that vanishes mid-reply must surface as EPIPE on the write,
     not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     (match Unix.stat cfg.socket_path with
     | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink cfg.socket_path
     | _ -> ()
     | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     Unix.close listen_fd;
     raise e);
  let wake_rd, wake_wr = Unix.pipe () in
  Unix.set_nonblock wake_wr;
  let plan_cache = Xpose_core.Plan.Cache.create ~capacity:128 () in
  (* The serving path accepts whatever calibration the DB file was
     tuned under (its own fingerprint): staleness policy lives in
     [xpose tune], which re-tunes on a fingerprint mismatch. An
     unreadable or missing file degrades to an empty DB — every shape
     a miss, default parameters — rather than failing startup. *)
  let tuning_db =
    match cfg.tuning_db with
    | None -> None
    | Some file -> (
        match
          let ic = open_in_bin file in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with
        | bytes -> (
            match Xpose_tune.Db.of_json bytes with
            | Ok db -> Some db
            | Error _ -> None)
        | exception Sys_error _ -> None)
  in
  let t =
    {
      cfg;
      listen_fd;
      pool = Xpose_cpu.Pool.create ~workers:cfg.workers ();
      admission =
        Admission.create ~budget_bytes:cfg.budget_bytes
          ~default_quota_bytes:cfg.default_quota_bytes
          ~default_window_bytes:cfg.default_window_bytes ~tenants:cfg.tenants
          ();
      plan_cache;
      selector = ES.create ?db:tuning_db ~cache:plan_cache ();
      qmu = Mutex.create ();
      queue =
        Job_queue.create ~max_jobs:cfg.max_queue_jobs
          ~max_bytes:cfg.max_queue_bytes ();
      wake_rd;
      wake_wr;
      stop_readers = Atomic.make false;
      stop_dispatch = Atomic.make false;
      conns = ref [];
      finished_readers = ref [];
      cmu = Mutex.create ();
      acceptor = None;
      dispatcher = None;
      stop_metrics = Atomic.make false;
      metrics_writer = None;
      stopped = false;
    }
  in
  t.acceptor <- Some (Domain.spawn (acceptor_loop t));
  t.dispatcher <- Some (Thread.create (dispatcher_loop t) ());
  (match cfg.metrics_file with
  | None -> ()
  | Some path ->
      t.metrics_writer <- Some (Thread.create (metrics_writer_loop t path) ()));
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (* 1. No new connections or frames: the acceptor joins its reader
       threads (waking blocked reads with a receive-side shutdown)
       before exiting, so after this join no job can still be on its
       way into the queue. *)
    Atomic.set t.stop_readers true;
    (match t.acceptor with None -> () | Some d -> Domain.join d);
    t.acceptor <- None;
    (* 2. Drain: every admitted job is executed and answered. *)
    Atomic.set t.stop_dispatch true;
    wake t;
    (match t.dispatcher with None -> () | Some th -> Thread.join th);
    t.dispatcher <- None;
    (* The drain is complete: every span the server will ever record
       exists now. Flush the tracer sink before tear-down so a
       SIGTERM-driven stop cannot lose the trace (historically it was
       only written by an [at_exit] hook that a signal path skipped). *)
    Tracer.flush ();
    Atomic.set t.stop_metrics true;
    (match t.metrics_writer with None -> () | Some th -> Thread.join th);
    t.metrics_writer <- None;
    assert (Admission.in_flight_bytes t.admission = 0);
    (* 3. Tear down. Drained connections were already reclaimed when
       their last reply went out; this sweeps any stragglers. *)
    Mutex.lock t.cmu;
    List.iter
      (fun c ->
        if not c.closed then begin
          c.closed <- true;
          try Unix.close c.fd with Unix.Unix_error _ -> ()
        end)
      !(t.conns);
    t.conns := [];
    Mutex.unlock t.cmu;
    Unix.close t.listen_fd;
    (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
    Unix.close t.wake_rd;
    Unix.close t.wake_wr;
    Xpose_cpu.Pool.shutdown t.pool
  end
