(** Parallel C2R/R2C with cache-aware column operations — the structure
    of the paper's GPU implementation (§5.2: decomposed passes, §4.6/4.7
    cache-aware rotations and row permutations) driven by the domain
    pool. Column groups are independent, so each pass partitions the
    column range across workers; the row shuffle partitions across rows
    as in {!Par_transpose}. The final column rotation and row
    permutation run as a single fused barrier ({!Fused.Make}[.c2r_cols]
    / [.r2c_cols]): each worker visits its panels once, doing both
    column-wise passes while the panel is resident, with per-worker
    workspaces and one shared cycle discovery. *)

module Make (S : Xpose_core.Storage.S) : sig
  type buf = S.t

  val c2r : ?width:int -> Pool.t -> Xpose_core.Plan.t -> buf -> unit
  val r2c : ?width:int -> Pool.t -> Xpose_core.Plan.t -> buf -> unit

  val transpose :
    ?order:Xpose_core.Layout.order -> ?width:int -> Pool.t -> m:int -> n:int -> buf -> unit
end
