(** Parallel in-place transposition (paper §5.1).

    Each permutation pass of the decomposed algorithm operates on
    independent rows or columns, so it parallelises as a statically-chunked
    loop with a barrier between passes. Every worker uses a private scratch
    buffer of [max m n] elements, for a total auxiliary space of
    [workers * max(m, n)] — still [O(max(m,n))] for fixed worker count. *)

module Make (S : Xpose_core.Storage.S) : sig
  type buf = S.t

  val c2r :
    ?variant:Xpose_core.Algo.c2r_variant ->
    Pool.t ->
    Xpose_core.Plan.t ->
    buf ->
    unit
  (** Parallel C2R transposition; semantics of [Xpose_core.Algo.Make(S).c2r]
      with internally allocated per-worker scratch. *)

  val r2c :
    ?variant:Xpose_core.Algo.r2c_variant ->
    Pool.t ->
    Xpose_core.Plan.t ->
    buf ->
    unit
  (** Parallel R2C transposition. *)

  val transpose :
    ?order:Xpose_core.Layout.order -> Pool.t -> m:int -> n:int -> buf -> unit
  (** Parallel counterpart of [Xpose_core.Algo.Make(S).transpose]: applies
      the §5.2 heuristic and Theorems 1/2 to pick the algorithm and
      orientation. *)
end
