open Xpose_core

type buf = Kernels_f64.buf

let scratches pool (p : Plan.t) =
  Array.init (Pool.workers pool) (fun _ ->
      Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
        (Plan.scratch_elements p))

let check (p : Plan.t) (buf : buf) =
  if Bigarray.Array1.dim buf <> p.m * p.n then
    invalid_arg "Par_f64: buffer size does not match plan"

let c2r ?(variant = Algo.C2r_gather) pool (p : Plan.t) buf =
  check p buf;
  let m = p.m and n = p.n in
  if m = 1 || n = 1 then ()
  else begin
    let tmp = scratches pool p in
    let over_cols pass =
      Pool.parallel_chunks pool ~lo:0 ~hi:n (fun ~chunk ~lo ~hi ->
          pass ~tmp:tmp.(chunk) ~lo ~hi)
    and over_rows pass =
      Pool.parallel_chunks pool ~lo:0 ~hi:m (fun ~chunk ~lo ~hi ->
          pass ~tmp:tmp.(chunk) ~lo ~hi)
    in
    if not (Plan.coprime p) then
      over_cols
        (Kernels_f64.Phases.rotate_columns p buf ~amount:(Plan.rotate_amount p));
    (match variant with
    | Algo.C2r_scatter -> over_rows (Kernels_f64.Phases.row_shuffle_scatter p buf)
    | Algo.C2r_gather | Algo.C2r_decomposed ->
        over_rows (Kernels_f64.Phases.row_shuffle_gather p buf));
    match variant with
    | Algo.C2r_scatter | Algo.C2r_gather ->
        over_cols (Kernels_f64.Phases.col_shuffle_gather p buf)
    | Algo.C2r_decomposed ->
        over_cols (Kernels_f64.Phases.rotate_columns p buf ~amount:(fun j -> j));
        over_cols (Kernels_f64.Phases.permute_rows p buf ~index:(Plan.q p))
  end

let r2c ?(variant = Algo.R2c_fused) pool (p : Plan.t) buf =
  check p buf;
  let m = p.m and n = p.n in
  if m = 1 || n = 1 then ()
  else begin
    let tmp = scratches pool p in
    let over_cols pass =
      Pool.parallel_chunks pool ~lo:0 ~hi:n (fun ~chunk ~lo ~hi ->
          pass ~tmp:tmp.(chunk) ~lo ~hi)
    and over_rows pass =
      Pool.parallel_chunks pool ~lo:0 ~hi:m (fun ~chunk ~lo ~hi ->
          pass ~tmp:tmp.(chunk) ~lo ~hi)
    in
    (match variant with
    | Algo.R2c_fused -> over_cols (Kernels_f64.Phases.col_shuffle_ungather p buf)
    | Algo.R2c_decomposed ->
        over_cols
          (Kernels_f64.Phases.permute_rows p buf ~index:(Plan.q_inv p));
        over_cols
          (Kernels_f64.Phases.rotate_columns p buf ~amount:(fun j -> -j)));
    over_rows (Kernels_f64.Phases.row_shuffle_ungather p buf);
    if not (Plan.coprime p) then
      over_cols
        (Kernels_f64.Phases.rotate_columns p buf
           ~amount:(fun j -> -Plan.rotate_amount p j))
  end

let transpose ?(order = Layout.Row_major) pool ~m ~n buf =
  let rm, rn =
    match order with Layout.Row_major -> (m, n) | Layout.Col_major -> (n, m)
  in
  if rm > rn then c2r pool (Plan.make ~m:rm ~n:rn) buf
  else r2c pool (Plan.make ~m:rn ~n:rm) buf
