(** Specialized float64 kernels for the skinny matrices of data-layout
    conversion (paper §6.1): an Array of Structures of [structs] records
    with [fields] 64-bit fields is a [structs x fields] row-major matrix,
    and both dimensions of the decomposition's passes can then be
    organized so every memory access touches whole structures:

    - the column rotations degenerate to a single group of [fields]
      columns whose coarse amount is anchored at zero, leaving only the
      bounded-residual blocked pass, which streams structures through an
      on-cache strip buffer;
    - the row shuffle permutes within each structure ([fields] elements —
      always "on chip");
    - the shared row permutation moves whole structures along its cycles
      with contiguous [fields]-element copies.

    Semantically identical to
    [Xpose_simd.Aos.Make(Storage.Float64).aos_to_soa]/[soa_to_aos]
    (asserted by the tests), but monomorphic and structure-granular. *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val aos_to_soa : structs:int -> fields:int -> buf -> unit
(** In-place conversion; afterwards field [f] occupies
    [[f*structs, (f+1)*structs)].
    @raise Invalid_argument on a size mismatch. *)

val soa_to_aos : structs:int -> fields:int -> buf -> unit
(** Exact inverse. *)
