(** Parallel transposition over the specialized float64 kernels
    ({!Xpose_core.Kernels_f64}) — the fast path the CPU benchmarks
    measure. Same partitioning as {!Par_transpose}. *)

type buf = Xpose_core.Kernels_f64.buf

val c2r :
  ?variant:Xpose_core.Algo.c2r_variant -> Pool.t -> Xpose_core.Plan.t -> buf -> unit

val r2c :
  ?variant:Xpose_core.Algo.r2c_variant -> Pool.t -> Xpose_core.Plan.t -> buf -> unit

val transpose :
  ?order:Xpose_core.Layout.order -> Pool.t -> m:int -> n:int -> buf -> unit
