open Xpose_core

module Make (S : Storage.S) = struct
  module A = Algo.Make (S)
  module F = Fused.Make (S)
  module Ws = F.Ws

  type buf = S.t

  let default_width = F.default_width

  (* The panel primitives live in Fused.Make; this module keeps the
     historical sweep-at-a-time interface (one pass per sweep) on top of
     them, with scratch hoisted into a Workspace instead of allocated per
     call. *)

  let rotate_columns ?width ?block_rows ?ws ?(lo = 0) ?hi (p : Plan.t) buf
      ~amount =
    let n = p.n in
    let hi = match hi with Some h -> h | None -> n in
    if lo < 0 || hi > n || lo > hi then
      invalid_arg "Cache_aware.rotate_columns: bad column range";
    F.rotate_columns ?panel_width:width ?block_rows ?ws ~lo ~hi p buf ~amount

  let permute_rows ?width ?ws ?(lo = 0) ?hi (p : Plan.t) buf ~index =
    let m = p.m and n = p.n in
    let hi = match hi with Some h -> h | None -> n in
    if lo < 0 || hi > n || lo > hi then
      invalid_arg "Cache_aware.permute_rows: bad column range";
    let cycles = F.cycles ~whom:"Cache_aware.permute_rows" ~m ~index in
    F.permute_cols ?panel_width:width ?ws ~lo ~hi p buf ~cycles

  let c2r ?width ?ws (p : Plan.t) buf ~tmp =
    let m = p.m and n = p.n in
    if S.length buf <> m * n then invalid_arg "Cache_aware.c2r: buffer size";
    if m = 1 || n = 1 then ()
    else begin
      let ws = match ws with Some ws -> ws | None -> Ws.create () in
      if not (Plan.coprime p) then
        rotate_columns ?width ~ws p buf ~amount:(Plan.rotate_amount p);
      A.Phases.row_shuffle_gather p buf ~tmp ~lo:0 ~hi:m;
      rotate_columns ?width ~ws p buf ~amount:(fun j -> j);
      permute_rows ?width ~ws p buf ~index:(Plan.q p)
    end

  let r2c ?width ?ws (p : Plan.t) buf ~tmp =
    let m = p.m and n = p.n in
    if S.length buf <> m * n then invalid_arg "Cache_aware.r2c: buffer size";
    if m = 1 || n = 1 then ()
    else begin
      let ws = match ws with Some ws -> ws | None -> Ws.create () in
      permute_rows ?width ~ws p buf ~index:(Plan.q_inv p);
      rotate_columns ?width ~ws p buf ~amount:(fun j -> -j);
      A.Phases.row_shuffle_ungather p buf ~tmp ~lo:0 ~hi:m;
      if not (Plan.coprime p) then
        rotate_columns ?width ~ws p buf
          ~amount:(fun j -> -Plan.rotate_amount p j)
    end
end
