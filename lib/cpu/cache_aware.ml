open Xpose_core

module Make (S : Storage.S) = struct
  module A = Algo.Make (S)

  type buf = S.t

  let default_width = 16

  (* Copy the sub-row [cols lo..lo+w-1] of row [src] over the same columns
     of row [dst]. *)
  let copy_subrow buf ~n ~lo ~w ~src ~dst =
    S.blit buf ((src * n) + lo) buf ((dst * n) + lo) w

  let save_subrow buf ~n ~lo ~w ~row tmp = S.blit buf ((row * n) + lo) tmp 0 w
  let restore_subrow tmp buf ~n ~lo ~w ~row = S.blit tmp 0 buf ((row * n) + lo) w

  (* Coarse phase of §4.6: rotate the [w] columns starting at [lo] together
     by [k], by following the analytic cycles of the rotation. There are
     gcd(m, k) cycles; the chain starting at y visits y, y+k, y+2k, ... *)
  let rotate_group_coarse buf ~m ~n ~lo ~w ~k ~line =
    if k <> 0 then begin
      let cycles = Intmath.gcd m k in
      for y = 0 to cycles - 1 do
        save_subrow buf ~n ~lo ~w ~row:y line;
        let i = ref y in
        let continue = ref true in
        while !continue do
          let src = !i + k in
          let src = if src >= m then src - m else src in
          if src = y then begin
            restore_subrow line buf ~n ~lo ~w ~row:!i;
            continue := false
          end
          else begin
            copy_subrow buf ~n ~lo ~w ~src ~dst:!i;
            i := src
          end
        done
      done
    end

  (* Fine phase of §4.6: apply per-column residual rotations bounded by
     [w], reading strips of [block_rows] rows through a block buffer. Rows
     that wrap past m-1 are served from a saved copy of the head rows. *)
  let rotate_group_fine buf ~m ~n ~lo ~w ~res ~maxres ~block_rows ~head ~block =
    if maxres > 0 then begin
      (* head.(r*w + jj) caches original row r (r < maxres), columns lo+jj *)
      for r = 0 to maxres - 1 do
        S.blit buf ((r * n) + lo) head (r * w) w
      done;
      let r = ref 0 in
      while !r < m do
        let rows = min block_rows (m - !r) in
        for t = 0 to rows - 1 do
          let i = !r + t in
          for jj = 0 to w - 1 do
            let src = i + res.(jj) in
            let v =
              if src >= m then S.get head (((src - m) * w) + jj)
              else S.get buf ((src * n) + lo + jj)
            in
            S.set block ((t * w) + jj) v
          done
        done;
        for t = 0 to rows - 1 do
          S.blit block (t * w) buf (((!r + t) * n) + lo) w
        done;
        r := !r + rows
      done
    end

  let rotate_columns ?(width = default_width) ?(block_rows = 64) ?(lo = 0)
      ?hi (p : Plan.t) buf ~amount =
    let m = p.m and n = p.n in
    let hi = match hi with Some h -> h | None -> n in
    if lo < 0 || hi > n || lo > hi then
      invalid_arg "Cache_aware.rotate_columns: bad column range";
    let line = S.create width in
    let head = S.create (width * width) in
    let block = S.create (block_rows * width) in
    let res = Array.make width 0 in
    let fallback_tmp = lazy (S.create m) in
    let g = ref lo in
    while !g < hi do
      let lo = !g in
      let w = min width (hi - lo) in
      (* Anchor the coarse amount so residuals (amount j - coarse) mod m
         stay below w; increasing amounts anchor at the first column,
         decreasing ones at the last. *)
      let pick anchor =
        let k = Intmath.emod (amount anchor) m in
        let maxres = ref 0 in
        for jj = 0 to w - 1 do
          let r = Intmath.emod (amount (lo + jj) - k) m in
          res.(jj) <- r;
          if r > !maxres then maxres := r
        done;
        (k, !maxres)
      in
      let k, maxres =
        let k, mr = pick lo in
        if mr < w then (k, mr)
        else
          (* Decreasing amount functions bound residuals when anchored at
             the last column of the group instead. *)
          pick (lo + w - 1)
      in
      if maxres < w && maxres < m then begin
        rotate_group_coarse buf ~m ~n ~lo ~w ~k ~line;
        rotate_group_fine buf ~m ~n ~lo ~w ~res ~maxres ~block_rows ~head
          ~block
      end
      else
        (* Arbitrary amount function: per-column rotation is still exact. *)
        A.Phases.rotate_columns p buf ~tmp:(Lazy.force fallback_tmp) ~amount
          ~lo ~hi:(lo + w);
      g := lo + w
    done

  (* §4.7: discover the cycles of the shared row permutation once. Returns
     the rows of each nontrivial cycle in gather-chain order. *)
  let build_cycles ~m ~index =
    let index i =
      let v = index i in
      if v < 0 || v >= m then
        invalid_arg "Cache_aware.permute_rows: index out of range";
      v
    in
    let visited = Bytes.make m '\000' in
    let chains = ref [] in
    for i0 = 0 to m - 1 do
      if Bytes.get visited i0 = '\000' then begin
        Bytes.set visited i0 '\001';
        let src = index i0 in
        if src <> i0 then begin
          let chain = ref [ i0 ] in
          let i = ref src in
          while !i <> i0 do
            if Bytes.get visited !i <> '\000' then
              invalid_arg "Cache_aware.permute_rows: index is not a permutation";
            Bytes.set visited !i '\001';
            chain := !i :: !chain;
            i := index !i
          done;
          chains := Array.of_list (List.rev !chain) :: !chains
        end
      end
    done;
    !chains

  let permute_rows ?(width = default_width) ?(lo = 0) ?hi (p : Plan.t) buf
      ~index =
    let m = p.m and n = p.n in
    let hi = match hi with Some h -> h | None -> n in
    if lo < 0 || hi > n || lo > hi then
      invalid_arg "Cache_aware.permute_rows: bad column range";
    let cycles = build_cycles ~m ~index in
    let line = S.create width in
    let g = ref lo in
    while !g < hi do
      let lo = !g in
      let w = min width (hi - lo) in
      List.iter
        (fun chain ->
          (* chain.(t+1) = index chain.(t): new row chain.(t) takes the old
             contents of row chain.(t+1); the last takes the saved head. *)
          let len = Array.length chain in
          save_subrow buf ~n ~lo ~w ~row:chain.(0) line;
          for t = 0 to len - 2 do
            copy_subrow buf ~n ~lo ~w ~src:chain.(t + 1) ~dst:chain.(t)
          done;
          restore_subrow line buf ~n ~lo ~w ~row:chain.(len - 1))
        cycles;
      g := lo + w
    done

  let c2r ?width (p : Plan.t) buf ~tmp =
    let m = p.m and n = p.n in
    if S.length buf <> m * n then invalid_arg "Cache_aware.c2r: buffer size";
    if m = 1 || n = 1 then ()
    else begin
      if not (Plan.coprime p) then
        rotate_columns ?width p buf ~amount:(Plan.rotate_amount p);
      A.Phases.row_shuffle_gather p buf ~tmp ~lo:0 ~hi:m;
      rotate_columns ?width p buf ~amount:(fun j -> j);
      permute_rows ?width p buf ~index:(Plan.q p)
    end

  let r2c ?width (p : Plan.t) buf ~tmp =
    let m = p.m and n = p.n in
    if S.length buf <> m * n then invalid_arg "Cache_aware.r2c: buffer size";
    if m = 1 || n = 1 then ()
    else begin
      permute_rows ?width p buf ~index:(Plan.q_inv p);
      rotate_columns ?width p buf ~amount:(fun j -> -j);
      A.Phases.row_shuffle_ungather p buf ~tmp ~lo:0 ~hi:m;
      if not (Plan.coprime p) then
        rotate_columns ?width p buf ~amount:(fun j -> -Plan.rotate_amount p j)
    end
end
