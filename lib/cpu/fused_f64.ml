open Xpose_core

type buf = Storage.Float64.t

open Bigarray.Array1
module Ws = Workspace.F64
module G = Fused.Make (Storage.Float64)

let default_width = G.default_width
let default_block_rows = G.default_block_rows
let supported_widths = G.supported_widths
let cycles ~m ~index = G.cycles ~whom:"Fused_f64" ~m ~index
let get_ws = function Some ws -> ws | None -> Ws.create ()

(* -- shared pure index math ---------------------------------------------- *)

let pick_residuals ~m ~lo ~w ~amount ~(res : int array) anchor =
  let k = Intmath.emod (amount anchor) m in
  let maxres = ref 0 in
  for jj = 0 to w - 1 do
    let r = Intmath.emod (amount (lo + jj) - k) m in
    res.(jj) <- r;
    if r > !maxres then maxres := r
  done;
  (k, !maxres)

let check_range whom ~n ~lo ~hi =
  if lo < 0 || hi > n || lo > hi then invalid_arg (whom ^ ": bad column range")

let rotate_panel_pred (p : Plan.t) ~amount ~lo ~w =
  let moved = ref false in
  for jj = 0 to w - 1 do
    if Intmath.emod (amount (lo + jj)) p.m <> 0 then moved := true
  done;
  if !moved then Pass_cost.fused_panel p ~width:w else 0

let cycle_rows cycles =
  Array.fold_left (fun acc chain -> acc + Array.length chain) 0 cycles

let obs_pass (p : Plan.t) name ~pred f =
  Xpose_obs.Tracer.pass ~name ~rows:p.m ~cols:p.n ~pred_touches:pred
    ~scratch_elems:(Plan.scratch_elements p) f

let check_buf whom (p : Plan.t) (buf : buf) =
  if dim buf <> p.m * p.n then
    invalid_arg (whom ^ ": buffer size does not match plan")

let over_columns pool ~n ~width pass =
  let groups = Intmath.ceil_div n width in
  Pool.parallel_chunks pool ~lo:0 ~hi:groups (fun ~chunk ~lo ~hi ->
      let lo = lo * width and hi = min n (hi * width) in
      if lo < hi then pass ~chunk ~lo ~hi)

let get_workspaces ?workspaces pool =
  match workspaces with
  | Some wss ->
      if Array.length wss < Pool.workers pool then
        invalid_arg "Fused_f64: fewer workspaces than pool lanes";
      wss
  | None -> Array.init (Pool.workers pool) (fun _ -> Ws.create ())

(* -- panel primitives ---------------------------------------------------- *)

(* The per-element panel work. The raw implementation ({!Prims}) and its
   checked twin ({!Checked_prims}) both satisfy this; {!Engine_of} builds
   the sweeps, serial engines, pool drivers, and batch driver from
   either. *)
module type PRIMS = sig
  val rotate_panel :
    tier:Tune_params.kernel_tier ->
    block_rows:int ->
    Ws.t ->
    Plan.t ->
    buf ->
    amount:(int -> int) ->
    res:int array ->
    lo:int ->
    w:int ->
    unit

  val permute_panel :
    tier:Tune_params.kernel_tier ->
    Ws.t ->
    buf ->
    n:int ->
    cycles:int array array ->
    lo:int ->
    w:int ->
    unit

  val row_shuffle_gather : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit
  val row_shuffle_ungather : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit
end

module Prims = struct
  (* -- monomorphic sub-row primitives -----------------------------------
     Explicit unsafe loops instead of [Bigarray.Array1.sub]+[blit]: the sub
     views are heap allocations per transfer, and for the 16-element panel
     width a direct loop vectorizes at least as well. Under an mk tier
     ([mk = true]) the sub-row moves go through the unrolled
     {!Microkernel.copy_span} chunks instead. *)

  let copy_subrow ~mk (buf : buf) ~n ~lo ~w ~src ~dst =
    let sb = (src * n) + lo and db = (dst * n) + lo in
    if mk then Microkernel.copy_span ~src:buf ~soff:sb ~dst:buf ~doff:db ~len:w
    else
      for jj = 0 to w - 1 do
        unsafe_set buf (db + jj) (unsafe_get buf (sb + jj))
      done

  let save_subrow ~mk (buf : buf) ~n ~lo ~w ~row (line : buf) =
    let base = (row * n) + lo in
    if mk then
      Microkernel.copy_span ~src:buf ~soff:base ~dst:line ~doff:0 ~len:w
    else
      for jj = 0 to w - 1 do
        unsafe_set line jj (unsafe_get buf (base + jj))
      done

  let restore_subrow ~mk (line : buf) (buf : buf) ~n ~lo ~w ~row =
    let base = (row * n) + lo in
    if mk then
      Microkernel.copy_span ~src:line ~soff:0 ~dst:buf ~doff:base ~len:w
    else
      for jj = 0 to w - 1 do
        unsafe_set buf (base + jj) (unsafe_get line jj)
      done

  (* Coarse phase of §4.6: cycle-following rotation of the whole panel by a
     shared amount k (gcd(m, k) analytic cycles). *)
  let rotate_coarse ~mk (buf : buf) ~m ~n ~lo ~w ~k ~line =
    if k <> 0 then begin
      let cycles = Intmath.gcd m k in
      for y = 0 to cycles - 1 do
        save_subrow ~mk buf ~n ~lo ~w ~row:y line;
        let i = ref y in
        let continue = ref true in
        while !continue do
          let src = !i + k in
          let src = if src >= m then src - m else src in
          if src = y then begin
            restore_subrow ~mk line buf ~n ~lo ~w ~row:!i;
            continue := false
          end
          else begin
            copy_subrow ~mk buf ~n ~lo ~w ~src ~dst:!i;
            i := src
          end
        done
      done
    end

  (* Per-panel strength reduction shared by the fine-phase gathers:
     [cb.(jj) = res.(jj)*n + lo + jj], so the source index of panel
     element (i, jj) is [i*n + cb.(jj)] — one add per element instead of
     a multiply, and the row term hoists out of the inner loop. *)
  let column_bases ~n ~lo ~w ~(res : int array) =
    let cb = Array.make w 0 in
    for jj = 0 to w - 1 do
      cb.(jj) <- (res.(jj) * n) + lo + jj
    done;
    cb

  let save_head (buf : buf) ~n ~lo ~w ~maxres ~(head : buf) =
    let base = ref lo in
    let hb = ref 0 in
    for _r = 0 to maxres - 1 do
      let b = !base and h = !hb in
      for jj = 0 to w - 1 do
        unsafe_set head (h + jj) (unsafe_get buf (b + jj))
      done;
      base := !base + n;
      hb := !hb + w
    done

  (* Scalar gather of strip rows [t0, rows) (absolute rows [r0+t0,
     r0+rows)) into the block buffer, wrapped rows from the saved head.
     Row bases are strength-reduced: the only per-element work is the
     wrap test and one add. *)
  let gather_scalar (buf : buf) ~m ~n ~w ~(res : int array) ~(cb : int array)
      ~r0 ~t0 ~rows ~(head : buf) ~(block : buf) =
    let ib = ref ((r0 + t0) * n) in
    let tb = ref (t0 * w) in
    for t = t0 to rows - 1 do
      let i = r0 + t in
      let limit = m - 1 - i in
      let b = !ib and d = !tb in
      for jj = 0 to w - 1 do
        let rv = Array.unsafe_get res jj in
        let v =
          if rv > limit then unsafe_get head (((i + rv - m) * w) + jj)
          else unsafe_get buf (b + Array.unsafe_get cb jj)
        in
        unsafe_set block (d + jj) v
      done;
      ib := !ib + n;
      tb := !tb + w
    done

  let writeback_scalar (buf : buf) ~n ~lo ~w ~r0 ~rows ~(block : buf) =
    let base = ref ((r0 * n) + lo) in
    let tb = ref 0 in
    for _t = 0 to rows - 1 do
      let b = !base and s = !tb in
      for jj = 0 to w - 1 do
        unsafe_set buf (b + jj) (unsafe_get block (s + jj))
      done;
      base := !base + n;
      tb := !tb + w
    done

  (* Fine phase of §4.6: per-column residual rotations bounded by [w], read
     in strips of [block_rows] rows through the block buffer; wrapped rows
     come from the saved head. *)
  let rotate_fine (buf : buf) ~m ~n ~lo ~w ~(res : int array) ~maxres
      ~block_rows ~(head : buf) ~(block : buf) =
    if maxres > 0 then begin
      let cb = column_bases ~n ~lo ~w ~res in
      save_head buf ~n ~lo ~w ~maxres ~head;
      let r = ref 0 in
      while !r < m do
        let rows = min block_rows (m - !r) in
        gather_scalar buf ~m ~n ~w ~res ~cb ~r0:!r ~t0:0 ~rows ~head ~block;
        writeback_scalar buf ~n ~lo ~w ~r0:!r ~rows ~block;
        r := !r + rows
      done
    end

  (* Micro-kernel fine phase: identical movement, but rows whose whole
     [bk]-row chunk stays unwrapped ([r0 + t + bk - 1 + maxres < m])
     gather through fully unrolled strided column movers — one
     {!Microkernel.col8}/{!col16} call per panel column, no per-element
     wrap test — and the strip writes back through unrolled
     {!Microkernel.copy_span} rows. The strip tail and the wrap region
     take the strength-reduced scalar path. *)
  let rotate_fine_mk ~bk (buf : buf) ~m ~n ~lo ~w ~(res : int array) ~maxres
      ~block_rows ~(head : buf) ~(block : buf) =
    if maxres > 0 then begin
      let cb = column_bases ~n ~lo ~w ~res in
      save_head buf ~n ~lo ~w ~maxres ~head;
      let r = ref 0 in
      while !r < m do
        let rows = min block_rows (m - !r) in
        (* chunk start t admits the unrolled movers iff every source row
           of its bk rows is below m: t <= m - maxres - bk - r0 *)
        let tmax = min (rows - bk) (m - maxres - bk - !r) in
        let t = ref 0 in
        while !t <= tmax do
          let ib = (!r + !t) * n in
          let tb = !t * w in
          if bk = 8 then
            for jj = 0 to w - 1 do
              Microkernel.col8 ~src:buf
                ~soff:(ib + Array.unsafe_get cb jj)
                ~sstride:n ~dst:block ~doff:(tb + jj) ~dstride:w
            done
          else
            for jj = 0 to w - 1 do
              Microkernel.col16 ~src:buf
                ~soff:(ib + Array.unsafe_get cb jj)
                ~sstride:n ~dst:block ~doff:(tb + jj) ~dstride:w
            done;
          t := !t + bk
        done;
        if !t < rows then
          gather_scalar buf ~m ~n ~w ~res ~cb ~r0:!r ~t0:!t ~rows ~head ~block;
        let base = ref ((!r * n) + lo) in
        let tb = ref 0 in
        for _t = 0 to rows - 1 do
          Microkernel.copy_span ~src:block ~soff:!tb ~dst:buf ~doff:!base
            ~len:w;
          base := !base + n;
          tb := !tb + w
        done;
        r := !r + rows
      done
    end

  let rotate_panel ~tier ~block_rows ws (p : Plan.t) (buf : buf) ~amount ~res
      ~lo ~w =
    let m = p.m and n = p.n in
    let k, maxres =
      let k, mr = pick_residuals ~m ~lo ~w ~amount ~res lo in
      if mr < w then (k, mr)
      else pick_residuals ~m ~lo ~w ~amount ~res (lo + w - 1)
    in
    if maxres < w && maxres < m then begin
      let mk = tier <> Tune_params.Scalar in
      rotate_coarse ~mk buf ~m ~n ~lo ~w ~k ~line:(Ws.line ws w);
      let head = Ws.head ws (w * w) in
      let block = Ws.block ws (block_rows * w) in
      match tier with
      | Tune_params.Scalar ->
          rotate_fine buf ~m ~n ~lo ~w ~res ~maxres ~block_rows ~head ~block
      | Tune_params.Mk8 ->
          rotate_fine_mk ~bk:8 buf ~m ~n ~lo ~w ~res ~maxres ~block_rows ~head
            ~block
      | Tune_params.Mk16 ->
          rotate_fine_mk ~bk:16 buf ~m ~n ~lo ~w ~res ~maxres ~block_rows
            ~head ~block
    end
    else
      Kernels_f64.Phases.rotate_columns p buf ~tmp:(Ws.tmp ws m) ~amount ~lo
        ~hi:(lo + w)

  let permute_panel ~tier ws (buf : buf) ~n ~cycles ~lo ~w =
    let mk = tier <> Tune_params.Scalar in
    let line = Ws.line ws w in
    Array.iter
      (fun (chain : int array) ->
        let len = Array.length chain in
        save_subrow ~mk buf ~n ~lo ~w ~row:chain.(0) line;
        for t = 0 to len - 2 do
          copy_subrow ~mk buf ~n ~lo ~w ~src:chain.(t + 1) ~dst:chain.(t)
        done;
        restore_subrow ~mk line buf ~n ~lo ~w ~row:chain.(len - 1))
      cycles

  let row_shuffle_gather = Kernels_f64.Phases.row_shuffle_gather
  let row_shuffle_ungather = Kernels_f64.Phases.row_shuffle_ungather
end

(* Checked twins of the panel primitives: every access to the matrix and
   to the line/head/block workspace buffers is bounds-verified, and the
   workspace buffers are verified distinct from the matrix
   ([Checked_access.Violation] on the first bad access). *)
module Checked_prims = struct
  let who = "Fused_f64.Checked"

  let cget (buf : buf) what i =
    Checked_access.bounds ~who ~what ~len:(dim buf) i;
    unsafe_get buf i

  let cset (buf : buf) what i v =
    Checked_access.bounds ~who ~what ~len:(dim buf) i;
    unsafe_set buf i v

  (* The mk-tier twins route the same tile structure through
     {!Microkernel.Checked}: every unrolled mover access is bounds
     verified, so the shadow run exercises exactly the tier the raw
     engine would. *)
  let copy_subrow ~mk (buf : buf) ~n ~lo ~w ~src ~dst =
    let sb = (src * n) + lo and db = (dst * n) + lo in
    if mk then
      Microkernel.Checked.copy_span ~src:buf ~soff:sb ~dst:buf ~doff:db ~len:w
    else
      for jj = 0 to w - 1 do
        cset buf "panel copy write" (db + jj)
          (cget buf "panel copy read" (sb + jj))
      done

  let save_subrow ~mk (buf : buf) ~n ~lo ~w ~row (line : buf) =
    let base = (row * n) + lo in
    if mk then
      Microkernel.Checked.copy_span ~src:buf ~soff:base ~dst:line ~doff:0
        ~len:w
    else
      for jj = 0 to w - 1 do
        cset line "panel line write" jj (cget buf "panel save read" (base + jj))
      done

  let restore_subrow ~mk (line : buf) (buf : buf) ~n ~lo ~w ~row =
    let base = (row * n) + lo in
    if mk then
      Microkernel.Checked.copy_span ~src:line ~soff:0 ~dst:buf ~doff:base
        ~len:w
    else
      for jj = 0 to w - 1 do
        cset buf "panel restore write" (base + jj)
          (cget line "panel line read" jj)
      done

  let rotate_coarse ~mk (buf : buf) ~m ~n ~lo ~w ~k ~line =
    Checked_access.distinct ~who ~what:"panel line buffer" line buf;
    if k <> 0 then begin
      let cycles = Intmath.gcd m k in
      for y = 0 to cycles - 1 do
        save_subrow ~mk buf ~n ~lo ~w ~row:y line;
        let i = ref y in
        let continue = ref true in
        while !continue do
          let src = !i + k in
          let src = if src >= m then src - m else src in
          if src = y then begin
            restore_subrow ~mk line buf ~n ~lo ~w ~row:!i;
            continue := false
          end
          else begin
            copy_subrow ~mk buf ~n ~lo ~w ~src ~dst:!i;
            i := src
          end
        done
      done
    end

  let gather_scalar (buf : buf) ~m ~n ~lo ~w ~(res : int array) ~r0 ~t0 ~rows
      ~(head : buf) ~(block : buf) =
    for t = t0 to rows - 1 do
      let i = r0 + t in
      for jj = 0 to w - 1 do
        let src = i + res.(jj) in
        let v =
          if src >= m then cget head "panel head read" (((src - m) * w) + jj)
          else cget buf "panel fine read" ((src * n) + lo + jj)
        in
        cset block "panel block write" ((t * w) + jj) v
      done
    done

  let rotate_fine ~tier (buf : buf) ~m ~n ~lo ~w ~(res : int array) ~maxres
      ~block_rows ~(head : buf) ~(block : buf) =
    Checked_access.distinct ~who ~what:"panel head buffer" head buf;
    Checked_access.distinct ~who ~what:"panel block buffer" block buf;
    let bk = Tune_params.tier_block tier in
    if maxres > 0 then begin
      for r = 0 to maxres - 1 do
        let base = (r * n) + lo in
        for jj = 0 to w - 1 do
          cset head "panel head write" ((r * w) + jj)
            (cget buf "panel fine read" (base + jj))
        done
      done;
      let r = ref 0 in
      while !r < m do
        let rows = min block_rows (m - !r) in
        let t = ref 0 in
        if bk > 1 then begin
          let tmax = min (rows - bk) (m - maxres - bk - !r) in
          while !t <= tmax do
            let ib = (!r + !t) * n in
            let tb = !t * w in
            for jj = 0 to w - 1 do
              let soff = ib + (res.(jj) * n) + lo + jj in
              if bk = 8 then
                Microkernel.Checked.col8 ~src:buf ~soff ~sstride:n ~dst:block
                  ~doff:(tb + jj) ~dstride:w
              else
                Microkernel.Checked.col16 ~src:buf ~soff ~sstride:n ~dst:block
                  ~doff:(tb + jj) ~dstride:w
            done;
            t := !t + bk
          done
        end;
        if !t < rows then
          gather_scalar buf ~m ~n ~lo ~w ~res ~r0:!r ~t0:!t ~rows ~head ~block;
        for t = 0 to rows - 1 do
          let base = ((!r + t) * n) + lo in
          if bk > 1 then
            Microkernel.Checked.copy_span ~src:block ~soff:(t * w) ~dst:buf
              ~doff:base ~len:w
          else
            for jj = 0 to w - 1 do
              cset buf "panel fine write" (base + jj)
                (cget block "panel block read" ((t * w) + jj))
            done
        done;
        r := !r + rows
      done
    end

  let rotate_panel ~tier ~block_rows ws (p : Plan.t) (buf : buf) ~amount ~res
      ~lo ~w =
    let m = p.m and n = p.n in
    let k, maxres =
      let k, mr = pick_residuals ~m ~lo ~w ~amount ~res lo in
      if mr < w then (k, mr)
      else pick_residuals ~m ~lo ~w ~amount ~res (lo + w - 1)
    in
    if maxres < w && maxres < m then begin
      let mk = tier <> Tune_params.Scalar in
      rotate_coarse ~mk buf ~m ~n ~lo ~w ~k ~line:(Ws.line ws w);
      rotate_fine ~tier buf ~m ~n ~lo ~w ~res ~maxres ~block_rows
        ~head:(Ws.head ws (w * w))
        ~block:(Ws.block ws (block_rows * w))
    end
    else
      Kernels_f64.Checked.Phases.rotate_columns p buf ~tmp:(Ws.tmp ws m)
        ~amount ~lo ~hi:(lo + w)

  let permute_panel ~tier ws (buf : buf) ~n ~cycles ~lo ~w =
    let mk = tier <> Tune_params.Scalar in
    let line = Ws.line ws w in
    Checked_access.distinct ~who ~what:"panel line buffer" line buf;
    Array.iter
      (fun (chain : int array) ->
        let len = Array.length chain in
        save_subrow ~mk buf ~n ~lo ~w ~row:chain.(0) line;
        for t = 0 to len - 2 do
          copy_subrow ~mk buf ~n ~lo ~w ~src:chain.(t + 1) ~dst:chain.(t)
        done;
        restore_subrow ~mk line buf ~n ~lo ~w ~row:chain.(len - 1))
      cycles

  let row_shuffle_gather = Kernels_f64.Checked.Phases.row_shuffle_gather
  let row_shuffle_ungather = Kernels_f64.Checked.Phases.row_shuffle_ungather
end

(* -- the engine over either primitive set -------------------------------- *)

module type ENGINE = sig
  val rotate_columns :
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Tune_params.kernel_tier ->
    ?ws:Ws.t ->
    ?lo:int ->
    ?hi:int ->
    Plan.t ->
    buf ->
    amount:(int -> int) ->
    unit

  val permute_cols :
    ?panel_width:int ->
    ?tier:Tune_params.kernel_tier ->
    ?ws:Ws.t ->
    ?lo:int ->
    ?hi:int ->
    Plan.t ->
    buf ->
    cycles:int array array ->
    unit

  val c2r_cols :
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Tune_params.kernel_tier ->
    ?ws:Ws.t ->
    ?lo:int ->
    ?hi:int ->
    Plan.t ->
    buf ->
    cycles:int array array ->
    unit

  val r2c_cols :
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Tune_params.kernel_tier ->
    ?ws:Ws.t ->
    ?lo:int ->
    ?hi:int ->
    Plan.t ->
    buf ->
    cycles:int array array ->
    unit

  val c2r :
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Tune_params.kernel_tier ->
    ?ws:Ws.t ->
    Plan.t ->
    buf ->
    unit

  val r2c :
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Tune_params.kernel_tier ->
    ?ws:Ws.t ->
    Plan.t ->
    buf ->
    unit

  val transpose :
    ?order:Layout.order ->
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Tune_params.kernel_tier ->
    ?ws:Ws.t ->
    ?cache:Plan.Cache.t ->
    m:int ->
    n:int ->
    buf ->
    unit

  val c2r_pool :
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Tune_params.kernel_tier ->
    ?workspaces:Ws.t array ->
    Pool.t ->
    Plan.t ->
    buf ->
    unit

  val r2c_pool :
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Tune_params.kernel_tier ->
    ?workspaces:Ws.t array ->
    Pool.t ->
    Plan.t ->
    buf ->
    unit

  val transpose_pool :
    ?order:Layout.order ->
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Tune_params.kernel_tier ->
    ?workspaces:Ws.t array ->
    ?cache:Plan.Cache.t ->
    Pool.t ->
    m:int ->
    n:int ->
    buf ->
    unit

  val transpose_batch :
    ?order:Layout.order ->
    ?split:Tune_params.batch_split ->
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Tune_params.kernel_tier ->
    ?cache:Plan.Cache.t ->
    Pool.t ->
    m:int ->
    n:int ->
    buf array ->
    unit
end

(* Sweeps, serial engines, pool drivers, and the batch driver, written
   once over {!PRIMS}. Without flambda the functor costs an indirect call
   per panel visit / per pass chunk — never per element — so the raw
   instantiation keeps its specialized speed. *)
module Engine_of (P : PRIMS) : ENGINE = struct
  (* -- column-range sweeps ---------------------------------------------- *)

  let rotate_columns ?panel_width:(width = default_width)
      ?(block_rows = default_block_rows) ?(tier = Tune_params.Scalar) ?ws
      ?(lo = 0) ?hi (p : Plan.t) buf ~amount =
    let m = p.m and n = p.n in
    let hi = match hi with Some h -> h | None -> n in
    check_range "Fused_f64.rotate_columns" ~n ~lo ~hi;
    let ws = get_ws ws in
    let res = Array.make width 0 in
    let g = ref lo in
    while !g < hi do
      let lo = !g in
      let w = min width (hi - lo) in
      Xpose_obs.Tracer.panel ~name:"rotate_panel" ~lo ~width:w ~rows:m
        ~pred_touches:(rotate_panel_pred p ~amount ~lo ~w)
        (fun () ->
          P.rotate_panel ~tier ~block_rows ws p buf ~amount ~res ~lo ~w);
      g := lo + w
    done

  let permute_cols ?panel_width:(width = default_width)
      ?(tier = Tune_params.Scalar) ?ws ?(lo = 0) ?hi (p : Plan.t) buf ~cycles =
    let m = p.m and n = p.n in
    let hi = match hi with Some h -> h | None -> n in
    check_range "Fused_f64.permute_cols" ~n ~lo ~hi;
    let ws = get_ws ws in
    let rows = cycle_rows cycles in
    let g = ref lo in
    while !g < hi do
      let lo = !g in
      let w = min width (hi - lo) in
      Xpose_obs.Tracer.panel ~name:"permute_panel" ~lo ~width:w ~rows:m
        ~pred_touches:(2 * rows * w)
        (fun () -> P.permute_panel ~tier ws buf ~n ~cycles ~lo ~w);
      g := lo + w
    done

  (* -- fused panel visits ------------------------------------------------ *)

  let c2r_cols ?panel_width:(width = default_width) ?(block_rows = default_block_rows)
      ?(tier = Tune_params.Scalar) ?ws ?(lo = 0) ?hi (p : Plan.t) buf ~cycles =
    let m = p.m and n = p.n in
    let hi = match hi with Some h -> h | None -> n in
    check_range "Fused_f64.c2r_cols" ~n ~lo ~hi;
    let ws = get_ws ws in
    let res = Array.make width 0 in
    let g = ref lo in
    while !g < hi do
      let lo = !g in
      let w = min width (hi - lo) in
      Xpose_obs.Tracer.panel ~name:"fused_panel" ~lo ~width:w ~rows:m
        ~pred_touches:(Pass_cost.fused_panel p ~width:w)
        (fun () ->
          P.rotate_panel ~tier ~block_rows ws p buf ~amount:(fun j -> j) ~res
            ~lo ~w;
          P.permute_panel ~tier ws buf ~n ~cycles ~lo ~w);
      g := lo + w
    done

  let r2c_cols ?panel_width:(width = default_width) ?(block_rows = default_block_rows)
      ?(tier = Tune_params.Scalar) ?ws ?(lo = 0) ?hi (p : Plan.t) buf ~cycles =
    let m = p.m and n = p.n in
    let hi = match hi with Some h -> h | None -> n in
    check_range "Fused_f64.r2c_cols" ~n ~lo ~hi;
    let ws = get_ws ws in
    let res = Array.make width 0 in
    let g = ref lo in
    while !g < hi do
      let lo = !g in
      let w = min width (hi - lo) in
      Xpose_obs.Tracer.panel ~name:"fused_panel" ~lo ~width:w ~rows:m
        ~pred_touches:(Pass_cost.fused_panel p ~width:w)
        (fun () ->
          P.permute_panel ~tier ws buf ~n ~cycles ~lo ~w;
          P.rotate_panel ~tier ~block_rows ws p buf ~amount:(fun j -> -j) ~res
            ~lo ~w);
      g := lo + w
    done

  (* -- serial engines ---------------------------------------------------- *)

  let c2r ?panel_width:(width = default_width) ?(block_rows = default_block_rows)
      ?(tier = Tune_params.Scalar) ?ws (p : Plan.t) buf =
    check_buf "Fused_f64.c2r" p buf;
    let m = p.m in
    if m = 1 || p.n = 1 then ()
    else begin
      let ws = get_ws ws in
      if not (Plan.coprime p) then begin
        let amount = Plan.rotate_amount p in
        obs_pass p "rotate_pre" ~pred:(Pass_cost.panel_rotate p ~width ~amount)
          (fun () ->
            rotate_columns ~panel_width:width ~block_rows ~tier ~ws p buf
              ~amount)
      end;
      obs_pass p "row_shuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
          P.row_shuffle_gather p buf
            ~tmp:(Ws.tmp ws (Plan.scratch_elements p))
            ~lo:0 ~hi:m);
      let cycles = cycles ~m ~index:(Plan.q p) in
      obs_pass p "fused_col" ~pred:(Pass_cost.fused_col p) (fun () ->
          c2r_cols ~panel_width:width ~block_rows ~tier ~ws p buf ~cycles)
    end

  let r2c ?panel_width:(width = default_width) ?(block_rows = default_block_rows)
      ?(tier = Tune_params.Scalar) ?ws (p : Plan.t) buf =
    check_buf "Fused_f64.r2c" p buf;
    let m = p.m in
    if m = 1 || p.n = 1 then ()
    else begin
      let ws = get_ws ws in
      let cycles = cycles ~m ~index:(Plan.q_inv p) in
      obs_pass p "fused_col" ~pred:(Pass_cost.fused_col p) (fun () ->
          r2c_cols ~panel_width:width ~block_rows ~tier ~ws p buf ~cycles);
      obs_pass p "row_unshuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
          P.row_shuffle_ungather p buf
            ~tmp:(Ws.tmp ws (Plan.scratch_elements p))
            ~lo:0 ~hi:m);
      if not (Plan.coprime p) then begin
        let amount j = -Plan.rotate_amount p j in
        obs_pass p "rotate_post"
          ~pred:(Pass_cost.panel_rotate p ~width ~amount)
          (fun () ->
            rotate_columns ~panel_width:width ~block_rows ~tier ~ws p buf
              ~amount)
      end
    end

  (* Plan-cache entries are keyed by (and carry) the configuration the
     caller actually runs, so differently tuned callers of one shape
     never alias. *)
  let cache_params ?(split = Tune_params.Auto) ?(tier = Tune_params.Scalar)
      width =
    {
      Tune_params.default with
      panel_width = Option.value width ~default:default_width;
      batch_split = split;
      kernel_tier = tier;
    }

  let transpose ?(order = Layout.Row_major) ?panel_width:width ?block_rows
      ?tier ?ws ?cache ~m ~n buf =
    let rm, rn =
      match order with Layout.Row_major -> (m, n) | Layout.Col_major -> (n, m)
    in
    let params = cache_params ?tier width in
    if rm > rn then
      c2r ?panel_width:width ?block_rows ?tier ?ws
        (Plan.Cache.get ?cache ~params ~m:rm ~n:rn ())
        buf
    else
      r2c ?panel_width:width ?block_rows ?tier ?ws
        (Plan.Cache.get ?cache ~params ~m:rn ~n:rm ())
        buf

  (* -- pool drivers ------------------------------------------------------ *)

  let c2r_pool ?panel_width:(width = default_width) ?(block_rows = default_block_rows)
      ?(tier = Tune_params.Scalar) ?workspaces pool (p : Plan.t) buf =
    check_buf "Fused_f64.c2r_pool" p buf;
    let m = p.m and n = p.n in
    if m = 1 || n = 1 then ()
    else begin
      let wss = get_workspaces ?workspaces pool in
      if not (Plan.coprime p) then begin
        let amount = Plan.rotate_amount p in
        obs_pass p "rotate_pre" ~pred:(Pass_cost.panel_rotate p ~width ~amount)
          (fun () ->
            over_columns pool ~n ~width (fun ~chunk ~lo ~hi ->
                rotate_columns ~panel_width:width ~block_rows ~tier
                  ~ws:wss.(chunk) ~lo ~hi p buf ~amount))
      end;
      obs_pass p "row_shuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
          Pool.parallel_chunks pool ~lo:0 ~hi:m (fun ~chunk ~lo ~hi ->
              P.row_shuffle_gather p buf
                ~tmp:(Ws.tmp wss.(chunk) (Plan.scratch_elements p))
                ~lo ~hi));
      let cycles = cycles ~m ~index:(Plan.q p) in
      obs_pass p "fused_col" ~pred:(Pass_cost.fused_col p) (fun () ->
          over_columns pool ~n ~width (fun ~chunk ~lo ~hi ->
              c2r_cols ~panel_width:width ~block_rows ~tier ~ws:wss.(chunk)
                ~lo ~hi p buf ~cycles))
    end

  let r2c_pool ?panel_width:(width = default_width) ?(block_rows = default_block_rows)
      ?(tier = Tune_params.Scalar) ?workspaces pool (p : Plan.t) buf =
    check_buf "Fused_f64.r2c_pool" p buf;
    let m = p.m and n = p.n in
    if m = 1 || n = 1 then ()
    else begin
      let wss = get_workspaces ?workspaces pool in
      let cycles = cycles ~m ~index:(Plan.q_inv p) in
      obs_pass p "fused_col" ~pred:(Pass_cost.fused_col p) (fun () ->
          over_columns pool ~n ~width (fun ~chunk ~lo ~hi ->
              r2c_cols ~panel_width:width ~block_rows ~tier ~ws:wss.(chunk)
                ~lo ~hi p buf ~cycles));
      obs_pass p "row_unshuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
          Pool.parallel_chunks pool ~lo:0 ~hi:m (fun ~chunk ~lo ~hi ->
              P.row_shuffle_ungather p buf
                ~tmp:(Ws.tmp wss.(chunk) (Plan.scratch_elements p))
                ~lo ~hi));
      if not (Plan.coprime p) then begin
        let amount j = -Plan.rotate_amount p j in
        obs_pass p "rotate_post"
          ~pred:(Pass_cost.panel_rotate p ~width ~amount)
          (fun () ->
            over_columns pool ~n ~width (fun ~chunk ~lo ~hi ->
                rotate_columns ~panel_width:width ~block_rows ~tier
                  ~ws:wss.(chunk) ~lo ~hi p buf ~amount))
      end
    end

  let transpose_pool ?(order = Layout.Row_major) ?panel_width:width ?block_rows
      ?tier ?workspaces ?cache pool ~m ~n buf =
    let rm, rn =
      match order with Layout.Row_major -> (m, n) | Layout.Col_major -> (n, m)
    in
    let params = cache_params ?tier width in
    if rm > rn then
      c2r_pool ?panel_width:width ?block_rows ?tier ?workspaces pool
        (Plan.Cache.get ?cache ~params ~m:rm ~n:rn ())
        buf
    else
      r2c_pool ?panel_width:width ?block_rows ?tier ?workspaces pool
        (Plan.Cache.get ?cache ~params ~m:rn ~n:rm ())
        buf

  (* -- batched transpose ------------------------------------------------- *)

  let transpose_batch ?(order = Layout.Row_major) ?(split = Tune_params.Auto)
      ?panel_width:width ?block_rows ?tier ?cache pool ~m ~n bufs =
    let rm, rn =
      match order with Layout.Row_major -> (m, n) | Layout.Col_major -> (n, m)
    in
    let nb = Array.length bufs in
    if nb > 0 then begin
      (* Validate the whole batch before moving any element, so a bad
         buffer cannot leave earlier matrices transposed and later ones
         untouched. *)
      Array.iter
        (fun b ->
          if dim b <> rm * rn then
            invalid_arg
              "Fused_f64.transpose_batch: buffer size does not match shape")
        bufs;
      let c2r_side = rm > rn in
      let params = cache_params ~split ?tier width in
      let p =
        if c2r_side then Plan.Cache.get ?cache ~params ~m:rm ~n:rn ()
        else Plan.Cache.get ?cache ~params ~m:rn ~n:rm ()
      in
      let lanes = Pool.workers pool in
      (* The split policy decides matrix- vs panel-parallelism; a
         single-lane pool always runs the (cheaper) serial engine per
         matrix, whatever the policy asked for. *)
      let matrix_parallel =
        lanes = 1
        ||
        match split with
        | Tune_params.Auto -> nb >= lanes
        | Tune_params.Matrix_parallel -> true
        | Tune_params.Panel_parallel -> false
        | Tune_params.Hybrid t -> nb >= t
      in
      if matrix_parallel then begin
        (* Enough matrices to keep every lane busy: parallelize across the
           batch, each lane running the serial fused engine with its own
           workspace. *)
        let wss = Array.init lanes (fun _ -> Ws.create ()) in
        Pool.parallel_chunks pool ~lo:0 ~hi:nb (fun ~chunk ~lo ~hi ->
            let ws = wss.(chunk) in
            for b = lo to hi - 1 do
              if c2r_side then
                c2r ?panel_width:width ?block_rows ?tier ~ws p bufs.(b)
              else r2c ?panel_width:width ?block_rows ?tier ~ws p bufs.(b)
            done)
      end
      else begin
        (* Few large matrices: go panel-parallel inside each one, reusing
           one workspace set across the whole batch. *)
        let wss = get_workspaces pool in
        Array.iter
          (fun buf ->
            if c2r_side then
              c2r_pool ?panel_width:width ?block_rows ?tier ~workspaces:wss
                pool p buf
            else
              r2c_pool ?panel_width:width ?block_rows ?tier ~workspaces:wss
                pool p buf)
          bufs
      end
    end
end

include Engine_of (Prims)

module Checked = Engine_of (Checked_prims)

(* Same loop bodies as Fused.Make => same access summaries. *)
module Summary = Fused.Summary
