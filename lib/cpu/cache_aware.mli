(** Cache-aware restricted column operations (paper §4.6 and §4.7).

    Naive column operations touch one element per cache line. These
    variants operate on groups of [width] adjacent columns so that every
    memory transaction moves a full sub-row:

    - {b rotation} (§4.6) runs in two phases: a coarse in-place rotation of
      whole column groups by a shared amount, performed by cycle following
      on sub-rows (the cycles of a rotation are analytic, so no cycle
      storage is needed), then a fine blocked pass fixing each column's
      bounded residual rotation using an on-chip-sized block buffer;
    - {b row permutation} (§4.7) discovers the cycles of the permutation
      once (they are shared by all columns, at most [m/2] nontrivial
      cycles), then follows them moving sub-rows.

    Both are drop-in replacements for the corresponding
    [Xpose_core.Algo.Make(S).Phases] passes over the full index range.

    The panel primitives are shared with (and implemented by)
    {!Xpose_cpu.Fused}; this module keeps the historical sweep-at-a-time
    interface — each sweep streams the matrix once. Callers wanting one
    panel residency for the whole column phase should use
    [Fused.Make(S).c2r_cols]/[r2c_cols] (or the {!Xpose_cpu.Fused_f64}
    engine) instead. Scratch buffers come from an optional
    {!Xpose_core.Workspace}; when omitted, each call allocates its own. *)

module Make (S : Xpose_core.Storage.S) : sig
  module Ws : module type of Xpose_core.Workspace.Make (S)

  type buf = S.t

  val default_width : int
  (** Columns per group; chosen so a float64 sub-row spans a typical
      128-byte line (16 elements). *)

  val rotate_columns :
    ?width:int ->
    ?block_rows:int ->
    ?ws:Ws.t ->
    ?lo:int ->
    ?hi:int ->
    Xpose_core.Plan.t ->
    buf ->
    amount:(int -> int) ->
    unit
  (** [rotate_columns p buf ~amount] rotates every column [j] by
      [amount j], equivalently to [Algo.Phases.rotate_columns] over
      the column range [[lo, hi)] (default all columns; any split of the
      range is equally correct — grouping only affects locality). The
      coarse amount of each group is anchored so residuals
      stay in [[0, width)] for monotone amount functions (both [j/b] and
      [j] families from the paper); groups whose residuals cannot be
      bounded fall back to per-column rotation, so any [amount] is
      correct. *)

  val permute_rows :
    ?width:int ->
    ?ws:Ws.t ->
    ?lo:int ->
    ?hi:int ->
    Xpose_core.Plan.t ->
    buf ->
    index:(int -> int) ->
    unit
  (** [permute_rows p buf ~index] applies the gather permutation
      [row_i <- row_{index i}] to all columns, equivalently to
      [Algo.Phases.permute_rows] over the column range. [index] must be a
      permutation of [[0, m)] (checked while building cycles).
      @raise Invalid_argument if [index] is not a permutation. *)

  val c2r :
    ?width:int -> ?ws:Ws.t -> Xpose_core.Plan.t -> buf -> tmp:buf -> unit
  (** C2R transposition using cache-aware passes for every column
      operation (the decomposed §4.1 form); the paper's GPU implementation
      structure (§5.2) on a CPU. Line/head/block scratch is allocated once
      per call (or taken from [ws]); [tmp] holds the Theorem-6 row
      scratch as before. *)

  val r2c :
    ?width:int -> ?ws:Ws.t -> Xpose_core.Plan.t -> buf -> tmp:buf -> unit
  (** Inverse of {!c2r}. *)
end
