(** Pool-parallel execution of [Xpose_permute] plans (the rank-N
    counterpart of {!Par_transpose}).

    Each primitive pass parallelises along whichever axis offers enough
    independent work:

    - [batch = 1, block = 1] (a flat 2-D transpose): delegate to
      {!Par_transpose}, which chunks the permutation passes themselves;
    - [batch > 1]: the batch slices are independent transpositions —
      statically chunk them across the pool, one scratch buffer per
      worker (the paper's "perfect load balancing" carries over);
    - [batch = 1, block > 1] (a block transpose): split the {e block}
      axis instead — each worker owns a disjoint
      [Views.Strided_blocked] sub-range of every block and applies the
      same C2R/R2C permutation to it independently.

    Total auxiliary space stays [O(workers * block * max(rows, cols))]. *)

module Make (S : Xpose_core.Storage.S) : sig
  type buf = S.t

  val transpose :
    Pool.t -> batch:int -> rows:int -> cols:int -> block:int -> buf -> unit
  (** Parallel pass primitive; semantics of
      [Xpose_core.Tensor_nd.Make(S).transpose]. *)

  val execute : Pool.t -> Xpose_permute.Permute.plan -> buf -> unit
  (** Run a prebuilt plan on the pool (a barrier between passes).
      @raise Invalid_argument on a buffer length mismatch. *)

  val permute : Pool.t -> dims:int array -> perm:int array -> buf -> unit
  (** Plan (with [Tensor_nd.plan_arith]) and execute on the pool; same
      specification as [Tensor_nd.Make(S).permute]. *)
end
