open Xpose_core

module Make (S : Storage.S) = struct
  module A = Algo.Make (S)
  module C = Cache_aware.Make (S)
  module F = Fused.Make (S)

  type buf = S.t

  let check (p : Plan.t) buf =
    if S.length buf <> p.m * p.n then
      invalid_arg "Par_cache_aware: buffer size does not match plan"

  (* Align chunk boundaries to group width so sub-row transfers stay
     line-shaped; correctness does not depend on the alignment. *)
  let over_columns pool ~n ~width pass =
    let groups = Intmath.ceil_div n width in
    Pool.parallel_chunks pool ~lo:0 ~hi:groups (fun ~chunk ~lo ~hi ->
        let lo = lo * width and hi = min n (hi * width) in
        if lo < hi then pass ~chunk ~lo ~hi)

  let workspaces pool = Array.init (Pool.workers pool) (fun _ -> F.Ws.create ())

  let c2r ?(width = C.default_width) pool (p : Plan.t) buf =
    check p buf;
    let m = p.m and n = p.n in
    if m = 1 || n = 1 then ()
    else begin
      let wss = workspaces pool in
      let tmp chunk = F.Ws.tmp wss.(chunk) (Plan.scratch_elements p) in
      if not (Plan.coprime p) then
        over_columns pool ~n ~width (fun ~chunk ~lo ~hi ->
            F.rotate_columns ~panel_width:width ~ws:wss.(chunk) ~lo ~hi p buf
              ~amount:(Plan.rotate_amount p));
      Pool.parallel_chunks pool ~lo:0 ~hi:m (fun ~chunk ~lo ~hi ->
          A.Phases.row_shuffle_gather p buf ~tmp:(tmp chunk) ~lo ~hi);
      (* Column rotation and row permutation are both column-local, so one
         fused barrier visits each panel once instead of sweeping the
         matrix twice; the permutation cycles are discovered once and
         shared read-only by all workers. *)
      let cycles = F.cycles ~whom:"Par_cache_aware.c2r" ~m ~index:(Plan.q p) in
      over_columns pool ~n ~width (fun ~chunk ~lo ~hi ->
          F.c2r_cols ~panel_width:width ~ws:wss.(chunk) ~lo ~hi p buf ~cycles)
    end

  let r2c ?(width = C.default_width) pool (p : Plan.t) buf =
    check p buf;
    let m = p.m and n = p.n in
    if m = 1 || n = 1 then ()
    else begin
      let wss = workspaces pool in
      let tmp chunk = F.Ws.tmp wss.(chunk) (Plan.scratch_elements p) in
      let cycles =
        F.cycles ~whom:"Par_cache_aware.r2c" ~m ~index:(Plan.q_inv p)
      in
      over_columns pool ~n ~width (fun ~chunk ~lo ~hi ->
          F.r2c_cols ~panel_width:width ~ws:wss.(chunk) ~lo ~hi p buf ~cycles);
      Pool.parallel_chunks pool ~lo:0 ~hi:m (fun ~chunk ~lo ~hi ->
          A.Phases.row_shuffle_ungather p buf ~tmp:(tmp chunk) ~lo ~hi);
      if not (Plan.coprime p) then
        over_columns pool ~n ~width (fun ~chunk ~lo ~hi ->
            F.rotate_columns ~panel_width:width ~ws:wss.(chunk) ~lo ~hi p buf
              ~amount:(fun j -> -Plan.rotate_amount p j))
    end

  let transpose ?(order = Layout.Row_major) ?width pool ~m ~n buf =
    let rm, rn =
      match order with Layout.Row_major -> (m, n) | Layout.Col_major -> (n, m)
    in
    if rm > rn then c2r ?width pool (Plan.make ~m:rm ~n:rn) buf
    else r2c ?width pool (Plan.make ~m:rn ~n:rm) buf
end
