open Xpose_core

module Make (S : Storage.S) = struct
  module A = Algo.Make (S)
  module C = Cache_aware.Make (S)

  type buf = S.t

  let check (p : Plan.t) buf =
    if S.length buf <> p.m * p.n then
      invalid_arg "Par_cache_aware: buffer size does not match plan"

  (* Align chunk boundaries to group width so sub-row transfers stay
     line-shaped; correctness does not depend on the alignment. *)
  let over_columns pool ~n ~width pass =
    let groups = Intmath.ceil_div n width in
    Pool.parallel_chunks pool ~lo:0 ~hi:groups (fun ~chunk:_ ~lo ~hi ->
        let lo = lo * width and hi = min n (hi * width) in
        if lo < hi then pass ~lo ~hi)

  let c2r ?(width = C.default_width) pool (p : Plan.t) buf =
    check p buf;
    let m = p.m and n = p.n in
    if m = 1 || n = 1 then ()
    else begin
      let tmp =
        Array.init (Pool.workers pool) (fun _ ->
            S.create (Plan.scratch_elements p))
      in
      if not (Plan.coprime p) then
        over_columns pool ~n ~width (fun ~lo ~hi ->
            C.rotate_columns ~width ~lo ~hi p buf
              ~amount:(Plan.rotate_amount p));
      Pool.parallel_chunks pool ~lo:0 ~hi:m (fun ~chunk ~lo ~hi ->
          A.Phases.row_shuffle_gather p buf ~tmp:tmp.(chunk) ~lo ~hi);
      over_columns pool ~n ~width (fun ~lo ~hi ->
          C.rotate_columns ~width ~lo ~hi p buf ~amount:(fun j -> j));
      over_columns pool ~n ~width (fun ~lo ~hi ->
          C.permute_rows ~width ~lo ~hi p buf ~index:(Plan.q p))
    end

  let r2c ?(width = C.default_width) pool (p : Plan.t) buf =
    check p buf;
    let m = p.m and n = p.n in
    if m = 1 || n = 1 then ()
    else begin
      let tmp =
        Array.init (Pool.workers pool) (fun _ ->
            S.create (Plan.scratch_elements p))
      in
      over_columns pool ~n ~width (fun ~lo ~hi ->
          C.permute_rows ~width ~lo ~hi p buf ~index:(Plan.q_inv p));
      over_columns pool ~n ~width (fun ~lo ~hi ->
          C.rotate_columns ~width ~lo ~hi p buf ~amount:(fun j -> -j));
      Pool.parallel_chunks pool ~lo:0 ~hi:m (fun ~chunk ~lo ~hi ->
          A.Phases.row_shuffle_ungather p buf ~tmp:tmp.(chunk) ~lo ~hi);
      if not (Plan.coprime p) then
        over_columns pool ~n ~width (fun ~lo ~hi ->
            C.rotate_columns ~width ~lo ~hi p buf
              ~amount:(fun j -> -Plan.rotate_amount p j))
    end

  let transpose ?(order = Layout.Row_major) ?width pool ~m ~n buf =
    let rm, rn =
      match order with Layout.Row_major -> (m, n) | Layout.Col_major -> (n, m)
    in
    if rm > rn then c2r ?width pool (Plan.make ~m:rm ~n:rn) buf
    else r2c ?width pool (Plan.make ~m:rn ~n:rm) buf
end
