(** Pass-fused cache-blocked column engine (paper §4.6-§4.7, fused).

    The decomposed C2R sequence ends with two column-wise passes — the
    cycle-following column rotation of §4.6 and the shared row permutation
    of §4.7. Both are column-local: the final contents of columns
    [lo..lo+w-1] depend only on the original contents of those columns. A
    sweep-at-a-time implementation therefore streams the whole matrix
    through the cache twice; this engine instead visits each [width]-column
    panel {e once} and runs all of its column-wise work — coarse rotate,
    fine residual rotate, cycle-following permutation — while the panel is
    resident. Same element operations, one fewer full-matrix sweep.

    Scratch (line / head / block / Theorem-6 tmp buffers) comes from a
    {!Xpose_core.Workspace} so repeated transposes and batch workers
    allocate it once. The full engines memoize plans through
    {!Xpose_core.Plan.Cache} and emit one "pass" span per logical pass
    plus one "panel" span per panel visit (see {!Xpose_obs.Tracer.panel});
    predicted touches use the panel-residency DRAM model of
    {!Xpose_core.Pass_cost.fused_col}.

    {!Xpose_cpu.Fused_f64} is the monomorphic float64 twin of this
    functor; {!Xpose_cpu.Cache_aware} re-exports the unfused sweeps with
    its historical interface. *)

module Make (S : Xpose_core.Storage.S) : sig
  module Ws : module type of Xpose_core.Workspace.Make (S)

  type buf = S.t

  val default_width : int
  (** Columns per panel; 16 float64 elements span a typical 128-byte
      line. *)

  val default_block_rows : int
  (** Rows per strip of the fine rotation phase (64). *)

  val supported_widths : int list
  (** The panel widths the autotuner searches and the check layer
      verifies ({!Xpose_core.Tune_params.supported_widths}); any
      positive [?panel_width] is still accepted and correct. *)

  val cycles :
    whom:string -> m:int -> index:(int -> int) -> int array array
  (** The nontrivial cycles of the permutation [row_i <- row_{index i}]
      of [[0, m)], each in gather-chain order ([chain.(t+1) = index
      chain.(t)]). Discovered once, shared by every panel.
      @raise Invalid_argument (prefixed with [whom]) if [index] is not a
      permutation of [[0, m)]. *)

  (** {1 Unfused sweeps}

      Drop-in replacements for the corresponding
      [Algo.Make(S).Phases] passes over the column range [[lo, hi)]
      (default all columns). *)

  val rotate_columns :
    ?panel_width:int ->
    ?block_rows:int ->
    ?ws:Ws.t ->
    ?lo:int ->
    ?hi:int ->
    Xpose_core.Plan.t ->
    buf ->
    amount:(int -> int) ->
    unit
  (** Rotate every column [j] by [amount j] (gather convention), one
      panel at a time: coarse anchored rotation by cycle following, then
      the blocked fine pass for the bounded residuals. Panels whose
      residuals cannot be bounded below [width] fall back to per-column
      rotation, so any [amount] is correct. *)

  val permute_cols :
    ?panel_width:int ->
    ?ws:Ws.t ->
    ?lo:int ->
    ?hi:int ->
    Xpose_core.Plan.t ->
    buf ->
    cycles:int array array ->
    unit
  (** Apply previously discovered {!cycles} to the column range, moving
      sub-rows panel by panel. *)

  val permute_rows :
    ?panel_width:int ->
    ?ws:Ws.t ->
    ?lo:int ->
    ?hi:int ->
    Xpose_core.Plan.t ->
    buf ->
    index:(int -> int) ->
    unit
  (** {!cycles} + {!permute_cols}.
      @raise Invalid_argument if [index] is not a permutation. *)

  (** {1 Fused panel visits}

      One pass over the column range doing {e all} column-wise work of
      the C2R (resp. R2C) sequence per panel. [cycles] must be the cycles
      of [Plan.q] (resp. [Plan.q_inv]). Any split of [[lo, hi)] across
      callers is equally correct: panels are independent, so parallel
      drivers partition the range and share [cycles]. *)

  val c2r_cols :
    ?panel_width:int ->
    ?block_rows:int ->
    ?ws:Ws.t ->
    ?lo:int ->
    ?hi:int ->
    Xpose_core.Plan.t ->
    buf ->
    cycles:int array array ->
    unit
  (** Per panel: rotate columns by [amount j = j], then permute rows —
      equivalent to [rotate_columns ~amount:(fun j -> j)] followed by
      [permute_rows ~index:(Plan.q p)] but with one panel residency. *)

  val r2c_cols :
    ?panel_width:int ->
    ?block_rows:int ->
    ?ws:Ws.t ->
    ?lo:int ->
    ?hi:int ->
    Xpose_core.Plan.t ->
    buf ->
    cycles:int array array ->
    unit
  (** Inverse order: permute rows (cycles of [Plan.q_inv]), then rotate
      columns by [amount j = -j]. *)

  (** {1 Full engines} *)

  val c2r :
    ?panel_width:int ->
    ?block_rows:int ->
    ?ws:Ws.t ->
    Xpose_core.Plan.t ->
    buf ->
    unit
  (** Full C2R transposition: pre-rotation (skipped when coprime), row
      shuffle, then the fused column phase. Scratch comes from [ws]
      (fresh workspace per call when omitted).
      @raise Invalid_argument if the buffer size does not match the
      plan. *)

  val r2c :
    ?panel_width:int ->
    ?block_rows:int ->
    ?ws:Ws.t ->
    Xpose_core.Plan.t ->
    buf ->
    unit
  (** Inverse of {!c2r}. *)

  val transpose :
    ?order:Xpose_core.Layout.order ->
    ?panel_width:int ->
    ?block_rows:int ->
    ?ws:Ws.t ->
    ?cache:Xpose_core.Plan.Cache.t ->
    m:int ->
    n:int ->
    buf ->
    unit
  (** In-place transpose of an [m x n] matrix, routing through {!c2r} or
      {!r2c} so the row shuffle runs on the long dimension (same policy
      as [Algo.Make(S).transpose]). Plans come from [cache] (default
      {!Xpose_core.Plan.Cache.default}). *)
end

(** Symbolic access summaries of the panel primitives (free basis:
    m, n >= 1; parameters w in [1, n], lo in [0, n - w], and the fine
    phase's block_rows >= 1 and maxres in [1, min(w, m) - 1]), shared
    by every [Make] instantiation and by [Fused_f64]. The cycle-
    following phases are proven supersets; [fine] keeps the head-wrap
    reads precise. *)
module Summary : sig
  val panel_params : Xpose_core.Access.param list
  val coarse : Xpose_core.Access.summary
  val fine : Xpose_core.Access.summary

  val fine_mk : Xpose_core.Access.summary
  (** The micro-kernel tier's fine rotation: the fully-unwrapped tile
      region's unguarded [bk]-row column movers (parameter [bk] in
      [1, min(block_rows, m - maxres)] — the engine's own fast-path
      preconditions) plus the guarded scalar tail. Certifying this
      summary proves the unrolled movers in bounds {e without} the
      wrap test the scalar path relies on. Pin [bk] at 8 or 16 for the
      per-tier grid entries. *)

  val permute : Xpose_core.Access.summary
  val panel_passes : Xpose_core.Access.summary list

  val c2r_passes : Xpose_core.Access.summary list
  (** Every summary the fused C2R pipeline touches (panel phases, kernel
      rotate fallback, kernel row shuffle), each sub-range-quantified so
      serial, pool, and batch schedules are all covered. *)

  val r2c_passes : Xpose_core.Access.summary list
end
