open Xpose_core
open Bigarray.Array1

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let check ~structs ~fields (b : buf) =
  if structs < 1 || fields < 1 then
    invalid_arg "Skinny_f64: structs and fields must be positive";
  if dim b <> structs * fields then invalid_arg "Skinny_f64: buffer size"

let strip_rows = 256

(* Residual column rotation: column j gathers from row (i + res.(j)) mod
   rows. All residuals are below [fields] (single-group anchoring), so a
   head copy of [maxres] structures serves the wrap and strips can be
   assembled struct by struct. *)
let fine_rotate (b : buf) ~rows ~fields ~res =
  let maxres = Array.fold_left max 0 res in
  if maxres > 0 then begin
    let head = Array.make (maxres * fields) 0.0 in
    let hb = ref 0 in
    for _r = 0 to maxres - 1 do
      for j = 0 to fields - 1 do
        head.(!hb + j) <- unsafe_get b (!hb + j)
      done;
      hb := !hb + fields
    done;
    (* Strength-reduced gather: read index (i + res.(j)) * fields + j
       splits into a per-row base i*fields (incremented, never
       remultiplied) plus a per-column constant cb.(j); the wrap test
       becomes a compare of res.(j) against a per-row limit. *)
    let cb =
      Array.init fields (fun j -> (Array.unsafe_get res j * fields) + j)
    in
    let strip = Array.make (strip_rows * fields) 0.0 in
    let r = ref 0 in
    while !r < rows do
      let count = min strip_rows (rows - !r) in
      let ib = ref (!r * fields) in
      let tb = ref 0 in
      for t = 0 to count - 1 do
        let i = !r + t in
        let limit = rows - 1 - i in
        for j = 0 to fields - 1 do
          let rv = Array.unsafe_get res j in
          let v =
            if rv > limit then head.((((i + rv) - rows) * fields) + j)
            else unsafe_get b (!ib + Array.unsafe_get cb j)
          in
          strip.(!tb + j) <- v
        done;
        ib := !ib + fields;
        tb := !tb + fields
      done;
      let wb = ref (!r * fields) in
      let sb = ref 0 in
      for _t = 0 to count - 1 do
        for j = 0 to fields - 1 do
          unsafe_set b (!wb + j) strip.(!sb + j)
        done;
        wb := !wb + fields;
        sb := !sb + fields
      done;
      r := !r + count
    done
  end

(* Backward residual rotation: column j gathers from row
   (i - res.(j)) mod rows. Strips are processed from the last row
   downward so un-overwritten sources are always below the cursor; a
   tail copy of [maxres] structures serves the wrap. *)
let fine_rotate_neg (b : buf) ~rows ~fields ~res =
  let maxres = Array.fold_left max 0 res in
  if maxres > 0 then begin
    let tail = Array.make (maxres * fields) 0.0 in
    let tb0 = ref 0 in
    let mb = ref ((rows - maxres) * fields) in
    for _r = 0 to maxres - 1 do
      for j = 0 to fields - 1 do
        tail.(!tb0 + j) <- unsafe_get b (!mb + j)
      done;
      tb0 := !tb0 + fields;
      mb := !mb + fields
    done;
    (* Backward gather, strength-reduced like [fine_rotate]: the read
       index (i - res.(j)) * fields + j is a decremented per-row base
       plus cb.(j), and the wrap test compares res.(j) against i. *)
    let cb =
      Array.init fields (fun j -> j - (Array.unsafe_get res j * fields))
    in
    let strip = Array.make (strip_rows * fields) 0.0 in
    let r = ref rows in
    while !r > 0 do
      let count = min strip_rows !r in
      let base_row = !r - count in
      let ib = ref (base_row * fields) in
      let tb = ref 0 in
      for t = 0 to count - 1 do
        let i = base_row + t in
        for j = 0 to fields - 1 do
          let rv = Array.unsafe_get res j in
          let v =
            if rv > i then
              (* wrapped source row rows + (i - rv) lives in the tail *)
              tail.((((i - rv) + maxres) * fields) + j)
            else unsafe_get b (!ib + Array.unsafe_get cb j)
          in
          strip.(!tb + j) <- v
        done;
        ib := !ib + fields;
        tb := !tb + fields
      done;
      let wb = ref (base_row * fields) in
      let sb = ref 0 in
      for _t = 0 to count - 1 do
        for j = 0 to fields - 1 do
          unsafe_set b (!wb + j) strip.(!sb + j)
        done;
        wb := !wb + fields;
        sb := !sb + fields
      done;
      r := base_row
    done
  end

(* Per-structure shuffle: struct i's fields are gathered by [index ~i]. *)
let row_shuffle (b : buf) ~rows ~fields ~index =
  let tmp = Array.make fields 0.0 in
  for i = 0 to rows - 1 do
    let base = i * fields in
    for j = 0 to fields - 1 do
      tmp.(j) <- unsafe_get b (base + index ~i j)
    done;
    for j = 0 to fields - 1 do
      unsafe_set b (base + j) tmp.(j)
    done
  done

(* Shared row permutation: move whole structures along the cycles of the
   gather permutation [index]. *)
let permute_rows (b : buf) ~rows ~fields ~index =
  let visited = Bytes.make rows '\000' in
  let saved = Array.make fields 0.0 in
  let copy_struct ~src ~dst =
    blit (sub b (src * fields) fields) (sub b (dst * fields) fields)
  in
  for i0 = 0 to rows - 1 do
    if Bytes.get visited i0 = '\000' then begin
      Bytes.set visited i0 '\001';
      let src0 = index i0 in
      if src0 <> i0 then begin
        for j = 0 to fields - 1 do
          saved.(j) <- unsafe_get b ((i0 * fields) + j)
        done;
        let i = ref i0 in
        let src = ref src0 in
        while !src <> i0 do
          Bytes.set visited !src '\001';
          copy_struct ~src:!src ~dst:!i;
          i := !src;
          src := index !src
        done;
        for j = 0 to fields - 1 do
          unsafe_set b ((!i * fields) + j) saved.(j)
        done
      end
    end
  done

let aos_to_soa ~structs ~fields b =
  check ~structs ~fields b;
  if structs > 1 && fields > 1 then begin
    let p = Plan.make ~m:structs ~n:fields in
    (* C2R on the structs x fields view. Residuals anchored at column 0
       (amount 0), per the single-group analysis. *)
    if not (Plan.coprime p) then
      fine_rotate b ~rows:structs ~fields
        ~res:(Array.init fields (fun j -> Plan.rotate_amount p j mod structs));
    row_shuffle b ~rows:structs ~fields ~index:(fun ~i j -> Plan.d'_inv p ~i j);
    fine_rotate b ~rows:structs ~fields
      ~res:(Array.init fields (fun j -> j mod structs));
    permute_rows b ~rows:structs ~fields ~index:(Plan.q p)
  end

let soa_to_aos ~structs ~fields b =
  check ~structs ~fields b;
  if structs > 1 && fields > 1 then begin
    let p = Plan.make ~m:structs ~n:fields in
    (* R2C: inverse passes in inverse order; the negative rotations run
       through the backward strip pass so buffers stay O(fields^2). *)
    permute_rows b ~rows:structs ~fields ~index:(Plan.q_inv p);
    fine_rotate_neg b ~rows:structs ~fields
      ~res:(Array.init fields (fun j -> j mod structs));
    row_shuffle b ~rows:structs ~fields ~index:(fun ~i j -> Plan.d' p ~i j);
    if not (Plan.coprime p) then
      fine_rotate_neg b ~rows:structs ~fields
        ~res:(Array.init fields (fun j -> Plan.rotate_amount p j mod structs))
  end
