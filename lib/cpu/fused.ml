open Xpose_core

module Make (S : Storage.S) = struct
  module A = Algo.Make (S)
  module Ws = Workspace.Make (S)

  type buf = S.t

  let default_width = 16
  let default_block_rows = 64
  let supported_widths = Tune_params.supported_widths

  let get_ws = function Some ws -> ws | None -> Ws.create ()

  (* -- sub-row primitives (§4.6): every transfer moves a whole sub-row -- *)

  let copy_subrow buf ~n ~lo ~w ~src ~dst =
    S.blit buf ((src * n) + lo) buf ((dst * n) + lo) w

  let save_subrow buf ~n ~lo ~w ~row tmp = S.blit buf ((row * n) + lo) tmp 0 w
  let restore_subrow tmp buf ~n ~lo ~w ~row = S.blit tmp 0 buf ((row * n) + lo) w

  (* Coarse phase of §4.6: rotate the [w] columns starting at [lo] together
     by [k], following the analytic cycles of the rotation (gcd(m, k)
     cycles; the chain starting at y visits y, y+k, y+2k, ...). *)
  let rotate_coarse buf ~m ~n ~lo ~w ~k ~line =
    if k <> 0 then begin
      let cycles = Intmath.gcd m k in
      for y = 0 to cycles - 1 do
        save_subrow buf ~n ~lo ~w ~row:y line;
        let i = ref y in
        let continue = ref true in
        while !continue do
          let src = !i + k in
          let src = if src >= m then src - m else src in
          if src = y then begin
            restore_subrow line buf ~n ~lo ~w ~row:!i;
            continue := false
          end
          else begin
            copy_subrow buf ~n ~lo ~w ~src ~dst:!i;
            i := src
          end
        done
      done
    end

  (* Fine phase of §4.6: per-column residual rotations bounded by [w],
     reading strips of [block_rows] rows through a block buffer. Rows that
     wrap past m-1 are served from a saved copy of the head rows. *)
  let rotate_fine buf ~m ~n ~lo ~w ~res ~maxres ~block_rows ~head ~block =
    if maxres > 0 then begin
      (* head.(r*w + jj) caches original row r (r < maxres), columns lo+jj *)
      for r = 0 to maxres - 1 do
        S.blit buf ((r * n) + lo) head (r * w) w
      done;
      let r = ref 0 in
      while !r < m do
        let rows = min block_rows (m - !r) in
        for t = 0 to rows - 1 do
          let i = !r + t in
          for jj = 0 to w - 1 do
            let src = i + res.(jj) in
            let v =
              if src >= m then S.get head (((src - m) * w) + jj)
              else S.get buf ((src * n) + lo + jj)
            in
            S.set block ((t * w) + jj) v
          done
        done;
        for t = 0 to rows - 1 do
          S.blit block (t * w) buf (((!r + t) * n) + lo) w
        done;
        r := !r + rows
      done
    end

  (* Anchor the coarse amount so residuals (amount j - coarse) mod m stay
     below w; increasing amounts anchor at the first column of the group,
     decreasing ones at the last. *)
  let pick_residuals ~m ~lo ~w ~amount ~(res : int array) anchor =
    let k = Intmath.emod (amount anchor) m in
    let maxres = ref 0 in
    for jj = 0 to w - 1 do
      let r = Intmath.emod (amount (lo + jj) - k) m in
      res.(jj) <- r;
      if r > !maxres then maxres := r
    done;
    (k, !maxres)

  let rotate_panel ~block_rows ws (p : Plan.t) buf ~amount ~res ~lo ~w =
    let m = p.m and n = p.n in
    let k, maxres =
      let k, mr = pick_residuals ~m ~lo ~w ~amount ~res lo in
      if mr < w then (k, mr)
      else pick_residuals ~m ~lo ~w ~amount ~res (lo + w - 1)
    in
    if maxres < w && maxres < m then begin
      rotate_coarse buf ~m ~n ~lo ~w ~k ~line:(Ws.line ws w);
      rotate_fine buf ~m ~n ~lo ~w ~res ~maxres ~block_rows
        ~head:(Ws.head ws (w * w))
        ~block:(Ws.block ws (block_rows * w))
    end
    else
      (* Arbitrary amount function: per-column rotation is still exact. *)
      A.Phases.rotate_columns p buf ~tmp:(Ws.tmp ws m) ~amount ~lo ~hi:(lo + w)

  (* §4.7: the cycles of the shared row permutation, discovered once and
     reused by every panel. Rows of each nontrivial cycle are listed in
     gather-chain order: chain.(t+1) = index chain.(t). *)
  let cycles ~whom ~m ~index =
    let index i =
      let v = index i in
      if v < 0 || v >= m then invalid_arg (whom ^ ": index out of range");
      v
    in
    let visited = Bytes.make m '\000' in
    let chains = ref [] in
    for i0 = 0 to m - 1 do
      if Bytes.get visited i0 = '\000' then begin
        Bytes.set visited i0 '\001';
        let src = index i0 in
        if src <> i0 then begin
          let chain = ref [ i0 ] in
          let i = ref src in
          while !i <> i0 do
            if Bytes.get visited !i <> '\000' then
              invalid_arg (whom ^ ": index is not a permutation");
            Bytes.set visited !i '\001';
            chain := !i :: !chain;
            i := index !i
          done;
          chains := Array.of_list (List.rev !chain) :: !chains
        end
      end
    done;
    Array.of_list !chains

  let cycle_rows cycles =
    Array.fold_left (fun acc chain -> acc + Array.length chain) 0 cycles

  let permute_panel ws buf ~n ~cycles ~lo ~w =
    let line = Ws.line ws w in
    Array.iter
      (fun chain ->
        (* new row chain.(t) takes the old contents of row chain.(t+1);
           the last takes the saved head. *)
        let len = Array.length chain in
        save_subrow buf ~n ~lo ~w ~row:chain.(0) line;
        for t = 0 to len - 2 do
          copy_subrow buf ~n ~lo ~w ~src:chain.(t + 1) ~dst:chain.(t)
        done;
        restore_subrow line buf ~n ~lo ~w ~row:chain.(len - 1))
      cycles

  (* -- column-range sweeps (the unfused building blocks) ------------------ *)

  let check_range whom ~n ~lo ~hi =
    if lo < 0 || hi > n || lo > hi then
      invalid_arg (whom ^ ": bad column range")

  (* A rotate panel that moves nothing is also priced at nothing. *)
  let rotate_panel_pred (p : Plan.t) ~amount ~lo ~w =
    let moved = ref false in
    for jj = 0 to w - 1 do
      if Intmath.emod (amount (lo + jj)) p.m <> 0 then moved := true
    done;
    if !moved then Pass_cost.fused_panel p ~width:w else 0

  let rotate_columns ?panel_width:(width = default_width)
      ?(block_rows = default_block_rows) ?ws ?(lo = 0) ?hi (p : Plan.t) buf
      ~amount =
    let m = p.m and n = p.n in
    let hi = match hi with Some h -> h | None -> n in
    check_range "Fused.rotate_columns" ~n ~lo ~hi;
    let ws = get_ws ws in
    let res = Array.make width 0 in
    let g = ref lo in
    while !g < hi do
      let lo = !g in
      let w = min width (hi - lo) in
      Xpose_obs.Tracer.panel ~name:"rotate_panel" ~lo ~width:w ~rows:m
        ~pred_touches:(rotate_panel_pred p ~amount ~lo ~w)
        (fun () -> rotate_panel ~block_rows ws p buf ~amount ~res ~lo ~w);
      g := lo + w
    done

  let permute_cols ?panel_width:(width = default_width) ?ws ?(lo = 0) ?hi (p : Plan.t) buf
      ~cycles =
    let m = p.m and n = p.n in
    let hi = match hi with Some h -> h | None -> n in
    check_range "Fused.permute_cols" ~n ~lo ~hi;
    let ws = get_ws ws in
    let rows = cycle_rows cycles in
    let g = ref lo in
    while !g < hi do
      let lo = !g in
      let w = min width (hi - lo) in
      Xpose_obs.Tracer.panel ~name:"permute_panel" ~lo ~width:w ~rows:m
        ~pred_touches:(2 * rows * w)
        (fun () -> permute_panel ws buf ~n ~cycles ~lo ~w);
      g := lo + w
    done

  let permute_rows ?panel_width:width ?ws ?lo ?hi (p : Plan.t) buf ~index =
    let cycles = cycles ~whom:"Fused.permute_rows" ~m:p.m ~index in
    permute_cols ?panel_width:width ?ws ?lo ?hi p buf ~cycles

  (* -- fused visits: all column-wise passes of one panel back to back ----- *)

  let c2r_cols ?panel_width:(width = default_width) ?(block_rows = default_block_rows)
      ?ws ?(lo = 0) ?hi (p : Plan.t) buf ~cycles =
    let m = p.m and n = p.n in
    let hi = match hi with Some h -> h | None -> n in
    check_range "Fused.c2r_cols" ~n ~lo ~hi;
    let ws = get_ws ws in
    let res = Array.make width 0 in
    let g = ref lo in
    while !g < hi do
      let lo = !g in
      let w = min width (hi - lo) in
      Xpose_obs.Tracer.panel ~name:"fused_panel" ~lo ~width:w ~rows:m
        ~pred_touches:(Pass_cost.fused_panel p ~width:w)
        (fun () ->
          rotate_panel ~block_rows ws p buf ~amount:(fun j -> j) ~res ~lo ~w;
          permute_panel ws buf ~n ~cycles ~lo ~w);
      g := lo + w
    done

  let r2c_cols ?panel_width:(width = default_width) ?(block_rows = default_block_rows)
      ?ws ?(lo = 0) ?hi (p : Plan.t) buf ~cycles =
    let m = p.m and n = p.n in
    let hi = match hi with Some h -> h | None -> n in
    check_range "Fused.r2c_cols" ~n ~lo ~hi;
    let ws = get_ws ws in
    let res = Array.make width 0 in
    let g = ref lo in
    while !g < hi do
      let lo = !g in
      let w = min width (hi - lo) in
      Xpose_obs.Tracer.panel ~name:"fused_panel" ~lo ~width:w ~rows:m
        ~pred_touches:(Pass_cost.fused_panel p ~width:w)
        (fun () ->
          permute_panel ws buf ~n ~cycles ~lo ~w;
          rotate_panel ~block_rows ws p buf ~amount:(fun j -> -j) ~res ~lo ~w);
      g := lo + w
    done

  (* -- full engines ------------------------------------------------------- *)

  let obs_pass (p : Plan.t) name ~pred f =
    Xpose_obs.Tracer.pass ~name ~rows:p.m ~cols:p.n ~pred_touches:pred
      ~scratch_elems:(Plan.scratch_elements p) f

  let check_buf whom (p : Plan.t) buf =
    if S.length buf <> p.m * p.n then
      invalid_arg (whom ^ ": buffer size does not match plan")

  let c2r ?panel_width:(width = default_width) ?(block_rows = default_block_rows) ?ws
      (p : Plan.t) buf =
    check_buf "Fused.c2r" p buf;
    let m = p.m and n = p.n in
    if m = 1 || n = 1 then ()
    else begin
      let ws = get_ws ws in
      if not (Plan.coprime p) then begin
        let amount = Plan.rotate_amount p in
        obs_pass p "rotate_pre" ~pred:(Pass_cost.panel_rotate p ~width ~amount)
          (fun () -> rotate_columns ~panel_width:width ~block_rows ~ws p buf ~amount)
      end;
      obs_pass p "row_shuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
          A.Phases.row_shuffle_gather p buf
            ~tmp:(Ws.tmp ws (Plan.scratch_elements p))
            ~lo:0 ~hi:m);
      let cycles = cycles ~whom:"Fused.c2r" ~m ~index:(Plan.q p) in
      obs_pass p "fused_col" ~pred:(Pass_cost.fused_col p) (fun () ->
          c2r_cols ~panel_width:width ~block_rows ~ws p buf ~cycles)
    end

  let r2c ?panel_width:(width = default_width) ?(block_rows = default_block_rows) ?ws
      (p : Plan.t) buf =
    check_buf "Fused.r2c" p buf;
    let m = p.m and n = p.n in
    if m = 1 || n = 1 then ()
    else begin
      let ws = get_ws ws in
      let cycles = cycles ~whom:"Fused.r2c" ~m ~index:(Plan.q_inv p) in
      obs_pass p "fused_col" ~pred:(Pass_cost.fused_col p) (fun () ->
          r2c_cols ~panel_width:width ~block_rows ~ws p buf ~cycles);
      obs_pass p "row_unshuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
          A.Phases.row_shuffle_ungather p buf
            ~tmp:(Ws.tmp ws (Plan.scratch_elements p))
            ~lo:0 ~hi:m);
      if not (Plan.coprime p) then begin
        let amount j = -Plan.rotate_amount p j in
        obs_pass p "rotate_post"
          ~pred:(Pass_cost.panel_rotate p ~width ~amount)
          (fun () -> rotate_columns ~panel_width:width ~block_rows ~ws p buf ~amount)
      end
    end

  let transpose ?(order = Layout.Row_major) ?panel_width:width ?block_rows ?ws ?cache ~m
      ~n buf =
    let rm, rn =
      match order with Layout.Row_major -> (m, n) | Layout.Col_major -> (n, m)
    in
    let params =
      {
        Tune_params.default with
        panel_width = Option.value width ~default:default_width;
      }
    in
    if rm > rn then
      c2r ?panel_width:width ?block_rows ?ws
        (Plan.Cache.get ?cache ~params ~m:rm ~n:rn ())
        buf
    else
      r2c ?panel_width:width ?block_rows ?ws
        (Plan.Cache.get ?cache ~params ~m:rn ~n:rm ())
        buf
end

(* -- access metadata -----------------------------------------------------
   Symbolic summaries of the panel primitives, shared by every [Make]
   instantiation and by the specialized [Fused_f64] twin (their loop
   bodies index identically). The panel phases are summarized in the
   free basis (roots m, n >= 1) with the panel geometry as parameters:
   w in [1, n], lo in [0, n - w], so one certificate covers every
   panel width, every sweep position, and every pool chunking of the
   column groups at once.

   The cycle-following phases (coarse rotation, row permutation) are
   summarized as the superset "every row of the panel, plus the line
   buffer": the cycle structure visits a subset of those rows, which is
   all a bounds/alias proof needs. The fine phase's head reads are kept
   precise (they are the subtle ones). The fallback path of
   [rotate_panel] runs [Kernels_f64.Phases.rotate_columns] over
   [lo, lo + w), which the sub-range-quantified kernel rotate
   certificates already cover. *)

module Summary = struct
  open Xpose_core.Access

  let m = var "m"
  let n = var "n"
  let w = var "w"
  let lo = var "lo"
  let matrix = { rname = "matrix"; size = m *: n }

  let panel_params =
    [
      {
        name = "w";
        p_lo = Const 1;
        p_his = [ n ];
        sample = [ 1; 2; 3; 4; 8; 16 ];
      };
      {
        name = "lo";
        p_lo = Const 0;
        p_his = [ n -: w ];
        sample = [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ];
      };
    ]

  let panel_sweep pass =
    {
      pass;
      basis = Free_basis;
      params = panel_params;
      regions = [ matrix; { rname = "line"; size = w } ];
      body =
        [
          for_ "r" (num 0) m
            [
              for_ "jj" (num 0) w
                [
                  read "matrix" ((var "r" *: n) +: lo +: var "jj");
                  write "matrix" ((var "r" *: n) +: lo +: var "jj");
                  read "line" (var "jj");
                  write "line" (var "jj");
                ];
            ];
        ];
      exact = false;
    }

  let coarse = panel_sweep "fused.rotate_coarse"
  let permute = panel_sweep "fused.permute_panel"

  let fine =
    {
      pass = "fused.rotate_fine";
      basis = Free_basis;
      params =
        panel_params
        @ [
            {
              name = "block_rows";
              p_lo = Const 1;
              p_his = [];
              sample = [ 1; 2; 3; 64 ];
            };
            {
              name = "maxres";
              p_lo = Const 1;
              (* conjunction form of maxres <= min (w, m) - 1: parameter
                 bounds must stay fork-free for the prover's prelude *)
              p_his = [ w -: num 1; m -: num 1 ];
              sample = [ 1; 2; 3; 7 ];
            };
          ];
      regions =
        [
          matrix;
          { rname = "head"; size = w *: w };
          { rname = "block"; size = var "block_rows" *: w };
        ];
      body =
        [
          (* save the first maxres rows of the panel into head *)
          for_ "r" (num 0) (var "maxres")
            [
              for_ "jj" (num 0) w
                [
                  read "matrix" ((var "r" *: n) +: lo +: var "jj");
                  write "head" ((var "r" *: w) +: var "jj");
                ];
            ];
          (* every strip slot of the block buffer *)
          for_ "t" (num 0) (Min (var "block_rows", m))
            [
              for_ "jj" (num 0) w
                [
                  write "block" ((var "t" *: w) +: var "jj");
                  read "block" ((var "t" *: w) +: var "jj");
                ];
            ];
          (* gather reads: row i shifted by a per-column residual
             res(jj) <= maxres; past the bottom it wraps into head *)
          for_ "i" (num 0) m
            [
              for_ "jj" (num 0) w
                [
                  for_ "resj" (num 0) (var "maxres" +: num 1)
                    [
                      bind "src"
                        (var "i" +: var "resj")
                        [
                          When
                            ( le (var "src") (m -: num 1),
                              [
                                read "matrix"
                                  ((var "src" *: n) +: lo +: var "jj");
                              ] );
                          When
                            ( le m (var "src"),
                              [
                                read "head"
                                  (((var "src" -: m) *: w) +: var "jj");
                              ] );
                        ];
                    ];
                ];
            ];
          (* strip writebacks *)
          for_ "i2" (num 0) m
            [
              for_ "jj2" (num 0) w
                [ write "matrix" ((var "i2" *: n) +: lo +: var "jj2") ];
            ];
        ];
      exact = false;
    }

  (* The micro-kernel tier's fine rotation. The distinctive new loop
     nest is the fully-unwrapped tile region: every unrolled column
     mover reads [bk] consecutive source rows with NO per-element wrap
     test, so in-bounds there is exactly the unwrap precondition
     base row <= m - maxres - bk (the [tmax] guard in the engine).
     The scalar tail (strip remainder and head-wrap region) is the
     guarded gather of [fine]. [bk]'s parameter bounds encode the
     engine's own preconditions: the fast path only engages when a
     full block of source rows sits above the wrap region
     (bk <= m - maxres) and a strip hosts at least one full block
     (bk <= block_rows). *)
  let fine_mk =
    let bk = var "bk" in
    {
      pass = "fused.rotate_fine_mk";
      basis = Free_basis;
      params =
        panel_params
        @ [
            {
              name = "block_rows";
              p_lo = Const 1;
              p_his = [];
              sample = [ 1; 2; 3; 64 ];
            };
            {
              name = "maxres";
              p_lo = Const 1;
              p_his = [ w -: num 1; m -: num 1 ];
              sample = [ 1; 2; 3; 7 ];
            };
            {
              name = "bk";
              p_lo = Const 1;
              p_his = [ var "block_rows"; m -: var "maxres" ];
              sample = [ 1; 2; 8; 16 ];
            };
          ];
      regions =
        [
          matrix;
          { rname = "head"; size = w *: w };
          { rname = "block"; size = var "block_rows" *: w };
        ];
      body =
        [
          (* head save, as in [fine] *)
          for_ "r" (num 0) (var "maxres")
            [
              for_ "jj" (num 0) w
                [
                  read "matrix" ((var "r" *: n) +: lo +: var "jj");
                  write "head" ((var "r" *: w) +: var "jj");
                ];
            ];
          (* every strip slot of the block buffer, as in [fine] *)
          for_ "t" (num 0) (Min (var "block_rows", m))
            [
              for_ "jj" (num 0) w
                [
                  write "block" ((var "t" *: w) +: var "jj");
                  read "block" ((var "t" *: w) +: var "jj");
                ];
            ];
          (* unguarded tile reads: a column mover at base row
             i + res(jj) touches rows base .. base + bk - 1; the
             unwrap precondition i <= m - maxres - bk keeps all of
             them inside the matrix with no guard to fall back on *)
          for_ "i" (num 0) (m -: var "maxres" -: bk +: num 1)
            [
              for_ "jj" (num 0) w
                [
                  for_ "resj" (num 0) (var "maxres" +: num 1)
                    [
                      for_ "q" (num 0) bk
                        [
                          read "matrix"
                            (((var "i" +: var "resj" +: var "q") *: n)
                            +: lo +: var "jj");
                        ];
                    ];
                ];
            ];
          (* scalar tail: the guarded gather of [fine] *)
          for_ "i2" (num 0) m
            [
              for_ "jj2" (num 0) w
                [
                  for_ "resj2" (num 0) (var "maxres" +: num 1)
                    [
                      bind "src2"
                        (var "i2" +: var "resj2")
                        [
                          When
                            ( le (var "src2") (m -: num 1),
                              [
                                read "matrix"
                                  ((var "src2" *: n) +: lo +: var "jj2");
                              ] );
                          When
                            ( le m (var "src2"),
                              [
                                read "head"
                                  (((var "src2" -: m) *: w) +: var "jj2");
                              ] );
                        ];
                    ];
                ];
            ];
          (* strip writebacks (the mk path writes whole sub-rows via
             the copy-span mover; same footprint) *)
          for_ "i3" (num 0) m
            [
              for_ "jj3" (num 0) w
                [ write "matrix" ((var "i3" *: n) +: lo +: var "jj3") ];
            ];
        ];
      exact = false;
    }

  let panel_passes = [ coarse; fine; fine_mk; permute ]

  (* The full fused pipelines, serial or pool-chunked: panel phases plus
     the kernel row shuffles (and the kernel rotate as panel fallback),
     all already quantified over their sub-ranges. *)
  let c2r_passes =
    [
      coarse;
      fine;
      fine_mk;
      permute;
      Passes.rotate_pre;
      Passes.col_rotate;
      Passes.row_shuffle_gather;
    ]

  let r2c_passes =
    [
      coarse;
      fine;
      fine_mk;
      permute;
      Passes.rotate_post;
      Passes.col_unrotate;
      Passes.row_shuffle_ungather;
    ]
end
