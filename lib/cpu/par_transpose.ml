open Xpose_core

module Make (S : Storage.S) = struct
  module A = Algo.Make (S)

  type buf = S.t

  let scratches pool (p : Plan.t) =
    Array.init (Pool.workers pool) (fun _ ->
        S.create (Plan.scratch_elements p))

  let check (p : Plan.t) buf =
    if S.length buf <> p.m * p.n then
      invalid_arg "Par_transpose: buffer size does not match plan"

  (* One span per pass, wrapping the whole barrier, so the chunk spans
     Pool records nest inside it (the Report joins them by interval
     containment to compute the per-pass load-imbalance ratio). *)
  let obs_pass (p : Plan.t) name ~pred f =
    Xpose_obs.Tracer.pass ~name ~rows:p.m ~cols:p.n ~pred_touches:pred
      ~scratch_elems:(Plan.scratch_elements p) f

  let c2r ?(variant = Algo.C2r_gather) pool (p : Plan.t) buf =
    check p buf;
    let m = p.m and n = p.n in
    if m = 1 || n = 1 then ()
    else begin
      let tmp = scratches pool p in
      let over_cols name ~pred pass =
        obs_pass p name ~pred (fun () ->
            Pool.parallel_chunks pool ~lo:0 ~hi:n (fun ~chunk ~lo ~hi ->
                pass ~tmp:tmp.(chunk) ~lo ~hi))
      and over_rows name ~pred pass =
        obs_pass p name ~pred (fun () ->
            Pool.parallel_chunks pool ~lo:0 ~hi:m (fun ~chunk ~lo ~hi ->
                pass ~tmp:tmp.(chunk) ~lo ~hi))
      in
      if not (Plan.coprime p) then begin
        let amount = Plan.rotate_amount p in
        over_cols "rotate_pre"
          ~pred:(Pass_cost.rotate p ~amount)
          (A.Phases.rotate_columns p buf ~amount)
      end;
      (match variant with
      | Algo.C2r_scatter ->
          over_rows "row_shuffle" ~pred:(Pass_cost.shuffle p)
            (A.Phases.row_shuffle_scatter p buf)
      | Algo.C2r_gather | Algo.C2r_decomposed ->
          over_rows "row_shuffle" ~pred:(Pass_cost.shuffle p)
            (A.Phases.row_shuffle_gather p buf));
      match variant with
      | Algo.C2r_scatter | Algo.C2r_gather ->
          over_cols "col_shuffle" ~pred:(Pass_cost.shuffle p)
            (A.Phases.col_shuffle_gather p buf)
      | Algo.C2r_decomposed ->
          let amount j = j in
          over_cols "col_rotate"
            ~pred:(Pass_cost.rotate p ~amount)
            (A.Phases.rotate_columns p buf ~amount);
          over_cols "row_permute" ~pred:(Pass_cost.permute_rows p)
            (A.Phases.permute_rows p buf ~index:(Plan.q p))
    end

  let r2c ?(variant = Algo.R2c_fused) pool (p : Plan.t) buf =
    check p buf;
    let m = p.m and n = p.n in
    if m = 1 || n = 1 then ()
    else begin
      let tmp = scratches pool p in
      let over_cols name ~pred pass =
        obs_pass p name ~pred (fun () ->
            Pool.parallel_chunks pool ~lo:0 ~hi:n (fun ~chunk ~lo ~hi ->
                pass ~tmp:tmp.(chunk) ~lo ~hi))
      and over_rows name ~pred pass =
        obs_pass p name ~pred (fun () ->
            Pool.parallel_chunks pool ~lo:0 ~hi:m (fun ~chunk ~lo ~hi ->
                pass ~tmp:tmp.(chunk) ~lo ~hi))
      in
      (match variant with
      | Algo.R2c_fused ->
          over_cols "col_unshuffle" ~pred:(Pass_cost.shuffle p)
            (A.Phases.col_shuffle_ungather p buf)
      | Algo.R2c_decomposed ->
          over_cols "row_unpermute" ~pred:(Pass_cost.permute_rows p)
            (A.Phases.permute_rows p buf ~index:(Plan.q_inv p));
          let amount j = -j in
          over_cols "col_unrotate"
            ~pred:(Pass_cost.rotate p ~amount)
            (A.Phases.rotate_columns p buf ~amount));
      over_rows "row_unshuffle" ~pred:(Pass_cost.shuffle p)
        (A.Phases.row_shuffle_ungather p buf);
      if not (Plan.coprime p) then begin
        let amount j = -Plan.rotate_amount p j in
        over_cols "rotate_post"
          ~pred:(Pass_cost.rotate p ~amount)
          (A.Phases.rotate_columns p buf ~amount)
      end
    end

  let transpose ?(order = Layout.Row_major) pool ~m ~n buf =
    let rm, rn =
      match order with Layout.Row_major -> (m, n) | Layout.Col_major -> (n, m)
    in
    if rm > rn then c2r pool (Plan.make ~m:rm ~n:rn) buf
    else r2c pool (Plan.make ~m:rn ~n:rm) buf
end
