open Xpose_core

module Make (S : Storage.S) = struct
  type buf = S.t

  module Sl = Views.Slice (S)
  module Blsl = Views.Blocked (Sl)
  module Sb = Views.Strided_blocked (S)
  module Algo_slice = Algo.Make (Sl)
  module Algo_block_slice = Algo.Make (Blsl)
  module Algo_sb = Algo.Make (Sb)
  module ParT = Par_transpose.Make (S)

  let transpose pool ~batch ~rows ~cols ~block buf =
    if batch < 1 || rows < 1 || cols < 1 || block < 1 then
      invalid_arg "Par_permute.transpose: sizes must be positive";
    if S.length buf <> batch * rows * cols * block then
      invalid_arg "Par_permute.transpose: buffer size";
    if rows > 1 && cols > 1 then begin
      let c2r = rows > cols in
      let rm = max rows cols and rn = min rows cols in
      let p = Plan.make ~m:rm ~n:rn in
      if batch = 1 && block = 1 then
        (if c2r then ParT.c2r pool p buf else ParT.r2c pool p buf)
      else if batch > 1 then begin
        (* independent slices: chunk the batch, one scratch per worker *)
        let len = rows * cols * block in
        Pool.parallel_chunks pool ~lo:0 ~hi:batch (fun ~chunk:_ ~lo ~hi ->
            if lo < hi then
              if block = 1 then begin
                let tmp = Sl.create rm in
                for b = lo to hi - 1 do
                  let slice = Sl.of_buffer buf ~off:(b * len) ~len in
                  if c2r then Algo_slice.c2r p slice ~tmp
                  else Algo_slice.r2c p slice ~tmp
                done
              end
              else begin
                let tmp = Blsl.of_buffer (Sl.create (rm * block)) ~block in
                for b = lo to hi - 1 do
                  let view =
                    Blsl.of_buffer (Sl.of_buffer buf ~off:(b * len) ~len) ~block
                  in
                  if c2r then Algo_block_slice.c2r p view ~tmp
                  else Algo_block_slice.r2c p view ~tmp
                done
              end)
      end
      else begin
        (* one wide block transpose: split the block axis — every worker
           permutes its own strided sub-range of each block *)
        Pool.parallel_chunks pool ~lo:0 ~hi:block (fun ~chunk:_ ~lo ~hi ->
            if lo < hi then begin
              let w = hi - lo in
              let view =
                Sb.of_buffer buf ~off:lo ~stride:block ~block:w
                  ~count:(rows * cols)
              in
              let tmp =
                Sb.of_buffer (S.create (rm * w)) ~off:0 ~stride:w ~block:w
                  ~count:rm
              in
              if c2r then Algo_sb.c2r p view ~tmp
              else Algo_sb.r2c p view ~tmp
            end)
      end
    end

  let execute pool (plan : Xpose_permute.Permute.plan) buf =
    if S.length buf <> Xpose_permute.Shape.nelems plan.Xpose_permute.Permute.dims
    then invalid_arg "Par_permute.execute: buffer size";
    let module E = Xpose_permute.Exec.Make (struct
      type nonrec buf = buf

      let length = S.length
      let transpose = transpose pool
    end) in
    E.run_passes (Xpose_permute.Permute.passes plan) buf

  let permute pool ~dims ~perm buf =
    Xpose_permute.Shape.validate ~dims ~perm;
    if S.length buf <> Xpose_permute.Shape.nelems dims then
      invalid_arg "Par_permute.permute: buffer size";
    execute pool (Tensor_nd.plan ~dims ~perm) buf
end
