type task = { run : unit -> unit }

type state = Running | Stopped

type t = {
  lanes : int;
  queue : task Queue.t;
  mutex : Mutex.t;
  have_task : Condition.t;
  mutable state : state;
  mutable domains : unit Domain.t list;
  is_sequential : bool;
}

let make_sequential () =
  {
    lanes = 1;
    queue = Queue.create ();
    mutex = Mutex.create ();
    have_task = Condition.create ();
    state = Running;
    domains = [];
    is_sequential = true;
  }

let sequential = make_sequential ()

let worker_loop t () =
  let rec next () =
    Mutex.lock t.mutex;
    let rec wait () =
      if t.state = Stopped then begin
        Mutex.unlock t.mutex;
        None
      end
      else
        match Queue.take_opt t.queue with
        | Some task ->
            Mutex.unlock t.mutex;
            Some task
        | None ->
            Condition.wait t.have_task t.mutex;
            wait ()
    in
    match wait () with
    | None -> ()
    | Some task ->
        task.run ();
        next ()
  in
  next ()

let create ?workers () =
  let lanes =
    match workers with Some w -> w | None -> Domain.recommended_domain_count ()
  in
  if lanes < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let t =
    {
      lanes;
      queue = Queue.create ();
      mutex = Mutex.create ();
      have_task = Condition.create ();
      state = Running;
      domains = [];
      is_sequential = lanes = 1;
    }
  in
  t.domains <- List.init (lanes - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let workers t = t.lanes

let check_running t =
  if t.state = Stopped then invalid_arg "Pool: already shut down"

(* Observability: barrier/chunk counters are always on (one bump per
   barrier and per chunk, never per element); per-chunk spans — the raw
   material for the load-imbalance column of [xpose report] — are only
   recorded while the tracer is on. *)
let c_barriers = Xpose_obs.Metrics.counter "pool.barriers_total"
let c_chunks = Xpose_obs.Metrics.counter "pool.chunks_total"

let observe_chunk f ~chunk ~lo ~hi =
  Xpose_obs.Metrics.incr c_chunks;
  if Xpose_obs.Tracer.enabled () then
    Xpose_obs.Tracer.with_span ~cat:"chunk"
      ~args:(fun () ->
        Xpose_obs.Tracer.
          [ ("chunk", Int chunk); ("lo", Int lo); ("hi", Int hi) ])
      (Printf.sprintf "chunk%d" chunk)
      (fun () -> f ~chunk ~lo ~hi)
  else f ~chunk ~lo ~hi

let chunk_bounds ~lo ~hi ~chunks k =
  let len = hi - lo in
  let base = len / chunks and rem = len mod chunks in
  let c_lo = lo + (k * base) + min k rem in
  let c_hi = c_lo + base + if k < rem then 1 else 0 in
  (c_lo, c_hi)

let parallel_chunks t ~lo ~hi f =
  check_running t;
  if hi < lo then invalid_arg "Pool.parallel_chunks: hi < lo";
  Xpose_obs.Metrics.incr c_barriers;
  let f = observe_chunk f in
  (* Deterministic exception aggregation: every chunk runs to completion
     and records any exception in its own slot; after the barrier the
     exception of the lowest-numbered failing chunk is re-raised, so a
     multi-failure barrier raises the same exception on every run
     regardless of worker scheduling. *)
  let errors = Array.init t.lanes (fun _ -> Atomic.make None) in
  let run_chunk k =
    try
      let c_lo, c_hi = chunk_bounds ~lo ~hi ~chunks:t.lanes k in
      f ~chunk:k ~lo:c_lo ~hi:c_hi
    with exn ->
      Atomic.set errors.(k) (Some (exn, Printexc.get_raw_backtrace ()))
  in
  if t.is_sequential || hi - lo <= 1 then
    for k = 0 to t.lanes - 1 do
      run_chunk k
    done
  else begin
    let pending = Atomic.make (t.lanes - 1) in
    let run_task k () =
      run_chunk k;
      Atomic.decr pending
    in
    Mutex.lock t.mutex;
    for k = 1 to t.lanes - 1 do
      Queue.add { run = run_task k } t.queue
    done;
    Condition.broadcast t.have_task;
    Mutex.unlock t.mutex;
    (* The caller processes chunk 0 itself, then helps drain the queue (a
       worker may still be waking up) and finally spins on the barrier. *)
    run_chunk 0;
    let rec help () =
      let task =
        Mutex.lock t.mutex;
        let task = Queue.take_opt t.queue in
        Mutex.unlock t.mutex;
        task
      in
      match task with
      | Some task ->
          task.run ();
          help ()
      | None -> ()
    in
    help ();
    while Atomic.get pending > 0 do
      Domain.cpu_relax ()
    done
  end;
  Array.iter
    (fun slot ->
      match Atomic.get slot with
      | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
      | None -> ())
    errors

let parallel_for t ~lo ~hi f =
  parallel_chunks t ~lo ~hi (fun ~chunk:_ ~lo ~hi ->
      for i = lo to hi - 1 do
        f i
      done)

let shutdown t =
  if t.is_sequential && t == sequential then
    invalid_arg "Pool.shutdown: cannot shut down Pool.sequential";
  if t.state = Running then begin
    Mutex.lock t.mutex;
    t.state <- Stopped;
    Condition.broadcast t.have_task;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ?workers f =
  let t = create ?workers () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
