(** Pass-fused cache-blocked float64 engine — the fast path.

    The monomorphic twin of {!Fused.Make}[(Storage.Float64)], with every
    panel primitive written directly over float64 bigarrays
    ([unsafe_get]/[unsafe_set] loops, no [sub] views, no per-call scratch
    allocation): this is the implementation a performance-conscious
    caller should use for double-precision matrices, in the same spirit
    as {!Xpose_core.Kernels_f64} versus [Algo.Make]. Semantics are
    asserted identical to the element-generic oracle by the test suite.

    Three ways to run it:
    - serial: {!c2r}/{!r2c}/{!transpose} — one domain, one workspace;
    - panel-parallel: {!c2r_pool}/{!r2c_pool}/{!transpose_pool} — one
      matrix, panels partitioned across a {!Pool};
    - batched: {!transpose_batch} — many same-shape matrices, fanned
      matrix-parallel across the pool (or panel-parallel per matrix when
      the batch is smaller than the pool).

    All engines take scratch from a {!Xpose_core.Workspace.F64} (created
    per call when omitted) and memoize plans through
    {!Xpose_core.Plan.Cache}. Observability: one "pass" span per logical
    pass ([rotate_pre] / [row_shuffle] / [fused_col] and inverses), one
    "panel" span per panel visit, with predicted touches from the
    panel-residency model in {!Xpose_core.Pass_cost}.

    {!Checked} is the checked-access shadow mode: the same engine with
    every access bounds-verified
    ({!Xpose_core.Checked_access.Violation} on the first bad one). *)

type buf = Xpose_core.Storage.Float64.t

module Ws = Xpose_core.Workspace.F64

val default_width : int
val default_block_rows : int

val supported_widths : int list
(** The panel widths the autotuner searches and the check layer
    verifies; any positive [?panel_width] remains accepted and
    correct. *)

val cycles : m:int -> index:(int -> int) -> int array array
(** Nontrivial cycles of [row_i <- row_{index i}] in gather-chain order;
    shared by every panel (and by every worker of a pool run).
    @raise Invalid_argument if [index] is not a permutation of
    [[0, m)]. *)

(** The full engine surface, satisfied by both the raw top-level
    operations and the {!Checked} shadow-mode twin. *)
module type ENGINE = sig
  (** {1 Sweeps and fused visits}

      Same contracts as the corresponding {!Fused.Make} operations, over
      the column range [[lo, hi)] (default all columns). *)

  val rotate_columns :
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Xpose_core.Tune_params.kernel_tier ->
    ?ws:Ws.t ->
    ?lo:int ->
    ?hi:int ->
    Xpose_core.Plan.t ->
    buf ->
    amount:(int -> int) ->
    unit

  val permute_cols :
    ?panel_width:int ->
    ?tier:Xpose_core.Tune_params.kernel_tier ->
    ?ws:Ws.t ->
    ?lo:int ->
    ?hi:int ->
    Xpose_core.Plan.t ->
    buf ->
    cycles:int array array ->
    unit

  val c2r_cols :
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Xpose_core.Tune_params.kernel_tier ->
    ?ws:Ws.t ->
    ?lo:int ->
    ?hi:int ->
    Xpose_core.Plan.t ->
    buf ->
    cycles:int array array ->
    unit
  (** One panel visit = rotate by [j] + permute by the cycles of
      [Plan.q]. *)

  val r2c_cols :
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Xpose_core.Tune_params.kernel_tier ->
    ?ws:Ws.t ->
    ?lo:int ->
    ?hi:int ->
    Xpose_core.Plan.t ->
    buf ->
    cycles:int array array ->
    unit
  (** One panel visit = permute by the cycles of [Plan.q_inv] + rotate by
      [-j]. *)

  (** {1 Serial engines}

      [tier] (default [Scalar]) selects the inner-loop kernel tier of
      the panel passes: under [Mk8]/[Mk16] the fine-phase gather walks
      8x8 / 16x16 block tiles through the fully unrolled
      {!Xpose_core.Microkernel} movers (scalar tail for edge blocks and
      the head-wrap region) and sub-row moves go through the unrolled
      span copies. Every tier computes the identical result — the
      autotuner picks the fastest per shape. *)

  val c2r :
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Xpose_core.Tune_params.kernel_tier ->
    ?ws:Ws.t ->
    Xpose_core.Plan.t ->
    buf ->
    unit
  (** @raise Invalid_argument if the buffer size does not match the
      plan. *)

  val r2c :
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Xpose_core.Tune_params.kernel_tier ->
    ?ws:Ws.t ->
    Xpose_core.Plan.t ->
    buf ->
    unit

  val transpose :
    ?order:Xpose_core.Layout.order ->
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Xpose_core.Tune_params.kernel_tier ->
    ?ws:Ws.t ->
    ?cache:Xpose_core.Plan.Cache.t ->
    m:int ->
    n:int ->
    buf ->
    unit
  (** In-place transpose of an [m x n] matrix (same C2R/R2C routing policy
      as [Algo.Make(S).transpose]); plans come from [cache] (default
      {!Xpose_core.Plan.Cache.default}). *)

  (** {1 Panel-parallel engines}

      One matrix, column panels partitioned across the pool; the row
      shuffle partitions across rows. [workspaces] supplies per-lane
      scratch indexed by chunk (at least [Pool.workers pool] entries,
      checked); created per call when omitted.
      @raise Invalid_argument on buffer/plan mismatch or short workspace
      array. *)

  val c2r_pool :
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Xpose_core.Tune_params.kernel_tier ->
    ?workspaces:Ws.t array ->
    Pool.t ->
    Xpose_core.Plan.t ->
    buf ->
    unit

  val r2c_pool :
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Xpose_core.Tune_params.kernel_tier ->
    ?workspaces:Ws.t array ->
    Pool.t ->
    Xpose_core.Plan.t ->
    buf ->
    unit

  val transpose_pool :
    ?order:Xpose_core.Layout.order ->
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Xpose_core.Tune_params.kernel_tier ->
    ?workspaces:Ws.t array ->
    ?cache:Xpose_core.Plan.Cache.t ->
    Pool.t ->
    m:int ->
    n:int ->
    buf ->
    unit

  (** {1 Batched transpose} *)

  val transpose_batch :
    ?order:Xpose_core.Layout.order ->
    ?split:Xpose_core.Tune_params.batch_split ->
    ?panel_width:int ->
    ?block_rows:int ->
    ?tier:Xpose_core.Tune_params.kernel_tier ->
    ?cache:Xpose_core.Plan.Cache.t ->
    Pool.t ->
    m:int ->
    n:int ->
    buf array ->
    unit
  (** [transpose_batch pool ~m ~n bufs] transposes every matrix of the
      same-shape batch in place. [split] (default
      {!Xpose_core.Tune_params.Auto}) decides the parallelism: under
      [Auto], when the batch has at least as many matrices as the pool
      has lanes, lanes take contiguous slices of the batch and run the
      serial engine (one plan, one workspace per lane), and smaller
      batches run each matrix panel-parallel instead;
      [Matrix_parallel] / [Panel_parallel] force one side, and
      [Hybrid t] switches at batch size [t]. A single-lane pool always
      runs the serial engine per matrix. Every policy computes the same
      result — the autotuner picks whichever is fastest for the shape.
      The whole batch is validated before any element moves.
      @raise Invalid_argument if any buffer size differs from [m * n]. *)
end

include ENGINE

module Checked : ENGINE
(** Checked-access shadow mode: the identical engine with every matrix
    and workspace access bounds-verified and the workspace buffers
    verified distinct from the matrix, raising
    {!Xpose_core.Checked_access.Violation} on the first bad access
    instead of corrupting memory. Selected by tests (run the suite once
    under checking) and by [xpose check --shadow]. *)

module Summary = Fused.Summary
(** {!Fused.Summary}: the specialized engine runs the same loop bodies,
    so it shares the same symbolic access summaries. *)
