(** A persistent pool of worker domains with static work partitioning.

    The paper's CPU implementation (§5.1) is "a straightforward OpenMP
    parallelization of Algorithm 1": each permutation pass is a parallel
    loop over rows or columns, statically chunked, with a barrier between
    passes. This module is the OCaml 5 equivalent. Chunks are contiguous
    and equal-sized (±1), matching the paper's "perfect load balancing due
    to the regular structure of the decomposition". *)

type t

val create : ?workers:int -> unit -> t
(** [create ~workers ()] starts a pool with [workers] parallel lanes in
    total (the calling domain counts as one; [workers - 1] domains are
    spawned). Defaults to [Domain.recommended_domain_count ()].
    @raise Invalid_argument if [workers < 1]. *)

val workers : t -> int
(** Number of parallel lanes, including the caller. *)

val sequential : t
(** A shared pool with a single lane and no spawned domains: running on it
    is plain sequential execution (the paper's "1 T" rows). *)

val chunk_bounds : lo:int -> hi:int -> chunks:int -> int -> int * int
(** [chunk_bounds ~lo ~hi ~chunks k] is the half-open sub-range
    [[c_lo, c_hi)] that chunk [k] of [chunks] receives when [[lo, hi)] is
    split statically: contiguous, equal-sized (±1, the first [len mod
    chunks] chunks get the extra element), covering [[lo, hi)] exactly.
    This is the split {!parallel_chunks} uses; it is exposed so the
    static race analyzer ([Xpose_check.Footprint]) partitions index
    space with the very same function the pool executes. *)

val parallel_chunks : t -> lo:int -> hi:int -> (chunk:int -> lo:int -> hi:int -> unit) -> unit
(** [parallel_chunks t ~lo ~hi f] splits [[lo, hi)] into [workers t]
    contiguous chunks (per {!chunk_bounds}) and runs
    [f ~chunk ~lo:c_lo ~hi:c_hi] for each, in parallel; returns only when
    all chunks completed (a barrier). [chunk] ranges over
    [[0, workers t)] so callers can index per-worker scratch. Empty
    chunks are still invoked with [lo = hi]. Exceptions aggregate
    deterministically: every chunk runs to completion (also on the
    sequential path), each failing chunk's exception is recorded, and
    after the barrier the exception of the {e lowest-numbered} failing
    chunk is re-raised with its backtrace — so a barrier that fails in
    several chunks raises the same exception on every run, independent of
    worker scheduling.
    Must not be called re-entrantly from inside a running chunk. *)

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi f] runs [f i] for every [i] in [[lo, hi)] using
    {!parallel_chunks}. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. Subsequent parallel
    calls raise [Invalid_argument]. {!sequential} cannot be shut down. *)

val with_pool : ?workers:int -> (t -> 'a) -> 'a
(** [with_pool f] creates a pool, applies [f], and shuts the pool down
    (also on exception). *)
