(** Per-pass Theorem-6 pricing, shared by every instrumented pass runner.

    {!Theory.theorem6_work_and_space} prices a whole transposition; the
    observability layer needs the same accounting split by pass so a
    traced run can be joined against the model pass by pass. The counts
    here are {e exact} for the implementations in {!Algo.Make}: a shuffle
    pass reads and writes every element once ([2mn]); a rotation pass
    skips the columns whose reduced amount is zero. Summing the passes of
    the default gather C2R reproduces [Theory.theorem6_work_and_space]
    exactly (asserted in the obs test suite). *)

val shuffle : Plan.t -> int
(** Element touches of a row or column shuffle pass: [2mn]. *)

val rotate : Plan.t -> amount:(int -> int) -> int
(** Element touches of a column-rotation pass: [2m] per column whose
    rotation amount is nonzero mod [m]. O(n). *)

val permute_rows : Plan.t -> int
(** Element touches of a row-permutation pass ([2mn]: the implementation
    gathers and writes back every column in full). *)

(** {1 Panelized (cache-aware / fused) passes}

    The counts above price {e buffer accesses}, which for the naive
    per-column passes coincide with memory traffic (nothing stays
    resident between columns). The panelized engines are priced under
    the §4.6 residency model instead: a width-[W] column panel is loaded
    into cache once and stored once per {e visit}, however many fused
    operations run while it is resident. The two models agree on what
    the regression guard needs — un-fusing a pass into a second sweep
    doubles the count. *)

val panel_rotate : Plan.t -> width:int -> amount:(int -> int) -> int
(** Modeled memory element transfers of a §4.6 panelized rotation:
    [2m * w] per width-[w] panel containing at least one column whose
    reduced amount is nonzero; untouched panels are free. O(n).
    @raise Invalid_argument if [width < 1]. *)

val fused_panel : Plan.t -> width:int -> int
(** One fused panel visit ([2m * width]): the panel is read and written
    once while the rotation and the row permutation both run on it. *)

val fused_col : Plan.t -> int
(** The whole fused column phase, [2mn]: every element moves through
    cache once even though two §4.1 passes (column rotation, row
    permutation) are applied to it. Compare against
    {!rotate}[ + ]{!permute_rows} ([~4mn]) for the unfused path. *)

(** {1 Out-of-core windows}

    The windowed engine's unit of residency is a mapped window, and what
    the pricing must predict is {e file traffic through that window}:
    every resident element is read once on the way in and written once
    on the way out, regardless of how many fused operations run while it
    is staged. These feed the per-window [ooc.window] spans. *)

val ooc_row_window : Plan.t -> rows:int -> int
(** File traffic of one streaming row window of [rows] rows:
    [2 * rows * n] (each row is gathered through scratch and written
    back in place).
    @raise Invalid_argument if [rows < 0]. *)

val ooc_panel_window : Plan.t -> width:int -> int
(** File traffic of one staged column panel of [width] columns:
    [2 * m * width] (gathered into the staging once, scattered back
    once), independent of how many column passes run on the staging.
    @raise Invalid_argument if [width < 1]. *)

(** {1 Calibrated per-byte pricing}

    The touch counts above are machine-free. A
    {!Xpose_obs.Calibrate.t} fits one per-byte cost per traffic shape
    to the machine at hand, turning a touch count into a predicted
    wall-time — the absolute leg of the roofline attribution (the
    relative leg, achieved/roof, lives in {!Xpose_obs.Roofline}). *)

type rates = {
  stream_ns_per_byte : float;
  gather_ns_per_byte : float;
  scatter_ns_per_byte : float;
  permute_ns_per_byte : float;
}

val rates_of_calibration : Xpose_obs.Calibrate.t -> rates
(** One fitted ns/byte per probe — the reciprocal of each measured
    roof. *)

val predicted_ns : rates -> kind:Xpose_obs.Roofline.kind -> touches:int -> float
(** [touches * 8] bytes (float64) priced at the rate of the pass's
    traffic shape: the time the pass would take running exactly at its
    roof. Measured time divided by this is the inverse roofline
    fraction.
    @raise Invalid_argument if [touches < 0]. *)

val rate_at_width :
  rates ->
  Xpose_obs.Roofline.kind ->
  calibrated_width:int ->
  width:int ->
  float
(** The effective ns/byte of strided traffic at panel width [width],
    given probes measured at [calibrated_width]: linear in
    [calibrated_width / width] on the excess over the streaming rate,
    floored at the streaming rate (a wider panel amortizes the strided
    part of every transaction toward a pure stream; a narrower one pays
    more per byte). [Stream] traffic is width-independent. Monotone
    non-increasing in [width] — the autotuner's pruning contract.
    @raise Invalid_argument if either width is [< 1]. *)

val predicted_ns_at_width :
  rates ->
  kind:Xpose_obs.Roofline.kind ->
  calibrated_width:int ->
  width:int ->
  touches:int ->
  float
(** {!predicted_ns} priced at {!rate_at_width}.
    @raise Invalid_argument if [touches < 0] or either width is [< 1]. *)

val predicted_ns_at_tier :
  rates ->
  kind:Xpose_obs.Roofline.kind ->
  calibrated_width:int ->
  width:int ->
  block:int ->
  touches:int ->
  float
(** {!predicted_ns_at_width} with the kernel-tier discount: an mk
    tier's unrolled [block]-row column movers amortize the strided
    excess as if the panel were [block] times wider (still floored at
    the streaming rate). [block = 1] is exactly
    {!predicted_ns_at_width} — the scalar tier.
    @raise Invalid_argument if [touches < 0], [block < 1] or either
    width is [< 1]. *)
