(** Per-pass Theorem-6 pricing, shared by every instrumented pass runner.

    {!Theory.theorem6_work_and_space} prices a whole transposition; the
    observability layer needs the same accounting split by pass so a
    traced run can be joined against the model pass by pass. The counts
    here are {e exact} for the implementations in {!Algo.Make}: a shuffle
    pass reads and writes every element once ([2mn]); a rotation pass
    skips the columns whose reduced amount is zero. Summing the passes of
    the default gather C2R reproduces [Theory.theorem6_work_and_space]
    exactly (asserted in the obs test suite). *)

val shuffle : Plan.t -> int
(** Element touches of a row or column shuffle pass: [2mn]. *)

val rotate : Plan.t -> amount:(int -> int) -> int
(** Element touches of a column-rotation pass: [2m] per column whose
    rotation amount is nonzero mod [m]. O(n). *)

val permute_rows : Plan.t -> int
(** Element touches of a row-permutation pass ([2mn]: the implementation
    gathers and writes back every column in full). *)
