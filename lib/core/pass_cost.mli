(** Per-pass Theorem-6 pricing, shared by every instrumented pass runner.

    {!Theory.theorem6_work_and_space} prices a whole transposition; the
    observability layer needs the same accounting split by pass so a
    traced run can be joined against the model pass by pass. The counts
    here are {e exact} for the implementations in {!Algo.Make}: a shuffle
    pass reads and writes every element once ([2mn]); a rotation pass
    skips the columns whose reduced amount is zero. Summing the passes of
    the default gather C2R reproduces [Theory.theorem6_work_and_space]
    exactly (asserted in the obs test suite). *)

val shuffle : Plan.t -> int
(** Element touches of a row or column shuffle pass: [2mn]. *)

val rotate : Plan.t -> amount:(int -> int) -> int
(** Element touches of a column-rotation pass: [2m] per column whose
    rotation amount is nonzero mod [m]. O(n). *)

val permute_rows : Plan.t -> int
(** Element touches of a row-permutation pass ([2mn]: the implementation
    gathers and writes back every column in full). *)

(** {1 Panelized (cache-aware / fused) passes}

    The counts above price {e buffer accesses}, which for the naive
    per-column passes coincide with memory traffic (nothing stays
    resident between columns). The panelized engines are priced under
    the §4.6 residency model instead: a width-[W] column panel is loaded
    into cache once and stored once per {e visit}, however many fused
    operations run while it is resident. The two models agree on what
    the regression guard needs — un-fusing a pass into a second sweep
    doubles the count. *)

val panel_rotate : Plan.t -> width:int -> amount:(int -> int) -> int
(** Modeled memory element transfers of a §4.6 panelized rotation:
    [2m * w] per width-[w] panel containing at least one column whose
    reduced amount is nonzero; untouched panels are free. O(n).
    @raise Invalid_argument if [width < 1]. *)

val fused_panel : Plan.t -> width:int -> int
(** One fused panel visit ([2m * width]): the panel is read and written
    once while the rotation and the row permutation both run on it. *)

val fused_col : Plan.t -> int
(** The whole fused column phase, [2mn]: every element moves through
    cache once even though two §4.1 passes (column rotation, row
    permutation) are applied to it. Compare against
    {!rotate}[ + ]{!permute_rows} ([~4mn]) for the unfused path. *)
