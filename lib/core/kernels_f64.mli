(** Specialized float64 kernels.

    [Algo.Make (Storage.Float64)] is element-generic: every access goes
    through the functor parameter and cannot be inlined to a direct
    memory operation. This module reimplements the same passes
    monomorphically over float64 bigarrays so the compiler emits direct
    unboxed loads and stores — the implementation a performance-conscious
    user should call, and the one the CPU benchmarks (Figure 3 / Table 1)
    measure. Semantics are identical to the functor (asserted by the test
    suite over random shapes).

    All phase functions view the buffer as row-major [m x n] per the
    plan, and take half-open ranges so parallel drivers can partition
    work. *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** The seven permutation passes. Both the raw unsafe implementation
    ({!Phases}) and its checked twin ({!Checked.Phases}) satisfy this
    signature; {!Engine_of} builds the full engine from either. *)
module type PHASES = sig
  val rotate_columns :
    Plan.t -> buf -> tmp:buf -> amount:(int -> int) -> lo:int -> hi:int -> unit

  val row_shuffle_gather : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit
  val row_shuffle_scatter : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit
  val row_shuffle_ungather : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit
  val col_shuffle_gather : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit
  val col_shuffle_ungather : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit

  val permute_rows :
    Plan.t -> buf -> tmp:buf -> index:(int -> int) -> lo:int -> hi:int -> unit
end

module Phases : PHASES
(** The raw unsafe passes: direct unboxed loads and stores, no checks. *)

(** The engine type shared by the raw ({!c2r} / {!r2c} / {!transpose} at
    top level) and checked ({!Checked}) instantiations. *)
module type ENGINE = sig
  val c2r : ?variant:Algo.c2r_variant -> Plan.t -> buf -> tmp:buf -> unit
  (** Same contract as [Algo.Make(Storage.Float64).c2r]. *)

  val r2c : ?variant:Algo.r2c_variant -> Plan.t -> buf -> tmp:buf -> unit

  val transpose :
    ?ws:Workspace.F64.t -> ?order:Layout.order -> m:int -> n:int -> buf -> unit
  (** Same contract as [Algo.Make(Storage.Float64).transpose]. When [ws]
      is given the Theorem-6 scratch comes from the workspace (grown once,
      reused across calls) instead of a fresh allocation per call. *)
end

module Engine_of (P : PHASES) : ENGINE
(** The pass orchestration (order, variant dispatch, per-pass
    observability spans) over any {!PHASES}. One indirect call per pass,
    never per element, so [Engine_of (Phases)] runs at full speed. *)

include ENGINE

(** Checked-access shadow mode ({!Checked_access}): the same passes with
    every matrix and scratch access bounds-verified, every index-equation
    result ([d'], [d'_inv], [s'], [s'_inv], permutation indices)
    range-verified, and the scratch verified distinct from the matrix
    buffer. Raises {!Checked_access.Violation} on the first bad access
    instead of corrupting memory. Selected by tests (run the suite once
    under checking) and by [xpose check --shadow]. *)
module Checked : sig
  module Phases : PHASES

  include ENGINE
end

val c2r_access : Algo.c2r_variant -> Access.summary list
(** {!Algo.c2r_access}: these kernels run the same phase bodies. *)

val r2c_access : Algo.r2c_variant -> Access.summary list
(** {!Algo.r2c_access}. *)
