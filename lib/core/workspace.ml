module type S = sig
  type t
  type buf

  val create : unit -> t
  val line : t -> int -> buf
  val head : t -> int -> buf
  val block : t -> int -> buf
  val tmp : t -> int -> buf
end

module Make (St : Storage.S) = struct
  type buf = St.t

  type t = {
    mutable line : buf;
    mutable head : buf;
    mutable block : buf;
    mutable tmp : buf;
  }

  let create () =
    {
      line = St.create 0;
      head = St.create 0;
      block = St.create 0;
      tmp = St.create 0;
    }

  let line t len =
    if St.length t.line < len then t.line <- St.create len;
    t.line

  let head t len =
    if St.length t.head < len then t.head <- St.create len;
    t.head

  let block t len =
    if St.length t.block < len then t.block <- St.create len;
    t.block

  let tmp t len =
    if St.length t.tmp < len then t.tmp <- St.create len;
    t.tmp
end

module F64 = Make (Storage.Float64)
