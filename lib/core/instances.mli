(** Ready-made algorithm instances for the common element types.

    [F64]/[F32] correspond to the paper's "double"/"float" experiments;
    [I64]/[I32] are exact integer variants; [I] uses native ints and is the
    workhorse of the test suite. *)

module F64 : module type of Algo.Make (Storage.Float64)
module F32 : module type of Algo.Make (Storage.Float32)
module I64 : module type of Algo.Make (Storage.Int64_elt)
module I32 : module type of Algo.Make (Storage.Int32_elt)
module I : module type of Algo.Make (Storage.Int_elt)
