(** Linearizations of two-dimensional arrays and the four index functions
    that define the C2R and R2C transpositions (paper §2, Eqs. 1-14).

    A matrix [A] with [m] rows and [n] columns is stored in one flat buffer
    of [m * n] elements, either row-major ([A[i,j]] at [j + i*n]) or
    column-major ([A[i,j]] at [i + j*m]). *)

type order = Row_major | Col_major

val pp_order : Format.formatter -> order -> unit

val equal_order : order -> order -> bool

val flip : order -> order
(** [flip o] is the other storage order. *)

type dims = { m : int; n : int }
(** [m] rows by [n] columns. *)

val dims : m:int -> n:int -> dims
(** @raise Invalid_argument if [m < 1] or [n < 1]. *)

val elements : dims -> int
(** [elements d] is [d.m * d.n]. *)

val swap : dims -> dims
(** [swap d] exchanges row and column counts (the shape of the transpose). *)

(** {1 Row-major linearization (Eqs. 1-3)} *)

val lrm : n:int -> int -> int -> int
(** [lrm ~n i j = j + i*n]. *)

val irm : n:int -> int -> int
(** [irm ~n l = l / n]. *)

val jrm : n:int -> int -> int
(** [jrm ~n l = l mod n]. *)

(** {1 Column-major linearization (Eqs. 4-6)} *)

val lcm_ : m:int -> int -> int -> int
(** [lcm_ ~m i j = i + j*m] (named with a trailing underscore to avoid the
    arithmetic [lcm]). *)

val icm : m:int -> int -> int
(** [icm ~m l = l mod m]. *)

val jcm : m:int -> int -> int
(** [jcm ~m l = l / m]. *)

(** {1 Transposition index functions (Eqs. 7-10)}

    [AC2R[i,j] = A[s(i,j), c(i,j)]] and [AR2C[i,j] = A[t(i,j), d(i,j)]]
    (Eqs. 11-12). *)

val s : m:int -> n:int -> int -> int -> int
(** [s ~m ~n i j = (j + i*n) mod m] (Eq. 7). *)

val c : m:int -> n:int -> int -> int -> int
(** [c ~m ~n i j = (j + i*n) / m] (Eq. 8). *)

val t : m:int -> n:int -> int -> int -> int
(** [t ~m ~n i j = (i + j*m) / n] (Eq. 9). *)

val d : m:int -> n:int -> int -> int -> int
(** [d ~m ~n i j = (i + j*m) mod n] (Eq. 10). *)

val transpose_index : m:int -> n:int -> int -> int
(** [transpose_index ~m ~n l] is the row-major linear index in the [n x m]
    transpose of the element at row-major linear index [l] in the original
    [m x n] matrix: [n * (l mod n) ... ] precisely
    [lrm ~m (jrm ~n l) (irm ~n l)] viewed in the transposed shape. Used as
    the specification that all in-place algorithms are tested against. *)
