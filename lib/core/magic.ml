(* Granlund-Montgomery round-up reciprocal: with l = ceil(log2 d) and
   mult = floor(2^(nbits+l) / d) + 1, floor(mult * x / 2^(nbits+l)) equals
   floor(x / d) for all 0 <= x < 2^nbits. Since d <= 2^l, mult can reach
   2^(nbits+1), so the product mult * x is below 2^(2*nbits+1); nbits = 30
   keeps it inside OCaml's 63-bit native integer range. *)

type t = { d : int; mult : int; shift : int }

let nbits = 30

let max_dividend = (1 lsl nbits) - 1

let make d =
  if d < 1 || d > max_dividend then invalid_arg "Magic.make: bad divisor";
  if d = 1 then { d; mult = 1; shift = 0 }
  else
    let l = Intmath.ceil_log2 d in
    let shift = nbits + l in
    (* floor(2^shift / d) + 1, computed without overflow: shift <= 80 can
       exceed 62 bits, so build the quotient digit by digit. *)
    let rec pow_div q r k =
      if k = 0 then q
      else
        let r2 = r * 2 in
        let q2 = (q * 2) + (r2 / d) in
        pow_div q2 (r2 mod d) (k - 1)
    in
    let mult = pow_div 0 1 shift + 1 in
    { d; mult; shift }

let divisor t = t.d

let div t x = if t.d = 1 then x else (x * t.mult) asr t.shift

let modu t x = x - (div t x * t.d)

let divmod t x =
  let q = div t x in
  (q, x - (q * t.d))
