let shuffle (p : Plan.t) = 2 * p.m * p.n

let rotate (p : Plan.t) ~amount =
  let m = p.m in
  let moved = ref 0 in
  for j = 0 to p.n - 1 do
    if Intmath.emod (amount j) m <> 0 then incr moved
  done;
  2 * m * !moved

let permute_rows (p : Plan.t) = 2 * p.m * p.n

let panel_rotate (p : Plan.t) ~width ~amount =
  if width < 1 then invalid_arg "Pass_cost.panel_rotate: width must be >= 1";
  let m = p.m in
  let traffic = ref 0 in
  let lo = ref 0 in
  while !lo < p.n do
    let w = min width (p.n - !lo) in
    let moved = ref false in
    for jj = 0 to w - 1 do
      if Intmath.emod (amount (!lo + jj)) m <> 0 then moved := true
    done;
    if !moved then traffic := !traffic + (2 * m * w);
    lo := !lo + w
  done;
  !traffic

let fused_panel (p : Plan.t) ~width = 2 * p.m * width

let fused_col (p : Plan.t) = 2 * p.m * p.n

let ooc_row_window (p : Plan.t) ~rows =
  if rows < 0 then invalid_arg "Pass_cost.ooc_row_window: rows must be >= 0";
  2 * rows * p.n

let ooc_panel_window (p : Plan.t) ~width =
  if width < 1 then invalid_arg "Pass_cost.ooc_panel_window: width must be >= 1";
  2 * p.m * width

(* -- calibrated per-byte pricing ----------------------------------------- *)

type rates = {
  stream_ns_per_byte : float;
  gather_ns_per_byte : float;
  scatter_ns_per_byte : float;
  permute_ns_per_byte : float;
}

let rates_of_calibration (cal : Xpose_obs.Calibrate.t) =
  let open Xpose_obs.Calibrate in
  {
    stream_ns_per_byte = cal.stream.ns_per_byte;
    gather_ns_per_byte = cal.gather.ns_per_byte;
    scatter_ns_per_byte = cal.scatter.ns_per_byte;
    permute_ns_per_byte = cal.permute.ns_per_byte;
  }

let rate_for r (kind : Xpose_obs.Roofline.kind) =
  match kind with
  | Stream -> r.stream_ns_per_byte
  | Gather -> r.gather_ns_per_byte
  | Scatter -> r.scatter_ns_per_byte
  | Permute -> r.permute_ns_per_byte

let predicted_ns r ~kind ~touches =
  if touches < 0 then invalid_arg "Pass_cost.predicted_ns: touches must be >= 0";
  float_of_int (touches * 8) *. rate_for r kind

(* Locality-aware width scaling: the gather/scatter/permute probes are
   measured at one panel width, where every transaction moves a
   [width * 8]-byte sub-row. A wider panel amortizes the strided part
   of the access toward the streaming rate; a narrower one pays more
   per byte. Linear in [calibrated_width / width] on the strided excess
   over the streaming rate, floored at the streaming rate (no panel
   beats a pure stream). Streaming traffic is width-independent. *)
let rate_at_width r (kind : Xpose_obs.Roofline.kind) ~calibrated_width ~width =
  if calibrated_width < 1 then
    invalid_arg "Pass_cost.rate_at_width: calibrated_width must be >= 1";
  if width < 1 then invalid_arg "Pass_cost.rate_at_width: width must be >= 1";
  match kind with
  | Stream -> r.stream_ns_per_byte
  | Gather | Scatter | Permute ->
      let stream = r.stream_ns_per_byte in
      let excess = rate_for r kind -. stream in
      let scaled =
        stream
        +. (excess *. float_of_int calibrated_width /. float_of_int width)
      in
      Float.max stream scaled

let predicted_ns_at_width r ~kind ~calibrated_width ~width ~touches =
  if touches < 0 then
    invalid_arg "Pass_cost.predicted_ns_at_width: touches must be >= 0";
  float_of_int (touches * 8) *. rate_at_width r kind ~calibrated_width ~width

(* Kernel-tier scaling on top of the width scaling: an mk tier's
   unrolled column movers issue [block] consecutive-row transfers per
   call with no per-element wrap test, so the strided excess amortizes
   as if the panel were [block] times wider. [block = 1] (the scalar
   tier) degenerates to {!predicted_ns_at_width}; the floor at the
   streaming rate still holds, so a tier can never price below a pure
   stream. *)
let predicted_ns_at_tier r ~kind ~calibrated_width ~width ~block ~touches =
  if block < 1 then
    invalid_arg "Pass_cost.predicted_ns_at_tier: block must be >= 1";
  predicted_ns_at_width r ~kind ~calibrated_width ~width:(width * block)
    ~touches
