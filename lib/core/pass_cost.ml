let shuffle (p : Plan.t) = 2 * p.m * p.n

let rotate (p : Plan.t) ~amount =
  let m = p.m in
  let moved = ref 0 in
  for j = 0 to p.n - 1 do
    if Intmath.emod (amount j) m <> 0 then incr moved
  done;
  2 * m * !moved

let permute_rows (p : Plan.t) = 2 * p.m * p.n
