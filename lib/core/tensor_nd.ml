module P = Xpose_permute

let plan_arith =
  let transpose_touches ~m ~n =
    if m <= 1 || n <= 1 then 0
    else begin
      let p = Plan.make ~m ~n in
      (* columns with rotation amount zero (the first [b] of them) are
         not touched by the pre-rotation; the row and column shuffles
         each read and write every element once *)
      let rotate = if Plan.coprime p then 0 else 2 * m * (n - p.Plan.b) in
      rotate + (4 * m * n)
    end
  in
  let transpose_scratch ~m ~n =
    if m <= 1 || n <= 1 then 0
    else Plan.scratch_elements (Plan.make ~m ~n)
  in
  { P.Cost.transpose_touches; transpose_scratch }

let plan ~dims ~perm = P.Permute.plan ~arith:plan_arith ~dims ~perm ()
let candidates ~dims ~perm = P.Permute.candidates ~arith:plan_arith ~dims ~perm ()

module Make (S : Storage.S) = struct
  type buf = S.t

  module Sl = Views.Slice (S)
  module Bl = Views.Blocked (S)
  module Blsl = Views.Blocked (Sl)
  module Algo_plain = Algo.Make (S)
  module Algo_slice = Algo.Make (Sl)
  module Algo_block = Algo.Make (Bl)
  module Algo_block_slice = Algo.Make (Blsl)

  let transpose ~batch ~rows ~cols ~block buf =
    if batch < 1 || rows < 1 || cols < 1 || block < 1 then
      invalid_arg "Tensor_nd.transpose: sizes must be positive";
    if S.length buf <> batch * rows * cols * block then
      invalid_arg "Tensor_nd.transpose: buffer size";
    if rows > 1 && cols > 1 then begin
      let c2r = rows > cols in
      let rm = max rows cols and rn = min rows cols in
      let p = Plan.make ~m:rm ~n:rn in
      if block = 1 && batch = 1 then begin
        let tmp = S.create rm in
        if c2r then Algo_plain.c2r p buf ~tmp else Algo_plain.r2c p buf ~tmp
      end
      else if block = 1 then begin
        let tmp = Sl.create rm in
        let mn = rows * cols in
        for b = 0 to batch - 1 do
          let slice = Sl.of_buffer buf ~off:(b * mn) ~len:mn in
          if c2r then Algo_slice.c2r p slice ~tmp
          else Algo_slice.r2c p slice ~tmp
        done
      end
      else if batch = 1 then begin
        let view = Bl.of_buffer buf ~block in
        let tmp = Bl.of_buffer (S.create (rm * block)) ~block in
        if c2r then Algo_block.c2r p view ~tmp else Algo_block.r2c p view ~tmp
      end
      else begin
        let tmp = Blsl.of_buffer (Sl.create (rm * block)) ~block in
        let len = rows * cols * block in
        for b = 0 to batch - 1 do
          let view = Blsl.of_buffer (Sl.of_buffer buf ~off:(b * len) ~len) ~block in
          if c2r then Algo_block_slice.c2r p view ~tmp
          else Algo_block_slice.r2c p view ~tmp
        done
      end
    end

  module Exec = P.Exec.Make (struct
    type nonrec buf = buf

    let length = S.length
    let transpose = transpose
  end)

  let execute (plan : P.Permute.plan) buf =
    if S.length buf <> P.Shape.nelems plan.P.Permute.dims then
      invalid_arg "Tensor_nd.execute: buffer size";
    Exec.run_passes (P.Permute.passes plan) buf

  let permute ~dims ~perm buf =
    P.Shape.validate ~dims ~perm;
    if S.length buf <> P.Shape.nelems dims then
      invalid_arg "Tensor_nd.permute: buffer size";
    execute (plan ~dims ~perm) buf

  let permuted_dims = P.Shape.permuted_dims
  let permuted_index = P.Shape.permuted_index
end
