(** A transposition plan: the quantities shared by every permutation pass of
    the decomposed C2R/R2C transposition of an [m x n] matrix (paper §3-4).

    A plan precomputes [c = gcd(m,n)], [a = m/c], [b = n/c], the modular
    inverses [a^-1 mod b] and [b^-1 mod a], and fixed-point reciprocals for
    all divisors appearing in the index equations, so the per-element index
    computations in the hot loops are division-free (§4.4).

    All index functions follow the paper's equation numbers. Rotation
    "gather" semantics: a column rotated by [k] satisfies
    [x'[i] = x[(i + k) mod m]]. *)

type t = private {
  m : int;  (** rows *)
  n : int;  (** columns *)
  c : int;  (** gcd (m, n) *)
  a : int;  (** m / c *)
  b : int;  (** n / c *)
  a_inv : int;  (** modular inverse of [a] mod [b] ([1] if [b = 1]) *)
  b_inv : int;  (** modular inverse of [b] mod [a] ([1] if [a = 1]) *)
  mg_m : Magic.t;
  mg_n : Magic.t;
  mg_a : Magic.t;
  mg_b : Magic.t;
  mg_c : Magic.t;
}

val make : m:int -> n:int -> t
(** [make ~m ~n] precomputes a plan for an [m x n] matrix.
    @raise Invalid_argument if [m < 1] or [n < 1]. *)

val coprime : t -> bool
(** [coprime t] is [t.c = 1]: the pre-rotation phase can be skipped and the
    row-shuffle target [d'] degenerates to [d] (paper §3, after Lemma 1). *)

val scratch_elements : t -> int
(** [max m n]: the auxiliary space of Theorem 6 needed per worker. *)

(** {1 C2R index equations}

    All functions are total over [i] in [[0, m)] and [j] in [[0, n)]. *)

val rotate_amount : t -> int -> int
(** Pre-rotation amount for column [j]: [j / b] (Eq. 23: the rotated column
    gathers with [r_j(i) = (i + j/b) mod m]). *)

val r : t -> j:int -> int -> int
(** [r t ~j i] is Eq. 23, [(i + j/b) mod m]. *)

val d' : t -> i:int -> int -> int
(** [d' t ~i j] is Eq. 24: the destination column of element [j] of row [i]
    after the pre-rotation, [((i + j/b) mod m + j*m) mod n]. Bijective in
    [j] for fixed [i] (Theorem 3). *)

val d'_inv : t -> i:int -> int -> int
(** [d'_inv t ~i j] is Eq. 31, the inverse of {!d'} in its second argument:
    [d' t ~i (d'_inv t ~i j) = j]. Enables a fully gather-based row
    shuffle (§4.2). *)

val s' : t -> j:int -> int -> int
(** [s' t ~j i] is Eq. 26, the source row for the final column shuffle:
    [(j + i*n - i/a) mod m]. *)

val p : t -> j:int -> int -> int
(** [p t ~j i] is Eq. 32, the column-rotation component of [s']:
    [(i + j) mod m]. *)

val q : t -> int -> int
(** [q t i] is Eq. 33, the row-permutation component of [s']:
    [(i*n - i/a) mod m]. The decomposition satisfies
    [p t ~j (q t i) = s' t ~j i] (§4.2). *)

(** {1 R2C (inverse) index equations} *)

val q_inv : t -> int -> int
(** [q_inv t i] is Eq. 34, the inverse of {!q}:
    [((c-1+i)/c * b^-1) mod a + ((c-1)*i mod c) * a]. *)

val p_inv : t -> j:int -> int -> int
(** [p_inv t ~j i] is Eq. 35, [(i - j) mod m]. *)

val r_inv : t -> j:int -> int -> int
(** [r_inv t ~j i] is Eq. 36, [(i - j/b) mod m]. *)

val s'_inv : t -> j:int -> int -> int
(** [s'_inv t ~j i] is [(q_inv t ((i - j) mod m))]: the inverse of {!s'},
    i.e. [q^-1 ∘ p_j^-1] (composition order per §4.3). *)

(** {1 Specification helpers} *)

val check_internal : t -> unit
(** Verifies the algebraic identities the plan relies on ([a*c = m],
    [b*c = n], [a*a_inv ≡ 1 (mod b)], [b*b_inv ≡ 1 (mod a)]); used by
    tests and by [make] under assertions. @raise Assert_failure *)

val pp : Format.formatter -> t -> unit

(** {1 Plan cache}

    [make] pays a gcd, two extended-gcd modular inverses and five Magic
    reciprocal constructions. A serving workload transposing the same
    handful of shapes over and over should pay that once per shape: the
    cache memoizes plans keyed by [(m, n)] with LRU eviction. Lookups are
    thread-safe (pool workers may share a cache); hit/miss/eviction
    totals are also published as the [plan_cache.hits] /
    [plan_cache.misses] / [plan_cache.evictions] metrics counters. *)

module Cache : sig
  type plan = t
  type t

  val create : ?capacity:int -> unit -> t
  (** An empty cache holding at most [capacity] (default 64) plans.
      @raise Invalid_argument if [capacity < 1]. *)

  val default : t
  (** The process-global cache used when no explicit one is given. *)

  val get :
    ?cache:t -> ?params:Tune_params.t -> m:int -> n:int -> unit -> plan
  (** [get ~m ~n ()] is [make ~m ~n], memoized: a hit returns the cached
      plan (physically equal to the one built on the miss), a miss
      builds, stores, and (at capacity) evicts the least recently used
      entry. Entries are keyed by shape {e and} tuned parameters
      ([params], default {!Tune_params.default}) and carry the
      parameters they were resolved with, so callers tuning the same
      shape differently never alias to one entry.
      @raise Invalid_argument as {!val:make}. *)

  val cached_params :
    ?cache:t -> m:int -> n:int -> unit -> Tune_params.t list
  (** Every parameter variant currently cached for the shape, most
      recently used first; [[]] when the shape is not cached. *)

  val length : t -> int
  val hits : t -> int
  val misses : t -> int

  val evictions : t -> int
  (** Number of LRU evictions performed at capacity; also published as
      the [plan_cache.evictions] metrics counter. *)

  val clear : t -> unit
end
