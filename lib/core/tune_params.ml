type engine = Kernels | Cache | Fused | Ooc

type batch_split = Auto | Matrix_parallel | Panel_parallel | Hybrid of int

type kernel_tier = Scalar | Mk8 | Mk16

type t = {
  engine : engine;
  panel_width : int;
  batch_split : batch_split;
  window_bytes : int option;
  kernel_tier : kernel_tier;
}

let supported_widths = [ 8; 16; 32; 64 ]
let default_panel_width = 16
let supported_tiers = [ Scalar; Mk8; Mk16 ]

let tier_block = function Scalar -> 1 | Mk8 -> 8 | Mk16 -> 16

let default =
  {
    engine = Fused;
    panel_width = default_panel_width;
    batch_split = Auto;
    window_bytes = None;
    kernel_tier = Scalar;
  }

let engine_to_string = function
  | Kernels -> "kernels"
  | Cache -> "cache"
  | Fused -> "fused"
  | Ooc -> "ooc"

let engine_of_string = function
  | "kernels" -> Some Kernels
  | "cache" -> Some Cache
  | "fused" -> Some Fused
  | "ooc" -> Some Ooc
  | _ -> None

let split_to_string = function
  | Auto -> "auto"
  | Matrix_parallel -> "matrix"
  | Panel_parallel -> "panel"
  | Hybrid t -> Printf.sprintf "hybrid:%d" t

let tier_to_string = function Scalar -> "scalar" | Mk8 -> "mk8" | Mk16 -> "mk16"

let tier_of_string = function
  | "scalar" -> Some Scalar
  | "mk8" -> Some Mk8
  | "mk16" -> Some Mk16
  | _ -> None

let split_of_string s =
  match s with
  | "auto" -> Some Auto
  | "matrix" -> Some Matrix_parallel
  | "panel" -> Some Panel_parallel
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "hybrid" -> (
          match
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          with
          | Some t when t >= 0 -> Some (Hybrid t)
          | _ -> None)
      | _ -> None)

let to_string t =
  let base =
    Printf.sprintf "%s/w%d/%s" (engine_to_string t.engine) t.panel_width
      (split_to_string t.batch_split)
  in
  let base =
    match t.window_bytes with
    | None -> base
    | Some b -> Printf.sprintf "%s/win%d" base b
  in
  match t.kernel_tier with
  | Scalar -> base
  | tier -> Printf.sprintf "%s/%s" base (tier_to_string tier)

let equal (a : t) (b : t) = a = b

let validate t =
  if t.panel_width < 1 then
    invalid_arg "Tune_params: panel_width must be >= 1";
  (match t.window_bytes with
  | Some b when b < 1 -> invalid_arg "Tune_params: window_bytes must be >= 1"
  | _ -> ());
  (match t.kernel_tier with
  | Scalar -> ()
  | tier ->
      if tier_block tier > t.panel_width then
        invalid_arg
          "Tune_params: kernel_tier block must not exceed panel_width");
  t
