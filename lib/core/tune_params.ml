type engine = Kernels | Cache | Fused | Ooc

type batch_split = Auto | Matrix_parallel | Panel_parallel | Hybrid of int

type t = {
  engine : engine;
  panel_width : int;
  batch_split : batch_split;
  window_bytes : int option;
}

let supported_widths = [ 8; 16; 32; 64 ]
let default_panel_width = 16

let default =
  {
    engine = Fused;
    panel_width = default_panel_width;
    batch_split = Auto;
    window_bytes = None;
  }

let engine_to_string = function
  | Kernels -> "kernels"
  | Cache -> "cache"
  | Fused -> "fused"
  | Ooc -> "ooc"

let engine_of_string = function
  | "kernels" -> Some Kernels
  | "cache" -> Some Cache
  | "fused" -> Some Fused
  | "ooc" -> Some Ooc
  | _ -> None

let split_to_string = function
  | Auto -> "auto"
  | Matrix_parallel -> "matrix"
  | Panel_parallel -> "panel"
  | Hybrid t -> Printf.sprintf "hybrid:%d" t

let split_of_string s =
  match s with
  | "auto" -> Some Auto
  | "matrix" -> Some Matrix_parallel
  | "panel" -> Some Panel_parallel
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "hybrid" -> (
          match
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          with
          | Some t when t >= 0 -> Some (Hybrid t)
          | _ -> None)
      | _ -> None)

let to_string t =
  let base =
    Printf.sprintf "%s/w%d/%s" (engine_to_string t.engine) t.panel_width
      (split_to_string t.batch_split)
  in
  match t.window_bytes with
  | None -> base
  | Some b -> Printf.sprintf "%s/win%d" base b

let equal (a : t) (b : t) = a = b

let validate t =
  if t.panel_width < 1 then
    invalid_arg "Tune_params: panel_width must be >= 1";
  (match t.window_bytes with
  | Some b when b < 1 -> invalid_arg "Tune_params: window_bytes must be >= 1"
  | _ -> ());
  t
