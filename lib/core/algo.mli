(** The decomposed in-place transposition algorithm (paper §3, Algorithm 1),
    element-generic over a {!Storage.S} instance.

    All entry points operate on a flat buffer of exactly [m * n] elements
    and an auxiliary scratch buffer of at least [max m n] elements
    (Theorem 6). They perform O(mn) work; no cycle following is involved
    except in the optional cache-aware passes of [Xpose_cpu]. *)

(** Which formulation of the C2R permutation passes to run (§4). *)
type c2r_variant =
  | C2r_scatter
      (** Algorithm 1 verbatim: gather pre-rotation (Eq. 23), scatter row
          shuffle (Eq. 24), fused gather column shuffle (Eq. 26). *)
  | C2r_gather
      (** Fully gather-based (§5.1): row shuffle gathers with the inverse
          Eq. 31 instead of scattering. *)
  | C2r_decomposed
      (** Gather-based with the column shuffle decomposed into a column
          rotation (Eq. 32) followed by a row permutation (Eq. 33), the
          restricted primitives of §4.1 that the cache-aware and SIMD
          implementations build on. *)

type r2c_variant =
  | R2c_fused  (** Inverse passes with the column shuffle fused (Eq. 26⁻¹). *)
  | R2c_decomposed
      (** Row permutation (Eq. 34), column rotation (Eq. 35), gather row
          shuffle (Eq. 24), post-rotation (Eq. 36) — §4.3. *)

module Make (S : Storage.S) : sig
  type buf = S.t

  (** {1 Individual permutation passes}

      These are the building blocks; each processes an index range so
      callers (e.g. the parallel CPU implementation) can partition work.
      Ranges are half-open. Each worker needs its own [tmp]. *)

  module Phases : sig
    val rotate_columns :
      Plan.t -> buf -> tmp:buf -> amount:(int -> int) -> lo:int -> hi:int -> unit
    (** [rotate_columns p buf ~tmp ~amount ~lo ~hi] rotates each column
        [j] in [[lo, hi)] by [amount j]: afterwards
        [col_j[i] = old_col_j[(i + amount j) mod m]]. [amount] may return
        any integer (reduced Euclidean-mod [m]). *)

    val row_shuffle_scatter : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit
    (** Scatter each row [i] in [[lo, hi)] by Eq. 24: [tmp[d'_i(j)] = row[j]]. *)

    val row_shuffle_gather : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit
    (** Gather each row [i] by the inverse Eq. 31: [tmp[j] = row[d'⁻¹_i(j)]].
        Equivalent to {!row_shuffle_scatter}. *)

    val row_shuffle_ungather : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit
    (** Gather each row [i] by Eq. 24 itself: [tmp[j] = row[d'_i(j)]] — the
        inverse permutation of the two functions above, used by R2C. *)

    val col_shuffle_gather : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit
    (** Gather each column [j] in [[lo, hi)] by Eq. 26:
        [tmp[i] = col[s'_j(i)]]. *)

    val col_shuffle_ungather : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit
    (** Gather each column [j] by the inverse of Eq. 26
        ([q⁻¹ ∘ p_j⁻¹], §4.3). *)

    val permute_rows : Plan.t -> buf -> tmp:buf -> index:(int -> int) -> lo:int -> hi:int -> unit
    (** [permute_rows p buf ~tmp ~index ~lo ~hi] applies the same row
        permutation to every column [j] in [[lo, hi)]:
        [col_j[i] = old_col_j[index i]] (§4.1 "row permutation"). [index]
        is evaluated once per row, not per element. *)
  end

  (** {1 Whole transpositions} *)

  val c2r : ?variant:c2r_variant -> Plan.t -> buf -> tmp:buf -> unit
  (** [c2r p buf ~tmp] performs the C2R transposition in place: if [buf]
      held an [m x n] row-major matrix, it afterwards holds its [n x m]
      row-major transpose (Theorem 1). Default variant: {!C2r_gather}.
      @raise Invalid_argument if [length buf <> m*n] or
             [length tmp < max m n]. *)

  val r2c : ?variant:r2c_variant -> Plan.t -> buf -> tmp:buf -> unit
  (** [r2c p buf ~tmp] is the exact inverse of [c2r p]: if [buf] held an
      [n x m] row-major matrix (note the swap), it afterwards holds its
      [m x n] row-major transpose. Default variant: {!R2c_fused}. *)

  val transpose : ?order:Layout.order -> m:int -> n:int -> buf -> unit
  (** [transpose ~m ~n buf] transposes the [m x n] matrix stored in [buf]
      (default [Row_major]) in place, allocating the [max m n] scratch
      internally and choosing C2R or R2C by the paper's heuristic (§5.2:
      [m > n] → C2R). Afterwards [buf] holds the [n x m] transpose in the
      same storage order. *)

  val transpose_with :
    algorithm:[ `C2r | `R2c ] ->
    ?order:Layout.order ->
    m:int ->
    n:int ->
    buf ->
    tmp:buf ->
    unit
  (** Like {!transpose} but with an explicit algorithm choice and caller-
      provided scratch (Theorems 1 and 2 guarantee both choices are
      correct for either storage order). *)

  (** {1 Reference and validation} *)

  val transpose_oop : ?order:Layout.order -> m:int -> n:int -> buf -> buf -> unit
  (** [transpose_oop ~m ~n src dst] writes the transpose of [src] into
      [dst] out of place (the specification all in-place algorithms are
      tested against). *)

  val is_transpose_of :
    ?order:Layout.order -> m:int -> n:int -> original:buf -> buf -> bool
  (** [is_transpose_of ~m ~n ~original buf] checks element-wise that [buf]
      is the [n x m] transpose of the [m x n] matrix [original]. *)

  val copy : buf -> buf
  (** Allocate-and-blit convenience. *)
end

val c2r_access : c2r_variant -> Access.summary list
(** The symbolic access summaries of the C2R pass pipeline for a
    variant, in pass order -- the proof obligations
    [Xpose_check.Bounds] certifies for every [Make] instantiation and
    for {!Kernels_f64} (which runs the same phase bodies). *)

val r2c_access : r2c_variant -> Access.summary list
(** R2C counterpart of {!c2r_access}. *)
