(** Symbolic per-pass access summaries.

    Every engine pass declares its reads and writes as affine/interval
    index expressions over the plan quantities ([a], [b], [c], [a_inv],
    [b_inv], with [m = a*c] and [n = b*c]) plus pass parameters (panel
    width, sub-range, window geometry). {!Xpose_check.Bounds} turns a
    summary into shape-universal polynomial proof obligations;
    [concretize] evaluates it on a concrete environment so tests can
    diff the symbolic model against the traces of the checked-access
    shadow engines.

    [Div] is floor division ({!Intmath.ediv}) and [Mod] is the Euclidean
    remainder ({!Intmath.emod}) -- exactly the operations {!Plan}
    computes with. *)

type exp =
  | Const of int
  | Var of string
  | Add of exp * exp
  | Sub of exp * exp
  | Mul of exp * exp
  | Div of exp * exp  (** floor division, {!Intmath.ediv} *)
  | Mod of exp * exp  (** Euclidean remainder, {!Intmath.emod} *)
  | Min of exp * exp
  | Max of exp * exp
  | Ite of cond * exp * exp

and cond = Le of exp * exp | Eq of exp * exp | And of cond * cond

type kind = Read | Write

type node =
  | Acc of { region : string; kind : kind; index : exp }
  | For of { var : string; lo : exp; hi : exp; body : node list }
      (** [var] ranges over [[lo, hi)]; empty when [hi <= lo]. *)
  | Bind of { var : string; def : exp; body : node list }
  | When of cond * node list

type param = {
  name : string;
  p_lo : exp;  (** inclusive lower bound *)
  p_his : exp list;  (** inclusive upper bounds (conjunction); [] = free *)
  sample : int list;  (** candidate values for counterexample search *)
}

type basis =
  | Plan_basis
      (** roots [a, b, c >= 1], [a_inv, b_inv >= 0]; [m = a*c], [n = b*c] *)
  | Free_basis  (** roots [m, n >= 1] *)

type region = { rname : string; size : exp }

type summary = {
  pass : string;
  basis : basis;
  params : param list;  (** in dependency order; later may reference earlier *)
  regions : region list;
  body : node list;
  exact : bool;
      (** [true]: concretization equals the pass's access set;
          [false]: concretization is a proven superset. *)
}

(** {1 Evaluation} *)

type env = (string * int) list

val eval : env -> exp -> int
val eval_cond : env -> cond -> bool

val subst : string -> exp -> exp -> exp
(** [subst v r e] replaces every free [Var v] in [e] by [r]. Binders are
    not renamed: summary authors use globally distinct binder names. *)

val subst_cond : string -> exp -> cond -> cond
val to_string : exp -> string
val cond_to_string : cond -> string

type event = { e_region : string; e_kind : kind; e_index : int }

exception Too_many_accesses

val concretize : ?cap:int -> env:env -> summary -> event list
(** The deduplicated, sorted access set of a summary under [env], which
    must bind the basis variables and every parameter. Raises
    {!Too_many_accesses} past [cap] (default 2e6) raw accesses. *)

val env_of_plan : Plan.t -> env
(** [m], [n], [a], [b], [c], [a_inv], [b_inv] of a concrete plan. *)

val basis_env : basis -> env
(** The smallest legal environment of a basis (all roots at their lower
    bounds) -- a convenient starting point for search. *)

val pin : summary -> string -> int -> summary
(** [pin s name v] fixes parameter [name] to exactly [v] (bounds and
    sample collapse to [v]). Raises [Invalid_argument] on an unknown
    parameter. *)

(** {1 Authoring helpers} *)

val num : int -> exp
val var : string -> exp
val ( +: ) : exp -> exp -> exp
val ( -: ) : exp -> exp -> exp
val ( *: ) : exp -> exp -> exp
val ( /: ) : exp -> exp -> exp
val ( %: ) : exp -> exp -> exp
val le : exp -> exp -> cond
val lt : exp -> exp -> cond
val read : string -> exp -> node
val write : string -> exp -> node
val for_ : string -> exp -> exp -> node list -> node
val bind : string -> exp -> node list -> node

(** {1 The plan index equations as expressions}

    Operation-for-operation transcriptions of {!Plan}'s division-free
    index maps, in the plan basis. *)

module Ix : sig
  val m : exp
  val n : exp
  val a : exp
  val b : exp
  val c : exp
  val a_inv : exp
  val b_inv : exp
  val rotate_amount : exp -> exp
  val d' : i:exp -> exp -> exp
  val d'_inv : i:exp -> exp -> exp
  val s' : j:exp -> exp -> exp
  val s'_inv : j:exp -> exp -> exp
  val q : exp -> exp
  val q_inv : exp -> exp
end

(** {1 Summaries of the row/column kernel phases}

    One summary per {!Kernels_f64.Phases} (= [Algo.Make] phase), each
    quantified over its [lo]/[hi] sub-range so a single certificate
    covers every pool chunking and batch lane. *)

module Passes : sig
  val matrix : region
  val scratch : exp -> region
  val range_params : exp -> param list

  val rotate : ?pass:string -> ?tmp_size:exp -> (exp -> exp) -> summary
  (** [rotate amount] is [Kernels_f64.Phases.rotate_columns] with the
      given per-column amount map. *)

  val rotate_any : ?pass:string -> ?tmp_size:exp -> unit -> summary
  (** Rotation by an arbitrary per-column amount: the residue is
      universally quantified. Superset of [rotate f] for every [f]. *)

  val seeded_oob_rotate : (exp -> exp) -> summary
  (** The [--seed-oob-static] negative: one copy loop runs a row too
      far, reaching index [m*n + j]. Must fail the bounds proof. *)

  val row_shuffle : ?pass:string -> (i:exp -> exp -> exp) -> summary
  val row_shuffle_gather : summary
  val row_shuffle_ungather : summary
  val row_shuffle_scatter : summary
  val col_gather : ?pass:string -> (j:exp -> exp -> exp) -> summary
  val col_shuffle_gather : summary
  val col_shuffle_ungather : summary
  val permute_rows : ?pass:string -> (exp -> exp) -> summary

  type c2r_pipeline = Gather | Scatter | Decomposed
  type r2c_pipeline = Fused_inverse | Decomposed_inverse

  val rotate_pre : summary
  val rotate_post : summary
  val col_rotate : summary
  val col_unrotate : summary
  val row_permute_q : summary
  val row_permute_q_inv : summary

  val c2r : c2r_pipeline -> summary list
  val r2c : r2c_pipeline -> summary list

  val all_pipeline_passes : summary list
  (** Every distinct pass summary appearing in some pipeline. *)
end
