(** Executable statements of the paper's lemmas and theorems.

    Each function checks one claim, by exhaustion over the finite domain
    it quantifies, and returns [true] exactly when the claim holds for
    the given plan. The test suite runs them across many dimension pairs;
    they are also useful as a machine-checkable record of what §2-3 of
    the paper actually asserts. All take a {!Plan.t} (which fixes
    [m, n, c = gcd(m,n), a = m/c, b = n/c]). *)

val lemma1_periodicity : Plan.t -> bool
(** Lemma 1: for every row [i], the destination column
    [d_i(j) = (i + j*m) mod n] is periodic in [j] with period [b]. *)

val lemma2_injectivity : Plan.t -> bool
(** Lemma 2: [x -> m*x mod n] is injective on [[0, b)]. *)

val lemma3_image : Plan.t -> bool
(** Lemma 3: [{ h*m mod n : h in [0, b) } = { h*c : h in [0, b) }]. *)

val theorem1_c2r_transposes : Plan.t -> bool
(** Theorem 1: the row-major linearization of the C2R gather
    (Eqs. 7-8 through Eq. 20) equals the row-major linearization of the
    transpose. *)

val theorem2_swapped_dims : Plan.t -> bool
(** Theorem 2: with [m] and [n] swapped, the R2C permutation transposes a
    row-major array (checked via the inverse relationship against
    Theorem 1's permutation). *)

val theorem3_bijectivity : Plan.t -> bool
(** Theorem 3: [d'_i] (Eq. 24) is a bijection on [[0, n)] for every
    fixed [i]. *)

val theorem3_si_l_sets : Plan.t -> bool
(** The set identity inside Theorem 3's proof: for every [i] and [l],
    [S_{i,l} = { d'_i(j) : j in [l*b, (l+1)*b) }] equals
    [{ (i + l) mod c + h*c : h in [0, b) }]. *)

val theorem4_decomposable : Plan.t -> bool
(** Theorem 4: after the pre-rotation, the row-wise destinations are
    unique per row and the subsequent column-wise destinations are unique
    per column — i.e. both steps are well-formed permutations. Checked by
    simulating the full decomposition on an index matrix and comparing
    with the monolithic transposition permutation. *)

val theorem5_source_rows : Plan.t -> bool
(** Theorem 5: [s'_j] (Eq. 26) gives the correct source rows: the proof's
    bound [c_j(i) in [k*b, (k+1)*b)] with [k = i/a] holds for all [i, j],
    and the three-step algorithm using [s'_j] completes the transpose. *)

val theorem6_work_and_space : Plan.t -> int * int
(** Theorem 6 (quantified): [(touches, scratch)] — the number of element
    reads+writes the three-phase algorithm performs (at most [6 m n]) and
    the scratch elements it needs ([max m n]). *)

val theorem7_linearization_free : Plan.t -> bool
(** Theorem 7: performing the C2R permutation with column-major indexing
    on a row-major array induces the same final permutation (checked on
    index arrays). *)

val rotation_cycle_structure : m:int -> r:int -> bool
(** §4.6: rotating a vector of [m] elements by [r] has [gcd(m, r)]
    cycles, each of length [m / gcd(m, r)], with the analytic members
    [l_y(x) = (y + x*(m - r)) mod m]. *)

val q_cycle_bound : Plan.t -> bool
(** §4.7: the row permutation [q] has at most [m/2] cycles of length
    greater than one. *)

val check_all : Plan.t -> (string * bool) list
(** Every named claim above (except the parametric
    {!rotation_cycle_structure}), labelled. *)
