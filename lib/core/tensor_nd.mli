(** In-place axis permutation of arbitrary-rank row-major tensors.

    The serial execution layer of the [Xpose_permute] planner: the
    planner (pure index arithmetic, [lib/permute/]) normalizes the
    permutation and factors it into batched/blocked/flat 2-D transpose
    passes priced by a cost model; this functor supplies the single
    primitive those passes need — an in-place transpose of a
    [batch x rows x cols x block] middle pair — by composing
    {!Views.Slice} and {!Views.Blocked} over any {!Storage.S} instance
    and running the paper's C2R/R2C kernels on the result.

    Auxiliary space is [O(block * max(rows, cols))] per pass — the
    Theorem 6 bound applied to block elements — still asymptotically
    below the full copy an out-of-place permutation needs.

    {!Tensor3} delegates its six rank-3 permutations here (keeping its
    original hand-written factorization as [permute_direct], a
    cross-check oracle for the test suite). The pool-parallel
    counterpart is [Xpose_cpu.Par_permute]. *)

val plan_arith : Xpose_permute.Cost.arith
(** The planner cost arithmetic fed by {!Plan}: element touches from
    Theorem 6 via [Plan.coprime]/[Plan.b] (asserted equal to
    {!Theory.theorem6_work_and_space} in the test suite) and scratch
    from {!Plan.scratch_elements}. *)

val plan : dims:int array -> perm:int array -> Xpose_permute.Permute.plan
(** The cheapest plan under {!plan_arith}.
    @raise Invalid_argument on an invalid shape/permutation pair. *)

val candidates :
  dims:int array -> perm:int array -> Xpose_permute.Permute.plan list
(** All minimal-pass candidates under {!plan_arith}, cheapest first. *)

module Make (S : Storage.S) : sig
  type buf = S.t

  val transpose : batch:int -> rows:int -> cols:int -> block:int -> buf -> unit
  (** The pass primitive: [buf], viewed as [batch x rows x cols x block]
      row-major, has its middle axes swapped in place.
      @raise Invalid_argument on non-positive sizes or a length
      mismatch. *)

  val execute : Xpose_permute.Permute.plan -> buf -> unit
  (** Run a prebuilt plan.
      @raise Invalid_argument if the buffer length does not match the
      plan's dimensions. *)

  val permute : dims:int array -> perm:int array -> buf -> unit
  (** Plan and execute: afterwards the buffer holds the tensor with
      dimensions [permuted_dims ~dims ~perm] whose element at the
      permuted multi-index equals the source element (specification:
      {!permuted_index}). Rank [>= 1] and any axis permutation.
      @raise Invalid_argument on invalid shape/perm or buffer length. *)

  val permuted_dims : dims:int array -> perm:int array -> int array
  val permuted_index : dims:int array -> perm:int array -> int array -> int
  (** Re-exports of the [Xpose_permute.Shape] oracle. *)
end
