(* In-register blocked micro-kernels for float64 tile movement.

   Every mover is a fully unrolled straight-line sequence of
   [Bigarray.Array1.unsafe_get]/[unsafe_set] with strength-reduced
   index increments: no per-element bounds test, no branch, no loop
   counter in the hot path, so flambda compiles each into a flat run
   of loads and stores the CPU can issue back to back.  Callers are
   responsible for proving the footprints in bounds — the fused
   engine's tiles are certified by the parametric Bounds/Alias
   provers, and {!Checked} is the shadow twin that verifies every
   access at runtime. *)

type buf = Storage.Float64.t

let block8 = 8
let block16 = 16

module A1 = Bigarray.Array1

(* Move 8 elements from a stride-[sstride] column of [src] into a
   stride-[dstride] column of [dst]. The explicit [buf] annotations
   matter: without them the movers infer a polymorphic bigarray type
   and every access goes through the generic-kind path instead of a
   direct float64 load/store. *)
let[@inline] col8 ~(src : buf) ~soff ~sstride ~(dst : buf) ~doff ~dstride =
  let s = soff and d = doff in
  A1.unsafe_set dst d (A1.unsafe_get src s);
  let s = s + sstride and d = d + dstride in
  A1.unsafe_set dst d (A1.unsafe_get src s);
  let s = s + sstride and d = d + dstride in
  A1.unsafe_set dst d (A1.unsafe_get src s);
  let s = s + sstride and d = d + dstride in
  A1.unsafe_set dst d (A1.unsafe_get src s);
  let s = s + sstride and d = d + dstride in
  A1.unsafe_set dst d (A1.unsafe_get src s);
  let s = s + sstride and d = d + dstride in
  A1.unsafe_set dst d (A1.unsafe_get src s);
  let s = s + sstride and d = d + dstride in
  A1.unsafe_set dst d (A1.unsafe_get src s);
  let s = s + sstride and d = d + dstride in
  A1.unsafe_set dst d (A1.unsafe_get src s)

let[@inline] col16 ~src ~soff ~sstride ~dst ~doff ~dstride =
  col8 ~src ~soff ~sstride ~dst ~doff ~dstride;
  col8 ~src
    ~soff:(soff + (8 * sstride))
    ~sstride ~dst
    ~doff:(doff + (8 * dstride))
    ~dstride

(* Unit-stride 8- and 16-element row copies. *)
let[@inline] row8 ~(src : buf) ~soff ~(dst : buf) ~doff =
  A1.unsafe_set dst doff (A1.unsafe_get src soff);
  A1.unsafe_set dst (doff + 1) (A1.unsafe_get src (soff + 1));
  A1.unsafe_set dst (doff + 2) (A1.unsafe_get src (soff + 2));
  A1.unsafe_set dst (doff + 3) (A1.unsafe_get src (soff + 3));
  A1.unsafe_set dst (doff + 4) (A1.unsafe_get src (soff + 4));
  A1.unsafe_set dst (doff + 5) (A1.unsafe_get src (soff + 5));
  A1.unsafe_set dst (doff + 6) (A1.unsafe_get src (soff + 6));
  A1.unsafe_set dst (doff + 7) (A1.unsafe_get src (soff + 7))

let[@inline] row16 ~src ~soff ~dst ~doff =
  row8 ~src ~soff ~dst ~doff;
  row8 ~src ~soff:(soff + 8) ~dst ~doff:(doff + 8)

(* Chunked unit-stride copy: 16- then 8-wide unrolled chunks, scalar
   tail.  The regions must not overlap. *)
let copy_span ~src ~soff ~dst ~doff ~len =
  let i = ref 0 in
  while !i + 16 <= len do
    row16 ~src ~soff:(soff + !i) ~dst ~doff:(doff + !i);
    i := !i + 16
  done;
  if !i + 8 <= len then (
    row8 ~src ~soff:(soff + !i) ~dst ~doff:(doff + !i);
    i := !i + 8);
  for k = !i to len - 1 do
    A1.unsafe_set dst (doff + k) (A1.unsafe_get src (soff + k))
  done

(* In-register tile transposes: column [j] of the source tile becomes
   row [j] of the destination tile, so each column mover's writes are
   unit-stride. *)
let transpose8 ~src ~soff ~sstride ~dst ~doff ~dstride =
  col8 ~src ~soff ~sstride ~dst ~doff ~dstride:1;
  col8 ~src ~soff:(soff + 1) ~sstride ~dst ~doff:(doff + dstride) ~dstride:1;
  col8 ~src ~soff:(soff + 2) ~sstride ~dst
    ~doff:(doff + (2 * dstride))
    ~dstride:1;
  col8 ~src ~soff:(soff + 3) ~sstride ~dst
    ~doff:(doff + (3 * dstride))
    ~dstride:1;
  col8 ~src ~soff:(soff + 4) ~sstride ~dst
    ~doff:(doff + (4 * dstride))
    ~dstride:1;
  col8 ~src ~soff:(soff + 5) ~sstride ~dst
    ~doff:(doff + (5 * dstride))
    ~dstride:1;
  col8 ~src ~soff:(soff + 6) ~sstride ~dst
    ~doff:(doff + (6 * dstride))
    ~dstride:1;
  col8 ~src ~soff:(soff + 7) ~sstride ~dst
    ~doff:(doff + (7 * dstride))
    ~dstride:1

let transpose16 ~src ~soff ~sstride ~dst ~doff ~dstride =
  let j = ref 0 in
  while !j < 16 do
    col16 ~src ~soff:(soff + !j) ~sstride ~dst
      ~doff:(doff + (!j * dstride))
      ~dstride:1;
    incr j
  done

module Checked = struct
  module S = Storage.Float64

  let who = "Microkernel.Checked"

  let get buf ~what i =
    Checked_access.bounds ~who ~what ~len:(S.length buf) i;
    S.get buf i

  let set buf ~what i v =
    Checked_access.bounds ~who ~what ~len:(S.length buf) i;
    S.set buf i v

  let col ~edge ~src ~soff ~sstride ~dst ~doff ~dstride =
    for t = 0 to edge - 1 do
      set dst ~what:"col write"
        (doff + (t * dstride))
        (get src ~what:"col read" (soff + (t * sstride)))
    done

  let col8 = col ~edge:8
  let col16 = col ~edge:16

  let row ~edge ~src ~soff ~dst ~doff =
    for k = 0 to edge - 1 do
      set dst ~what:"row write" (doff + k) (get src ~what:"row read" (soff + k))
    done

  let row8 = row ~edge:8
  let row16 = row ~edge:16

  let copy_span ~src ~soff ~dst ~doff ~len =
    for k = 0 to len - 1 do
      set dst ~what:"span write" (doff + k)
        (get src ~what:"span read" (soff + k))
    done

  let transpose ~edge ~src ~soff ~sstride ~dst ~doff ~dstride =
    for j = 0 to edge - 1 do
      col ~edge ~src ~soff:(soff + j) ~sstride ~dst
        ~doff:(doff + (j * dstride))
        ~dstride:1
    done

  let transpose8 = transpose ~edge:8
  let transpose16 = transpose ~edge:16
end
