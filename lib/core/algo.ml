type c2r_variant = C2r_scatter | C2r_gather | C2r_decomposed
type r2c_variant = R2c_fused | R2c_decomposed

module Make (S : Storage.S) = struct
  type buf = S.t

  let check_args (p : Plan.t) buf ~tmp =
    if S.length buf <> p.m * p.n then
      invalid_arg
        (Printf.sprintf "Algo: buffer has %d elements, plan needs %d x %d"
           (S.length buf) p.m p.n);
    if S.length tmp < Plan.scratch_elements p then
      invalid_arg
        (Printf.sprintf "Algo: scratch has %d elements, plan needs %d"
           (S.length tmp) (Plan.scratch_elements p))

  module Phases = struct
    (* All passes view [buf] as row-major m x n: element (i, j) lives at
       linear index j + i*n (Theorem 7 lets us fix this view regardless of
       the caller's storage order). *)

    let rotate_columns (p : Plan.t) buf ~tmp ~amount ~lo ~hi =
      let m = p.m and n = p.n in
      for j = lo to hi - 1 do
        let k = Intmath.emod (amount j) m in
        if k <> 0 then begin
          (* Split gather: rows [0, m-k) read from [k, m), the rest wrap. *)
          for i = 0 to m - k - 1 do
            S.set tmp i (S.get buf (((i + k) * n) + j))
          done;
          for i = m - k to m - 1 do
            S.set tmp i (S.get buf (((i + k - m) * n) + j))
          done;
          for i = 0 to m - 1 do
            S.set buf ((i * n) + j) (S.get tmp i)
          done
        end
      done

    let row_shuffle_scatter (p : Plan.t) buf ~tmp ~lo ~hi =
      let n = p.n in
      for i = lo to hi - 1 do
        let base = i * n in
        for j = 0 to n - 1 do
          S.set tmp (Plan.d' p ~i j) (S.get buf (base + j))
        done;
        S.blit tmp 0 buf base n
      done

    let row_shuffle_gather (p : Plan.t) buf ~tmp ~lo ~hi =
      let n = p.n in
      for i = lo to hi - 1 do
        let base = i * n in
        for j = 0 to n - 1 do
          S.set tmp j (S.get buf (base + Plan.d'_inv p ~i j))
        done;
        S.blit tmp 0 buf base n
      done

    let row_shuffle_ungather (p : Plan.t) buf ~tmp ~lo ~hi =
      let n = p.n in
      for i = lo to hi - 1 do
        let base = i * n in
        for j = 0 to n - 1 do
          S.set tmp j (S.get buf (base + Plan.d' p ~i j))
        done;
        S.blit tmp 0 buf base n
      done

    let col_shuffle_gather (p : Plan.t) buf ~tmp ~lo ~hi =
      let m = p.m and n = p.n in
      for j = lo to hi - 1 do
        for i = 0 to m - 1 do
          S.set tmp i (S.get buf ((Plan.s' p ~j i * n) + j))
        done;
        for i = 0 to m - 1 do
          S.set buf ((i * n) + j) (S.get tmp i)
        done
      done

    let col_shuffle_ungather (p : Plan.t) buf ~tmp ~lo ~hi =
      let m = p.m and n = p.n in
      for j = lo to hi - 1 do
        for i = 0 to m - 1 do
          S.set tmp i (S.get buf ((Plan.s'_inv p ~j i * n) + j))
        done;
        for i = 0 to m - 1 do
          S.set buf ((i * n) + j) (S.get tmp i)
        done
      done

    let permute_rows (p : Plan.t) buf ~tmp ~index ~lo ~hi =
      let m = p.m and n = p.n in
      (* The same permutation applies to every column; precompute it so the
         index function runs once per row rather than once per element. *)
      let idx = Array.init m index in
      for j = lo to hi - 1 do
        for i = 0 to m - 1 do
          S.set tmp i (S.get buf ((Array.unsafe_get idx i * n) + j))
        done;
        for i = 0 to m - 1 do
          S.set buf ((i * n) + j) (S.get tmp i)
        done
      done
  end

  (* One observability span per permutation pass: the shape, the exact
     Theorem-6 element-touch count of the pass (Pass_cost), and the
     scratch it needs. Zero-cost when the tracer is off beyond one flag
     read per pass — never per element. *)
  let obs_pass (p : Plan.t) name ~pred f =
    Xpose_obs.Tracer.pass ~name ~rows:p.m ~cols:p.n ~pred_touches:pred
      ~scratch_elems:(Plan.scratch_elements p) f

  let c2r ?(variant = C2r_gather) (p : Plan.t) buf ~tmp =
    check_args p buf ~tmp;
    let m = p.m and n = p.n in
    if m = 1 || n = 1 then ()
    else begin
      if not (Plan.coprime p) then begin
        let amount = Plan.rotate_amount p in
        obs_pass p "rotate_pre" ~pred:(Pass_cost.rotate p ~amount) (fun () ->
            Phases.rotate_columns p buf ~tmp ~amount ~lo:0 ~hi:n)
      end;
      (match variant with
      | C2r_scatter ->
          obs_pass p "row_shuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
              Phases.row_shuffle_scatter p buf ~tmp ~lo:0 ~hi:m)
      | C2r_gather | C2r_decomposed ->
          obs_pass p "row_shuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
              Phases.row_shuffle_gather p buf ~tmp ~lo:0 ~hi:m));
      match variant with
      | C2r_scatter | C2r_gather ->
          obs_pass p "col_shuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
              Phases.col_shuffle_gather p buf ~tmp ~lo:0 ~hi:n)
      | C2r_decomposed ->
          let amount j = j in
          obs_pass p "col_rotate" ~pred:(Pass_cost.rotate p ~amount) (fun () ->
              Phases.rotate_columns p buf ~tmp ~amount ~lo:0 ~hi:n);
          obs_pass p "row_permute" ~pred:(Pass_cost.permute_rows p) (fun () ->
              Phases.permute_rows p buf ~tmp ~index:(Plan.q p) ~lo:0 ~hi:n)
    end

  let r2c ?(variant = R2c_fused) (p : Plan.t) buf ~tmp =
    check_args p buf ~tmp;
    let m = p.m and n = p.n in
    if m = 1 || n = 1 then ()
    else begin
      (match variant with
      | R2c_fused ->
          obs_pass p "col_unshuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
              Phases.col_shuffle_ungather p buf ~tmp ~lo:0 ~hi:n)
      | R2c_decomposed ->
          obs_pass p "row_unpermute" ~pred:(Pass_cost.permute_rows p)
            (fun () ->
              Phases.permute_rows p buf ~tmp ~index:(Plan.q_inv p) ~lo:0 ~hi:n);
          let amount j = -j in
          obs_pass p "col_unrotate" ~pred:(Pass_cost.rotate p ~amount)
            (fun () -> Phases.rotate_columns p buf ~tmp ~amount ~lo:0 ~hi:n));
      obs_pass p "row_unshuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
          Phases.row_shuffle_ungather p buf ~tmp ~lo:0 ~hi:m);
      if not (Plan.coprime p) then begin
        let amount j = -Plan.rotate_amount p j in
        obs_pass p "rotate_post" ~pred:(Pass_cost.rotate p ~amount) (fun () ->
            Phases.rotate_columns p buf ~tmp ~amount ~lo:0 ~hi:n)
      end
    end

  (* A row-major m x n matrix is transposed by C2R on plan (m, n) (Thm. 1)
     or by R2C on plan (n, m) (Thm. 2). A column-major m x n matrix shares
     its linearization with the row-major n x m problem. *)
  let normalize_dims ?(order = Layout.Row_major) ~m ~n () =
    match order with Layout.Row_major -> (m, n) | Layout.Col_major -> (n, m)

  let transpose_with ~algorithm ?order ~m ~n buf ~tmp =
    let m, n = normalize_dims ?order ~m ~n () in
    match algorithm with
    | `C2r -> c2r (Plan.make ~m ~n) buf ~tmp
    | `R2c -> r2c (Plan.make ~m:n ~n:m) buf ~tmp

  let transpose ?order ~m ~n buf =
    let rm, rn = normalize_dims ?order ~m ~n () in
    let tmp = S.create (max rm rn) in
    (* §5.2 heuristic: more rows than columns favours C2R. *)
    let algorithm = if rm > rn then `C2r else `R2c in
    transpose_with ~algorithm ~order:Layout.Row_major ~m:rm ~n:rn buf ~tmp

  let transpose_oop ?order ~m ~n src dst =
    let m, n = normalize_dims ?order ~m ~n () in
    if S.length src <> m * n || S.length dst <> m * n then
      invalid_arg "Algo.transpose_oop: buffer sizes";
    for l = 0 to (m * n) - 1 do
      S.set dst (Layout.transpose_index ~m ~n l) (S.get src l)
    done

  let is_transpose_of ?order ~m ~n ~original buf =
    let m, n = normalize_dims ?order ~m ~n () in
    S.length original = m * n
    && S.length buf = m * n
    &&
    let ok = ref true in
    (try
       for l = 0 to (m * n) - 1 do
         if
           not
             (S.equal
                (S.get buf (Layout.transpose_index ~m ~n l))
                (S.get original l))
         then begin
           ok := false;
           raise Exit
         end
       done
     with Exit -> ());
    !ok

  let copy buf =
    let dst = S.create (S.length buf) in
    S.blit buf 0 dst 0 (S.length buf);
    dst
end

(* -- access metadata -----------------------------------------------------
   The symbolic access summaries of the pipelines above, storage-
   independent by construction: Access.Passes mirrors the phase bodies
   of this functor (and of Kernels_f64, which shares them) expression
   for expression. *)

let c2r_access = function
  | C2r_gather -> Access.Passes.c2r Access.Passes.Gather
  | C2r_scatter -> Access.Passes.c2r Access.Passes.Scatter
  | C2r_decomposed -> Access.Passes.c2r Access.Passes.Decomposed

let r2c_access = function
  | R2c_fused -> Access.Passes.r2c Access.Passes.Fused_inverse
  | R2c_decomposed -> Access.Passes.r2c Access.Passes.Decomposed_inverse
