module Make (S : Storage.S) = struct
  type buf = S.t

  module Sl = Views.Slice (S)
  module Bl = Views.Blocked (S)
  module Algo_slice = Algo.Make (Sl)
  module Algo_block = Algo.Make (Bl)
  module Algo_plain = Algo.Make (S)
  module Nd = Tensor_nd.Make (S)

  let transpose_batched ~batch ~m ~n buf =
    if batch < 1 || m < 1 || n < 1 then
      invalid_arg "Tensor3.transpose_batched: dimensions must be positive";
    if S.length buf <> batch * m * n then
      invalid_arg "Tensor3.transpose_batched: buffer size";
    if m > 1 && n > 1 then begin
      let tmp = Sl.create (max m n) in
      let rm, rn, algorithm = if m > n then (m, n, `C2r) else (n, m, `R2c) in
      let p = Plan.make ~m:rm ~n:rn in
      for b = 0 to batch - 1 do
        let slice = Sl.of_buffer buf ~off:(b * m * n) ~len:(m * n) in
        match algorithm with
        | `C2r -> Algo_slice.c2r p slice ~tmp
        | `R2c -> Algo_slice.r2c p slice ~tmp
      done
    end

  let transpose_blocks ~m ~n ~block buf =
    if m < 1 || n < 1 || block < 1 then
      invalid_arg "Tensor3.transpose_blocks: dimensions must be positive";
    if S.length buf <> m * n * block then
      invalid_arg "Tensor3.transpose_blocks: buffer size";
    if m > 1 && n > 1 then begin
      let view = Bl.of_buffer buf ~block in
      let tmp = Bl.of_buffer (S.create (max m n * block)) ~block in
      if m > n then Algo_block.c2r (Plan.make ~m ~n) view ~tmp
      else Algo_block.r2c (Plan.make ~m:n ~n:m) view ~tmp
    end

  let check_perm (p0, p1, p2) =
    if List.sort compare [ p0; p1; p2 ] <> [ 0; 1; 2 ] then
      invalid_arg "Tensor3.permute: perm must be a permutation of (0,1,2)"

  let permuted_dims ~dims:(d0, d1, d2) ~perm:((p0, p1, p2) as perm) =
    check_perm perm;
    let d = [| d0; d1; d2 |] in
    (d.(p0), d.(p1), d.(p2))

  let permuted_index ~dims:(d0, d1, d2) ~perm:((p0, p1, p2) as perm) (i0, i1, i2) =
    check_perm perm;
    if i0 < 0 || i0 >= d0 || i1 < 0 || i1 >= d1 || i2 < 0 || i2 >= d2 then
      invalid_arg "Tensor3.permuted_index: index out of range";
    let i = [| i0; i1; i2 |] in
    let d = [| d0; d1; d2 |] in
    let a = i.(p0) and b = i.(p1) and c = i.(p2) in
    (((a * d.(p1)) + b) * d.(p2)) + c

  let transpose_flat ~m ~n buf =
    if m > 1 && n > 1 then begin
      let tmp = S.create (max m n) in
      if m > n then Algo_plain.c2r (Plan.make ~m ~n) buf ~tmp
      else Algo_plain.r2c (Plan.make ~m:n ~n:m) buf ~tmp
    end

  let check_permute_args ~dims:(d0, d1, d2) ~perm buf =
    check_perm perm;
    if d0 < 1 || d1 < 1 || d2 < 1 then
      invalid_arg "Tensor3.permute: dimensions must be positive";
    if S.length buf <> d0 * d1 * d2 then
      invalid_arg "Tensor3.permute: buffer size"

  let permute_direct ~dims:(d0, d1, d2) ~perm buf =
    check_permute_args ~dims:(d0, d1, d2) ~perm buf;
    match perm with
    | 0, 1, 2 -> ()
    | 1, 0, 2 -> transpose_blocks ~m:d0 ~n:d1 ~block:d2 buf
    | 0, 2, 1 -> transpose_batched ~batch:d0 ~m:d1 ~n:d2 buf
    | 2, 0, 1 -> transpose_flat ~m:(d0 * d1) ~n:d2 buf
    | 1, 2, 0 -> transpose_flat ~m:d0 ~n:(d1 * d2) buf
    | 2, 1, 0 ->
        transpose_flat ~m:(d0 * d1) ~n:d2 buf;
        (* now a (d2, d0, d1) tensor; swap its last two axes *)
        transpose_batched ~batch:d2 ~m:d0 ~n:d1 buf
    | _ -> assert false

  let permute ~dims:(d0, d1, d2) ~perm:((p0, p1, p2) as perm) buf =
    check_permute_args ~dims:(d0, d1, d2) ~perm buf;
    Nd.permute ~dims:[| d0; d1; d2 |] ~perm:[| p0; p1; p2 |] buf
end
