let emod x m =
  let r = x mod m in
  if r < 0 then r + m else r

let ediv x m =
  let q = x / m and r = x mod m in
  if r < 0 then q - 1 else q

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let egcd a b =
  let rec go a b =
    if b = 0 then (a, 1, 0)
    else
      let g, u, v = go b (a mod b) in
      (g, v, u - (a / b) * v)
  in
  go a b

let mmi x y =
  if y < 1 then invalid_arg "Intmath.mmi: modulus must be positive";
  let x = emod x y in
  let g, u, _ = egcd x y in
  if g <> 1 && y <> 1 then invalid_arg "Intmath.mmi: arguments not coprime";
  emod u y

let is_coprime a b = gcd a b = 1

let ceil_log2 x =
  if x < 1 then invalid_arg "Intmath.ceil_log2";
  let rec go k p = if p >= x then k else go (k + 1) (p * 2) in
  go 0 1

let ceil_div a b = (a + b - 1) / b

let lcm a b = if a = 0 || b = 0 then 0 else a / gcd a b * b
