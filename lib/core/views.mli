(** Zero-copy storage adapters.

    These lift any {!Storage.S} instance to new instances over the same
    underlying memory, which lets the transposition functor run on
    sub-ranges (batched transposition) and on coarse-grained "elements"
    of several consecutive slots (block transposition) without copying.
    Both are building blocks for {!Tensor3}. *)

module Slice (S : Storage.S) : sig
  include Storage.S with type elt = S.elt

  val of_buffer : S.t -> off:int -> len:int -> t
  (** View [len] elements of [buf] starting at [off]. The view aliases
      the buffer: writes are visible through both.
      @raise Invalid_argument if the range is out of bounds. *)

  val base : t -> S.t
  val offset : t -> int
end

module Blocked (S : Storage.S) : sig
  include Storage.S with type elt = S.t
  (** Elements are whole blocks of [block t] consecutive slots of the
      underlying storage; [get] copies a block out, [set] copies one in. *)

  val of_buffer : S.t -> block:int -> t
  (** View [buf] as [length buf / block] block-elements.
      @raise Invalid_argument if [block < 1] or does not divide the
      length. *)

  val block : t -> int
end
(** Caveat: [Blocked.create] cannot know a block size and returns a
    block-1 view, so the algorithm entry points that allocate scratch
    internally ([transpose]) must not be used on blocked views — pass
    scratch obtained from [of_buffer] to [c2r]/[r2c] instead (as
    {!Tensor3} does). *)

module Strided_blocked (S : Storage.S) : sig
  include Storage.S with type elt = S.t
  (** Elements are blocks of [block t] consecutive slots placed every
      [stride t] slots from [off]: element [i] occupies slots
      [[off + i*stride, off + i*stride + block)]. With [off = 0] and
      [stride = block] this degenerates to {!Blocked}. The gaps between
      elements belong to other views, which is what lets
      [Xpose_cpu.Par_permute] split one block transposition across
      workers: each worker owns a disjoint sub-range of every block and
      permutes it independently. *)

  val of_buffer : S.t -> off:int -> stride:int -> block:int -> count:int -> t
  (** @raise Invalid_argument if [block < 1], [stride < block], or the
      last element overruns the buffer. *)

  val block : t -> int
  val stride : t -> int
end
(** The {!Blocked} [create] caveat applies here too: scratch for the
    algorithm must come from [of_buffer]. *)
