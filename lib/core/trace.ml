module I = Algo.Make (Storage.Int_elt)

type step = { label : string; state : int array array }
type trace = { m : int; n : int; steps : step list }

let iota ~m ~n = Array.init m (fun i -> Array.init n (fun j -> j + (i * n)))

let to_buf ~m ~n mat =
  let buf = Storage.Int_elt.create (m * n) in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      Storage.Int_elt.set buf ((i * n) + j) mat.(i).(j)
    done
  done;
  buf

let of_buf ~m ~n buf =
  Array.init m (fun i ->
      Array.init n (fun j -> Storage.Int_elt.get buf ((i * n) + j)))

let run ~m ~n mat phases =
  let p = Plan.make ~m ~n in
  let buf = to_buf ~m ~n mat in
  let tmp = Storage.Int_elt.create (Plan.scratch_elements p) in
  let snapshot label = { label; state = of_buf ~m ~n buf } in
  let steps = ref [ snapshot "initial" ] in
  List.iter
    (fun (label, run_phase) ->
      run_phase p buf tmp;
      steps := snapshot label :: !steps)
    phases;
  { m; n; steps = List.rev !steps }

let c2r ~m ~n mat =
  let p = Plan.make ~m ~n in
  let pre =
    if Plan.coprime p then []
    else
      [
        ( "column rotate",
          fun p buf tmp ->
            I.Phases.rotate_columns p buf ~tmp ~amount:(Plan.rotate_amount p)
              ~lo:0 ~hi:n );
      ]
  in
  run ~m ~n mat
    (pre
    @ [
        ( "row shuffle",
          fun p buf tmp -> I.Phases.row_shuffle_scatter p buf ~tmp ~lo:0 ~hi:m );
        ( "column shuffle",
          fun p buf tmp -> I.Phases.col_shuffle_gather p buf ~tmp ~lo:0 ~hi:n );
      ])

let r2c ~m ~n mat =
  let p = Plan.make ~m ~n in
  let post =
    if Plan.coprime p then []
    else
      [
        ( "column unrotate",
          fun p buf tmp ->
            I.Phases.rotate_columns p buf ~tmp
              ~amount:(fun j -> -Plan.rotate_amount p j)
              ~lo:0 ~hi:n );
      ]
  in
  run ~m ~n mat
    ([
       ( "column unshuffle",
         fun p buf tmp -> I.Phases.col_shuffle_ungather p buf ~tmp ~lo:0 ~hi:n );
       ( "row unshuffle",
         fun p buf tmp -> I.Phases.row_shuffle_ungather p buf ~tmp ~lo:0 ~hi:m );
     ]
    @ post)

let final t =
  match List.rev t.steps with
  | last :: _ -> last.state
  | [] -> invalid_arg "Trace.final: empty trace"

let pp_matrix ppf mat =
  let width =
    Array.fold_left
      (fun w row ->
        Array.fold_left
          (fun w v -> max w (String.length (string_of_int v)))
          w row)
      1 mat
  in
  Array.iter
    (fun row ->
      Array.iteri
        (fun j v ->
          if j > 0 then Format.pp_print_string ppf " ";
          Format.fprintf ppf "%*d" width v)
        row;
      Format.pp_print_newline ppf ())
    mat

let pp ppf t =
  List.iter
    (fun s ->
      Format.fprintf ppf "%s:@." s.label;
      pp_matrix ppf s.state)
    t.steps

let reinterpret t =
  let flat = Array.concat (Array.to_list (final t)) in
  Array.init t.n (fun i -> Array.init t.m (fun j -> flat.((i * t.m) + j)))
