(** In-place quarter- and half-turn rotation of row-major matrices,
    composed from the in-place transpose plus in-place reversals — the
    classic downstream use of an in-place transposition (image rotation
    without a second framebuffer).

    A clockwise quarter turn of an [m x n] matrix is its transpose with
    each row reversed; counter-clockwise is the transpose with the row
    order reversed; a half turn reverses the whole linearization. All
    run in place with [O(max(m,n))] auxiliary memory. *)

module Make (S : Storage.S) : sig
  type buf = S.t

  val clockwise : m:int -> n:int -> buf -> unit
  (** After the call the buffer holds the [n x m] row-major clockwise
      rotation: [R[i,j] = A[m-1-j, i]].
      @raise Invalid_argument on size mismatch. *)

  val counter_clockwise : m:int -> n:int -> buf -> unit
  (** [R[i,j] = A[j, n-1-i]] ([n x m]). *)

  val half_turn : m:int -> n:int -> buf -> unit
  (** [R[i,j] = A[m-1-i, n-1-j]] (same shape). *)
end
