type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

open Bigarray.Array1

let check_args (p : Plan.t) (buf : buf) ~(tmp : buf) =
  if dim buf <> p.m * p.n then
    invalid_arg "Kernels_f64: buffer size does not match plan";
  if dim tmp < Plan.scratch_elements p then
    invalid_arg "Kernels_f64: scratch too small"

module Phases = struct
  let rotate_columns (p : Plan.t) (buf : buf) ~(tmp : buf) ~amount ~lo ~hi =
    let m = p.m and n = p.n in
    for j = lo to hi - 1 do
      let k = Intmath.emod (amount j) m in
      if k <> 0 then begin
        for i = 0 to m - k - 1 do
          unsafe_set tmp i (unsafe_get buf (((i + k) * n) + j))
        done;
        for i = m - k to m - 1 do
          unsafe_set tmp i (unsafe_get buf (((i + k - m) * n) + j))
        done;
        for i = 0 to m - 1 do
          unsafe_set buf ((i * n) + j) (unsafe_get tmp i)
        done
      end
    done

  (* Write the shuffled row in [tmp.(0..n-1)] back over row [i]. An
     explicit loop rather than [blit (sub tmp 0 n) (sub buf base n)]:
     the two [sub] views are heap allocations per row, which a batched
     caller pays m times per matrix; the loop allocates nothing and
     vectorizes just as well. *)
  let writeback_row (buf : buf) ~(tmp : buf) ~base ~n =
    for j = 0 to n - 1 do
      unsafe_set buf (base + j) (unsafe_get tmp j)
    done

  let row_shuffle_gather (p : Plan.t) (buf : buf) ~(tmp : buf) ~lo ~hi =
    let n = p.n in
    for i = lo to hi - 1 do
      let base = i * n in
      for j = 0 to n - 1 do
        unsafe_set tmp j (unsafe_get buf (base + Plan.d'_inv p ~i j))
      done;
      writeback_row buf ~tmp ~base ~n
    done

  let row_shuffle_scatter (p : Plan.t) (buf : buf) ~(tmp : buf) ~lo ~hi =
    let n = p.n in
    for i = lo to hi - 1 do
      let base = i * n in
      for j = 0 to n - 1 do
        unsafe_set tmp (Plan.d' p ~i j) (unsafe_get buf (base + j))
      done;
      writeback_row buf ~tmp ~base ~n
    done

  let row_shuffle_ungather (p : Plan.t) (buf : buf) ~(tmp : buf) ~lo ~hi =
    let n = p.n in
    for i = lo to hi - 1 do
      let base = i * n in
      for j = 0 to n - 1 do
        unsafe_set tmp j (unsafe_get buf (base + Plan.d' p ~i j))
      done;
      writeback_row buf ~tmp ~base ~n
    done

  let col_shuffle_gather (p : Plan.t) (buf : buf) ~(tmp : buf) ~lo ~hi =
    let m = p.m and n = p.n in
    for j = lo to hi - 1 do
      for i = 0 to m - 1 do
        unsafe_set tmp i (unsafe_get buf ((Plan.s' p ~j i * n) + j))
      done;
      for i = 0 to m - 1 do
        unsafe_set buf ((i * n) + j) (unsafe_get tmp i)
      done
    done

  let col_shuffle_ungather (p : Plan.t) (buf : buf) ~(tmp : buf) ~lo ~hi =
    let m = p.m and n = p.n in
    for j = lo to hi - 1 do
      for i = 0 to m - 1 do
        unsafe_set tmp i (unsafe_get buf ((Plan.s'_inv p ~j i * n) + j))
      done;
      for i = 0 to m - 1 do
        unsafe_set buf ((i * n) + j) (unsafe_get tmp i)
      done
    done

  let permute_rows (p : Plan.t) (buf : buf) ~(tmp : buf) ~index ~lo ~hi =
    let m = p.m and n = p.n in
    let idx = Array.init m index in
    for j = lo to hi - 1 do
      for i = 0 to m - 1 do
        unsafe_set tmp i (unsafe_get buf ((Array.unsafe_get idx i * n) + j))
      done;
      for i = 0 to m - 1 do
        unsafe_set buf ((i * n) + j) (unsafe_get tmp i)
      done
    done
end

(* Same per-pass observability hook as Algo.Make (one span per pass;
   nothing per element, so the specialized kernels keep their speed). *)
let obs_pass (p : Plan.t) name ~pred f =
  Xpose_obs.Tracer.pass ~name ~rows:p.m ~cols:p.n ~pred_touches:pred
    ~scratch_elems:(Plan.scratch_elements p) f

module type PHASES = sig
  val rotate_columns :
    Plan.t -> buf -> tmp:buf -> amount:(int -> int) -> lo:int -> hi:int -> unit

  val row_shuffle_gather : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit
  val row_shuffle_scatter : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit
  val row_shuffle_ungather : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit
  val col_shuffle_gather : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit
  val col_shuffle_ungather : Plan.t -> buf -> tmp:buf -> lo:int -> hi:int -> unit

  val permute_rows :
    Plan.t -> buf -> tmp:buf -> index:(int -> int) -> lo:int -> hi:int -> unit
end

module type ENGINE = sig
  val c2r : ?variant:Algo.c2r_variant -> Plan.t -> buf -> tmp:buf -> unit
  val r2c : ?variant:Algo.r2c_variant -> Plan.t -> buf -> tmp:buf -> unit

  val transpose :
    ?ws:Workspace.F64.t -> ?order:Layout.order -> m:int -> n:int -> buf -> unit
end

(* The engine orchestration (pass order, variant dispatch, observability)
   is written once and instantiated with both the raw and the checked
   phases. Without flambda a functor application costs an indirect call,
   but only one per *pass* — never per element — so the raw instantiation
   keeps its specialized speed. *)
module Engine_of (P : PHASES) = struct
  let c2r ?(variant = Algo.C2r_gather) (p : Plan.t) buf ~tmp =
    check_args p buf ~tmp;
    let m = p.m and n = p.n in
    if m = 1 || n = 1 then ()
    else begin
      if not (Plan.coprime p) then begin
        let amount = Plan.rotate_amount p in
        obs_pass p "rotate_pre" ~pred:(Pass_cost.rotate p ~amount) (fun () ->
            P.rotate_columns p buf ~tmp ~amount ~lo:0 ~hi:n)
      end;
      (match variant with
      | Algo.C2r_scatter ->
          obs_pass p "row_shuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
              P.row_shuffle_scatter p buf ~tmp ~lo:0 ~hi:m)
      | Algo.C2r_gather | Algo.C2r_decomposed ->
          obs_pass p "row_shuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
              P.row_shuffle_gather p buf ~tmp ~lo:0 ~hi:m));
      match variant with
      | Algo.C2r_scatter | Algo.C2r_gather ->
          obs_pass p "col_shuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
              P.col_shuffle_gather p buf ~tmp ~lo:0 ~hi:n)
      | Algo.C2r_decomposed ->
          let amount j = j in
          obs_pass p "col_rotate" ~pred:(Pass_cost.rotate p ~amount) (fun () ->
              P.rotate_columns p buf ~tmp ~amount ~lo:0 ~hi:n);
          obs_pass p "row_permute" ~pred:(Pass_cost.permute_rows p) (fun () ->
              P.permute_rows p buf ~tmp ~index:(Plan.q p) ~lo:0 ~hi:n)
    end

  let r2c ?(variant = Algo.R2c_fused) (p : Plan.t) buf ~tmp =
    check_args p buf ~tmp;
    let m = p.m and n = p.n in
    if m = 1 || n = 1 then ()
    else begin
      (match variant with
      | Algo.R2c_fused ->
          obs_pass p "col_unshuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
              P.col_shuffle_ungather p buf ~tmp ~lo:0 ~hi:n)
      | Algo.R2c_decomposed ->
          obs_pass p "row_unpermute" ~pred:(Pass_cost.permute_rows p)
            (fun () ->
              P.permute_rows p buf ~tmp ~index:(Plan.q_inv p) ~lo:0 ~hi:n);
          let amount j = -j in
          obs_pass p "col_unrotate" ~pred:(Pass_cost.rotate p ~amount)
            (fun () -> P.rotate_columns p buf ~tmp ~amount ~lo:0 ~hi:n));
      obs_pass p "row_unshuffle" ~pred:(Pass_cost.shuffle p) (fun () ->
          P.row_shuffle_ungather p buf ~tmp ~lo:0 ~hi:m);
      if not (Plan.coprime p) then begin
        let amount j = -Plan.rotate_amount p j in
        obs_pass p "rotate_post" ~pred:(Pass_cost.rotate p ~amount) (fun () ->
            P.rotate_columns p buf ~tmp ~amount ~lo:0 ~hi:n)
      end
    end

  let transpose ?ws ?(order = Layout.Row_major) ~m ~n buf =
    let rm, rn =
      match order with Layout.Row_major -> (m, n) | Layout.Col_major -> (n, m)
    in
    (* Batch callers pass a workspace so the Theorem-6 scratch is allocated
       once per worker instead of once per matrix. *)
    let tmp =
      match ws with
      | Some ws -> Workspace.F64.tmp ws (max rm rn)
      | None ->
          Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (max rm rn)
    in
    if rm > rn then c2r (Plan.make ~m:rm ~n:rn) buf ~tmp
    else r2c (Plan.make ~m:rn ~n:rm) buf ~tmp
end

include Engine_of (Phases)

(* Checked-access shadow mode: the same phase bodies with every matrix
   and scratch access bounds-verified and every index-equation result
   range-verified, raising [Checked_access.Violation] instead of
   corrupting memory. Selected by tests and [xpose check --shadow]. *)
module Checked = struct
  let who = "Kernels_f64.Checked"

  let cget (buf : buf) what i =
    Checked_access.bounds ~who ~what ~len:(dim buf) i;
    unsafe_get buf i

  let cset (buf : buf) what i v =
    Checked_access.bounds ~who ~what ~len:(dim buf) i;
    unsafe_set buf i v

  let cidx what ~bound v =
    if v < 0 || v >= bound then
      Checked_access.violation "%s: %s %d outside [0, %d)" who what v bound;
    v

  module Phases = struct
    let rotate_columns (p : Plan.t) (buf : buf) ~(tmp : buf) ~amount ~lo ~hi =
      Checked_access.distinct ~who ~what:"rotate scratch" tmp buf;
      let m = p.m and n = p.n in
      for j = lo to hi - 1 do
        let k = Intmath.emod (amount j) m in
        if k <> 0 then begin
          for i = 0 to m - k - 1 do
            cset tmp "rotate scratch write" i
              (cget buf "rotate read" (((i + k) * n) + j))
          done;
          for i = m - k to m - 1 do
            cset tmp "rotate scratch write" i
              (cget buf "rotate read" (((i + k - m) * n) + j))
          done;
          for i = 0 to m - 1 do
            cset buf "rotate write" ((i * n) + j)
              (cget tmp "rotate scratch read" i)
          done
        end
      done

    let writeback_row (buf : buf) ~(tmp : buf) ~base ~n =
      for j = 0 to n - 1 do
        cset buf "row writeback" (base + j) (cget tmp "row scratch read" j)
      done

    let row_shuffle_gather (p : Plan.t) (buf : buf) ~(tmp : buf) ~lo ~hi =
      Checked_access.distinct ~who ~what:"row-shuffle scratch" tmp buf;
      let n = p.n in
      for i = lo to hi - 1 do
        let base = i * n in
        for j = 0 to n - 1 do
          let src = cidx "d'_inv column" ~bound:n (Plan.d'_inv p ~i j) in
          cset tmp "row scratch write" j (cget buf "row read" (base + src))
        done;
        writeback_row buf ~tmp ~base ~n
      done

    let row_shuffle_scatter (p : Plan.t) (buf : buf) ~(tmp : buf) ~lo ~hi =
      Checked_access.distinct ~who ~what:"row-shuffle scratch" tmp buf;
      let n = p.n in
      for i = lo to hi - 1 do
        let base = i * n in
        for j = 0 to n - 1 do
          let dst = cidx "d' column" ~bound:n (Plan.d' p ~i j) in
          cset tmp "row scratch write" dst (cget buf "row read" (base + j))
        done;
        writeback_row buf ~tmp ~base ~n
      done

    let row_shuffle_ungather (p : Plan.t) (buf : buf) ~(tmp : buf) ~lo ~hi =
      Checked_access.distinct ~who ~what:"row-shuffle scratch" tmp buf;
      let n = p.n in
      for i = lo to hi - 1 do
        let base = i * n in
        for j = 0 to n - 1 do
          let src = cidx "d' column" ~bound:n (Plan.d' p ~i j) in
          cset tmp "row scratch write" j (cget buf "row read" (base + src))
        done;
        writeback_row buf ~tmp ~base ~n
      done

    let col_shuffle_gather (p : Plan.t) (buf : buf) ~(tmp : buf) ~lo ~hi =
      Checked_access.distinct ~who ~what:"col-shuffle scratch" tmp buf;
      let m = p.m and n = p.n in
      for j = lo to hi - 1 do
        for i = 0 to m - 1 do
          let src = cidx "s' row" ~bound:m (Plan.s' p ~j i) in
          cset tmp "col scratch write" i (cget buf "col read" ((src * n) + j))
        done;
        for i = 0 to m - 1 do
          cset buf "col write" ((i * n) + j) (cget tmp "col scratch read" i)
        done
      done

    let col_shuffle_ungather (p : Plan.t) (buf : buf) ~(tmp : buf) ~lo ~hi =
      Checked_access.distinct ~who ~what:"col-shuffle scratch" tmp buf;
      let m = p.m and n = p.n in
      for j = lo to hi - 1 do
        for i = 0 to m - 1 do
          let src = cidx "s'_inv row" ~bound:m (Plan.s'_inv p ~j i) in
          cset tmp "col scratch write" i (cget buf "col read" ((src * n) + j))
        done;
        for i = 0 to m - 1 do
          cset buf "col write" ((i * n) + j) (cget tmp "col scratch read" i)
        done
      done

    let permute_rows (p : Plan.t) (buf : buf) ~(tmp : buf) ~index ~lo ~hi =
      Checked_access.distinct ~who ~what:"permute scratch" tmp buf;
      let m = p.m and n = p.n in
      let idx = Array.init m (fun i -> cidx "row index" ~bound:m (index i)) in
      for j = lo to hi - 1 do
        for i = 0 to m - 1 do
          cset tmp "permute scratch write" i
            (cget buf "permute read" ((idx.(i) * n) + j))
        done;
        for i = 0 to m - 1 do
          cset buf "permute write" ((i * n) + j)
            (cget tmp "permute scratch read" i)
        done
      done
  end

  include Engine_of (Phases)
end

(* The specialized kernels run the same phase bodies as Algo.Make, so
   they share its access summaries. *)
let c2r_access = Algo.c2r_access
let r2c_access = Algo.r2c_access
