(** Reusable per-worker scratch buffers for the cache-aware and fused
    engines.

    The §4.6/§4.7 passes need four small buffers: a [line] holding one
    sub-row (group width), a [head] caching the first rows of a panel
    (width x width), a [block] staging the fine-rotation strips
    (block_rows x width), and the Theorem-6 [tmp] scratch (max m n).
    Allocating them per call is cheap for one large transpose but
    dominates a batched many-small-matrices workload, so a workspace owns
    all four and grows them monotonically on demand: the accessors return
    a buffer of {e at least} the requested length, reallocating only when
    the current one is too small.

    A workspace is single-owner mutable state: give each pool worker its
    own ({!Xpose_cpu.Fused_f64.transpose_batch} does), never share one
    across concurrently running passes. *)

module type S = sig
  type t
  type buf

  val create : unit -> t
  (** An empty workspace; buffers are allocated lazily by the accessors. *)

  val line : t -> int -> buf
  (** [line t len] is the sub-row buffer, grown to at least [len]. *)

  val head : t -> int -> buf
  (** Panel-head cache for the §4.6 fine phase (width * width). *)

  val block : t -> int -> buf
  (** Strip staging buffer for the §4.6 fine phase (block_rows * width). *)

  val tmp : t -> int -> buf
  (** Theorem-6 per-worker scratch ([Plan.scratch_elements]). *)
end

module Make (St : Storage.S) : S with type buf = St.t

module F64 : S with type buf = Storage.Float64.t
(** The float64 instance shared by {!Kernels_f64} and the fused engine. *)
