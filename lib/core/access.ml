(* Per-pass access summaries: a tiny affine/interval IR in which every
   engine pass declares, symbolically in the plan quantities, exactly
   which flat indices of which region (matrix, scratch, panel
   workspaces, ooc windows) it reads and writes.

   The IR serves two masters with one definition:

   - {!Xpose_check.Bounds} translates a summary into polynomial proof
     obligations over the plan basis (a, b, c, a_inv, b_inv with
     m = a*c, n = b*c) and certifies -- for ALL shapes at once, no
     enumeration -- that every access lies inside its declared region.
   - [concretize] evaluates the same summary on a concrete environment,
     producing the exact index set; the QCheck suites diff that set
     against the traces recorded by the checked-access shadow engines,
     so the symbolic model can never drift from the code it describes.

   Index expressions mirror {!Plan} operation by operation ([Div] is
   floor division = [Intmath.ediv], [Mod] is Euclidean = [Intmath.emod]),
   so a summary marked [exact] concretizes to precisely the accesses the
   pass performs. *)

type exp =
  | Const of int
  | Var of string
  | Add of exp * exp
  | Sub of exp * exp
  | Mul of exp * exp
  | Div of exp * exp  (** floor division, {!Intmath.ediv} *)
  | Mod of exp * exp  (** Euclidean remainder, {!Intmath.emod} *)
  | Min of exp * exp
  | Max of exp * exp
  | Ite of cond * exp * exp

and cond = Le of exp * exp | Eq of exp * exp | And of cond * cond

type kind = Read | Write

type node =
  | Acc of { region : string; kind : kind; index : exp }
  | For of { var : string; lo : exp; hi : exp; body : node list }
      (** [var] ranges over [[lo, hi)]; empty when [hi <= lo]. *)
  | Bind of { var : string; def : exp; body : node list }
  | When of cond * node list

type param = {
  name : string;
  p_lo : exp;  (** inclusive lower bound *)
  p_his : exp list;  (** inclusive upper bounds (conjunction); [] = free *)
  sample : int list;  (** candidate values for counterexample search *)
}

type basis = Plan_basis | Free_basis

type region = { rname : string; size : exp }

type summary = {
  pass : string;
  basis : basis;
  params : param list;  (** in dependency order; later may reference earlier *)
  regions : region list;
  body : node list;
  exact : bool;
      (** [true]: concretization equals the pass's access set;
          [false]: concretization is a proven superset. *)
}

(* -- evaluation ---------------------------------------------------------- *)

type env = (string * int) list

let lookup env s =
  match List.assoc_opt s env with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Access.eval: unbound variable %S" s)

let rec eval env = function
  | Const v -> v
  | Var s -> lookup env s
  | Add (x, y) -> eval env x + eval env y
  | Sub (x, y) -> eval env x - eval env y
  | Mul (x, y) -> eval env x * eval env y
  | Div (x, y) -> Intmath.ediv (eval env x) (eval env y)
  | Mod (x, y) -> Intmath.emod (eval env x) (eval env y)
  | Min (x, y) -> min (eval env x) (eval env y)
  | Max (x, y) -> max (eval env x) (eval env y)
  | Ite (c, x, y) -> if eval_cond env c then eval env x else eval env y

and eval_cond env = function
  | Le (x, y) -> eval env x <= eval env y
  | Eq (x, y) -> eval env x = eval env y
  | And (c1, c2) -> eval_cond env c1 && eval_cond env c2

(* -- substitution (capture-naive: summaries use distinct binder names) --- *)

let rec subst v r = function
  | Const _ as e -> e
  | Var s as e -> if String.equal s v then r else e
  | Add (x, y) -> Add (subst v r x, subst v r y)
  | Sub (x, y) -> Sub (subst v r x, subst v r y)
  | Mul (x, y) -> Mul (subst v r x, subst v r y)
  | Div (x, y) -> Div (subst v r x, subst v r y)
  | Mod (x, y) -> Mod (subst v r x, subst v r y)
  | Min (x, y) -> Min (subst v r x, subst v r y)
  | Max (x, y) -> Max (subst v r x, subst v r y)
  | Ite (c, x, y) -> Ite (subst_cond v r c, subst v r x, subst v r y)

and subst_cond v r = function
  | Le (x, y) -> Le (subst v r x, subst v r y)
  | Eq (x, y) -> Eq (subst v r x, subst v r y)
  | And (c1, c2) -> And (subst_cond v r c1, subst_cond v r c2)

(* -- printing ------------------------------------------------------------ *)

let rec to_string = function
  | Const v -> string_of_int v
  | Var s -> s
  | Add (x, y) -> Printf.sprintf "(%s + %s)" (to_string x) (to_string y)
  | Sub (x, y) -> Printf.sprintf "(%s - %s)" (to_string x) (to_string y)
  | Mul (x, y) -> Printf.sprintf "(%s * %s)" (to_string x) (to_string y)
  | Div (x, y) -> Printf.sprintf "(%s / %s)" (to_string x) (to_string y)
  | Mod (x, y) -> Printf.sprintf "(%s mod %s)" (to_string x) (to_string y)
  | Min (x, y) -> Printf.sprintf "min(%s, %s)" (to_string x) (to_string y)
  | Max (x, y) -> Printf.sprintf "max(%s, %s)" (to_string x) (to_string y)
  | Ite (c, x, y) ->
      Printf.sprintf "(if %s then %s else %s)" (cond_to_string c)
        (to_string x) (to_string y)

and cond_to_string = function
  | Le (x, y) -> Printf.sprintf "%s <= %s" (to_string x) (to_string y)
  | Eq (x, y) -> Printf.sprintf "%s = %s" (to_string x) (to_string y)
  | And (c1, c2) ->
      Printf.sprintf "%s && %s" (cond_to_string c1) (cond_to_string c2)

(* -- concretization ------------------------------------------------------ *)

type event = { e_region : string; e_kind : kind; e_index : int }

exception Too_many_accesses

let concretize ?(cap = 2_000_000) ~env (s : summary) : event list =
  let tbl = Hashtbl.create 1024 in
  let count = ref 0 in
  let rec go env nodes =
    List.iter
      (function
        | Acc { region; kind; index } ->
            incr count;
            if !count > cap then raise Too_many_accesses;
            Hashtbl.replace tbl
              { e_region = region; e_kind = kind; e_index = eval env index }
              ()
        | For { var; lo; hi; body } ->
            let lo = eval env lo and hi = eval env hi in
            for v = lo to hi - 1 do
              go ((var, v) :: env) body
            done
        | Bind { var; def; body } -> go ((var, eval env def) :: env) body
        | When (c, body) -> if eval_cond env c then go env body)
      nodes
  in
  go env s.body;
  List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) tbl [])

let env_of_plan (p : Plan.t) : env =
  [
    ("m", p.m);
    ("n", p.n);
    ("a", p.a);
    ("b", p.b);
    ("c", p.c);
    ("a_inv", p.a_inv);
    ("b_inv", p.b_inv);
  ]

let basis_env = function
  | Plan_basis ->
      [ ("a", 1); ("b", 1); ("c", 1); ("a_inv", 0); ("b_inv", 0) ]
  | Free_basis -> [ ("m", 1); ("n", 1) ]

(* Pin a parameter to a concrete value: the prover then reasons with
   [value <= p <= value], and the sampler only tries [value]. *)
let pin (s : summary) name value =
  let seen = ref false in
  let params =
    List.map
      (fun p ->
        if String.equal p.name name then begin
          seen := true;
          { p with p_lo = Const value; p_his = [ Const value ];
            sample = [ value ] }
        end
        else p)
      s.params
  in
  if not !seen then
    invalid_arg (Printf.sprintf "Access.pin: no parameter %S in %s" name s.pass);
  { s with params }

(* -- small authoring DSL ------------------------------------------------- *)

let num x = Const x
let var s = Var s
let ( +: ) a b = Add (a, b)
let ( -: ) a b = Sub (a, b)
let ( *: ) a b = Mul (a, b)
let ( /: ) a b = Div (a, b)
let ( %: ) a b = Mod (a, b)
let le a b = Le (a, b)
let lt a b = Le (Add (a, Const 1), b)
let read region index = Acc { region; kind = Read; index }
let write region index = Acc { region; kind = Write; index }
let for_ var lo hi body = For { var; lo; hi; body }
let bind var def body = Bind { var; def; body }

(* -- the plan index maps, operation for operation ------------------------ *)

module Ix = struct
  let m = var "m"
  let n = var "n"
  let a = var "a"
  let b = var "b"
  let c = var "c"
  let a_inv = var "a_inv"
  let b_inv = var "b_inv"

  (* Eq. 23: pre-rotation amount for column j. *)
  let rotate_amount j = j /: b

  (* Eq. 24: d'(i, j) = ((i + j/b) mod m + j*m) mod n. *)
  let d' ~i j = ((i +: (j /: b)) %: m +: (j *: m)) %: n

  (* Eq. 31 as computed by Plan.d'_inv: with
     f = j + i*(n-1) + (if i - (j mod c) + c <= m then 0 else m),
     d'_inv = (a_inv * ((f/c) mod b)) mod b + (f mod c) * b. *)
  let d'_inv ~i j =
    let f =
      Ite
        ( Le (i -: (j %: c) +: c, m),
          j +: (i *: (n -: num 1)),
          j +: (i *: (n -: num 1)) +: m )
    in
    ((a_inv *: (f /: c %: b)) %: b) +: (f %: c *: b)

  (* Eq. 27: s'(j, i) = (j + i*n - i/a) mod m. *)
  let s' ~j i = (j +: (i *: n) -: (i /: a)) %: m

  (* Row-permutation target q(i) = (i*n - i/a) mod m. *)
  let q i = ((i *: n) -: (i /: a)) %: m

  (* Its inverse as computed by Plan.q_inv. *)
  let q_inv i =
    Ite
      ( Eq (Div (c -: num 1 +: i, c), a),
        Const 0,
        Div (c -: num 1 +: i, c) )
    |> fun v -> ((v *: b_inv) %: a) +: (((c -: num 1) *: i) %: c *: a)

  (* s'_inv(j, i) = q_inv((i - j) mod m). *)
  let s'_inv ~j i = q_inv ((i -: j) %: m)
end

(* -- per-pass summaries of the row/column kernels ------------------------ *)

module Passes = struct
  open Ix

  let matrix = { rname = "matrix"; size = Mul (m, n) }
  let scratch size = { rname = "tmp"; size }

  let default_range = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]

  (* Every kernel phase takes ~lo ~hi and touches only that sub-range of
     its outer loop; quantifying over the sub-range is what makes one
     certificate cover every pool chunking and batch lane at once. *)
  let range_params bound =
    [
      { name = "hi"; p_lo = Const 0; p_his = [ bound ]; sample = default_range };
      {
        name = "lo";
        p_lo = Const 0;
        p_his = [ Var "hi" ];
        sample = default_range;
      };
    ]

  let rotate_body ~amount ~wrap_hi =
    [
      for_ "j" (var "lo") (var "hi")
        [
          bind "k" (Mod (amount (var "j"), m))
            [
              When
                ( le (num 1) (var "k"),
                  [
                    for_ "i1" (num 0) (wrap_hi (m -: var "k"))
                      [
                        read "matrix"
                          (((var "i1" +: var "k") *: n) +: var "j");
                        write "tmp" (var "i1");
                      ];
                    for_ "i2" (m -: var "k") m
                      [
                        read "matrix"
                          (((var "i2" +: var "k" -: m) *: n) +: var "j");
                        write "tmp" (var "i2");
                      ];
                    for_ "i3" (num 0) m
                      [
                        read "tmp" (var "i3");
                        write "matrix" ((var "i3" *: n) +: var "j");
                      ];
                  ] );
            ];
        ];
    ]

  (* Kernels_f64.Phases.rotate_columns with a concrete amount map. *)
  let rotate ?(pass = "rotate") ?(tmp_size = Max (m, n)) amount =
    {
      pass;
      basis = Plan_basis;
      params = range_params n;
      regions = [ matrix; scratch tmp_size ];
      body = rotate_body ~amount ~wrap_hi:(fun e -> e);
      exact = true;
    }

  (* Rotation by an arbitrary (unknown) per-column amount: the rotation
     residue k is universally quantified instead of computed. A proven
     superset of [rotate amount] for every amount map. *)
  let rotate_any ?(pass = "rotate_any") ?(tmp_size = Max (m, n)) () =
    {
      pass;
      basis = Plan_basis;
      params = range_params n;
      regions = [ matrix; scratch tmp_size ];
      body =
        [
          for_ "j" (var "lo") (var "hi")
            [
              for_ "k" (num 1) m
                [
                  for_ "i1" (num 0) (m -: var "k")
                    [
                      read "matrix" (((var "i1" +: var "k") *: n) +: var "j");
                      write "tmp" (var "i1");
                    ];
                  for_ "i2" (m -: var "k") m
                    [
                      read "matrix"
                        (((var "i2" +: var "k" -: m) *: n) +: var "j");
                      write "tmp" (var "i2");
                    ];
                  for_ "i3" (num 0) m
                    [
                      read "tmp" (var "i3");
                      write "matrix" ((var "i3" *: n) +: var "j");
                    ];
                ];
            ];
        ];
      exact = false;
    }

  (* The deliberately corrupted summary behind [--seed-oob-static]: the
     first copy loop runs one row too far, so its final read lands at
     (m - k + k) * n + j = m*n + j -- outside the matrix. Bounds must
     refuse to certify it and produce a concrete counterexample shape. *)
  let seeded_oob_rotate amount =
    {
      (rotate ~pass:"seeded.rotate_oob" amount) with
      body = rotate_body ~amount ~wrap_hi:(fun e -> e +: num 1);
      exact = false;
    }

  let row_shuffle_body col =
    [
      for_ "i" (var "lo") (var "hi")
        [
          for_ "j" (num 0) n
            [
              read "matrix" ((var "i" *: n) +: col ~i:(var "i") (var "j"));
              write "tmp" (var "j");
            ];
          for_ "j2" (num 0) n
            [
              read "tmp" (var "j2");
              write "matrix" ((var "i" *: n) +: var "j2");
            ];
        ];
    ]

  let row_shuffle ?(pass = "row_shuffle") col =
    {
      pass;
      basis = Plan_basis;
      params = range_params m;
      regions = [ matrix; scratch (Max (m, n)) ];
      body = row_shuffle_body col;
      exact = true;
    }

  (* row_shuffle_gather reads through d'_inv; ungather through d'. *)
  let row_shuffle_gather = row_shuffle ~pass:"row_shuffle_gather" d'_inv
  let row_shuffle_ungather = row_shuffle ~pass:"row_shuffle_ungather" d'

  (* row_shuffle_scatter writes tmp.(d'(i, j)) from matrix.(i*n + j). *)
  let row_shuffle_scatter =
    {
      pass = "row_shuffle_scatter";
      basis = Plan_basis;
      params = range_params m;
      regions = [ matrix; scratch (Max (m, n)) ];
      body =
        [
          for_ "i" (var "lo") (var "hi")
            [
              for_ "j" (num 0) n
                [
                  read "matrix" ((var "i" *: n) +: var "j");
                  write "tmp" (d' ~i:(var "i") (var "j"));
                ];
              for_ "j2" (num 0) n
                [
                  read "tmp" (var "j2");
                  write "matrix" ((var "i" *: n) +: var "j2");
                ];
            ];
        ];
      exact = true;
    }

  (* col_shuffle and permute_rows gather whole columns through a row map. *)
  let col_gather ?(pass = "col_shuffle") row =
    {
      pass;
      basis = Plan_basis;
      params = range_params n;
      regions = [ matrix; scratch (Max (m, n)) ];
      body =
        [
          for_ "j" (var "lo") (var "hi")
            [
              for_ "i" (num 0) m
                [
                  read "matrix" ((row ~j:(var "j") (var "i") *: n) +: var "j");
                  write "tmp" (var "i");
                ];
              for_ "i2" (num 0) m
                [
                  read "tmp" (var "i2");
                  write "matrix" ((var "i2" *: n) +: var "j");
                ];
            ];
        ];
      exact = true;
    }

  let col_shuffle_gather = col_gather ~pass:"col_shuffle_gather" s'
  let col_shuffle_ungather = col_gather ~pass:"col_shuffle_ungather" s'_inv

  let permute_rows ?(pass = "permute_rows") index =
    col_gather ~pass (fun ~j:_ i -> index i)

  (* -- engine pipelines --------------------------------------------------
     The row/column engines (Algo.Make, Kernels_f64, and the unfused
     sweeps of Cache_aware) are the same pass pipeline; one summary list
     certifies them all. The pre/post rotations only run when
     gcd(m, n) > 1, but their summaries concretize to the empty set in
     the coprime case (the computed residue k is 0), so including them
     unconditionally stays exact. *)

  type c2r_pipeline = Gather | Scatter | Decomposed
  type r2c_pipeline = Fused_inverse | Decomposed_inverse

  let rotate_pre = rotate ~pass:"rotate_pre" rotate_amount
  let rotate_post =
    rotate ~pass:"rotate_post" (fun j -> num 0 -: rotate_amount j)
  let col_rotate = rotate ~pass:"col_rotate" (fun j -> j)
  let col_unrotate = rotate ~pass:"col_unrotate" (fun j -> num 0 -: j)
  let row_permute_q = permute_rows ~pass:"row_permute[q]" q
  let row_permute_q_inv = permute_rows ~pass:"row_unpermute[q_inv]" q_inv

  let c2r = function
    | Gather -> [ rotate_pre; row_shuffle_gather; col_shuffle_gather ]
    | Scatter -> [ rotate_pre; row_shuffle_scatter; col_shuffle_gather ]
    | Decomposed ->
        [ rotate_pre; row_shuffle_gather; col_rotate; row_permute_q ]

  let r2c = function
    | Fused_inverse ->
        [ col_shuffle_ungather; row_shuffle_ungather; rotate_post ]
    | Decomposed_inverse ->
        [ row_permute_q_inv; col_unrotate; row_shuffle_ungather; rotate_post ]

  let all_pipeline_passes =
    [
      rotate_pre;
      rotate_post;
      col_rotate;
      col_unrotate;
      row_shuffle_gather;
      row_shuffle_scatter;
      row_shuffle_ungather;
      col_shuffle_gather;
      col_shuffle_ungather;
      row_permute_q;
      row_permute_q_inv;
    ]
end
