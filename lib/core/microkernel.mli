(** In-register blocked micro-kernels for float64 tile movement.

    The movers below are the unsafe inner tier of the fused engine's
    [mk8]/[mk16] kernel tiers (see {!Tune_params.kernel_tier}): fully
    unrolled straight-line load/store sequences with strength-reduced
    index increments, written so flambda emits flat branch-free code.
    An 8x8 or 16x16 tile move decomposes into per-column strided
    movers ({!col8}/{!col16}) and per-row unit-stride copies
    ({!row8}/{!row16}); {!transpose8}/{!transpose16} compose them into
    the classic in-register blocked transpose of the paper's §6.

    No access is bounds checked. Callers must guarantee every
    footprint — the fused engine's tile loops are certified
    parametrically by the Bounds/Alias provers, and {!Checked} is the
    runtime-verified shadow twin selected under [XPOSE_CHECKED=1]. *)

type buf = Storage.Float64.t

val block8 : int
(** 8 — tile edge of the [mk8] tier (one 64-byte cache line of f64). *)

val block16 : int
(** 16 — tile edge of the [mk16] tier (a 128-byte line pair). *)

val col8 :
  src:buf -> soff:int -> sstride:int -> dst:buf -> doff:int -> dstride:int ->
  unit
(** [col8 ~src ~soff ~sstride ~dst ~doff ~dstride] moves the 8 elements
    [src.(soff + t*sstride)] to [dst.(doff + t*dstride)] for
    [t in 0..7], fully unrolled. *)

val col16 :
  src:buf -> soff:int -> sstride:int -> dst:buf -> doff:int -> dstride:int ->
  unit
(** 16-element strided column mover; same contract as {!col8}. *)

val row8 : src:buf -> soff:int -> dst:buf -> doff:int -> unit
(** Unit-stride 8-element copy [src.(soff+k) -> dst.(doff+k)]. *)

val row16 : src:buf -> soff:int -> dst:buf -> doff:int -> unit
(** Unit-stride 16-element copy. *)

val copy_span : src:buf -> soff:int -> dst:buf -> doff:int -> len:int -> unit
(** Chunked unit-stride copy of [len] elements: unrolled 16- then
    8-wide chunks, scalar tail. The two spans must not overlap. *)

val transpose8 :
  src:buf -> soff:int -> sstride:int -> dst:buf -> doff:int -> dstride:int ->
  unit
(** [transpose8] writes the transpose of the 8x8 tile whose rows start
    at [soff + i*sstride] into the tile whose rows start at
    [doff + j*dstride]: [dst.(doff + j*dstride + i) =
    src.(soff + i*sstride + j)]. Source and destination tiles must be
    disjoint. *)

val transpose16 :
  src:buf -> soff:int -> sstride:int -> dst:buf -> doff:int -> dstride:int ->
  unit
(** 16x16 blocked transpose; same contract as {!transpose8}. *)

(** Runtime-verified shadow twins: identical movement, every access
    bounds checked through {!Checked_access}
    (raises {!Checked_access.Violation} on the first bad index). *)
module Checked : sig
  val col8 :
    src:buf -> soff:int -> sstride:int -> dst:buf -> doff:int ->
    dstride:int -> unit

  val col16 :
    src:buf -> soff:int -> sstride:int -> dst:buf -> doff:int ->
    dstride:int -> unit

  val row8 : src:buf -> soff:int -> dst:buf -> doff:int -> unit
  val row16 : src:buf -> soff:int -> dst:buf -> doff:int -> unit

  val copy_span :
    src:buf -> soff:int -> dst:buf -> doff:int -> len:int -> unit

  val transpose8 :
    src:buf -> soff:int -> sstride:int -> dst:buf -> doff:int ->
    dstride:int -> unit

  val transpose16 :
    src:buf -> soff:int -> sstride:int -> dst:buf -> doff:int ->
    dstride:int -> unit
end
