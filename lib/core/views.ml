module Slice (S : Storage.S) = struct
  type t = { buf : S.t; off : int; len : int }
  type elt = S.elt

  let name = S.name ^ "/slice"
  let elt_bytes = S.elt_bytes

  let of_buffer buf ~off ~len =
    if off < 0 || len < 0 || off + len > S.length buf then
      invalid_arg "Views.Slice.of_buffer: range out of bounds";
    { buf; off; len }

  let base t = t.buf
  let offset t = t.off
  let create len = { buf = S.create len; off = 0; len }
  let length t = t.len

  let check t i = if i < 0 || i >= t.len then invalid_arg "Views.Slice: index"

  let get t i =
    check t i;
    S.get t.buf (t.off + i)

  let set t i v =
    check t i;
    S.set t.buf (t.off + i) v

  let blit src spos dst dpos len =
    if spos < 0 || dpos < 0 || spos + len > src.len || dpos + len > dst.len
    then invalid_arg "Views.Slice: blit range";
    S.blit src.buf (src.off + spos) dst.buf (dst.off + dpos) len

  let of_int = S.of_int
  let to_int = S.to_int
  let equal = S.equal
  let pp = S.pp
end

module Blocked (S : Storage.S) = struct
  type t = { buf : S.t; block : int }
  type elt = S.t

  let name = S.name ^ "/blocked"
  let elt_bytes = S.elt_bytes (* per underlying slot; block size varies *)

  let of_buffer buf ~block =
    if block < 1 || S.length buf mod block <> 0 then
      invalid_arg "Views.Blocked.of_buffer: block must divide the length";
    { buf; block }

  let block t = t.block

  (* [create] is only meaningful as scratch for an existing view, so the
     functor cannot know the block size here; a 1-slot-per-element buffer
     would be wrong. We create with block 1 and let [set]/[get] adapt:
     instead, scratch for the transposition comes from [of_buffer] by
     callers (Tensor3 allocates underlying storage of len*block). To keep
     the Storage contract usable we create block-1 views. *)
  let create len = { buf = S.create len; block = 1 }

  let length t = S.length t.buf / t.block

  let get t i =
    let e = S.create t.block in
    S.blit t.buf (i * t.block) e 0 t.block;
    e

  let set t i e =
    if S.length e <> t.block then invalid_arg "Views.Blocked.set: block size";
    S.blit e 0 t.buf (i * t.block) t.block

  let blit src spos dst dpos len =
    if src.block <> dst.block then invalid_arg "Views.Blocked.blit: block size";
    S.blit src.buf (spos * src.block) dst.buf (dpos * dst.block)
      (len * src.block)

  let of_int x =
    let e = S.create 1 in
    S.set e 0 (S.of_int x);
    e

  let to_int e = S.to_int (S.get e 0)

  let equal a b =
    S.length a = S.length b
    &&
    let ok = ref true in
    for i = 0 to S.length a - 1 do
      if not (S.equal (S.get a i) (S.get b i)) then ok := false
    done;
    !ok

  let pp ppf e = Format.fprintf ppf "<block:%d>" (S.length e)
end

module Strided_blocked (S : Storage.S) = struct
  type t = { buf : S.t; off : int; stride : int; block : int; count : int }
  type elt = S.t

  let name = S.name ^ "/strided"
  let elt_bytes = S.elt_bytes (* per underlying slot; block size varies *)

  let of_buffer buf ~off ~stride ~block ~count =
    if block < 1 || count < 0 || off < 0 || stride < block then
      invalid_arg "Views.Strided_blocked.of_buffer: invalid geometry";
    if count > 0 && off + ((count - 1) * stride) + block > S.length buf then
      invalid_arg "Views.Strided_blocked.of_buffer: range out of bounds";
    { buf; off; stride; block; count }

  let block t = t.block
  let stride t = t.stride

  (* same caveat as [Blocked.create]: scratch must come from [of_buffer] *)
  let create count = { buf = S.create count; off = 0; stride = 1; block = 1; count }

  let length t = t.count
  let pos t i = t.off + (i * t.stride)

  let check t i =
    if i < 0 || i >= t.count then invalid_arg "Views.Strided_blocked: index"

  let get t i =
    check t i;
    let e = S.create t.block in
    S.blit t.buf (pos t i) e 0 t.block;
    e

  let set t i e =
    check t i;
    if S.length e <> t.block then
      invalid_arg "Views.Strided_blocked.set: block size";
    S.blit e 0 t.buf (pos t i) t.block

  let blit src spos dst dpos len =
    if src.block <> dst.block then
      invalid_arg "Views.Strided_blocked.blit: block size";
    if spos < 0 || dpos < 0 || spos + len > src.count || dpos + len > dst.count
    then invalid_arg "Views.Strided_blocked.blit: range";
    (* the gaps between block units differ between views, so copy per unit *)
    for l = 0 to len - 1 do
      S.blit src.buf (pos src (spos + l)) dst.buf (pos dst (dpos + l))
        src.block
    done

  let of_int x =
    let e = S.create 1 in
    S.set e 0 (S.of_int x);
    e

  let to_int e = S.to_int (S.get e 0)

  let equal a b =
    S.length a = S.length b
    &&
    let ok = ref true in
    for i = 0 to S.length a - 1 do
      if not (S.equal (S.get a i) (S.get b i)) then ok := false
    done;
    !ok

  let pp ppf e = Format.fprintf ppf "<block:%d>" (S.length e)
end
