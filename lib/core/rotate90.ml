module Make (S : Storage.S) = struct
  module A = Algo.Make (S)

  type buf = S.t

  let check ~m ~n buf =
    if m < 1 || n < 1 then invalid_arg "Rotate90: dimensions must be positive";
    if S.length buf <> m * n then invalid_arg "Rotate90: buffer size"

  let reverse_range buf ~lo ~hi =
    let left = ref lo and right = ref (hi - 1) in
    while !left < !right do
      let a = S.get buf !left and b = S.get buf !right in
      S.set buf !left b;
      S.set buf !right a;
      incr left;
      decr right
    done

  (* After transposing, the buffer is n x m row-major. *)

  let clockwise ~m ~n buf =
    check ~m ~n buf;
    A.transpose ~m ~n buf;
    for i = 0 to n - 1 do
      reverse_range buf ~lo:(i * m) ~hi:((i + 1) * m)
    done

  let counter_clockwise ~m ~n buf =
    check ~m ~n buf;
    A.transpose ~m ~n buf;
    (* reverse the order of the n rows, swapping whole rows via scratch *)
    let tmp = S.create m in
    for i = 0 to (n / 2) - 1 do
      let j = n - 1 - i in
      S.blit buf (i * m) tmp 0 m;
      S.blit buf (j * m) buf (i * m) m;
      S.blit tmp 0 buf (j * m) m
    done

  let half_turn ~m ~n buf =
    check ~m ~n buf;
    reverse_range buf ~lo:0 ~hi:(m * n)
end
