(** Arithmetic strength reduction for integer division and modulus (paper
    §4.4, after Warren's "Hacker's Delight" and Granlund-Montgomery).

    The transposition inner loops evaluate index equations such as Eq. 31
    that repeatedly divide by the same small divisors ([a], [b], [c], [m],
    [n]). A {!t} precomputes a fixed-point reciprocal so each division
    becomes a multiply and a shift, and each modulus one further multiply
    and subtract, amortising the reciprocal across the whole permutation. *)

type t
(** A precomputed reciprocal for one positive divisor. *)

val max_dividend : int
(** Largest dividend for which {!div} and {!modu} are exact ([2^30 - 1]).
    Matrices may therefore hold up to [2^30] elements (8 GiB of doubles);
    {!Plan.make} validates this and keeps every intermediate index
    expression within the bound. *)

val make : int -> t
(** [make d] precomputes the reciprocal of [d].
    @raise Invalid_argument if [d < 1] or [d > max_dividend]. *)

val divisor : t -> int
(** [divisor t] is the [d] passed to {!make}. *)

val div : t -> int -> int
(** [div t x] is [x / divisor t], exact for [0 <= x <= max_dividend]. *)

val modu : t -> int -> int
(** [modu t x] is [x mod divisor t], exact for [0 <= x <= max_dividend]. *)

val divmod : t -> int -> int * int
(** [divmod t x] is [(div t x, modu t x)] with one shared multiply. *)
