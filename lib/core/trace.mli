(** Step-by-step instrumentation of the C2R/R2C phases on small integer
    matrices, for documentation, the worked examples of the paper's
    Figures 1 and 2, and debugging.

    Matrices are plain [int array array] (row-major, [mat.(i).(j)]). *)

type step = {
  label : string;  (** e.g. ["column rotate"] *)
  state : int array array;  (** matrix contents after this step *)
}

type trace = {
  m : int;
  n : int;
  steps : step list;  (** initial state first, final state last *)
}

val c2r : m:int -> n:int -> int array array -> trace
(** [c2r ~m ~n mat] runs the three C2R phases on a copy of [mat] and
    records the state after each (the pre-rotation step is recorded only
    when [gcd m n > 1], matching Algorithm 1). *)

val r2c : m:int -> n:int -> int array array -> trace
(** Inverse phases, in inverse order. *)

val iota : m:int -> n:int -> int array array
(** [iota ~m ~n] is the matrix with [mat.(i).(j) = j + i*n], as in the
    paper's figures. *)

val final : trace -> int array array
(** State after the last step. *)

val pp_matrix : Format.formatter -> int array array -> unit
val pp : Format.formatter -> trace -> unit

val reinterpret : trace -> int array array
(** Reinterpret the final linearized state as the transposed [n x m]
    matrix (the "data is then reinterpreted" step of §2). *)
