(** Checked-access shadow mode: instrumented twins of the unsafe access
    paths.

    The specialized float64 engines ({!Kernels_f64}, the fused engine in
    [Xpose_cpu]) read and write through [Bigarray.Array1.unsafe_get] /
    [unsafe_set] — a wrong index silently corrupts memory. This module is
    the common vocabulary of their checked twins: every access is bounds
    verified, every blit range verified, and workspace buffers are
    verified distinct from the matrix, raising {!Violation} with the
    offending operation and index instead of corrupting. The checked
    twins are selected by tests (run the whole suite once under checking)
    and by [xpose check --shadow]. *)

exception Violation of string
(** Raised by every checked accessor on a violated precondition. The
    message names the module, the operation, and the offending index or
    range. *)

val violation : ('a, unit, string, 'b) format4 -> 'a
(** [violation fmt ...] raises {!Violation} with a formatted message. *)

val bounds : who:string -> what:string -> len:int -> int -> unit
(** [bounds ~who ~what ~len i] raises {!Violation} unless
    [0 <= i < len]. *)

val set_recorder :
  (who:string -> what:string -> len:int -> int -> unit) option -> unit
(** Install (or clear) a hook observing every single-element checked
    access before it is validated. The access-summary cross-validation
    tests use it to record the exact index trace of a checked pass and
    diff it against the concretized {!Access} summary. Not for
    production paths; the hook sees accesses from every thread. *)

val range : who:string -> what:string -> len:int -> pos:int -> count:int -> unit
(** [range ~who ~what ~len ~pos ~count] raises {!Violation} unless
    [[pos, pos + count)] lies within [[0, len)] and [count >= 0]. *)

val distinct : who:string -> what:string -> 'a -> 'a -> unit
(** [distinct ~who ~what a b] raises {!Violation} when [a] and [b] are
    physically equal — the workspace-aliasing check: scratch buffers
    handed to a pass must not be the matrix being permuted. *)

module F64 : Storage.S with type t = Storage.Float64.t and type elt = float
(** {!Storage.Float64} with every [get]/[set]/[blit] access checked: the
    storage to instantiate the element-generic engines ([Algo.Make],
    [Fused.Make], ...) with for a fully checked run. *)
