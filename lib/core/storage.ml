module type S = sig
  type t
  type elt

  val name : string
  val elt_bytes : int
  val create : int -> t
  val length : t -> int
  val get : t -> int -> elt
  val set : t -> int -> elt -> unit
  val blit : t -> int -> t -> int -> int -> unit
  val of_int : int -> elt
  val to_int : elt -> int
  val equal : elt -> elt -> bool
  val pp : Format.formatter -> elt -> unit
end

module Bigarray1 (K : sig
  type elt
  type repr

  val name : string
  val elt_bytes : int
  val kind : (elt, repr) Bigarray.kind
  val of_int : int -> elt
  val to_int : elt -> int
  val equal : elt -> elt -> bool
  val pp : Format.formatter -> elt -> unit
end) :
  S
    with type elt = K.elt
     and type t = (K.elt, K.repr, Bigarray.c_layout) Bigarray.Array1.t = struct
  type t = (K.elt, K.repr, Bigarray.c_layout) Bigarray.Array1.t
  type elt = K.elt

  let name = K.name
  let elt_bytes = K.elt_bytes
  let create len = Bigarray.Array1.create K.kind Bigarray.c_layout len
  let length = Bigarray.Array1.dim
  let get = Bigarray.Array1.get
  let set = Bigarray.Array1.set

  (* Short blits dominate the tiled algorithms (sub-row and tile moves);
     [Array1.sub] allocates two views per call, so copy small spans by
     hand. *)
  let blit src spos dst dpos len =
    if len <= 32 then
      if dst == src && dpos > spos then
        for k = len - 1 downto 0 do
          Bigarray.Array1.unsafe_set dst (dpos + k)
            (Bigarray.Array1.unsafe_get src (spos + k))
        done
      else
        for k = 0 to len - 1 do
          Bigarray.Array1.unsafe_set dst (dpos + k)
            (Bigarray.Array1.unsafe_get src (spos + k))
        done
    else
      Bigarray.Array1.blit
        (Bigarray.Array1.sub src spos len)
        (Bigarray.Array1.sub dst dpos len)

  let of_int = K.of_int
  let to_int = K.to_int
  let equal = K.equal
  let pp = K.pp
end

module Float64 = Bigarray1 (struct
  type elt = float
  type repr = Bigarray.float64_elt

  let name = "float64"
  let elt_bytes = 8
  let kind = Bigarray.float64
  let of_int = float_of_int
  let to_int = int_of_float
  let equal (a : float) b = a = b
  let pp = Format.pp_print_float
end)

module Float32 = Bigarray1 (struct
  type elt = float
  type repr = Bigarray.float32_elt

  let name = "float32"
  let elt_bytes = 4
  let kind = Bigarray.float32
  let of_int = float_of_int
  let to_int = int_of_float
  let equal (a : float) b = a = b
  let pp = Format.pp_print_float
end)

module Int64_elt = Bigarray1 (struct
  type elt = int64
  type repr = Bigarray.int64_elt

  let name = "int64"
  let elt_bytes = 8
  let kind = Bigarray.int64
  let of_int = Int64.of_int
  let to_int = Int64.to_int
  let equal = Int64.equal
  let pp ppf v = Format.fprintf ppf "%Ld" v
end)

module Int32_elt = Bigarray1 (struct
  type elt = int32
  type repr = Bigarray.int32_elt

  let name = "int32"
  let elt_bytes = 4
  let kind = Bigarray.int32
  let of_int = Int32.of_int
  let to_int = Int32.to_int
  let equal = Int32.equal
  let pp ppf v = Format.fprintf ppf "%ld" v
end)

module Int_elt = Bigarray1 (struct
  type elt = int
  type repr = Bigarray.int_elt

  let name = "int"
  let elt_bytes = 8
  let kind = Bigarray.int
  let of_int x = x
  let to_int x = x
  let equal (a : int) b = a = b
  let pp = Format.pp_print_int
end)

module Poly () = struct
  type t = Obj.t array
  type elt = Obj.t

  let name = "poly"
  let elt_bytes = Sys.word_size / 8
  let create len = Array.make len (Obj.repr 0)
  let length = Array.length
  let get = Array.get
  let set = Array.set
  let blit src spos dst dpos len = Array.blit src spos dst dpos len
  let of_int x = Obj.repr x
  let to_int x = (Obj.obj x : int)
  let equal a b = a == b || Obj.obj a = Obj.obj b
  let pp ppf v = Format.fprintf ppf "<poly:%d>" (Obj.tag v)
  let of_value v = Obj.repr v
  let to_value v = Obj.obj v
end

module Blob (Size : sig
  val elt_bytes : int
end) : S with type elt = bytes = struct
  let () =
    if Size.elt_bytes < 1 then invalid_arg "Storage.Blob: elt_bytes must be positive"

  type t = Bytes.t
  type elt = bytes

  let name = Printf.sprintf "blob%d" Size.elt_bytes
  let elt_bytes = Size.elt_bytes
  let create len = Bytes.create (len * elt_bytes)
  let length t = Bytes.length t / elt_bytes

  let get t i =
    let e = Bytes.create elt_bytes in
    Bytes.blit t (i * elt_bytes) e 0 elt_bytes;
    e

  let set t i e = Bytes.blit e 0 t (i * elt_bytes) elt_bytes

  let blit src spos dst dpos len =
    Bytes.blit src (spos * elt_bytes) dst (dpos * elt_bytes) (len * elt_bytes)

  (* Little-endian tag in the first min(8, elt_bytes) bytes; the rest is a
     deterministic pattern so corruption of any byte is caught by [equal]. *)
  let of_int x =
    let e = Bytes.create elt_bytes in
    for k = 0 to elt_bytes - 1 do
      if k < 8 then Bytes.unsafe_set e k (Char.chr ((x lsr (8 * k)) land 0xff))
      else Bytes.unsafe_set e k (Char.chr ((x + k) land 0xff))
    done;
    e

  let to_int e =
    let v = ref 0 in
    let top = min 8 elt_bytes - 1 in
    for k = top downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.get e k)
    done;
    !v

  let equal = Bytes.equal
  let pp ppf e = Format.fprintf ppf "0x%s" (Bytes.to_string e |> String.to_seq |> Seq.map (fun c -> Printf.sprintf "%02x" (Char.code c)) |> List.of_seq |> String.concat "")
end

let fill_iota (type b) (module M : S with type t = b) (buf : b) =
  for l = 0 to M.length buf - 1 do
    M.set buf l (M.of_int l)
  done
