type order = Row_major | Col_major

let pp_order ppf = function
  | Row_major -> Format.pp_print_string ppf "row-major"
  | Col_major -> Format.pp_print_string ppf "column-major"

let equal_order a b =
  match (a, b) with
  | Row_major, Row_major | Col_major, Col_major -> true
  | (Row_major | Col_major), _ -> false

let flip = function Row_major -> Col_major | Col_major -> Row_major

type dims = { m : int; n : int }

let dims ~m ~n =
  if m < 1 || n < 1 then invalid_arg "Layout.dims: dimensions must be positive";
  { m; n }

let elements d = d.m * d.n

let swap d = { m = d.n; n = d.m }

let lrm ~n i j = j + (i * n)

let irm ~n l = l / n

let jrm ~n l = l mod n

let lcm_ ~m i j = i + (j * m)

let icm ~m l = l mod m

let jcm ~m l = l / m

let s ~m ~n i j = lrm ~n i j mod m

let c ~m ~n i j = lrm ~n i j / m

let t ~m ~n i j = lcm_ ~m i j / n

let d ~m ~n i j = lcm_ ~m i j mod n

let transpose_index ~m ~n l = ((l mod n) * m) + (l / n)
