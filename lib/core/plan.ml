type t = {
  m : int;
  n : int;
  c : int;
  a : int;
  b : int;
  a_inv : int;
  b_inv : int;
  mg_m : Magic.t;
  mg_n : Magic.t;
  mg_a : Magic.t;
  mg_b : Magic.t;
  mg_c : Magic.t;
}

let make ~m ~n =
  if m < 1 || n < 1 then invalid_arg "Plan.make: dimensions must be positive";
  (* Keep every dividend fed to the fixed-point reciprocals exact: the
     largest is the helper f of Eq. 31, bounded by m*(n+1). *)
  if m * (n + 1) > Magic.max_dividend || n * (m + 1) > Magic.max_dividend then
    invalid_arg "Plan.make: matrix too large for strength-reduced indexing";
  let c = Intmath.gcd m n in
  let a = m / c and b = n / c in
  let a_inv = if b = 1 then 1 else Intmath.mmi a b in
  let b_inv = if a = 1 then 1 else Intmath.mmi b a in
  {
    m;
    n;
    c;
    a;
    b;
    a_inv;
    b_inv;
    mg_m = Magic.make m;
    mg_n = Magic.make n;
    mg_a = Magic.make a;
    mg_b = Magic.make b;
    mg_c = Magic.make c;
  }

let coprime t = t.c = 1

let scratch_elements t = if t.m > t.n then t.m else t.n

let rotate_amount t j = Magic.div t.mg_b j

let r t ~j i = Magic.modu t.mg_m (i + Magic.div t.mg_b j)

let d' t ~i j =
  Magic.modu t.mg_n (Magic.modu t.mg_m (i + Magic.div t.mg_b j) + (j * t.m))

(* Largest factor whose square stays an exact Magic dividend. *)
let sq_fits = 32768

(* Eq. 31. The helper f (§4.2) selects between two affine forms depending on
   whether the pre-rotation wrapped for this (i, j). The quotient of f by c
   is reduced mod b before multiplying by a^-1 so the product stays within
   Magic's exact range; for huge b the final reduction falls back to exact
   Euclidean mod. *)
let d'_inv t ~i j =
  let f =
    if i - Magic.modu t.mg_c j + t.c <= t.m then j + (i * (t.n - 1))
    else j + (i * (t.n - 1)) + t.m
  in
  let fq, fr = Magic.divmod t.mg_c f in
  let x = t.a_inv * Magic.modu t.mg_b fq in
  let x = if t.b <= sq_fits then Magic.modu t.mg_b x else Intmath.emod x t.b in
  x + (fr * t.b)

let s' t ~j i = Intmath.emod (j + (i * t.n) - Magic.div t.mg_a i) t.m

let p t ~j i = Magic.modu t.mg_m (i + j)

let q t i = Intmath.emod ((i * t.n) - Magic.div t.mg_a i) t.m

(* Eq. 34. The quotient (c-1+i)/c is at most a; reduce it mod a before the
   multiply for the same exactness reason as in d'_inv. *)
let q_inv t i =
  let v = Magic.div t.mg_c (t.c - 1 + i) in
  let v = if v = t.a then 0 else v in
  let x = v * t.b_inv in
  let x = if t.a <= sq_fits then Magic.modu t.mg_a x else Intmath.emod x t.a in
  x + (Magic.modu t.mg_c ((t.c - 1) * i) * t.a)

let p_inv t ~j i = Intmath.emod (i - j) t.m

let r_inv t ~j i = Intmath.emod (i - Magic.div t.mg_b j) t.m

let s'_inv t ~j i = q_inv t (Intmath.emod (i - j) t.m)

let check_internal t =
  assert (t.a * t.c = t.m);
  assert (t.b * t.c = t.n);
  assert (Intmath.gcd t.a t.b = 1);
  assert (t.b = 1 || Intmath.emod (t.a * t.a_inv) t.b = 1);
  assert (t.a = 1 || Intmath.emod (t.b * t.b_inv) t.a = 1);
  assert (Magic.divisor t.mg_m = t.m);
  assert (Magic.divisor t.mg_n = t.n)

let pp ppf t =
  Format.fprintf ppf "@[<h>plan %dx%d (c=%d a=%d b=%d a^-1=%d b^-1=%d)@]" t.m
    t.n t.c t.a t.b t.a_inv t.b_inv

module Cache = struct
  type plan = t

  type entry = {
    plan : plan;
    params : Tune_params.t;
    mutable stamp : int;
  }

  (* The key carries the tuned parameters, not just the shape: two
     callers tuning the same shape differently (another engine, another
     panel width) must not alias to one entry, or the serving path would
     run whichever configuration happened to be cached first. *)
  type key = int * int * Tune_params.t

  type t = {
    capacity : int;
    mutable clock : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
    table : (key, entry) Hashtbl.t;
    mutex : Mutex.t;
  }

  let create ?(capacity = 64) () =
    if capacity < 1 then invalid_arg "Plan.Cache.create: capacity must be >= 1";
    {
      capacity;
      clock = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      table = Hashtbl.create 32;
      mutex = Mutex.create ();
    }

  let default = create ()

  let m_hits = lazy (Xpose_obs.Metrics.counter "plan_cache.hits")
  let m_misses = lazy (Xpose_obs.Metrics.counter "plan_cache.misses")
  let m_evictions = lazy (Xpose_obs.Metrics.counter "plan_cache.evictions")

  (* Least-recently-used entry by stamp; a linear scan is fine at the
     capacities plans are cached at (the table holds tens of entries). *)
  let evict_lru t =
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.stamp -> acc
          | _ -> Some (key, e.stamp))
        t.table None
    in
    match victim with
    | Some (key, _) ->
        Hashtbl.remove t.table key;
        t.evictions <- t.evictions + 1;
        Xpose_obs.Metrics.incr (Lazy.force m_evictions)
    | None -> ()

  let get ?(cache = default) ?(params = Tune_params.default) ~m ~n () =
    let key = (m, n, params) in
    Mutex.lock cache.mutex;
    cache.clock <- cache.clock + 1;
    match Hashtbl.find_opt cache.table key with
    | Some e ->
        e.stamp <- cache.clock;
        cache.hits <- cache.hits + 1;
        Mutex.unlock cache.mutex;
        Xpose_obs.Metrics.incr (Lazy.force m_hits);
        e.plan
    | None ->
        cache.misses <- cache.misses + 1;
        Mutex.unlock cache.mutex;
        Xpose_obs.Metrics.incr (Lazy.force m_misses);
        (* Build outside the lock: [make] is the expensive part (gcd,
           modular inverses, five Magic reciprocals) and may raise. A
           racing lookup of the same shape builds twice; the table keeps
           one winner. *)
        let plan = make ~m ~n in
        Mutex.lock cache.mutex;
        (if not (Hashtbl.mem cache.table key) then begin
           if Hashtbl.length cache.table >= cache.capacity then
             evict_lru cache;
           Hashtbl.replace cache.table key
             { plan; params; stamp = cache.clock }
         end);
        Mutex.unlock cache.mutex;
        plan

  (* Every parameter variant cached for a shape, most recent first.
     The serving path uses this to recover the tuned configuration a
     hot shape last ran with without consulting the tuning DB. *)
  let cached_params ?(cache = default) ~m ~n () =
    Mutex.lock cache.mutex;
    let found =
      Hashtbl.fold
        (fun (km, kn, _) e acc ->
          if km = m && kn = n then (e.stamp, e.params) :: acc else acc)
        cache.table []
    in
    Mutex.unlock cache.mutex;
    List.sort (fun (a, _) (b, _) -> compare b a) found |> List.map snd

  (* Readers take the mutex too: the server resolves plans from several
     domains at once, and unsynchronized reads of the mutable totals are
     data races under the OCaml 5 memory model (each total is also
     updated under the lock, so a locked read is exact). *)
  let locked t f =
    Mutex.lock t.mutex;
    let v = f t in
    Mutex.unlock t.mutex;
    v

  let length t = locked t (fun t -> Hashtbl.length t.table)
  let hits t = locked t (fun t -> t.hits)
  let misses t = locked t (fun t -> t.misses)
  let evictions t = locked t (fun t -> t.evictions)

  let clear t =
    Mutex.lock t.mutex;
    Hashtbl.reset t.table;
    t.hits <- 0;
    t.misses <- 0;
    t.evictions <- 0;
    Mutex.unlock t.mutex
end
