exception Violation of string

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

let recorder :
    (who:string -> what:string -> len:int -> int -> unit) option ref =
  ref None

let set_recorder r = recorder := r

let bounds ~who ~what ~len i =
  (match !recorder with None -> () | Some r -> r ~who ~what ~len i);
  if i < 0 || i >= len then
    violation "%s: %s index %d out of bounds [0, %d)" who what i len

let range ~who ~what ~len ~pos ~count =
  if count < 0 then violation "%s: %s negative length %d" who what count;
  if pos < 0 || pos + count > len then
    violation "%s: %s range [%d, %d) outside [0, %d)" who what pos (pos + count)
      len

let distinct ~who ~what a b =
  if a == b then violation "%s: %s aliases the matrix buffer" who what

module F64 = struct
  include Storage.Float64

  let name = "float64-checked"
  let who = "Checked_access.F64"

  let get buf i =
    bounds ~who ~what:"get" ~len:(Bigarray.Array1.dim buf) i;
    Bigarray.Array1.unsafe_get buf i

  let set buf i v =
    bounds ~who ~what:"set" ~len:(Bigarray.Array1.dim buf) i;
    Bigarray.Array1.unsafe_set buf i v

  let blit src spos dst dpos len =
    range ~who ~what:"blit source" ~len:(Bigarray.Array1.dim src) ~pos:spos
      ~count:len;
    range ~who ~what:"blit destination" ~len:(Bigarray.Array1.dim dst)
      ~pos:dpos ~count:len;
    Storage.Float64.blit src spos dst dpos len
end
