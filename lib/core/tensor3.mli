(** In-place axis permutation of rank-3 tensors, composed from the 2-D
    decomposition — the natural extension of the paper's data-layout
    transformations (its AoS↔SoA conversion is the [d2]-blocks special
    case, and Sung et al.'s Array-of-Structure-of-Tiled-Array layouts
    [7] motivate the general form).

    A tensor of dimensions [(d0, d1, d2)] is stored row-major
    (last axis fastest). [permute ~perm] rearranges it in place so that
    afterwards the buffer holds the tensor with dimensions
    [(d_{p0}, d_{p1}, d_{p2})] whose element at [(a, b, c)] is the source
    element whose axis-[p0] index is [a], axis-[p1] index is [b] and
    axis-[p2] index is [c]. Auxiliary space is [O(max dim * max dim)]
    in the worst case (a blocked scratch row), still asymptotically below
    the [O(d0 d1 d2)] an out-of-place copy needs.

    The six permutations reduce to:
    - [(0,1,2)]: identity;
    - [(1,0,2)]: 2-D transpose of the [d0 x d1] matrix of [d2]-blocks;
    - [(0,2,1)]: [d0] independent [d1 x d2] transposes (batched);
    - [(2,0,1)]: 2-D transpose of the [(d0*d1) x d2] matrix;
    - [(1,2,0)]: 2-D transpose of the [d0 x (d1*d2)] matrix;
    - [(2,1,0)]: [(2,0,1)] followed by [(0,2,1)]. *)

module Make (S : Storage.S) : sig
  type buf = S.t

  val transpose_batched : batch:int -> m:int -> n:int -> buf -> unit
  (** [batch] consecutive [m x n] row-major matrices, each transposed in
      place. @raise Invalid_argument on size mismatch. *)

  val transpose_blocks : m:int -> n:int -> block:int -> buf -> unit
  (** Transpose the [m x n] matrix whose elements are [block] consecutive
      slots. @raise Invalid_argument on size mismatch. *)

  val permute :
    dims:int * int * int -> perm:int * int * int -> buf -> unit
  (** In-place axis permutation as specified above. Delegates to the
      [Xpose_permute] planner via {!Tensor_nd}: after axis fusion the
      planner recovers exactly the factorization table above, chosen by
      cost rather than hard-coded.
      @raise Invalid_argument if [perm] is not a permutation of
      [(0,1,2)], any dimension is non-positive, or the buffer length is
      not [d0*d1*d2]. *)

  val permute_direct :
    dims:int * int * int -> perm:int * int * int -> buf -> unit
  (** The original hand-written six-case factorization, kept as a
      cross-check oracle: the test suite asserts {!permute} (the planner
      path) and [permute_direct] agree on every permutation. Same
      contract as {!permute}. *)

  val permuted_dims : dims:int * int * int -> perm:int * int * int -> int * int * int
  (** Shape of the result. *)

  val permuted_index :
    dims:int * int * int -> perm:int * int * int -> int * int * int -> int
  (** [permuted_index ~dims ~perm (i0, i1, i2)] is the linear position,
      after the permutation, of the source element at [(i0, i1, i2)] —
      the specification {!permute} is tested against. *)
end
