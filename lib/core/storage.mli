(** Element-generic flat buffers.

    The paper's algorithm moves opaque elements; only their count and size
    matter. This module abstracts the buffer so one implementation of the
    algorithm serves 32-bit and 64-bit numeric matrices (bigarrays, no
    boxing), arbitrary OCaml values, and raw byte blobs of any element size
    (the Arrays-of-Structures case, where one "element" is a whole C
    struct). *)

module type S = sig
  type t
  type elt

  val name : string
  (** Human-readable instance name, e.g. ["float64"]. *)

  val elt_bytes : int
  (** Size of one element in bytes, as used by throughput accounting
      (Eq. 37). For [Poly] instances this is the machine word size. *)

  val create : int -> t
  (** [create len] allocates a buffer of [len] elements with unspecified
      contents. *)

  val length : t -> int
  val get : t -> int -> elt
  val set : t -> int -> elt -> unit

  val blit : t -> int -> t -> int -> int -> unit
  (** [blit src spos dst dpos len] copies [len] elements. *)

  val of_int : int -> elt
  (** Injection used by tests and examples to fill buffers with
      recognisable values. Total for all [int] inputs that fit the element
      type. *)

  val to_int : elt -> int
  (** Left inverse of {!of_int} for values produced by {!of_int} (within
      the element type's range). *)

  val equal : elt -> elt -> bool
  val pp : Format.formatter -> elt -> unit
end

module Float64 :
  S
    with type elt = float
     and type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Unboxed 64-bit floats (the paper's "double" experiments). The
    concrete buffer type is exposed so callers can interoperate with the
    specialized {!Kernels_f64} fast path and with other bigarray code. *)

module Float32 :
  S
    with type elt = float
     and type t = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t
(** 32-bit floats (the paper's "float" experiments). *)

module Int64_elt :
  S
    with type elt = int64
     and type t = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

module Int32_elt :
  S
    with type elt = int32
     and type t = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

module Int_elt :
  S
    with type elt = int
     and type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Native OCaml ints in a [Bigarray]; handy for exact index tests. *)

module Poly () : sig
  include S with type elt = Obj.t

  val of_value : 'a -> elt
  val to_value : elt -> 'a
end
(** Boxed OCaml values, one heap word per slot. Generative so distinct
    instantiations cannot be confused. *)

module Blob (Size : sig
  val elt_bytes : int
end) : S with type elt = bytes
(** Raw byte blobs of [Size.elt_bytes] bytes per element over one [Bytes]
    backing store: the Arrays-of-Structures representation. [get] copies
    the element out; [set] copies it in.
    @raise Invalid_argument on construction if [elt_bytes < 1]. *)

val fill_iota : (module S with type t = 'b) -> 'b -> unit
(** [fill_iota (module M) buf] sets slot [l] to [M.of_int l]. *)
