let for_all_range lo hi f =
  let rec go i = i >= hi || (f i && go (i + 1)) in
  go lo

let lemma1_periodicity (p : Plan.t) =
  let m = p.m and n = p.n and b = p.b in
  for_all_range 0 m (fun i ->
      for_all_range 0 (n - b) (fun j ->
          (i + (j * m)) mod n = (i + ((j + b) * m)) mod n))

let lemma2_injectivity (p : Plan.t) =
  let n = p.n and b = p.b in
  let seen = Array.make n false in
  let ok = ref true in
  for x = 0 to b - 1 do
    let v = x * p.m mod n in
    if seen.(v) then ok := false;
    seen.(v) <- true
  done;
  !ok

let lemma3_image (p : Plan.t) =
  let module IS = Set.Make (Int) in
  let s = ref IS.empty and t = ref IS.empty in
  for h = 0 to p.b - 1 do
    s := IS.add (h * p.m mod p.n) !s;
    t := IS.add (h * p.c) !t
  done;
  IS.equal !s !t

let transpose_perm ~m ~n l = ((l mod n) * m) + (l / n)
(* destination of the element at l; its source-side formulation used in
   Theorem 1 is the inverse *)

let theorem1_c2r_transposes (p : Plan.t) =
  let m = p.m and n = p.n in
  (* Eq. 20/21: AC2R_rm[l] = A_rm[lrm(s(i,j), c(i,j))] must equal
     A_rm[lrm(jT(l), iT(l))]. *)
  for_all_range 0 (m * n) (fun l ->
      let i = l / n and j = l mod n in
      let src = (Layout.s ~m ~n i j * n) + Layout.c ~m ~n i j in
      src = ((l mod m) * n) + (l / m))

(* The gather permutation the C2R transposition induces on linear
   indices: result[l] = source[c2r_gather l]. *)
let c2r_gather ~m ~n l =
  let i = l / n and j = l mod n in
  (Layout.s ~m ~n i j * n) + Layout.c ~m ~n i j

(* R2C gather (Eq. 12 linearized). *)
let r2c_gather ~m ~n l =
  let i = l / n and j = l mod n in
  (Layout.t ~m ~n i j * n) + Layout.d ~m ~n i j

let theorem2_swapped_dims (p : Plan.t) =
  let m = p.m and n = p.n in
  (* R2C on the swapped-dimension problem must inverse-match C2R: applying
     the C2R gather for (m, n) and then the R2C gather for the same (m, n)
     is the identity (they are inverse permutations), and the R2C gather
     with dims swapped equals the transposition of the n x m problem. *)
  for_all_range 0 (m * n) (fun l ->
      c2r_gather ~m ~n (r2c_gather ~m ~n l) = l)
  && for_all_range 0 (m * n) (fun l ->
         (* swapping m and n first, R2C transposes row-major m x n: its
            gather equals the inverse of the destination map l -> jT*... *)
         r2c_gather ~m:n ~n:m l = transpose_perm ~m:n ~n:m l)

let theorem3_bijectivity (p : Plan.t) =
  let n = p.n in
  for_all_range 0 p.m (fun i ->
      let seen = Array.make n false in
      let ok = ref true in
      for j = 0 to n - 1 do
        let x = Plan.d' p ~i j in
        if x < 0 || x >= n || seen.(x) then ok := false else seen.(x) <- true
      done;
      !ok)

let theorem3_si_l_sets (p : Plan.t) =
  let module IS = Set.Make (Int) in
  let b = p.b and c = p.c in
  for_all_range 0 p.m (fun i ->
      for_all_range 0 c (fun l ->
          let s =
            IS.of_list
              (List.init b (fun h -> Plan.d' p ~i ((l * b) + h)))
          in
          let t = IS.of_list (List.init b (fun h -> ((i + l) mod c) + (h * c))) in
          IS.equal s t))

(* Simulate the three-phase decomposition on an index array and check
   both that every intermediate step is a well-formed row-wise or
   column-wise permutation and that the composition is the monolithic
   transposition. *)
let simulate_decomposition (p : Plan.t) =
  let m = p.m and n = p.n in
  let a = Array.init (m * n) Fun.id in
  let rows_unique = ref true and cols_unique = ref true in
  (* phase 1: column pre-rotation (a column-wise permutation by
     construction) *)
  if not (Plan.coprime p) then begin
    let col = Array.make m 0 in
    for j = 0 to n - 1 do
      for i = 0 to m - 1 do
        col.(i) <- a.((Plan.r p ~j i * n) + j)
      done;
      for i = 0 to m - 1 do
        a.((i * n) + j) <- col.(i)
      done
    done
  end;
  (* phase 2: row-wise scatter by d'; uniqueness per row is Theorem 4's
     requirement *)
  let row = Array.make n (-1) in
  for i = 0 to m - 1 do
    Array.fill row 0 n (-1);
    for j = 0 to n - 1 do
      let d = Plan.d' p ~i j in
      if row.(d) <> -1 then rows_unique := false;
      row.(d) <- a.((i * n) + j)
    done;
    for j = 0 to n - 1 do
      a.((i * n) + j) <- row.(j)
    done
  done;
  (* phase 3: column-wise gather by s'; sources must be unique per column *)
  let col = Array.make m (-1) in
  let seen = Array.make m false in
  for j = 0 to n - 1 do
    Array.fill seen 0 m false;
    for i = 0 to m - 1 do
      let s = Plan.s' p ~j i in
      if seen.(s) then cols_unique := false;
      seen.(s) <- true;
      col.(i) <- a.((s * n) + j)
    done;
    for i = 0 to m - 1 do
      a.((i * n) + j) <- col.(i)
    done
  done;
  (a, !rows_unique, !cols_unique)

let theorem4_decomposable (p : Plan.t) =
  let m = p.m and n = p.n in
  let a, rows_unique, cols_unique = simulate_decomposition p in
  rows_unique && cols_unique
  && for_all_range 0 (m * n) (fun l ->
         (* element originally at l ends at transpose_perm l *)
         a.(transpose_perm ~m ~n l) = l)

let theorem5_source_rows (p : Plan.t) =
  let m = p.m and n = p.n and a = p.a and b = p.b in
  (* the proof's bound: c_j(i) lands in row-group k's rotated columns *)
  for_all_range 0 m (fun i ->
      let k = i / a in
      for_all_range 0 n (fun j ->
          let cji = (j + (i * n)) / m in
          cji >= k * b && cji < (k + 1) * b))
  &&
  (* and the resulting algorithm completes the transpose *)
  let a', _, _ = simulate_decomposition p in
  for_all_range 0 (m * n) (fun l -> a'.(transpose_perm ~m ~n l) = l)

let theorem6_work_and_space (p : Plan.t) =
  let m = p.m and n = p.n in
  let touches = ref 0 in
  if not (Plan.coprime p) then begin
    (* columns whose rotation amount is zero are not touched *)
    for j = 0 to n - 1 do
      if Plan.rotate_amount p j mod m <> 0 then touches := !touches + (2 * m)
    done
  end;
  touches := !touches + (2 * m * n) (* row shuffle *);
  touches := !touches + (2 * m * n) (* column shuffle *);
  (!touches, Plan.scratch_elements p)

let theorem7_linearization_free (p : Plan.t) =
  let m = p.m and n = p.n in
  (* Direct executable form: apply the C2R gather using column-major
     indexing (Eq. 28) to an index array and compare with the row-major
     application (Theorem 1's permutation). *)
  let by_cm = Array.make (m * n) 0 in
  for l = 0 to (m * n) - 1 do
    let i = Layout.icm ~m l and j = Layout.jcm ~m l in
    by_cm.(l) <- Layout.lcm_ ~m (Layout.s ~m ~n i j) (Layout.c ~m ~n i j)
  done;
  let by_rm = Array.init (m * n) (fun l -> c2r_gather ~m ~n l) in
  (* both must realize the same permutation: B[l] = A[g(l)] with the same
     final content, i.e. the induced gathers agree *)
  by_cm = by_rm

let rotation_cycle_structure ~m ~r =
  if m < 1 then invalid_arg "Theory.rotation_cycle_structure";
  let r = Intmath.emod r m in
  let z = Intmath.gcd m r in
  let z = if r = 0 then m else z in
  let len = m / z in
  let covered = Array.make m false in
  let ok = ref true in
  for y = 0 to z - 1 do
    for x = 0 to len - 1 do
      let v = (y + (x * (m - r))) mod m in
      if covered.(v) then ok := false;
      covered.(v) <- true
    done;
    (* and the cycle is closed: advancing len times returns to y *)
    if (y + (len * (m - r))) mod m <> y then ok := false
  done;
  !ok && Array.for_all Fun.id covered

let q_cycle_bound (p : Plan.t) =
  let m = p.m in
  let visited = Array.make m false in
  let nontrivial = ref 0 in
  for i0 = 0 to m - 1 do
    if not visited.(i0) then begin
      visited.(i0) <- true;
      let len = ref 1 in
      let i = ref (Plan.q p i0) in
      while !i <> i0 do
        visited.(!i) <- true;
        incr len;
        i := Plan.q p !i
      done;
      if !len > 1 then incr nontrivial
    end
  done;
  !nontrivial <= m / 2

let check_all (p : Plan.t) =
  let touches, scratch = theorem6_work_and_space p in
  [
    ("lemma1_periodicity", lemma1_periodicity p);
    ("lemma2_injectivity", lemma2_injectivity p);
    ("lemma3_image", lemma3_image p);
    ("theorem1_c2r_transposes", theorem1_c2r_transposes p);
    ("theorem2_swapped_dims", theorem2_swapped_dims p);
    ("theorem3_bijectivity", theorem3_bijectivity p);
    ("theorem3_si_l_sets", theorem3_si_l_sets p);
    ("theorem4_decomposable", theorem4_decomposable p);
    ("theorem5_source_rows", theorem5_source_rows p);
    ("theorem6_work_bound", touches <= 6 * p.m * p.n);
    ("theorem6_space_bound", scratch = max p.m p.n);
    ("theorem7_linearization_free", theorem7_linearization_free p);
    ("q_cycle_bound", q_cycle_bound p);
  ]
