(** Tuned execution parameters for one transpose shape.

    A value of this type is everything the autotuner is allowed to
    choose: which engine runs the shape, the fused column-panel width,
    how a batch splits across pool lanes, and the out-of-core window
    budget. It is deliberately a plain immutable record of scalars so it
    can serve as (part of) a {!Plan.Cache} key and round-trip through
    the tuning DB without a custom hash.

    The type lives in [Xpose_core] — below every engine — so the plan
    cache, the engines, and the race analyzer can all speak it without
    depending on the tuner. *)

type engine = Kernels | Cache | Fused | Ooc
(** The candidate engines: the unrolled kernel sequence, the
    cache-aware sweeps, the fused-panel engine, and the out-of-core
    windowed engine. *)

type batch_split =
  | Auto
      (** The engine's historical rule: matrix-parallel when the batch
          has at least one matrix per pool lane, panel-parallel
          otherwise. *)
  | Matrix_parallel  (** Always fan matrices across lanes. *)
  | Panel_parallel  (** Always go panel-parallel inside each matrix. *)
  | Hybrid of int
      (** [Hybrid t]: matrix-parallel when the batch holds at least [t]
          matrices, panel-parallel below that. [Auto] is [Hybrid lanes]
          with [lanes] resolved at dispatch time. *)

type kernel_tier =
  | Scalar  (** The historical element-at-a-time panel loops. *)
  | Mk8  (** 8x8 in-register blocked micro-kernel tiles. *)
  | Mk16  (** 16x16 in-register blocked micro-kernel tiles. *)

type t = {
  engine : engine;
  panel_width : int;
  batch_split : batch_split;
  window_bytes : int option;
      (** Out-of-core residency budget; [None] for in-RAM engines. *)
  kernel_tier : kernel_tier;
      (** Inner-loop tier of the fused panel passes; [Scalar] for every
          other engine. *)
}

val default : t
(** The pre-tuner behaviour: fused engine, width-16 panels, [Auto]
    batch split, no window override. Every dispatch path falls back to
    this when the tuning DB has no entry. *)

val supported_widths : int list
(** Panel widths the tuner searches and the check layer proves:
    [[8; 16; 32; 64]]. *)

val default_panel_width : int
(** 16 — a float64 sub-row spanning a typical 128-byte line pair. *)

val supported_tiers : kernel_tier list
(** Kernel tiers the tuner searches and the check layer proves:
    [[Scalar; Mk8; Mk16]]. *)

val tier_block : kernel_tier -> int
(** Square block edge of the tier's micro-kernel tile: 1, 8 or 16. *)

val engine_to_string : engine -> string
val engine_of_string : string -> engine option
val split_to_string : batch_split -> string
val split_of_string : string -> batch_split option
val tier_to_string : kernel_tier -> string
val tier_of_string : string -> kernel_tier option

val to_string : t -> string
(** Compact display form, e.g. ["fused/w32/hybrid:4"]; a non-scalar
    kernel tier appends ["/mk8"] or ["/mk16"]. *)

val equal : t -> t -> bool

val validate : t -> t
(** Identity on well-formed values.
    @raise Invalid_argument on a non-positive width or window, or a
    kernel tier whose block edge exceeds the panel width. *)
