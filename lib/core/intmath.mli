(** Integer arithmetic used throughout the transposition equations.

    All modular operations are Euclidean: results lie in [[0, m)] for a
    positive modulus [m], even for negative arguments. The paper's index
    equations (Eqs. 22-36) freely subtract terms, so Euclidean semantics
    are load-bearing. *)

val emod : int -> int -> int
(** [emod x m] is the Euclidean remainder of [x] by [m > 0]: the unique
    [r] in [[0, m)] with [x = q*m + r]. *)

val ediv : int -> int -> int
(** [ediv x m] is the Euclidean quotient matching {!emod}:
    [x = ediv x m * m + emod x m]. *)

val gcd : int -> int -> int
(** [gcd a b] is the greatest common divisor of [a >= 0] and [b >= 0];
    [gcd 0 0 = 0]. *)

val egcd : int -> int -> int * int * int
(** [egcd a b] is [(g, u, v)] with [g = gcd a b] and [a*u + b*v = g]. *)

val mmi : int -> int -> int
(** [mmi x y] is the modular multiplicative inverse of [x] modulo [y], for
    coprime [x] and [y]: [(x * mmi x y) mod y = 1], result in [[0, y)].
    @raise Invalid_argument if [x] and [y] are not coprime or [y < 1]. *)

val is_coprime : int -> int -> bool
(** [is_coprime a b] is [gcd a b = 1]. *)

val ceil_log2 : int -> int
(** [ceil_log2 x] is the least [k] with [2^k >= x], for [x >= 1]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [ceil (a / b)] for [a >= 0], [b > 0]. *)

val lcm : int -> int -> int
(** [lcm a b] is the least common multiple; [lcm 0 _ = 0]. *)
