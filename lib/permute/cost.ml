type arith = {
  transpose_touches : m:int -> n:int -> int;
  transpose_scratch : m:int -> n:int -> int;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let theorem6_arith =
  let transpose_touches ~m ~n =
    if m <= 1 || n <= 1 then 0
    else begin
      let c = gcd m n in
      let rotate = if c = 1 then 0 else 2 * m * (n - (n / c)) in
      rotate + (4 * m * n)
    end
  in
  let transpose_scratch ~m ~n = if m <= 1 || n <= 1 then 0 else max m n in
  { transpose_touches; transpose_scratch }

type t = { passes : int; touches : int; scratch : int; score : float }

let zero = { passes = 0; touches = 0; scratch = 0; score = 0.0 }
let line_elems = 8.0

let pass_cost arith (p : Decompose.pass) =
  let m = max p.rows p.cols and n = min p.rows p.cols in
  let touches = p.batch * p.block * arith.transpose_touches ~m ~n in
  let scratch = p.block * arith.transpose_scratch ~m ~n in
  let score =
    float_of_int touches *. (1.0 +. ((line_elems -. 1.0) /. float_of_int p.block))
  in
  (touches, scratch, score)

let of_passes ?(arith = theorem6_arith) passes =
  List.fold_left
    (fun acc p ->
      let touches, scratch, score = pass_cost arith p in
      {
        passes = acc.passes + 1;
        touches = acc.touches + touches;
        scratch = max acc.scratch scratch;
        score = acc.score +. score;
      })
    zero passes

let compare a b =
  let c = Float.compare a.score b.score in
  if c <> 0 then c
  else
    let c = Int.compare a.passes b.passes in
    if c <> 0 then c
    else
      let c = Int.compare a.scratch b.scratch in
      if c <> 0 then c else Int.compare a.touches b.touches

let pp ppf t =
  Format.fprintf ppf
    "%d pass%s, %d element touches, %d scratch elements, score %.1f" t.passes
    (if t.passes = 1 then "" else "es")
    t.touches t.scratch t.score
