(** Cost-model-driven planning of in-place rank-N axis permutations.

    The pipeline (TTC- and GenTT-style, built on the paper's 2-D
    decomposition as the only data-movement primitive):

    + {!Shape.normalize} the problem — drop size-1 axes and fuse axis
      runs that stay adjacent, so e.g. the rank-3 permutation [(2,0,1)]
      collapses to a single flat 2-D transpose;
    + {!Decompose.candidates} — enumerate every minimal-length
      factorization into batched/blocked/flat transpose passes (at most
      2 passes for normalized rank 3, at most 3 for ranks 4-5);
    + {!Cost} — price each candidate by Theorem 6 traffic, contiguity
      and scratch, and keep the cheapest.

    Execution is separate ({!Exec}, [Xpose_core.Tensor_nd],
    [Xpose_cpu.Par_permute]): a {!plan} is pure data and can be built
    once, inspected ({!pp_plan}) and reused across buffers. *)

type plan = {
  dims : int array;
  perm : int array;
  normalized : Shape.normalized;
  steps : Decompose.step list;  (** chosen passes, in execution order *)
  cost : Cost.t;
}

val plan :
  ?arith:Cost.arith -> ?limit:int -> dims:int array -> perm:int array -> unit -> plan
(** The cheapest plan. [arith] defaults to {!Cost.theorem6_arith};
    [limit] caps the candidate enumeration (default 64).
    @raise Invalid_argument on an invalid shape/permutation pair. *)

val candidates :
  ?arith:Cost.arith ->
  ?limit:int ->
  dims:int array ->
  perm:int array ->
  unit ->
  plan list
(** Every (deduplicated) minimal-length candidate, cheapest first.
    [plan] is the head of this list. *)

val passes : plan -> Decompose.pass list
val pp_plan : Format.formatter -> plan -> unit

(** {1 Specification re-exports}

    The oracle the execution layers and the fuzzer test against. *)

val permuted_dims : dims:int array -> perm:int array -> int array
val permuted_index : dims:int array -> perm:int array -> int array -> int
