let rank = Array.length
let nelems dims = Array.fold_left ( * ) 1 dims

let is_permutation perm =
  let r = Array.length perm in
  let seen = Array.make (max r 1) false in
  try
    Array.iter
      (fun p ->
        if p < 0 || p >= r || seen.(p) then raise Exit;
        seen.(p) <- true)
      perm;
    true
  with Exit -> false

let validate ~dims ~perm =
  if Array.length perm <> Array.length dims then
    invalid_arg "Shape.validate: perm and dims must have the same rank";
  if Array.exists (fun d -> d < 1) dims then
    invalid_arg "Shape.validate: dimensions must be positive";
  if not (is_permutation perm) then
    invalid_arg "Shape.validate: perm is not a permutation of the axes"

let identity r = Array.init r Fun.id

let inverse perm =
  let inv = Array.make (Array.length perm) 0 in
  Array.iteri (fun k p -> inv.(p) <- k) perm;
  inv

let compose ~first ~then_ = Array.map (Array.get first) then_
let permuted_dims ~dims ~perm = Array.map (Array.get dims) perm

let linear_index ~dims idx =
  if Array.length idx <> Array.length dims then
    invalid_arg "Shape.linear_index: rank mismatch";
  let l = ref 0 in
  Array.iteri
    (fun ax i ->
      if i < 0 || i >= dims.(ax) then
        invalid_arg "Shape.linear_index: index out of range";
      l := (!l * dims.(ax)) + i)
    idx;
  !l

let multi_index ~dims l =
  let r = rank dims in
  let idx = Array.make r 0 in
  let rem = ref l in
  for ax = r - 1 downto 0 do
    idx.(ax) <- !rem mod dims.(ax);
    rem := !rem / dims.(ax)
  done;
  idx

let permuted_index ~dims ~perm idx =
  validate ~dims ~perm;
  let pidx = Array.map (fun p -> idx.(p)) perm in
  linear_index ~dims:(permuted_dims ~dims ~perm) pidx

type normalized = {
  dims : int array;
  perm : int array;
  groups : int array array;
}

let normalize ~dims ~perm =
  validate ~dims ~perm;
  let r = rank dims in
  (* 1. keep only axes of size > 1; relabel them 0.. in source order *)
  let kept = ref [] in
  for i = r - 1 downto 0 do
    if dims.(i) > 1 then kept := i :: !kept
  done;
  let kept = Array.of_list !kept in
  let label = Array.make (max r 1) (-1) in
  Array.iteri (fun k i -> label.(i) <- k) kept;
  let sperm =
    Array.of_list
      (List.filter_map
         (fun p -> if r > 0 && label.(p) >= 0 then Some label.(p) else None)
         (Array.to_list perm))
  in
  let sr = Array.length kept in
  if sr = 0 then { dims = [||]; perm = [||]; groups = [||] }
  else begin
    (* 2. maximal runs of source axes that stay consecutive, in order, in
       the permuted layout: each run moves as one contiguous unit *)
    let run_starts = ref [ 0 ] in
    for k = 1 to sr - 1 do
      if sperm.(k) <> sperm.(k - 1) + 1 then run_starts := k :: !run_starts
    done;
    let starts = Array.of_list (List.rev !run_starts) in
    let nruns = Array.length starts in
    let run_len t =
      (if t = nruns - 1 then sr else starts.(t + 1)) - starts.(t)
    in
    (* number the fused axes by source position, not output position *)
    let by_input = Array.init nruns Fun.id in
    Array.sort (fun t u -> compare sperm.(starts.(t)) sperm.(starts.(u))) by_input;
    let group_of_run = Array.make nruns 0 in
    Array.iteri (fun g t -> group_of_run.(t) <- g) by_input;
    let ndims = Array.make nruns 1 in
    let groups = Array.make nruns [||] in
    Array.iteri
      (fun g t ->
        let s = starts.(t) in
        let members = Array.init (run_len t) (fun h -> kept.(sperm.(s + h))) in
        groups.(g) <- members;
        ndims.(g) <- Array.fold_left (fun acc ax -> acc * dims.(ax)) 1 members)
      by_input;
    let nperm = Array.init nruns (fun t -> group_of_run.(t)) in
    { dims = ndims; perm = nperm; groups }
  end

let pp_dims ppf dims =
  if Array.length dims = 0 then Format.pp_print_string ppf "scalar"
  else
    Array.iteri
      (fun i d ->
        if i > 0 then Format.pp_print_char ppf 'x';
        Format.pp_print_int ppf d)
      dims

let pp_perm ppf perm =
  Format.pp_print_char ppf '(';
  Array.iteri
    (fun i p ->
      if i > 0 then Format.pp_print_char ppf ',';
      Format.pp_print_int ppf p)
    perm;
  Format.pp_print_char ppf ')'
