module type PRIMITIVES = sig
  type buf

  val length : buf -> int
  val transpose : batch:int -> rows:int -> cols:int -> block:int -> buf -> unit
end

module Make (P : PRIMITIVES) = struct
  (* Each plan pass gets a ["plan"] span priced by the same Theorem-6
     arithmetic the planner scored it with; the 2-D ["pass"] spans the
     primitive opens underneath nest inside it in the trace. The span
     name renders the pass (e.g. [b=3 r2c 64x48 blk=8]), so it is only
     built when the tracer is recording. *)
  let run_pass (p : Decompose.pass) buf =
    if Decompose.elems p <> P.length buf then
      invalid_arg "Exec.run_passes: pass size does not match the buffer";
    let run () =
      P.transpose ~batch:p.batch ~rows:p.rows ~cols:p.cols ~block:p.block buf
    in
    if Xpose_obs.Tracer.enabled () then begin
      let big = max p.rows p.cols and small = min p.rows p.cols in
      let pred =
        p.batch * p.block
        * Cost.theorem6_arith.transpose_touches ~m:big ~n:small
      in
      Xpose_obs.Tracer.with_span ~cat:"plan"
        ~args:(fun () ->
          Xpose_obs.Tracer.
            [
              ("batch", Int p.batch);
              ("rows", Int p.rows);
              ("cols", Int p.cols);
              ("block", Int p.block);
              ("pred_touches", Int pred);
            ])
        (Format.asprintf "%a" Decompose.pp_pass p)
        run
    end
    else run ()

  let run_passes passes buf =
    List.iter (fun p -> run_pass p buf) passes
end
