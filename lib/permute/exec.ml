module type PRIMITIVES = sig
  type buf

  val length : buf -> int
  val transpose : batch:int -> rows:int -> cols:int -> block:int -> buf -> unit
end

module Make (P : PRIMITIVES) = struct
  let run_passes passes buf =
    List.iter
      (fun (p : Decompose.pass) ->
        if Decompose.elems p <> P.length buf then
          invalid_arg "Exec.run_passes: pass size does not match the buffer";
        P.transpose ~batch:p.batch ~rows:p.rows ~cols:p.cols ~block:p.block buf)
      passes
end
