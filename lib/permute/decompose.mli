(** Factoring an axis permutation into in-place primitive passes.

    One pass views the buffer as a [batch x rows x cols x block] row-major
    tensor and swaps the middle two axes — i.e. for each of the [batch]
    contiguous slices it transposes, in place, the [rows x cols] matrix
    whose elements are [block] consecutive slots. This single primitive
    specializes to all three existing kernels:

    - [batch = 1, block = 1]: a plain 2-D transpose of the flattened
      matrix ([Tensor3.transpose_flat]);
    - [block = 1]: a batched 2-D transpose ([Tensor3.transpose_batched]);
    - [batch = 1]: a block transpose ([Tensor3.transpose_blocks]).

    On the axis order, a pass is the exchange of two adjacent runs of
    axes — a "block transposition" in the sorting-by-transpositions
    sense. The move set contains every adjacent-axis swap, so it
    generates the full symmetric group: any permutation is reachable,
    and the known transposition diameters guarantee at most 2 passes for
    rank 3, and at most 3 for ranks 4 and 5, after axis fusion. *)

type pass = {
  batch : int;  (** leading axes left untouched *)
  rows : int;   (** size of the first swapped run *)
  cols : int;   (** size of the second swapped run *)
  block : int;  (** trailing axes left untouched (contiguous element block) *)
}

type kind = Flat | Batched | Blocks | Batched_blocks

val kind : pass -> kind
val elems : pass -> int
(** [batch * rows * cols * block]: the buffer size the pass expects. *)

val pp_pass : Format.formatter -> pass -> unit
(** E.g. ["flat transpose 6x4"], ["5 x batched transpose 3x7"],
    ["block transpose 3x5 (block 4)"]. *)

type move = { i : int; j : int; k : int }
(** Exchange axis runs [[i, j)] and [[j, k)] of the current layout;
    requires [0 <= i < j < k <= rank]. *)

val moves : rank:int -> move list
(** All valid moves at the given rank, in a fixed deterministic order. *)

val apply_move : int array -> move -> int array
(** The axis order after the move. *)

val pass_of_move : dims:int array -> order:int array -> move -> pass
(** Concrete pass sizes for a move applied to a tensor whose current
    memory layout is [order] (an array of axis ids into [dims]). *)

type step = { pass : pass; order : int array }
(** One planned pass and the axis layout it leaves behind. *)

val candidates : ?limit:int -> dims:int array -> perm:int array -> unit -> step list list
(** All minimal-length pass sequences that turn the identity layout into
    [perm], capped at [limit] (default 64) sequences. [dims] and [perm]
    should be normalized ({!Shape.normalize}); the identity (or rank
    [<= 1]) yields [[[]]] — zero passes. For rank [<= 7] the sequences
    come from an exhaustive breadth-first search of the move graph; above
    that a constructive placement fallback returns a single sequence of
    at most [rank - 1] passes. *)
