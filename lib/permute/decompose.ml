type pass = { batch : int; rows : int; cols : int; block : int }
type kind = Flat | Batched | Blocks | Batched_blocks

let kind p =
  match (p.batch, p.block) with
  | 1, 1 -> Flat
  | _, 1 -> Batched
  | 1, _ -> Blocks
  | _, _ -> Batched_blocks

let elems p = p.batch * p.rows * p.cols * p.block

let pp_pass ppf p =
  match kind p with
  | Flat -> Format.fprintf ppf "flat transpose %dx%d" p.rows p.cols
  | Batched ->
      Format.fprintf ppf "%d x batched transpose %dx%d" p.batch p.rows p.cols
  | Blocks ->
      Format.fprintf ppf "block transpose %dx%d (block %d)" p.rows p.cols
        p.block
  | Batched_blocks ->
      Format.fprintf ppf "%d x block transpose %dx%d (block %d)" p.batch
        p.rows p.cols p.block

type move = { i : int; j : int; k : int }

let moves ~rank =
  let acc = ref [] in
  for i = rank - 2 downto 0 do
    for j = rank - 1 downto i + 1 do
      for k = rank downto j + 1 do
        acc := { i; j; k } :: !acc
      done
    done
  done;
  !acc

let apply_move order { i; j; k } =
  let r = Array.length order in
  Array.concat
    [
      Array.sub order 0 i;
      Array.sub order j (k - j);
      Array.sub order i (j - i);
      Array.sub order k (r - k);
    ]

let pass_of_move ~dims ~order { i; j; k } =
  let r = Array.length order in
  let prod lo hi =
    let p = ref 1 in
    for t = lo to hi - 1 do
      p := !p * dims.(order.(t))
    done;
    !p
  in
  { batch = prod 0 i; rows = prod i j; cols = prod j k; block = prod k r }

type step = { pass : pass; order : int array }

(* Beyond this rank the breadth-first search over all rank! layouts gets
   expensive; fall back to constructive placement. *)
let search_rank_limit = 7

let constructive ~dims ~perm =
  let r = Array.length perm in
  let cur = ref (Shape.identity r) in
  let steps = ref [] in
  for p = 0 to r - 1 do
    if !cur.(p) <> perm.(p) then begin
      let q = ref p in
      while !cur.(!q) <> perm.(p) do
        incr q
      done;
      let m = { i = p; j = !q; k = !q + 1 } in
      let pass = pass_of_move ~dims ~order:!cur m in
      cur := apply_move !cur m;
      steps := { pass; order = !cur } :: !steps
    end
  done;
  List.rev !steps

let candidates ?(limit = 64) ~dims ~perm () =
  let r = Array.length perm in
  let start = Shape.identity r in
  if r <= 1 || perm = start then [ [] ]
  else if r > search_rank_limit then [ constructive ~dims ~perm ]
  else begin
    (* Distances to the target layout, by BFS from [perm]. The move set
       is closed under inversion (the inverse of swapping runs X,Y is
       swapping Y,X, also a move), so distances are symmetric and a
       search from the target serves paths from the start. *)
    let key = Array.to_list in
    let dist : (int list, int) Hashtbl.t = Hashtbl.create 97 in
    Hashtbl.add dist (key perm) 0;
    let q = Queue.create () in
    Queue.add perm q;
    let mvs = moves ~rank:r in
    while (not (Hashtbl.mem dist (key start))) && not (Queue.is_empty q) do
      let o = Queue.pop q in
      let d = Hashtbl.find dist (key o) in
      List.iter
        (fun m ->
          let o' = apply_move o m in
          if not (Hashtbl.mem dist (key o')) then begin
            Hashtbl.add dist (key o') (d + 1);
            Queue.add o' q
          end)
        mvs
    done;
    let d0 =
      match Hashtbl.find_opt dist (key start) with
      | Some d -> d
      | None -> assert false (* the moves generate the symmetric group *)
    in
    (* enumerate every path that walks the distance down to 0 *)
    let results = ref [] and count = ref 0 in
    let rec go order d acc =
      if !count >= limit then ()
      else if d = 0 then begin
        results := List.rev acc :: !results;
        incr count
      end
      else
        List.iter
          (fun m ->
            let o' = apply_move order m in
            match Hashtbl.find_opt dist (key o') with
            | Some d' when d' = d - 1 && !count < limit ->
                let pass = pass_of_move ~dims ~order m in
                go o' (d - 1) ({ pass; order = o' } :: acc)
            | _ -> ())
          mvs
    in
    go start d0 [];
    List.rev !results
  end
