(** Executing a planned pass sequence.

    [Xpose_permute] is dependency-free, so it cannot name
    [Xpose_core.Storage] directly; instead the executor is a functor over
    the one primitive the plans are built from, and the storage-generic
    implementations live above:

    - [Xpose_core.Tensor_nd.Make] supplies the serial primitive
      (slice/blocked views over any [Storage.S] instance driving the
      paper's C2R/R2C kernels);
    - [Xpose_cpu.Par_permute.Make] supplies a [Pool]-parallel one. *)

module type PRIMITIVES = sig
  type buf

  val length : buf -> int

  val transpose : batch:int -> rows:int -> cols:int -> block:int -> buf -> unit
  (** In place: [buf], viewed as a [batch x rows x cols x block] row-major
      tensor, becomes the same data viewed as [batch x cols x rows x block]
      (each [rows x cols] matrix of [block]-element units transposed). *)
end

module Make (P : PRIMITIVES) : sig
  val run_passes : Decompose.pass list -> P.buf -> unit
  (** Run the passes in order.
      @raise Invalid_argument if a pass's [elems] does not match the
      buffer length. *)
end
