type plan = {
  dims : int array;
  perm : int array;
  normalized : Shape.normalized;
  steps : Decompose.step list;
  cost : Cost.t;
}

let passes plan = List.map (fun s -> s.Decompose.pass) plan.steps

let candidates ?arith ?limit ~dims ~perm () =
  Shape.validate ~dims ~perm;
  let normalized = Shape.normalize ~dims ~perm in
  let seqs =
    Decompose.candidates ?limit ~dims:normalized.Shape.dims
      ~perm:normalized.Shape.perm ()
  in
  (* distinct move sequences can coincide numerically when axis sizes
     repeat; keep one of each *)
  let seen = Hashtbl.create 16 in
  let plans =
    List.filter_map
      (fun steps ->
        let ps = List.map (fun s -> s.Decompose.pass) steps in
        if Hashtbl.mem seen ps then None
        else begin
          Hashtbl.add seen ps ();
          Some
            { dims; perm; normalized; steps; cost = Cost.of_passes ?arith ps }
        end)
      seqs
  in
  List.stable_sort (fun a b -> Cost.compare a.cost b.cost) plans

let plan ?arith ?limit ~dims ~perm () =
  match candidates ?arith ?limit ~dims ~perm () with
  | p :: _ -> p
  | [] -> assert false (* candidates always yields at least [[]] *)

let pp_plan ppf plan =
  Format.fprintf ppf "permute %a by %a -> %a@." Shape.pp_dims plan.dims
    Shape.pp_perm plan.perm Shape.pp_dims
    (Shape.permuted_dims ~dims:plan.dims ~perm:plan.perm);
  let n = plan.normalized in
  Format.fprintf ppf "normalized: %a by %a@." Shape.pp_dims n.Shape.dims
    Shape.pp_perm n.Shape.perm;
  if plan.steps = [] then
    Format.fprintf ppf "identity after axis fusion: nothing to move@."
  else
    List.iteri
      (fun i s ->
        Format.fprintf ppf "pass %d: %a@." (i + 1) Decompose.pp_pass
          s.Decompose.pass)
      plan.steps;
  Format.fprintf ppf "predicted: %a@." Cost.pp plan.cost

let permuted_dims = Shape.permuted_dims
let permuted_index = Shape.permuted_index
