(** Rank-N shape algebra for row-major tensors.

    Conventions used throughout the permutation subsystem:

    - a shape is an [int array] of positive dimensions, last axis fastest
      (row-major);
    - a permutation [perm] maps {e output} axes to {e source} axes: after
      permuting, output axis [k] carries source axis [perm.(k)], so the
      result has dimensions [permuted_dims ~dims ~perm] — the same
      convention as [Xpose_core.Tensor3] and NumPy's [transpose].

    Everything here is pure index arithmetic: this module (and the whole
    [Xpose_permute] library) has no dependencies, which is what lets
    [Xpose_core.Tensor3] delegate to the planner without a cycle. *)

val rank : int array -> int
(** Number of axes. *)

val nelems : int array -> int
(** Product of the dimensions ([1] for rank 0). *)

val is_permutation : int array -> bool
(** Whether the array is a permutation of [0 .. length - 1]. *)

val validate : dims:int array -> perm:int array -> unit
(** @raise Invalid_argument if ranks differ, a dimension is non-positive,
    or [perm] is not a permutation of the axes. *)

val identity : int -> int array
(** [identity r] is [[|0; 1; ...; r-1|]]. *)

val inverse : int array -> int array
(** [inverse perm] undoes [perm]: permuting by [perm] and then by
    [inverse perm] restores the original axis order. *)

val compose : first:int array -> then_:int array -> int array
(** [compose ~first ~then_] is the single permutation equivalent to
    permuting by [first] and then by [then_]. *)

val permuted_dims : dims:int array -> perm:int array -> int array
(** Shape of the permuted tensor: [Array.map (Array.get dims) perm]. *)

val linear_index : dims:int array -> int array -> int
(** Row-major linearization of a multi-index.
    @raise Invalid_argument on rank mismatch or out-of-range entries. *)

val multi_index : dims:int array -> int -> int array
(** Inverse of {!linear_index}. *)

val permuted_index : dims:int array -> perm:int array -> int array -> int
(** [permuted_index ~dims ~perm idx] is the linear position, after the
    permutation, of the source element at multi-index [idx] — the
    specification every in-place execution is tested against (the rank-N
    generalization of [Tensor3.permuted_index]). *)

type normalized = {
  dims : int array;  (** fused dimensions, all [> 1] *)
  perm : int array;  (** permutation of the fused axes *)
  groups : int array array;
      (** [groups.(k)]: the original axes fused into normalized input
          axis [k], in ascending order (size-1 axes omitted) *)
}
(** A permutation problem with the trivial structure removed. *)

val normalize : dims:int array -> perm:int array -> normalized
(** Drop size-1 axes (they occupy no stride, so moving them is free) and
    fuse maximal runs of axes that are adjacent, in the same order, both
    in the source and in the permuted layout (such a run moves as one
    contiguous unit, so it acts as a single axis of the product size).
    The identity permutation normalizes to rank [<= 1]; a normalized
    permutation of rank [>= 2] has no fixed structure left to exploit,
    so every pass the planner emits does real data movement. *)

val pp_dims : Format.formatter -> int array -> unit
(** ["2x3x4"]. Rank 0 prints as ["scalar"]. *)

val pp_perm : Format.formatter -> int array -> unit
(** ["(1,2,0)"]. *)
