(** Cost model for candidate pass sequences.

    Every pass runs the paper's decomposed 2-D transposition over the
    whole buffer, so the dominant term is memory traffic: the element
    touches of Theorem 6 (at most [6mn] reads+writes per transpose),
    multiplied by the batch count and the block width. Two corrections
    discriminate between sequences of equal pass count:

    - {e contiguity}: a pass that moves [block]-sized units amortizes its
      traffic over whole cache lines, while a [block = 1] pass pays a
      full line per element in the worst case — modelled as a
      [1 + (line - 1)/block] multiplier on the touches;
    - {e scratch}: the per-pass auxiliary space is
      [block * max rows cols] elements (Theorem 6's bound applied to
      block elements); the model reports the maximum over the passes and
      uses it only to break ties.

    The arithmetic is injected via {!arith} so higher layers can feed the
    exact [Plan]/[Theory] quantities of [xpose_core]
    ([Xpose_core.Tensor_nd.plan_arith] does exactly that); the default
    {!theorem6_arith} is a pure restatement of the same Theorem 6 count,
    asserted equal to the measured [Theory.theorem6_work_and_space] in
    the test suite. *)

type arith = {
  transpose_touches : m:int -> n:int -> int;
      (** Element reads+writes of one in-place [m x n] transpose, with
          [m >= n] (the orientation the executor picks). *)
  transpose_scratch : m:int -> n:int -> int;
      (** Scratch elements of one in-place [m x n] transpose. *)
}

val theorem6_arith : arith
(** Theorem 6 in closed form: [4mn] for the row and column shuffles,
    plus [2m(n - n/c)] pre-rotation touches when [c = gcd(m,n) > 1]
    (columns whose rotation amount is zero are not touched), and
    [max m n] scratch. *)

type t = {
  passes : int;  (** primitive passes *)
  touches : int;  (** total element reads+writes across all passes *)
  scratch : int;  (** peak scratch elements of any single pass *)
  score : float;  (** the comparable figure of merit (lower is better) *)
}

val zero : t
(** The cost of doing nothing (the fused identity). *)

val line_elems : float
(** Elements per cache line assumed by the contiguity multiplier (8,
    i.e. 64-byte lines of 8-byte elements). *)

val of_passes : ?arith:arith -> Decompose.pass list -> t
val compare : t -> t -> int
(** Orders by [score], then fewer [passes], then smaller [scratch],
    then fewer [touches]. *)

val pp : Format.formatter -> t -> unit
