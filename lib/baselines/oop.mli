(** Out-of-place transposition baselines, for context in the benchmark
    tables: the ideal transpose "would read the array once and write the
    array once" (paper §5), and out-of-place is how that ideal is usually
    approached when memory for a second copy is available. *)

module Make (S : Xpose_core.Storage.S) : sig
  type buf = S.t

  val naive : m:int -> n:int -> buf -> buf -> unit
  (** Row-major [m x n] to row-major [n x m], one element at a time
      ([dst] column-strided writes). *)

  val blocked : ?tile:int -> m:int -> n:int -> buf -> buf -> unit
  (** Loop-tiled variant (default 32x32 tiles) touching both matrices in
      cache-line-sized chunks. *)
end
