module Make (S : Xpose_core.Storage.S) = struct
  module C = Cycle_follow.Make (S)

  type buf = S.t

  let imatcopy ?ordering ~rows ~cols buf =
    C.transpose_leader ?order:ordering ~m:rows ~n:cols buf
end
