module Make (S : Xpose_core.Storage.S) = struct
  type buf = S.t

  let check ~m ~n ~src ~dst =
    if m < 1 || n < 1 then invalid_arg "Oop: dimensions must be positive";
    if S.length src <> m * n || S.length dst <> m * n then
      invalid_arg "Oop: buffer sizes"

  let naive ~m ~n src dst =
    check ~m ~n ~src ~dst;
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        S.set dst ((j * m) + i) (S.get src ((i * n) + j))
      done
    done

  let blocked ?(tile = 32) ~m ~n src dst =
    check ~m ~n ~src ~dst;
    if tile < 1 then invalid_arg "Oop.blocked: tile must be positive";
    let bi = ref 0 in
    while !bi < m do
      let i_hi = min (!bi + tile) m in
      let bj = ref 0 in
      while !bj < n do
        let j_hi = min (!bj + tile) n in
        for i = !bi to i_hi - 1 do
          for j = !bj to j_hi - 1 do
            S.set dst ((j * m) + i) (S.get src ((i * n) + j))
          done
        done;
        bj := j_hi
      done;
      bi := i_hi
    done
end
