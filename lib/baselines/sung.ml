open Xpose_core

exception Tile_mismatch of string

let factorize x =
  if x < 1 then invalid_arg "Sung.factorize: argument must be positive";
  let rec go x d acc =
    if x = 1 then List.rev acc
    else if d * d > x then List.rev (x :: acc)
    else if x mod d = 0 then go (x / d) d (d :: acc)
    else go x (d + 1) acc
  in
  go x 2 []

let heuristic_tile ?(threshold = 72) x =
  if threshold < 1 then invalid_arg "Sung.heuristic_tile: threshold";
  List.fold_left
    (fun acc f -> if acc * f <= threshold then acc * f else acc)
    1 (factorize x)

let tile_dims ?threshold ~m ~n () =
  (heuristic_tile ?threshold m, heuristic_tile ?threshold n)

module Make (S : Storage.S) = struct
  type buf = S.t

  let[@inline] succ_index ~m ~n l = ((l mod n) * m) + (l / n)

  let transpose ?tile ?(order = Layout.Row_major) ~m ~n buf =
    let m, n =
      match order with Layout.Row_major -> (m, n) | Layout.Col_major -> (n, m)
    in
    if m < 1 || n < 1 then invalid_arg "Sung: dimensions must be positive";
    if S.length buf <> m * n then invalid_arg "Sung: buffer size";
    let th, tw = match tile with Some t -> t | None -> tile_dims ~m ~n () in
    if th < 1 || tw < 1 || m mod th <> 0 || n mod tw <> 0 then
      raise
        (Tile_mismatch
           (Printf.sprintf "tile %dx%d does not divide matrix %dx%d" th tw m n));
    let total = m * n in
    let visited = Bytes.make ((total + 7) / 8) '\000' in
    let mark l =
      let b = Char.code (Bytes.get visited (l lsr 3)) in
      Bytes.set visited (l lsr 3) (Char.chr (b lor (1 lsl (l land 7))))
    in
    let marked l =
      Char.code (Bytes.get visited (l lsr 3)) land (1 lsl (l land 7)) <> 0
    in
    let move_cycle l0 =
      let v = ref (S.get buf l0) in
      let cur = ref l0 in
      let continue = ref true in
      while !continue do
        let nxt = succ_index ~m ~n !cur in
        let displaced = S.get buf nxt in
        S.set buf nxt !v;
        v := displaced;
        mark nxt;
        cur := nxt;
        if nxt = l0 then continue := false
      done
    in
    (* Scan cycle starts tile by tile, the traversal order of a tiled
       implementation (one thread block per tile). *)
    for bi = 0 to (m / th) - 1 do
      for bj = 0 to (n / tw) - 1 do
        for r = 0 to th - 1 do
          let base = (((bi * th) + r) * n) + (bj * tw) in
          for t = 0 to tw - 1 do
            let l0 = base + t in
            if not (marked l0) then move_cycle l0
          done
        done
      done
    done
end
