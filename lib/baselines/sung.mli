(** A baseline in the style of Sung's tiled in-place transposition
    (reference [6] of the paper: I.-J. Sung's PhD thesis; see also
    Sung et al., PPoPP 2014 [8]).

    Sung's implementation processes the array in tiles whose dimensions
    must evenly divide the array dimensions, does not choose tile sizes
    automatically, and marks moved units with up to one bit per element.
    This module reproduces those interface properties: an explicit tile
    size that must divide the matrix dimensions, the factor-sorting
    heuristic the paper uses to pick tile sizes automatically (§5.2), and
    bit-marked cycle following as the data-movement engine. The
    tile-shape-dependent memory behaviour on a GPU is modelled separately
    in [Xpose_simd.Sung_gpu]. *)

exception Tile_mismatch of string
(** Raised when the tile dimensions do not divide the matrix dimensions
    (Sung's implementation rejects such inputs). *)

val factorize : int -> int list
(** Ascending prime factorization (with multiplicity) of a positive
    integer; [factorize 1 = []]. *)

val heuristic_tile : ?threshold:int -> int -> int
(** The paper's tile-size rule: multiply the sorted prime factors of the
    dimension, smallest first, as long as the product stays within
    [threshold] (default 72). Reproduces the paper's worked values:
    7200 -> 32, 1800 -> 72, 7223 -> 31, 10368 -> 64. A prime dimension
    larger than the threshold yields 1. *)

val tile_dims : ?threshold:int -> m:int -> n:int -> unit -> int * int
(** [(tile_rows, tile_cols)] chosen by {!heuristic_tile} per dimension. *)

module Make (S : Xpose_core.Storage.S) : sig
  type buf = S.t

  val transpose :
    ?tile:int * int ->
    ?order:Xpose_core.Layout.order ->
    m:int ->
    n:int ->
    buf ->
    unit
  (** [transpose ~m ~n buf] transposes in place, traversing cycle start
      indices tile by tile. [tile] defaults to {!tile_dims}.
      @raise Tile_mismatch if the tile does not divide the dimensions. *)
end
