(** Traditional cycle-following in-place transposition (Windley 1959,
    Knuth TAOCP vol. 3, Cate-Twigg) — the baseline family the paper's
    introduction contrasts with.

    The transposition of a row-major [m x n] matrix induces the fixed
    permutation [l -> (l mod n)*m + l/n] on linear indices; these
    algorithms follow its cycles, moving one element at a time. Two
    classic auxiliary-space trade-offs are provided:

    - {!transpose_bitvec} marks moved elements in a bit vector:
      [O(mn)] bits of auxiliary space, [O(mn)] work;
    - {!transpose_leader} stores nothing and instead walks each candidate
      cycle to check whether the start index is the cycle's minimum
      ("cycle leader"): O(1) auxiliary space but [O(mn log mn)] expected
      work, the trade-off quoted in the paper's introduction [3].

    Both are inherently sequential: cycle lengths are highly irregular, so
    there is no balanced parallel decomposition — the paper's motivation
    for the decomposed algorithm. *)

val cycle_lengths : m:int -> n:int -> int array
(** Lengths of all cycles of the row-major [m x n] transposition
    permutation (fixed points included), in discovery order. The paper's
    introduction observes these are "poorly distributed", which is what
    makes cycle following hard to parallelize; the [cycles] experiment
    renders the distribution. *)

val cycle_count : m:int -> n:int -> int
(** [Array.length (cycle_lengths ~m ~n)]. *)

module Make (S : Xpose_core.Storage.S) : sig
  type buf = S.t

  val transpose_bitvec : ?order:Xpose_core.Layout.order -> m:int -> n:int -> buf -> unit
  (** Cycle following with a visited bit per element. *)

  val transpose_leader : ?order:Xpose_core.Layout.order -> m:int -> n:int -> buf -> unit
  (** Cycle-leader test with O(1) auxiliary storage. *)

  val cycle_count : m:int -> n:int -> int
  (** Alias of the top-level {!cycle_count}. *)
end
