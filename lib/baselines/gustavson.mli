(** A Gustavson-Karlsson-Kågström-style tiled in-place transposition
    (reference [1] of the paper: "Parallel and cache-efficient in-place
    matrix storage format conversion", ACM TOMS 2012).

    The matrix is converted in place from row-major to a tiled format
    (pack), tiles are transposed individually, whole tiles are exchanged
    across the grid, and the result is converted back to row-major
    (unpack). All four stages move cache-line-sized blocks of contiguous
    elements; the pack/unpack stages are the "overhead for packing and
    unpacking the array into the tiled format" the paper charges to this
    baseline. Pack/unpack and intra-tile transposition parallelise over
    block-rows and are run on the given {!Xpose_cpu.Pool}.

    Tile dimensions must divide the matrix dimensions, so they are chosen
    as the largest divisors not exceeding [target_tile]; matrices with
    near-prime dimensions get degenerate (thin) tiles and correspondingly
    poor locality — the characteristic weakness of tiled in-place
    algorithms on inconvenient sizes. *)

module Make (S : Xpose_core.Storage.S) : sig
  type buf = S.t

  val tile_dims : ?target_tile:int -> m:int -> n:int -> unit -> int * int
  (** [(tile_rows, tile_cols)] actually used: the largest divisors of [m]
      and [n] not exceeding [target_tile] (default 32). *)

  val transpose :
    ?pool:Xpose_cpu.Pool.t -> ?target_tile:int -> m:int -> n:int -> buf -> unit
  (** In-place transpose of the row-major [m x n] matrix in [buf];
      afterwards [buf] is the row-major [n x m] transpose. *)
end
