(** A stand-in for Intel MKL's [mkl_dimatcopy]/[mkl_simatcopy] in-place
    transposition (the "Intel MKL" rows of the paper's Figure 3 and
    Table 1).

    MKL's in-place transpose is a sequential cycle-following routine; this
    module wraps {!Cycle_follow} behind the [?imatcopy]-shaped interface
    so benchmark code reads like the original comparison. It is
    deliberately sequential (the paper notes MKL's routine "is not
    parallelized, likely due to the complexity of parallelizing
    traditional cycle-following algorithms"). *)

module Make (S : Xpose_core.Storage.S) : sig
  type buf = S.t

  val imatcopy :
    ?ordering:Xpose_core.Layout.order -> rows:int -> cols:int -> buf -> unit
  (** [imatcopy ~rows ~cols buf] transposes in place (the [trans = 'T'],
      [alpha = 1] case of the MKL routine). Uses the constant-auxiliary
      cycle-leader algorithm, the space regime MKL operates in. *)
end
