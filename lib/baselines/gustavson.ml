open Xpose_core

module Make (S : Storage.S) = struct
  type buf = S.t

  let largest_divisor_le x cap =
    let cap = min x cap in
    let rec down d = if x mod d = 0 then d else down (d - 1) in
    down (max 1 cap)

  let tile_dims ?(target_tile = 32) ~m ~n () =
    if target_tile < 1 then invalid_arg "Gustavson: target_tile must be positive";
    (largest_divisor_le m target_tile, largest_divisor_le n target_tile)

  (* In-place permutation of [count] contiguous blocks of [block_len]
     elements starting at [base]: block [g] ends up at slot [dest g].
     Cycle following with a visited bit per block and two block buffers. *)
  let permute_blocks buf ~base ~count ~block_len ~dest =
    let visited = Bytes.make ((count + 7) / 8) '\000' in
    let mark g =
      let b = Char.code (Bytes.get visited (g lsr 3)) in
      Bytes.set visited (g lsr 3) (Char.chr (b lor (1 lsl (g land 7))))
    in
    let marked g =
      Char.code (Bytes.get visited (g lsr 3)) land (1 lsl (g land 7)) <> 0
    in
    let hold = ref (S.create block_len) and spare = ref (S.create block_len) in
    let off g = base + (g * block_len) in
    for g0 = 0 to count - 1 do
      if not (marked g0) then begin
        S.blit buf (off g0) !hold 0 block_len;
        let cur = ref g0 in
        let continue = ref true in
        while !continue do
          let nxt = dest !cur in
          if nxt < 0 || nxt >= count then
            invalid_arg "Gustavson.permute_blocks: dest out of range";
          S.blit buf (off nxt) !spare 0 block_len;
          S.blit !hold 0 buf (off nxt) block_len;
          let t = !hold in
          hold := !spare;
          spare := t;
          mark nxt;
          cur := nxt;
          if nxt = g0 then continue := false
        done
      end
    done

  (* Transpose one contiguous th x tw row-major tile into tw x th. *)
  let transpose_tile buf ~base ~th ~tw ~tmp =
    for i = 0 to th - 1 do
      for j = 0 to tw - 1 do
        S.set tmp ((j * th) + i) (S.get buf (base + (i * tw) + j))
      done
    done;
    S.blit tmp 0 buf base (th * tw)

  let transpose ?(pool = Xpose_cpu.Pool.sequential) ?target_tile ~m ~n buf =
    if m < 1 || n < 1 then invalid_arg "Gustavson: dimensions must be positive";
    if S.length buf <> m * n then invalid_arg "Gustavson: buffer size";
    if m = 1 || n = 1 then ()
    else begin
      let th, tw = tile_dims ?target_tile ~m ~n () in
      let rows = m / th (* grid rows *) and cols = n / tw (* grid cols *) in
      (* Pack: within each block-row of th matrix rows, gather each tile's
         rows together. Viewing the block-row as a th x cols matrix of
         "super-elements" of tw contiguous elements, this is a transpose
         of super-element positions. *)
      Xpose_cpu.Pool.parallel_for pool ~lo:0 ~hi:rows (fun br ->
          permute_blocks buf ~base:(br * th * n) ~count:(th * cols)
            ~block_len:tw ~dest:(fun s -> ((s mod cols) * th) + (s / cols)));
      (* Transpose every tile in place (tiles are now contiguous). *)
      Xpose_cpu.Pool.parallel_chunks pool ~lo:0 ~hi:(rows * cols)
        (fun ~chunk:_ ~lo ~hi ->
          let tmp = S.create (th * tw) in
          for t = lo to hi - 1 do
            transpose_tile buf ~base:(t * th * tw) ~th ~tw ~tmp
          done);
      (* Exchange whole tiles across the grid (rows x cols -> cols x rows). *)
      permute_blocks buf ~base:0 ~count:(rows * cols) ~block_len:(th * tw)
        ~dest:(fun g -> ((g mod cols) * rows) + (g / cols));
      (* Unpack: each output block-row (tw matrix rows of the n x m result)
         holds [rows] tiles of tw x th; scatter their rows back to
         row-major order. *)
      Xpose_cpu.Pool.parallel_for pool ~lo:0 ~hi:cols (fun bc ->
          permute_blocks buf ~base:(bc * tw * m) ~count:(tw * rows)
            ~block_len:th ~dest:(fun p -> ((p mod tw) * rows) + (p / tw)))
    end
end
