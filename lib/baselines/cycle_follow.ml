open Xpose_core

let cycle_lengths ~m ~n =
  if m < 1 || n < 1 then invalid_arg "Cycle_follow: dimensions must be positive";
  let total = m * n in
  let succ_index l = ((l mod n) * m) + (l / n) in
  let visited = Bytes.make ((total + 7) / 8) '\000' in
  let mark l =
    let b = Char.code (Bytes.get visited (l lsr 3)) in
    Bytes.set visited (l lsr 3) (Char.chr (b lor (1 lsl (l land 7))))
  in
  let marked l =
    Char.code (Bytes.get visited (l lsr 3)) land (1 lsl (l land 7)) <> 0
  in
  let lengths = ref [] in
  for l0 = 0 to total - 1 do
    if not (marked l0) then begin
      mark l0;
      let len = ref 1 in
      let cur = ref (succ_index l0) in
      while !cur <> l0 do
        mark !cur;
        incr len;
        cur := succ_index !cur
      done;
      lengths := !len :: !lengths
    end
  done;
  Array.of_list (List.rev !lengths)

let cycle_count ~m ~n = Array.length (cycle_lengths ~m ~n)

module Make (S : Storage.S) = struct
  type buf = S.t

  let check ~m ~n buf =
    if m < 1 || n < 1 then invalid_arg "Cycle_follow: dimensions must be positive";
    if S.length buf <> m * n then invalid_arg "Cycle_follow: buffer size"

  (* Destination of the element at linear index l (row-major m x n). *)
  let[@inline] succ_index ~m ~n l = ((l mod n) * m) + (l / n)

  let normalize ?(order = Layout.Row_major) ~m ~n () =
    match order with Layout.Row_major -> (m, n) | Layout.Col_major -> (n, m)

  let follow_cycle ~m ~n buf l0 =
    (* Push the value at l0 around its cycle until we return to l0. *)
    let v = ref (S.get buf l0) in
    let cur = ref l0 in
    let continue = ref true in
    while !continue do
      let nxt = succ_index ~m ~n !cur in
      let displaced = S.get buf nxt in
      S.set buf nxt !v;
      v := displaced;
      cur := nxt;
      if nxt = l0 then continue := false
    done

  let transpose_bitvec ?order ~m ~n buf =
    let m, n = normalize ?order ~m ~n () in
    check ~m ~n buf;
    let total = m * n in
    let visited = Bytes.make ((total + 7) / 8) '\000' in
    let mark l =
      let b = Char.code (Bytes.get visited (l lsr 3)) in
      Bytes.set visited (l lsr 3) (Char.chr (b lor (1 lsl (l land 7))))
    in
    let marked l = Char.code (Bytes.get visited (l lsr 3)) land (1 lsl (l land 7)) <> 0 in
    for l0 = 0 to total - 1 do
      if not (marked l0) then begin
        (* Move the cycle and mark every index it visits in one pass. *)
        let v = ref (S.get buf l0) in
        let cur = ref l0 in
        let continue = ref true in
        while !continue do
          let nxt = succ_index ~m ~n !cur in
          let displaced = S.get buf nxt in
          S.set buf nxt !v;
          v := displaced;
          mark nxt;
          cur := nxt;
          if nxt = l0 then continue := false
        done
      end
    done

  let transpose_leader ?order ~m ~n buf =
    let m, n = normalize ?order ~m ~n () in
    check ~m ~n buf;
    let total = m * n in
    for l0 = 0 to total - 1 do
      (* Walk the cycle; move it only if l0 is its smallest index. *)
      let is_leader = ref true in
      let cur = ref (succ_index ~m ~n l0) in
      while !cur <> l0 && !is_leader do
        if !cur < l0 then is_leader := false;
        cur := succ_index ~m ~n !cur
      done;
      if !is_leader then follow_cycle ~m ~n buf l0
    done

  let cycle_count = cycle_count
end
