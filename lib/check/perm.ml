type t = { size : int; map : int -> int }

let make ~size map =
  if size < 0 then invalid_arg "Perm.make: negative size";
  { size; map }

let size t = t.size
let apply t l = t.map l
let id size = make ~size (fun l -> l)

let compose p q =
  if p.size <> q.size then invalid_arg "Perm.compose: size mismatch";
  { size = p.size; map = (fun l -> p.map (q.map l)) }

let pipeline ~size passes = List.fold_left compose (id size) passes

type verdict =
  | Proved of { checked : int; exhaustive : bool }
  | Mismatch of { index : int; expected : int; got : int }

let default_threshold = 1 lsl 18
let lcg_samples = 4096

(* Deterministic splitmix-style sampler: probing must be reproducible so
   a reported mismatch can be replayed. *)
let sample_indices ~size ~seed k =
  let state = ref (seed lxor 0x1e3779b97f4a7c15) in
  List.init k (fun _ ->
      let x = !state in
      let x = (x lxor (x lsr 30)) * 0x1f58476d1ce4e5b9 in
      let x = (x lxor (x lsr 27)) * 0x14d049bb133111eb in
      let x = x lxor (x lsr 31) in
      state := x + 0x1e3779b97f4a7c15;
      (x land max_int) mod size)

let check_at ~target p l =
  let expected = target.map l and got = p.map l in
  if expected = got then None else Some (Mismatch { index = l; expected; got })

let verify ?(threshold = default_threshold) ?(probes = []) ~target p =
  if p.size <> target.size then invalid_arg "Perm.verify: size mismatch";
  let size = p.size in
  if size = 0 then Proved { checked = 0; exhaustive = true }
  else if size <= threshold then begin
    let rec go l =
      if l >= size then Proved { checked = size; exhaustive = true }
      else match check_at ~target p l with Some m -> m | None -> go (l + 1)
    in
    go 0
  end
  else begin
    let sampled = sample_indices ~size ~seed:size lcg_samples in
    let seen = Hashtbl.create 4096 in
    let candidates =
      List.filter
        (fun l ->
          l >= 0 && l < size
          && not (Hashtbl.mem seen l)
          && (Hashtbl.add seen l (); true))
        (List.rev_append probes sampled)
    in
    let rec go checked = function
      | [] -> Proved { checked; exhaustive = false }
      | l :: rest -> (
          match check_at ~target p l with
          | Some m -> m
          | None -> go (checked + 1) rest)
    in
    go 0 candidates
  end

let pp_verdict ppf = function
  | Proved { checked; exhaustive } ->
      Format.fprintf ppf "proved (%d indices%s)" checked
        (if exhaustive then ", exhaustive" else ", probed")
  | Mismatch { index; expected; got } ->
      Format.fprintf ppf "MISMATCH at %d: expected source %d, got %d" index
        expected got
