open Xpose_core

type status = Proved | Violated | Detected

type entry = {
  check : string;  (** "plan" | "race" | "shadow" | "bounds" | "alias" *)
  subject : string;
  status : status;
  detail : string;
}

type report = {
  entries : entry list;
  checked : int;
  violations : int;  (** unexpected failures *)
  detections : int;  (** seeded defects the analyzer caught *)
}

let status_name = function
  | Proved -> "proved"
  | Violated -> "violated"
  | Detected -> "detected"

(* Shapes exercising every structural regime: coprime and non-coprime
   sides, primes (trivial gcd, maximal rotation churn), squares, skinny
   matrices (degenerate and near-degenerate), panel-boundary cases
   around the 16-column fused width, and one shape past the exhaustive
   threshold so the probe path is exercised too. *)
let default_shapes =
  [
    (2, 2);
    (3, 5);
    (7, 13);
    (16, 16);
    (17, 1);
    (1, 17);
    (31, 33);
    (33, 31);
    (32, 48);
    (48, 36);
    (97, 89);
    (3, 1000);
    (1000, 3);
    (512, 384);
    (1024, 768);
  ]

let default_permutes =
  [
    ([| 4; 5; 6 |], [| 2; 0; 1 |]);
    ([| 2; 3; 4 |], [| 0; 2; 1 |]);
    ([| 3; 4; 5; 6 |], [| 1; 3; 0; 2 |]);
    ([| 6; 4; 2; 3 |], [| 3; 2; 1; 0 |]);
    ([| 32; 3; 5; 7 |], [| 2; 0; 3; 1 |]);
  ]

let default_lanes = [ 2; 3; 8 ]

(* -- plan verification ---------------------------------------------------- *)

let plan_entries ?threshold ~shapes ~permutes () =
  let transpose_entries =
    List.concat_map
      (fun (m, n) ->
        List.map
          (fun engine ->
            let passes, verdict = Spec.verify_transpose ?threshold engine ~m ~n in
            let subject =
              Printf.sprintf "%s %dx%d" (Spec.engine_name engine) m n
            in
            let detail =
              Format.asprintf "[%s] %a"
                (String.concat "; " passes)
                Perm.pp_verdict verdict
            in
            let status =
              match verdict with
              | Perm.Proved _ -> Proved
              | Perm.Mismatch _ -> Violated
            in
            { check = "plan"; subject; status; detail })
          Spec.all_engines)
      shapes
  in
  let permute_entries =
    List.map
      (fun (dims, perm) ->
        let plan = Xpose_permute.Permute.plan ~dims ~perm () in
        let passes, verdict = Spec.verify_permute ?threshold plan in
        let subject =
          Format.asprintf "permute %a %a" Xpose_permute.Shape.pp_dims dims
            Xpose_permute.Shape.pp_perm perm
        in
        let detail =
          Format.asprintf "[%s] %a"
            (String.concat "; " passes)
            Perm.pp_verdict verdict
        in
        let status =
          match verdict with
          | Perm.Proved _ -> Proved
          | Perm.Mismatch _ -> Violated
        in
        { check = "plan"; subject; status; detail })
      permutes
  in
  transpose_entries @ permute_entries

(* -- race analysis --------------------------------------------------------- *)

(* A seeded split is vacuous when the driver runs no genuinely parallel
   pass: degenerate shapes produce no barriers at all, and a schedule
   whose every barrier lands all its work on a single lane (e.g. a
   1-matrix batch forced matrix-parallel) has nothing a bad split could
   corrupt, so no entry. *)
let parallel_work barriers =
  List.exists
    (fun (b : Footprint.barrier) ->
      let occupied =
        List.filter
          (fun (c : Footprint.chunk) -> c.writes <> [] || c.reads <> [])
          b.chunks
      in
      List.length occupied >= 2)
    barriers

let race_entry ~subject ~seeded barriers =
  if seeded && not (parallel_work barriers) then None
  else
    let nbar = List.length barriers in
    match Footprint.check barriers with
    | None ->
        let status = if seeded then Violated else Proved in
        let detail =
          if seeded then
            Printf.sprintf "seeded off-by-one split NOT detected (%d barriers)"
              nbar
          else Printf.sprintf "disjoint (%d barriers)" nbar
        in
        Some { check = "race"; subject; status; detail }
    | Some c ->
        let status = if seeded then Detected else Violated in
        let detail = Format.asprintf "%a" Footprint.pp_conflict c in
        Some { check = "race"; subject; status; detail }

let race_entries ?(seeded = false) ~shapes ~permutes ~lanes () =
  let split =
    if seeded then Footprint.off_by_one_split else Footprint.pool_split
  in
  (* Panel engines are proved at every width the autotuner may pick;
     the row/column engines have no panel geometry, so one entry each
     suffices. *)
  let panel_engine engine =
    match (engine : Spec.engine) with
    | Spec.Cache | Spec.Fused -> true
    | Spec.Functor | Spec.Kernels | Spec.Decomposed -> false
  in
  let widths_of engine =
    if panel_engine engine then Tune_params.supported_widths
    else [ Footprint.default_panel_width ]
  in
  (* The kernel-tier axis exists only under the fused engine. A tier
     reorders accesses {e within} one lane's own panel (the micro-kernel
     walks block tiles through the same column group) and never moves
     work across lanes, so every tier shares the panel barrier model;
     the grid still names each tier so a seeded split is detected — and
     a clean split proved — at every tier the autotuner can pick. *)
  let tiers_of engine =
    match (engine : Spec.engine) with
    | Spec.Fused -> Tune_params.supported_tiers
    | Spec.Cache | Spec.Functor | Spec.Kernels | Spec.Decomposed ->
        [ Tune_params.Scalar ]
  in
  let tier_tag = function
    | Tune_params.Scalar -> ""
    | t -> Printf.sprintf "/%s" (Tune_params.tier_to_string t)
  in
  let engine_entries =
    List.concat_map
      (fun (m, n) ->
        List.concat_map
          (fun engine ->
            List.concat_map
              (fun l ->
                List.concat_map
                  (fun width ->
                    List.filter_map
                      (fun tier ->
                        let subject =
                          if panel_engine engine then
                            Printf.sprintf "%s%s w%d %dx%d @%d lanes"
                              (Spec.engine_name engine) (tier_tag tier) width
                              m n l
                          else
                            Printf.sprintf "%s %dx%d @%d lanes"
                              (Spec.engine_name engine) m n l
                        in
                        race_entry ~subject ~seeded
                          (Footprint.transpose_barriers ~split ~width ~engine
                             ~lanes:l ~m ~n ()))
                      (tiers_of engine))
                  (widths_of engine))
              lanes)
          Spec.all_engines)
      shapes
  in
  (* Every tunable batch-split policy is proved at every batch size the
     policies disagree on, and at every supported panel width (the
     panel-parallel side inherits the panel barriers). *)
  let batch_policies =
    Tune_params.
      [ Auto; Matrix_parallel; Panel_parallel; Hybrid 2 ]
  in
  let batch_entries =
    List.concat_map
      (fun (m, n) ->
        List.concat_map
          (fun l ->
            List.concat_map
              (fun nb ->
                List.concat_map
                  (fun policy ->
                    List.concat_map
                      (fun width ->
                        List.filter_map
                          (fun tier ->
                            let subject =
                              Printf.sprintf "batch[%d] %s w%d%s %dx%d @%d \
                                              lanes"
                                nb
                                (Tune_params.split_to_string policy)
                                width (tier_tag tier) m n l
                            in
                            race_entry ~subject ~seeded
                              (Footprint.batch_barriers ~split ~policy ~width
                                 ~lanes:l ~m ~n ~nb ()))
                          Tune_params.supported_tiers)
                      Tune_params.supported_widths)
                  batch_policies)
              [ 1; l; (2 * l) + 1 ])
          lanes)
      [ (32, 48); (97, 89) ]
  in
  (* The out-of-core engine adds a second axis of partitioning: the
     window splits themselves. A seeded run swaps the windowing policy
     for the overlapping one, so the analyzer's detection of two windows
     claiming the same file region stays tested alongside the pool's
     off-by-one chunk split. The budget is a quarter of the matrix, the
     CI smoke configuration (>= 4 windows whenever any pass runs). *)
  let ooc_entries =
    let window_split =
      if seeded then Xpose_ooc.Window.overlapping_split
      else Xpose_ooc.Window.split
    in
    List.concat_map
      (fun (m, n) ->
        List.filter_map
          (fun l ->
            let window_bytes = max 8 (m * n * 8 / 4) in
            let subject = Printf.sprintf "ooc %dx%d @%d lanes" m n l in
            race_entry ~subject ~seeded
              (Footprint.ooc_barriers ~split ~window_split ~lanes:l ~m ~n
                 ~window_bytes ()))
          lanes)
      shapes
  in
  let permute_entries =
    List.concat_map
      (fun (dims, perm) ->
        let plan = Xpose_permute.Permute.plan ~dims ~perm () in
        List.filter_map
          (fun l ->
            let subject =
              Format.asprintf "permute %a %a @%d lanes"
                Xpose_permute.Shape.pp_dims dims Xpose_permute.Shape.pp_perm
                perm l
            in
            race_entry ~subject ~seeded
              (Footprint.permute_barriers ~split ~lanes:l plan ()))
          lanes)
      permutes
  in
  engine_entries @ batch_entries @ ooc_entries @ permute_entries

(* -- checked-access shadow runs ------------------------------------------- *)

let f64 len = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len

let iota_buf len =
  let buf = f64 len in
  Storage.fill_iota (module Storage.Float64) buf;
  buf

let transposed_ok ~m ~n buf =
  let ok = ref true in
  for l = 0 to (m * n) - 1 do
    let src = (l mod m * n) + (l / m) in
    if Storage.Float64.get buf l <> float_of_int src then ok := false
  done;
  !ok

let shadow_entry ~subject run =
  match run () with
  | exception Checked_access.Violation msg ->
      {
        check = "shadow";
        subject;
        status = Violated;
        detail = "access violation: " ^ msg;
      }
  | false ->
      { check = "shadow"; subject; status = Violated; detail = "wrong result" }
  | true ->
      {
        check = "shadow";
        subject;
        status = Proved;
        detail = "checked run clean";
      }

let shadow_entries ~shapes () =
  let small = List.filter (fun (m, n) -> m * n <= 1 lsl 16) shapes in
  let kernels =
    List.map
      (fun (m, n) ->
        shadow_entry ~subject:(Printf.sprintf "kernels %dx%d" m n) (fun () ->
            let buf = iota_buf (m * n) in
            Kernels_f64.Checked.transpose ~m ~n buf;
            transposed_ok ~m ~n buf))
      small
  in
  (* The fused shadow runs cover every kernel tier: the non-scalar
     tiers rerun the transpose through the checked micro-kernel twins
     ([Microkernel.Checked]), so an out-of-bounds unrolled mover or a
     bad tail handoff trips a Violation here, not UB in the raw path. *)
  let tier_tag = function
    | Xpose_core.Tune_params.Scalar -> ""
    | t -> Printf.sprintf "[%s]" (Xpose_core.Tune_params.tier_to_string t)
  in
  let per_tier kind run =
    List.concat_map
      (fun (m, n) ->
        List.map
          (fun tier ->
            shadow_entry
              ~subject:
                (Printf.sprintf "%s%s %dx%d" kind (tier_tag tier) m n)
              (fun () -> run ~tier ~m ~n))
          Xpose_core.Tune_params.supported_tiers)
      small
  in
  let fused =
    per_tier "fused" (fun ~tier ~m ~n ->
        let buf = iota_buf (m * n) in
        Xpose_cpu.Fused_f64.Checked.transpose ~tier ~m ~n buf;
        transposed_ok ~m ~n buf)
  in
  let pool =
    per_tier "fused-pool" (fun ~tier ~m ~n ->
        let buf = iota_buf (m * n) in
        Xpose_cpu.Fused_f64.Checked.transpose_pool ~tier
          Xpose_cpu.Pool.sequential ~m ~n buf;
        transposed_ok ~m ~n buf)
  in
  let batch =
    per_tier "fused-batch" (fun ~tier ~m ~n ->
        let bufs = Array.init 3 (fun _ -> iota_buf (m * n)) in
        Xpose_cpu.Fused_f64.Checked.transpose_batch ~tier
          Xpose_cpu.Pool.sequential ~m ~n bufs;
        Array.for_all (transposed_ok ~m ~n) bufs)
  in
  kernels @ fused @ pool @ batch

(* The negative shadow test: rotate a column panel of an [m x n] matrix
   whose buffer is one element short. The raw kernel would read one slot
   past the end; the checked kernel must refuse. *)
let seeded_oob_entry () =
  let m = 7 and n = 5 in
  let p = Plan.make ~m ~n in
  let buf = iota_buf ((m * n) - 1) in
  let tmp = f64 m in
  match
    Kernels_f64.Checked.Phases.rotate_columns p buf ~tmp ~amount:(fun _ -> 1)
      ~lo:0 ~hi:n
  with
  | () ->
      {
        check = "shadow";
        subject = "seeded out-of-bounds";
        status = Violated;
        detail = "seeded short-buffer access NOT detected";
      }
  | exception Checked_access.Violation msg ->
      {
        check = "shadow";
        subject = "seeded out-of-bounds";
        status = Detected;
        detail = msg;
      }

(* -- parametric certificates (bounds & alias) ------------------------------ *)

(* A certificate maps onto the report the same way a seeded race does:
   clean subjects must be proved; a "seeded/" subject must be refuted
   with a concrete counterexample (a seeded summary that proves, or that
   merely fails without a witness, means the analyzer is broken). *)
let seeded_subject s =
  String.length s >= 7 && String.sub s 0 7 = "seeded/"

let certificate_entry ~check ~subject ~proved ~counterexample ~detail =
  let status =
    if seeded_subject subject then
      if proved then Violated
      else match counterexample with Some _ -> Detected | None -> Violated
    else if proved then Proved
    else Violated
  in
  { check; subject; status; detail }

let bounds_entries ?widths ~grid ~seeded () =
  let results =
    (if grid then Bounds.run ?widths () else [])
    @ if seeded then [ Bounds.seeded_result () ] else []
  in
  List.map
    (fun (r : Bounds.result) ->
      certificate_entry ~check:"bounds" ~subject:r.subject ~proved:r.proved
        ~counterexample:r.counterexample ~detail:r.detail)
    results

let alias_entries ~seed_race () =
  List.map
    (fun (r : Alias.result) ->
      certificate_entry ~check:"alias" ~subject:r.subject ~proved:r.proved
        ~counterexample:r.counterexample ~detail:r.detail)
    (Alias.run ~seed_race ())

(* -- assembling the report ------------------------------------------------ *)

let families = [ "plan"; "race"; "shadow"; "bounds"; "alias" ]

let family_of_name = function
  | "perm" -> Some "plan"
  | f when List.mem f families -> Some f
  | _ -> None

let run ?threshold ?(shapes = default_shapes) ?(permutes = default_permutes)
    ?(lanes = default_lanes) ?(seed_race = false) ?(seed_oob = false)
    ?(shadow = false) ?(prove_bounds = false) ?(seed_oob_static = false)
    ?widths ?(only = []) () =
  let only =
    List.map (fun f -> match family_of_name f with Some f -> f | None -> f) only
  in
  let want fam ~default = if only = [] then default else List.mem fam only in
  (* Each opt-in family follows the same rule: its grid runs when its
     enabling flag is set or it is named in [only] with no seeding flag;
     its seeding flag alone adds just the (fast) seeded negative. *)
  let shadow_wanted = want "shadow" ~default:(shadow || seed_oob) in
  let shadow_grid = shadow_wanted && (shadow || not seed_oob) in
  let bounds_wanted = want "bounds" ~default:(prove_bounds || seed_oob_static) in
  let bounds_grid = bounds_wanted && (prove_bounds || not seed_oob_static) in
  let entries =
    (if want "plan" ~default:true then plan_entries ?threshold ~shapes ~permutes ()
     else [])
    @ (if want "race" ~default:true then
         race_entries ~seeded:seed_race ~shapes ~permutes ~lanes ()
       else [])
    @ (if shadow_grid then shadow_entries ~shapes () else [])
    @ (if shadow_wanted && seed_oob then [ seeded_oob_entry () ] else [])
    @ (if bounds_wanted then
         bounds_entries ?widths ~grid:bounds_grid ~seeded:seed_oob_static ()
       else [])
    @
    if want "alias" ~default:prove_bounds then alias_entries ~seed_race ()
    else []
  in
  let count st = List.length (List.filter (fun e -> e.status = st) entries) in
  {
    entries;
    checked = List.length entries;
    violations = count Violated;
    detections = count Detected;
  }

let ok r = r.violations = 0 && r.detections = 0

let verdict r =
  if ok r then Ok ()
  else if r.violations > 0 then
    Error (Printf.sprintf "%d of %d checks violated" r.violations r.checked)
  else Error (Printf.sprintf "%d seeded defect(s) detected" r.detections)

(* -- rendering ------------------------------------------------------------ *)

let pp ppf r =
  List.iter
    (fun e ->
      Format.fprintf ppf "%-6s %-9s %-34s %s@." e.check (status_name e.status)
        e.subject e.detail)
    r.entries;
  Format.fprintf ppf "checked %d: %d violation%s, %d seeded detection%s@."
    r.checked r.violations
    (if r.violations = 1 then "" else "s")
    r.detections
    (if r.detections = 1 then "" else "s")

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"checked\":";
  Buffer.add_string b (string_of_int r.checked);
  Buffer.add_string b ",\"violations\":";
  Buffer.add_string b (string_of_int r.violations);
  Buffer.add_string b ",\"detections\":";
  Buffer.add_string b (string_of_int r.detections);
  Buffer.add_string b ",\"entries\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"check\":";
      buf_add_json_string b e.check;
      Buffer.add_string b ",\"subject\":";
      buf_add_json_string b e.subject;
      Buffer.add_string b ",\"status\":";
      buf_add_json_string b (status_name e.status);
      Buffer.add_string b ",\"detail\":";
      buf_add_json_string b e.detail;
      Buffer.add_char b '}')
    r.entries;
  Buffer.add_string b "]}";
  Buffer.contents b
