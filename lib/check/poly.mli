(** Polynomial goals, contexts, and the bounded-search prover behind the
    parametric {!Bounds} and {!Alias} certificates.

    Goals have the form [p >= 0] over variables that are all
    nonnegative in every model; contexts carry per-variable polynomial
    bounds and facts [f >= 0]. Every prover move is sound, so success
    is a proof for all shapes; failure is merely "no proof found"
    ({!Bounds} then searches for a concrete counterexample). *)

module SMap : Map.S with type key = string

(** Multivariate integer polynomials in normal form. *)
module P : sig
  type t

  val zero : t
  val const : int -> t
  val var : string -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val pow : t -> int -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val is_zero : t -> bool

  val all_nonneg : t -> bool
  (** Trivially nonnegative: every coefficient is [>= 0]. *)

  val vars : t -> string list
  val neg_vars : t -> string list
  val subst : t -> string -> t -> t
  val factor_var : t -> string -> t option
  val to_string : t -> string
end

type info = { lowers : P.t list; uppers : P.t list }
(** Inclusive polynomial bounds of one variable. *)

type ctx = {
  vars : info SMap.t;  (** every variable is [>= 0] in every model *)
  facts : P.t list;  (** each [f] satisfies [f >= 0] in every model *)
  fresh : int;
}

val ctx_empty : ctx
val add_var : ctx -> string -> lowers:P.t list -> uppers:P.t list -> ctx
val add_fact : ctx -> P.t -> ctx
val fresh_var : ctx -> string -> string * ctx

val prove_nonneg : ?depth:int -> ?budget:int -> ctx -> P.t -> bool
(** Bounded DFS for a proof of [goal >= 0] under the context. [true]
    is a certificate valid for every model; [false] only means no
    proof was found within the caps. *)

exception Unsupported of string
(** Raised by the translator on an expression it cannot soundly model
    (unbound variable, unprovable division side condition). *)

type env = P.t SMap.t
(** Maps every summary-level variable name to its polynomial. *)

val translate : ctx -> env -> Xpose_core.Access.exp -> (ctx * P.t) list
(** Branches covering all models of [ctx]: each is the context enriched
    with branch facts ([Min]/[Max]/[Ite] case splits, [Div]/[Mod]
    divisibility facts on fresh variables) and the expression's value
    there. *)

val assume : ctx -> env -> Xpose_core.Access.cond -> ctx list
(** Branches covering [ctx /\ c]. *)

val assume_not : ctx -> env -> Xpose_core.Access.cond -> ctx list
(** Branches covering [ctx /\ not c]. *)
