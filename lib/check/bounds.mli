(** Parametric bounds certification.

    Each {!Xpose_core.Access.summary} is compiled into polynomial
    obligations -- [index >= 0] and [size - 1 - index >= 0] along every
    covering branch of the translation -- and discharged by
    {!Poly.prove_nonneg} over the summary's basis with the pass
    parameters as bounded symbolic variables. A proved certificate
    holds for {e every} shape, sub-range, panel width, batch lane and
    window geometry at once; nothing is enumerated.

    On proof failure the analyzer searches small shapes
    deterministically for a concrete out-of-bounds witness, turning an
    incompleteness report into a refutation when one exists (this is
    how the [--seed-oob-static] negative is caught, first witness
    [m=2 n=2]). *)

type result = {
  subject : string;  (** grid label, e.g. ["kernels/rotate_pre"] *)
  pass : string;  (** the summary's pass name *)
  proved : bool;
  obligations : int;  (** polynomial goals discharged, branches counted *)
  detail : string;
  counterexample : string option;
      (** concrete witness shape when the failure was refuted *)
}

val certify_summary :
  Xpose_core.Access.summary -> (int, string) Stdlib.result
(** [Ok obligations] when every access is proved in bounds; [Error
    reason] when some obligation has no proof (not a refutation). *)

val find_counterexample : Xpose_core.Access.summary -> string option
(** Deterministic small-shape/sampled-parameter search for an access
    outside its declared region; smallest area first. *)

val certify : subject:string -> Xpose_core.Access.summary -> result

val seeded_result : unit -> result
(** Just the seeded off-by-one rotate certificate (the
    [--seed-oob-static] negative): fast to evaluate on its own -- the
    prover fails and the witness search refutes it at [m=2 n=2] --
    without paying for the full grid. *)

val run : ?widths:int list -> ?seed_oob_static:bool -> unit -> result list
(** The full certificate grid: kernel pipeline passes, fused panel
    passes (symbolic width plus each pinned width, default
    {!Xpose_core.Tune_params.supported_widths}), out-of-core passes,
    per-engine and per-batch-policy roll-ups, and -- when
    [seed_oob_static] -- the seeded off-by-one summary that must be
    refuted. *)
