(** Parametric alias certification.

    The {!Footprint} race analysis proves the parallel drivers' chunk
    footprints disjoint on concrete shapes; this module quantifies that
    argument. Every split the drivers partition index space with --
    [Pool.chunk_bounds], the ooc [Window.split], and the footprint maps
    the barriers lift them through (row intervals, column ranges,
    width-scaled panel groups, batch slices, strided block slots,
    per-lane scratch slices) -- is modeled symbolically and proved
    disjoint by {!Poly.prove_nonneg} for {e every} range, shape, lane
    count, panel width, batch size and window budget at once.
    Workspace/matrix disjointness is certified structurally: regions
    are distinct allocations, so with {!Bounds}' in-bounds certificates
    an access can only alias an access to the same region.

    On proof failure the analyzer searches the corresponding concrete
    split function for a minimal overlap witness, turning an
    incompleteness report into a refutation when one exists -- this is
    how the seeded [Footprint.off_by_one_split] and
    [Window.overlapping_split] negatives are caught. *)

type result = {
  subject : string;  (** grid label, e.g. ["split/pool"] *)
  proved : bool;
  obligations : int;  (** polynomial goals discharged, branches counted *)
  detail : string;
  counterexample : string option;
      (** concrete witness split when the failure was refuted *)
}

val split_counterexample : Footprint.split -> string option
(** Deterministic smallest-first search for two chunks of the split
    that overlap (or a chunk escaping its range). [None] for
    [Footprint.pool_split]; a witness for [off_by_one_split]. *)

val window_counterexample : Xpose_ooc.Window.splitter -> string option
(** Same search over window lists. [None] for [Window.split]; a
    witness for [Window.overlapping_split]. *)

val run : ?seed_race:bool -> unit -> result list
(** The full certificate grid: both split families, every barrier
    footprint lift, the scratch-slice model and the structural region
    discipline -- plus, when [seed_race], the two seeded broken splits
    that must be refuted with a concrete counterexample. *)
