open Xpose_core

type engine = Functor | Kernels | Decomposed | Cache | Fused

let all_engines = [ Functor; Kernels; Decomposed; Cache; Fused ]

let engine_name = function
  | Functor -> "functor"
  | Kernels -> "kernels"
  | Decomposed -> "decomposed"
  | Cache -> "cache"
  | Fused -> "fused"

module Passes = struct
  let size (p : Plan.t) = p.m * p.n

  let rotate_columns (p : Plan.t) ~amount =
    let m = p.m and n = p.n in
    Perm.make ~size:(size p) (fun l ->
        let i = l / n and j = l mod n in
        let k = Intmath.emod (amount j) m in
        (((i + k) mod m) * n) + j)

  let row_shuffle_gather (p : Plan.t) =
    let n = p.n in
    Perm.make ~size:(size p) (fun l ->
        let i = l / n and j = l mod n in
        (i * n) + Plan.d'_inv p ~i j)

  let row_shuffle_ungather (p : Plan.t) =
    let n = p.n in
    Perm.make ~size:(size p) (fun l ->
        let i = l / n and j = l mod n in
        (i * n) + Plan.d' p ~i j)

  let col_shuffle_gather (p : Plan.t) =
    let n = p.n in
    Perm.make ~size:(size p) (fun l ->
        let i = l / n and j = l mod n in
        (Plan.s' p ~j i * n) + j)

  let col_shuffle_ungather (p : Plan.t) =
    let n = p.n in
    Perm.make ~size:(size p) (fun l ->
        let i = l / n and j = l mod n in
        (Plan.s'_inv p ~j i * n) + j)

  let permute_rows (p : Plan.t) ~index =
    let n = p.n in
    Perm.make ~size:(size p) (fun l ->
        let i = l / n and j = l mod n in
        (index i * n) + j)

  let decompose_pass ~size (pass : Xpose_permute.Decompose.pass) =
    let { Xpose_permute.Decompose.batch; rows; cols; block } = pass in
    let len = rows * cols * block in
    if batch * len <> size then
      invalid_arg "Spec.Passes.decompose_pass: pass size mismatch";
    (* After the pass the slice is laid out [cols x rows x block]; output
       cell (c', r', off) gathers from input cell (r', c', off). *)
    Perm.make ~size (fun g ->
        let b = g / len and l = g mod len in
        let off = l mod block in
        let lc = l / block in
        let c' = lc / rows and r' = lc mod rows in
        (b * len) + (((r' * cols) + c') * block) + off)
end

(* -- 2-D transpose targets ---------------------------------------------- *)

let transpose_target ~m ~n =
  Perm.make ~size:(m * n) (fun l -> ((l mod m) * n) + (l / m))

let c2r_target (p : Plan.t) = transpose_target ~m:p.m ~n:p.n
let r2c_target (p : Plan.t) = transpose_target ~m:p.n ~n:p.m

(* -- engine pass models -------------------------------------------------- *)

let rotate_pre (p : Plan.t) acc =
  if Plan.coprime p then acc
  else ("rotate_pre", Passes.rotate_columns p ~amount:(Plan.rotate_amount p)) :: acc

let rotate_post (p : Plan.t) acc =
  if Plan.coprime p then acc
  else
    acc
    @ [
        ( "rotate_post",
          Passes.rotate_columns p ~amount:(fun j -> -Plan.rotate_amount p j) );
      ]

let c2r_model ?(variant = Algo.C2r_gather) (p : Plan.t) =
  if p.m = 1 || p.n = 1 then []
  else
    let tail =
      match variant with
      | Algo.C2r_gather | Algo.C2r_scatter ->
          [
            ("row_shuffle", Passes.row_shuffle_gather p);
            ("col_shuffle", Passes.col_shuffle_gather p);
          ]
      | Algo.C2r_decomposed ->
          [
            ("row_shuffle", Passes.row_shuffle_gather p);
            ("col_rotate", Passes.rotate_columns p ~amount:(fun j -> j));
            ("row_permute", Passes.permute_rows p ~index:(Plan.q p));
          ]
    in
    rotate_pre p tail

let r2c_model ?(variant = Algo.R2c_fused) (p : Plan.t) =
  if p.m = 1 || p.n = 1 then []
  else
    let head =
      match variant with
      | Algo.R2c_fused -> [ ("col_unshuffle", Passes.col_shuffle_ungather p) ]
      | Algo.R2c_decomposed ->
          [
            ("row_unpermute", Passes.permute_rows p ~index:(Plan.q_inv p));
            ("col_unrotate", Passes.rotate_columns p ~amount:(fun j -> -j));
          ]
    in
    rotate_post p (head @ [ ("row_unshuffle", Passes.row_shuffle_ungather p) ])

(* The fused engine performs the decomposed column work (rotate by j,
   permute rows by q) panel-by-panel in one sweep; both sub-passes are
   column-local, so the net map of the fused pass is their composition. *)
let fused_c2r_model (p : Plan.t) =
  if p.m = 1 || p.n = 1 then []
  else
    let size = p.m * p.n in
    let fused_col =
      Perm.pipeline ~size
        [
          Passes.rotate_columns p ~amount:(fun j -> j);
          Passes.permute_rows p ~index:(Plan.q p);
        ]
    in
    rotate_pre p
      [ ("row_shuffle", Passes.row_shuffle_gather p); ("fused_col", fused_col) ]

let fused_r2c_model (p : Plan.t) =
  if p.m = 1 || p.n = 1 then []
  else
    let size = p.m * p.n in
    let fused_col =
      Perm.pipeline ~size
        [
          Passes.permute_rows p ~index:(Plan.q_inv p);
          Passes.rotate_columns p ~amount:(fun j -> -j);
        ]
    in
    rotate_post p
      [
        ("fused_col", fused_col);
        ("row_unshuffle", Passes.row_shuffle_ungather p);
      ]

let transpose_model engine ~m ~n =
  (* Same §5.2 routing as every [transpose]: the long side becomes the
     plan's row count. *)
  let c2r_side = m > n in
  let p = if c2r_side then Plan.make ~m ~n else Plan.make ~m:n ~n:m in
  match engine with
  | Functor | Kernels ->
      if c2r_side then c2r_model ~variant:Algo.C2r_gather p
      else r2c_model ~variant:Algo.R2c_fused p
  | Decomposed | Cache ->
      if c2r_side then c2r_model ~variant:Algo.C2r_decomposed p
      else r2c_model ~variant:Algo.R2c_decomposed p
  | Fused -> if c2r_side then fused_c2r_model p else fused_r2c_model p

(* -- structured probes ---------------------------------------------------- *)

let dedup_in_range ~bound l =
  List.sort_uniq compare (List.filter (fun x -> x >= 0 && x < bound) l)

let border ~bound =
  dedup_in_range ~bound [ 0; 1; 2; bound / 2; bound - 3; bound - 2; bound - 1 ]

(* Flat probe indices for an [m x n] shape: border rows x (border columns
   + panel edges + one column per gcd residue class), the index classes
   where the engines' case splits live (rotation wrap, panel boundary,
   CRT residue selection in d'_inv / q_inv). Panel edges are taken at
   every width the autotuner may select, not just the default 16, so
   the verification evidence covers each supported panel geometry. *)
let probes ?(widths = Tune_params.supported_widths) ~m ~n () =
  let c = Intmath.gcd m n in
  let rows = border ~bound:m in
  let panel_edges =
    List.concat_map
      (fun panel_width ->
        let groups = Intmath.ceil_div n panel_width in
        let picked =
          dedup_in_range ~bound:groups
            [ 0; 1; 2; groups / 2; groups - 2; groups - 1 ]
        in
        List.concat_map
          (fun g ->
            [ (g * panel_width) - 1; g * panel_width; (g * panel_width) + 1 ])
          picked)
      widths
  in
  let residues =
    List.init (min c 8) (fun r ->
        let j = (n / 2) - ((n / 2) mod c) + r in
        [ j; j + c ])
    |> List.concat
  in
  let cols = dedup_in_range ~bound:n (border ~bound:n @ panel_edges @ residues) in
  List.concat_map (fun i -> List.map (fun j -> (i * n) + j) cols) rows

let verify_transpose ?threshold engine ~m ~n =
  let model = transpose_model engine ~m ~n in
  let net = Perm.pipeline ~size:(m * n) (List.map snd model) in
  let verdict =
    Perm.verify ?threshold ~probes:(probes ~m ~n ())
      ~target:(transpose_target ~m ~n) net
  in
  (List.map fst model, verdict)

(* -- rank-N permutation planner ------------------------------------------ *)

let permute_target ~dims ~perm =
  let module Shape = Xpose_permute.Shape in
  let out_dims = Shape.permuted_dims ~dims ~perm in
  let rank = Array.length dims in
  Perm.make ~size:(Shape.nelems dims) (fun l ->
      let out_multi = Shape.multi_index ~dims:out_dims l in
      let src = Array.make rank 0 in
      (* output axis k carries source axis perm.(k) *)
      Array.iteri (fun k ax -> src.(ax) <- out_multi.(k)) perm;
      Shape.linear_index ~dims src)

let permute_model (plan : Xpose_permute.Permute.plan) =
  let size = Xpose_permute.Shape.nelems plan.Xpose_permute.Permute.dims in
  List.map
    (fun pass ->
      ( Format.asprintf "%a" Xpose_permute.Decompose.pp_pass pass,
        Passes.decompose_pass ~size pass ))
    (Xpose_permute.Permute.passes plan)

let permute_probes ~dims =
  let module Shape = Xpose_permute.Shape in
  let axes = Array.map (fun d -> border ~bound:d) dims in
  (* Cartesian product of per-axis border coordinates, capped. *)
  let rec product = function
    | [] -> [ [] ]
    | axis :: rest ->
        let tails = product rest in
        List.concat_map (fun v -> List.map (fun t -> v :: t) tails) axis
  in
  let combos = product (Array.to_list axes) in
  let cap = 4096 in
  List.filteri (fun i _ -> i < cap) combos
  |> List.map (fun multi -> Shape.linear_index ~dims (Array.of_list multi))

let verify_permute ?threshold (plan : Xpose_permute.Permute.plan) =
  let dims = plan.Xpose_permute.Permute.dims
  and perm = plan.Xpose_permute.Permute.perm in
  let model = permute_model plan in
  let size = Xpose_permute.Shape.nelems dims in
  let net = Perm.pipeline ~size (List.map snd model) in
  let verdict =
    Perm.verify ?threshold ~probes:(permute_probes ~dims)
      ~target:(permute_target ~dims ~perm) net
  in
  (List.map fst model, verdict)
