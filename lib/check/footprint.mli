(** Static race analysis of the parallel drivers' chunk footprints.

    Each parallel pass is a barrier: the pool splits an index range into
    per-lane chunks (with {!Xpose_cpu.Pool.chunk_bounds}) and every chunk
    reads/writes a set of flat-index regions. This module rebuilds those
    regions symbolically as strided {e atoms} and proves, pairwise and
    exactly, that no two chunks of a barrier have write/write or
    write/read overlap and that no two chunks share a scratch buffer.
    Nothing here touches matrix data.

    The overlap test is exact (no interval coarsening): a reported
    {!conflict} is a genuine overlap with a witness index, and a clean
    verdict is a disjointness proof for the modeled footprints. *)

type atom = { base : int; width : int; stride : int; count : int }
(** The index set [U_{k < count} [base + k*stride, base + k*stride +
    width)] — a panel of [count] rows of [width] columns at row pitch
    [stride]. [count = 1] (or [width = stride]) degenerates to a plain
    interval. *)

val interval : lo:int -> hi:int -> atom
(** The contiguous range [[lo, hi)]. *)

val columns : m:int -> n:int -> lo:int -> hi:int -> atom
(** Columns [[lo, hi)] of a row-major [m x n] matrix. *)

val block_slots : reps:int -> block:int -> lo:int -> hi:int -> atom
(** Slots [[lo, hi)] of each of [reps] consecutive [block]-wide units —
    the footprint of [Par_permute]'s block-axis split. *)

val overlap : atom -> atom -> int option
(** Smallest-witness test: [Some l] is a flat index covered by both
    atoms, [None] a proof of disjointness. Exact for every stride
    combination (equal strides solve a divisibility window; unequal
    strides materialize the smaller atom). *)

type chunk = { id : int; writes : atom list; reads : atom list; scratch : int }
(** One lane's footprint in one barrier. [scratch] identifies the
    workspace buffer the chunk uses (distinct ids = distinct buffers). *)

type barrier = { name : string; chunks : chunk list }

type kind = Write_write | Write_read | Scratch_shared

type conflict = {
  barrier : string;
  kind : kind;
  chunk_a : int;
  chunk_b : int;
  index : int;  (** witness flat index ([scratch] id for [Scratch_shared]) *)
}

val kind_name : kind -> string
val pp_conflict : Format.formatter -> conflict -> unit

val check_barrier : barrier -> conflict option
(** First conflict in (lower id, higher id) pair order — the same
    deterministic order [Pool.parallel_chunks] reports chunk failures
    in — or [None] if all pairwise footprints are disjoint. *)

val check : barrier list -> conflict option
(** First conflict across a pass sequence of barriers. *)

(** {1 Chunk splits} *)

type split = lo:int -> hi:int -> chunks:int -> int -> int * int
(** Same shape as {!Xpose_cpu.Pool.chunk_bounds}: the bounds of chunk
    [k]. *)

val pool_split : split
(** The split the pool actually executes ([Pool.chunk_bounds]). *)

val off_by_one_split : split
(** The deliberately broken split for the negative CI test: every chunk
    but the last claims one extra trailing element (the classic
    inclusive-[hi] partitioning bug). The analyzer must report a
    write/write conflict under this split. *)

(** {1 Barrier models of the parallel drivers} *)

val default_panel_width : int

val transpose_barriers :
  ?split:split ->
  ?width:int ->
  engine:Spec.engine ->
  lanes:int ->
  m:int ->
  n:int ->
  unit ->
  barrier list
(** The barrier sequence the engine's parallel driver executes for an
    [m x n] transpose on [lanes] workers: row/column chunking for
    [Functor]/[Kernels]/[Decomposed] ([Par_transpose] / [Par_f64]),
    width-aligned panel-group chunking for [Cache]/[Fused]
    ([Par_cache_aware] / [Fused_f64] pool drivers). *)

val batch_barriers :
  ?split:split ->
  ?policy:Xpose_core.Tune_params.batch_split ->
  ?width:int ->
  lanes:int ->
  m:int ->
  n:int ->
  nb:int ->
  unit ->
  barrier list
(** [Fused_f64.transpose_batch] under a batch-split [policy] (default
    [Auto]): whole-matrix batch chunking when the policy goes
    matrix-parallel for this [nb] (always when [lanes = 1]), per-matrix
    panel parallelism otherwise — the same decision rule the engine
    runs, so the race proof covers every tunable schedule. *)

val ooc_barriers :
  ?split:split ->
  ?window_split:Xpose_ooc.Window.splitter ->
  ?width:int ->
  lanes:int ->
  m:int ->
  n:int ->
  window_bytes:int ->
  unit ->
  barrier list
(** [Xpose_ooc.Ooc_f64.transpose_file] under a [window_bytes] budget:
    window-granular barriers proving the row-window, column-panel and
    gather/scatter-stripe splits cover the file without overlap (each
    window is one chunk with its own mapping), plus the per-window pool
    barriers the engine runs inside them — the row shuffle split across
    a window's rows, and the staged panel passes split across a panel's
    columns (in staging coordinates). [window_split] swaps the windowing
    policy; seeding {!Xpose_ooc.Window.overlapping_split} must produce a
    write/write conflict between adjacent windows. Matrices fitting the
    budget delegate to the fused engine's panel model; degenerate
    matrices run no pass and have no barriers. *)

val permute_pass_barriers :
  ?split:split ->
  lanes:int ->
  Xpose_permute.Decompose.pass ->
  unit ->
  barrier list
(** [Par_permute.transpose] on one planner pass: row/column barriers for
    the flat case, batch-axis chunking for batched passes, block-axis
    strided chunking for wide single blocks. *)

val permute_barriers :
  ?split:split ->
  lanes:int ->
  Xpose_permute.Permute.plan ->
  unit ->
  barrier list
(** All barriers of a full planner pipeline, in execution order. *)
