(** Symbolic index permutations — the vocabulary of the plan verifier.

    Every in-place pass of the transposition engines moves whole elements
    and never mixes values, so each pass {e is} a permutation of the flat
    index space: in gather form, a pass satisfies
    [after.(l) = before.(map l)]. A value of type {!t} is that map,
    represented symbolically (a closure over the plan's index equations)
    rather than as a materialized array, so composing and probing a
    multi-gigabyte shape costs nothing per element until an index is
    actually queried. *)

type t
(** A gather map over a flat index space of a given size. *)

val make : size:int -> (int -> int) -> t
(** [make ~size map] wraps [map] as the pass
    [after.(l) = before.(map l)] over indices [[0, size)]. [map] must be
    total on that range; it is never called outside it. *)

val size : t -> int
val apply : t -> int -> int

val id : int -> t
(** The identity pass. *)

val compose : t -> t -> t
(** [compose p q] is the net map of running pass [p] {e first} and pass
    [q] {e second} — note the gather-form reversal: the result maps [l]
    to [apply p (apply q l)].
    @raise Invalid_argument on size mismatch. *)

val pipeline : size:int -> t list -> t
(** [pipeline ~size passes] is the net gather map of running [passes] in
    list order (folds {!compose}; [[]] is {!id}). *)

type verdict =
  | Proved of { checked : int; exhaustive : bool }
      (** Every index checked agreed with the target; [exhaustive] means
          the whole index space was enumerated, otherwise [checked]
          structured probes and deterministic samples were. *)
  | Mismatch of { index : int; expected : int; got : int }
      (** The first disagreeing flat index: the target gathers from
          [expected], the pipeline from [got]. *)

val default_threshold : int
(** Index-space size up to which {!verify} is exhaustive ([2^18]). *)

val verify : ?threshold:int -> ?probes:int list -> target:t -> t -> verdict
(** [verify ~target p] proves [p] equal to [target]: exhaustively when
    [size <= threshold], otherwise at the caller's structured [probes]
    (out-of-range or duplicate probes are dropped) plus a deterministic
    pseudo-random sample of the index space.
    @raise Invalid_argument on size mismatch. *)

val pp_verdict : Format.formatter -> verdict -> unit
