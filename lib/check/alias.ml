(* Parametric alias certification: the chunk and window splits the
   parallel drivers partition index space with are proved disjoint
   symbolically -- for every range, lane count, panel width, batch
   size, block width and window budget at once -- by the same
   polynomial prover that backs {!Bounds}. {!Footprint} checks the
   same splits pairwise on concrete shapes; the certificates here
   quantify that argument, so a green grid says the drivers' barriers
   can never overlap on ANY shape, not just the enumerated ones.

   Each certificate models one split family: [Pool.chunk_bounds] (base
   and remainder of the Euclidean division enter as bounded variables
   tied by the division identity), the ooc [Window.split], and the
   footprint maps the drivers lift a split through (row intervals,
   column ranges, width-scaled panel groups, batch slices, strided
   block slots, per-lane scratch slices). When a proof fails the
   analyzer searches the corresponding concrete split function for a
   minimal overlap witness, turning incompleteness into a refutation
   when one exists -- the seeded [off_by_one_split] and
   [overlapping_split] negatives are refuted exactly this way. *)

open Xpose_core

type result = {
  subject : string;
  proved : bool;
  obligations : int;  (** polynomial goals discharged (branches counted) *)
  detail : string;
  counterexample : string option;
}

exception Fail of string

let v = Poly.P.var
let pc = Poly.P.const

let env_of names =
  Poly.SMap.of_seq (List.to_seq (List.map (fun n -> (n, Poly.P.var n)) names))

(* -- symbolic split models ------------------------------------------------ *)

(* Symbolic [Pool.chunk_bounds] over [lo, hi) with [lanes] chunks.
   [base] and [rem] are the quotient and remainder of (hi - lo) /
   lanes, constrained only by the Euclidean identity and 0 <= rem <
   lanes, so one proof covers every division result. [pair] caps the
   chunk index [k] at lanes - 2 so adjacent-pair goals may mention
   k + 1; otherwise k ranges over all chunks. *)
let add_pool ctx ~lo ~hi ~pair =
  let open Poly in
  let ctx = add_var ctx "lanes" ~lowers:[ pc 1 ] ~uppers:[] in
  let ctx = add_var ctx "base" ~lowers:[ P.zero ] ~uppers:[] in
  let ctx =
    add_var ctx "rem" ~lowers:[ P.zero ] ~uppers:[ P.sub (v "lanes") (pc 1) ]
  in
  let len = P.sub hi lo in
  let split = P.add (P.mul (v "base") (v "lanes")) (v "rem") in
  let ctx = add_fact ctx (P.sub len split) in
  let ctx = add_fact ctx (P.sub split len) in
  add_var ctx "k" ~lowers:[ P.zero ]
    ~uppers:[ P.sub (v "lanes") (pc (if pair then 2 else 1)) ]

(* Chunk k of the pool split covers [pool_clo k, pool_chi k) -- the
   expression-level transcription of [Pool.chunk_bounds]. *)
let pool_clo ~lo k = Access.(lo +: (k *: var "base") +: Min (k, var "rem"))

let pool_chi ~lo k =
  Access.(pool_clo ~lo k +: var "base" +: Ite (lt k (var "rem"), num 1, num 0))

let pool_names = [ "lo"; "hi"; "lanes"; "base"; "rem"; "k" ]

let range_ctx =
  let open Poly in
  let ctx = add_var ctx_empty "lo" ~lowers:[ P.zero ] ~uppers:[] in
  add_var ctx "hi" ~lowers:[ v "lo" ] ~uppers:[]

(* Symbolic [Window.split ~total ~per]: window k covers
   [k*per, min total ((k+1)*per)) and exists iff k*per < total. *)
let add_window ctx ~pair =
  let open Poly in
  let ctx = add_var ctx "total" ~lowers:[ pc 1 ] ~uppers:[] in
  let ctx = add_var ctx "per" ~lowers:[ pc 1 ] ~uppers:[] in
  let ctx = add_var ctx "k" ~lowers:[ P.zero ] ~uppers:[] in
  let exists k = P.sub (P.sub (v "total") (pc 1)) (P.mul k (v "per")) in
  let ctx = add_fact ctx (exists (v "k")) in
  if pair then add_fact ctx (exists (P.add (v "k") (pc 1))) else ctx

let win_clo k = Access.(k *: var "per")
let win_chi k = Access.(Min (var "total", (k +: num 1) *: var "per"))

(* -- obligation discharge ------------------------------------------------- *)

type goal = {
  what : string;
  gctx : Poly.ctx;
  genv : Poly.env;
  exp : Access.exp;  (** must be [>= 0] on every covering branch *)
}

let prove ~count { what; gctx; genv; exp } =
  List.iter
    (fun (ctx, p) ->
      incr count;
      if not (Poly.prove_nonneg ctx p) then
        raise
          (Fail
             (Printf.sprintf "%s: no proof of %s >= 0" what
                (Poly.P.to_string p))))
    (Poly.translate gctx genv exp)

let certificate ~subject ~detail ~counter goals : result =
  let count = ref 0 in
  match List.iter (prove ~count) goals with
  | () ->
      {
        subject;
        proved = true;
        obligations = !count;
        detail =
          Printf.sprintf "%d obligations proved for all shapes: %s" !count
            detail;
        counterexample = None;
      }
  | exception (Fail msg | Poly.Unsupported msg) -> (
      match counter () with
      | Some cx ->
          {
            subject;
            proved = false;
            obligations = 0;
            detail = Printf.sprintf "refuted: %s" cx;
            counterexample = Some cx;
          }
      | None ->
          {
            subject;
            proved = false;
            obligations = 0;
            detail =
              Printf.sprintf "no proof found (%s); no small counterexample" msg;
            counterexample = None;
          })

(* -- concrete refutation search ------------------------------------------- *)

exception Found of string

(* Smallest range first, then lane count: the first overlap or escape
   found is the minimal witness in this deterministic order. *)
let split_counterexample (split : Footprint.split) : string option =
  try
    for hi = 0 to 12 do
      for lanes = 1 to 4 do
        let b = Array.init lanes (fun k -> split ~lo:0 ~hi ~chunks:lanes k) in
        Array.iteri
          (fun k (l1, h1) ->
            if l1 < h1 && (l1 < 0 || h1 > hi) then
              raise
                (Found
                   (Printf.sprintf
                      "lo=0 hi=%d lanes=%d: chunk %d [%d,%d) escapes [0,%d)" hi
                      lanes k l1 h1 hi));
            for k' = k + 1 to lanes - 1 do
              let l2, h2 = b.(k') in
              let o_lo = max l1 l2 and o_hi = min h1 h2 in
              if o_lo < o_hi then
                raise
                  (Found
                     (Printf.sprintf
                        "lo=0 hi=%d lanes=%d: chunk %d [%d,%d) overlaps chunk \
                         %d [%d,%d) at index %d"
                        hi lanes k l1 h1 k' l2 h2 o_lo))
            done)
          b
      done
    done;
    None
  with Found s -> Some s

let window_counterexample (splitter : Xpose_ooc.Window.splitter) :
    string option =
  try
    for total = 0 to 12 do
      for per = 1 to 4 do
        let ws = Array.of_list (splitter ~total ~per) in
        Array.iteri
          (fun i (w : Xpose_ooc.Window.t) ->
            if w.lo < w.hi && (w.lo < 0 || w.hi > total) then
              raise
                (Found
                   (Printf.sprintf
                      "total=%d per=%d: window %d [%d,%d) escapes [0,%d)" total
                      per i w.lo w.hi total));
            for j = i + 1 to Array.length ws - 1 do
              let x = ws.(j) in
              let o_lo = max w.lo x.Xpose_ooc.Window.lo
              and o_hi = min w.hi x.Xpose_ooc.Window.hi in
              if o_lo < o_hi then
                raise
                  (Found
                     (Printf.sprintf
                        "total=%d per=%d: window %d [%d,%d) overlaps window %d \
                         [%d,%d) at index %d"
                        total per i w.lo w.hi j x.Xpose_ooc.Window.lo
                        x.Xpose_ooc.Window.hi o_lo))
            done)
          ws
      done
    done;
    None
  with Found s -> Some s

(* -- the certificates ----------------------------------------------------- *)

(* The split itself: [Pool.chunk_bounds] partitions [lo, hi) exactly,
   for every range and lane count. Everything the row/column drivers
   run ([Par_transpose], [Par_f64], the ooc per-window shuffles)
   reduces to this split or a monotone image of it. *)
let split_pool () =
  let any = add_pool range_ctx ~lo:(v "lo") ~hi:(v "hi") ~pair:false in
  let pair = add_pool range_ctx ~lo:(v "lo") ~hi:(v "hi") ~pair:true in
  let genv = env_of pool_names in
  let k = Access.var "k" in
  let k1 = Access.(k +: num 1) in
  let lo = Access.var "lo" in
  let clo = pool_clo ~lo and chi = pool_chi ~lo in
  certificate ~subject:"split/pool"
    ~detail:
      "Pool.chunk_bounds partitions [lo, hi) exactly for every range and \
       lane count"
    ~counter:(fun () -> split_counterexample Footprint.pool_split)
    [
      { what = "chunk well-formed"; gctx = any; genv; exp = Access.(chi k -: clo k) };
      {
        what = "chunk starts at or after lo";
        gctx = any;
        genv;
        exp = Access.(clo k -: var "lo");
      };
      {
        what = "chunk ends at or before hi";
        gctx = any;
        genv;
        exp = Access.(var "hi" -: chi k);
      };
      {
        what = "adjacent chunks disjoint";
        gctx = pair;
        genv;
        exp = Access.(clo k1 -: chi k);
      };
      {
        what = "chunks tile exactly";
        gctx = pair;
        genv;
        exp = Access.(chi k -: clo k1);
      };
      {
        what = "first chunk starts at lo";
        gctx = any;
        genv;
        exp = Access.(clo (num 0) -: var "lo");
      };
      {
        what = "first chunk starts at lo";
        gctx = any;
        genv;
        exp = Access.(var "lo" -: clo (num 0));
      };
      {
        what = "last chunk ends at hi";
        gctx = any;
        genv;
        exp = Access.(var "hi" -: chi (var "lanes" -: num 1));
      };
      {
        what = "last chunk ends at hi";
        gctx = any;
        genv;
        exp = Access.(chi (var "lanes" -: num 1) -: var "hi");
      };
    ]

(* The ooc windowing: [Window.split] tiles [0, total) exactly for
   every total and budget-derived window size. *)
let split_window () =
  let any = add_window Poly.ctx_empty ~pair:false in
  let pair = add_window Poly.ctx_empty ~pair:true in
  let genv = env_of [ "total"; "per"; "k" ] in
  let k = Access.var "k" in
  let k1 = Access.(k +: num 1) in
  certificate ~subject:"split/window"
    ~detail:
      "Window.split tiles [0, total) exactly for every total and window size"
    ~counter:(fun () -> window_counterexample Xpose_ooc.Window.split)
    [
      {
        what = "window well-formed";
        gctx = any;
        genv;
        exp = Access.(win_chi k -: win_clo k);
      };
      {
        what = "window within range";
        gctx = any;
        genv;
        exp = Access.(var "total" -: win_chi k);
      };
      {
        what = "adjacent windows disjoint";
        gctx = any;
        genv;
        exp = Access.(win_clo k1 -: win_chi k);
      };
      {
        what = "windows tile exactly";
        gctx = pair;
        genv;
        exp = Access.(win_chi k -: win_clo k1);
      };
    ]

(* Interval lift: lanes own [clo*scale, chi*scale) of a flat buffer --
   the row barriers (scale = row width n) and the batch/permute slice
   barriers (scale = elements per matrix). Disjoint chunk index ranges
   stay disjoint under the scaling, parametrically in the scale. *)
let interval_lift ~subject ~scale ~detail () =
  let base = Poly.add_var range_ctx scale ~lowers:[ pc 1 ] ~uppers:[] in
  let any = add_pool base ~lo:(v "lo") ~hi:(v "hi") ~pair:false in
  let pair = add_pool base ~lo:(v "lo") ~hi:(v "hi") ~pair:true in
  let genv = env_of (scale :: pool_names) in
  let k = Access.var "k" in
  let k1 = Access.(k +: num 1) in
  let s = Access.var scale in
  let lo = Access.var "lo" in
  let clo = pool_clo ~lo and chi = pool_chi ~lo in
  certificate ~subject ~detail
    ~counter:(fun () -> split_counterexample Footprint.pool_split)
    [
      {
        what = "adjacent footprints disjoint";
        gctx = pair;
        genv;
        exp = Access.((clo k1 *: s) -: (chi k *: s));
      };
      {
        what = "footprint below range top";
        gctx = any;
        genv;
        exp = Access.((var "hi" *: s) -: (chi k *: s));
      };
      {
        what = "footprint above range base";
        gctx = any;
        genv;
        exp = Access.((clo k *: s) -: (var "lo" *: s));
      };
    ]

(* Column barriers: lanes own column ranges of a row-major matrix; the
   strided footprints {r*n + j | j in [clo, chi)} of two lanes are
   disjoint because the column ranges are disjoint sub-ranges of one
   row, i.e. the ranges never overlap and never leave [0, n). *)
let column_chunks () =
  let base = Poly.add_var Poly.ctx_empty "n" ~lowers:[ pc 1 ] ~uppers:[] in
  let any = add_pool base ~lo:Poly.P.zero ~hi:(v "n") ~pair:false in
  let pair = add_pool base ~lo:Poly.P.zero ~hi:(v "n") ~pair:true in
  let genv = env_of [ "n"; "lanes"; "base"; "rem"; "k" ] in
  let k = Access.var "k" in
  let k1 = Access.(k +: num 1) in
  let clo = pool_clo ~lo:(Access.num 0) and chi = pool_chi ~lo:(Access.num 0) in
  certificate ~subject:"barrier/column-chunks"
    ~detail:
      "per-lane column ranges are disjoint sub-ranges of every row (strided \
       footprints never meet)"
    ~counter:(fun () -> split_counterexample Footprint.pool_split)
    [
      {
        what = "adjacent column ranges disjoint";
        gctx = pair;
        genv;
        exp = Access.(clo k1 -: chi k);
      };
      {
        what = "column range within the row";
        gctx = any;
        genv;
        exp = Access.(var "n" -: chi k);
      };
      {
        what = "column range starts in the row";
        gctx = any;
        genv;
        exp = clo k;
      };
    ]

(* Panel barriers: the pool splits ceil(n/w) column groups and each
   lane touches columns [g_lo*w, min n (g_hi*w)). The group count
   enters via the two ceiling-division facts, the width stays
   symbolic, so one proof covers every (n, w, lanes). *)
let panel_groups () =
  let open Poly in
  let base = add_var ctx_empty "n" ~lowers:[ pc 1 ] ~uppers:[] in
  let base = add_var base "w" ~lowers:[ pc 1 ] ~uppers:[] in
  let base = add_var base "groups" ~lowers:[ pc 1 ] ~uppers:[] in
  let gw = P.mul (v "groups") (v "w") in
  let base = add_fact base (P.sub gw (v "n")) in
  let base =
    add_fact base (P.sub (P.add (v "n") (P.sub (v "w") (pc 1))) gw)
  in
  let any = add_pool base ~lo:P.zero ~hi:(v "groups") ~pair:false in
  let pair = add_pool base ~lo:P.zero ~hi:(v "groups") ~pair:true in
  let genv = env_of [ "n"; "w"; "groups"; "lanes"; "base"; "rem"; "k" ] in
  let k = Access.var "k" in
  let k1 = Access.(k +: num 1) in
  let clo = pool_clo ~lo:(Access.num 0) and chi = pool_chi ~lo:(Access.num 0) in
  certificate ~subject:"barrier/panel-groups"
    ~detail:
      "width-aligned panel-group column ranges are disjoint and clipped to \
       the matrix for every width and lane count"
    ~counter:(fun () -> split_counterexample Footprint.pool_split)
    [
      {
        what = "adjacent panel groups disjoint";
        gctx = pair;
        genv;
        exp =
          Access.((clo k1 *: var "w") -: Min (var "n", chi k *: var "w"));
      };
      {
        what = "panel group clipped to the matrix";
        gctx = any;
        genv;
        exp = Access.(var "n" -: Min (var "n", chi k *: var "w"));
      };
      {
        what = "panel group starts in the matrix";
        gctx = any;
        genv;
        exp = Access.(clo k *: var "w");
      };
    ]

(* Block-axis barriers ([Par_permute] wide single blocks): lane k owns
   slots [clo, chi) of each of [reps] consecutive [blk]-wide units.
   Same-rep disjointness is the split; cross-rep disjointness needs
   the slot ranges to stay inside one block. *)
let block_slots () =
  let open Poly in
  let base = add_var ctx_empty "blk" ~lowers:[ pc 1 ] ~uppers:[] in
  let base = add_var base "reps" ~lowers:[ pc 1 ] ~uppers:[] in
  let any = add_pool base ~lo:P.zero ~hi:(v "blk") ~pair:false in
  let pair = add_pool base ~lo:P.zero ~hi:(v "blk") ~pair:true in
  let cross =
    let ctx =
      add_var any "r1" ~lowers:[ P.zero ] ~uppers:[ P.sub (v "reps") (pc 1) ]
    in
    let ctx =
      add_var ctx "r2"
        ~lowers:[ P.add (v "r1") (pc 1) ]
        ~uppers:[ P.sub (v "reps") (pc 1) ]
    in
    add_var ctx "k2" ~lowers:[ P.zero ] ~uppers:[ P.sub (v "lanes") (pc 1) ]
  in
  let genv =
    env_of [ "blk"; "reps"; "lanes"; "base"; "rem"; "k"; "r1"; "r2"; "k2" ]
  in
  let k = Access.var "k" in
  let k1 = Access.(k +: num 1) in
  let clo = pool_clo ~lo:(Access.num 0) and chi = pool_chi ~lo:(Access.num 0) in
  certificate ~subject:"barrier/block-slots"
    ~detail:
      "strided block-slot footprints are disjoint within and across \
       repetitions for every block width, repetition count and lane count"
    ~counter:(fun () -> split_counterexample Footprint.pool_split)
    [
      {
        what = "adjacent slot ranges disjoint";
        gctx = pair;
        genv;
        exp = Access.(clo k1 -: chi k);
      };
      {
        what = "slot range within the block";
        gctx = any;
        genv;
        exp = Access.(var "blk" -: chi k);
      };
      {
        what = "later-rep slots after earlier-rep slots";
        gctx = cross;
        genv;
        exp =
          Access.(
            ((var "r2" *: var "blk") +: clo (var "k2"))
            -: ((var "r1" *: var "blk") +: chi k));
      };
    ]

(* Ooc row windows and stripes: window k owns file rows [clo, chi),
   i.e. the flat interval [clo*n, chi*n). *)
let ooc_windows () =
  let base = Poly.add_var Poly.ctx_empty "n" ~lowers:[ pc 1 ] ~uppers:[] in
  let any = add_window base ~pair:false in
  let genv = env_of [ "n"; "total"; "per"; "k" ] in
  let k = Access.var "k" in
  let k1 = Access.(k +: num 1) in
  let s = Access.var "n" in
  certificate ~subject:"barrier/ooc-windows"
    ~detail:
      "row-window and stripe file footprints are disjoint and within the \
       file for every shape and window budget (column panels reduce to the \
       window split on columns)"
    ~counter:(fun () -> window_counterexample Xpose_ooc.Window.split)
    [
      {
        what = "adjacent window footprints disjoint";
        gctx = any;
        genv;
        exp = Access.((win_clo k1 *: s) -: (win_chi k *: s));
      };
      {
        what = "window footprint within the file";
        gctx = any;
        genv;
        exp = Access.((var "total" *: s) -: (win_chi k *: s));
      };
    ]

(* Per-lane workspace: lane k's scratch slice [k*slot, (k+1)*slot) of
   a shared pool. The engines actually allocate one buffer per lane
   (scratch id = lane index), which this subsumes: distinct lanes
   never share a workspace slot. *)
let scratch_slots () =
  let open Poly in
  let ctx = add_var ctx_empty "slot" ~lowers:[ P.zero ] ~uppers:[] in
  let ctx = add_var ctx "lanes" ~lowers:[ pc 1 ] ~uppers:[] in
  let any =
    add_var ctx "k" ~lowers:[ P.zero ] ~uppers:[ P.sub (v "lanes") (pc 1) ]
  in
  let pairc =
    add_var any "k2"
      ~lowers:[ P.add (v "k") (pc 1) ]
      ~uppers:[ P.sub (v "lanes") (pc 1) ]
  in
  let genv = env_of [ "slot"; "lanes"; "k"; "k2" ] in
  let k = Access.var "k" in
  certificate ~subject:"barrier/scratch-slots"
    ~detail:
      "per-lane workspace slices are pairwise disjoint and within the pool \
       for every slot size and lane count"
    ~counter:(fun () -> None)
    [
      {
        what = "distinct lanes' slices disjoint";
        gctx = pairc;
        genv;
        exp =
          Access.((var "k2" *: var "slot") -: ((k +: num 1) *: var "slot"));
      };
      {
        what = "slice within the pool";
        gctx = any;
        genv;
        exp =
          Access.((var "lanes" *: var "slot") -: ((k +: num 1) *: var "slot"));
      };
    ]

(* Workspace <-> matrix disjointness is structural: every pass
   declares its scratch as a region distinct from the matrix, and
   distinct regions are distinct allocations. With {!Bounds}'
   in-bounds certificates an access can therefore only alias an
   access to the same region. This check enforces the two premises
   that argument rests on: region names are pairwise distinct within
   each summary, and every access targets a declared region. *)
let region_discipline () =
  let summaries =
    Access.Passes.all_pipeline_passes
    @ Xpose_cpu.Fused.Summary.panel_passes
    @ Xpose_cpu.Fused.Summary.c2r_passes
    @ Xpose_cpu.Fused.Summary.r2c_passes
    @ Xpose_ooc.Ooc_access.all
  in
  let count = ref 0 in
  let problem = ref None in
  let flag msg = if !problem = None then problem := Some msg in
  List.iter
    (fun (s : Access.summary) ->
      let declared =
        List.map (fun (r : Access.region) -> r.rname) s.regions
      in
      incr count;
      if
        List.length (List.sort_uniq compare declared)
        <> List.length declared
      then flag (Printf.sprintf "%s: duplicate region declaration" s.pass);
      let rec walk = function
        | Access.Acc { region; _ } ->
            incr count;
            if not (List.mem region declared) then
              flag
                (Printf.sprintf "%s: access to undeclared region %s" s.pass
                   region)
        | Access.For { body; _ }
        | Access.Bind { body; _ }
        | Access.When (_, body) ->
            List.iter walk body
      in
      List.iter walk s.body)
    summaries;
  match !problem with
  | None ->
      {
        subject = "regions/workspace-matrix";
        proved = true;
        obligations = !count;
        detail =
          Printf.sprintf
            "%d structural checks: regions are distinct allocations and \
             every access names a declared one (cross-region disjointness \
             by construction, in-region bounds by the Bounds grid)"
            !count;
        counterexample = None;
      }
  | Some msg ->
      {
        subject = "regions/workspace-matrix";
        proved = false;
        obligations = 0;
        detail = msg;
        counterexample = None;
      }

(* -- seeded negatives ----------------------------------------------------- *)

(* The off-by-one chunk split ([Footprint.off_by_one_split]): every
   chunk but the last claims one extra trailing element. Its adjacency
   goal is false, so no sound proof exists; the refutation comes from
   the concrete split, smallest range first. *)
let seeded_pool () =
  let pair = add_pool range_ctx ~lo:(v "lo") ~hi:(v "hi") ~pair:true in
  let genv = env_of pool_names in
  let k = Access.var "k" in
  let lo = Access.var "lo" in
  let clo = pool_clo ~lo and chi = pool_chi ~lo in
  let chi_bad kx =
    Access.(
      Ite
        ( lt kx (var "lanes" -: num 1),
          Min (var "hi", chi kx +: num 1),
          chi kx ))
  in
  certificate ~subject:"seeded/off-by-one-split"
    ~detail:"the off-by-one chunk split must be refuted"
    ~counter:(fun () -> split_counterexample Footprint.off_by_one_split)
    [
      {
        what = "adjacent chunks disjoint";
        gctx = pair;
        genv;
        exp = Access.(clo (k +: num 1) -: chi_bad k);
      };
    ]

(* The overlapping window split ([Window.overlapping_split]): every
   window but the last claims one extra trailing unit. *)
let seeded_window () =
  let pair = add_window Poly.ctx_empty ~pair:true in
  let genv = env_of [ "total"; "per"; "k" ] in
  let k = Access.var "k" in
  let chi_bad kx =
    Access.(
      Ite (lt (win_chi kx) (var "total"), win_chi kx +: num 1, win_chi kx))
  in
  certificate ~subject:"seeded/overlapping-windows"
    ~detail:"the overlapping window split must be refuted"
    ~counter:(fun () -> window_counterexample Xpose_ooc.Window.overlapping_split)
    [
      {
        what = "adjacent windows disjoint";
        gctx = pair;
        genv;
        exp = Access.(win_clo (k +: num 1) -: chi_bad k);
      };
    ]

(* -- the certificate grid ------------------------------------------------- *)

let run ?(seed_race = false) () : result list =
  [
    split_pool ();
    split_window ();
    interval_lift ~subject:"barrier/row-chunks" ~scale:"n"
      ~detail:
        "per-lane row intervals of the flat matrix are disjoint and within \
         the buffer for every shape and lane count (row barriers of every \
         engine and the ooc per-window shuffles)"
      ();
    column_chunks ();
    panel_groups ();
    interval_lift ~subject:"barrier/batch-slices" ~scale:"len"
      ~detail:
        "per-lane whole-matrix slices of a batch are disjoint and within \
         the buffer for every matrix size, batch size and lane count \
         (matrix-parallel batch schedules and permute batch/slice axes)"
      ();
    block_slots ();
    ooc_windows ();
    scratch_slots ();
    region_discipline ();
  ]
  @ if seed_race then [ seeded_pool (); seeded_window () ] else []
