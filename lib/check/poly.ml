(* A small multivariate polynomial prover for the access-summary proof
   obligations of {!Bounds} and {!Alias}.

   Everything is reduced to goals of the form [p >= 0] where [p] is an
   integer polynomial over variables that are all provably nonnegative.
   A context carries, per variable, polynomial lower and upper bounds
   (inclusive), plus a set of facts [f >= 0]. The prover is a bounded
   DFS over five sound moves:

   - base: every coefficient of [p] is >= 0 (all vars nonnegative);
   - factor: [p = v * q] for a variable [v] -- recurse on [q];
   - upper-substitute: a variable [v] occurring with a negative
     coefficient is replaced by [U - v'] for an upper bound [U] of [v]
     and a fresh [v' in [0, U - L]];
   - subtract: [p := p - mu * f] for a fact [f >= 0] and a multiplier
     [mu] that is 1 or a variable of [p] (sound: all vars >= 0);
   - lower-substitute: [v := L + v'] for a nonzero lower bound [L] and
     fresh [v' >= 0].

   Each move preserves "goal >= 0 in every model of the context", so a
   successful derivation is a proof valid for all shapes at once. The
   search is capped (depth and node budget), so failure is fast -- and
   failure is not a verdict: {!Bounds} then looks for a concrete
   counterexample shape by deterministic enumeration.

   The same module hosts the translator from {!Xpose_core.Access}
   expressions to polynomials. Non-polynomial operations fork the
   obligation into covering branches ([Min]/[Max]/[Ite]/inequality
   negation) or introduce constrained fresh variables with divisibility
   side conditions ([Div]/[Mod], mirroring [Intmath.ediv]/[emod]). *)

module SMap = Map.Make (String)

module P = struct
  module Mono = struct
    type t = int SMap.t
    (* var -> exponent, exponents >= 1; empty = the unit monomial *)

    let compare = SMap.compare Int.compare
    let one = SMap.empty
    let var s = SMap.singleton s 1
    let mul = SMap.union (fun _ a b -> Some (a + b))

    let to_string m =
      if SMap.is_empty m then "1"
      else
        String.concat "*"
          (List.map
             (fun (v, e) ->
               if e = 1 then v else Printf.sprintf "%s^%d" v e)
             (SMap.bindings m))
  end

  module MMap = Map.Make (Mono)

  type t = int MMap.t
  (* monomial -> coefficient, coefficients <> 0 *)

  let zero : t = MMap.empty
  let const c = if c = 0 then zero else MMap.singleton Mono.one c
  let var s = MMap.singleton (Mono.var s) 1

  let add : t -> t -> t =
    MMap.union (fun _ a b -> if a + b = 0 then None else Some (a + b))

  let neg p = MMap.map (fun c -> -c) p
  let sub a b = add a (neg b)

  let mul (a : t) (b : t) : t =
    MMap.fold
      (fun ma ca acc ->
        MMap.fold
          (fun mb cb acc ->
            add acc (MMap.singleton (Mono.mul ma mb) (ca * cb)))
          b acc)
      a zero

  let rec pow p e = if e <= 0 then const 1 else mul p (pow p (e - 1))
  let equal a b = MMap.equal Int.equal a b
  let compare = MMap.compare Int.compare
  let is_zero = MMap.is_empty
  let all_nonneg p = MMap.for_all (fun _ c -> c >= 0) p

  let vars p =
    MMap.fold
      (fun m _ acc -> SMap.fold (fun v _ acc -> v :: acc) m acc)
      p []
    |> List.sort_uniq String.compare

  (* Variables appearing in some monomial with a negative coefficient. *)
  let neg_vars p =
    MMap.fold
      (fun m c acc ->
        if c < 0 then SMap.fold (fun v _ acc -> v :: acc) m acc else acc)
      p []
    |> List.sort_uniq String.compare

  let pos_vars p =
    MMap.fold
      (fun m c acc ->
        if c > 0 then SMap.fold (fun v _ acc -> v :: acc) m acc else acc)
      p []
    |> List.sort_uniq String.compare

  (* Concrete evaluation under a full assignment; [None] when the
     polynomial mentions an unassigned variable. *)
  let eval (asg : int SMap.t) (p : t) : int option =
    let rec ipow x e = if e <= 0 then 1 else x * ipow x (e - 1) in
    try
      Some
        (MMap.fold
           (fun m c acc ->
             let mv =
               SMap.fold
                 (fun v e acc ->
                   match SMap.find_opt v asg with
                   | Some x -> acc * ipow x e
                   | None -> raise Exit)
                 m 1
             in
             acc + (c * mv))
           p 0)
    with Exit -> None

  let subst (p : t) v (q : t) : t =
    MMap.fold
      (fun m c acc ->
        match SMap.find_opt v m with
        | None -> add acc (MMap.singleton m c)
        | Some e ->
            let rest = MMap.singleton (SMap.remove v m) c in
            add acc (mul rest (pow q e)))
      p zero

  (* [Some q] with [p = v * q] when every monomial contains [v]. *)
  let factor_var (p : t) v : t option =
    if is_zero p then None
    else if MMap.for_all (fun m _ -> SMap.mem v m) p then
      Some
        (MMap.fold
           (fun m c acc ->
             let e = SMap.find v m in
             let m' = if e = 1 then SMap.remove v m else SMap.add v (e - 1) m in
             add acc (MMap.singleton m' c))
           p zero)
    else None

  (* Heuristic goal cost for best-first search: how many monomials
     still have a negative coefficient, then their total coefficient
     magnitude (a subtract that scales a negative term up is churn --
     chains like [g - k*f] applied forever keep every other component
     flat while |coeff| climbs), then their degree mass (high-degree
     negative terms are the hardest to discharge), then monomial
     count. *)
  let cost p =
    let degree m = SMap.fold (fun _ e acc -> acc + e) m 0 in
    ( MMap.fold (fun _ c acc -> if c < 0 then acc + 1 else acc) p 0,
      MMap.fold (fun _ c acc -> if c < 0 then acc - c else acc) p 0,
      MMap.fold (fun m c acc -> if c < 0 then acc + degree m else acc) p 0,
      MMap.cardinal p )

  let to_string p =
    if is_zero p then "0"
    else
      String.concat " + "
        (List.map
           (fun (m, c) ->
             if SMap.is_empty m then string_of_int c
             else if c = 1 then Mono.to_string m
             else Printf.sprintf "%d*%s" c (Mono.to_string m))
           (MMap.bindings p))
end

(* -- contexts ------------------------------------------------------------ *)

type info = { lowers : P.t list; uppers : P.t list }

type ctx = {
  vars : info SMap.t;  (** every variable is >= 0 in every model *)
  facts : P.t list;  (** each [f] satisfies [f >= 0] in every model *)
  fresh : int;
}

let ctx_empty = { vars = SMap.empty; facts = []; fresh = 0 }

let add_var ctx name ~lowers ~uppers =
  { ctx with vars = SMap.add name { lowers; uppers } ctx.vars }

let add_fact ctx f = if P.is_zero f then ctx else { ctx with facts = f :: ctx.facts }

let fresh_var ctx prefix =
  (Printf.sprintf "!%s%d" prefix ctx.fresh, { ctx with fresh = ctx.fresh + 1 })

(* Change of variable: rewrite the whole context under [v := r] and
   drop [v]. Sound whenever the equation holds in every model of the
   (restricted) context: substituted facts and bounds stay nonnegative
   there, and no information is stranded on the eliminated variable --
   a fact like [rem - v - 1 >= 0] keeps its correlation with the fresh
   variable instead of silently going dead. [extra] carries [v]'s own
   residual bounds re-expressed through [r]; all-nonneg residuals are
   dropped (subtracting one can only add negative monomials). *)
let subst_ctx ctx v r extra =
  let sub p = P.subst p v r in
  let vars =
    SMap.map
      (fun { lowers; uppers } ->
        { lowers = List.map sub lowers; uppers = List.map sub uppers })
      (SMap.remove v ctx.vars)
  in
  let extra = List.filter (fun f -> not (P.all_nonneg f)) extra in
  { ctx with vars; facts = List.rev_append extra (List.map sub ctx.facts) }

(* -- the prover ---------------------------------------------------------- *)

let default_depth = 12
let default_budget = 6000

let beam_width = 40

let prove_nonneg ?(depth = default_depth) ?(budget = default_budget) ctx goal =
  let bounds_of ctx v =
    match SMap.find_opt v ctx.vars with
    | Some i -> i
    | None -> { lowers = [ P.zero ]; uppers = [] }
  in
  (* Concrete models of the context, for falsification pruning: every
     prover move is sound, so a candidate goal that evaluates negative
     in a genuine model can never be proved -- discarding it loses
     nothing and keeps lossy subtract/substitution chains from burning
     the budget. Assignments are built by a dependency fixpoint
     (bounds reference earlier variables), the value choice is
     patterned per variable so the draws spread across the box, and
     only assignments satisfying every fact survive (divisibility
     facts reject most box corners; whatever remains is still a
     model). *)
  let base_draws =
    let nvars = SMap.cardinal ctx.vars in
    let lo_of asg lowers =
      List.fold_left
        (fun acc l ->
          match (acc, P.eval asg l) with
          | Some a, Some x -> Some (Stdlib.max a x)
          | _ -> None)
        (Some 0) lowers
    in
    let hi_of asg uppers =
      (* [Some None] = unbounded, [None] = not yet evaluable *)
      List.fold_left
        (fun acc u ->
          match (acc, P.eval asg u) with
          | Some (Some a), Some x -> Some (Some (min a x))
          | Some None, Some x -> Some (Some x)
          | _ -> None)
        (Some None) uppers
    in
    (* Facts mentioning a given variable: the value choice below only
       needs to re-check those. *)
    let facts_of v =
      List.filter (fun f -> List.mem v (P.vars f)) ctx.facts
    in
    let mk pat =
      let asg = ref SMap.empty in
      let feasible = ref true in
      let assign v { lowers; uppers } =
        match (lo_of !asg lowers, hi_of !asg uppers) with
        | Some lo, Some hi ->
            (match hi with
            | Some h when h < lo -> feasible := false
            | _ -> ());
            if !feasible then begin
              let cap =
                match hi with
                | Some h -> min h (lo + 15)
                | None -> lo + 2 + (pat mod 2)
              in
              let start =
                match Hashtbl.hash (pat, v) mod 3 with
                | 0 -> lo
                | 1 -> cap
                | _ -> lo + ((cap - lo) / 2)
              in
              (* first value consistent with every fact that is fully
                 determined so far (undetermined facts pass; the final
                 whole-assignment filter still decides) *)
              let vfacts = facts_of v in
              let ok a =
                List.for_all
                  (fun f ->
                    match P.eval a f with Some x -> x >= 0 | None -> true)
                  vfacts
              in
              let rec first = function
                | [] -> feasible := false
                | x :: rest ->
                    let a = SMap.add v x !asg in
                    if ok a then asg := a else first rest
              in
              first (start :: List.init (cap - lo + 1) (fun i -> lo + i))
            end;
            true
        | _ -> false
      in
      (* Named variables first, translator-introduced fresh ([!]-prefixed)
         ones after: a fresh variable's divisibility facts are fully
         determined once the named variables are fixed, so its value can
         be picked to satisfy them instead of the whole draw being
         rejected afterwards. *)
      let sweep allow_fresh =
        let changed = ref true in
        while !changed && !feasible do
          changed := false;
          SMap.iter
            (fun v info ->
              if
                !feasible
                && (not (SMap.mem v !asg))
                && (allow_fresh || not (String.length v > 0 && v.[0] = '!'))
              then if assign v info then changed := true)
            ctx.vars
        done
      in
      sweep false;
      sweep true;
      if
        !feasible
        && SMap.cardinal !asg = nvars
        && List.for_all
             (fun f ->
               match P.eval !asg f with Some x -> x >= 0 | None -> false)
             ctx.facts
      then Some !asg
      else None
    in
    List.filter_map mk (List.init 48 Fun.id)
    |> List.sort_uniq compare
    |> List.filteri (fun i _ -> i < 16)
  in
  (* An infeasible branch: the translator's Min/Max/Ite forks can land
     a branch fact next to its strict complement (e.g. [k - rem >= 0]
     beside [rem - k - 1 >= 0]), excluding every model -- any goal
     then holds vacuously, but the subtract search cannot see it when
     the goal shares no variable with the facts (a contradictory
     branch often collapses the goal to a bare negative constant). Two
     facts -- context or variable-range -- summing to a negative
     constant witness the contradiction directly. *)
  let infeasible =
    let as_const p = if P.vars p = [] then P.eval SMap.empty p else None in
    let neg_const p = match as_const p with Some c -> c < 0 | None -> false in
    let fs =
      ctx.facts
      @ SMap.fold
          (fun v { lowers; uppers } acc ->
            List.map (fun l -> P.sub (P.var v) l) lowers
            @ List.map (fun u -> P.sub u (P.var v)) uppers
            @ acc)
          ctx.vars []
    in
    List.exists
      (fun f ->
        neg_const f || List.exists (fun g -> neg_const (P.add f g)) fs)
      fs
  in
  (* One depth-bounded pass. Proofs are short chains when the move
     ordering is right, so the outer loop deepens iteratively: a dead
     subtree at depth 3 costs almost nothing, and most obligations
     close there; only the stubborn ones pay for a deep pass. *)
  let try_depth depth =
  let budget = ref budget in
  (* Failure cache only. Caching failures is sound for certification
     (a spurious hit can only lose a proof, never fabricate one) and
     turns the DFS into a DAG search: commuting subtract chains reach
     the same normal-form polynomial and are explored once. Successes
     are not cached -- a cached success would have to pin down the
     bounds of every fresh variable, and any real proof is cheap to
     re-derive. *)
  let failed : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let key d ctx (g : P.t) =
    Printf.sprintf "%d|%d|%s|%s" d ctx.fresh
      (String.concat "&"
         (List.sort String.compare (List.map P.to_string ctx.facts)))
      (P.to_string g)
  in
  let trace = Sys.getenv_opt "POLY_TRACE" <> None in
  (* Cycle check, up to fresh-variable naming: an oscillating
     substitution chain (substitute [v := U - v'], then re-substitute
     the result back) reproduces the same goal with a freshly-minted
     variable name each round, so neither [P.equal] nor the failure
     cache ever recognizes the repeat and a whole branch of the depth
     budget burns in the loop. Merging every [!]-fresh variable into
     one name gives a cheap canonical form; a candidate whose canonical
     form already appeared on the current path is a repeat state (any
     proof below it was already available at the first occurrence). *)
  let canon (g : P.t) =
    let merged =
      List.fold_left
        (fun g v ->
          if String.length v > 0 && v.[0] = '!' then P.subst g v (P.var "#")
          else g)
        g (P.vars g)
    in
    P.to_string merged
  in
  let rec go d ctx (g : P.t) draws path =
    if trace then
      Printf.eprintf "%s[d=%d b=%d w=%d] %s\n%!"
        (String.make (Stdlib.max 0 (depth - d)) ' ')
        d !budget (List.length draws) (P.to_string g);
    if P.all_nonneg g then true
    else if d <= 0 || !budget <= 0 then false
    else begin
      let k = key d ctx g in
      if Hashtbl.mem failed k then false
      else begin
        decr budget;
        (* Candidate children, pooled across the three depth-consuming
           moves, then tried best-first (fewest remaining negative
           monomials). The ordering is pure heuristic -- soundness and
           the search space are unchanged -- but it steers the DFS into
           the branch that actually makes progress instead of burning
           the budget inside a degenerate substitution subtree. Each
           candidate carries the model draws extended to its fresh
           variable (a substitution equation determines the fresh
           variable's value in every model). *)
        let candidates =
          (* upper-substitute a negatively-occurring variable:
             v = u - v' is consistent (L <= v <= u holds in some model,
             and every gap u - L >= v' >= 0 there) *)
          List.concat_map
            (fun v ->
              let { lowers; uppers } = bounds_of ctx v in
              List.map
                (fun u ->
                  let v', ctx = fresh_var ctx "u" in
                  let r = P.sub u (P.var v') in
                  let gaps = List.map (fun l -> P.sub u l) lowers in
                  let ctx = add_var ctx v' ~lowers:[ P.zero ] ~uppers:gaps in
                  let residual =
                    List.filter_map
                      (fun u2 -> if u2 = u then None else Some (P.sub u2 r))
                      uppers
                  in
                  let ctx = subst_ctx ctx v r residual in
                  let draws =
                    List.filter_map
                      (fun a ->
                        match (P.eval a u, SMap.find_opt v a) with
                        | Some uu, Some xv when uu >= xv ->
                            Some (SMap.add v' (uu - xv) a)
                        | _ -> None)
                      draws
                  in
                  (0, ctx, P.subst g v r, draws))
                uppers)
            (P.neg_vars g)
          (* lower-substitute: v = L + v' shifts the origin. With a
             constant lower this is almost always churn (the range fact
             v - L covers the additive uses), so those candidates are
             demoted to a last-resort class: ties would otherwise rank
             them first and burn the budget in identical subtrees. *)
          @ List.concat_map
              (fun v ->
                let { lowers; uppers } = bounds_of ctx v in
                List.filter_map
                  (fun l ->
                    if P.is_zero l then None
                    else begin
                      let v', ctx = fresh_var ctx "l" in
                      let r = P.add l (P.var v') in
                      let gaps = List.map (fun u -> P.sub u l) uppers in
                      let ctx =
                        add_var ctx v' ~lowers:[ P.zero ] ~uppers:gaps
                      in
                      let residual =
                        List.filter_map
                          (fun l2 ->
                            if l2 = l then None else Some (P.sub r l2))
                          lowers
                      in
                      let ctx = subst_ctx ctx v r residual in
                      let draws =
                        List.filter_map
                          (fun a ->
                            match (P.eval a l, SMap.find_opt v a) with
                            | Some ll, Some xv when xv >= ll ->
                                Some (SMap.add v' (xv - ll) a)
                            | _ -> None)
                          draws
                      in
                      let cls = if P.vars l = [] then 1 else 0 in
                      Some (cls, ctx, P.subst g v r, draws)
                    end)
                  lowers)
              (P.vars g)
          (* subtract a known-nonnegative fact, optionally scaled by a
             goal variable (all variables are nonnegative). Facts that
             share no variable with the goal only inject fresh negative
             monomials, so they are pruned -- this keeps contexts rich
             in divisibility facts (every Div/Mod translated upstream
             leaves two) from drowning the relevant candidates.

             A range fact of a variable that also occurs with the
             opposite sign elsewhere in the goal is demoted: subtracting
             [mu * (U - v)] amounts to substituting [v]'s upper into
             only its negative occurrences, which throws away the
             correlation with the positive ones (the full substitution
             keeps it) -- these frequently produce sound-but-false
             subgoals that eat the budget. *)
          @
          let gvars = P.vars g in
          let posv = P.pos_vars g and negv = P.neg_vars g in
          let fact_cands =
            List.map (fun f -> (0, f)) ctx.facts
            @ List.concat_map
                (fun v ->
                  let { lowers; uppers } = bounds_of ctx v in
                  let lower_cls = if List.mem v negv then 1 else 0 in
                  let upper_cls = if List.mem v posv then 1 else 0 in
                  List.filter_map
                    (fun l ->
                      if P.is_zero l then None
                      else Some (lower_cls, P.sub (P.var v) l))
                    lowers
                  @ List.map (fun u -> (upper_cls, P.sub u (P.var v))) uppers)
                gvars
          in
          List.concat_map
            (fun (cls, f) ->
              (cls, ctx, P.sub g f, draws)
              :: List.map
                   (fun v -> (cls, ctx, P.sub g (P.mul (P.var v) f), draws))
                   gvars)
            (List.filter
               (fun (_, f) ->
                 List.exists (fun v -> List.mem v gvars) (P.vars f))
               fact_cands)
        in
        (* Falsification: a candidate goal negative in a model of its
           context is not a theorem, so no sound derivation can close
           it -- drop it before it costs anything. *)
        let candidates =
          List.filter
            (fun (_, _, g', draws') ->
              List.for_all
                (fun a ->
                  match P.eval a g' with Some x -> x >= 0 | None -> true)
                draws')
            candidates
        in
        let path' = canon g :: path in
        let candidates =
          List.filter
            (fun (_, _, g', _) -> not (List.mem (canon g') path'))
            candidates
        in
        let scored =
          List.stable_sort
            (fun (c1, _, g1, _) (c2, _, g2, _) ->
              compare (c1, P.cost g1) (c2, P.cost g2))
            candidates
          |> List.map (fun (_, ctx, g, draws) -> (ctx, g, draws))
        in
        (* Drop adjacent duplicates (commuting subtract chains produce
           the same normal form many times over). *)
        let rec dedupe = function
          | (_, g1, _) :: ((_, g2, _) :: _ as rest) when P.equal g1 g2 ->
              dedupe rest
          | c :: rest -> c :: dedupe rest
          | [] -> []
        in
        let scored = dedupe scored in
        (* Beam: only the most promising candidates are expanded. This
           caps the branching factor (the subtract move alone can
           produce dozens of children); together with the shallow first
           passes it keeps dead subtrees from starving the budget. *)
        let scored = List.filteri (fun i _ -> i < beam_width) scored in
        let ok =
          (* one-step lookahead: a candidate that is already trivially
             nonnegative completes the proof no matter how the
             heuristic ranked it (demotion and the beam only steer the
             recursive descent) *)
          List.exists (fun (_, _, g', _) -> P.all_nonneg g') candidates
          (* factor out a common variable: strict structural progress *)
          || List.exists
               (fun v ->
                 match P.factor_var g v with
                 | Some q -> go d ctx q draws path'
                 | None -> false)
               (P.vars g)
          || List.exists
               (fun (ctx, g', draws') -> go (d - 1) ctx g' draws' path')
               scored
        in
        (* Only cache a failure if the subtree was fully explored: a
           budget-starved search is not a verdict on this node. *)
        if (not ok) && !budget > 0 then Hashtbl.replace failed k ();
        ok
      end
    end
  in
  go depth ctx goal base_draws []
  in
  infeasible
  || List.exists try_depth
       (List.sort_uniq compare
          [ min 3 depth; min 5 depth; min 7 depth; min 9 depth; depth ])

(* -- translating Access expressions -------------------------------------- *)

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type env = P.t SMap.t

let env_find (env : env) v =
  match SMap.find_opt v env with
  | Some p -> p
  | None -> unsupported "unbound variable %s" v

(* Translation forks: each returned branch is a context enriched with
   the branch's facts plus the expression's polynomial value there. The
   branches cover all models of the input context. *)
let rec translate (ctx : ctx) (env : env) (e : Xpose_core.Access.exp) :
    (ctx * P.t) list =
  let open Xpose_core.Access in
  match e with
  | Const c -> [ (ctx, P.const c) ]
  | Var v -> [ (ctx, env_find env v) ]
  | Add (x, y) -> translate2 ctx env x y |> List.map (fun (c, a, b) -> (c, P.add a b))
  | Sub (x, y) -> translate2 ctx env x y |> List.map (fun (c, a, b) -> (c, P.sub a b))
  | Mul (x, y) -> translate2 ctx env x y |> List.map (fun (c, a, b) -> (c, P.mul a b))
  | Div (x, y) ->
      translate2 ctx env x y
      |> List.map (fun (ctx, px, py) ->
             (* ediv: requires 0 <= x and 1 <= y, then q = x/y is the
                unique q >= 0 with q*y <= x <= q*y + y - 1 *)
             if not (prove_nonneg ctx px) then
               unsupported "cannot prove dividend nonneg: %s >= 0"
                 (P.to_string px);
             if not (prove_nonneg ctx (P.sub py (P.const 1))) then
               unsupported "cannot prove divisor positive: %s >= 1"
                 (P.to_string py);
             let q, ctx = fresh_var ctx "q" in
             let ctx = add_var ctx q ~lowers:[ P.zero ] ~uppers:[ px ] in
             let qy = P.mul (P.var q) py in
             let ctx = add_fact ctx (P.sub px qy) in
             let ctx =
               add_fact ctx (P.sub (P.add qy (P.sub py (P.const 1))) px)
             in
             (ctx, P.var q))
  | Mod (x, y) ->
      translate2 ctx env x y
      |> List.map (fun (ctx, _px, py) ->
             (* emod: requires 1 <= y; the remainder lies in [0, y-1]
                regardless of the dividend's sign *)
             if not (prove_nonneg ctx (P.sub py (P.const 1))) then
               unsupported "cannot prove modulus positive: %s >= 1"
                 (P.to_string py);
             let r, ctx = fresh_var ctx "r" in
             let ctx =
               add_var ctx r ~lowers:[ P.zero ]
                 ~uppers:[ P.sub py (P.const 1) ]
             in
             (ctx, P.var r))
  | Min (x, y) ->
      translate2 ctx env x y
      |> List.concat_map (fun (ctx, px, py) ->
             [
               (add_fact ctx (P.sub py px), px);
               (add_fact ctx (P.sub px py), py);
             ])
  | Max (x, y) ->
      translate2 ctx env x y
      |> List.concat_map (fun (ctx, px, py) ->
             [
               (add_fact ctx (P.sub py px), py);
               (add_fact ctx (P.sub px py), px);
             ])
  | Ite (c, x, y) ->
      List.concat_map (fun ctx -> translate ctx env x) (assume ctx env c)
      @ List.concat_map
          (fun ctx -> translate ctx env y)
          (assume_not ctx env c)

and translate2 ctx env x y =
  translate ctx env x
  |> List.concat_map (fun (ctx, px) ->
         translate ctx env y |> List.map (fun (ctx, py) -> (ctx, px, py)))

(* Branches covering [ctx /\ c]. *)
and assume ctx env (c : Xpose_core.Access.cond) : ctx list =
  let open Xpose_core.Access in
  match c with
  | Le (x, y) ->
      translate2 ctx env x y
      |> List.map (fun (ctx, px, py) -> add_fact ctx (P.sub py px))
  | Eq (x, y) ->
      translate2 ctx env x y
      |> List.map (fun (ctx, px, py) ->
             add_fact (add_fact ctx (P.sub py px)) (P.sub px py))
  | And (c1, c2) ->
      List.concat_map (fun ctx -> assume ctx env c2) (assume ctx env c1)

(* Branches covering [ctx /\ not c] (a covering disjunction: their
   union contains every model of [ctx] violating [c]). *)
and assume_not ctx env (c : Xpose_core.Access.cond) : ctx list =
  let open Xpose_core.Access in
  match c with
  | Le (x, y) ->
      (* not (x <= y)  <=>  y + 1 <= x *)
      translate2 ctx env x y
      |> List.map (fun (ctx, px, py) ->
             add_fact ctx (P.sub px (P.add py (P.const 1))))
  | Eq (x, y) ->
      translate2 ctx env x y
      |> List.concat_map (fun (ctx, px, py) ->
             [
               add_fact ctx (P.sub py (P.add px (P.const 1)));
               add_fact ctx (P.sub px (P.add py (P.const 1)));
             ])
  | And (c1, c2) -> assume_not ctx env c1 @ assume_not ctx env c2
