open Xpose_core

(* -- strided atoms -------------------------------------------------------- *)

type atom = { base : int; width : int; stride : int; count : int }

let interval ~lo ~hi = { base = lo; width = hi - lo; stride = max 1 (hi - lo); count = 1 }

let columns ~m ~n ~lo ~hi = { base = lo; width = hi - lo; stride = n; count = m }

let block_slots ~reps ~block ~lo ~hi =
  { base = lo; width = hi - lo; stride = block; count = reps }

let is_empty a = a.width <= 0 || a.count <= 0

(* Collapse a dense atom (width = stride) into one interval so the
   common "chunk of contiguous rows" footprint takes the fast path. *)
let normalize a =
  if is_empty a then a
  else if a.count = 1 || a.width = a.stride then
    interval ~lo:a.base ~hi:(a.base + ((a.count - 1) * a.stride) + a.width)
  else a

let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

(* First flat index covered by both atoms, if any. Exact — no
   over-approximation, so a reported conflict is a real overlap and a
   clean verdict is a proof (for the modeled footprints). *)
let rec overlap a b =
  let a = normalize a and b = normalize b in
  if is_empty a || is_empty b then None
  else if a.count = 1 && b.count = 1 then
    let lo = max a.base b.base and hi = min (a.base + a.width) (b.base + b.width) in
    if lo < hi then Some lo else None
  else if a.count = 1 then
    (* interval vs strided: smallest rep of b ending after a.base *)
    let k = max 0 (fdiv (a.base - b.width - b.base) b.stride + 1) in
    if k < b.count && b.base + (k * b.stride) < a.base + a.width then
      Some (max a.base (b.base + (k * b.stride)))
    else None
  else if b.count = 1 then overlap b a
  else if a.stride = b.stride then begin
    (* reps a_i = [a.base + i*s, +a.width), b_j = [b.base + j*s, +b.width):
       they meet iff delta + (j - i)*s lands in (-b.width, a.width). *)
    let s = a.stride in
    let delta = b.base - a.base in
    let d0 = fdiv (-b.width - delta) s + 1 in
    let d = max d0 (-(a.count - 1)) in
    if d <= b.count - 1 && delta + (d * s) < a.width then begin
      let i = max 0 (-d) in
      let j = i + d in
      Some (max (a.base + (i * s)) (b.base + (j * s)))
    end
    else None
  end
  else begin
    (* incommensurate strides: materialize the atom with fewer reps *)
    let small, big = if a.count <= b.count then (a, b) else (b, a) in
    let rec try_rep k =
      if k >= small.count then None
      else
        let lo = small.base + (k * small.stride) in
        match overlap (interval ~lo ~hi:(lo + small.width)) big with
        | Some w -> Some w
        | None -> try_rep (k + 1)
    in
    try_rep 0
  end

(* -- chunks, barriers, conflicts ----------------------------------------- *)

type chunk = { id : int; writes : atom list; reads : atom list; scratch : int }

type barrier = { name : string; chunks : chunk list }

type kind = Write_write | Write_read | Scratch_shared

type conflict = {
  barrier : string;
  kind : kind;
  chunk_a : int;
  chunk_b : int;
  index : int;
}

let kind_name = function
  | Write_write -> "write/write"
  | Write_read -> "write/read"
  | Scratch_shared -> "shared scratch"

let pp_conflict ppf c =
  Format.fprintf ppf "%s conflict in pass %s between chunks %d and %d at index %d"
    (kind_name c.kind) c.barrier c.chunk_a c.chunk_b c.index

let first_overlap xs ys =
  List.fold_left
    (fun acc x ->
      match acc with
      | Some _ -> acc
      | None ->
          List.fold_left
            (fun acc y ->
              match acc with Some _ -> acc | None -> overlap x y)
            None ys)
    None xs

let check_pair ~barrier a b =
  let mk kind index =
    Some { barrier; kind; chunk_a = a.id; chunk_b = b.id; index }
  in
  if a.scratch = b.scratch then mk Scratch_shared a.scratch
  else
    match first_overlap a.writes b.writes with
    | Some w -> mk Write_write w
    | None -> (
        match first_overlap a.writes b.reads with
        | Some w -> mk Write_read w
        | None -> (
            match first_overlap b.writes a.reads with
            | Some w -> mk Write_read w
            | None -> None))

(* First conflict by (lower chunk id, higher chunk id) order, matching
   the deterministic exception order of [Pool.parallel_chunks]. *)
let check_barrier (b : barrier) =
  let chunks = List.sort (fun x y -> compare x.id y.id) b.chunks in
  let rec outer = function
    | [] -> None
    | x :: rest ->
        let rec inner = function
          | [] -> outer rest
          | y :: more -> (
              match check_pair ~barrier:b.name x y with
              | Some c -> Some c
              | None -> inner more)
        in
        inner rest
  in
  outer chunks

let check barriers =
  List.fold_left
    (fun acc b -> match acc with Some _ -> acc | None -> check_barrier b)
    None barriers

(* -- chunk splits --------------------------------------------------------- *)

type split = lo:int -> hi:int -> chunks:int -> int -> int * int

let pool_split : split =
 fun ~lo ~hi ~chunks k -> Xpose_cpu.Pool.chunk_bounds ~lo ~hi ~chunks k

(* The deliberately broken split for the negative CI test: every chunk
   but the last claims one extra trailing element, recreating the classic
   off-by-one ([hi] treated as inclusive) partitioning bug. *)
let off_by_one_split : split =
 fun ~lo ~hi ~chunks k ->
  let c_lo, c_hi = Xpose_cpu.Pool.chunk_bounds ~lo ~hi ~chunks k in
  if k < chunks - 1 then (c_lo, min hi (c_hi + 1)) else (c_lo, c_hi)

(* -- barrier models of the parallel drivers ------------------------------- *)

let row_barrier ~split ~lanes ~name (p : Plan.t) =
  let n = p.n in
  let chunks =
    List.init lanes (fun k ->
        let lo, hi = split ~lo:0 ~hi:p.m ~chunks:lanes k in
        let fp = if lo < hi then [ interval ~lo:(lo * n) ~hi:(hi * n) ] else [] in
        { id = k; writes = fp; reads = fp; scratch = k })
  in
  { name; chunks }

let col_barrier ~split ~lanes ~name (p : Plan.t) =
  let m = p.m and n = p.n in
  let chunks =
    List.init lanes (fun k ->
        let lo, hi = split ~lo:0 ~hi:n ~chunks:lanes k in
        let fp = if lo < hi then [ columns ~m ~n ~lo ~hi ] else [] in
        { id = k; writes = fp; reads = fp; scratch = k })
  in
  { name; chunks }

(* Panel-parallel passes chunk over column groups of [width] and touch
   the columns [g_lo * width, min n (g_hi * width)). *)
let panel_barrier ~split ~lanes ~width ~name (p : Plan.t) =
  let m = p.m and n = p.n in
  let groups = Intmath.ceil_div n width in
  let chunks =
    List.init lanes (fun k ->
        let g_lo, g_hi = split ~lo:0 ~hi:groups ~chunks:lanes k in
        let lo = g_lo * width and hi = min n (g_hi * width) in
        let fp = if lo < hi then [ columns ~m ~n ~lo ~hi ] else [] in
        { id = k; writes = fp; reads = fp; scratch = k })
  in
  { name; chunks }

let default_panel_width = 16

let rowcol_engine_barriers ~split ~lanes ~decomposed (p : Plan.t) ~c2r_side =
  let col = col_barrier ~split ~lanes p and row = row_barrier ~split ~lanes p in
  if p.m = 1 || p.n = 1 then []
  else if c2r_side then
    (if Plan.coprime p then [] else [ col ~name:"rotate_pre" ])
    @ [ row ~name:"row_shuffle" ]
    @
    if decomposed then
      [ col ~name:"col_rotate"; col ~name:"row_permute" ]
    else [ col ~name:"col_shuffle" ]
  else
    (if decomposed then
       [ col ~name:"row_unpermute"; col ~name:"col_unrotate" ]
     else [ col ~name:"col_unshuffle" ])
    @ [ row ~name:"row_unshuffle" ]
    @ if Plan.coprime p then [] else [ col ~name:"rotate_post" ]

let panel_engine_barriers ~split ~lanes ~width (p : Plan.t) ~c2r_side =
  let panel = panel_barrier ~split ~lanes ~width p
  and row = row_barrier ~split ~lanes p in
  if p.m = 1 || p.n = 1 then []
  else if c2r_side then
    (if Plan.coprime p then [] else [ panel ~name:"rotate_pre" ])
    @ [ row ~name:"row_shuffle"; panel ~name:"fused_col" ]
  else
    [ panel ~name:"fused_col"; row ~name:"row_unshuffle" ]
    @ if Plan.coprime p then [] else [ panel ~name:"rotate_post" ]

let transpose_barriers ?(split = pool_split) ?(width = default_panel_width)
    ~engine ~lanes ~m ~n () =
  let c2r_side = m > n in
  let p = if c2r_side then Plan.make ~m ~n else Plan.make ~m:n ~n:m in
  match (engine : Spec.engine) with
  | Spec.Functor | Spec.Kernels ->
      rowcol_engine_barriers ~split ~lanes ~decomposed:false p ~c2r_side
  | Spec.Decomposed ->
      rowcol_engine_barriers ~split ~lanes ~decomposed:true p ~c2r_side
  | Spec.Cache | Spec.Fused ->
      panel_engine_barriers ~split ~lanes ~width p ~c2r_side

(* Fused_f64.transpose_batch under a split policy: batch-parallel when
   the policy says so for this batch size (each lane owns whole
   matrices), panel-parallel per matrix otherwise. [policy] mirrors the
   engine's decision rule exactly — the proof must model the schedule
   the tuned engine will actually run. *)
let batch_barriers ?(split = pool_split) ?(policy = Tune_params.Auto)
    ?(width = default_panel_width) ~lanes ~m ~n ~nb () =
  if nb = 0 then []
  else begin
    let len = m * n in
    let matrix_parallel =
      lanes = 1
      ||
      match policy with
      | Tune_params.Auto -> nb >= lanes
      | Tune_params.Matrix_parallel -> true
      | Tune_params.Panel_parallel -> false
      | Tune_params.Hybrid t -> nb >= t
    in
    if matrix_parallel then
      [
        {
          name = "batch";
          chunks =
            List.init lanes (fun k ->
                let lo, hi = split ~lo:0 ~hi:nb ~chunks:lanes k in
                let fp =
                  if lo < hi then [ interval ~lo:(lo * len) ~hi:(hi * len) ]
                  else []
                in
                { id = k; writes = fp; reads = fp; scratch = k });
        };
      ]
    else
      (* each matrix runs panel-parallel; footprints repeat per matrix,
         so one matrix's barriers represent them all *)
      let c2r_side = m > n in
      let p = if c2r_side then Plan.make ~m ~n else Plan.make ~m:n ~n:m in
      panel_engine_barriers ~split ~lanes ~width p ~c2r_side
  end

(* Xpose_ooc.Ooc_f64.transpose_file: window-granular barriers (each
   window is one "chunk" of its split, with its own mapping — conflicts
   here mean two windows claim the same file region) plus, inside every
   window, the pool barrier the engine actually runs. Matrices that fit
   the budget delegate to the fused pool engine and its panel model. *)
let ooc_barriers ?(split = pool_split) ?(window_split = Xpose_ooc.Window.split)
    ?(width = default_panel_width) ~lanes ~m ~n ~window_bytes () =
  let c2r_side = m > n in
  let p = if c2r_side then Plan.make ~m ~n else Plan.make ~m:n ~n:m in
  let budget = Xpose_ooc.Window.budget_elems ~window_bytes in
  if p.m * p.n <= budget then
    panel_engine_barriers ~split ~lanes ~width p ~c2r_side
  else if p.m = 1 || p.n = 1 then []
  else begin
    let row_per = Xpose_ooc.Window.row_rows ~budget_elems:budget ~n:p.n in
    let col_per = Xpose_ooc.Window.panel_cols ~budget_elems:budget ~m:p.m in
    let s_per = Xpose_ooc.Window.stripe_rows ~budget_elems:budget ~n:p.n in
    let rows_w = window_split ~total:p.m ~per:row_per in
    let cols_w = window_split ~total:p.n ~per:col_per in
    let stripes = window_split ~total:p.m ~per:s_per in
    (* One chunk per window: distinct mappings are distinct "scratch",
       and the footprint is the window's slice of the file. *)
    let window_barrier ~name ~atom ws =
      let chunks =
        List.mapi
          (fun k (w : Xpose_ooc.Window.t) ->
            let fp =
              if w.Xpose_ooc.Window.lo < w.Xpose_ooc.Window.hi then
                [ atom ~lo:w.Xpose_ooc.Window.lo ~hi:w.Xpose_ooc.Window.hi ]
              else []
            in
            { id = k; writes = fp; reads = fp; scratch = k })
          ws
      in
      { name; chunks }
    in
    let row_atom ~lo ~hi = interval ~lo:(lo * p.n) ~hi:(hi * p.n) in
    let col_atom ~lo ~hi = columns ~m:p.m ~n:p.n ~lo ~hi in
    (* Per row window, the pool splits the window's rows across lanes. *)
    let shuffle_barrier (w : Xpose_ooc.Window.t) =
      let chunks =
        List.init lanes (fun k ->
            let lo, hi =
              split ~lo:w.Xpose_ooc.Window.lo ~hi:w.Xpose_ooc.Window.hi
                ~chunks:lanes k
            in
            let fp = if lo < hi then [ row_atom ~lo ~hi ] else [] in
            { id = k; writes = fp; reads = fp; scratch = k })
      in
      { name = "ooc.row_shuffle"; chunks }
    in
    (* Per column panel, the pool splits the staging's columns: the
       staging is a contiguous [p.m x w] matrix in panel coordinates. *)
    let staging_barrier ~name (w : Xpose_ooc.Window.t) =
      let wd = w.Xpose_ooc.Window.hi - w.Xpose_ooc.Window.lo in
      let chunks =
        List.init lanes (fun k ->
            let lo, hi = split ~lo:0 ~hi:wd ~chunks:lanes k in
            let fp =
              if lo < hi then [ columns ~m:p.m ~n:wd ~lo ~hi ] else []
            in
            { id = k; writes = fp; reads = fp; scratch = k })
      in
      { name; chunks }
    in
    [
      window_barrier ~name:"ooc.row_windows" ~atom:row_atom rows_w;
      window_barrier ~name:"ooc.col_panels" ~atom:col_atom cols_w;
      window_barrier ~name:"ooc.stripes" ~atom:row_atom stripes;
    ]
    @ List.map shuffle_barrier rows_w
    @ List.concat_map
        (fun w ->
          [
            staging_barrier ~name:"ooc.panel_rotate" w;
            staging_barrier ~name:"ooc.panel_permute" w;
          ])
        cols_w
  end

(* Par_permute.transpose: batch-axis chunking for batched passes, block
   (sub-element) axis chunking for wide single blocks, plain row/col
   barriers for the flat case. *)
let permute_pass_barriers ?(split = pool_split) ~lanes
    (pass : Xpose_permute.Decompose.pass) () =
  let { Xpose_permute.Decompose.batch; rows; cols; block } = pass in
  if rows = 1 || cols = 1 then []
  else begin
    let c2r_side = rows > cols in
    let rm = max rows cols and rn = min rows cols in
    let p = Plan.make ~m:rm ~n:rn in
    if batch = 1 && block = 1 then
      rowcol_engine_barriers ~split ~lanes ~decomposed:false p ~c2r_side
    else if batch > 1 then begin
      let len = rows * cols * block in
      [
        {
          name = "batch_slices";
          chunks =
            List.init lanes (fun k ->
                let lo, hi = split ~lo:0 ~hi:batch ~chunks:lanes k in
                let fp =
                  if lo < hi then [ interval ~lo:(lo * len) ~hi:(hi * len) ]
                  else []
                in
                { id = k; writes = fp; reads = fp; scratch = k });
        };
      ]
    end
    else
      [
        {
          name = "block_split";
          chunks =
            List.init lanes (fun k ->
                let lo, hi = split ~lo:0 ~hi:block ~chunks:lanes k in
                let fp =
                  if lo < hi then
                    [ block_slots ~reps:(rows * cols) ~block ~lo ~hi ]
                  else []
                in
                { id = k; writes = fp; reads = fp; scratch = k });
        };
      ]
  end

let permute_barriers ?(split = pool_split) ~lanes
    (plan : Xpose_permute.Permute.plan) () =
  List.concat_map
    (fun pass -> permute_pass_barriers ~split ~lanes pass ())
    (Xpose_permute.Permute.passes plan)
