(** The [xpose check] grid: run every static check, collect a report.

    Three check families, in order:
    - ["plan"] — symbolic plan verification ({!Spec}): every engine x
      shape, plus the rank-N planner on a set of permutation problems;
    - ["race"] — parallel-footprint disjointness ({!Footprint}): every
      engine x shape x lane count, the batched driver, the out-of-core
      engine's window splits (row windows, column panels, stripes, and
      the pool barriers inside them), and the planner's parallel
      executor;
    - ["shadow"] (opt-in) — checked-access runs: the {!Kernels_f64} and
      [Fused_f64] [Checked] twins executed on real (small) buffers.

    Seeded negatives ([seed_race], [seed_oob]) inject a known defect and
    expect the corresponding analyzer to {e detect} it: a detection is
    reported with status [Detected] and makes the report non-[ok], which
    is what the CI negative stage asserts (via a negated exit code). A
    seeded defect that goes undetected is a [Violated] entry — the
    analyzer itself is broken. *)

type status =
  | Proved  (** check passed *)
  | Violated  (** unexpected failure: broken engine, model, or analyzer *)
  | Detected  (** a seeded defect was caught, as intended *)

type entry = {
  check : string;
  subject : string;
  status : status;
  detail : string;
}

type report = {
  entries : entry list;
  checked : int;
  violations : int;
  detections : int;
}

val status_name : status -> string

val default_shapes : (int * int) list
(** Coprime, non-coprime, prime, square, skinny, panel-boundary shapes,
    plus one past the exhaustive-verification threshold. *)

val default_permutes : (int array * int array) list
val default_lanes : int list

val run :
  ?threshold:int ->
  ?shapes:(int * int) list ->
  ?permutes:(int array * int array) list ->
  ?lanes:int list ->
  ?seed_race:bool ->
  ?seed_oob:bool ->
  ?shadow:bool ->
  unit ->
  report
(** Run the grid. [seed_race] swaps the pool's chunk split for
    {!Footprint.off_by_one_split} and the out-of-core windowing for
    {!Xpose_ooc.Window.overlapping_split} in the race models; [seed_oob]
    runs a checked kernel over a deliberately short buffer; [shadow]
    adds the checked-access engine runs. *)

val ok : report -> bool
(** No violations and no detections: the clean-CI condition. A seeded
    run is {e expected} to be non-[ok]. *)

val pp : Format.formatter -> report -> unit
val to_json : report -> string
