(** The [xpose check] grid: run every static check, collect a report.

    Five check families, in order:
    - ["plan"] — symbolic plan verification ({!Spec}): every engine x
      shape, plus the rank-N planner on a set of permutation problems;
    - ["race"] — parallel-footprint disjointness ({!Footprint}): every
      engine x shape x lane count, the batched driver, the out-of-core
      engine's window splits (row windows, column panels, stripes, and
      the pool barriers inside them), and the planner's parallel
      executor;
    - ["shadow"] (opt-in) — checked-access runs: the {!Kernels_f64} and
      [Fused_f64] [Checked] twins executed on real (small) buffers;
    - ["bounds"] (opt-in, [prove_bounds]) — parametric in-bounds
      certificates ({!Bounds}): every access of every engine pipeline
      proved for all shapes, widths, batch lanes and window budgets at
      once, no enumeration;
    - ["alias"] (opt-in, [prove_bounds]) — parametric disjointness
      certificates ({!Alias}): the chunk/window splits and every
      barrier footprint lift proved alias-free for all shapes and lane
      counts, subsuming the per-shape race grid with symbolic proofs.

    Seeded negatives ([seed_race], [seed_oob], [seed_oob_static])
    inject a known defect and expect the corresponding analyzer to
    {e detect} it: a detection is reported with status [Detected] and
    makes the report non-[ok], which is what the CI negative stage
    asserts (via a negated exit code). A seeded defect that goes
    undetected is a [Violated] entry — the analyzer itself is broken.
    For the certificate families, detection means {e refutation}: the
    prover must fail {e and} the witness search must produce a concrete
    counterexample. *)

type status =
  | Proved  (** check passed *)
  | Violated  (** unexpected failure: broken engine, model, or analyzer *)
  | Detected  (** a seeded defect was caught, as intended *)

type entry = {
  check : string;
  subject : string;
  status : status;
  detail : string;
}

type report = {
  entries : entry list;
  checked : int;
  violations : int;
  detections : int;
}

val status_name : status -> string

val default_shapes : (int * int) list
(** Coprime, non-coprime, prime, square, skinny, panel-boundary shapes,
    plus one past the exhaustive-verification threshold. *)

val default_permutes : (int array * int array) list
val default_lanes : int list

val families : string list
(** The five check-family names, in report order. *)

val family_of_name : string -> string option
(** Normalize a user-facing family name ("perm" is accepted as a
    synonym of "plan"); [None] for an unknown name. *)

val run :
  ?threshold:int ->
  ?shapes:(int * int) list ->
  ?permutes:(int array * int array) list ->
  ?lanes:int list ->
  ?seed_race:bool ->
  ?seed_oob:bool ->
  ?shadow:bool ->
  ?prove_bounds:bool ->
  ?seed_oob_static:bool ->
  ?widths:int list ->
  ?only:string list ->
  unit ->
  report
(** Run the grid. [seed_race] swaps the pool's chunk split for
    {!Footprint.off_by_one_split} and the out-of-core windowing for
    {!Xpose_ooc.Window.overlapping_split} in the race models (and, when
    the alias family runs, adds the seeded split certificates that must
    be refuted); [seed_oob] runs a checked kernel over a deliberately
    short buffer; [shadow] adds the checked-access engine runs.

    [prove_bounds] adds the parametric certificate families: the full
    {!Bounds} grid and the {!Alias} grid. [seed_oob_static] adds the
    seeded out-of-bounds summary that the bounds prover must refute —
    on its own (without [prove_bounds]) it runs {e just} that seeded
    certificate, the fast static mirror of [seed_oob]. [widths] narrows
    the pinned panel widths of the bounds grid.

    [only] restricts the report to the named families ("perm" accepted
    for "plan"; unknown names simply never match). Naming an opt-in
    family in [only] enables it: [~only:["alias"]] runs the alias
    certificates without the 90-second bounds grid, and
    [~only:["bounds"] ~seed_oob_static:true] runs just the seeded
    negative. *)

val ok : report -> bool
(** No violations and no detections: the clean-CI condition. A seeded
    run is {e expected} to be non-[ok]. *)

val verdict : report -> (unit, string) result
(** [Ok ()] iff {!ok}; otherwise a one-line failure summary (violation
    count, or seeded-detection count) suitable for an error exit. *)

val pp : Format.formatter -> report -> unit
val to_json : report -> string
