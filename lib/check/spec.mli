(** Symbolic models of every engine's pass pipeline, and the targets they
    must equal.

    Each entry point rebuilds, as {!Perm.t} gather maps, the exact pass
    sequence an engine executes for a shape — same plan equations, same
    variant dispatch, same §5.2 C2R/R2C routing — composes them, and
    proves the composition equal to the transpose (or rank-N permutation)
    specification with {!Perm.verify}. No matrix data is ever touched:
    the proof is over index space. *)

open Xpose_core

(** The five transpose engines, named as on the [xpose] command line. *)
type engine = Functor | Kernels | Decomposed | Cache | Fused

val all_engines : engine list
val engine_name : engine -> string

(** Gather maps of the individual passes (exposed for the test suite). *)
module Passes : sig
  val rotate_columns : Plan.t -> amount:(int -> int) -> Perm.t
  val row_shuffle_gather : Plan.t -> Perm.t
  val row_shuffle_ungather : Plan.t -> Perm.t
  val col_shuffle_gather : Plan.t -> Perm.t
  val col_shuffle_ungather : Plan.t -> Perm.t
  val permute_rows : Plan.t -> index:(int -> int) -> Perm.t

  val decompose_pass : size:int -> Xpose_permute.Decompose.pass -> Perm.t
  (** The [batch x rows x cols x block] middle-axes swap of the rank-N
      planner, as a gather map over a buffer of [size] elements.
      @raise Invalid_argument if [Decompose.elems pass <> size]. *)
end

val transpose_target : m:int -> n:int -> Perm.t
(** The specification: after transposing a row-major [m x n] matrix in
    place, [buf.(l) = original.((l mod m) * n + l / m)]. *)

val c2r_target : Plan.t -> Perm.t
val r2c_target : Plan.t -> Perm.t

val c2r_model : ?variant:Algo.c2r_variant -> Plan.t -> (string * Perm.t) list
(** The named pass sequence [c2r] executes on this plan (empty for
    degenerate [m = 1] or [n = 1] shapes, like the engines). *)

val r2c_model : ?variant:Algo.r2c_variant -> Plan.t -> (string * Perm.t) list

val transpose_model : engine -> m:int -> n:int -> (string * Perm.t) list
(** The pass sequence [transpose ~m ~n] executes on the given engine:
    default variants for [Functor]/[Kernels], decomposed variants for
    [Decomposed]/[Cache], and the fused column pass (symbolically the
    composition of its two column-local sub-passes) for [Fused]. *)

val probes : ?widths:int list -> m:int -> n:int -> unit -> int list
(** Structured probe indices for a shape: border rows crossed with border
    columns, panel-edge columns ([wk - 1, wk, wk + 1] for every panel
    width [w] in [widths], default
    {!Xpose_core.Tune_params.supported_widths}) and one column per
    [gcd(m, n)] residue class — the index classes where the engines'
    case splits live (rotation wrap, panel boundary, CRT residue
    selection). *)

val verify_transpose :
  ?threshold:int -> engine -> m:int -> n:int -> string list * Perm.verdict
(** Compose {!transpose_model} and verify it against
    {!transpose_target} (exhaustive below [threshold], structured
    {!probes} plus deterministic samples above); returns the pass names
    and the verdict. *)

val permute_target : dims:int array -> perm:int array -> Perm.t
(** Gather form of [Xpose_permute]'s [permuted_index] specification. *)

val permute_model : Xpose_permute.Permute.plan -> (string * Perm.t) list

val permute_probes : dims:int array -> int list
(** Cartesian product of per-axis border coordinates (capped). *)

val verify_permute :
  ?threshold:int -> Xpose_permute.Permute.plan -> string list * Perm.verdict
(** Prove a planner-produced pass pipeline equal to the permutation
    specification for its [dims]/[perm]. *)
