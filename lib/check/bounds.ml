(* Parametric bounds certification: every access summary of every
   engine pass is turned into polynomial obligations ("index >= 0" and
   "size - 1 - index >= 0" along every translation branch) and
   discharged by {!Poly.prove_nonneg} over the summary's basis -- the
   plan basis (a, b, c >= 1, a_inv, b_inv >= 0, m = a*c, n = b*c) or
   the free basis (m, n >= 1) -- with the pass parameters (sub-range,
   panel width, window geometry) as bounded symbolic variables. No
   shape is ever enumerated for a certificate.

   When a proof fails, the verdict is NOT "out of bounds": the prover
   is incomplete. The analyzer then searches deterministically for a
   concrete counterexample shape by evaluating the summary on small
   shapes and sampled parameters; a found witness turns the failure
   into a definite refutation with a printable shape (this is how the
   seeded [--seed-oob-static] summary is caught). *)

open Xpose_core

type result = {
  subject : string;
  pass : string;
  proved : bool;
  obligations : int;  (** polynomial goals discharged (branches counted) *)
  detail : string;
  counterexample : string option;
}

(* -- obligation generation and discharge --------------------------------- *)

exception Fail of string

let fail fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

let prelude (s : Access.summary) : Poly.ctx * Poly.env =
  let open Poly in
  let ctx, env =
    match s.basis with
    | Access.Plan_basis ->
        let ctx =
          List.fold_left
            (fun ctx (v, lo) ->
              add_var ctx v ~lowers:[ P.const lo ] ~uppers:[])
            ctx_empty
            [ ("a", 1); ("b", 1); ("c", 1); ("a_inv", 0); ("b_inv", 0) ]
        in
        let env =
          SMap.of_seq
            (List.to_seq
               [
                 ("a", P.var "a");
                 ("b", P.var "b");
                 ("c", P.var "c");
                 ("a_inv", P.var "a_inv");
                 ("b_inv", P.var "b_inv");
                 ("m", P.mul (P.var "a") (P.var "c"));
                 ("n", P.mul (P.var "b") (P.var "c"));
               ])
        in
        (ctx, env)
    | Access.Free_basis ->
        let ctx =
          List.fold_left
            (fun ctx v -> add_var ctx v ~lowers:[ P.const 1 ] ~uppers:[])
            ctx_empty [ "m"; "n" ]
        in
        ( ctx,
          SMap.of_seq
            (List.to_seq [ ("m", P.var "m"); ("n", P.var "n") ]) )
  in
  (* Parameters become bounded symbolic variables. Their bound
     expressions must translate without forking (plain affine bounds;
     conjunctions of uppers are expressed as lists, not Min). *)
  let single what ctx env e =
    match Poly.translate ctx env e with
    | [ (ctx', p) ]
      when ctx'.fresh = ctx.fresh
           && List.length ctx'.facts = List.length ctx.facts ->
        p
    | _ -> fail "parameter %s bound %s is not a plain polynomial" what
             (Access.to_string e)
  in
  List.fold_left
    (fun (ctx, env) (p : Access.param) ->
      let lo = single p.name ctx env p.p_lo in
      if not (prove_nonneg ctx lo) then
        fail "parameter %s may be negative (lower bound %s)" p.name
          (P.to_string lo);
      let uppers = List.map (single p.name ctx env) p.p_his in
      let ctx = add_var ctx p.name ~lowers:[ lo ] ~uppers in
      (ctx, SMap.add p.name (P.var p.name) env))
    (ctx, env) s.params

let certify_summary (s : Access.summary) : (int, string) Stdlib.result =
  let open Poly in
  let obligations = ref 0 in
  let must ctx goal what =
    incr obligations;
    if not (prove_nonneg ctx goal) then
      fail "%s: no proof of %s >= 0" what (P.to_string goal)
  in
  try
    let ctx0, env0 = prelude s in
    (* Region sizes may fork (Max (m, n) scratch): walk the body once
       per covering branch of the size translations. *)
    let region_branches =
      List.fold_left
        (fun branches (r : Access.region) ->
          List.concat_map
            (fun (ctx, sizes) ->
              List.map
                (fun (ctx, p) -> (ctx, (r.rname, p) :: sizes))
                (translate ctx env0 r.size))
            branches)
        [ (ctx0, []) ]
        s.regions
    in
    let rec walk ctx env sizes nodes = List.iter (node ctx env sizes) nodes
    and node ctx env sizes : Access.node -> unit = function
      | Access.Acc { region; kind; index } ->
          let size =
            match List.assoc_opt region sizes with
            | Some p -> p
            | None -> fail "undeclared region %s in %s" region s.pass
          in
          let what =
            Printf.sprintf "%s %s %s"
              (match kind with Access.Read -> "read" | Access.Write -> "write")
              region (Access.to_string index)
          in
          List.iter
            (fun (ctx, idx) ->
              must ctx idx what;
              must ctx (P.sub (P.sub size (P.const 1)) idx) what)
            (translate ctx env index)
      | Access.For { var; lo; hi; body } ->
          List.iter
            (fun (ctx, plo) ->
              must ctx plo (Printf.sprintf "loop %s lower bound" var);
              List.iter
                (fun (ctx, phi) ->
                  let ctx =
                    add_var ctx var ~lowers:[ plo ]
                      ~uppers:[ P.sub phi (P.const 1) ]
                  in
                  walk ctx (SMap.add var (P.var var) env) sizes body)
                (translate ctx env hi))
            (translate ctx env lo)
      | Access.Bind { var; def; body } ->
          List.iter
            (fun (ctx, pdef) -> walk ctx (SMap.add var pdef env) sizes body)
            (translate ctx env def)
      | Access.When (c, body) ->
          List.iter (fun ctx -> walk ctx env sizes body) (assume ctx env c)
    in
    List.iter (fun (ctx, sizes) -> walk ctx env0 sizes s.body) region_branches;
    Ok !obligations
  with
  | Fail msg -> Error msg
  | Poly.Unsupported msg -> Error msg

(* -- counterexample search ------------------------------------------------ *)

(* Small shapes, smallest area first: the first witness found is the
   minimal one in this deterministic order. *)
let search_shapes =
  let all = ref [] in
  for m = 1 to 8 do
    for n = 1 to 8 do
      all := (m, n) :: !all
    done
  done;
  List.sort
    (fun (m1, n1) (m2, n2) -> compare (m1 * n1, m1, n1) (m2 * n2, m2, n2))
    !all

exception Found of string

let describe env (s : Access.summary) (e : Access.event) size =
  let shape =
    Printf.sprintf "m=%d n=%d" (List.assoc "m" env) (List.assoc "n" env)
  in
  let params =
    String.concat " "
      (List.map
         (fun (p : Access.param) ->
           Printf.sprintf "%s=%d" p.name (List.assoc p.name env))
         s.params)
  in
  Printf.sprintf "%s %s: %s %s[%d] outside [0, %d) in %s" shape params
    (match e.Access.e_kind with Access.Read -> "read" | Access.Write -> "write")
    e.Access.e_region e.Access.e_index size s.pass

let find_counterexample (s : Access.summary) : string option =
  let basis_envs =
    List.map
      (fun (m, n) ->
        match s.basis with
        | Access.Plan_basis -> Access.env_of_plan (Plan.make ~m ~n)
        | Access.Free_basis -> [ ("m", m); ("n", n) ])
      search_shapes
  in
  let rec combos env params k =
    match params with
    | [] -> k env
    | (p : Access.param) :: rest ->
        let lo = Access.eval env p.p_lo in
        let ok v =
          v >= lo && List.for_all (fun u -> v <= Access.eval env u) p.p_his
        in
        List.iter
          (fun v -> if ok v then combos ((p.name, v) :: env) rest k)
          (List.sort_uniq compare p.sample)
  in
  try
    List.iter
      (fun env0 ->
        combos env0 s.params (fun env ->
            let sizes =
              List.map
                (fun (r : Access.region) -> (r.rname, Access.eval env r.size))
                s.regions
            in
            match Access.concretize ~cap:200_000 ~env s with
            | exception Access.Too_many_accesses -> ()
            | events ->
                List.iter
                  (fun (e : Access.event) ->
                    let size = List.assoc e.e_region sizes in
                    if e.e_index < 0 || e.e_index >= size then
                      raise (Found (describe env s e size)))
                  events))
      basis_envs;
    None
  with Found msg -> Some msg

(* -- the certificate grid ------------------------------------------------- *)

let certify ~subject (s : Access.summary) : result =
  match certify_summary s with
  | Ok obligations ->
      {
        subject;
        pass = s.pass;
        proved = true;
        obligations;
        detail =
          Printf.sprintf "%d obligations proved for all shapes%s" obligations
            (if s.exact then "" else " (superset summary)");
        counterexample = None;
      }
  | Error reason -> (
      match find_counterexample s with
      | Some cx ->
          {
            subject;
            pass = s.pass;
            proved = false;
            obligations = 0;
            detail = Printf.sprintf "refuted: %s" cx;
            counterexample = Some cx;
          }
      | None ->
          {
            subject;
            pass = s.pass;
            proved = false;
            obligations = 0;
            detail = Printf.sprintf "no proof found (%s); no small counterexample" reason;
            counterexample = None;
          })

let kernel_results () =
  List.map
    (fun (s : Access.summary) ->
      certify ~subject:(Printf.sprintf "kernels/%s" s.pass) s)
    Access.Passes.all_pipeline_passes

let fused_results ~widths () =
  List.concat_map
    (fun (s : Access.summary) ->
      certify ~subject:(Printf.sprintf "%s w=*" s.pass) s
      :: List.map
           (fun w ->
             certify
               ~subject:(Printf.sprintf "%s w=%d" s.pass w)
               (Access.pin s "w" w))
           widths)
    Xpose_cpu.Fused.Summary.panel_passes
  (* The kernel-tier axis: the mk summary's [bk] parameter quantifies
     over every unroll depth at once; these entries additionally pin it
     at each shipped tier's block so the certificate the autotuner's
     choice rests on is named in the grid (still no shape enumerated). *)
  @ List.map
      (fun bk ->
        certify
          ~subject:(Printf.sprintf "fused.rotate_fine_mk bk=%d" bk)
          (Access.pin Xpose_cpu.Fused.Summary.fine_mk "bk" bk))
      [ 8; 16 ]

let ooc_results () =
  List.map
    (fun (s : Access.summary) ->
      certify ~subject:(Printf.sprintf "%s" s.pass) s)
    Xpose_ooc.Ooc_access.all

(* Roll-up entries: an engine (or batch policy, or ooc pipeline) is
   certified when every pass certificate it schedules is. These carry
   no new proofs -- they make the grid answer "is engine X safe for all
   shapes?" directly. *)
let rollup ~subject ~detail ~passes results =
  let covers (r : result) = List.exists (String.equal r.pass) passes in
  let relevant = List.filter covers results in
  let ok = relevant <> [] && List.for_all (fun r -> r.proved) relevant in
  {
    subject;
    pass = subject;
    proved = ok;
    obligations = List.fold_left (fun a r -> a + r.obligations) 0 relevant;
    detail;
    counterexample = None;
  }

let pass_names (l : Access.summary list) =
  List.map (fun (s : Access.summary) -> s.pass) l

let engine_rollups results =
  let open Access.Passes in
  let kernel_engines =
    List.concat_map
      (fun engine ->
        [
          rollup results
            ~subject:(Printf.sprintf "engine %s c2r" engine)
            ~detail:"gather, scatter and decomposed pipelines, all sub-ranges"
            ~passes:
              (pass_names (c2r Gather @ c2r Scatter @ c2r Decomposed));
          rollup results
            ~subject:(Printf.sprintf "engine %s r2c" engine)
            ~detail:"fused-inverse and decomposed pipelines, all sub-ranges"
            ~passes:
              (pass_names (r2c Fused_inverse @ r2c Decomposed_inverse));
        ])
      [ "functor"; "kernels"; "decomposed" ]
  in
  let panel_passes = pass_names Xpose_cpu.Fused.Summary.panel_passes in
  let fused =
    [
      rollup results ~subject:"engine cache"
        ~detail:
          "kernel shuffles + panel sweeps (rotate/permute per panel), all \
           widths"
        ~passes:
          (panel_passes
          @ pass_names
              [ rotate_pre; rotate_post; col_rotate; col_unrotate;
                row_shuffle_gather; row_shuffle_ungather; row_permute_q;
                row_permute_q_inv ]);
      rollup results ~subject:"engine fused"
        ~detail:
          "panel coarse/fine/permute + kernel rotate fallback + row \
           shuffles; serial, pool and batch schedules (sub-range \
           quantified)"
        ~passes:
          (panel_passes
          @ pass_names Xpose_cpu.Fused.Summary.c2r_passes
          @ pass_names Xpose_cpu.Fused.Summary.r2c_passes);
    ]
  in
  let batch =
    List.map
      (fun (policy, why) ->
        rollup results
          ~subject:(Printf.sprintf "batch %s" policy)
          ~detail:why
          ~passes:
            (panel_passes @ pass_names Xpose_cpu.Fused.Summary.c2r_passes))
      [
        ( "auto",
          "matrix-parallel (serial engine per lane) or panel-parallel \
           (pool pipeline); both reduce to the fused certificates" );
        ("matrix-parallel", "each lane runs the serial fused pipeline");
        ("panel-parallel", "pool pipeline; chunk sub-ranges are quantified");
        ("hybrid:2", "policy only picks between the two certified schedules");
      ]
  in
  let ooc =
    [
      rollup results ~subject:"engine ooc"
        ~detail:
          "window row shuffles + stripe gather/scatter; column compute \
           runs the fused panel certificates under the local m x w plan"
        ~passes:
          (pass_names Xpose_ooc.Ooc_access.all @ panel_passes
          @ pass_names [ Access.Passes.rotate_pre ]);
    ]
  in
  kernel_engines @ fused @ batch @ ooc

let seeded_result () =
  certify ~subject:"seeded/rotate-oob"
    (Access.Passes.seeded_oob_rotate Access.Ix.rotate_amount)

let run ?(widths = Xpose_core.Tune_params.supported_widths)
    ?(seed_oob_static = false) () : result list =
  let base = kernel_results () @ fused_results ~widths () @ ooc_results () in
  let rollups = engine_rollups base in
  let seeded = if seed_oob_static then [ seeded_result () ] else [] in
  base @ rollups @ seeded
