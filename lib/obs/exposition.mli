(** Prometheus text exposition of the whole metrics registry.

    {!render} snapshots every registered metric into the text format a
    Prometheus scraper (or a human with [curl]) reads:

    {v
# TYPE server_requests counter
server_requests 812
# TYPE server_latency_ns histogram
server_latency_ns_bucket{le="1.67772e+07"} 118
server_latency_ns_bucket{le="+Inf"} 812
server_latency_ns_sum 5.1e+09
server_latency_ns_count 812
server_latency_ns{quantile="0.5"} 1.2e+07
v}

    Names are sanitized to the Prometheus charset (the registry's dots
    become underscores); histogram buckets render cumulatively with
    power-of-two [le] bounds plus the closing [+Inf] bucket, and each
    histogram also exposes bucket-interpolated p50/p90/p99
    [quantile]-labelled samples (see {!Metrics.histogram_quantile}).
    Output order follows {!Metrics.all} — sorted by name, so the
    rendering is deterministic given the same values.

    Served by the job server's [Stats_text] request and written
    periodically by its [metrics_file] option; non-finite values
    render as [NaN]/[+Inf]/[-Inf], all legal in the text format. *)

val render : unit -> string

val sanitize : string -> string
(** The name mapping: any character outside [[a-zA-Z0-9_:]] becomes
    ['_']. *)
