let shards = 64 (* power of two: shard index is a mask of the domain id *)

type counter = { c_name : string; cells : int Atomic.t array }
type gauge = { g_name : string; cell : float Atomic.t }

let hist_buckets = 40 (* 2^0 .. 2^38, last bucket unbounded *)

type histogram = {
  h_name : string;
  counts : int Atomic.t array; (* sharded *)
  sums : float Atomic.t array; (* sharded *)
  buckets : int Atomic.t array; (* log2 buckets, shared *)
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let shard () = (Domain.self () :> int) land (shards - 1)

let atomic_cells n = Array.init n (fun _ -> Atomic.make 0)

let register name make_metric project =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match project m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Metrics: %S is already registered as another metric type"
                   name))
      | None ->
          let m = make_metric () in
          Hashtbl.add registry name m;
          match project m with Some v -> v | None -> assert false)

let counter name =
  register name
    (fun () -> C { c_name = name; cells = atomic_cells shards })
    (function C c -> Some c | _ -> None)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.cells.(shard ()) by)
let counter_value c = Array.fold_left (fun a cell -> a + Atomic.get cell) 0 c.cells
let shard_values c = Array.map Atomic.get c.cells

let gauge name =
  register name
    (fun () -> G { g_name = name; cell = Atomic.make 0.0 })
    (function G g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g.cell v
let gauge_value g = Atomic.get g.cell

let histogram name =
  register name
    (fun () ->
      H
        {
          h_name = name;
          counts = atomic_cells shards;
          sums = Array.init shards (fun _ -> Atomic.make 0.0);
          buckets = atomic_cells hist_buckets;
        })
    (function H h -> Some h | _ -> None)

let atomic_add_float cell v =
  let rec go () =
    let cur = Atomic.get cell in
    if not (Atomic.compare_and_set cell cur (cur +. v)) then go ()
  in
  go ()

let bucket_of v =
  (* bucket i covers (2^(i-1), 2^i]; v <= 1 lands in bucket 0 *)
  let rec go i ub =
    if v <= ub || i = hist_buckets - 1 then i else go (i + 1) (ub *. 2.0)
  in
  go 0 1.0

let observe h v =
  let s = shard () in
  ignore (Atomic.fetch_and_add h.counts.(s) 1);
  atomic_add_float h.sums.(s) v;
  ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1)

let histogram_count h =
  Array.fold_left (fun a c -> a + Atomic.get c) 0 h.counts

let histogram_sum h =
  Array.fold_left (fun a c -> a +. Atomic.get c) 0.0 h.sums

let histogram_buckets h =
  let out = ref [] in
  let ub = ref 1.0 in
  for i = 0 to hist_buckets - 1 do
    let c = Atomic.get h.buckets.(i) in
    if c > 0 then
      out :=
        ((if i = hist_buckets - 1 then infinity else !ub), c) :: !out;
    ub := !ub *. 2.0
  done;
  Array.of_list (List.rev !out)

let histogram_quantile h q =
  let total = histogram_count h in
  if total = 0 || Float.is_nan q then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int total in
    (* Walk the log2 buckets accumulating counts; the quantile falls in
       the first bucket whose cumulative count reaches [rank], and is
       linearly interpolated between the bucket's bounds (the classic
       Prometheus [histogram_quantile] estimate). Bucket 0 spans (0, 1];
       the last bucket is unbounded, so its lower bound is returned. *)
    let rec go i lb ub cum =
      if i >= hist_buckets then lb
      else
        let c = Atomic.get h.buckets.(i) in
        let cum' = cum + c in
        if c > 0 && float_of_int cum' >= rank then
          if i = hist_buckets - 1 then lb
          else
            let frac = (rank -. float_of_int cum) /. float_of_int c in
            lb +. ((ub -. lb) *. Float.max 0.0 frac)
        else go (i + 1) ub (ub *. 2.0) cum'
    in
    go 0 0.0 1.0 0
  end

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float }

type handle = C_handle of counter | G_handle of gauge | H_handle of histogram

let all () =
  let rows =
    with_lock (fun () ->
        Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  in
  rows
  |> List.map (fun (name, m) ->
         ( name,
           match m with
           | C c -> C_handle c
           | G g -> G_handle g
           | H h -> H_handle h ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let dump () =
  let rows =
    with_lock (fun () ->
        Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  in
  rows
  |> List.map (fun (name, m) ->
         ( name,
           match m with
           | C c -> Counter (counter_value c)
           | G g -> Gauge (gauge_value g)
           | H h ->
               Histogram { count = histogram_count h; sum = histogram_sum h } ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  let ms =
    with_lock (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  in
  List.iter
    (function
      | C c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells
      | G g -> Atomic.set g.cell 0.0
      | H h ->
          Array.iter (fun cell -> Atomic.set cell 0) h.counts;
          Array.iter (fun cell -> Atomic.set cell 0.0) h.sums;
          Array.iter (fun cell -> Atomic.set cell 0) h.buckets)
    ms

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x =
  (* JSON has no NaN/Infinity literal; a bare [nan] token from %g would
     make the whole document unparseable. *)
  if not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.17g" x

let render_json () =
  let rows = all () in
  let section pick render_v =
    let entries = List.filter_map pick rows in
    String.concat ",\n"
      (List.map
         (fun (name, v) ->
           Printf.sprintf "    \"%s\": %s" (json_escape name) (render_v v))
         entries)
  in
  let counters =
    section
      (fun (n, v) ->
        match v with C_handle c -> Some (n, counter_value c) | _ -> None)
      string_of_int
  in
  let gauges =
    section
      (fun (n, v) ->
        match v with G_handle g -> Some (n, gauge_value g) | _ -> None)
      json_float
  in
  let histograms =
    section
      (fun (n, v) -> match v with H_handle h -> Some (n, h) | _ -> None)
      (fun h ->
        Printf.sprintf
          "{\"count\": %d, \"sum\": %s, \"p50\": %s, \"p90\": %s, \"p99\": %s}"
          (histogram_count h)
          (json_float (histogram_sum h))
          (json_float (histogram_quantile h 0.50))
          (json_float (histogram_quantile h 0.90))
          (json_float (histogram_quantile h 0.99)))
  in
  Printf.sprintf
    "{\n  \"counters\": {\n%s\n  },\n  \"gauges\": {\n%s\n  },\n  \
     \"histograms\": {\n%s\n  }\n}\n"
    counters gauges histograms

let render () =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, v) ->
      (match v with
      | Counter n -> Printf.bprintf b "counter   %-40s %d" name n
      | Gauge x -> Printf.bprintf b "gauge     %-40s %g" name x
      | Histogram { count; sum } ->
          Printf.bprintf b "histogram %-40s count=%d sum=%g" name count sum);
      Buffer.add_char b '\n')
    (dump ());
  Buffer.contents b
