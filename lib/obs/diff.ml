(* Noise-aware comparison of two bench JSON documents (the bench
   driver's emitter format). Every check is relative with a generous
   default threshold plus an absolute floor on timings, because a
   quick-mode bench on a shared CI box is noisy: a finding must clear
   both the relative bar and [min_ns] before it counts. *)

type thresholds = {
  time_rel : float;  (* ns_per_run may grow by this fraction *)
  counter_rel : float;  (* work counters may grow by this fraction *)
  roofline_drop : float;  (* absolute allowed drop in roofline_frac *)
  min_ns : float;  (* time regressions below this are noise *)
}

let default_thresholds =
  { time_rel = 0.5; counter_rel = 0.25; roofline_drop = 0.3; min_ns = 100.0 }

type finding = {
  metric : string;
  category : string;  (* "time" | "counter" | "roofline" | "missing" *)
  baseline : float;
  current : float;
  message : string;
}

type verdict = { ok : bool; compared : int; findings : finding list }

(* -- bench-document shape ------------------------------------------------- *)

type doc = {
  benchmarks : (string * float) list;  (* name, ns_per_run *)
  counters : (string * float) list;
  roofline : (string * float) list;  (* pass name, roofline_frac *)
}

let ( let* ) = Result.bind

let parse_doc label text =
  let* json =
    Result.map_error
      (fun e -> Printf.sprintf "%s: %s" label e)
      (Json_lite.parse text)
  in
  let benchmarks =
    match Option.bind (Json_lite.mem "benchmarks" json) Json_lite.arr with
    | None -> []
    | Some items ->
        List.filter_map
          (fun item ->
            match
              ( Option.bind (Json_lite.mem "name" item) Json_lite.str,
                Json_lite.num_field "ns_per_run" item )
            with
            | Some name, Some ns -> Some (name, ns)
            | _ -> None)
          items
  in
  let num_members key =
    match Option.bind (Json_lite.mem key json) Json_lite.obj with
    | None -> []
    | Some fields ->
        List.filter_map
          (fun (k, v) ->
            match Json_lite.num v with Some n -> Some (k, n) | None -> None)
          fields
  in
  let counters = num_members "counters" in
  let roofline =
    match Option.bind (Json_lite.mem "roofline" json) Json_lite.obj with
    | None -> []
    | Some passes ->
        List.filter_map
          (fun (pass, v) ->
            match Json_lite.num_field "roofline_frac" v with
            | Some f when Float.is_finite f -> Some (pass, f)
            | _ -> None)
          passes
  in
  if benchmarks = [] then
    Error (Printf.sprintf "%s: no benchmarks array — not a bench JSON?" label)
  else Ok { benchmarks; counters; roofline }

(* -- the comparison ------------------------------------------------------- *)

let compare_docs th base cur =
  let findings = ref [] in
  let compared = ref 0 in
  let emit metric category baseline current message =
    findings :=
      { metric; category; baseline; current; message } :: !findings
  in
  List.iter
    (fun (name, b) ->
      match List.assoc_opt name cur.benchmarks with
      | None ->
          emit name "missing" b Float.nan
            "benchmark present in baseline but absent from current run"
      | Some c ->
          incr compared;
          if c > b *. (1.0 +. th.time_rel) && c -. b > th.min_ns then
            emit name "time" b c
              (Printf.sprintf "%.0f ns -> %.0f ns (+%.0f%%, threshold +%.0f%%)"
                 b c
                 ((c /. b -. 1.0) *. 100.0)
                 (th.time_rel *. 100.0)))
    base.benchmarks;
  List.iter
    (fun (name, b) ->
      match List.assoc_opt name cur.counters with
      | None -> ()  (* counters come and go with instrumentation; not a bug *)
      | Some c ->
          incr compared;
          if b > 0.0 && c > b *. (1.0 +. th.counter_rel) then
            emit name "counter" b c
              (Printf.sprintf "%.0f -> %.0f (+%.0f%%, threshold +%.0f%%)" b c
                 ((c /. b -. 1.0) *. 100.0)
                 (th.counter_rel *. 100.0)))
    base.counters;
  List.iter
    (fun (pass, b) ->
      match List.assoc_opt pass cur.roofline with
      | None -> ()
      | Some c ->
          incr compared;
          if b -. c > th.roofline_drop then
            emit pass "roofline" b c
              (Printf.sprintf
                 "roofline_frac %.3f -> %.3f (drop %.3f, threshold %.3f)" b c
                 (b -. c) th.roofline_drop))
    base.roofline;
  let findings = List.rev !findings in
  { ok = findings = []; compared = !compared; findings }

let compare ?(thresholds = default_thresholds) ~baseline ~current () =
  let* base = parse_doc "baseline" baseline in
  let* cur = parse_doc "current" current in
  Ok (compare_docs thresholds base cur)

(* -- rendering ------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_num x =
  if Float.is_finite x then Printf.sprintf "%.17g" x else "null"

let render_verdict v =
  let b = Buffer.create 256 in
  Printf.bprintf b "{\"ok\": %b, \"compared\": %d, \"findings\": [" v.ok
    v.compared;
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b
        "{\"metric\": \"%s\", \"category\": \"%s\", \"baseline\": %s, \
         \"current\": %s, \"message\": \"%s\"}"
        (json_escape f.metric) (json_escape f.category) (json_num f.baseline)
        (json_num f.current) (json_escape f.message))
    v.findings;
  Buffer.add_string b "]}";
  Buffer.contents b
