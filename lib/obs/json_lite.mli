(** A minimal recursive-descent JSON reader, stdlib-only.

    Just enough JSON for the observability layer's own documents — the
    bench emitter's output (read back by the {!Diff} regression
    sentinel) and {!Calibrate}'s persisted machine-roof files. Numbers
    are all [float] (every number these documents contain fits); [null]
    is a first-class value (the emitters write it for non-finite
    floats). Not a general-purpose parser: Unicode escapes beyond
    Latin-1 are collapsed to ['?']. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-document parse; [Error] carries a position-bearing message.
    Never raises on hostile input. *)

(** {1 Accessors}

    All total: a shape mismatch is [None], threaded with
    [Option.bind]. *)

val mem : string -> t -> t option
(** Object member by key ([None] on non-objects and missing keys). *)

val str : t -> string option
val num : t -> float option
val arr : t -> t list option
val obj : t -> (string * t) list option

val num_field : string -> t -> float option
(** [num_field k v] = [mem k v |> Option.bind num]. *)
