(** The bench regression sentinel: compare two bench JSON documents.

    Input is the bench driver's emitter format — a [benchmarks] array
    of [{name, ns_per_run}], a flat [counters] object, and (when the
    run was calibrated) a [roofline] object of per-pass
    [{roofline_frac, ...}] records. The comparison is {e noise-aware}:
    quick-mode numbers from a shared CI box jitter, so every check is
    relative with a generous default, and time regressions must also
    clear an absolute [min_ns] floor. A missing benchmark is always a
    finding (a silently dropped bench family is itself a regression);
    counters and roofline passes absent from one side are skipped.

    Comparing a document against itself yields [ok = true] with zero
    findings — the property CI relies on, tested in the suite. *)

type thresholds = {
  time_rel : float;  (** allowed relative growth of [ns_per_run] *)
  counter_rel : float;  (** allowed relative growth of a counter *)
  roofline_drop : float;  (** allowed absolute drop of [roofline_frac] *)
  min_ns : float;  (** absolute floor under which time deltas are noise *)
}

val default_thresholds : thresholds
(** [{time_rel = 0.5; counter_rel = 0.25; roofline_drop = 0.3;
    min_ns = 100.0}] — deliberately loose, tuned for quick-mode CI. *)

type finding = {
  metric : string;
  category : string;  (** ["time"] / ["counter"] / ["roofline"] / ["missing"] *)
  baseline : float;
  current : float;  (** [nan] for ["missing"] findings *)
  message : string;  (** human-readable, thresholds spelled out *)
}

type verdict = {
  ok : bool;  (** [findings = []] *)
  compared : int;  (** metrics present on both sides *)
  findings : finding list;
}

val compare :
  ?thresholds:thresholds ->
  baseline:string ->
  current:string ->
  unit ->
  (verdict, string) result
(** Parse both documents (raw JSON text) and compare. Total: malformed
    input — including a document with no [benchmarks] array — is an
    [Error], never an exception. *)

val render_verdict : verdict -> string
(** Machine-readable JSON:
    [{"ok": bool, "compared": n, "findings": [...]}]. What
    [xpose obs diff] prints before exiting 0/1 on [ok]. *)
