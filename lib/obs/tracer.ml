type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;
  cat : string;
  ph : [ `Complete | `Instant ];
  ts_ns : float;
  dur_ns : float;
  tid : int;
  seq : int;
  args : (string * value) list;
}

let enabled_flag = Atomic.make false
let seq_ctr = Atomic.make 0
let buffer : event list ref = ref [] (* newest first *)
let lock = Mutex.create ()

let enabled () = Atomic.get enabled_flag

let clear () =
  Mutex.lock lock;
  buffer := [];
  Mutex.unlock lock

let start () =
  clear ();
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

let events () =
  Mutex.lock lock;
  let es = !buffer in
  Mutex.unlock lock;
  List.rev es

let emit ev =
  Mutex.lock lock;
  buffer := ev :: !buffer;
  Mutex.unlock lock

let next_seq () = Atomic.fetch_and_add seq_ctr 1
let tid () = (Domain.self () :> int)

let force_args = function None -> [] | Some f -> f ()

(* -- ambient args -------------------------------------------------------- *)

(* Request-scoped context for spans recorded deep inside the engines:
   the job server's dispatcher sets the batch's trace id here before
   running the engine, and every pass/panel span opened while it is set
   carries the id — there is no lexical path from the dispatcher to the
   pass runners (they execute on pool worker domains). One batch
   executes at a time, so a single global cell suffices. *)
let ambient : (string * value) list Atomic.t = Atomic.make []

let set_ambient_args args = Atomic.set ambient args
let clear_ambient_args () = Atomic.set ambient []
let ambient_args () = Atomic.get ambient

let with_ambient_args args f =
  Atomic.set ambient args;
  Fun.protect f ~finally:(fun () -> Atomic.set ambient [])

(* -- trace ids ----------------------------------------------------------- *)

(* Fresh-per-process u32 ids. A Knuth multiplicative hash of a counter:
   unique within the process, and spread over the u32 space rather than
   clustered on small integers, so ids from different id spaces (a
   client numbering requests, a server numbering batches) are unlikely
   to collide by accident in a merged trace. *)
let trace_ctr = Atomic.make 1

let fresh_trace_id () =
  let n = Atomic.fetch_and_add trace_ctr 1 in
  (n * 2654435761) land 0xffff_ffff

let with_span ?(cat = "span") ?args name f =
  if not (enabled ()) then f ()
  else begin
    let seq = next_seq () in
    let ts_ns = Clock.now_ns () in
    Fun.protect f ~finally:(fun () ->
        let dur_ns = Clock.now_ns () -. ts_ns in
        emit
          {
            name;
            cat;
            ph = `Complete;
            ts_ns;
            dur_ns;
            tid = tid ();
            seq;
            args = force_args args;
          })
  end

let instant ?(cat = "instant") ?args name =
  if enabled () then
    emit
      {
        name;
        cat;
        ph = `Instant;
        ts_ns = Clock.now_ns ();
        dur_ns = 0.0;
        tid = tid ();
        seq = next_seq ();
        args = force_args args;
      }

(* -- the per-pass entry point ------------------------------------------- *)

let m_passes = lazy (Metrics.counter "xpose.passes_total")
let m_pred = lazy (Metrics.counter "xpose.pred_touches_total")

let pass ~name ?(batch = 1) ?(block = 1) ~rows ~cols ~pred_touches
    ~scratch_elems f =
  Metrics.incr (Lazy.force m_passes);
  Metrics.incr ~by:pred_touches (Lazy.force m_pred);
  Metrics.incr (Metrics.counter ("pass." ^ name));
  Metrics.incr ~by:pred_touches (Metrics.counter ("pass." ^ name ^ ".touches"));
  if not (enabled ()) then f ()
  else begin
    let ambient = ambient_args () in
    with_span ~cat:"pass"
      ~args:(fun () ->
        [
          ("batch", Int batch);
          ("rows", Int rows);
          ("cols", Int cols);
          ("block", Int block);
          ("pred_touches", Int pred_touches);
          ("scratch_elems", Int scratch_elems);
        ]
        @ ambient)
      name f
  end

let m_panels = lazy (Metrics.counter "xpose.panels_total")

let panel ~name ~lo ~width ~rows ~pred_touches f =
  Metrics.incr (Lazy.force m_panels);
  if not (enabled ()) then f ()
  else begin
    let ambient = ambient_args () in
    with_span ~cat:"panel"
      ~args:(fun () ->
        [
          ("lo", Int lo);
          ("width", Int width);
          ("rows", Int rows);
          ("pred_touches", Int pred_touches);
        ]
        @ ambient)
      name f
  end

(* -- sinks --------------------------------------------------------------- *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_json_float b x =
  if Float.is_finite x then
    (* shortest representation that still round-trips closely enough for
       microsecond timestamps *)
    Buffer.add_string b (Printf.sprintf "%.3f" x)
  else Buffer.add_string b "0"

let buf_add_value b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> buf_add_json_float b f
  | Str s -> buf_add_json_string b s
  | Bool x -> Buffer.add_string b (if x then "true" else "false")

let buf_add_event b ev =
  Buffer.add_string b "{\"name\":";
  buf_add_json_string b ev.name;
  Buffer.add_string b ",\"cat\":";
  buf_add_json_string b ev.cat;
  Buffer.add_string b ",\"ph\":";
  (match ev.ph with
  | `Complete -> Buffer.add_string b "\"X\""
  | `Instant -> Buffer.add_string b "\"i\",\"s\":\"t\"");
  Buffer.add_string b ",\"ts\":";
  buf_add_json_float b (ev.ts_ns /. 1e3);
  (match ev.ph with
  | `Complete ->
      Buffer.add_string b ",\"dur\":";
      buf_add_json_float b (ev.dur_ns /. 1e3)
  | `Instant -> ());
  Buffer.add_string b ",\"pid\":1,\"tid\":";
  Buffer.add_string b (string_of_int ev.tid);
  Buffer.add_string b ",\"args\":{\"seq\":";
  Buffer.add_string b (string_of_int ev.seq);
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      buf_add_json_string b k;
      Buffer.add_char b ':';
      buf_add_value b v)
    ev.args;
  Buffer.add_string b "}}"

let to_chrome_json_events evs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      buf_add_event b ev)
    evs;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let to_chrome_json () = to_chrome_json_events (events ())

(* -- the flush sink ------------------------------------------------------ *)

(* A registered sink receives a full snapshot of the buffer on every
   [flush]: flushing is idempotent (re-render everything, overwrite),
   so a server can flush mid-run for durability and again at shutdown
   without the application tracking deltas. *)
let sink : (event list -> unit) option Atomic.t = Atomic.make None

let set_sink s = Atomic.set sink s

let flush () =
  match Atomic.get sink with None -> () | Some f -> f (events ())

let pp_value = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool x -> string_of_bool x

let to_text () =
  let es =
    List.sort
      (fun a b ->
        match Float.compare a.ts_ns b.ts_ns with
        | 0 -> compare a.seq b.seq
        | c -> c)
      (events ())
  in
  let t0 = match es with [] -> 0.0 | e :: _ -> e.ts_ns in
  let b = Buffer.create 1024 in
  List.iter
    (fun ev ->
      Printf.bprintf b "%10.3fms %-6s %-24s" ((ev.ts_ns -. t0) /. 1e6) ev.cat
        ev.name;
      (match ev.ph with
      | `Complete -> Printf.bprintf b " %10.3fms" (ev.dur_ns /. 1e6)
      | `Instant -> Buffer.add_string b "           -");
      Printf.bprintf b " tid=%d" ev.tid;
      List.iter (fun (k, v) -> Printf.bprintf b " %s=%s" k (pp_value v)) ev.args;
      Buffer.add_char b '\n')
    es;
  Buffer.contents b
