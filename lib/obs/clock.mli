(** The tracer's time source.

    [Xpose_obs] links against the OCaml standard library only, which has
    no wall clock, so the clock is injectable: the default source is
    [Sys.time] (process CPU seconds — monotone but coarse and wrong for
    parallel spans), and any layer that links [unix] installs a real wall
    clock once at startup ([xpose_cli], the bench driver, and the harness
    all install [Unix.gettimeofday]). Installation is idempotent and
    safe from any domain. *)

val now_ns : unit -> float
(** Current time in nanoseconds from the installed source. Only
    differences are meaningful; the epoch is the source's. *)

val install : (unit -> float) -> unit
(** [install f] makes [f] the time source. [f] must return nanoseconds
    and be safe to call from any domain. *)

val install_if_unset : (unit -> float) -> unit
(** Like {!install}, but a no-op if any source was already installed.
    For library code (e.g. the job server) that needs {e a} wall clock
    but must not clobber one the embedding application or a
    deterministic test chose. Linearizable under concurrent callers: a
    compare-and-set claims the installed flag, so exactly one of N
    racing installers wins and the source never flip-flops. *)

val is_installed : unit -> bool
(** Whether any source has been installed (by {!install} or a winning
    {!install_if_unset}) since startup or the last {!reset}. *)

val reset : unit -> unit
(** Back to the default source with the installed flag cleared — for
    tests that exercise {!install_if_unset} semantics. Not for
    production code: a reset under concurrent tracing tears timestamps
    between epochs. *)

val default_now_ns : unit -> float
(** The fallback source: [Sys.time () *. 1e9]. *)
