type kind = Stream | Gather | Scatter | Permute

let kind_to_string = function
  | Stream -> "stream"
  | Gather -> "gather"
  | Scatter -> "scatter"
  | Permute -> "permute"

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* The traffic-class map: which probe's roof applies to a pass, keyed
   on the pass names the instrumented engines emit (the "ooc." prefix
   of the windowed engine's passes is immaterial — the traffic shape
   through the mapped window is the same). First match wins:

   - fused passes gather panels column-major at the calibrated width;
   - rotation passes cycle columns — strided writes dominate;
   - row shuffles/permutations scatter whole rows through a
     permutation;
   - column shuffles gather columns;
   - anything else (plain copies, plan-level batched passes) is priced
     against the streaming roof. *)
let kind_of_pass name =
  if contains name "fused" then Gather
  else if contains name "rotate" then Scatter
  else if contains name "row" then Permute
  else if contains name "col" then Gather
  else Stream

let probe (cal : Calibrate.t) = function
  | Stream -> cal.Calibrate.stream
  | Gather -> cal.Calibrate.gather
  | Scatter -> cal.Calibrate.scatter
  | Permute -> cal.Calibrate.permute

let roof_gbps cal kind = (probe cal kind).Calibrate.gbps

let achieved_gbps ~bytes ~dur_ns =
  if dur_ns > 0.0 && bytes > 0.0 then bytes /. dur_ns else Float.nan

(* Fractions above 1 are real: a run whose working set sits in cache
   beats an out-of-cache roof. Clamp at 1.5 so one cache-resident pass
   cannot make the fraction axis useless, and so consumers can rely on
   the documented (0, 1.5] range. *)
let max_fraction = 1.5

let fraction cal kind ~bytes ~dur_ns =
  let a = achieved_gbps ~bytes ~dur_ns in
  let roof = roof_gbps cal kind in
  if Float.is_nan a || not (roof > 0.0) then Float.nan
  else Float.min max_fraction (a /. roof)

(* -- trace annotation ---------------------------------------------------- *)

let int_arg args key =
  match List.assoc_opt key args with
  | Some (Tracer.Int i) -> Some i
  | _ -> None

let annotate_event cal (e : Tracer.event) =
  if
    e.Tracer.ph <> `Complete
    || (e.Tracer.cat <> "pass" && e.Tracer.cat <> "panel")
  then e
  else
    match int_arg e.Tracer.args "pred_touches" with
    | None | Some 0 -> e
    | Some touches ->
        let kind = kind_of_pass e.Tracer.name in
        let bytes = float_of_int (touches * 8) in
        let gbps = achieved_gbps ~bytes ~dur_ns:e.Tracer.dur_ns in
        let frac = fraction cal kind ~bytes ~dur_ns:e.Tracer.dur_ns in
        if Float.is_nan gbps then e
        else
          {
            e with
            Tracer.args =
              e.Tracer.args
              @ [
                  ("roofline_kind", Tracer.Str (kind_to_string kind));
                  ("achieved_gbps", Tracer.Float gbps);
                  ("roofline_frac", Tracer.Float frac);
                ];
          }

let annotate cal events = List.map (annotate_event cal) events
