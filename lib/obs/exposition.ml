(* Prometheus text exposition format, version 0.0.4: one [# TYPE] line
   per metric followed by its samples. Metric names are sanitized
   ([a-zA-Z0-9_:] only — the registry's dotted names map dots to
   underscores); histograms render cumulative [_bucket{le="..."}]
   samples plus [_sum] / [_count] and, as a convenience summary,
   [{quantile="..."}] gauges from the bucket-interpolated estimate. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

(* Prometheus floats: plain decimal, with NaN / +Inf / -Inf spelled out
   (all legal sample values in the text format). *)
let prom_float x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let quantiles = [ 0.5; 0.9; 0.99 ]

let render_histogram b name h =
  let name = sanitize name in
  Printf.bprintf b "# TYPE %s histogram\n" name;
  let cumulative = ref 0 in
  Array.iter
    (fun (ub, count) ->
      if ub <> Float.infinity then begin
        cumulative := !cumulative + count;
        Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" name (prom_float ub)
          !cumulative
      end)
    (Metrics.histogram_buckets h);
  let count = Metrics.histogram_count h in
  (* The format requires the series to close at +Inf with the total
     count — it also absorbs the unbounded top bucket and any racing
     bump the bounded-bucket snapshot missed. *)
  Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" name count;
  Printf.bprintf b "%s_sum %s\n" name (prom_float (Metrics.histogram_sum h));
  Printf.bprintf b "%s_count %d\n" name count;
  List.iter
    (fun q ->
      Printf.bprintf b "%s{quantile=\"%s\"} %s\n" name (prom_float q)
        (prom_float (Metrics.histogram_quantile h q)))
    quantiles

let render () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, handle) ->
      match handle with
      | Metrics.C_handle c ->
          let name = sanitize name in
          Printf.bprintf b "# TYPE %s counter\n" name;
          Printf.bprintf b "%s %d\n" name (Metrics.counter_value c)
      | Metrics.G_handle g ->
          let name = sanitize name in
          Printf.bprintf b "# TYPE %s gauge\n" name;
          Printf.bprintf b "%s %s\n" name (prom_float (Metrics.gauge_value g))
      | Metrics.H_handle h -> render_histogram b name h)
    (Metrics.all ());
  Buffer.contents b
