(** A process-global metrics registry with domain-sharded primitives.

    Counters are the workhorse: each one holds an array of per-shard
    atomic cells indexed by [Domain.self () mod shards], so concurrent
    bumps from different pool workers land on different cache lines and
    never contend; the value is the sum over shards (exact — every bump
    is an atomic increment). Gauges are last-write-wins. Histograms use
    power-of-two buckets with sharded count/sum accumulators.

    Metrics are always on: a bump is a handful of nanoseconds and the
    instrumented layers only bump at pass/barrier granularity, never per
    element. Creation is idempotent — [counter name] returns the existing
    counter when [name] is already registered (and raises if the name is
    registered as a different metric type). *)

val shards : int
(** Number of shards per counter/histogram (a power of two). *)

(** {1 Counters} *)

type counter

val counter : string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
(** Sum over all shards. Exact, but a concurrent snapshot: bumps racing
    with the read may or may not be included. *)

val shard_values : counter -> int array
(** Per-shard values, for tests and diagnostics. *)

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_buckets : histogram -> (float * int) array
(** [(upper_bound, count)] per non-empty bucket; bounds are powers of
    two, the last bucket is unbounded. *)

val histogram_quantile : histogram -> float -> float
(** [histogram_quantile h q] estimates the [q]-quantile ([0 <= q <= 1],
    clamped) from the log2 buckets: find the bucket the target rank
    falls in and interpolate linearly between its bounds — the classic
    Prometheus estimate, exact at bucket boundaries and within one
    bucket's resolution elsewhere. Returns [nan] on an empty histogram
    (or a NaN [q]); the unbounded last bucket answers with its lower
    bound. Replaces ad-hoc sort-the-samples percentiles: the histogram
    is O(1) memory under any load. *)

(** {1 Registry} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float }

type handle =
  | C_handle of counter
  | G_handle of gauge
  | H_handle of histogram

val all : unit -> (string * handle) list
(** Every registered metric with its live handle, sorted by name — for
    renderers (the Prometheus {!Exposition}) that need more than the
    {!dump} snapshot, e.g. histogram buckets and quantiles. *)

val dump : unit -> (string * value) list
(** Every registered metric with its current value, sorted by name (so
    every rendering derived from it — [render], [render_json], the
    Prometheus exposition — is deterministic given the same values). *)

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). *)

val render : unit -> string
(** One [name kind value] line per metric, sorted — the [--metrics]
    output of the CLI. *)

val render_json : unit -> string
(** The registry as a JSON object
    [{"counters": {..}, "gauges": {..}, "histograms": {name: {"count",
    "sum", "p50", "p90", "p99"}}}], names sorted within each section —
    the payload of the job server's stats endpoint. Histogram quantiles
    come from {!histogram_quantile}. Always valid JSON: non-finite
    floats (a NaN gauge, a sum that overflowed to infinity, the
    quantiles of an empty histogram) render as [null]. *)
