let default_now_ns () = Sys.time () *. 1e9

let source = Atomic.make default_now_ns

let installed = Atomic.make false

let install f =
  Atomic.set source f;
  Atomic.set installed true

(* The claim-then-publish order matters: exactly one caller wins the CAS
   on [installed], so two servers starting concurrently cannot both
   install (the loser sees [installed] and leaves the winner's source
   alone). Between the winner's CAS and its [source] store a reader gets
   the previous source — the default, which is what "unset" meant. *)
let install_if_unset f =
  if Atomic.compare_and_set installed false true then Atomic.set source f

let is_installed () = Atomic.get installed

let reset () =
  Atomic.set source default_now_ns;
  Atomic.set installed false

let now_ns () = (Atomic.get source) ()
