let default_now_ns () = Sys.time () *. 1e9

let source = Atomic.make default_now_ns

let installed = Atomic.make false

let install f =
  Atomic.set source f;
  Atomic.set installed true

let install_if_unset f = if not (Atomic.get installed) then install f

let now_ns () = (Atomic.get source) ()
