let default_now_ns () = Sys.time () *. 1e9

let source = Atomic.make default_now_ns

let install f = Atomic.set source f

let now_ns () = (Atomic.get source) ()
