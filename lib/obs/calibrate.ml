type probe = { gbps : float; ns_per_byte : float }

type t = {
  elems : int;
  repeats : int;
  panel_width : int;
  stream : probe;
  gather : probe;
  scatter : probe;
  permute : probe;
  ghz : float option;
}

let default_elems = 1 lsl 21 (* 16 MiB of float64: past any sane L2 *)
let default_repeats = 3
let default_panel_width = 16 (* the fused engine's default panel width *)

(* Every probe moves [2 * 8 * elems] bytes (each element read once,
   written once) — the same accounting Theorem-6 touches use, so a
   pass's achieved GB/s computed from its touch count is directly
   comparable against these roofs. *)
let probe_bytes ~elems = float_of_int (2 * 8 * elems)

let time_best ~repeats f =
  (* Warm-up run first: page the buffers in and JIT nothing (this is
     OCaml), then best-of-N to shed scheduler noise. *)
  f ();
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Clock.now_ns () in
    f ();
    let dt = Clock.now_ns () -. t0 in
    if dt < !best then best := dt
  done;
  Float.max !best 1.0 (* clamp: a clock too coarse to see the run *)

let probe_of_dt ~elems dt_ns =
  let bytes = probe_bytes ~elems in
  { gbps = bytes /. dt_ns; ns_per_byte = dt_ns /. bytes }

(* -- the four probes ----------------------------------------------------- *)

(* Streaming copy: both sides unit-stride — the bandwidth roof. *)
let run_stream ~elems src dst =
  for i = 0 to elems - 1 do
    Float.Array.unsafe_set dst i (Float.Array.unsafe_get src i)
  done

(* Strided gather: read column-major out of a [rows x width] row-major
   panel (consecutive reads [width] elements = one panel row apart,
   as the fused engine's column walk does), write unit-stride. *)
let run_gather ~elems ~width src dst =
  let rows = elems / width in
  let k = ref 0 in
  for j = 0 to width - 1 do
    for i = 0 to rows - 1 do
      Float.Array.unsafe_set dst !k
        (Float.Array.unsafe_get src ((i * width) + j));
      incr k
    done
  done;
  (* Remainder elements (elems not divisible by width): keep the byte
     count honest. *)
  for i = rows * width to elems - 1 do
    Float.Array.unsafe_set dst i (Float.Array.unsafe_get src i)
  done

(* Strided scatter: the mirror image — unit-stride reads, column-major
   writes. *)
let run_scatter ~elems ~width src dst =
  let rows = elems / width in
  let k = ref 0 in
  for j = 0 to width - 1 do
    for i = 0 to rows - 1 do
      Float.Array.unsafe_set dst ((i * width) + j)
        (Float.Array.unsafe_get src !k);
      incr k
    done
  done;
  for i = rows * width to elems - 1 do
    Float.Array.unsafe_set dst i (Float.Array.unsafe_get src i)
  done

(* Frequency probe: a loop-carried integer-add chain retires one add
   per cycle on any out-of-order core — the dependence through [acc]
   serializes the adds while the trip bookkeeping fills spare issue
   slots. Adds per nanosecond is then the effective clock in GHz, which
   the report layer uses to turn pass nanoseconds into cycles per
   element without ever touching a hardware counter. *)
let spin_iters = 1 lsl 27

let run_spin iters =
  let acc = ref 0 in
  for i = 1 to iters do
    acc := !acc + (i lor 1)
  done;
  !acc

(* Permuted write: sequential reads scattered through a full-buffer
   permutation — the worst traffic shape a row-permutation pass can
   produce (no two consecutive writes share a cache line). *)
let run_permute ~elems perm src dst =
  for i = 0 to elems - 1 do
    Float.Array.unsafe_set dst (Array.unsafe_get perm i)
      (Float.Array.unsafe_get src i)
  done

let run ?(elems = default_elems) ?(repeats = default_repeats)
    ?(panel_width = default_panel_width) () =
  if elems < 1024 then invalid_arg "Calibrate.run: elems must be >= 1024";
  if repeats < 1 then invalid_arg "Calibrate.run: repeats must be >= 1";
  if panel_width < 2 then
    invalid_arg "Calibrate.run: panel_width must be >= 2";
  let src = Float.Array.init elems (fun i -> float_of_int (i land 0xffff)) in
  let dst = Float.Array.make elems 0.0 in
  (* A multiplicative full-cycle permutation (any odd multiplier is
     coprime with a power-of-two modulus; for general [elems] fall back
     to a shuffle-free odd-stride walk that still visits scattered
     addresses). *)
  let perm =
    let a = 2654435761 in
    Array.init elems (fun i -> i * a mod elems)
  in
  (* [i * a mod elems] is only a permutation when [gcd a elems = 1];
     repair collisions by walking forward — the probe needs scattered
     distinct addresses, not group theory. *)
  let seen = Bytes.make elems '\000' in
  Array.iteri
    (fun i p ->
      let p = ref ((p mod elems + elems) mod elems) in
      while Bytes.get seen !p <> '\000' do
        p := (!p + 1) mod elems
      done;
      Bytes.set seen !p '\001';
      perm.(i) <- !p)
    perm;
  let stream =
    probe_of_dt ~elems (time_best ~repeats (fun () -> run_stream ~elems src dst))
  in
  let gather =
    probe_of_dt ~elems
      (time_best ~repeats (fun () -> run_gather ~elems ~width:panel_width src dst))
  in
  let scatter =
    probe_of_dt ~elems
      (time_best ~repeats (fun () ->
           run_scatter ~elems ~width:panel_width src dst))
  in
  let permute =
    probe_of_dt ~elems (time_best ~repeats (fun () -> run_permute ~elems perm src dst))
  in
  let ghz =
    let dt =
      time_best ~repeats (fun () ->
          ignore (Sys.opaque_identity (run_spin spin_iters)))
    in
    Some (float_of_int spin_iters /. dt)
  in
  ignore (Float.Array.get dst 0);
  { elems; repeats; panel_width; stream; gather; scatter; permute; ghz }

(* -- persistence --------------------------------------------------------- *)

let json_float x =
  if not (Float.is_finite x) then "null" else Printf.sprintf "%.17g" x

let probe_json p =
  Printf.sprintf "{\"gbps\": %s, \"ns_per_byte\": %s}" (json_float p.gbps)
    (json_float p.ns_per_byte)

(* [ghz] is emitted only when present so a pre-frequency-probe file
   still survives [load] -> [to_json] byte-identically (and keeps its
   fingerprint, so tuning-DB entries stamped against it stay valid). *)
let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"version\": 1,\n";
  Printf.bprintf b "  \"elems\": %d,\n" t.elems;
  Printf.bprintf b "  \"repeats\": %d,\n" t.repeats;
  Printf.bprintf b "  \"panel_width\": %d,\n" t.panel_width;
  (match t.ghz with
  | None -> ()
  | Some g -> Printf.bprintf b "  \"ghz\": %s,\n" (json_float g));
  Buffer.add_string b "  \"roofs\": {\n";
  Printf.bprintf b "    \"stream\": %s,\n" (probe_json t.stream);
  Printf.bprintf b "    \"gather\": %s,\n" (probe_json t.gather);
  Printf.bprintf b "    \"scatter\": %s,\n" (probe_json t.scatter);
  Printf.bprintf b "    \"permute\": %s\n" (probe_json t.permute);
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let of_json s =
  let* j =
    match Json_lite.parse s with
    | Ok j -> Ok j
    | Error m -> Error (Printf.sprintf "calibration: %s" m)
  in
  let int_field key =
    match Json_lite.num_field key j with
    | Some v when Float.is_integer v && v >= 0.0 -> Ok (int_of_float v)
    | _ -> Error (Printf.sprintf "calibration: missing integer %S" key)
  in
  let* version = int_field "version" in
  if version <> 1 then
    Error (Printf.sprintf "calibration: unsupported version %d" version)
  else
    let* elems = int_field "elems" in
    let* repeats = int_field "repeats" in
    let* panel_width = int_field "panel_width" in
    let* roofs =
      match Json_lite.mem "roofs" j with
      | Some r -> Ok r
      | None -> Error "calibration: missing \"roofs\""
    in
    let probe_field key =
      match Json_lite.mem key roofs with
      | None -> Error (Printf.sprintf "calibration: missing roof %S" key)
      | Some p -> (
          match
            (Json_lite.num_field "gbps" p, Json_lite.num_field "ns_per_byte" p)
          with
          | Some gbps, Some ns_per_byte
            when Float.is_finite gbps && gbps > 0.0
                 && Float.is_finite ns_per_byte && ns_per_byte > 0.0 ->
              Ok { gbps; ns_per_byte }
          | _ ->
              Error
                (Printf.sprintf "calibration: roof %S needs positive gbps and \
                                 ns_per_byte"
                   key))
    in
    let* stream = probe_field "stream" in
    let* gather = probe_field "gather" in
    let* scatter = probe_field "scatter" in
    let* permute = probe_field "permute" in
    let* ghz =
      match Json_lite.mem "ghz" j with
      | None -> Ok None (* pre-frequency-probe calibration file *)
      | Some v -> (
          match Json_lite.num v with
          | Some g when Float.is_finite g && g > 0.0 -> Ok (Some g)
          | _ -> Error "calibration: \"ghz\" must be a positive number")
    in
    Ok { elems; repeats; panel_width; stream; gather; scatter; permute; ghz }

(* The canonical JSON rendering is a deterministic function of the
   record (%.17g is a float round-trip fixpoint), so its digest
   identifies the calibration exactly: any re-probe that measures even
   slightly different roofs yields a new fingerprint, which is what
   invalidates tuning-DB entries priced against the old roofs. *)
let fingerprint t = Digest.to_hex (Digest.string (to_json t))

let save t ~file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json t))

let load ~file =
  match open_in file with
  | exception Sys_error m -> Error m
  | ic ->
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      of_json s
