type row = {
  seq : int;
  name : string;
  batch : int;
  rows : int;
  cols : int;
  block : int;
  pred_touches : int;
  scratch_elems : int;
  measured_ns : float;
  pred_ns : float;
  rel_err : float;
  chunks : int;
  imbalance : float;
  gbps : float;
  roofline_frac : float;
  cpe : float;
}

type t = {
  passes : row list;
  total_ns : float;
  total_pred_touches : int;
  calibrated : bool;
  has_cpe : bool;
}

let int_arg args key default =
  match List.assoc_opt key args with Some (Tracer.Int i) -> i | _ -> default

let contains ~(outer : Tracer.event) ~(inner : Tracer.event) =
  inner.Tracer.ts_ns >= outer.Tracer.ts_ns
  && inner.Tracer.ts_ns +. inner.Tracer.dur_ns
     <= outer.Tracer.ts_ns +. outer.Tracer.dur_ns

(* A chunk belongs to the tightest pass span whose interval contains it:
   chunks run strictly inside the barrier their pass opened, and nested
   passes (a plan pass running phase passes inside pool chunks) contain
   the chunk's pass rather than the other way around. *)
let chunks_of passes (chunk : Tracer.event) =
  List.fold_left
    (fun best (p : Tracer.event) ->
      if contains ~outer:p ~inner:chunk then
        match best with
        | Some (b : Tracer.event) when b.Tracer.dur_ns <= p.Tracer.dur_ns ->
            best
        | _ -> Some p
      else best)
    None passes

let of_events ?cal evs =
  let complete cat =
    List.filter
      (fun (e : Tracer.event) -> e.Tracer.cat = cat && e.Tracer.ph = `Complete)
      evs
  in
  let passes =
    List.sort
      (fun (a : Tracer.event) b -> compare a.Tracer.seq b.Tracer.seq)
      (complete "pass")
  in
  let chunk_durs : (int, float list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (c : Tracer.event) ->
      match chunks_of passes c with
      | None -> ()
      | Some p ->
          let k = p.Tracer.seq in
          let prev = Option.value ~default:[] (Hashtbl.find_opt chunk_durs k) in
          Hashtbl.replace chunk_durs k (c.Tracer.dur_ns :: prev))
    (complete "chunk");
  let total_ns =
    List.fold_left (fun a (p : Tracer.event) -> a +. p.Tracer.dur_ns) 0.0 passes
  in
  let total_pred_touches =
    List.fold_left
      (fun a (p : Tracer.event) -> a + int_arg p.Tracer.args "pred_touches" 0)
      0 passes
  in
  let rows =
    List.map
      (fun (p : Tracer.event) ->
        let pred_touches = int_arg p.Tracer.args "pred_touches" 0 in
        let pred_ns =
          if total_pred_touches = 0 then 0.0
          else
            total_ns *. float_of_int pred_touches
            /. float_of_int total_pred_touches
        in
        let durs =
          Option.value ~default:[] (Hashtbl.find_opt chunk_durs p.Tracer.seq)
        in
        let chunks = List.length durs in
        let imbalance =
          if chunks = 0 then 1.0
          else
            let sum = List.fold_left ( +. ) 0.0 durs in
            let mean = sum /. float_of_int chunks in
            if mean <= 0.0 then 1.0
            else List.fold_left Float.max 0.0 durs /. mean
        in
        let bytes = float_of_int (pred_touches * 8) in
        let gbps, roofline_frac =
          match cal with
          | None -> (Float.nan, Float.nan)
          | Some cal ->
              let kind = Roofline.kind_of_pass p.Tracer.name in
              ( Roofline.achieved_gbps ~bytes ~dur_ns:p.Tracer.dur_ns,
                Roofline.fraction cal kind ~bytes ~dur_ns:p.Tracer.dur_ns )
        in
        (* Cycles per element: touches count each element once per
           direction (read + write), so elements = touches / 2 — the
           same accounting the calibration probes use. Needs the clock
           probe; a pre-[ghz] calibration yields [nan] and no column. *)
        let cpe =
          match cal with
          | Some { Calibrate.ghz = Some g; _ } when pred_touches > 0 ->
              p.Tracer.dur_ns *. g /. (float_of_int pred_touches /. 2.0)
          | _ -> Float.nan
        in
        if Float.is_finite cpe then
          Metrics.set_gauge
            (Metrics.gauge (Printf.sprintf "pass.%s.cpe" p.Tracer.name))
            cpe;
        {
          seq = p.Tracer.seq;
          name = p.Tracer.name;
          batch = int_arg p.Tracer.args "batch" 1;
          rows = int_arg p.Tracer.args "rows" 0;
          cols = int_arg p.Tracer.args "cols" 0;
          block = int_arg p.Tracer.args "block" 1;
          pred_touches;
          scratch_elems = int_arg p.Tracer.args "scratch_elems" 0;
          measured_ns = p.Tracer.dur_ns;
          pred_ns;
          rel_err =
            (if pred_ns > 0.0 then (p.Tracer.dur_ns -. pred_ns) /. pred_ns
             else Float.nan);
          chunks;
          imbalance;
          gbps;
          roofline_frac;
          cpe;
        })
      passes
  in
  {
    passes = rows;
    total_ns;
    total_pred_touches;
    calibrated = cal <> None;
    has_cpe =
      (match cal with Some { Calibrate.ghz = Some _; _ } -> true | _ -> false);
  }

let shape_string r =
  let b = Buffer.create 16 in
  if r.batch > 1 then Printf.bprintf b "%dx " r.batch;
  Printf.bprintf b "%dx%d" r.rows r.cols;
  if r.block > 1 then Printf.bprintf b " x%db" r.block;
  Buffer.contents b

let render ?(show_times = true) t =
  let b = Buffer.create 1024 in
  Printf.bprintf b "%-4s %-16s %-16s %12s %7s %9s %10s %8s %7s %7s" "#"
    "pass" "shape" "pred.touch" "share%" "scratch" "meas.ms" "rel.err"
    "chunks" "imbal";
  (* The roofline columns appear only on calibrated runs, so the
     uncalibrated table stays byte-identical (the cram tests pin it);
     CPE additionally needs the clock probe, so reports against a
     pre-[ghz] calibration file keep the roofline-era layout too. *)
  if t.calibrated then Printf.bprintf b " %8s %6s" "GB/s" "roofl";
  if t.has_cpe then Printf.bprintf b " %6s" "CPE";
  Buffer.add_char b '\n';
  Printf.bprintf b "%s\n"
    (String.make
       ((if t.calibrated then 120 else 104) + if t.has_cpe then 7 else 0)
       '-');
  let share r =
    if t.total_pred_touches = 0 then 0.0
    else
      100.0 *. float_of_int r.pred_touches
      /. float_of_int t.total_pred_touches
  in
  List.iteri
    (fun i r ->
      Printf.bprintf b "%-4d %-16s %-16s %12d %7.1f %9d" (i + 1) r.name
        (shape_string r) r.pred_touches (share r) r.scratch_elems;
      if show_times then begin
        Printf.bprintf b " %10.3f" (r.measured_ns /. 1e6);
        if Float.is_nan r.rel_err then Printf.bprintf b " %8s" "-"
        else Printf.bprintf b " %+7.1f%%" (100.0 *. r.rel_err)
      end
      else Printf.bprintf b " %10s %8s" "-" "-";
      Printf.bprintf b " %7d" r.chunks;
      if show_times then Printf.bprintf b " %7.2f" r.imbalance
      else Printf.bprintf b " %7s" "-";
      if t.calibrated then
        if show_times && not (Float.is_nan r.gbps) then
          Printf.bprintf b " %8.2f %6.2f" r.gbps r.roofline_frac
        else Printf.bprintf b " %8s %6s" "-" "-";
      if t.has_cpe then
        if show_times && not (Float.is_nan r.cpe) then
          Printf.bprintf b " %6.2f" r.cpe
        else Printf.bprintf b " %6s" "-";
      Buffer.add_char b '\n')
    t.passes;
  Printf.bprintf b "total: %d passes, %d predicted element touches"
    (List.length t.passes) t.total_pred_touches;
  if show_times then Printf.bprintf b ", %.3f ms measured" (t.total_ns /. 1e6);
  Buffer.add_char b '\n';
  Buffer.contents b
