(** A span-based tracer whose sink is the Chrome [trace_event] JSON
    format (loadable in [ui.perfetto.dev] or [chrome://tracing]), plus a
    compact text renderer.

    The tracer is {e off} by default and spans cost nothing while it is
    off beyond one atomic load per {!with_span} call: instrumented layers
    open one span per permutation {e pass} or pool {e chunk} — never per
    element — and every argument list is built lazily, only when a span
    is actually recorded.

    Categories used by the instrumented stack:
    - ["pass"] — one 2-D permutation pass (rotate / row shuffle / column
      shuffle) with its Theorem-6 predicted element touches;
    - ["plan"] — one pass of a rank-N permutation plan (a batched/blocked
      2-D transpose over the whole buffer);
    - ["panel"] — one width-W column-panel visit of a cache-aware or
      fused engine, nested inside its ["pass"] span;
    - ["chunk"] — one worker's share of a {!Xpose_cpu.Pool} barrier;
    - ["simd"] — one simulated-GPU kernel phase with its
      [Memory.stats] delta. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;
  cat : string;
  ph : [ `Complete | `Instant ];
  ts_ns : float;  (** start, {!Clock} epoch *)
  dur_ns : float;  (** 0 for instants *)
  tid : int;  (** domain id *)
  seq : int;  (** global emission ticket, unique and monotone *)
  args : (string * value) list;
}

(** {1 Control} *)

val enabled : unit -> bool
val start : unit -> unit
(** Clear the buffer and start recording. *)

val stop : unit -> unit
(** Stop recording; the buffer is kept for rendering. *)

val clear : unit -> unit
val events : unit -> event list
(** Recorded events in emission order. *)

(** {1 Recording} *)

val with_span :
  ?cat:string ->
  ?args:(unit -> (string * value) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] runs [f] and, when the tracer is enabled, records
    a complete event around it ([args] is forced once, after [f]
    returns — it may read state [f] updated). The span is recorded even
    if [f] raises. When disabled this is exactly [f ()]. *)

val instant :
  ?cat:string -> ?args:(unit -> (string * value) list) -> string -> unit

val emit : event -> unit
(** Append a pre-built event (thread-safe; no enabled check). The job
    server uses this to record {e retroactive} spans — queue wait and
    coalesce delay are only known once a job dispatches, so their
    [Complete] events are built from recorded timestamps after the
    fact. *)

val next_seq : unit -> int
(** Claim an emission ticket for a pre-built event — keeps
    retroactively {!emit}ted events unique and ordered in the same
    sequence space as {!with_span}'s. *)

(** {1 Ambient args}

    Request-scoped context for spans recorded far from where the
    context is known: the job server's dispatcher sets the batch's
    trace id before invoking an engine, and every {!pass}/{!panel}
    span opened while the ambient args are set carries them (appended
    to the span's own args). One global cell — correct because the
    dispatcher executes one batch at a time; nested engine spans all
    belong to that batch. *)

val set_ambient_args : (string * value) list -> unit
val clear_ambient_args : unit -> unit
val ambient_args : unit -> (string * value) list

val with_ambient_args : (string * value) list -> (unit -> 'a) -> 'a
(** Set, run, clear (clears even if [f] raises). *)

val fresh_trace_id : unit -> int
(** A fresh u32 trace id, unique within the process (a multiplicative
    hash of a global counter, so ids are spread over the id space). *)

val pass :
  name:string ->
  ?batch:int ->
  ?block:int ->
  rows:int ->
  cols:int ->
  pred_touches:int ->
  scratch_elems:int ->
  (unit -> 'a) ->
  'a
(** The one helper every pass runner uses: always bumps the
    [xpose.passes_total] / [xpose.pred_touches_total] counters and the
    per-kind [pass.<name>] / [pass.<name>.touches] counters, and opens a
    ["pass"] span carrying the pass shape, predicted element touches and
    scratch elements when the tracer is enabled. The [.touches] counters
    let two engines' per-pass traffic be compared from the metrics dump
    alone (the CI locality guard does exactly that). *)

val panel :
  name:string ->
  lo:int ->
  width:int ->
  rows:int ->
  pred_touches:int ->
  (unit -> 'a) ->
  'a
(** Per-panel twin of {!pass} for the cache-aware/fused engines: always
    bumps [xpose.panels_total], and opens a ["panel"] span (columns
    [[lo, lo+width)], [rows] rows, predicted memory element transfers)
    when the tracer is enabled. Called once per panel visit — [rows *
    width] elements of work — never per element. *)

(** {1 Sinks} *)

val to_chrome_json : unit -> string
(** The whole buffer as a JSON object with a [traceEvents] array of
    ["X"]/["i"] events — the Chrome [trace_event] format Perfetto
    accepts. Timestamps are microseconds. *)

val to_chrome_json_events : event list -> string
(** Like {!to_chrome_json} but over a caller-supplied event list — for
    rendering events post-processed outside the buffer (e.g.
    {!Roofline.annotate}d copies). *)

val to_text : unit -> string
(** Compact one-line-per-event rendering, sorted by start time. *)

(** {1 Flush sink}

    Without a sink, trace output only exists when the application
    renders the buffer itself — historically at [at_exit], which loses
    the trace when a drained server process is torn down before the
    handler runs, and can't write anything mid-run. A sink closes both
    holes: {!flush} hands the sink a {e full snapshot} of the buffer,
    so flushing is idempotent (render everything, overwrite) and safe
    to call from the shutdown drain path, a periodic timer, and
    [at_exit] alike. *)

val set_sink : (event list -> unit) option -> unit
(** Install (or with [None] remove) the flush sink. The sink receives
    a snapshot of all recorded events; it typically renders them with
    {!to_chrome_json_events} and rewrites the trace file in full. *)

val flush : unit -> unit
(** Snapshot the buffer and hand it to the sink; no-op without one.
    Thread-safe; may be called any number of times. *)
