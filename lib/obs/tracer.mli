(** A span-based tracer whose sink is the Chrome [trace_event] JSON
    format (loadable in [ui.perfetto.dev] or [chrome://tracing]), plus a
    compact text renderer.

    The tracer is {e off} by default and spans cost nothing while it is
    off beyond one atomic load per {!with_span} call: instrumented layers
    open one span per permutation {e pass} or pool {e chunk} — never per
    element — and every argument list is built lazily, only when a span
    is actually recorded.

    Categories used by the instrumented stack:
    - ["pass"] — one 2-D permutation pass (rotate / row shuffle / column
      shuffle) with its Theorem-6 predicted element touches;
    - ["plan"] — one pass of a rank-N permutation plan (a batched/blocked
      2-D transpose over the whole buffer);
    - ["panel"] — one width-W column-panel visit of a cache-aware or
      fused engine, nested inside its ["pass"] span;
    - ["chunk"] — one worker's share of a {!Xpose_cpu.Pool} barrier;
    - ["simd"] — one simulated-GPU kernel phase with its
      [Memory.stats] delta. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;
  cat : string;
  ph : [ `Complete | `Instant ];
  ts_ns : float;  (** start, {!Clock} epoch *)
  dur_ns : float;  (** 0 for instants *)
  tid : int;  (** domain id *)
  seq : int;  (** global emission ticket, unique and monotone *)
  args : (string * value) list;
}

(** {1 Control} *)

val enabled : unit -> bool
val start : unit -> unit
(** Clear the buffer and start recording. *)

val stop : unit -> unit
(** Stop recording; the buffer is kept for rendering. *)

val clear : unit -> unit
val events : unit -> event list
(** Recorded events in emission order. *)

(** {1 Recording} *)

val with_span :
  ?cat:string ->
  ?args:(unit -> (string * value) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] runs [f] and, when the tracer is enabled, records
    a complete event around it ([args] is forced once, after [f]
    returns — it may read state [f] updated). The span is recorded even
    if [f] raises. When disabled this is exactly [f ()]. *)

val instant :
  ?cat:string -> ?args:(unit -> (string * value) list) -> string -> unit

val emit : event -> unit
(** Append a pre-built event (thread-safe; no enabled check). *)

val pass :
  name:string ->
  ?batch:int ->
  ?block:int ->
  rows:int ->
  cols:int ->
  pred_touches:int ->
  scratch_elems:int ->
  (unit -> 'a) ->
  'a
(** The one helper every pass runner uses: always bumps the
    [xpose.passes_total] / [xpose.pred_touches_total] counters and the
    per-kind [pass.<name>] / [pass.<name>.touches] counters, and opens a
    ["pass"] span carrying the pass shape, predicted element touches and
    scratch elements when the tracer is enabled. The [.touches] counters
    let two engines' per-pass traffic be compared from the metrics dump
    alone (the CI locality guard does exactly that). *)

val panel :
  name:string ->
  lo:int ->
  width:int ->
  rows:int ->
  pred_touches:int ->
  (unit -> 'a) ->
  'a
(** Per-panel twin of {!pass} for the cache-aware/fused engines: always
    bumps [xpose.panels_total], and opens a ["panel"] span (columns
    [[lo, lo+width)], [rows] rows, predicted memory element transfers)
    when the tracer is enabled. Called once per panel visit — [rows *
    width] elements of work — never per element. *)

(** {1 Sinks} *)

val to_chrome_json : unit -> string
(** The whole buffer as a JSON object with a [traceEvents] array of
    ["X"]/["i"] events — the Chrome [trace_event] format Perfetto
    accepts. Timestamps are microseconds. *)

val to_text : unit -> string
(** Compact one-line-per-event rendering, sorted by start time. *)
