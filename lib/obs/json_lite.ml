type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected %C at offset %d, found %C" ch c.pos x
  | None -> fail "expected %C at offset %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.s
    && String.sub c.s c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "bad literal at offset %d" c.pos

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char b '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char b '\r'; go ()
        | Some 'b' -> advance c; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char b '\012'; go ()
        | Some '/' -> advance c; Buffer.add_char b '/'; go ()
        | Some '"' -> advance c; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char b '\\'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then fail "truncated \\u escape";
            let hex = String.sub c.s c.pos 4 in
            c.pos <- c.pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail "bad \\u escape %S" hex
            | Some code ->
                (* Collapse to Latin-1 when possible; otherwise keep a
                   lossy '?'. The documents this parser reads (bench
                   JSON, calibration files) are ASCII. *)
                Buffer.add_char b
                  (if code < 0x100 then Char.chr code else '?'));
            go ()
        | _ -> fail "bad escape at offset %d" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let tok = String.sub c.s start (c.pos - start) in
  match float_of_string_opt tok with
  | Some v -> Num v
  | None -> fail "bad number %S at offset %d" tok start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ((key, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}' at offset %d" c.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at offset %d" c.pos
        in
        Arr (elements [])
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing input at offset %d" c.pos)
      else Ok v
  | exception Parse_error m -> Error m

(* -- accessors ----------------------------------------------------------- *)

let mem key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let str = function Str s -> Some s | _ -> None

let num = function Num v -> Some v | _ -> None

let arr = function Arr l -> Some l | _ -> None

let obj = function Obj kvs -> Some kvs | _ -> None

let num_field key v = Option.bind (mem key v) num
