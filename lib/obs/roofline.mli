(** Place traced passes against the calibrated machine roofs.

    A {!Calibrate.t} gives the machine's bandwidth for four traffic
    shapes; every pass span carries its exact Theorem-6 touch count
    (one read + one write per touch pair, so [touches * 8] bytes for
    float64). From the span's measured duration this module derives

    - {e achieved GB/s}: [bytes / dur_ns] (bytes per nanosecond {e is}
      GB/s), and
    - the {e roofline fraction}: achieved divided by the applicable
      roof, clamped to {!max_fraction}.

    A fraction near 1 means the pass is running at what the machine
    allows for its traffic shape — further tuning must change the
    shape, not the code. A low fraction is headroom the ROADMAP's
    autotuner can chase. Fractions can legitimately exceed 1 (a
    cache-resident run beats an out-of-cache roof), hence the clamp
    rather than an assert; consumers may rely on reported fractions
    lying in (0, {!max_fraction}]. *)

type kind = Stream | Gather | Scatter | Permute

val kind_to_string : kind -> string

val kind_of_pass : string -> kind
(** The traffic-class map, keyed on the pass names the engines emit
    (substring match, first rule wins): ["fused*"] → [Gather],
    ["*rotate*"] → [Scatter], ["*row*"] → [Permute], ["*col*"] →
    [Gather], everything else → [Stream]. Total — unknown names price
    against the streaming roof. *)

val roof_gbps : Calibrate.t -> kind -> float

val achieved_gbps : bytes:float -> dur_ns:float -> float
(** [nan] when duration or bytes are degenerate. *)

val max_fraction : float
(** 1.5 — the clamp on reported fractions. *)

val fraction : Calibrate.t -> kind -> bytes:float -> dur_ns:float -> float
(** Achieved over roof, clamped to (0, {!max_fraction}]; [nan] when
    either side is degenerate. *)

val annotate : Calibrate.t -> Tracer.event list -> Tracer.event list
(** Append [roofline_kind] / [achieved_gbps] / [roofline_frac] args to
    every complete ["pass"] and ["panel"] span that carries a positive
    [pred_touches]; other events pass through untouched. Pure — the
    tracer's buffer is not modified; render the result with
    {!Tracer.to_chrome_json_events}. *)
