(** Predicted-vs-measured accounting: join the ["pass"] spans of one
    traced run against the cost model's per-pass predictions.

    Each pass span carries the exact Theorem-6 element-touch count the
    executor computed for that pass ([pred_touches]); the model has no
    opinion on absolute nanoseconds, so the predicted time of pass [i] is
    its {e share} of the measured total:
    [pred_ns_i = total_ns * touches_i / total_touches], and
    [rel_err_i = (measured_ns_i - pred_ns_i) / pred_ns_i]. A relative
    error near zero means wall time is proportional to element touches —
    the assumption the planner's ranking rests on; a large positive error
    flags a pass whose traffic shape (strided columns, scattered rows)
    costs more per touch than its peers.

    ["chunk"] spans (recorded by [Pool.parallel_chunks]) are matched to
    their enclosing pass by interval containment; each pass then gets a
    load-imbalance ratio: slowest chunk over mean chunk duration (1.0 is
    the paper's "perfect load balancing"). *)

type row = {
  seq : int;
  name : string;
  batch : int;
  rows : int;
  cols : int;
  block : int;
  pred_touches : int;
  scratch_elems : int;
  measured_ns : float;
  pred_ns : float;
  rel_err : float;  (** [nan] when the pass has no predicted share *)
  chunks : int;  (** matched pool chunks; 0 when run serially *)
  imbalance : float;  (** max/mean chunk duration; 1.0 without chunks *)
  gbps : float;  (** achieved GB/s; [nan] without calibration *)
  roofline_frac : float;
      (** achieved over the pass's applicable roof, in
          (0, {!Roofline.max_fraction}]; [nan] without calibration *)
  cpe : float;
      (** cycles per element: measured duration times the calibration's
          [ghz] over [pred_touches / 2] elements (touches count each
          element once per direction, the probes' own accounting).
          [nan] without a calibration, when the calibration predates
          the clock probe ([ghz = None]), or when the pass predicts no
          touches. *)
}

type t = {
  passes : row list;  (** in execution order *)
  total_ns : float;
  total_pred_touches : int;
  calibrated : bool;  (** whether {!of_events} was given a calibration *)
  has_cpe : bool;
      (** whether the calibration carried a clock probe, i.e. the [cpe]
          column is meaningful *)
}

val of_events : ?cal:Calibrate.t -> Tracer.event list -> t
(** With [?cal], every pass row additionally gets achieved GB/s
    ([pred_touches * 8] bytes over measured duration) and its roofline
    fraction against the roof {!Roofline.kind_of_pass} selects; when
    the calibration carries a clock probe, each pass's cycles-per-
    element lands in the row and is published as the
    [pass.<name>.cpe] gauge in {!Metrics} (so the Prometheus
    exposition exports it). *)

val render : ?show_times:bool -> t -> string
(** Fixed-width table. With [show_times:false] every wall-clock-derived
    column (measured/predicted ns, relative error, imbalance, and the
    calibrated GB/s / roofline columns) renders as ["-"] so the output
    is deterministic (used by the cram tests). The [GB/s] and [roofl]
    columns appear only when [t.calibrated] — an uncalibrated report is
    byte-identical to what pre-calibration releases printed. The [CPE]
    column appears only when [t.has_cpe], so reports against a
    pre-clock-probe calibration keep the roofline-era layout. *)
