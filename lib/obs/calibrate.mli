(** Machine bandwidth roofs from micro-probes, persisted as JSON.

    The Theorem-6 model prices a pass in {e element touches}; the
    report layer turns touches into a share of measured time. Neither
    says how close a pass runs to what the machine allows. Following
    the locality-aware roofline approach, this module measures four
    bandwidth roofs — one per traffic shape the engines generate — and
    {!Roofline} places every traced pass against the applicable one:

    - {e stream}: unit-stride copy (the classic bandwidth roof);
    - {e gather}: column-major reads out of a row-major panel at the
      fused engine's panel width, unit-stride writes — the fused
      column walk's load shape;
    - {e scatter}: the mirror image (unit-stride reads, strided
      writes);
    - {e permute}: sequential reads, writes scattered through a
      full-buffer permutation — a row-permutation pass's worst case.

    Every probe moves [2 * 8 * elems] bytes (each element read and
    written once), the same accounting as Theorem-6 touches, so
    achieved GB/s computed from a pass's touch count is directly
    comparable against these roofs.

    Timing uses {!Clock.now_ns}: install a wall clock first (the CLI
    and bench driver do) — the [Sys.time] default measures CPU
    seconds and would distort the roofs.

    A calibration is a plain record; {!save}/{!load} persist it to a
    small JSON file that survives {!load} → {!to_json} byte-identically
    (floats print with [%.17g]), loaded once at startup by the CLI
    ([--calibration FILE]) and the bench driver. *)

type probe = {
  gbps : float;  (** measured bandwidth, bytes per nanosecond *)
  ns_per_byte : float;  (** its reciprocal: the fitted per-byte cost *)
}

type t = {
  elems : int;  (** float64 elements per probe buffer *)
  repeats : int;  (** best-of-N timing *)
  panel_width : int;  (** stride of the gather/scatter probes *)
  stream : probe;
  gather : probe;
  scatter : probe;
  permute : probe;
  ghz : float option;
      (** effective clock from the frequency probe — a loop-carried
          integer-add chain retiring ~1 add/cycle, so adds per
          nanosecond is GHz. [None] when loaded from a file written
          before the probe existed; the report layer then omits the
          cycles-per-element column rather than guess. *)
}

val default_elems : int
(** [2^21] elements (16 MiB): past any sane L2, so the roofs measure
    memory, not cache. *)

val default_repeats : int

val default_panel_width : int
(** 16 — [Xpose_cpu.Fused.default_width]'s value (kept in sync by a
    unit test; this library cannot depend on the cpu layer). *)

val run : ?elems:int -> ?repeats:int -> ?panel_width:int -> unit -> t
(** Measure all four roofs plus the clock probe, best-of-[repeats]
    each after a warm-up run ([ghz] is always [Some] on a fresh run).
    @raise Invalid_argument on degenerate sizes ([elems < 1024],
    [repeats < 1], [panel_width < 2]). *)

val to_json : t -> string
val of_json : string -> (t, string) result
(** Total: hostile bytes come back as [Error], never an exception.
    Rejects unknown versions and non-positive roofs. *)

val fingerprint : t -> string
(** A hex digest of the canonical JSON rendering — a stable identity
    for this exact calibration. The tuning DB stamps every entry with
    the fingerprint of the calibration it was priced and measured
    under; a re-probe (new roofs, new fingerprint) invalidates them. *)

val save : t -> file:string -> unit
(** @raise Sys_error if the file cannot be written. *)

val load : file:string -> (t, string) result
(** Read and {!of_json} the file; I/O failure is an [Error] too. *)
