(** The serving-path entry point: route a transpose through whatever
    the tuning DB says is fastest for its shape.

    A selector pairs a {!Db.t} with a {!Xpose_core.Plan.Cache} whose
    entries carry the tuned parameters, so a hot shape costs one DB
    lookup (a hash find) plus one plan-cache hit — no planning, no
    tuning, no timing. Shapes the DB has never seen fall back to
    {!Xpose_core.Tune_params.default} and count as misses; the hit/miss
    totals are also published as the [tune_db.hits] / [tune_db.misses]
    metrics counters, which the server's stats reply and
    [xpose loadtest --engine tuned] report. *)

open Xpose_core

type t

val create : ?db:Db.t -> ?cache:Plan.Cache.t -> unit -> t
(** [db] defaults to an empty DB (every lookup a miss — pure default
    behaviour); [cache] defaults to {!Plan.Cache.default}. *)

val db : t -> Db.t

val params_for : t -> m:int -> n:int -> Tune_params.t
(** The tuned parameters for the shape, or
    {!Tune_params.default} on a miss. A shape tuned as [m x n] also
    answers for [n x m] — both run the same plan. Thread-safe; bumps
    the hit/miss counters. *)

val window_bytes_for : t -> m:int -> n:int -> default:int -> int
(** The out-of-core window for the shape: the tuned window when the DB
    holds one, capped at [default] (a tenant's window is a residency
    {e promise} — tuning may shrink it, never grow it). *)

val hits : t -> int
val misses : t -> int

val dispatch : ?pool:Xpose_cpu.Pool.t -> t -> m:int -> n:int ->
  Storage.Float64.t -> unit
(** Transpose the in-RAM buffer with the tuned engine: kernels, the
    cache-aware sweeps, the fused engine at the tuned panel width
    (pool-parallel when [pool] has more than one lane), or — when the
    DB tuned the shape out of core — staged through a temp file under
    the tuned window.
    @raise Invalid_argument on a shape/buffer mismatch. *)

val dispatch_batch :
  t -> Xpose_cpu.Pool.t -> m:int -> n:int -> Storage.Float64.t array -> unit
(** Batched dispatch: the fused route runs
    {!Xpose_cpu.Fused_f64.transpose_batch} under the tuned panel width
    and split policy; other routes run per matrix.
    @raise Invalid_argument as {!dispatch}. *)
