(** Timing harness for surviving candidates.

    Each measurement is a best-of-N forward-and-back roundtrip (no
    re-fill between repeats, and the identity at the end is verified
    element-by-element — a candidate that computes the wrong answer
    raises instead of winning), halved to the per-transpose time and
    wrapped in a ["tune.measure"] {!Xpose_obs.Tracer} span. Out-of-core
    candidates honestly pay their file staging; batched measurements
    ([nb > 1]) drive {!Xpose_cpu.Fused_f64.transpose_batch} under the
    candidate's split policy. *)

open Xpose_core

type sample = {
  params : Tune_params.t;
  predicted_ns : float;  (** Model price ({!Space.predict_ns}). *)
  measured_ns : float;  (** Best-of-N per-transpose wall time. *)
  roofline_frac : float;
      (** Achieved fraction of the streaming roof for the ideal
          [2 * m * n * 8] bytes of one transpose. *)
}

val measure :
  ?pool:Xpose_cpu.Pool.t ->
  ?nb:int ->
  repeats:int ->
  m:int ->
  n:int ->
  Tune_params.t ->
  float
(** Best-of-[repeats] per-transpose nanoseconds for the candidate on an
    [m x n] iota matrix (batch of [nb], default 1).
    @raise Invalid_argument on degenerate arguments or if the candidate
    fails the roundtrip identity check. *)

val roofline_frac : Xpose_obs.Calibrate.t -> m:int -> n:int -> ns:float -> float

val sample :
  ?pool:Xpose_cpu.Pool.t ->
  ?nb:int ->
  cal:Xpose_obs.Calibrate.t ->
  repeats:int ->
  m:int ->
  n:int ->
  Space.priced ->
  sample
(** {!measure} a priced candidate and record its achieved roofline
    fraction. *)
