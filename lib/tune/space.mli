(** The autotuner's typed search space and its calibrated cost model.

    A candidate is a {!Xpose_core.Tune_params.t}; the space is the cross
    product engine x panel width x batch split x ooc window, restricted
    to the combinations that make sense (the kernel engine has no panel
    geometry, splits only exist for real batches, windows only for the
    out-of-core engine). {!predict_ns} prices a candidate with the
    calibrated per-byte rates of {!Xpose_core.Pass_cost}, width-scaled
    by {!Xpose_core.Pass_cost.rate_at_width}, so {!prune} can discard
    the clearly-losing part of the space before any timing run. *)

open Xpose_core

type t = {
  engines : Tune_params.engine list;
  widths : int list;
  splits : Tune_params.batch_split list;
  windows : int list;  (** Candidate ooc window budgets, in bytes. *)
  tiers : Tune_params.kernel_tier list;
      (** Candidate kernel tiers for the fused panel loops. *)
}

val make :
  ?engines:Tune_params.engine list ->
  ?widths:int list ->
  ?splits:Tune_params.batch_split list ->
  ?windows:int list ->
  ?tiers:Tune_params.kernel_tier list ->
  unit ->
  t
(** Defaults: in-RAM engines ([Kernels]/[Cache]/[Fused] — [Ooc] joins
    only when asked for, since it also needs [windows]),
    {!Tune_params.supported_widths}, the three split policies, no
    windows, {!Tune_params.supported_tiers}.
    @raise Invalid_argument on an empty [widths], [splits] or
    [tiers]. *)

val candidates : t -> nb:int -> Tune_params.t list
(** All candidates for a shape tuned at batch size [nb]. Always
    contains {!Tune_params.default}; [nb <= 1] collapses the split axis
    to [Auto]. The kernel-tier axis spreads only under the fused
    engine, restricted to tiers whose block fits the panel width. *)

val predict_ns :
  cal:Xpose_obs.Calibrate.t ->
  rates:Pass_cost.rates ->
  m:int ->
  n:int ->
  Tune_params.t ->
  float
(** Model time for one in-place transpose of [m x n] under the
    candidate: each pass the engine would run, priced at the calibrated
    rate of its traffic class ({!Xpose_obs.Roofline.kind_of_pass} on
    the engine's own pass names), width-scaled from the calibration's
    probe width; the fused panel passes additionally carry the
    candidate's kernel-tier block discount
    ({!Pass_cost.predicted_ns_at_tier}). Monotone in every rate —
    perturbing the calibration can reorder candidates only in the
    direction of the perturbed traffic class (the pruning contract the
    property tests pin). *)

type priced = { params : Tune_params.t; predicted_ns : float }

val price :
  cal:Xpose_obs.Calibrate.t ->
  rates:Pass_cost.rates ->
  m:int ->
  n:int ->
  Tune_params.t list ->
  priced list
(** Price and sort ascending by predicted time (stable). *)

val prune : keep:int -> priced list -> priced list
(** The [keep] cheapest candidates by model price — plus
    {!Tune_params.default} even when the model ranks it out, so the
    measured winner is never worse than the untuned configuration.
    @raise Invalid_argument if [keep < 1]. *)
