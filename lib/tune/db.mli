(** The persistent tuning DB: one winning configuration per shape,
    versioned by calibration fingerprint.

    JSON on disk (parsed back with the total {!Xpose_obs.Json_lite}),
    written atomically (temp file + [rename] in the target directory),
    and keyed in memory by [(m, n)] under a mutex so the server's
    dispatcher can consult it from any domain. An entry records the
    winner's parameters alongside the model's prediction, the measured
    time, the measured time of the {e default} configuration (the
    never-slower floor the CI gate checks), and the achieved roofline
    fraction.

    The whole DB carries the {!Xpose_obs.Calibrate.fingerprint} of the
    calibration its entries were priced and measured under; {!load}
    with a different fingerprint discards every entry, which is what
    forces re-tuning after a re-probe. *)

open Xpose_core

type entry = {
  m : int;
  n : int;
  nb : int;  (** Batch size the shape was tuned at (1 = single). *)
  params : Tune_params.t;
  predicted_ns : float;
  measured_ns : float;
  default_ns : float;
      (** Measured time of {!Tune_params.default} in the same run. *)
  roofline_frac : float;
}

type t

val create : fingerprint:string -> t
val fingerprint : t -> string

val find : t -> m:int -> n:int -> entry option
val add : t -> entry -> unit
(** Replaces any previous entry for the shape.
    @raise Invalid_argument on non-positive [m], [n] or [nb]. *)

val length : t -> int
val entries : t -> entry list
(** Sorted by shape. *)

val to_json : t -> string
val of_json : string -> (t, string) result
(** Total: hostile bytes come back as [Error], never an exception. *)

type status =
  | Fresh  (** No file existed; the DB starts empty. *)
  | Loaded  (** Entries restored; fingerprints matched. *)
  | Invalidated
      (** The file's fingerprint differs from the current calibration:
          every entry was discarded and tuning starts over. *)

val load : file:string -> fingerprint:string -> (t * status, string) result
(** Load [file] under the current calibration [fingerprint]. A missing
    file is [Fresh], a fingerprint mismatch is [Invalidated] (empty DB
    stamped with the {e new} fingerprint); only unparseable bytes or
    I/O failures are [Error]. *)

val save : t -> file:string -> unit
(** Serialize and atomically rename into place; a crashed writer leaves
    the previous file intact.
    @raise Sys_error if the directory is not writable. *)
