open Xpose_core

type outcome = {
  m : int;
  n : int;
  nb : int;
  db_hit : bool;
  pruned : int;
  timed : int;
  winner : Measure.sample;
  default_ns : float;
  samples : Measure.sample list;
}

let sample_of_entry (e : Db.entry) =
  {
    Measure.params = e.Db.params;
    predicted_ns = e.Db.predicted_ns;
    measured_ns = e.Db.measured_ns;
    roofline_frac = e.Db.roofline_frac;
  }

let is_default (c : Space.priced) =
  Tune_params.equal c.Space.params Tune_params.default

let tune_shape ?pool ~cal ~rates ~db ~space ~budget_ms ~repeats ~keep ~m ~n
    ~nb () =
  if m < 1 || n < 1 || nb < 1 then
    invalid_arg "Tuner.tune_shape: m, n and nb must be >= 1";
  match Db.find db ~m ~n with
  | Some e ->
      (* Pure DB hit: zero timing runs. *)
      {
        m;
        n;
        nb = e.Db.nb;
        db_hit = true;
        pruned = 0;
        timed = 0;
        winner = sample_of_entry e;
        default_ns = e.Db.default_ns;
        samples = [ sample_of_entry e ];
      }
  | None ->
      Xpose_obs.Tracer.with_span ~cat:"tune"
        ~args:(fun () ->
          [
            ("m", Xpose_obs.Tracer.Int m);
            ("n", Xpose_obs.Tracer.Int n);
            ("nb", Xpose_obs.Tracer.Int nb);
          ])
        "tune.shape"
        (fun () ->
          let all = Space.price ~cal ~rates ~m ~n (Space.candidates space ~nb) in
          let survivors = Space.prune ~keep all in
          let pruned = List.length all - List.length survivors in
          let t0 = Xpose_obs.Clock.now_ns () in
          let budget_ns = budget_ms *. 1e6 in
          let timed = ref 0 in
          (* Time candidates in model order until the budget runs out.
             The default configuration is always timed (it is the floor
             the winner is gated against), whatever the budget. *)
          let samples =
            List.filter_map
              (fun (c : Space.priced) ->
                let elapsed = Xpose_obs.Clock.now_ns () -. t0 in
                let within =
                  !timed = 0 || is_default c || elapsed < budget_ns
                in
                if not within then None
                else begin
                  incr timed;
                  Some (Measure.sample ?pool ~nb ~cal ~repeats ~m ~n c)
                end)
              survivors
          in
          let default_ns =
            match
              List.find_opt
                (fun (s : Measure.sample) ->
                  Tune_params.equal s.Measure.params Tune_params.default)
                samples
            with
            | Some s -> s.Measure.measured_ns
            | None -> nan (* unreachable: prune keeps the default *)
          in
          let winner =
            List.fold_left
              (fun (best : Measure.sample) (s : Measure.sample) ->
                if s.Measure.measured_ns < best.Measure.measured_ns then s
                else best)
              (List.hd samples) (List.tl samples)
          in
          Db.add db
            {
              Db.m;
              n;
              nb;
              params = winner.Measure.params;
              predicted_ns = winner.Measure.predicted_ns;
              measured_ns = winner.Measure.measured_ns;
              default_ns;
              roofline_frac = winner.Measure.roofline_frac;
            };
          {
            m;
            n;
            nb;
            db_hit = false;
            pruned;
            timed = !timed;
            winner;
            default_ns;
            samples =
              List.sort
                (fun (a : Measure.sample) (b : Measure.sample) ->
                  Float.compare a.Measure.measured_ns b.Measure.measured_ns)
                samples;
          })

let tune ?pool ?db_file ~cal ~db ~space ~budget_ms ~repeats ~keep shapes =
  let rates = Pass_cost.rates_of_calibration cal in
  List.map
    (fun (m, n, nb) ->
      let o =
        tune_shape ?pool ~cal ~rates ~db ~space ~budget_ms ~repeats ~keep ~m
          ~n ~nb ()
      in
      (* Persist after every shape: an interrupted run keeps its
         finished work (the save is an atomic rename). *)
      (match db_file with
      | Some file when not o.db_hit -> Db.save db ~file
      | _ -> ());
      o)
    shapes
