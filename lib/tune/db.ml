open Xpose_core

type entry = {
  m : int;
  n : int;
  nb : int;
  params : Tune_params.t;
  predicted_ns : float;
  measured_ns : float;
  default_ns : float;
  roofline_frac : float;
}

type t = {
  fingerprint : string;
  table : (int * int, entry) Hashtbl.t;
  mutex : Mutex.t;
}

let create ~fingerprint =
  { fingerprint; table = Hashtbl.create 32; mutex = Mutex.create () }

let fingerprint t = t.fingerprint

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t ~m ~n = locked t (fun () -> Hashtbl.find_opt t.table (m, n))

let add t e =
  if e.m < 1 || e.n < 1 || e.nb < 1 then
    invalid_arg "Db.add: m, n and nb must be >= 1";
  locked t (fun () -> Hashtbl.replace t.table (e.m, e.n) e)

let length t = locked t (fun () -> Hashtbl.length t.table)

let entries t =
  locked t (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) t.table [])
  |> List.sort (fun a b -> compare (a.m, a.n) (b.m, b.n))

(* -- JSON ------------------------------------------------------------------ *)

let json_float x =
  if not (Float.is_finite x) then "null" else Printf.sprintf "%.17g" x

let entry_json e =
  let window =
    match e.params.Tune_params.window_bytes with
    | None -> ""
    | Some w -> Printf.sprintf " \"window_bytes\": %d," w
  in
  Printf.sprintf
    "    {\"m\": %d, \"n\": %d, \"nb\": %d, \"engine\": %S, \"panel_width\": \
     %d, \"batch_split\": %S, \"kernel_tier\": %S,%s \"predicted_ns\": %s, \
     \"measured_ns\": %s, \"default_ns\": %s, \"roofline_frac\": %s}"
    e.m e.n e.nb
    (Tune_params.engine_to_string e.params.Tune_params.engine)
    e.params.Tune_params.panel_width
    (Tune_params.split_to_string e.params.Tune_params.batch_split)
    (Tune_params.tier_to_string e.params.Tune_params.kernel_tier)
    window (json_float e.predicted_ns) (json_float e.measured_ns)
    (json_float e.default_ns)
    (json_float e.roofline_frac)

let to_json t =
  Printf.sprintf
    "{\n\
    \  \"version\": 1,\n\
    \  \"fingerprint\": %S,\n\
    \  \"entries\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    t.fingerprint
    (String.concat ",\n" (List.map entry_json (entries t)))

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let int_field key j =
  match Xpose_obs.Json_lite.num_field key j with
  | Some v when Float.is_integer v -> Ok (int_of_float v)
  | _ -> Error (Printf.sprintf "tuning db: missing integer %S" key)

let str_field key j =
  match Xpose_obs.Json_lite.mem key j with
  | Some s -> (
      match Xpose_obs.Json_lite.str s with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "tuning db: %S is not a string" key))
  | None -> Error (Printf.sprintf "tuning db: missing string %S" key)

let float_field key j =
  match Xpose_obs.Json_lite.num_field key j with
  | Some v when Float.is_finite v -> Ok v
  | _ -> Error (Printf.sprintf "tuning db: missing number %S" key)

let entry_of_json j =
  let* m = int_field "m" j in
  let* n = int_field "n" j in
  let* nb = int_field "nb" j in
  let* engine_s = str_field "engine" j in
  let* engine =
    match Tune_params.engine_of_string engine_s with
    | Some e -> Ok e
    | None -> Error (Printf.sprintf "tuning db: unknown engine %S" engine_s)
  in
  let* panel_width = int_field "panel_width" j in
  let* split_s = str_field "batch_split" j in
  let* batch_split =
    match Tune_params.split_of_string split_s with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "tuning db: unknown split %S" split_s)
  in
  let window_bytes =
    match Xpose_obs.Json_lite.num_field "window_bytes" j with
    | Some v when Float.is_integer v && v > 0.0 -> Some (int_of_float v)
    | _ -> None
  in
  (* Optional for compatibility: DBs written before the kernel-tier axis
     load as scalar-tier entries. *)
  let* kernel_tier =
    match Xpose_obs.Json_lite.mem "kernel_tier" j with
    | None -> Ok Tune_params.Scalar
    | Some s -> (
        match Option.bind (Xpose_obs.Json_lite.str s) Tune_params.tier_of_string with
        | Some t -> Ok t
        | None -> Error "tuning db: unknown kernel_tier")
  in
  let* predicted_ns = float_field "predicted_ns" j in
  let* measured_ns = float_field "measured_ns" j in
  let* default_ns = float_field "default_ns" j in
  let* roofline_frac = float_field "roofline_frac" j in
  if m < 1 || n < 1 || nb < 1 || panel_width < 1 then
    Error "tuning db: non-positive shape field"
  else
    Ok
      {
        m;
        n;
        nb;
        params =
          {
            Tune_params.engine;
            panel_width;
            batch_split;
            window_bytes;
            kernel_tier;
          };
        predicted_ns;
        measured_ns;
        default_ns;
        roofline_frac;
      }

let of_json s =
  let* j =
    match Xpose_obs.Json_lite.parse s with
    | Ok j -> Ok j
    | Error m -> Error (Printf.sprintf "tuning db: %s" m)
  in
  let* version = int_field "version" j in
  if version <> 1 then
    Error (Printf.sprintf "tuning db: unsupported version %d" version)
  else
    let* fingerprint = str_field "fingerprint" j in
    let* items =
      match Xpose_obs.Json_lite.mem "entries" j with
      | Some e -> (
          match Xpose_obs.Json_lite.arr e with
          | Some l -> Ok l
          | None -> Error "tuning db: \"entries\" is not an array")
      | None -> Error "tuning db: missing \"entries\""
    in
    let t = create ~fingerprint in
    let rec fill = function
      | [] -> Ok t
      | item :: tl ->
          let* e = entry_of_json item in
          add t e;
          fill tl
    in
    fill items

type status = Fresh | Loaded | Invalidated

let load ~file ~fingerprint:fp =
  if not (Sys.file_exists file) then Ok (create ~fingerprint:fp, Fresh)
  else
    match open_in_bin file with
    | exception Sys_error m -> Error m
    | ic ->
        let s =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let* t = of_json s in
        (* A tuning entry is only meaningful under the calibration it
           was priced and measured against: a different fingerprint
           invalidates the whole DB rather than serving stale
           winners. *)
        if t.fingerprint = fp then Ok (t, Loaded)
        else Ok (create ~fingerprint:fp, Invalidated)

let save t ~file =
  let dir = Filename.dirname file in
  let tmp =
    Filename.temp_file ~temp_dir:dir
      ("." ^ Filename.basename file ^ ".")
      ".tmp"
  in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !ok then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (to_json t));
      (* Atomic on POSIX: readers see either the old DB or the new one,
         never a torn write. *)
      Sys.rename tmp file;
      ok := true)
