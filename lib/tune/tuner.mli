(** The tuning loop: model-guided pruning, budgeted measurement, DB
    persistence.

    Per shape: all candidates are priced with the calibrated cost
    model, {!Space.prune} keeps the [keep] cheapest (plus the default
    configuration), and the survivors are timed in model order until
    [budget_ms] of wall time is spent — the first candidate and the
    default are always timed, so even a zero budget yields a winner and
    its never-slower floor. The measured winner goes into the DB; a
    shape already in the DB performs {e zero} timing runs. *)

open Xpose_core

type outcome = {
  m : int;
  n : int;
  nb : int;
  db_hit : bool;  (** The shape came from the DB — nothing was timed. *)
  pruned : int;  (** Candidates discarded by the cost model. *)
  timed : int;  (** Timing runs actually performed. *)
  winner : Measure.sample;
  default_ns : float;
      (** Measured time of {!Tune_params.default} (the gate floor). *)
  samples : Measure.sample list;
      (** All timed candidates, fastest first (singleton on a DB
          hit). *)
}

val tune_shape :
  ?pool:Xpose_cpu.Pool.t ->
  cal:Xpose_obs.Calibrate.t ->
  rates:Pass_cost.rates ->
  db:Db.t ->
  space:Space.t ->
  budget_ms:float ->
  repeats:int ->
  keep:int ->
  m:int ->
  n:int ->
  nb:int ->
  unit ->
  outcome

val tune :
  ?pool:Xpose_cpu.Pool.t ->
  ?db_file:string ->
  cal:Xpose_obs.Calibrate.t ->
  db:Db.t ->
  space:Space.t ->
  budget_ms:float ->
  repeats:int ->
  keep:int ->
  (int * int * int) list ->
  outcome list
(** Tune every [(m, n, nb)] shape, saving the DB to [db_file] (atomic
    rename) after each newly tuned shape so interrupted runs keep their
    finished work. *)
