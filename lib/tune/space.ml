open Xpose_core

type t = {
  engines : Tune_params.engine list;
  widths : int list;
  splits : Tune_params.batch_split list;
  windows : int list;
  tiers : Tune_params.kernel_tier list;
}

let default_splits = Tune_params.[ Auto; Matrix_parallel; Panel_parallel ]

let make ?(engines = Tune_params.[ Kernels; Cache; Fused ])
    ?(widths = Tune_params.supported_widths) ?(splits = default_splits)
    ?(windows = []) ?(tiers = Tune_params.supported_tiers) () =
  if widths = [] then invalid_arg "Space.make: widths must be non-empty";
  if splits = [] then invalid_arg "Space.make: splits must be non-empty";
  if tiers = [] then invalid_arg "Space.make: tiers must be non-empty";
  { engines; widths; splits; windows; tiers }

let candidates t ~nb =
  (* A single matrix has no batch to split; only a real batch spreads
     the split axis. *)
  let splits = if nb > 1 then t.splits else [ Tune_params.Auto ] in
  let of_engine engine =
    match (engine : Tune_params.engine) with
    | Tune_params.Kernels ->
        (* The unrolled kernel sequence works element-at-a-time: no
           panel geometry, no split (batches fan matrices). *)
        [ { Tune_params.default with engine; batch_split = Tune_params.Auto } ]
    | Tune_params.Cache ->
        List.map
          (fun panel_width -> { Tune_params.default with engine; panel_width })
          t.widths
    | Tune_params.Fused ->
        (* The kernel-tier axis only exists under the fused panel loops;
           a tier's block must fit inside the panel (an 8-wide panel
           cannot host a 16x16 tile's amortization). *)
        List.concat_map
          (fun panel_width ->
            List.concat_map
              (fun batch_split ->
                List.filter_map
                  (fun kernel_tier ->
                    if Tune_params.tier_block kernel_tier > panel_width then
                      None
                    else
                      Some
                        {
                          Tune_params.default with
                          engine;
                          panel_width;
                          batch_split;
                          kernel_tier;
                        })
                  t.tiers)
              splits)
          t.widths
    | Tune_params.Ooc ->
        List.concat_map
          (fun panel_width ->
            List.map
              (fun w ->
                {
                  Tune_params.default with
                  engine;
                  panel_width;
                  window_bytes = Some w;
                })
              t.windows)
          [ Tune_params.default_panel_width ]
  in
  let cs = List.concat_map of_engine t.engines in
  (* The pre-tuner configuration is always a candidate: the tuner's
     floor is "never slower than what we shipped yesterday". *)
  if List.exists (Tune_params.equal Tune_params.default) cs then cs
  else Tune_params.default :: cs

(* -- model pricing -------------------------------------------------------- *)

(* Price one in-place transpose of the shape under a parameter choice,
   using the pass names the engines actually emit (so the traffic-class
   attribution matches the roofline layer) and the width-scaled rates
   of {!Pass_cost.rate_at_width}. The model is deliberately coarse — it
   exists to rank candidates for pruning, not to replace measurement. *)
let predict_ns ~(cal : Xpose_obs.Calibrate.t) ~(rates : Pass_cost.rates) ~m ~n
    (params : Tune_params.t) =
  let rm = max m n and rn = min m n in
  let p = Plan.Cache.get ~params ~m:rm ~n:rn () in
  let cw = cal.Xpose_obs.Calibrate.panel_width in
  (* Only the passes that actually run under the candidate's kernel
     tier (the fused panel loops) get the block discount; the row
     shuffle is tier-independent. Non-fused candidates carry the scalar
     tier, so [block = 1] and the discount is the identity. *)
  let block = Tune_params.tier_block params.Tune_params.kernel_tier in
  let price ?(block = 1) ~pass_name ~width touches =
    let kind = Xpose_obs.Roofline.kind_of_pass pass_name in
    Pass_cost.predicted_ns_at_tier rates ~kind ~calibrated_width:cw ~width
      ~block ~touches
  in
  let w = params.Tune_params.panel_width in
  let rotate_pre =
    if Plan.coprime p then 0.0
    else
      price ~block ~pass_name:"rotate_pre" ~width:w
        (Pass_cost.panel_rotate p ~width:w ~amount:(Plan.rotate_amount p))
  in
  let shuffle = price ~pass_name:"row_shuffle" ~width:w (Pass_cost.shuffle p) in
  match params.Tune_params.engine with
  | Tune_params.Fused ->
      rotate_pre +. shuffle
      +. price ~block ~pass_name:"fused_col" ~width:w (Pass_cost.fused_col p)
  | Tune_params.Cache ->
      rotate_pre +. shuffle
      +. price ~pass_name:"col_rotate" ~width:w
           (Pass_cost.rotate p ~amount:(fun j -> j))
      +. price ~pass_name:"row_permute" ~width:w (Pass_cost.permute_rows p)
  | Tune_params.Kernels ->
      (* Element-at-a-time column passes: priced at panel width 1, the
         narrowest (most expensive) strided geometry. *)
      let one = 1 in
      (if Plan.coprime p then 0.0
       else
         price ~pass_name:"rotate_pre" ~width:one
           (Pass_cost.panel_rotate p ~width:one
              ~amount:(Plan.rotate_amount p)))
      +. shuffle
      +. price ~pass_name:"col_shuffle" ~width:one (Pass_cost.fused_col p)
  | Tune_params.Ooc ->
      (* The windowed engine runs the fused passes plus a streaming
         staging sweep each way (the serving path stages jobs through a
         file), so in-RAM shapes price — and almost always measure —
         behind the fused engine. *)
      let staging =
        2.0
        *. Pass_cost.predicted_ns rates ~kind:Xpose_obs.Roofline.Stream
             ~touches:(2 * rm * rn)
      in
      rotate_pre +. shuffle
      +. price ~pass_name:"fused_col" ~width:w (Pass_cost.fused_col p)
      +. staging

type priced = { params : Tune_params.t; predicted_ns : float }

let price ~cal ~rates ~m ~n cs =
  List.map (fun params -> { params; predicted_ns = predict_ns ~cal ~rates ~m ~n params }) cs
  |> List.stable_sort (fun a b -> Float.compare a.predicted_ns b.predicted_ns)

let prune ~keep priced =
  if keep < 1 then invalid_arg "Space.prune: keep must be >= 1";
  let rec take k = function
    | [] -> []
    | x :: tl -> if k = 0 then [] else x :: take (k - 1) tl
  in
  let kept = take keep priced in
  (* The default configuration survives every prune: the measured floor
     must always be in the timed set. *)
  if
    List.exists
      (fun c -> Tune_params.equal c.params Tune_params.default)
      kept
  then kept
  else
    kept
    @ List.filter
        (fun c -> Tune_params.equal c.params Tune_params.default)
        priced
