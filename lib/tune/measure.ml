open Xpose_core
module S = Storage.Float64
module FF = Xpose_cpu.Fused_f64
module CA = Xpose_cpu.Cache_aware.Make (Storage.Float64)

type sample = {
  params : Tune_params.t;
  predicted_ns : float;
  measured_ns : float;
  roofline_frac : float;
}

(* One forward-and-back roundtrip leaves the buffer exactly as it was,
   so repeats need no re-fill and the oracle check is free: any engine
   bug shows up as a non-identity. Halving the roundtrip gives the
   per-transpose time. *)

let roundtrip_single ?pool ~m ~n (params : Tune_params.t) buf =
  let rm = max m n and rn = min m n in
  let p () = Plan.Cache.get ~params ~m:rm ~n:rn () in
  match params.Tune_params.engine with
  | Tune_params.Kernels ->
      Kernels_f64.transpose ~m ~n buf;
      Kernels_f64.transpose ~m:n ~n:m buf
  | Tune_params.Cache ->
      let p = p () in
      let tmp = S.create (Plan.scratch_elements p) in
      let width = params.Tune_params.panel_width in
      CA.c2r ~width p buf ~tmp;
      CA.r2c ~width p buf ~tmp
  | Tune_params.Fused -> (
      let p = p () in
      let panel_width = params.Tune_params.panel_width in
      let tier = params.Tune_params.kernel_tier in
      match pool with
      | Some pool when Xpose_cpu.Pool.workers pool > 1 ->
          FF.c2r_pool ~panel_width ~tier pool p buf;
          FF.r2c_pool ~panel_width ~tier pool p buf
      | _ ->
          FF.c2r ~panel_width ~tier p buf;
          FF.r2c ~panel_width ~tier p buf)
  | Tune_params.Ooc ->
      (* The serving path stages out-of-core jobs through a file, so an
         honest ooc measurement pays the staging streams too. *)
      let window_bytes =
        match params.Tune_params.window_bytes with
        | Some w -> w
        | None -> Xpose_ooc.Ooc_f64.default_window_bytes
      in
      let path = Filename.temp_file "xpose_tune" ".mat" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Xpose_mmap.File_matrix.create ~path ~elements:(m * n);
          Xpose_mmap.File_matrix.with_map ~path (fun fbuf ->
              S.blit buf 0 fbuf 0 (m * n));
          (match pool with
          | Some pool ->
              Xpose_ooc.Ooc_f64.transpose_file ~pool ~window_bytes ~path ~m ~n
                ();
              Xpose_ooc.Ooc_f64.transpose_file ~pool ~window_bytes ~path ~m:n
                ~n:m ()
          | None ->
              Xpose_ooc.Ooc_f64.transpose_file ~window_bytes ~path ~m ~n ();
              Xpose_ooc.Ooc_f64.transpose_file ~window_bytes ~path ~m:n ~n:m ());
          Xpose_mmap.File_matrix.with_map ~path (fun fbuf ->
              S.blit fbuf 0 buf 0 (m * n)))

let roundtrip_batch ~pool ~m ~n (params : Tune_params.t) bufs =
  match params.Tune_params.engine with
  | Tune_params.Fused ->
      let split = params.Tune_params.batch_split in
      let panel_width = params.Tune_params.panel_width in
      let tier = params.Tune_params.kernel_tier in
      FF.transpose_batch ~split ~panel_width ~tier pool ~m ~n bufs;
      FF.transpose_batch ~split ~panel_width ~tier pool ~m:n ~n:m bufs
  | Tune_params.Kernels | Tune_params.Cache | Tune_params.Ooc ->
      Array.iter (fun buf -> roundtrip_single ~pool ~m ~n params buf) bufs

let verify_identity ~what ~m ~n buf =
  let len = m * n in
  let ok = ref true in
  for l = 0 to len - 1 do
    if S.get buf l <> float_of_int l then ok := false
  done;
  if not !ok then
    invalid_arg
      (Printf.sprintf
         "Measure: %s corrupted the %dx%d roundtrip (engine bug)" what m n)

let measure ?pool ?(nb = 1) ~repeats ~m ~n (params : Tune_params.t) =
  if repeats < 1 then invalid_arg "Measure.measure: repeats must be >= 1";
  if m < 1 || n < 1 || nb < 1 then
    invalid_arg "Measure.measure: m, n and nb must be >= 1";
  let what = Tune_params.to_string params in
  Xpose_obs.Tracer.with_span ~cat:"tune"
    ~args:(fun () -> [ ("params", Xpose_obs.Tracer.Str what) ])
    "tune.measure"
    (fun () ->
      let best = ref infinity in
      if nb = 1 then begin
        let buf = S.create (m * n) in
        Storage.fill_iota (module S) buf;
        for _ = 1 to repeats do
          let t0 = Xpose_obs.Clock.now_ns () in
          roundtrip_single ?pool ~m ~n params buf;
          let dt = Xpose_obs.Clock.now_ns () -. t0 in
          if dt < !best then best := dt
        done;
        verify_identity ~what ~m ~n buf
      end
      else begin
        let pool =
          match pool with Some p -> p | None -> Xpose_cpu.Pool.sequential
        in
        let bufs =
          Array.init nb (fun _ ->
              let b = S.create (m * n) in
              Storage.fill_iota (module S) b;
              b)
        in
        for _ = 1 to repeats do
          let t0 = Xpose_obs.Clock.now_ns () in
          roundtrip_batch ~pool ~m ~n params bufs;
          let dt = Xpose_obs.Clock.now_ns () -. t0 in
          if dt < !best then best := dt
        done;
        Array.iter (verify_identity ~what ~m ~n) bufs
      end;
      (* Per-transpose time: half a roundtrip, averaged over the batch. *)
      !best /. (2.0 *. float_of_int nb))

let roofline_frac (cal : Xpose_obs.Calibrate.t) ~m ~n ~ns =
  (* One ideal transpose moves every element once each way. *)
  let bytes = float_of_int (2 * m * n * 8) in
  Xpose_obs.Roofline.fraction cal Xpose_obs.Roofline.Stream ~bytes ~dur_ns:ns

let sample ?pool ?nb ~cal ~repeats ~m ~n (priced : Space.priced) =
  let measured_ns = measure ?pool ?nb ~repeats ~m ~n priced.Space.params in
  {
    params = priced.Space.params;
    predicted_ns = priced.Space.predicted_ns;
    measured_ns;
    roofline_frac = roofline_frac cal ~m ~n ~ns:measured_ns;
  }
