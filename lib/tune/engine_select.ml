open Xpose_core
module S = Storage.Float64
module FF = Xpose_cpu.Fused_f64
module CA = Xpose_cpu.Cache_aware.Make (Storage.Float64)

type t = {
  db : Db.t;
  cache : Plan.Cache.t;
  mutable hits : int;
  mutable misses : int;
  mutex : Mutex.t;
}

let m_hits = lazy (Xpose_obs.Metrics.counter "tune_db.hits")
let m_misses = lazy (Xpose_obs.Metrics.counter "tune_db.misses")

let create ?db ?(cache = Plan.Cache.default) () =
  let db = match db with Some db -> db | None -> Db.create ~fingerprint:"" in
  { db; cache; hits = 0; misses = 0; mutex = Mutex.create () }

let db t = t.db

let bump t hit =
  Mutex.lock t.mutex;
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  Mutex.unlock t.mutex;
  Xpose_obs.Metrics.incr (Lazy.force (if hit then m_hits else m_misses))

let hits t =
  Mutex.lock t.mutex;
  let v = t.hits in
  Mutex.unlock t.mutex;
  v

let misses t =
  Mutex.lock t.mutex;
  let v = t.misses in
  Mutex.unlock t.mutex;
  v

(* The DB is keyed on the shape as tuned; a transposed request
   ([n x m] of a tuned [m x n]) runs the same passes on the same plan,
   so it shares the entry. *)
let params_for t ~m ~n =
  match Db.find t.db ~m ~n with
  | Some e ->
      bump t true;
      e.Db.params
  | None -> (
      match Db.find t.db ~m:n ~n:m with
      | Some e ->
          bump t true;
          e.Db.params
      | None ->
          bump t false;
          Tune_params.default)

let window_bytes_for t ~m ~n ~default =
  match params_for t ~m ~n with
  | { Tune_params.window_bytes = Some w; _ } -> min w default
  | _ -> default

let plan_for t ~params ~m ~n =
  let rm = max m n and rn = min m n in
  (m > n, Plan.Cache.get ~cache:t.cache ~params ~m:rm ~n:rn ())

let ooc_via_file ?pool ~window_bytes ~m ~n buf =
  let path = Filename.temp_file "xpose_dispatch" ".mat" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Xpose_mmap.File_matrix.create ~path ~elements:(m * n);
      Xpose_mmap.File_matrix.with_map ~path (fun fbuf ->
          S.blit buf 0 fbuf 0 (m * n));
      Xpose_ooc.Ooc_f64.transpose_file ?pool ~window_bytes ~path ~m ~n ();
      Xpose_mmap.File_matrix.with_map ~path (fun fbuf ->
          S.blit fbuf 0 buf 0 (m * n)))

let run ?pool t ~(params : Tune_params.t) ~m ~n buf =
  match params.Tune_params.engine with
  | Tune_params.Kernels -> Kernels_f64.transpose ~m ~n buf
  | Tune_params.Cache ->
      let c2r_side, p = plan_for t ~params ~m ~n in
      let tmp = S.create (Plan.scratch_elements p) in
      let width = params.Tune_params.panel_width in
      if c2r_side then CA.c2r ~width p buf ~tmp else CA.r2c ~width p buf ~tmp
  | Tune_params.Fused -> (
      let c2r_side, p = plan_for t ~params ~m ~n in
      let panel_width = params.Tune_params.panel_width in
      let tier = params.Tune_params.kernel_tier in
      match pool with
      | Some pool when Xpose_cpu.Pool.workers pool > 1 ->
          if c2r_side then FF.c2r_pool ~panel_width ~tier pool p buf
          else FF.r2c_pool ~panel_width ~tier pool p buf
      | _ ->
          if c2r_side then FF.c2r ~panel_width ~tier p buf
          else FF.r2c ~panel_width ~tier p buf)
  | Tune_params.Ooc ->
      let window_bytes =
        match params.Tune_params.window_bytes with
        | Some w -> w
        | None -> Xpose_ooc.Ooc_f64.default_window_bytes
      in
      ooc_via_file ?pool ~window_bytes ~m ~n buf

let dispatch ?pool t ~m ~n buf =
  if m < 1 || n < 1 then invalid_arg "Engine_select.dispatch: bad shape";
  if S.length buf <> m * n then
    invalid_arg "Engine_select.dispatch: buffer size does not match shape";
  let params = params_for t ~m ~n in
  run ?pool t ~params ~m ~n buf

let dispatch_batch t pool ~m ~n bufs =
  if m < 1 || n < 1 then
    invalid_arg "Engine_select.dispatch_batch: bad shape";
  if Array.length bufs = 0 then ()
  else begin
    let params = params_for t ~m ~n in
    match params.Tune_params.engine with
    | Tune_params.Fused ->
        FF.transpose_batch ~split:params.Tune_params.batch_split
          ~panel_width:params.Tune_params.panel_width
          ~tier:params.Tune_params.kernel_tier ~cache:t.cache pool ~m ~n bufs
    | Tune_params.Kernels | Tune_params.Cache | Tune_params.Ooc ->
        Array.iter (fun buf -> run ~pool t ~params ~m ~n buf) bufs
  end
