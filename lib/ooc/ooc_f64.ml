open Xpose_core
module Ws = Workspace.F64
module FF = Xpose_cpu.Fused_f64
module Pool = Xpose_cpu.Pool
module FM = Xpose_mmap.File_matrix

type buf = Storage.Float64.t

let default_window_bytes = 64 * 1024 * 1024

(* Registered on first use so linking the library does not grow the
   metrics dump of runs that never go out of core. *)
let m_windows = lazy (Xpose_obs.Metrics.counter "ooc.windows")
let m_bytes = lazy (Xpose_obs.Metrics.counter "ooc.bytes_mapped")
let m_hits = lazy (Xpose_obs.Metrics.counter "ooc.prefetch_hits")
let m_waits = lazy (Xpose_obs.Metrics.counter "ooc.prefetch_waits")
let g_peak = lazy (Xpose_obs.Metrics.gauge "ooc.window_peak_bytes")

(* -- residency ledger ------------------------------------------------------

   Logical residency: bytes of mappings and stagings currently live, the
   high-water mark published as the [ooc.window_peak_bytes] gauge. The
   compute domain and the I/O domain both map and release, hence the
   atomics. *)

type ledger = { cur : int Atomic.t; peak : int Atomic.t }

let ledger () = { cur = Atomic.make 0; peak = Atomic.make 0 }

let resident led bytes =
  let now = Atomic.fetch_and_add led.cur bytes + bytes in
  let rec bump () =
    let p = Atomic.get led.peak in
    if now > p && not (Atomic.compare_and_set led.peak p now) then bump ()
  in
  bump ();
  let g = Lazy.force g_peak in
  let p = float_of_int (Atomic.get led.peak) in
  if p > Xpose_obs.Metrics.gauge_value g then Xpose_obs.Metrics.set_gauge g p

let released led bytes = ignore (Atomic.fetch_and_add led.cur (-bytes))

let map_counted led ?(write = true) fd ~pos ~len =
  Xpose_obs.Metrics.incr (Lazy.force m_windows);
  Xpose_obs.Metrics.incr ~by:(len * 8) (Lazy.force m_bytes);
  resident led (len * 8);
  FM.map_range ~write fd ~pos ~len

let unmap_counted led ~len = released led (len * 8)

let count_await job =
  if Io_domain.await job then Xpose_obs.Metrics.incr (Lazy.force m_hits)
  else Xpose_obs.Metrics.incr (Lazy.force m_waits)

(* Touch one element per page so the prefetching domain takes the page
   faults, not the pool workers. 512 float64s = one 4 KiB page. *)
let page_elems = 512

let prefault (a : buf) =
  let acc = ref 0.0 in
  let len = Bigarray.Array1.dim a in
  let i = ref 0 in
  while !i < len do
    acc := !acc +. Bigarray.Array1.unsafe_get a !i;
    i := !i + page_elems
  done;
  ignore (Sys.opaque_identity !acc)

let span_window ~rows ~cols ~pred f =
  Xpose_obs.Tracer.with_span ~cat:"ooc"
    ~args:(fun () ->
      [
        ("rows", Xpose_obs.Tracer.Int rows);
        ("cols", Xpose_obs.Tracer.Int cols);
        ("pred_touches", Xpose_obs.Tracer.Int pred);
      ])
    "ooc.window" f

(* -- row phases ------------------------------------------------------------

   [Plan.d'] / [Plan.d'_inv] take the global row index, so a shuffle of
   rows [lo, hi) only ever reads and writes inside its own window; the
   window base [row0] converts global rows to window offsets. This is
   the one pass the fused engine's primitives cannot run on a window
   (their row index doubles as the buffer offset), hence the local
   loop. *)

let shuffle_rows (p : Plan.t) (win : buf) ~row0 ~(tmp : buf) ~ungather ~lo ~hi =
  let n = p.n in
  for i = lo to hi - 1 do
    let base = (i - row0) * n in
    if ungather then
      for j = 0 to n - 1 do
        Bigarray.Array1.unsafe_set tmp j
          (Bigarray.Array1.unsafe_get win (base + Plan.d' p ~i j))
      done
    else
      for j = 0 to n - 1 do
        Bigarray.Array1.unsafe_set tmp j
          (Bigarray.Array1.unsafe_get win (base + Plan.d'_inv p ~i j))
      done;
    for j = 0 to n - 1 do
      Bigarray.Array1.unsafe_set win (base + j) (Bigarray.Array1.unsafe_get tmp j)
    done
  done

let row_pass ~led ~io ~pool ~wss ~budget (p : Plan.t) fd ~name ~ungather =
  let scratch = Plan.scratch_elements p in
  Xpose_obs.Tracer.pass ~name ~rows:p.m ~cols:p.n
    ~pred_touches:(Pass_cost.shuffle p) ~scratch_elems:scratch
  @@ fun () ->
  let per = Window.row_rows ~budget_elems:budget ~n:p.n in
  let windows = Array.of_list (Window.split ~total:p.m ~per) in
  let k_max = Array.length windows in
  let slots : buf option array = Array.make k_max None in
  let map_window k =
    let w = windows.(k) in
    let a =
      map_counted led fd ~pos:(w.Window.lo * p.n)
        ~len:((w.Window.hi - w.Window.lo) * p.n)
    in
    prefault a;
    slots.(k) <- Some a
  in
  let release k =
    let w = windows.(k) in
    slots.(k) <- None;
    unmap_counted led ~len:((w.Window.hi - w.Window.lo) * p.n)
  in
  let compute k =
    let w = windows.(k) in
    let win = Option.get slots.(k) in
    let rows = w.Window.hi - w.Window.lo in
    span_window ~rows ~cols:p.n ~pred:(Pass_cost.ooc_row_window p ~rows)
      (fun () ->
        Pool.parallel_chunks pool ~lo:w.Window.lo ~hi:w.Window.hi
          (fun ~chunk ~lo ~hi ->
            if lo < hi then
              shuffle_rows p win ~row0:w.Window.lo
                ~tmp:(Ws.tmp wss.(chunk) scratch)
                ~ungather ~lo ~hi))
  in
  match io with
  | None ->
      for k = 0 to k_max - 1 do
        map_window k;
        compute k;
        release k
      done
  | Some io ->
      let job = ref (Io_domain.async io (fun () -> map_window 0)) in
      for k = 0 to k_max - 1 do
        count_await !job;
        if k + 1 < k_max then
          job := Io_domain.async io (fun () -> map_window (k + 1));
        compute k;
        release k
      done

(* -- column phases ---------------------------------------------------------

   The stride-[n] passes run on a contiguous [m x w] staging per column
   panel, filled and drained through bounded row stripes. [visit] gets a
   local plan whose pitch is the panel width and the panel's global
   column base, so rotation amounts are taken at global indices while
   the fused primitives index the staging. *)

let gather_panel ~led ~s_per (p : Plan.t) fd (pan : Window.t) (stag : buf) =
  let w = pan.Window.hi - pan.Window.lo in
  List.iter
    (fun (st : Window.t) ->
      let len = (st.Window.hi - st.Window.lo) * p.n in
      let win = map_counted led ~write:false fd ~pos:(st.Window.lo * p.n) ~len in
      for i = st.Window.lo to st.Window.hi - 1 do
        let src = ((i - st.Window.lo) * p.n) + pan.Window.lo in
        let dst = i * w in
        for jj = 0 to w - 1 do
          Bigarray.Array1.unsafe_set stag (dst + jj)
            (Bigarray.Array1.unsafe_get win (src + jj))
        done
      done;
      unmap_counted led ~len)
    (Window.split ~total:p.m ~per:s_per)

let scatter_panel ~led ~s_per (p : Plan.t) fd (pan : Window.t) (stag : buf) =
  let w = pan.Window.hi - pan.Window.lo in
  List.iter
    (fun (st : Window.t) ->
      let len = (st.Window.hi - st.Window.lo) * p.n in
      let win = map_counted led fd ~pos:(st.Window.lo * p.n) ~len in
      for i = st.Window.lo to st.Window.hi - 1 do
        let src = i * w in
        let dst = ((i - st.Window.lo) * p.n) + pan.Window.lo in
        for jj = 0 to w - 1 do
          Bigarray.Array1.unsafe_set win (dst + jj)
            (Bigarray.Array1.unsafe_get stag (src + jj))
        done
      done;
      unmap_counted led ~len)
    (Window.split ~total:p.m ~per:s_per)

let col_pass ~led ~io ~pool ~wss ~budget (p : Plan.t) fd ~name ~pred visit =
  Xpose_obs.Tracer.pass ~name ~rows:p.m ~cols:p.n ~pred_touches:pred
    ~scratch_elems:(Plan.scratch_elements p)
  @@ fun () ->
  let w_per = Window.panel_cols ~budget_elems:budget ~m:p.m in
  let s_per = Window.stripe_rows ~budget_elems:budget ~n:p.n in
  let panels = Array.of_list (Window.split ~total:p.n ~per:w_per) in
  let k_max = Array.length panels in
  let w_max = min w_per p.n in
  let stag_bytes = p.m * w_max * 8 in
  let make_staging () =
    resident led stag_bytes;
    Storage.Float64.create (p.m * w_max)
  in
  let gather = gather_panel ~led ~s_per p fd
  and scatter = scatter_panel ~led ~s_per p fd in
  let compute (pan : Window.t) stag =
    let w = pan.Window.hi - pan.Window.lo in
    span_window ~rows:p.m ~cols:w ~pred:(Pass_cost.ooc_panel_window p ~width:w)
      (fun () ->
        let p_loc = Plan.make ~m:p.m ~n:w in
        Pool.parallel_chunks pool ~lo:0 ~hi:w (fun ~chunk ~lo ~hi ->
            if lo < hi then
              visit ~p_loc ~glo:pan.Window.lo ~ws:wss.(chunk) ~lo ~hi stag))
  in
  match io with
  | None ->
      let stag = make_staging () in
      Array.iter
        (fun pan ->
          gather pan stag;
          compute pan stag;
          scatter pan stag)
        panels;
      released led stag_bytes
  | Some io ->
      (* Two stagings, even panels in [a], odd in [b]. The I/O domain
         runs jobs in order, so job [k+1] scatters panel [k-1] (same
         staging parity as [k+1]) before gathering panel [k+1] into it,
         while the pool computes panel [k] on the other staging. *)
      let a = make_staging () and b = make_staging () in
      let stag k = if k land 1 = 0 then a else b in
      let job = ref (Io_domain.async io (fun () -> gather panels.(0) (stag 0))) in
      for k = 0 to k_max - 1 do
        count_await !job;
        job :=
          Io_domain.async io (fun () ->
              if k >= 1 then scatter panels.(k - 1) (stag (k - 1));
              if k + 1 < k_max then gather panels.(k + 1) (stag (k + 1)));
        compute panels.(k) (stag k)
      done;
      ignore (Io_domain.await !job);
      scatter panels.(k_max - 1) (stag (k_max - 1));
      released led stag_bytes;
      released led stag_bytes

(* -- the engine ------------------------------------------------------------ *)

let transpose_file ?(order = Layout.Row_major) ?(pool = Pool.sequential)
    ?(window_bytes = default_window_bytes) ?(prefetch = true) ?cache ~path ~m
    ~n () =
  if m < 1 || n < 1 then
    invalid_arg "Ooc_f64.transpose_file: dimensions must be positive";
  if window_bytes < 8 then
    invalid_arg "Ooc_f64.transpose_file: window_bytes must be at least 8";
  let rm, rn =
    match order with Layout.Row_major -> (m, n) | Layout.Col_major -> (n, m)
  in
  (* Same §5.2 routing as the in-RAM engines: more rows than columns
     favours C2R; either way the plan satisfies [p.m >= p.n]. *)
  let c2r_side = rm > rn in
  let p =
    if c2r_side then Plan.Cache.get ?cache ~m:rm ~n:rn ()
    else Plan.Cache.get ?cache ~m:rn ~n:rm ()
  in
  FM.with_fd ~path @@ fun fd ->
  let bytes = (Unix.fstat fd).Unix.st_size in
  if bytes <> p.m * p.n * 8 then
    invalid_arg "Ooc_f64.transpose_file: file does not hold m*n elements";
  let led = ledger () in
  let budget = Window.budget_elems ~window_bytes in
  let total = p.m * p.n in
  if total <= budget then begin
    (* Fits in one window: map the whole file and run the fused pool
       engine on it. *)
    let buf = map_counted led fd ~pos:0 ~len:total in
    span_window ~rows:p.m ~cols:p.n ~pred:(Pass_cost.ooc_row_window p ~rows:p.m)
      (fun () -> if c2r_side then FF.c2r_pool pool p buf else FF.r2c_pool pool p buf);
    unmap_counted led ~len:total
  end
  else if p.m = 1 || p.n = 1 then
    (* A degenerate matrix is its own transpose: no pass runs, nothing
       needs mapping. *)
    ()
  else begin
    let lanes = Pool.workers pool in
    let wss = Array.init lanes (fun _ -> Ws.create ()) in
    let with_io f =
      if prefetch then Io_domain.with_io (fun io -> f (Some io)) else f None
    in
    with_io @@ fun io ->
    let row_pass = row_pass ~led ~io ~pool ~wss ~budget p fd in
    let col_pass = col_pass ~led ~io ~pool ~wss ~budget p fd in
    let rotate ~sign ~p_loc ~glo ~ws ~lo ~hi stag =
      FF.rotate_columns ~ws ~lo ~hi p_loc stag ~amount:(fun jj ->
          sign * Plan.rotate_amount p (glo + jj))
    in
    if c2r_side then begin
      if not (Plan.coprime p) then
        col_pass ~name:"ooc.rotate_pre"
          ~pred:(Pass_cost.panel_rotate p ~width:(Window.panel_cols ~budget_elems:budget ~m:p.m)
                   ~amount:(Plan.rotate_amount p))
          (fun ~p_loc ~glo ~ws ~lo ~hi stag ->
            rotate ~sign:1 ~p_loc ~glo ~ws ~lo ~hi stag);
      row_pass ~name:"ooc.row_shuffle" ~ungather:false;
      let cycles = FF.cycles ~m:p.m ~index:(Plan.q p) in
      col_pass ~name:"ooc.fused_col" ~pred:(Pass_cost.fused_col p)
        (fun ~p_loc ~glo ~ws ~lo ~hi stag ->
          FF.rotate_columns ~ws ~lo ~hi p_loc stag ~amount:(fun jj -> glo + jj);
          FF.permute_cols ~ws ~lo ~hi p_loc stag ~cycles)
    end
    else begin
      let cycles = FF.cycles ~m:p.m ~index:(Plan.q_inv p) in
      col_pass ~name:"ooc.fused_col" ~pred:(Pass_cost.fused_col p)
        (fun ~p_loc ~glo ~ws ~lo ~hi stag ->
          FF.permute_cols ~ws ~lo ~hi p_loc stag ~cycles;
          FF.rotate_columns ~ws ~lo ~hi p_loc stag ~amount:(fun jj ->
              -(glo + jj)));
      row_pass ~name:"ooc.row_unshuffle" ~ungather:true;
      if not (Plan.coprime p) then
        col_pass ~name:"ooc.rotate_post"
          ~pred:(Pass_cost.panel_rotate p ~width:(Window.panel_cols ~budget_elems:budget ~m:p.m)
                   ~amount:(Plan.rotate_amount p))
          (fun ~p_loc ~glo ~ws ~lo ~hi stag ->
            rotate ~sign:(-1) ~p_loc ~glo ~ws ~lo ~hi stag)
    end
  end
