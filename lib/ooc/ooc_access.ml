(* Symbolic access summaries of the out-of-core passes (Ooc_f64): the
   row-shuffle over a mapped row window and the panel gather/scatter
   between a stripe window and the staging buffer. The window geometry
   is fully parametric -- window bounds, pool sub-ranges, and panel
   budgets are parameters with their defining inequalities -- so one
   certificate covers every --window-bytes budget and every Window.split
   outcome at once. The column-phase compute on the staging buffer runs
   the fused panel primitives under a local m x w plan, which the
   (shape-universal) fused and kernel certificates already cover. *)

open Xpose_core.Access

let m = var "m"
let n = var "n"

(* Ooc_f64.shuffle_rows on one pool chunk [lo, hi) of a mapped row
   window [win_lo, win_hi): the window buffer holds rows win_lo..win_hi
   of the matrix, indexed relative to win_lo; the row map uses the
   global row index i. *)
let shuffle_rows ~ungather =
  let d ~i j = if ungather then Ix.d' ~i j else Ix.d'_inv ~i j in
  {
    pass =
      (if ungather then "ooc.row_unshuffle" else "ooc.row_shuffle");
    basis = Plan_basis;
    params =
      [
        {
          name = "win_hi";
          p_lo = Const 1;
          p_his = [ m ];
          sample = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ];
        };
        {
          name = "win_lo";
          p_lo = Const 0;
          p_his = [ var "win_hi" -: num 1 ];
          sample = [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ];
        };
        {
          name = "hi";
          p_lo = Const 0;
          p_his = [ var "win_hi" ];
          sample = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ];
        };
        {
          name = "lo";
          p_lo = var "win_lo";
          p_his = [ var "hi" ];
          sample = [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ];
        };
      ];
    regions =
      [
        { rname = "win"; size = (var "win_hi" -: var "win_lo") *: n };
        { rname = "tmp"; size = Max (m, n) };
      ];
    body =
      [
        for_ "i" (var "lo") (var "hi")
          [
            bind "base"
              ((var "i" -: var "win_lo") *: n)
              [
                for_ "j" (num 0) n
                  [
                    read "win" (var "base" +: d ~i:(var "i") (var "j"));
                    write "tmp" (var "j");
                  ];
                for_ "j2" (num 0) n
                  [
                    read "tmp" (var "j2");
                    write "win" (var "base" +: var "j2");
                  ];
              ];
          ];
      ];
    exact = true;
  }

(* Panel staging: one stripe window [s_lo, s_hi) of rows is mapped; the
   column panel [pan_lo, pan_hi) (clipped to the per-panel budget [per]
   and to n) is copied between the stripe and the staging buffer, which
   is indexed by the global row: stag[i*w + jj] with w = pan_hi - pan_lo
   and capacity m * min(per, n). *)
let panel_params =
  [
    { name = "per"; p_lo = Const 1; p_his = []; sample = [ 1; 2; 3; 5 ] };
    {
      name = "s_hi";
      p_lo = Const 0;
      p_his = [ m ];
      sample = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ];
    };
    {
      name = "s_lo";
      p_lo = Const 0;
      p_his = [ var "s_hi" ];
      sample = [ 0; 1; 2; 3; 4; 5; 6 ];
    };
    {
      name = "pan_lo";
      p_lo = Const 0;
      p_his = [ n -: num 1 ];
      sample = [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ];
    };
    {
      name = "pan_hi";
      p_lo = var "pan_lo" +: num 1;
      p_his = [ n; var "pan_lo" +: var "per" ];
      sample = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ];
    };
  ]

let panel_regions =
  [
    { rname = "win"; size = (var "s_hi" -: var "s_lo") *: n };
    { rname = "stag"; size = m *: Min (var "per", n) };
  ]

let stripe_body ~gather =
  let width = var "pan_hi" -: var "pan_lo" in
  let win_ix = ((var "i" -: var "s_lo") *: n) +: var "pan_lo" +: var "jj"
  and stag_ix = (var "i" *: width) +: var "jj" in
  [
    for_ "i" (var "s_lo") (var "s_hi")
      [
        for_ "jj" (num 0) width
          (if gather then [ read "win" win_ix; write "stag" stag_ix ]
           else [ read "stag" stag_ix; write "win" win_ix ]);
      ];
  ]

let gather_panel =
  {
    pass = "ooc.gather_panel";
    basis = Free_basis;
    params = panel_params;
    regions = panel_regions;
    body = stripe_body ~gather:true;
    exact = true;
  }

let scatter_panel =
  {
    pass = "ooc.scatter_panel";
    basis = Free_basis;
    params = panel_params;
    regions = panel_regions;
    body = stripe_body ~gather:false;
    exact = true;
  }

let all = [ shuffle_rows ~ungather:false; shuffle_rows ~ungather:true;
            gather_panel; scatter_panel ]
