type state = Pending | Done | Cancelled | Failed of exn * Printexc.raw_backtrace

exception Cancelled_job

(* Jobs share the domain's mutex/condition: completion is published and
   awaited under [mu], giving the happens-before edge the engine relies
   on to read buffers the job filled. *)
type t = {
  mu : Mutex.t;
  cv : Condition.t;
  queue : ((unit -> unit) * job) Queue.t;
  mutable stop : bool;
  mutable domain : unit Domain.t option;
}

and job = { owner : t; mutable st : state }

let worker t () =
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.cv t.mu
    done;
    (* Drain remaining jobs even after [stop]: an awaiter must never
       block on a job that was accepted but not run. (A cancelling stop
       empties the queue itself before setting [stop], so nothing is
       left to drain on that path.) *)
    if Queue.is_empty t.queue then Mutex.unlock t.mu
    else begin
      let fn, job = Queue.pop t.queue in
      Mutex.unlock t.mu;
      let st =
        match fn () with
        | () -> Done
        | exception e -> Failed (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.mu;
      job.st <- st;
      Condition.broadcast t.cv;
      Mutex.unlock t.mu;
      loop ()
    end
  in
  loop ()

let create () =
  let t =
    {
      mu = Mutex.create ();
      cv = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domain = None;
    }
  in
  t.domain <- Some (Domain.spawn (worker t));
  t

let async t fn =
  Mutex.lock t.mu;
  if t.stop then begin
    Mutex.unlock t.mu;
    invalid_arg "Io_domain.async: domain was shut down"
  end;
  let job = { owner = t; st = Pending } in
  Queue.push (fn, job) t.queue;
  Condition.signal t.cv;
  Mutex.unlock t.mu;
  job

let await job =
  let t = job.owner in
  Mutex.lock t.mu;
  let was_done = job.st <> Pending in
  while job.st = Pending do
    Condition.wait t.cv t.mu
  done;
  let st = job.st in
  Mutex.unlock t.mu;
  match st with
  | Done -> was_done
  | Pending -> assert false
  | Cancelled -> raise Cancelled_job
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt

let stop ?(drain = true) t =
  Mutex.lock t.mu;
  if not drain then begin
    (* Cancel everything still queued; the job the worker is executing
       right now (if any) runs to completion either way. Awaiters of a
       cancelled job are woken and raise [Cancelled_job]. *)
    Queue.iter (fun (_, job) -> job.st <- Cancelled) t.queue;
    Queue.clear t.queue
  end;
  t.stop <- true;
  Condition.broadcast t.cv;
  let d = t.domain in
  t.domain <- None;
  Mutex.unlock t.mu;
  match d with None -> () | Some d -> Domain.join d

let shutdown t = stop ~drain:true t

let with_io f =
  let t = create () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
