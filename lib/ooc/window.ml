type t = { lo : int; hi : int }

type splitter = total:int -> per:int -> t list

let split ~total ~per =
  if total < 0 then invalid_arg "Window.split: total must be non-negative";
  let per = max 1 per in
  let rec go lo acc =
    if lo >= total then List.rev acc
    else
      let hi = min total (lo + per) in
      go hi ({ lo; hi } :: acc)
  in
  go 0 []

(* Every window but the last claims one extra trailing unit: the classic
   inclusive-[hi] windowing bug, seeded so the race analyzer's detection
   of overlapping windows stays tested. *)
let overlapping_split ~total ~per =
  List.map
    (fun w -> if w.hi < total then { w with hi = w.hi + 1 } else w)
    (split ~total ~per)

let budget_elems ~window_bytes = max 1 (window_bytes / 8)

let row_rows ~budget_elems ~n = max 1 (budget_elems / (2 * n))

let stripe_rows ~budget_elems ~n = max 1 (budget_elems / (4 * n))

let panel_cols ~budget_elems ~m = max 1 (budget_elems / (4 * m))
