(** Windowed out-of-core float64 transposition with bounded residency.

    The same decomposition as {!Xpose_cpu.Fused_f64} — pre-rotation (when
    [gcd(m,n) > 1]), row shuffle, fused column phase, or the inverse
    sequence — restructured so that at any moment only [~window_bytes]
    of the backing file is logically mapped:

    - the {e row phases} stream the file in row windows: each window is
      mapped, every row in it is shuffled through per-lane Theorem-6
      scratch ({!Xpose_core.Plan.d'} indexing is global, so a window is
      self-contained), and the mapping is dropped;
    - the {e column phases} (stride-[n] access) are blocked into
      width-bounded column panels: each panel is gathered through
      bounded row stripes into a contiguous RAM staging, permuted there
      with the fused engine's panel primitives
      ({!Xpose_cpu.Fused_f64.rotate_columns} /
      {!Xpose_cpu.Fused_f64.permute_cols} on a local [m x w] plan, with
      rotation amounts taken at global column indices), and scattered
      back.

    With [prefetch] (the default) a dedicated {!Io_domain} maps and
    pre-faults window [k+1] — and scatters back finished panel [k-1] —
    while the {!Xpose_cpu.Pool} workers permute window [k]: classic
    double buffering, two row windows or two stagings resident.

    Residency accounting ([ooc.*] metrics):
    - [ooc.windows] — mappings created (row windows, stripes, panels
      count one each; the fits-in-budget fast path counts one);
    - [ooc.bytes_mapped] — total bytes ever mapped (not a peak);
    - [ooc.window_peak_bytes] — gauge, high-water mark of concurrently
      live window bytes (mapped windows + panel stagings). The window
      split keeps this at most [3/4 * window_bytes] whenever the budget
      holds at least two rows and two columns ([window_bytes >= 16 *
      max m n]); below that the engine degrades to single-row /
      single-column windows and the gauge reports the overshoot;
    - [ooc.prefetch_hits] / [ooc.prefetch_waits] — windows whose
      prefetch had / had not completed when the compute side needed
      them.

    Each pass opens an [ooc.*] ["pass"] span and each window an
    ["ooc.window"] span with its {!Xpose_core.Pass_cost} predicted
    traffic, so [xpose report]-style prediction-vs-measurement works at
    window granularity. *)

val default_window_bytes : int
(** 64 MiB. *)

val transpose_file :
  ?order:Xpose_core.Layout.order ->
  ?pool:Xpose_cpu.Pool.t ->
  ?window_bytes:int ->
  ?prefetch:bool ->
  ?cache:Xpose_core.Plan.Cache.t ->
  path:string ->
  m:int ->
  n:int ->
  unit ->
  unit
(** [transpose_file ~path ~m ~n ()] transposes the [m x n] float64
    matrix stored in [path] in place in the file, mapping at most a
    [window_bytes]-sized working set at a time (default
    {!default_window_bytes}; matrices that fit entirely are mapped once
    and handed to {!Xpose_cpu.Fused_f64}). [pool] (default
    {!Xpose_cpu.Pool.sequential}) runs the in-window permutation;
    [prefetch] (default [true]) overlaps the next window's I/O with it.
    Same C2R/R2C routing policy as the in-RAM engines; plans come from
    [cache].
    @raise Invalid_argument if [m < 1], [n < 1], [window_bytes < 8], or
    the file does not hold exactly [m*n] float64 elements. *)
