(** Window geometry for the out-of-core engine: pure arithmetic, no I/O.

    The out-of-core engine never maps more than a caller-supplied byte
    budget of its backing file at once. This module decides how that
    budget is carved up: how many rows fit in one streaming row window,
    how many columns fit in one staged column panel, and the exact
    half-open window list covering an index range. The race analyzer
    ({!Xpose_check.Footprint}) partitions index space with these very
    functions, so the proofs cover the splits the engine executes. *)

type t = { lo : int; hi : int }
(** One half-open window [[lo, hi)] of an index range. *)

type splitter = total:int -> per:int -> t list
(** A policy carving [[0, total)] into windows of at most [per] units. *)

val split : splitter
(** [split ~total ~per] covers [[0, total)] with consecutive disjoint
    windows of [per] units (the last one may be short). [per] is clamped
    to at least 1, so the list is finite and exact even under absurdly
    small budgets.
    @raise Invalid_argument if [total < 0]. *)

val overlapping_split : splitter
(** The deliberately broken policy for the seeded negative test: every
    window but the last claims one extra trailing unit, recreating the
    classic inclusive-[hi] windowing bug. The race analyzer must report
    a write/write conflict between adjacent windows under this policy. *)

(** {1 Budget arithmetic}

    All sizing is in float64 {e elements}; one element is 8 bytes. Every
    function returns at least 1 — a budget too small for even one row or
    column degrades to single-row/column windows rather than failing, so
    the engine's peak residency can exceed a sub-row budget (the
    [ooc.window_peak_bytes] gauge reports what actually happened). *)

val budget_elems : window_bytes:int -> int
(** The window budget in elements, [max 1 (window_bytes / 8)]. *)

val row_rows : budget_elems:int -> n:int -> int
(** Rows per streaming row window such that {e two} windows (the one
    being permuted and the one being prefetched) fit in the budget:
    [max 1 (budget / (2n))]. *)

val stripe_rows : budget_elems:int -> n:int -> int
(** Rows per gather/scatter stripe of the column phase: [max 1 (budget /
    (4n))], so one stripe rides alongside the two resident stagings. *)

val panel_cols : budget_elems:int -> m:int -> int
(** Columns per staged column panel such that two stagings (compute +
    prefetch) fit in half the budget each: [max 1 (budget / (4m))]. *)
