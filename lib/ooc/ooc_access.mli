(** Symbolic access summaries of the out-of-core passes.

    Window bounds, pool sub-ranges, and panel budgets are parameters
    carrying their defining inequalities, so the certificates
    [Xpose_check.Bounds] derives from these summaries hold for every
    [--window-bytes] budget and every {!Window.split} outcome -- no
    geometry enumeration. *)

open Xpose_core

val shuffle_rows : ungather:bool -> Access.summary
(** [Ooc_f64]'s in-window row shuffle on one pool chunk [lo, hi) of a
    mapped row window [win_lo, win_hi): reads go through [d'_inv]
    ([ungather:false], C2R) or [d'] ([ungather:true], R2C) at
    window-relative offsets. Exact. *)

val gather_panel : Access.summary
(** Stripe-window to staging-buffer panel copy ([per] = the panel
    column budget; the panel [pan_lo, pan_hi) satisfies
    [pan_hi <= min(n, pan_lo + per)]). Exact. *)

val scatter_panel : Access.summary
(** Inverse of {!gather_panel}: staging back into the stripe window. *)

val all : Access.summary list
