(** A dedicated I/O domain: one worker running queued thunks in order.

    The out-of-core engine overlaps I/O with compute by handing
    map-and-prefault (and scatter-back) work for window [k+1] to this
    domain while the {!Xpose_cpu.Pool} workers permute window [k]. Jobs
    run strictly in submission order, so a scatter of the previous
    staging and a gather into the same staging never reorder.

    Completion is published under a mutex, so everything the job wrote
    happens-before {!await} returning — the caller may freely read the
    buffers the job filled. *)

type t

type job

val create : unit -> t
(** Spawn the I/O domain, idle until jobs arrive. *)

val async : t -> (unit -> unit) -> job
(** Enqueue a thunk; returns immediately. Jobs run one at a time in
    submission order.
    @raise Invalid_argument if the domain was shut down. *)

val await : job -> bool
(** Block until the job completed. Returns whether it had {e already}
    finished when [await] was called — the prefetch-hit signal. If the
    job raised, the exception is re-raised here with its backtrace. *)

val shutdown : t -> unit
(** Finish every queued job, then stop and join the domain.
    Idempotent. *)

val with_io : (t -> 'a) -> 'a
(** [with_io f] creates a domain, applies [f], and shuts it down (also
    on exception). *)
