(** A dedicated I/O domain: one worker running queued thunks in order.

    The out-of-core engine overlaps I/O with compute by handing
    map-and-prefault (and scatter-back) work for window [k+1] to this
    domain while the {!Xpose_cpu.Pool} workers permute window [k]. Jobs
    run strictly in submission order, so a scatter of the previous
    staging and a gather into the same staging never reorder.

    Completion is published under a mutex, so everything the job wrote
    happens-before {!await} returning — the caller may freely read the
    buffers the job filled. *)

type t

type job

exception Cancelled_job
(** Raised by {!await} on a job that a cancelling {!stop} discarded
    before the worker ran it. *)

val create : unit -> t
(** Spawn the I/O domain, idle until jobs arrive. *)

val async : t -> (unit -> unit) -> job
(** Enqueue a thunk; returns immediately. Jobs run one at a time in
    submission order.
    @raise Invalid_argument if the domain was shut down. *)

val await : job -> bool
(** Block until the job completed. Returns whether it had {e already}
    finished when [await] was called — the prefetch-hit signal. If the
    job raised, the exception is re-raised here with its backtrace. *)

val stop : ?drain:bool -> t -> unit
(** Stop and join the domain. With [~drain:true] (the default) every
    queued job still runs before the worker exits — identical to
    {!shutdown}. With [~drain:false] the queued-but-unstarted jobs are
    {e cancelled}: their awaiters raise {!Cancelled_job}; the job the
    worker is executing at the moment of the call (if any) still runs
    to completion and its awaiter sees the normal result. Idempotent —
    repeated or concurrent calls join at most one domain, the rest
    return immediately. Subsequent {!async} calls raise
    [Invalid_argument]. *)

val shutdown : t -> unit
(** [stop ~drain:true]: finish every queued job, then stop and join the
    domain. Idempotent. *)

val with_io : (t -> 'a) -> 'a
(** [with_io f] creates a domain, applies [f], and shuts it down (also
    on exception). *)
