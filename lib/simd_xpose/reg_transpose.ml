open Xpose_core
open Xpose_simd_machine

let plan_for warp =
  Plan.make ~m:(Warp.regs warp) ~n:(Warp.lanes warp)

let c2r warp =
  let p = plan_for warp in
  let m = Warp.regs warp in
  if m > 1 then begin
    if not (Plan.coprime p) then
      Warp.rotate_dynamic warp ~amount:(Plan.rotate_amount p);
    for i = 0 to m - 1 do
      Warp.shfl warp ~reg:i ~src:(fun j -> Plan.d'_inv p ~i j)
    done;
    Warp.rotate_dynamic warp ~amount:(fun j -> j);
    Warp.permute_static warp ~perm:(Plan.q p)
  end

let r2c warp =
  let p = plan_for warp in
  let m = Warp.regs warp in
  if m > 1 then begin
    Warp.permute_static warp ~perm:(Plan.q_inv p);
    Warp.rotate_dynamic warp ~amount:(fun j -> -j);
    for i = 0 to m - 1 do
      Warp.shfl warp ~reg:i ~src:(fun j -> Plan.d' p ~i j)
    done;
    if not (Plan.coprime p) then
      Warp.rotate_dynamic warp ~amount:(fun j -> -Plan.rotate_amount p j)
  end

let instruction_count ~lanes ~regs _direction =
  if regs <= 1 then 0
  else
    let rotation = regs * Intmath.ceil_log2 regs in
    let rotations = if Intmath.is_coprime regs lanes then 1 else 2 in
    regs + (rotations * rotation)
