open Xpose_simd_machine

type method_ = C2r | Direct | Vector

let pp_method ppf m =
  Format.pp_print_string ppf
    (match m with C2r -> "C2R" | Direct -> "Direct" | Vector -> "Vector")

type pattern = Unit_stride | Random of int array

type result = {
  gbps : float;
  time_ns : float;
  transactions : int;
  instructions : int;
  useful_bytes : int;
}

let vector_words cfg = 16 / cfg.Config.word_bytes (* 128-bit hardware vectors *)

let check cfg ~struct_words ~n_structs pattern =
  if struct_words < 1 then invalid_arg "Access: struct_words";
  if n_structs < 1 || n_structs mod cfg.Config.lanes <> 0 then
    invalid_arg "Access: n_structs must be a positive multiple of lanes";
  match pattern with
  | Unit_stride -> ()
  | Random perm ->
      if Array.length perm <> n_structs then
        invalid_arg "Access: Random permutation must cover all structures"

let struct_index pattern ~lanes ~warp ~lane =
  match pattern with
  | Unit_stride -> (warp * lanes) + lane
  | Random perm -> perm.((warp * lanes) + lane)

(* [since] is the snapshot taken after setup: the result reflects only
   the traffic of the measured phase, without destructively resetting
   the memory's cumulative counters. *)
let result_of ?(since = Memory.zero_stats) mem =
  let s = Memory.diff (Memory.snapshot mem) since in
  let time = Memory.time_ns_of (Memory.config mem) s in
  {
    gbps =
      (if time <= 0.0 then 0.0
       else float_of_int s.Memory.useful_bytes /. time);
    time_ns = time;
    transactions = s.Memory.load_transactions + s.Memory.store_transactions;
    instructions = s.Memory.instructions;
    useful_bytes = s.Memory.useful_bytes;
  }

(* Store one warp's worth of structures at [bases] (word address of each
   lane's structure), values chosen so the final image is the AoS iota. *)
let store_warp cfg mem method_ ~m ~bases =
  let lanes = cfg.Config.lanes in
  match method_ with
  | C2r ->
      let warp = Warp.create mem ~regs:m in
      for j = 0 to lanes - 1 do
        for r = 0 to m - 1 do
          Warp.set warp ~reg:r ~lane:j (bases.(j) + r)
        done
      done;
      Coalesced.store warp ~struct_base:(fun s -> bases.(s))
  | Direct ->
      for r = 0 to m - 1 do
        let addrs = Array.init lanes (fun j -> Some (bases.(j) + r)) in
        let values = Array.init lanes (fun j -> Some (bases.(j) + r)) in
        Memory.warp_store mem ~addrs ~values
      done
  | Vector ->
      let vw = vector_words cfg in
      let k = ref 0 in
      while !k < m do
        let span = min vw (m - !k) in
        let starts = Array.init lanes (fun j -> Some (bases.(j) + !k)) in
        Memory.charge_warp_span mem Store ~starts ~span;
        for j = 0 to lanes - 1 do
          for w = 0 to span - 1 do
            Memory.poke mem (bases.(j) + !k + w) (bases.(j) + !k + w)
          done
        done;
        k := !k + span
      done

(* Load one warp's worth of structures; returns a checksum so the data
   path cannot be optimized away and tests can validate it. *)
let load_warp cfg mem method_ ~m ~bases =
  let lanes = cfg.Config.lanes in
  match method_ with
  | C2r ->
      let warp = Warp.create mem ~regs:m in
      Coalesced.load warp ~struct_base:(fun s -> bases.(s));
      let sum = ref 0 in
      for j = 0 to lanes - 1 do
        for r = 0 to m - 1 do
          sum := !sum + Warp.get warp ~reg:r ~lane:j
        done
      done;
      (!sum, Some warp)
  | Direct ->
      let sum = ref 0 in
      for r = 0 to m - 1 do
        let addrs = Array.init lanes (fun j -> Some (bases.(j) + r)) in
        let values = Memory.warp_load mem ~addrs in
        Array.iter (function Some v -> sum := !sum + v | None -> ()) values
      done;
      (!sum, None)
  | Vector ->
      let vw = vector_words cfg in
      let sum = ref 0 in
      let k = ref 0 in
      while !k < m do
        let span = min vw (m - !k) in
        let starts = Array.init lanes (fun j -> Some (bases.(j) + !k)) in
        Memory.charge_warp_span mem Load ~starts ~span;
        for j = 0 to lanes - 1 do
          for w = 0 to span - 1 do
            sum := !sum + Memory.peek mem (bases.(j) + !k + w)
          done
        done;
        k := !k + span
      done;
      (!sum, None)

let warp_bases cfg pattern ~m ~warp ~offset =
  Array.init cfg.Config.lanes (fun lane ->
      offset
      + (struct_index pattern ~lanes:cfg.Config.lanes ~warp ~lane * m))

let run_store cfg ~struct_words:m ~n_structs pattern method_ =
  check cfg ~struct_words:m ~n_structs pattern;
  let mem = Memory.create cfg ~words:(n_structs * m) in
  for w = 0 to (n_structs / cfg.Config.lanes) - 1 do
    store_warp cfg mem method_ ~m
      ~bases:(warp_bases cfg pattern ~m ~warp:w ~offset:0)
  done;
  result_of mem

let run_load cfg ~struct_words:m ~n_structs pattern method_ =
  check cfg ~struct_words:m ~n_structs pattern;
  let mem = Memory.create cfg ~words:(n_structs * m) in
  for a = 0 to (n_structs * m) - 1 do
    Memory.poke mem a a
  done;
  let since = Memory.snapshot mem in
  let total = ref 0 in
  for w = 0 to (n_structs / cfg.Config.lanes) - 1 do
    let sum, _ =
      load_warp cfg mem method_ ~m
        ~bases:(warp_bases cfg pattern ~m ~warp:w ~offset:0)
    in
    total := !total + sum
  done;
  (* every word loaded exactly once: the checksum is the iota sum *)
  let n = n_structs * m in
  if !total <> n * (n - 1) / 2 then
    invalid_arg "Access.run_load: data path returned a wrong checksum";
  result_of ~since mem

let run_copy cfg ~struct_words:m ~n_structs pattern method_ =
  check cfg ~struct_words:m ~n_structs pattern;
  let half = n_structs * m in
  let mem = Memory.create cfg ~words:(2 * half) in
  for a = 0 to half - 1 do
    Memory.poke mem a a
  done;
  let since = Memory.snapshot mem in
  let lanes = cfg.Config.lanes in
  for w = 0 to (n_structs / lanes) - 1 do
    let src = warp_bases cfg pattern ~m ~warp:w ~offset:0 in
    let dst = warp_bases cfg pattern ~m ~warp:w ~offset:half in
    match method_ with
    | C2r ->
        let warp = Warp.create mem ~regs:m in
        Coalesced.load warp ~struct_base:(fun s -> src.(s));
        Coalesced.store warp ~struct_base:(fun s -> dst.(s))
    | Direct ->
        for r = 0 to m - 1 do
          let addrs = Array.init lanes (fun j -> Some (src.(j) + r)) in
          let values = Memory.warp_load mem ~addrs in
          let addrs = Array.init lanes (fun j -> Some (dst.(j) + r)) in
          Memory.warp_store mem ~addrs ~values
        done
    | Vector ->
        let vw = vector_words cfg in
        let k = ref 0 in
        while !k < m do
          let span = min vw (m - !k) in
          let starts = Array.init lanes (fun j -> Some (src.(j) + !k)) in
          Memory.charge_warp_span mem Load ~starts ~span;
          let starts = Array.init lanes (fun j -> Some (dst.(j) + !k)) in
          Memory.charge_warp_span mem Store ~starts ~span;
          for j = 0 to lanes - 1 do
            for x = 0 to span - 1 do
              Memory.poke mem
                (dst.(j) + !k + x)
                (Memory.peek mem (src.(j) + !k + x))
            done
          done;
          k := !k + span
        done
  done;
  (* verify the copy *)
  for a = 0 to half - 1 do
    if Memory.peek mem (half + a) <> a then
      invalid_arg "Access.run_copy: copy produced a wrong image"
  done;
  result_of ~since mem

let final_image cfg ~struct_words:m ~n_structs pattern method_ =
  check cfg ~struct_words:m ~n_structs pattern;
  let mem = Memory.create cfg ~words:(n_structs * m) in
  for w = 0 to (n_structs / cfg.Config.lanes) - 1 do
    store_warp cfg mem method_ ~m
      ~bases:(warp_bases cfg pattern ~m ~warp:w ~offset:0)
  done;
  Array.init (n_structs * m) (Memory.peek mem)
