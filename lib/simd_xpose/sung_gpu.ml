open Xpose_core
open Xpose_simd_machine

type report = {
  m : int;
  n : int;
  elt_bytes : int;
  tile : int * int;
  gbps : float;
  time_ns : float;
  stats : Memory.stats;
}

(* Lines covered by one strided sub-row of [w] elements inside a row of
   [row_elems]; same alignment rule as the main model. *)
let subrow_lines cfg ~row_elems ~w ~s =
  let line = cfg.Config.line_bytes in
  let aligned = Intmath.ceil_div (w * s) line in
  if row_elems * s mod line = 0 && w * s mod line = 0 then aligned
  else aligned + 1

(* Transaction counts alone overestimate Sung's implementation, which
   stages tiles through shared memory with barrier synchronization and
   per-element atomic marking that do not overlap the transfers. The
   factor is calibrated on the one published point the paper replicates:
   20.8 GB/s on 7200 x 1800 (tile 32 x 72) and 22.35 GB/s on 7223 x 10368
   (tile 31 x 64), §5.2; 5.5 is the geometric best fit for both. *)
let default_overhead_factor = 5.5

let cost ?tile ?threshold ?(overhead_factor = default_overhead_factor) cfg
    ~elt_bytes:s ~m ~n =
  if m < 1 || n < 1 || s < 1 then invalid_arg "Sung_gpu.cost: bad arguments";
  Config.validate cfg;
  let th, tw =
    match tile with
    | Some t -> t
    | None -> Xpose_baselines.Sung.tile_dims ?threshold ~m ~n ()
  in
  if th < 1 || tw < 1 || m mod th <> 0 || n mod tw <> 0 then
    raise
      (Xpose_baselines.Sung.Tile_mismatch
         (Printf.sprintf "tile %dx%d does not divide matrix %dx%d" th tw m n));
  let mem = Memory.create cfg ~words:0 in
  let tiles = m / th * (n / tw) in
  (* Read each tile from the m x n interpretation: th sub-rows of tw. *)
  let read_lines = tiles * th * subrow_lines cfg ~row_elems:n ~w:tw ~s in
  Memory.charge_lines mem Load ~lines:read_lines ~useful_bytes:(m * n * s);
  (* Write each tile transposed into the n x m interpretation: tw sub-rows
     of th. *)
  let write_lines = tiles * tw * subrow_lines cfg ~row_elems:m ~w:th ~s in
  Memory.charge_lines mem Store ~lines:write_lines ~useful_bytes:(m * n * s);
  (* Moved-state marking, one bit per element (the O(mn)-bit auxiliary
     state): a tile's bits live in [th] separate row-strided regions of
     the bit array, each needing a read-modify-write when the tile
     completes. *)
  Memory.charge_lines mem Load ~lines:(tiles * th) ~useful_bytes:0;
  Memory.charge_lines mem Store ~lines:(tiles * th) ~useful_bytes:0;
  let useful = 2 * m * n * s in
  let time = Memory.time_ns mem *. overhead_factor in
  let gbps = if time <= 0.0 then 0.0 else float_of_int useful /. time in
  { m; n; elt_bytes = s; tile = (th, tw); gbps; time_ns = time; stats = Memory.stats mem }
