open Xpose_simd_machine

(* Cooperative addressing: during memory instruction r, lane j handles
   linear tile position p = r*lanes + j, i.e. word [p mod regs] of
   structure [p / regs]. Consecutive lanes therefore touch consecutive
   words of each structure, so every instruction covers contiguous spans
   (one per structure it crosses). One extra shuffle per instruction
   accounts for distributing the per-lane structure indices (§6.2). *)
let cooperative_addr warp ~struct_base ~reg ~lane =
  let m = Warp.regs warp and lanes = Warp.lanes warp in
  let p = (reg * lanes) + lane in
  Some (struct_base (p / m) + (p mod m))

let load warp ~struct_base =
  Warp.load_gather warp ~addr:(fun ~reg ~lane ->
      cooperative_addr warp ~struct_base ~reg ~lane);
  (* one shuffle per memory instruction to route structure indices *)
  Memory.charge_instrs (Warp.memory warp) (Warp.regs warp);
  Reg_transpose.r2c warp

let store warp ~struct_base =
  Reg_transpose.c2r warp;
  Memory.charge_instrs (Warp.memory warp) (Warp.regs warp);
  Warp.store_scatter warp ~addr:(fun ~reg ~lane ->
      cooperative_addr warp ~struct_base ~reg ~lane)

let load_unit_stride warp ~base ~first_struct =
  load warp ~struct_base:(fun s ->
      base + ((first_struct + s) * Warp.regs warp))

let store_unit_stride warp ~base ~first_struct =
  store warp ~struct_base:(fun s ->
      base + ((first_struct + s) * Warp.regs warp))
