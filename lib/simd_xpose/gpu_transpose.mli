(** Cost model of the paper's GPU implementation (§5.2): the decomposed
    transposition with cache-aware column operations (§4.6-4.7) and the
    on-chip row shuffle (§4.5), evaluated on the {!Xpose_simd_machine}
    transaction model.

    The permutation passes' traffic is charged exactly as the cache-aware
    kernels issue it: sub-row granular transfers for the column rotation
    and row permutation (with the paper's one-extra-line penalty for
    unaligned sub-rows), full streams for blocked passes, and — for rows
    too long to stage on chip — a gather pass whose cache-line count is
    measured by enumerating the actual Eq. 31 indices warp by warp
    (sampled over rows, which are structurally identical up to the row
    offset). The algorithms themselves are the ones proven correct by the
    [xpose_core]/[xpose_cpu] test suites; this module prices them. *)

open Xpose_simd_machine

type algorithm = [ `C2r | `R2c ]

type report = {
  algorithm : algorithm;
  m : int;  (** matrix rows (row-major storage) *)
  n : int;  (** matrix columns *)
  elt_bytes : int;
  gbps : float;  (** Eq. 37 throughput, [2mns / t] *)
  time_ns : float;
  stats : Memory.stats;
  onchip_row_shuffle : bool;
      (** whether the §4.5 single-pass row shuffle applied *)
}

val cost :
  ?occupancy:int ->
  ?sample_rows:int ->
  Config.t ->
  algorithm:algorithm ->
  elt_bytes:int ->
  m:int ->
  n:int ->
  report
(** Model transposing a row-major [m x n] matrix of [elt_bytes]-sized
    elements. [occupancy] (default 8) divides the on-chip capacity among
    concurrently staged rows, setting the §4.5 threshold; [sample_rows]
    (default 48) bounds how many rows the gather-pass line counting
    enumerates. @raise Invalid_argument on non-positive arguments. *)

val auto :
  ?occupancy:int ->
  ?sample_rows:int ->
  Config.t ->
  elt_bytes:int ->
  m:int ->
  n:int ->
  report
(** Apply the paper's heuristic ([m > n] → C2R, else R2C, §5.2). *)
