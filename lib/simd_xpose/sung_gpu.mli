(** Cost model of Sung's tiled GPU transposition [6] on the transaction
    model, for the paper's Figure 6 / Table 2 comparison.

    Each tile of [th x tw] elements is read from its strided location in
    the source interpretation (one transfer per tile sub-row) and written
    to its strided destination (one transfer per destination sub-row),
    with a marking transaction per tile (the algorithm keeps up to one
    bit per element of moved-state, the [O(mn)]-bit auxiliary space the
    paper points out). Tile sizes come from the factor heuristic (§5.2,
    {!Xpose_baselines.Sung.heuristic_tile}); dimensions with small prime
    factors get efficient wide tiles while near-prime dimensions degrade
    toward element-wise transfers — reproducing why the tiled baseline's
    median suffers on randomly-sized matrices. *)

open Xpose_simd_machine

type report = {
  m : int;
  n : int;
  elt_bytes : int;
  tile : int * int;
  gbps : float;
  time_ns : float;
  stats : Memory.stats;
}

val default_overhead_factor : float
(** Staging/synchronization overhead of Sung's kernel beyond its raw
    transaction traffic, calibrated so the model reproduces the paper's
    replicated measurement (20.8 GB/s at 7200 x 1800, tile 32 x 72). *)

val cost :
  ?tile:int * int ->
  ?threshold:int ->
  ?overhead_factor:float ->
  Config.t ->
  elt_bytes:int ->
  m:int ->
  n:int ->
  report
(** Model transposing a row-major [m x n] matrix. [tile] defaults to the
    factor heuristic with [threshold] (default 72).
    @raise Xpose_baselines.Sung.Tile_mismatch if an explicit tile does
    not divide the dimensions. *)
