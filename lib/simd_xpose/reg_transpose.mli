(** In-register transposition of a warp-resident tile (paper §6.2).

    A warp of [n] lanes holding [m] registers each forms an [m x n] array
    in the register file. Because the decomposed transposition only ever
    needs (a) row shuffles, (b) per-lane dynamic rotations, and (c) static
    row permutations, it runs entirely in registers: (a) is the hardware
    shuffle instruction, (b) is a branch-free barrel rotation, and (c) is
    free register renaming. No on-chip memory is allocated — the property
    that makes the [coalesced_ptr] interface (Fig. 10) possible.

    Orientation (§6.1): a coalesced tile load leaves register [(r, j)]
    holding word [r*n + j] of the tile — the row-major linearization.
    Lane [j] wants the [j]-th structure, i.e. word [j*m + r] in register
    [r] — the column-major linearization. R2C converts row-major content
    to column-major content (hence {b load = coalesced load + R2C}) and
    C2R is its inverse ({b store = C2R + coalesced store}). *)

val r2c : Xpose_simd_machine.Warp.t -> unit
(** Apply the R2C permutation to the [regs x lanes] register tile: the
    tile's row-major content becomes its column-major content. *)

val c2r : Xpose_simd_machine.Warp.t -> unit
(** Inverse of {!r2c}. *)

val instruction_count :
  lanes:int -> regs:int -> [ `C2r | `R2c ] -> int
(** Warp instructions one transposition costs: [regs] shuffles, two
    dynamic rotations of [regs * ceil(log2 regs)] selects each (§6.2.2),
    with the pre/post-rotation skipped when [gcd(regs, lanes) = 1]. Used
    by tests and the cost-model documentation. *)
