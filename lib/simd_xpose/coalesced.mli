(** Cooperative, coalesced Array-of-Structures access — the
    [coalesced_ptr<T>] mechanism of the paper's Fig. 10.

    Each lane of the warp wants to load or store one whole structure of
    [Warp.regs] words. Dereferencing lane-private pointers directly would
    issue strided accesses; instead the warp reads the [regs * lanes]
    words {e cooperatively} in linear order (so each memory instruction
    covers a contiguous span) and then runs the in-register R2C transpose
    to route each structure to its lane (or C2R before a cooperative
    store). Works for contiguous warps of structures and for arbitrary
    per-lane structure indices (the indices are exchanged between lanes
    with shuffles, §6.2). *)

open Xpose_simd_machine

val load : Warp.t -> struct_base:(int -> int) -> unit
(** [load w ~struct_base] loads structure [s] (word address
    [struct_base s], [s] in [[0, lanes)]) into lane [s]'s registers:
    afterwards [Warp.get w ~reg:r ~lane:s] is word [r] of structure [s].
    Cooperative load + in-register R2C. *)

val store : Warp.t -> struct_base:(int -> int) -> unit
(** Inverse of {!load}: lane [s]'s registers (word [r] in register [r])
    are written to structure [s]. In-register C2R + cooperative store.
    The register tile is clobbered (it holds the C2R image afterwards). *)

val load_unit_stride : Warp.t -> base:int -> first_struct:int -> unit
(** [load_unit_stride w ~base ~first_struct] is [load] of the [lanes]
    consecutive structures starting at index [first_struct] in the AoS at
    word address [base]. *)

val store_unit_stride : Warp.t -> base:int -> first_struct:int -> unit
