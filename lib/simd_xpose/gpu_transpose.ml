open Xpose_core
open Xpose_simd_machine

type algorithm = [ `C2r | `R2c ]

type report = {
  algorithm : algorithm;
  m : int;
  n : int;
  elt_bytes : int;
  gbps : float;
  time_ns : float;
  stats : Memory.stats;
  onchip_row_shuffle : bool;
}

(* Lines one sub-row of [w] elements touches: its aligned span, plus one
   when the surrounding row geometry does not keep sub-rows line-aligned
   ("may span two cache-lines if it is not aligned", §4.6). *)
let subrow_lines cfg ~row_elems ~w ~s =
  let line = cfg.Config.line_bytes in
  let aligned = Intmath.ceil_div (w * s) line in
  if row_elems * s mod line = 0 && w * s mod line = 0 then aligned
  else aligned + 1

(* Column rotation over the full [rows x cols] view with per-column
   [amount], grouped in sub-rows of [w] columns exactly as
   Xpose_cpu.Cache_aware does: a coarse cycle-following pass for groups
   with a nonzero shared amount, then a fine blocked pass for groups with
   nonzero residuals. *)
let charge_rotate cfg mem ~rows ~cols ~s ~amount =
  let w = max 1 (cfg.Config.coalesce_bytes / s) in
  let g = ref 0 in
  let coarse_moves = ref 0 and fine_groups_elems = ref 0 in
  while !g < cols do
    let lo = !g in
    let gw = min w (cols - lo) in
    let k0 = Intmath.emod (amount lo) rows in
    let k1 = Intmath.emod (amount (lo + gw - 1)) rows in
    let residual_for k j = Intmath.emod (amount j - k) rows in
    let max_res k =
      let r = ref 0 in
      for j = lo to lo + gw - 1 do
        let v = residual_for k j in
        if v > !r then r := v
      done;
      !r
    in
    let k, maxres =
      let r0 = max_res k0 in
      if r0 < gw then (k0, r0) else (k1, max_res k1)
    in
    if maxres < gw && maxres < rows then begin
      if k <> 0 then coarse_moves := !coarse_moves + rows;
      if maxres > 0 then fine_groups_elems := !fine_groups_elems + (rows * gw)
    end
    else
      (* per-column fallback: element-granular gather + write *)
      fine_groups_elems := !fine_groups_elems + (2 * rows * gw);
    g := lo + gw
  done;
  let spl = subrow_lines cfg ~row_elems:cols ~w ~s in
  if !coarse_moves > 0 then begin
    let lines = !coarse_moves * spl in
    let useful = !coarse_moves * w * s in
    Memory.charge_lines mem Load ~lines ~useful_bytes:useful;
    Memory.charge_lines mem Store ~lines ~useful_bytes:useful
  end;
  if !fine_groups_elems > 0 then begin
    let moves = Intmath.ceil_div !fine_groups_elems w in
    let lines = moves * spl in
    let useful = !fine_groups_elems * s in
    Memory.charge_lines mem Load ~lines ~useful_bytes:useful;
    Memory.charge_lines mem Store ~lines ~useful_bytes:useful
  end

(* Row permutation (identical in every column, §4.7): cycle-following
   sub-row moves; rows on 1-cycles do not move. *)
let charge_permute_rows cfg mem ~rows ~cols ~s ~index =
  let moving = ref 0 in
  for i = 0 to rows - 1 do
    if index i <> i then incr moving
  done;
  if !moving > 0 then begin
    let w = max 1 (cfg.Config.coalesce_bytes / s) in
    let spl = subrow_lines cfg ~row_elems:cols ~w ~s in
    let moves = !moving * Intmath.ceil_div cols w in
    let useful = !moving * cols * s in
    Memory.charge_lines mem Load ~lines:(moves * spl) ~useful_bytes:useful;
    Memory.charge_lines mem Store ~lines:(moves * spl) ~useful_bytes:useful
  end

(* Row shuffle over rows of [cols] elements. On chip (§4.5): one coalesced
   read and write per element. Otherwise (Algorithm 1): a gathered read
   (lines counted from the actual indices, warp by warp, on a sample of
   rows), a coalesced write to the scratch vector, and a coalesced copy
   back. *)
let charge_row_shuffle cfg mem ~rows ~cols ~s ~budget_elements ~sample_rows
    ~gather_index =
  let bytes = rows * cols * s in
  if cols <= budget_elements then begin
    Memory.charge_stream mem Load ~bytes;
    Memory.charge_stream mem Store ~bytes;
    true
  end
  else begin
    let lanes = cfg.Config.lanes in
    let sample = min rows (max 1 sample_rows) in
    let step = rows / sample in
    let line = cfg.Config.line_bytes in
    let lines = ref 0 in
    let ids = Array.make lanes 0 in
    let sampled = ref 0 in
    let i = ref 0 in
    while !i < rows do
      incr sampled;
      let row = !i in
      let j = ref 0 in
      while !j < cols do
        let warp = min lanes (cols - !j) in
        for k = 0 to warp - 1 do
          ids.(k) <- (row * cols * s) + (gather_index ~i:row (!j + k) * s)
        done;
        let sub = Array.sub ids 0 warp in
        Array.sort compare sub;
        let distinct = ref 1 in
        for k = 1 to warp - 1 do
          if sub.(k) / line <> sub.(k - 1) / line then incr distinct
        done;
        lines := !lines + !distinct;
        j := !j + warp
      done;
      i := !i + step
    done;
    let scaled = !lines * rows / max 1 !sampled in
    Memory.charge_lines mem Load ~lines:scaled ~useful_bytes:bytes;
    Memory.charge_stream mem Store ~bytes;
    (* copy the scratch vector back over the row *)
    Memory.charge_stream mem Load ~bytes;
    Memory.charge_stream mem Store ~bytes;
    false
  end

let cost ?(occupancy = 8) ?(sample_rows = 48) cfg ~algorithm ~elt_bytes:s ~m
    ~n =
  if m < 1 || n < 1 || s < 1 || occupancy < 1 then
    invalid_arg "Gpu_transpose.cost: bad arguments";
  Config.validate cfg;
  let mem = Memory.create cfg ~words:0 in
  (* Staging capacity is register slots: the paper stages up to 29440
     64-bit elements per pass (§4.5); per-element register allocation does
     not shrink for narrower elements, so the budget is element-denominated
     and shared among [occupancy] concurrently staged rows. *)
  let budget_elements = cfg.Config.onchip_bytes / 8 / occupancy in
  let onchip = ref true in
  if m > 1 && n > 1 then begin
    match algorithm with
    | `C2r ->
        (* view = m x n (Theorem 1) *)
        let p = Plan.make ~m ~n in
        if not (Plan.coprime p) then
          charge_rotate cfg mem ~rows:m ~cols:n ~s
            ~amount:(Plan.rotate_amount p);
        onchip :=
          charge_row_shuffle cfg mem ~rows:m ~cols:n ~s ~budget_elements
            ~sample_rows ~gather_index:(fun ~i j -> Plan.d'_inv p ~i j);
        charge_rotate cfg mem ~rows:m ~cols:n ~s ~amount:(fun j -> j);
        charge_permute_rows cfg mem ~rows:m ~cols:n ~s ~index:(Plan.q p)
    | `R2c ->
        (* view = n x m on the same linear buffer (Theorem 2) *)
        let p = Plan.make ~m:n ~n:m in
        charge_permute_rows cfg mem ~rows:n ~cols:m ~s ~index:(Plan.q_inv p);
        charge_rotate cfg mem ~rows:n ~cols:m ~s ~amount:(fun j -> -j);
        onchip :=
          charge_row_shuffle cfg mem ~rows:n ~cols:m ~s ~budget_elements
            ~sample_rows ~gather_index:(fun ~i j -> Plan.d' p ~i j);
        if not (Plan.coprime p) then
          charge_rotate cfg mem ~rows:n ~cols:m ~s
            ~amount:(fun j -> -Plan.rotate_amount p j)
  end
  else Memory.charge_instrs mem 1;
  let useful = 2 * m * n * s in
  let time = Memory.time_ns mem in
  let gbps =
    if time <= 0.0 then cfg.Config.effective_gbps
    else
      Float.min
        (float_of_int useful /. time)
        (2.0 *. cfg.Config.effective_gbps)
  in
  {
    algorithm;
    m;
    n;
    elt_bytes = s;
    gbps;
    time_ns = time;
    stats = Memory.stats mem;
    onchip_row_shuffle = !onchip;
  }

let auto ?occupancy ?sample_rows cfg ~elt_bytes ~m ~n =
  let algorithm = if m > n then `C2r else `R2c in
  cost ?occupancy ?sample_rows cfg ~algorithm ~elt_bytes ~m ~n
