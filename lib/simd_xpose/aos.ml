open Xpose_core

module Make (S : Storage.S) = struct
  module A = Algo.Make (S)

  let check ~structs ~fields buf =
    if structs < 1 || fields < 1 then
      invalid_arg "Aos: structs and fields must be positive";
    if S.length buf <> structs * fields then invalid_arg "Aos: buffer size"

  let aos_to_soa ~structs ~fields buf =
    check ~structs ~fields buf;
    let p = Plan.make ~m:structs ~n:fields in
    let tmp = S.create (Plan.scratch_elements p) in
    A.c2r p buf ~tmp

  let soa_to_aos ~structs ~fields buf =
    check ~structs ~fields buf;
    let p = Plan.make ~m:structs ~n:fields in
    let tmp = S.create (Plan.scratch_elements p) in
    A.r2c p buf ~tmp
end

type report = {
  structs : int;
  fields : int;
  elt_bytes : int;
  gbps : float;
  time_ns : float;
  utilization : float;
}

(* The specialized conversion is the decomposed C2R on the skinny
   [structs x fields] view: the general cost model already prices all its
   passes (the row shuffle spans [fields] elements and is always on
   chip). *)
let cost_specialized cfg ~elt_bytes ~structs ~fields =
  let r =
    Gpu_transpose.cost cfg ~algorithm:`C2r ~elt_bytes ~m:structs ~n:fields
  in
  {
    structs;
    fields;
    elt_bytes;
    gbps = r.Gpu_transpose.gbps;
    time_ns = r.Gpu_transpose.time_ns;
    utilization = 1.0;
  }

(* The general kernel's column passes have only [fields] independent
   columns to distribute; below [min_parallel_columns] units the machine
   idles proportionally. Column passes are 3 of the 4 phases; scale their
   share of the time by the utilization shortfall. *)
let cost_general ?(min_parallel_columns = 256) cfg ~elt_bytes ~structs ~fields =
  if min_parallel_columns < 1 then invalid_arg "Aos.cost_general";
  let s = cost_specialized cfg ~elt_bytes ~structs ~fields in
  let util =
    Float.min 1.0 (float_of_int fields /. float_of_int min_parallel_columns)
  in
  let column_share = 0.75 in
  let time =
    s.time_ns *. ((1.0 -. column_share) +. (column_share /. util))
  in
  let useful = float_of_int (2 * structs * fields * elt_bytes) in
  {
    structs;
    fields;
    elt_bytes;
    gbps = useful /. time;
    time_ns = time;
    utilization = util;
  }
