open Xpose_core
open Xpose_simd_machine

type result = {
  gbps : float;
  time_ns : float;
  stats : Memory.stats;
  onchip_row_shuffle : bool;
}

let scratch_words ~m ~n = max m n

(* -- warp-granular segment transfers ------------------------------------ *)

let load_segment mem ~lanes ~base ~count dst ~dst_pos =
  let addrs =
    Array.init lanes (fun t -> if t < count then Some (base + t) else None)
  in
  let values = Memory.warp_load mem ~addrs in
  for t = 0 to count - 1 do
    dst.(dst_pos + t) <- Option.get values.(t)
  done

let store_segment mem ~lanes ~base ~count src ~src_pos =
  let addrs =
    Array.init lanes (fun t -> if t < count then Some (base + t) else None)
  in
  let values =
    Array.init lanes (fun t -> if t < count then Some src.(src_pos + t) else None)
  in
  Memory.warp_store mem ~addrs ~values

let load_span mem ~lanes ~base ~count dst =
  let pos = ref 0 in
  while !pos < count do
    let seg = min lanes (count - !pos) in
    load_segment mem ~lanes ~base:(base + !pos) ~count:seg dst ~dst_pos:!pos;
    pos := !pos + seg
  done

let store_span mem ~lanes ~base ~count src =
  let pos = ref 0 in
  while !pos < count do
    let seg = min lanes (count - !pos) in
    store_segment mem ~lanes ~base:(base + !pos) ~count:seg src ~src_pos:!pos;
    pos := !pos + seg
  done

(* -- cache-aware column rotation (§4.6), executed ------------------------ *)

let rotate_columns mem ~rows ~cols ~amount =
  let cfg = Memory.config mem in
  let lanes = cfg.Config.lanes in
  let w_max = min lanes (max 1 (cfg.Config.coalesce_bytes / cfg.Config.word_bytes)) in
  let sub = Array.make w_max 0 in
  let saved = Array.make w_max 0 in
  let block_rows = 64 in
  let lo = ref 0 in
  while !lo < cols do
    let base_col = !lo in
    let w = min w_max (cols - base_col) in
    let res = Array.make w 0 in
    let pick anchor =
      let k = Intmath.emod (amount anchor) rows in
      let maxres = ref 0 in
      for jj = 0 to w - 1 do
        let r = Intmath.emod (amount (base_col + jj) - k) rows in
        res.(jj) <- r;
        if r > !maxres then maxres := r
      done;
      (k, !maxres)
    in
    let k, maxres =
      let k, mr = pick base_col in
      if mr < w then (k, mr) else pick (base_col + w - 1)
    in
    let subrow_base row = (row * cols) + base_col in
    if maxres < w && maxres < rows then begin
      (* coarse: cycle-follow whole sub-rows rotated by k *)
      if k <> 0 then begin
        let cycles = Intmath.gcd rows k in
        for y = 0 to cycles - 1 do
          load_segment mem ~lanes ~base:(subrow_base y) ~count:w saved
            ~dst_pos:0;
          let i = ref y in
          let continue = ref true in
          while !continue do
            let src = !i + k in
            let src = if src >= rows then src - rows else src in
            if src = y then begin
              store_segment mem ~lanes ~base:(subrow_base !i) ~count:w saved
                ~src_pos:0;
              continue := false
            end
            else begin
              load_segment mem ~lanes ~base:(subrow_base src) ~count:w sub
                ~dst_pos:0;
              store_segment mem ~lanes ~base:(subrow_base !i) ~count:w sub
                ~src_pos:0;
              i := src
            end
          done
        done
      end;
      (* fine: bounded residual rotation through on-chip strips *)
      if maxres > 0 then begin
        let head = Array.make_matrix (max 1 maxres) w 0 in
        for r = 0 to maxres - 1 do
          load_segment mem ~lanes ~base:(subrow_base r) ~count:w head.(r)
            ~dst_pos:0
        done;
        let win = Array.make_matrix (block_rows + maxres) w 0 in
        let out = Array.make w 0 in
        let r = ref 0 in
        while !r < rows do
          let strip = min block_rows (rows - !r) in
          (* stage source rows [r, r + strip + maxres) on chip, serving
             wrapped rows from the saved head *)
          for t = 0 to strip + maxres - 1 do
            let src_row = !r + t in
            if src_row < rows then
              load_segment mem ~lanes ~base:(subrow_base src_row) ~count:w
                win.(t) ~dst_pos:0
            else Array.blit head.(src_row - rows) 0 win.(t) 0 w
          done;
          for t = 0 to strip - 1 do
            for jj = 0 to w - 1 do
              out.(jj) <- win.(t + res.(jj)).(jj)
            done;
            store_segment mem ~lanes ~base:(subrow_base (!r + t)) ~count:w out
              ~src_pos:0
          done;
          r := !r + strip
        done
      end
    end
    else begin
      (* unbounded residuals: rotate each column individually, lanes
         striding down the column (scattered, and priced as such) *)
      let col = Array.make rows 0 in
      for jj = 0 to w - 1 do
        let j = base_col + jj in
        let kj = Intmath.emod (amount j) rows in
        if kj <> 0 then begin
          let i = ref 0 in
          while !i < rows do
            let seg = min lanes (rows - !i) in
            let addrs =
              Array.init lanes (fun t ->
                  if t < seg then
                    Some ((((!i + t + kj) mod rows) * cols) + j)
                  else None)
            in
            let values = Memory.warp_load mem ~addrs in
            for t = 0 to seg - 1 do
              col.(!i + t) <- Option.get values.(t)
            done;
            i := !i + seg
          done;
          let i = ref 0 in
          while !i < rows do
            let seg = min lanes (rows - !i) in
            let addrs =
              Array.init lanes (fun t ->
                  if t < seg then Some (((!i + t) * cols) + j) else None)
            in
            let values =
              Array.init lanes (fun t ->
                  if t < seg then Some col.(!i + t) else None)
            in
            Memory.warp_store mem ~addrs ~values;
            i := !i + seg
          done
        end
      done
    end;
    lo := base_col + w
  done

(* -- row shuffle (§4.5 on chip, Algorithm 1 otherwise), executed --------- *)

let row_shuffle mem ~rows ~cols ~gather_index ~budget_elements ~tmp_base =
  let cfg = Memory.config mem in
  let lanes = cfg.Config.lanes in
  if cols <= budget_elements then begin
    let row = Array.make cols 0 and out = Array.make cols 0 in
    for i = 0 to rows - 1 do
      load_span mem ~lanes ~base:(i * cols) ~count:cols row;
      for j = 0 to cols - 1 do
        out.(j) <- row.(gather_index ~i j)
      done;
      store_span mem ~lanes ~base:(i * cols) ~count:cols out
    done;
    true
  end
  else begin
    let seg_vals = Array.make lanes 0 in
    for i = 0 to rows - 1 do
      let base = i * cols in
      (* pass 1: gathered read, coalesced write to the device scratch *)
      let j = ref 0 in
      while !j < cols do
        let seg = min lanes (cols - !j) in
        let addrs =
          Array.init lanes (fun t ->
              if t < seg then Some (base + gather_index ~i (!j + t)) else None)
        in
        let values = Memory.warp_load mem ~addrs in
        for t = 0 to seg - 1 do
          seg_vals.(t) <- Option.get values.(t)
        done;
        store_segment mem ~lanes ~base:(tmp_base + !j) ~count:seg seg_vals
          ~src_pos:0;
        j := !j + seg
      done;
      (* pass 2: copy the scratch vector back over the row *)
      let j = ref 0 in
      while !j < cols do
        let seg = min lanes (cols - !j) in
        load_segment mem ~lanes ~base:(tmp_base + !j) ~count:seg seg_vals
          ~dst_pos:0;
        store_segment mem ~lanes ~base:(base + !j) ~count:seg seg_vals
          ~src_pos:0;
        j := !j + seg
      done
    done;
    false
  end

(* -- shared row permutation (§4.7), executed ----------------------------- *)

let permute_rows mem ~rows ~cols ~index =
  let cfg = Memory.config mem in
  let lanes = cfg.Config.lanes in
  let w_max = min lanes (max 1 (cfg.Config.coalesce_bytes / cfg.Config.word_bytes)) in
  (* discover the cycles once *)
  let visited = Bytes.make rows '\000' in
  let chains = ref [] in
  for i0 = 0 to rows - 1 do
    if Bytes.get visited i0 = '\000' then begin
      Bytes.set visited i0 '\001';
      let src = index i0 in
      if src <> i0 then begin
        let chain = ref [ i0 ] in
        let i = ref src in
        while !i <> i0 do
          Bytes.set visited !i '\001';
          chain := !i :: !chain;
          i := index !i
        done;
        chains := Array.of_list (List.rev !chain) :: !chains
      end
    end
  done;
  let chains = !chains in
  let sub = Array.make w_max 0 and saved = Array.make w_max 0 in
  let lo = ref 0 in
  while !lo < cols do
    let base_col = !lo in
    let w = min w_max (cols - base_col) in
    List.iter
      (fun chain ->
        let len = Array.length chain in
        let base row = (row * cols) + base_col in
        load_segment mem ~lanes ~base:(base chain.(0)) ~count:w saved
          ~dst_pos:0;
        for t = 0 to len - 2 do
          load_segment mem ~lanes ~base:(base chain.(t + 1)) ~count:w sub
            ~dst_pos:0;
          store_segment mem ~lanes ~base:(base chain.(t)) ~count:w sub
            ~src_pos:0
        done;
        store_segment mem ~lanes ~base:(base chain.(len - 1)) ~count:w saved
          ~src_pos:0)
      chains;
    lo := base_col + w
  done

(* -- whole transpositions ------------------------------------------------ *)

let check mem ~m ~n =
  if m < 1 || n < 1 then invalid_arg "Gpu_exec: dimensions must be positive";
  if Memory.words mem < (m * n) + scratch_words ~m ~n then
    invalid_arg "Gpu_exec: memory too small (need matrix + scratch)"

(* -- per-phase observability --------------------------------------------- *)

let c_phases = Xpose_obs.Metrics.counter "simd.phases_total"
let c_load_tx = Xpose_obs.Metrics.counter "simd.load_transactions_total"
let c_store_tx = Xpose_obs.Metrics.counter "simd.store_transactions_total"
let c_instrs = Xpose_obs.Metrics.counter "simd.instructions_total"

(* Each kernel phase contributes its [Memory.stats] delta — taken with
   snapshot/diff, never by resetting the memory's cumulative counters —
   to the registry and, when the tracer is on, to a ["simd"] span whose
   args carry the delta and its modeled time. *)
let obs_phase mem name f =
  let before = Memory.snapshot mem in
  let delta = ref Memory.zero_stats in
  let wrapped () =
    let r = f () in
    let d = Memory.diff (Memory.snapshot mem) before in
    delta := d;
    Xpose_obs.Metrics.incr c_phases;
    Xpose_obs.Metrics.incr ~by:d.Memory.load_transactions c_load_tx;
    Xpose_obs.Metrics.incr ~by:d.Memory.store_transactions c_store_tx;
    Xpose_obs.Metrics.incr ~by:d.Memory.instructions c_instrs;
    r
  in
  if Xpose_obs.Tracer.enabled () then
    Xpose_obs.Tracer.with_span ~cat:"simd"
      ~args:(fun () ->
        let d = !delta in
        Xpose_obs.Tracer.
          [
            ("load_tx", Int d.Memory.load_transactions);
            ("store_tx", Int d.Memory.store_transactions);
            ("instrs", Int d.Memory.instructions);
            ("useful_bytes", Int d.Memory.useful_bytes);
            ("weighted_bytes", Float d.Memory.weighted_bytes);
            ("model_ns", Float (Memory.time_ns_of (Memory.config mem) d));
          ])
      name wrapped
  else wrapped ()

let finish mem ~since ~m ~n ~onchip =
  let cfg = Memory.config mem in
  let useful = 2 * m * n * cfg.Config.word_bytes in
  let stats = Memory.diff (Memory.snapshot mem) since in
  let time = Memory.time_ns_of cfg stats in
  {
    gbps = (if time <= 0.0 then 0.0 else float_of_int useful /. time);
    time_ns = time;
    stats;
    onchip_row_shuffle = onchip;
  }

let budget_of mem ~occupancy =
  (Memory.config mem).Config.onchip_bytes / 8 / occupancy

let c2r ?(occupancy = 8) mem ~m ~n =
  check mem ~m ~n;
  let since = Memory.snapshot mem in
  let onchip = ref true in
  if m > 1 && n > 1 then begin
    let p = Plan.make ~m ~n in
    if not (Plan.coprime p) then
      obs_phase mem "gpu.rotate_pre" (fun () ->
          rotate_columns mem ~rows:m ~cols:n ~amount:(Plan.rotate_amount p));
    onchip :=
      obs_phase mem "gpu.row_shuffle" (fun () ->
          row_shuffle mem ~rows:m ~cols:n
            ~gather_index:(fun ~i j -> Plan.d'_inv p ~i j)
            ~budget_elements:(budget_of mem ~occupancy)
            ~tmp_base:(m * n));
    obs_phase mem "gpu.col_rotate" (fun () ->
        rotate_columns mem ~rows:m ~cols:n ~amount:(fun j -> j));
    obs_phase mem "gpu.row_permute" (fun () ->
        permute_rows mem ~rows:m ~cols:n ~index:(Plan.q p))
  end;
  finish mem ~since ~m ~n ~onchip:!onchip

let r2c ?(occupancy = 8) mem ~m ~n =
  check mem ~m ~n;
  let since = Memory.snapshot mem in
  let onchip = ref true in
  if m > 1 && n > 1 then begin
    (* Theorem 2: view the buffer as n x m *)
    let p = Plan.make ~m:n ~n:m in
    obs_phase mem "gpu.row_unpermute" (fun () ->
        permute_rows mem ~rows:n ~cols:m ~index:(Plan.q_inv p));
    obs_phase mem "gpu.col_unrotate" (fun () ->
        rotate_columns mem ~rows:n ~cols:m ~amount:(fun j -> -j));
    onchip :=
      obs_phase mem "gpu.row_unshuffle" (fun () ->
          row_shuffle mem ~rows:n ~cols:m
            ~gather_index:(fun ~i j -> Plan.d' p ~i j)
            ~budget_elements:(budget_of mem ~occupancy)
            ~tmp_base:(m * n));
    if not (Plan.coprime p) then
      obs_phase mem "gpu.rotate_post" (fun () ->
          rotate_columns mem ~rows:n ~cols:m
            ~amount:(fun j -> -Plan.rotate_amount p j))
  end;
  finish mem ~since ~m ~n ~onchip:!onchip
