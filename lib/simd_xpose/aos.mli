(** In-place Array-of-Structures ↔ Structure-of-Arrays conversion (§6.1,
    Figure 7).

    An AoS of [structs] records with [fields] words each is a row-major
    [structs x fields] matrix; transposing it in place yields the SoA
    layout (and the R2C inverse converts back).

    The specialized implementation exploits the skinny shape: with the
    algorithm chosen so the {e short} dimension is the one each row
    shuffle and column sub-row spans, every pass streams whole structures
    (contiguous [fields]-element sub-rows) and the row shuffle always fits
    on chip. The general implementation (§5.2) distributes column
    operations over columns — only [fields] independent work units, far
    too few to occupy the machine, which is the paper's stated reason it
    "performs poorly in practice" on data-layout conversion. Both are
    modeled; {!cost_general}'s extra serialization is the utilization
    ratio of its column passes. *)

open Xpose_simd_machine

(** Actual in-place conversion, element-generic (used by the examples and
    correctness tests; the algorithm choice mirrors the specialization). *)
module Make (S : Xpose_core.Storage.S) : sig
  val aos_to_soa : structs:int -> fields:int -> S.t -> unit
  (** C2R on the [structs x fields] view: afterwards the buffer is the
      SoA ([fields x structs] row-major). *)

  val soa_to_aos : structs:int -> fields:int -> S.t -> unit
  (** Exact inverse of {!aos_to_soa}. *)
end

type report = {
  structs : int;
  fields : int;
  elt_bytes : int;
  gbps : float;
  time_ns : float;
  utilization : float;  (** column-pass occupancy, 1.0 when specialized *)
}

val cost_specialized : Config.t -> elt_bytes:int -> structs:int -> fields:int -> report
(** Throughput of the skinny-specialized conversion. *)

val cost_general :
  ?min_parallel_columns:int ->
  Config.t ->
  elt_bytes:int ->
  structs:int ->
  fields:int ->
  report
(** Throughput of the general transposition run on the same shape: column
    passes are served by only [fields] work units out of the
    [min_parallel_columns] (default 256) the machine needs for full
    occupancy. *)
