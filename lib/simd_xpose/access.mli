(** The three SIMD Array-of-Structures access methods compared in the
    paper's Figures 8 (unit-stride) and 9 (random): the in-register
    transpose ("C2R"), compiler-generated element-wise accesses
    ("Direct"), and the hardware's fixed-width vector loads/stores
    ("Vector").

    Each measurement runs the full access pattern over an AoS on the
    simulated machine and reports effective throughput: useful bytes
    (every structure word exactly once) divided by modeled time. The
    C2R and Direct paths also move real data, so tests can verify that
    all methods produce identical memory images. *)

open Xpose_simd_machine

type method_ = C2r | Direct | Vector

val pp_method : Format.formatter -> method_ -> unit

type pattern =
  | Unit_stride  (** warp [w] accesses structures [32w .. 32w+31] *)
  | Random of int array
      (** [perm.(w*lanes + j)] is the structure index lane [j] of warp [w]
          accesses; must be a permutation of [[0, n_structs)] for the
          store image to be comparable *)

type result = {
  gbps : float;
  time_ns : float;
  transactions : int;
  instructions : int;
  useful_bytes : int;
}

val run_store :
  Config.t -> struct_words:int -> n_structs:int -> pattern -> method_ -> result
(** Every lane stores one whole structure (value of word [w] of structure
    [s] is [s * struct_words + w], so the final image is iota and method-
    independent). [n_structs] must be a multiple of [lanes].
    @raise Invalid_argument otherwise. *)

val run_load :
  Config.t -> struct_words:int -> n_structs:int -> pattern -> method_ -> result
(** Every lane loads one whole structure; loaded values are checksummed so
    the data path is exercised. *)

val run_copy :
  Config.t -> struct_words:int -> n_structs:int -> pattern -> method_ -> result
(** Load + store (the paper's Fig. 8b "Copy"): each structure is read from
    one AoS and written to another. *)

val final_image : Config.t -> struct_words:int -> n_structs:int -> pattern -> method_ -> int array
(** Memory image after {!run_store}, for cross-method equality tests
    (only meaningful for the data-moving methods [C2r] and [Direct];
    [Vector] is accounting-only and returns the expected image). *)
