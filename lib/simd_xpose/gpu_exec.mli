(** Executable GPU transposition: the full three-phase C2R/R2C run warp
    by warp against simulated device {!Xpose_simd_machine.Memory}, moving
    real data.

    Where {!Gpu_transpose} prices the kernels analytically, this module
    executes them: every memory instruction is an accounted
    [warp_load]/[warp_store], on-chip staging is explicit, and the final
    memory image is the transpose (checked by the test suite, which also
    cross-validates the analytic model's transaction counts against the
    executed ones).

    The matrix has [m x n] single-word elements (the paper's "float"
    case) and lives at word 0; the memory must provide
    [m*n + max m n] words (the Algorithm 1 scratch vector lives in device
    memory after the matrix). *)

open Xpose_simd_machine

type result = {
  gbps : float;  (** Eq. 37 over the executed kernel's modeled time *)
  time_ns : float;
  stats : Memory.stats;
  onchip_row_shuffle : bool;
}

val scratch_words : m:int -> n:int -> int
(** Words the memory must have beyond the matrix: [max m n]. *)

val c2r : ?occupancy:int -> Memory.t -> m:int -> n:int -> result
(** Transpose the row-major [m x n] single-word-element matrix at word 0
    in place (C2R; the result is the [n x m] row-major transpose).
    [occupancy] sets the §4.5 staging threshold as in {!Gpu_transpose}.
    @raise Invalid_argument if the memory is too small. *)

val r2c : ?occupancy:int -> Memory.t -> m:int -> n:int -> result
(** The R2C inverse on the same storage convention: transposes a
    row-major [m x n] matrix using the R2C pass order (viewing the buffer
    as [n x m] per Theorem 2). *)
