(** Out-of-core matrices: memory-mapped files as transposition buffers.

    Because the decomposition needs only [O(max(m,n))] auxiliary memory,
    matrices larger than RAM can be transposed in place in their backing
    file — the mapped buffer is an ordinary float64 bigarray, so it works
    directly with {!Xpose_core.Kernels_f64} and every functor instance
    over [Storage.Float64]. {!map_range} maps a bounded slice of the
    file, which is what the windowed [Xpose_ooc] engine builds on.

    A note on unmapping: the OCaml runtime releases a mapping when the
    bigarray is garbage-collected; there is no eager [munmap] in the
    stdlib. Dropping every reference to a mapped slice makes it
    collectable, and the kernel reclaims the (clean or synced) pages
    under memory pressure either way, so a caller's {e logical} residency
    — the mappings it still holds — is the bound that matters. *)

val create : path:string -> elements:int -> unit
(** Create (or truncate) a file holding [elements] float64 zeros.
    @raise Unix.Unix_error on I/O failure. *)

val with_fd : ?write:bool -> path:string -> (Unix.file_descr -> 'a) -> 'a
(** [with_fd ~path f] opens [path] ([O_RDWR] when [write], the default;
    [O_RDONLY] otherwise), applies [f], and closes the fd (also on
    exception).
    @raise Unix.Unix_error on I/O failure. *)

val map_range :
  ?write:bool -> Unix.file_descr -> pos:int -> len:int -> Xpose_core.Storage.Float64.t
(** [map_range fd ~pos ~len] maps the [len] float64 elements starting at
    element offset [pos] of the file. When [write] (the default) the
    mapping is shared — stores reach the file — and the fd must be open
    read-write; a read-only map is private (copy-on-write). [pos] need
    not be page-aligned; the runtime aligns the underlying mapping.
    @raise Invalid_argument if [pos] or [len] is negative;
    @raise Unix.Unix_error / Sys_error on I/O failure. *)

val with_map :
  ?write:bool -> path:string -> (Xpose_core.Storage.Float64.t -> 'a) -> 'a
(** [with_map ~path f] maps the whole file as a float64 array and applies
    [f]. When [write] (the default) the fd is opened read-write and the
    file is [fsync]ed after [f] returns; with [~write:false] the fd is
    opened read-only, the mapping is copy-on-write, and the sync is
    skipped. The file length must be a multiple of 8 bytes.
    @raise Invalid_argument on a misaligned file;
    @raise Unix.Unix_error on I/O failure. *)

val transpose_file :
  ?ws:Xpose_core.Workspace.F64.t -> path:string -> m:int -> n:int -> unit -> unit
(** Transpose the row-major [m x n] float64 matrix stored in [path], in
    place in the file, using the specialized kernels and [max m n]
    scratch in RAM. Scratch comes from [ws] when given (repeated file
    transposes on one workspace stop churning the allocator); a fresh
    workspace is created per call otherwise.
    @raise Invalid_argument if the file does not hold exactly [m*n]
    elements. *)
