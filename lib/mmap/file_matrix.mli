(** Out-of-core matrices: memory-mapped files as transposition buffers.

    Because the decomposition needs only [O(max(m,n))] auxiliary memory,
    matrices larger than RAM can be transposed in place in their backing
    file — the mapped buffer is an ordinary float64 bigarray, so it works
    directly with {!Xpose_core.Kernels_f64} and every functor instance
    over [Storage.Float64]. *)

val create : path:string -> elements:int -> unit
(** Create (or truncate) a file holding [elements] float64 zeros.
    @raise Unix.Unix_error on I/O failure. *)

val with_map :
  ?write:bool -> path:string -> (Xpose_core.Storage.Float64.t -> 'a) -> 'a
(** [with_map ~path f] maps the whole file as a float64 array, applies
    [f], syncs (when [write], the default), and unmaps before returning.
    The file length must be a multiple of 8 bytes.
    @raise Invalid_argument on a misaligned file;
    @raise Unix.Unix_error on I/O failure. *)

val transpose_file : path:string -> m:int -> n:int -> unit
(** Transpose the row-major [m x n] float64 matrix stored in [path], in
    place in the file, using the specialized kernels and [max m n]
    scratch in RAM.
    @raise Invalid_argument if the file does not hold exactly [m*n]
    elements. *)
