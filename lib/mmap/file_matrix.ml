let create ~path ~elements =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd (elements * 8))

let with_fd ?(write = true) ~path f =
  let flags = if write then [ Unix.O_RDWR ] else [ Unix.O_RDONLY ] in
  let fd = Unix.openfile path flags 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> f fd)

let map_range ?(write = true) fd ~pos ~len =
  if pos < 0 || len < 0 then
    invalid_arg "File_matrix.map_range: negative pos or len";
  let gen =
    Unix.map_file fd ~pos:(Int64.of_int (pos * 8)) Bigarray.float64
      Bigarray.c_layout write [| len |]
  in
  Bigarray.array1_of_genarray gen

let with_map ?(write = true) ~path f =
  with_fd ~write ~path (fun fd ->
      let bytes = (Unix.fstat fd).Unix.st_size in
      if bytes mod 8 <> 0 then
        invalid_arg "File_matrix.with_map: file length is not a multiple of 8";
      let r = f (map_range ~write fd ~pos:0 ~len:(bytes / 8)) in
      (* A shared writable mapping reaches the page cache as soon as the
         stores land; the fsync pushes it to stable storage before the
         fd closes. The read-only path maps privately and has nothing to
         sync. *)
      if write then Unix.fsync fd;
      r)

let transpose_file ?ws ~path ~m ~n () =
  if m < 1 || n < 1 then
    invalid_arg "File_matrix.transpose_file: dimensions must be positive";
  with_map ~path (fun buf ->
      if Bigarray.Array1.dim buf <> m * n then
        invalid_arg "File_matrix.transpose_file: file does not hold m*n elements";
      Xpose_core.Kernels_f64.transpose ?ws ~m ~n buf)
