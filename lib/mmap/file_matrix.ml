let create ~path ~elements =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd (elements * 8))

let with_map ?(write = true) ~path f =
  let flags = if write then [ Unix.O_RDWR ] else [ Unix.O_RDONLY ] in
  let fd = Unix.openfile path flags 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let bytes = (Unix.fstat fd).Unix.st_size in
      if bytes mod 8 <> 0 then
        invalid_arg "File_matrix.with_map: file length is not a multiple of 8";
      let gen =
        Unix.map_file fd Bigarray.float64 Bigarray.c_layout write
          [| bytes / 8 |]
      in
      f (Bigarray.array1_of_genarray gen))

let transpose_file ~path ~m ~n =
  if m < 1 || n < 1 then
    invalid_arg "File_matrix.transpose_file: dimensions must be positive";
  with_map ~path (fun buf ->
      if Bigarray.Array1.dim buf <> m * n then
        invalid_arg "File_matrix.transpose_file: file does not hold m*n elements";
      Xpose_core.Kernels_f64.transpose ~m ~n buf)
