(** Planner validation for the rank-N permutation subsystem: for a set of
    representative axis permutations, time {e every} minimal-pass
    candidate decomposition and check that the cost model's choice is the
    (or near the) measured fastest. This is the experiment counterpart of
    the paper's AoS/SoA conversions (Figure 7): NCHW<->NHWC and the full
    axis reversal are exactly the layout changes the decomposition is
    sold on, generalized past rank 3. *)

open Xpose_core
module S = Storage.Float64
module Nd = Tensor_nd.Make (S)
module P = Xpose_permute

let problems ~base =
  let b = max 2 base in
  [
    ("reverse3", [| 2 * b; (3 * b / 2) + 1; b |], [| 2; 1; 0 |]);
    ("nchw->nhwc", [| b; 3; b; b |], [| 0; 2; 3; 1 |]);
    ("nhwc->nchw", [| b; b; b; 3 |], [| 0; 3; 1; 2 |]);
    ("shuffle5", [| b; 3; b; 2; b |], [| 4; 2; 0; 3; 1 |]);
  ]

let run ?(base = 24) ?(repeats = 3) () =
  let rows = ref [] in
  let chosen_fastest = ref 0 in
  let concordant = ref 0 in
  let pairs = ref 0 in
  let slowdowns = ref [] in
  let spreads = ref [] in
  (* best-of for the verdicts, but keep every sample so the outcome also
     records how noisy the timings were (worst/best per candidate) *)
  let time_candidate buf (c : P.Permute.plan) =
    let best, samples =
      Timing.best_of_samples ~repeats (fun () -> Nd.execute c buf)
    in
    let worst = Array.fold_left Float.max best samples in
    spreads := (if best > 0.0 then worst /. best else 1.0) :: !spreads;
    best
  in
  let problems = problems ~base in
  List.iter
    (fun (name, dims, perm) ->
      let cands = Tensor_nd.candidates ~dims ~perm in
      let buf = S.create (P.Shape.nelems dims) in
      Storage.fill_iota (module S) buf;
      let timed = List.map (fun c -> (c, time_candidate buf c)) cands in
      let fastest_ns =
        List.fold_left (fun acc (_, ns) -> min acc ns) infinity timed
      in
      let chosen_ns = snd (List.hd timed) in
      if chosen_ns <= fastest_ns *. 1.0001 then incr chosen_fastest;
      slowdowns := (chosen_ns /. fastest_ns) :: !slowdowns;
      (* concordance between the model's order and the measured order *)
      let a = Array.of_list timed in
      Array.iteri
        (fun i (ci, ti) ->
          Array.iteri
            (fun j ((cj : P.Permute.plan), tj) ->
              if i < j then begin
                incr pairs;
                let model =
                  P.Cost.compare ci.P.Permute.cost cj.P.Permute.cost
                in
                if (model <= 0 && ti <= tj) || (model >= 0 && ti >= tj) then
                  incr concordant
              end)
            a)
        a;
      List.iteri
        (fun rank (c, ns) ->
          rows :=
            [
              (if rank = 0 then name else "");
              Format.asprintf "%a" P.Shape.pp_dims dims;
              Format.asprintf "%a" P.Shape.pp_perm perm;
              string_of_int c.P.Permute.cost.P.Cost.passes;
              Printf.sprintf "%.0f" c.P.Permute.cost.P.Cost.score;
              Printf.sprintf "%.3f" (ns /. 1e6);
              (if rank = 0 then "chosen" else "")
              ^ (if ns <= fastest_ns *. 1.0001 then
                   if rank = 0 then "+fastest" else "fastest"
                 else "");
            ]
            :: !rows)
        timed)
    problems;
  let n = List.length problems in
  let slow = Array.of_list !slowdowns in
  let rendered =
    "Cost-model choice vs measured time, every minimal-pass candidate \
     (float64, in place)\n"
    ^ Render.table
        ~header:
          [ "problem"; "dims"; "perm"; "passes"; "score"; "ms"; "verdict" ]
        ~rows:(List.rev !rows)
    ^ "\nThe planner's pick (first row of each problem) should be the \
       measured fastest, or within noise of it.\n"
  in
  {
    Outcome.id = "permute";
    title = "Rank-N permutation planner: predicted vs measured cost";
    rendered;
    metrics =
      [
        ("chosen_is_fastest_frac", float_of_int !chosen_fastest /. float_of_int n);
        ( "pairwise_order_agreement",
          if !pairs = 0 then 1.0
          else float_of_int !concordant /. float_of_int !pairs );
        ("max_chosen_slowdown", (Stats.summarize slow).Stats.max);
        ( "max_repeat_spread",
          (Stats.summarize (Array.of_list !spreads)).Stats.max );
      ];
    figures = [];
  }
