(** Workload generators matching the paper's benchmark distributions. *)

val random_dims : Rng.t -> lo:int -> hi:int -> count:int -> (int * int) array
(** [count] pairs [(m, n)] with both dims uniform in [[lo, hi)] — the
    paper's random-matrix distribution (§5.1: [1000, 10000), §5.2:
    [1000, 20000)). *)

val axis : lo:int -> hi:int -> points:int -> float array
(** [points] evenly spaced values covering [[lo, hi]] (landscape grid
    axes, Figs. 4-5). *)

val aos_shapes :
  Rng.t ->
  count:int ->
  fields_lo:int ->
  fields_hi:int ->
  structs_lo:int ->
  structs_hi:int ->
  (int * int) array
(** [(structs, fields)] pairs; fields uniform, structs log-uniform across
    the given range (§6.1 uses fields in [2, 32) and structs in
    [10^4, 10^7)). *)

val struct_bytes_axis : word_bytes:int -> max_bytes:int -> int array
(** Struct sizes in words for a bytes axis [word, 2*word, ..., max_bytes]
    (Figs. 8-9 sweep 4..64 bytes). *)
