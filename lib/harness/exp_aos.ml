(** Figure 7: in-place Array-of-Structures to Structure-of-Arrays
    conversion throughput with the skinny-matrix specialization (§6.1).
    Paper setup: 10000 random AoS, structure size in [2, 32) 64-bit
    fields, [10^4, 10^7) structures. *)

open Xpose_simd_machine
open Xpose_simd

let run ?(seed = 11) ?(samples = 2000) ?(structs_lo = 10_000)
    ?(structs_hi = 10_000_000) () =
  let cfg = Config.k20c in
  let rng = Rng.create ~seed in
  let shapes =
    Workload.aos_shapes rng ~count:samples ~fields_lo:2 ~fields_hi:32
      ~structs_lo ~structs_hi
  in
  let specialized =
    Array.map
      (fun (structs, fields) ->
        (Aos.cost_specialized cfg ~elt_bytes:8 ~structs ~fields).Aos.gbps)
      shapes
  in
  let general =
    Array.map
      (fun (structs, fields) ->
        (Aos.cost_general cfg ~elt_bytes:8 ~structs ~fields).Aos.gbps)
      shapes
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Render.histogram ~bins:16
       ~title:"AoS -> SoA in-place conversion, skinny specialization"
       ~unit:"GB/s" specialized);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Render.histogram ~bins:16
       ~title:"same conversion through the general transposition"
       ~unit:"GB/s" general);
  let s = Stats.summarize specialized in
  {
    Outcome.id = "fig7";
    title =
      Printf.sprintf
        "AoS->SoA conversion throughput (Figure 7); %d samples, fields in \
         [2,32), structs in [%d, %d)"
        samples structs_lo structs_hi;
    rendered = Buffer.contents b;
    metrics =
      [
        ("median_specialized_gbps", s.Stats.median);
        ("max_specialized_gbps", s.Stats.max);
        ("median_general_gbps", Stats.median general);
      ];
    figures =
      [
        ( "fig7_specialized.svg",
          Svg.histogram ~title:"AoS -> SoA, skinny specialization"
            ~unit:"GB/s" specialized );
      ];
  }
