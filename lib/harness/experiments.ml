type spec = {
  id : string;
  description : string;
  run : scale:float -> Outcome.t;
}

let scaled base scale = max 1 (int_of_float (float_of_int base *. scale))

(* Headline observability counters: every experiment reports how much
   instrumented work it drove as [obs.<counter>] metric deltas, so a
   regression that silently skips passes (or doubles them) shows up in
   the recorded outcome, not just in wall time. *)
let headline_counters =
  [
    "xpose.passes_total";
    "xpose.pred_touches_total";
    "pool.barriers_total";
    "pool.chunks_total";
    "simd.phases_total";
    "simd.load_transactions_total";
    "simd.store_transactions_total";
  ]

let with_counter_deltas run ~scale =
  let read name = Xpose_obs.Metrics.(counter_value (counter name)) in
  let before = List.map (fun name -> (name, read name)) headline_counters in
  let o = run ~scale in
  let deltas =
    List.filter_map
      (fun (name, b) ->
        let d = read name - b in
        if d = 0 then None else Some ("obs." ^ name, float_of_int d))
      before
  in
  { o with Outcome.metrics = o.Outcome.metrics @ deltas }

let all =
  List.map (fun s -> { s with run = with_counter_deltas s.run })
  @@ [
    {
      id = "fig1";
      description = "C2R/R2C illustration, m=3 n=8 (Figure 1)";
      run = (fun ~scale:_ -> Exp_figures.fig1 ());
    };
    {
      id = "fig2";
      description = "C2R phases on a 4x8 matrix (Figure 2)";
      run = (fun ~scale:_ -> Exp_figures.fig2 ());
    };
    {
      id = "fig3";
      description = "CPU throughput histograms (Figure 3)";
      run =
        (fun ~scale ->
          Exp_cpu.run ~samples:(scaled 24 scale)
            ~dim_hi:(min 4000 (scaled 600 scale))
            ());
    };
    {
      id = "table1";
      description = "CPU median throughputs (Table 1)";
      run =
        (fun ~scale ->
          Exp_cpu.table1 ~samples:(scaled 24 scale)
            ~dim_hi:(min 4000 (scaled 600 scale))
            ());
    };
    {
      id = "fig4";
      description = "C2R performance landscape (Figure 4)";
      run = (fun ~scale -> Exp_landscape.fig4 ~points:(min 49 (scaled 17 scale)) ());
    };
    {
      id = "fig5";
      description = "R2C performance landscape (Figure 5)";
      run = (fun ~scale -> Exp_landscape.fig5 ~points:(min 49 (scaled 17 scale)) ());
    };
    {
      id = "fig6";
      description = "GPU throughput histograms (Figure 6)";
      run = (fun ~scale -> Exp_gpu_median.run ~samples:(scaled 200 scale) ());
    };
    {
      id = "table2";
      description = "GPU median throughputs (Table 2)";
      run = (fun ~scale -> Exp_gpu_median.table2 ~samples:(scaled 200 scale) ());
    };
    {
      id = "fig7";
      description = "AoS->SoA conversion throughput (Figure 7)";
      run = (fun ~scale -> Exp_aos.run ~samples:(scaled 2000 scale) ());
    };
    {
      id = "fig8";
      description = "Unit-stride AoS access bandwidth (Figure 8)";
      run = (fun ~scale -> Exp_access.fig8 ~n_structs:(32 * scaled 64 scale) ());
    };
    {
      id = "fig9";
      description = "Random AoS access bandwidth (Figure 9)";
      run = (fun ~scale -> Exp_access.fig9 ~n_structs:(32 * scaled 64 scale) ());
    };
    {
      id = "permute";
      description = "Rank-N permutation planner, predicted vs measured";
      run = (fun ~scale -> Exp_permute.run ~base:(min 48 (scaled 24 scale)) ());
    };
    {
      id = "cycles";
      description = "Cycle-length imbalance motivating the decomposition (§1)";
      run =
        (fun ~scale ->
          Exp_cycles.run ~samples:(scaled 12 scale)
            ~hi:(min 2000 (scaled 400 scale))
            ());
    };
  ]

let find id = List.find (fun s -> s.id = id) all

let ids () = List.map (fun s -> s.id) all
