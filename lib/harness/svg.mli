(** Standalone SVG renderings of the paper's three figure styles, so
    `experiments --out DIR` can regenerate graphical artifacts without
    any plotting dependency. All functions return a complete SVG
    document as a string. *)

val histogram :
  ?width:int ->
  ?height:int ->
  ?bins:int ->
  title:string ->
  unit:string ->
  float array ->
  string
(** Vertical-bar histogram with the median marked by a dashed rule
    (the style of the paper's Figures 3, 6, 7).
    @raise Invalid_argument on an empty sample. *)

val heatmap :
  ?width:int ->
  ?height:int ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  xs:float array ->
  ys:float array ->
  (int -> int -> float) ->
  string
(** Color-mapped landscape over a grid, with a value-range legend
    (Figures 4, 5). @raise Invalid_argument on empty axes. *)

val series :
  ?width:int ->
  ?height:int ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  xs:float array ->
  (string * float array) list ->
  string
(** Multi-series line chart with a legend (Figures 8, 9).
    @raise Invalid_argument on empty or mismatched series. *)

val write_file : path:string -> string -> unit
(** Write a document to disk. *)
