let buf_addf b fmt = Printf.ksprintf (Buffer.add_string b) fmt

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  b

let header b ~width ~height ~title =
  buf_addf b
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
     <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\" font-family=\"sans-serif\">\n"
    width height width height;
  buf_addf b
    "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n\
     <text x=\"%d\" y=\"18\" font-size=\"13\" text-anchor=\"middle\" \
     font-weight=\"bold\">%s</text>\n"
    width height (width / 2)
    (Buffer.contents (escape title))

let footer b = Buffer.add_string b "</svg>\n"

(* left/right/top/bottom margins of the plot area *)
let ml = 55 and mr = 20 and mt = 30 and mb = 42

let axis_labels b ~width ~height ~xlabel ~ylabel =
  buf_addf b
    "<text x=\"%d\" y=\"%d\" font-size=\"11\" text-anchor=\"middle\">%s</text>\n"
    ((ml + width - mr) / 2)
    (height - 8)
    (Buffer.contents (escape xlabel));
  buf_addf b
    "<text x=\"14\" y=\"%d\" font-size=\"11\" text-anchor=\"middle\" \
     transform=\"rotate(-90 14 %d)\">%s</text>\n"
    ((mt + height - mb) / 2)
    ((mt + height - mb) / 2)
    (Buffer.contents (escape ylabel))

let histogram ?(width = 480) ?(height = 300) ?(bins = 24) ~title ~unit values =
  if Array.length values = 0 then invalid_arg "Svg.histogram: empty sample";
  if bins < 1 then invalid_arg "Svg.histogram: bins";
  let lo = Array.fold_left Float.min values.(0) values in
  let hi = Array.fold_left Float.max values.(0) values in
  let hi = if hi = lo then lo +. 1.0 else hi in
  let counts = Array.make bins 0 in
  Array.iter
    (fun v ->
      let k = int_of_float (float_of_int bins *. (v -. lo) /. (hi -. lo)) in
      let k = if k >= bins then bins - 1 else k in
      counts.(k) <- counts.(k) + 1)
    values;
  let maxc = Array.fold_left max 1 counts in
  let b = Buffer.create 4096 in
  header b ~width ~height ~title;
  let pw = width - ml - mr and ph = height - mt - mb in
  let x_of v = float_of_int ml +. ((v -. lo) /. (hi -. lo) *. float_of_int pw) in
  (* bars *)
  Array.iteri
    (fun k c ->
      if c > 0 then begin
        let x0 = float_of_int ml +. (float_of_int (k * pw) /. float_of_int bins) in
        let bw = float_of_int pw /. float_of_int bins in
        let bh = float_of_int (c * ph) /. float_of_int maxc in
        buf_addf b
          "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
           fill=\"#4878a8\" stroke=\"white\" stroke-width=\"0.5\"/>\n"
          x0
          (float_of_int (mt + ph) -. bh)
          bw bh
      end)
    counts;
  (* frame + ticks *)
  buf_addf b
    "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"none\" \
     stroke=\"black\"/>\n"
    ml mt pw ph;
  List.iter
    (fun frac ->
      let v = lo +. ((hi -. lo) *. frac) in
      buf_addf b
        "<text x=\"%.1f\" y=\"%d\" font-size=\"10\" text-anchor=\"middle\">%.2f</text>\n"
        (x_of v) (mt + ph + 14) v)
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
  buf_addf b
    "<text x=\"%d\" y=\"%d\" font-size=\"10\" text-anchor=\"end\">%d</text>\n"
    (ml - 4) (mt + 10) maxc;
  buf_addf b
    "<text x=\"%d\" y=\"%d\" font-size=\"10\" text-anchor=\"end\">0</text>\n"
    (ml - 4) (mt + ph) ;
  (* median marker *)
  let med = Stats.median values in
  buf_addf b
    "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"#c03028\" \
     stroke-dasharray=\"5,3\" stroke-width=\"1.5\"/>\n"
    (x_of med) mt (x_of med) (mt + ph);
  buf_addf b
    "<text x=\"%.1f\" y=\"%d\" font-size=\"10\" fill=\"#c03028\">median %.2f</text>\n"
    (x_of med +. 4.0) (mt + 12) med;
  axis_labels b ~width ~height ~xlabel:unit ~ylabel:"samples";
  footer b;
  Buffer.contents b

(* blue -> yellow -> red color ramp, like typical throughput landscapes *)
let ramp t =
  let t = Float.max 0.0 (Float.min 1.0 t) in
  let r, g, bl =
    if t < 0.5 then
      let u = t *. 2.0 in
      (int_of_float (68.0 +. (u *. (253.0 -. 68.0))),
       int_of_float (84.0 +. (u *. (191.0 -. 84.0))),
       int_of_float (160.0 -. (u *. (160.0 -. 60.0))))
    else
      let u = (t -. 0.5) *. 2.0 in
      (int_of_float (253.0 -. (u *. (253.0 -. 200.0))),
       int_of_float (191.0 -. (u *. (191.0 -. 40.0))),
       int_of_float (60.0 -. (u *. (60.0 -. 30.0))))
  in
  Printf.sprintf "#%02x%02x%02x" r g bl

let heatmap ?(width = 520) ?(height = 440) ~title ~xlabel ~ylabel ~xs ~ys f =
  let nx = Array.length xs and ny = Array.length ys in
  if nx = 0 || ny = 0 then invalid_arg "Svg.heatmap: empty axes";
  let vals = Array.init ny (fun yi -> Array.init nx (fun xi -> f xi yi)) in
  let lo = ref vals.(0).(0) and hi = ref vals.(0).(0) in
  Array.iter
    (Array.iter (fun v ->
         if v < !lo then lo := v;
         if v > !hi then hi := v))
    vals;
  let range = if !hi = !lo then 1.0 else !hi -. !lo in
  let b = Buffer.create 16384 in
  header b ~width ~height ~title;
  let legend_w = 60 in
  let pw = width - ml - mr - legend_w and ph = height - mt - mb in
  let cw = float_of_int pw /. float_of_int nx in
  let ch = float_of_int ph /. float_of_int ny in
  for yi = 0 to ny - 1 do
    for xi = 0 to nx - 1 do
      let t = (vals.(yi).(xi) -. !lo) /. range in
      buf_addf b
        "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" fill=\"%s\"/>\n"
        (float_of_int ml +. (float_of_int xi *. cw))
        (float_of_int mt +. (float_of_int yi *. ch))
        (cw +. 0.5) (ch +. 0.5) (ramp t)
    done
  done;
  buf_addf b
    "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"none\" stroke=\"black\"/>\n"
    ml mt pw ph;
  (* axis extremes *)
  buf_addf b
    "<text x=\"%d\" y=\"%d\" font-size=\"10\">%.0f</text>\n" ml (mt + ph + 14)
    xs.(0);
  buf_addf b
    "<text x=\"%d\" y=\"%d\" font-size=\"10\" text-anchor=\"end\">%.0f</text>\n"
    (ml + pw) (mt + ph + 14)
    xs.(nx - 1);
  buf_addf b
    "<text x=\"%d\" y=\"%d\" font-size=\"10\" text-anchor=\"end\">%.0f</text>\n"
    (ml - 4) (mt + 10) ys.(0);
  buf_addf b
    "<text x=\"%d\" y=\"%d\" font-size=\"10\" text-anchor=\"end\">%.0f</text>\n"
    (ml - 4) (mt + ph) ys.(ny - 1);
  (* legend: vertical ramp *)
  let lx = ml + pw + 18 in
  let steps = 32 in
  for s = 0 to steps - 1 do
    let t = 1.0 -. (float_of_int s /. float_of_int (steps - 1)) in
    buf_addf b
      "<rect x=\"%d\" y=\"%.2f\" width=\"14\" height=\"%.2f\" fill=\"%s\"/>\n"
      lx
      (float_of_int mt +. (float_of_int (s * ph) /. float_of_int steps))
      ((float_of_int ph /. float_of_int steps) +. 0.5)
      (ramp t)
  done;
  buf_addf b "<text x=\"%d\" y=\"%d\" font-size=\"10\">%.1f</text>\n" (lx + 18)
    (mt + 10) !hi;
  buf_addf b "<text x=\"%d\" y=\"%d\" font-size=\"10\">%.1f</text>\n" (lx + 18)
    (mt + ph) !lo;
  axis_labels b ~width ~height ~xlabel ~ylabel;
  footer b;
  Buffer.contents b

let palette = [| "#4878a8"; "#c03028"; "#489048"; "#a060a8"; "#b08030" |]

let series ?(width = 520) ?(height = 340) ~title ~xlabel ~ylabel ~xs named =
  let nx = Array.length xs in
  if nx = 0 || named = [] then invalid_arg "Svg.series: empty data";
  List.iter
    (fun (_, ys) ->
      if Array.length ys <> nx then invalid_arg "Svg.series: length mismatch")
    named;
  let lo = ref infinity and hi = ref neg_infinity in
  List.iter
    (fun (_, ys) ->
      Array.iter
        (fun v ->
          if v < !lo then lo := v;
          if v > !hi then hi := v)
        ys)
    named;
  let lo = Float.min 0.0 !lo in
  let hi = if !hi = lo then lo +. 1.0 else !hi in
  let b = Buffer.create 8192 in
  header b ~width ~height ~title;
  let pw = width - ml - mr and ph = height - mt - mb in
  let x_of i =
    float_of_int ml
    +. ((xs.(i) -. xs.(0)) /. (xs.(nx - 1) -. xs.(0) +. 1e-9) *. float_of_int pw)
  in
  let y_of v =
    float_of_int (mt + ph) -. ((v -. lo) /. (hi -. lo) *. float_of_int ph)
  in
  List.iteri
    (fun si (name, ys) ->
      let color = palette.(si mod Array.length palette) in
      let pts = Buffer.create 256 in
      for i = 0 to nx - 1 do
        if i > 0 then Buffer.add_char pts ' ';
        buf_addf pts "%.1f,%.1f" (x_of i) (y_of ys.(i))
      done;
      buf_addf b
        "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\"/>\n"
        (Buffer.contents pts) color;
      for i = 0 to nx - 1 do
        buf_addf b "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.4\" fill=\"%s\"/>\n"
          (x_of i) (y_of ys.(i)) color
      done;
      (* legend entry *)
      let ly = mt + 14 + (si * 16) in
      buf_addf b
        "<rect x=\"%d\" y=\"%d\" width=\"12\" height=\"3\" fill=\"%s\"/>\n"
        (ml + 10) (ly - 4) color;
      buf_addf b "<text x=\"%d\" y=\"%d\" font-size=\"11\">%s</text>\n"
        (ml + 28) ly
        (Buffer.contents (escape name)))
    named;
  buf_addf b
    "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"none\" stroke=\"black\"/>\n"
    ml mt pw ph;
  (* ticks *)
  buf_addf b "<text x=\"%d\" y=\"%d\" font-size=\"10\">%.0f</text>\n" ml
    (mt + ph + 14) xs.(0);
  buf_addf b
    "<text x=\"%d\" y=\"%d\" font-size=\"10\" text-anchor=\"end\">%.0f</text>\n"
    (ml + pw) (mt + ph + 14)
    xs.(nx - 1);
  buf_addf b
    "<text x=\"%d\" y=\"%d\" font-size=\"10\" text-anchor=\"end\">%.1f</text>\n"
    (ml - 4) (mt + 10) hi;
  buf_addf b
    "<text x=\"%d\" y=\"%d\" font-size=\"10\" text-anchor=\"end\">%.1f</text>\n"
    (ml - 4) (mt + ph) lo;
  axis_labels b ~width ~height ~xlabel ~ylabel;
  footer b;
  Buffer.contents b

let write_file ~path doc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc doc)
