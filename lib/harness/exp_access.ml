(** Figures 8 and 9: SIMD Array-of-Structures access bandwidth versus
    structure size for the three methods (C2R in-register transpose,
    Direct element-wise, hardware Vector), unit-stride and random,
    stores/copies and scatters/gathers — simulated exactly, warp by
    warp. *)

open Xpose_simd_machine
open Xpose_simd

let methods = [ ("C2R", Access.C2r); ("Direct", Access.Direct); ("Vector", Access.Vector) ]

let sweep cfg ~n_structs ~pattern_of runner =
  let sizes = Workload.struct_bytes_axis ~word_bytes:cfg.Config.word_bytes ~max_bytes:64 in
  let xs = Array.map (fun w -> float_of_int (w * cfg.Config.word_bytes)) sizes in
  let named =
    List.map
      (fun (name, meth) ->
        ( name,
          Array.map
            (fun words ->
              (runner cfg ~struct_words:words ~n_structs (pattern_of words) meth)
                .Access.gbps)
            sizes ))
      methods
  in
  (xs, named)

let metrics_of prefix xs named =
  (* headline: value at 64-byte structs, and the C2R/Direct ratio there *)
  let last = Array.length xs - 1 in
  let value name = Array.get (List.assoc name named) last in
  [
    (prefix ^ "_c2r_64B_gbps", value "C2R");
    (prefix ^ "_direct_64B_gbps", value "Direct");
    (prefix ^ "_vector_64B_gbps", value "Vector");
    (prefix ^ "_c2r_over_direct_64B", value "C2R" /. value "Direct");
  ]

let fig8 ?(n_structs = 2048) () =
  let cfg = Config.k20c in
  let unit _ = Access.Unit_stride in
  let xs_s, store = sweep cfg ~n_structs ~pattern_of:unit Access.run_store in
  let xs_c, copy = sweep cfg ~n_structs ~pattern_of:unit Access.run_copy in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Render.series ~title:"Figure 8a: unit-stride AoS store bandwidth"
       ~xlabel:"struct bytes" ~unit:"GB/s" ~xs:xs_s store);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Render.series ~title:"Figure 8b: unit-stride AoS copy bandwidth"
       ~xlabel:"struct bytes" ~unit:"GB/s" ~xs:xs_c copy);
  {
    Outcome.id = "fig8";
    title = "Unit-stride AoS access bandwidth vs structure size (Figure 8)";
    rendered = Buffer.contents b;
    metrics = metrics_of "store" xs_s store @ metrics_of "copy" xs_c copy;
    figures =
      [
        ( "fig8a_store.svg",
          Svg.series ~title:"Unit-stride AoS store" ~xlabel:"struct bytes"
            ~ylabel:"GB/s" ~xs:xs_s store );
        ( "fig8b_copy.svg",
          Svg.series ~title:"Unit-stride AoS copy" ~xlabel:"struct bytes"
            ~ylabel:"GB/s" ~xs:xs_c copy );
      ];
  }

let fig9 ?(n_structs = 2048) ?(seed = 3) () =
  let cfg = Config.k20c in
  let rng = Rng.create ~seed in
  let pattern_of _ = Access.Random (Rng.permutation rng n_structs) in
  let xs_s, scatter = sweep cfg ~n_structs ~pattern_of Access.run_store in
  let xs_g, gather = sweep cfg ~n_structs ~pattern_of Access.run_load in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Render.series ~title:"Figure 9a: random AoS scatter bandwidth"
       ~xlabel:"struct bytes" ~unit:"GB/s" ~xs:xs_s scatter);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Render.series ~title:"Figure 9b: random AoS gather bandwidth"
       ~xlabel:"struct bytes" ~unit:"GB/s" ~xs:xs_g gather);
  {
    Outcome.id = "fig9";
    title = "Random AoS access bandwidth vs structure size (Figure 9)";
    rendered = Buffer.contents b;
    metrics = metrics_of "scatter" xs_s scatter @ metrics_of "gather" xs_g gather;
    figures =
      [
        ( "fig9a_scatter.svg",
          Svg.series ~title:"Random AoS scatter" ~xlabel:"struct bytes"
            ~ylabel:"GB/s" ~xs:xs_s scatter );
        ( "fig9b_gather.svg",
          Svg.series ~title:"Random AoS gather" ~xlabel:"struct bytes"
            ~ylabel:"GB/s" ~xs:xs_g gather );
      ];
  }
