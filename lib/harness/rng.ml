(* SplitMix64 with OCaml's 63-bit ints: we keep the low 62 bits to stay
   non-negative. Quality is ample for workload generation. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_u64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t = Int64.to_int (Int64.shift_right_logical (next_u64 t) 2)

let int_range t ~lo ~hi =
  if hi <= lo then invalid_arg "Rng.int_range: empty range";
  lo + (next t mod (hi - lo))

let float_unit t = float_of_int (next t) /. 4611686018427387904.0 (* 2^62 *)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_range t ~lo:0 ~hi:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n Fun.id in
  shuffle t a;
  a

let split t = { state = next_u64 t }
