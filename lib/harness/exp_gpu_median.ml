(** Figure 6 and Table 2: GPU in-place transposition throughput
    distributions over random matrix sizes — Sung's tiled implementation
    (32-bit), the decomposed algorithm on 32-bit, and on 64-bit elements.
    Paper setup: m,n uniform in [1000, 20000) on a Tesla K20c; here the
    same distribution priced on the simulated K20c. *)

open Xpose_simd_machine
open Xpose_simd

let run ?(seed = 7) ?(samples = 200) ?(lo = 1000) ?(hi = 20000) () =
  let cfg = Config.k20c in
  let rng = Rng.create ~seed in
  let dims = Workload.random_dims rng ~lo ~hi ~count:samples in
  let sung =
    Array.map
      (fun (m, n) -> (Sung_gpu.cost cfg ~elt_bytes:4 ~m ~n).Sung_gpu.gbps)
      dims
  in
  let c2r_float =
    Array.map
      (fun (m, n) ->
        (Gpu_transpose.auto cfg ~elt_bytes:4 ~m ~n).Gpu_transpose.gbps)
      dims
  in
  let c2r_double =
    Array.map
      (fun (m, n) ->
        (Gpu_transpose.auto cfg ~elt_bytes:8 ~m ~n).Gpu_transpose.gbps)
      dims
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Render.histogram ~bins:16 ~title:"Sung (float)" ~unit:"GB/s" sung);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Render.histogram ~bins:16 ~title:"C2R (float)" ~unit:"GB/s" c2r_float);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Render.histogram ~bins:16 ~title:"C2R (double)" ~unit:"GB/s" c2r_double);
  Buffer.add_char b '\n';
  Buffer.add_string b
    "Table 2: Median in-place transposition throughputs, simulated K20c (GB/s)\n";
  Buffer.add_string b
    (Render.table
       ~header:[ "Implementation"; "Median GB/s"; "Paper GB/s" ]
       ~rows:
         [
           [ "Sung (float)"; Printf.sprintf "%.2f" (Stats.median sung); "5.33" ];
           [
             "C2R (float)";
             Printf.sprintf "%.2f" (Stats.median c2r_float);
             "14.23";
           ];
           [
             "C2R (double)";
             Printf.sprintf "%.2f" (Stats.median c2r_double);
             "19.53";
           ];
         ]);
  {
    Outcome.id = "fig6";
    title =
      Printf.sprintf
        "GPU throughput histograms & medians (Figure 6 / Table 2); %d \
         samples, dims in [%d, %d)"
        samples lo hi;
    rendered = Buffer.contents b;
    metrics =
      [
        ("median_sung_float_gbps", Stats.median sung);
        ("median_c2r_float_gbps", Stats.median c2r_float);
        ("median_c2r_double_gbps", Stats.median c2r_double);
      ];
    figures =
      [
        ("fig6_sung_float.svg", Svg.histogram ~title:"Sung (float)" ~unit:"GB/s" sung);
        ("fig6_c2r_float.svg", Svg.histogram ~title:"C2R (float)" ~unit:"GB/s" c2r_float);
        ("fig6_c2r_double.svg", Svg.histogram ~title:"C2R (double)" ~unit:"GB/s" c2r_double);
      ];
  }

let table2 ?seed ?samples ?lo ?hi () =
  let o = run ?seed ?samples ?lo ?hi () in
  { o with Outcome.id = "table2" }
