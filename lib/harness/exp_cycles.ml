(** Motivation (paper §1): traditional cycle-following algorithms are
    "difficult to parallelize due to poorly distributed cycle lengths",
    while the decomposition has perfect static balance. This experiment
    quantifies that: for a sample of matrix shapes it reports the cycle
    count, the longest cycle's share of all elements (the critical path
    of any cycle-parallel scheme), and the decomposition's largest work
    chunk (one row or column) for comparison. *)

open Xpose_baselines

let run ?(seed = 23) ?(samples = 12) ?(lo = 50) ?(hi = 400) () =
  let rng = Rng.create ~seed in
  let dims = Workload.random_dims rng ~lo ~hi ~count:samples in
  let rows = ref [] in
  let shares = ref [] in
  Array.iter
    (fun (m, n) ->
      let lengths = Cycle_follow.cycle_lengths ~m ~n in
      let total = m * n in
      let longest = Array.fold_left max 1 lengths in
      let share = float_of_int longest /. float_of_int total in
      shares := share :: !shares;
      rows :=
        [
          Printf.sprintf "%dx%d" m n;
          string_of_int (Array.length lengths);
          string_of_int longest;
          Printf.sprintf "%.1f%%" (100.0 *. share);
          Printf.sprintf "%.2f%%"
            (100.0 *. float_of_int (max m n) /. float_of_int total);
        ]
        :: !rows)
    dims;
  let rendered =
    "Cycle structure of the transposition permutation vs the decomposition's \
     largest chunk\n"
    ^ Render.table
        ~header:
          [ "shape"; "cycles"; "longest cycle"; "longest/total"; "1 row or col" ]
        ~rows:(List.rev !rows)
    ^ "\nA cycle-parallel scheme is limited by the longest cycle; the \
       decomposition's largest independent unit is a single row or column.\n"
  in
  let shares = Array.of_list !shares in
  {
    Outcome.id = "cycles";
    title = "Cycle-length imbalance of monolithic transposition (paper §1)";
    rendered;
    metrics =
      [
        ("median_longest_cycle_share", Stats.median shares);
        ("max_longest_cycle_share", (Stats.summarize shares).Stats.max);
      ];
    figures = [];
  }
