let random_dims rng ~lo ~hi ~count =
  Array.init count (fun _ ->
      (Rng.int_range rng ~lo ~hi, Rng.int_range rng ~lo ~hi))

let axis ~lo ~hi ~points =
  if points < 1 then invalid_arg "Workload.axis: points";
  if points = 1 then [| float_of_int lo |]
  else
    Array.init points (fun i ->
        float_of_int lo
        +. (float_of_int (hi - lo) *. float_of_int i /. float_of_int (points - 1)))

let aos_shapes rng ~count ~fields_lo ~fields_hi ~structs_lo ~structs_hi =
  if structs_lo < 1 || structs_hi <= structs_lo then
    invalid_arg "Workload.aos_shapes: structs range";
  let log_lo = log (float_of_int structs_lo)
  and log_hi = log (float_of_int structs_hi) in
  Array.init count (fun _ ->
      let fields = Rng.int_range rng ~lo:fields_lo ~hi:fields_hi in
      let structs =
        int_of_float
          (exp (log_lo +. ((log_hi -. log_lo) *. Rng.float_unit rng)))
      in
      (max structs_lo structs, fields))

let struct_bytes_axis ~word_bytes ~max_bytes =
  if max_bytes < word_bytes then invalid_arg "Workload.struct_bytes_axis";
  Array.init (max_bytes / word_bytes) (fun i -> i + 1)
