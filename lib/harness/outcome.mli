(** The result of running one reproduction experiment: the rendered
    figure/table plus headline metrics for EXPERIMENTS.md and for
    shape-assertions in the test suite. *)

type t = {
  id : string;  (** e.g. ["fig3"] *)
  title : string;
  rendered : string;  (** printable figure/table text *)
  metrics : (string * float) list;  (** named headline numbers *)
  figures : (string * string) list;
      (** graphical artifacts as [(filename, svg document)];
          written by [experiments --out DIR] *)
}

val metric : t -> string -> float
(** @raise Not_found if the metric is absent. *)

val print : t -> unit
(** Write the rendered output (with a header rule) to stdout. *)

val write_figures : dir:string -> t -> string list
(** Write every figure under [dir] (created if missing); returns the
    paths written. *)
