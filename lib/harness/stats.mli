(** Sample statistics for throughput distributions (the paper reports
    medians throughout and histograms of the full distributions). *)

type summary = {
  count : int;
  mean : float;
  median : float;
  min : float;
  max : float;
  p25 : float;
  p75 : float;
  p99 : float;
}

val median : float array -> float
(** @raise Invalid_argument on an empty sample. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [[0, 100]], linear interpolation.
    @raise Invalid_argument on an empty sample or [p] out of range. *)

val mean : float array -> float

val summarize : float array -> summary
(** @raise Invalid_argument on an empty sample. *)

val pp_summary : Format.formatter -> summary -> unit
