(** Wall-clock measurement and the paper's throughput definition. *)

val time_ns : (unit -> unit) -> float
(** One timed run (monotonic clock). *)

val best_of : ?repeats:int -> (unit -> unit) -> float
(** Minimum time over [repeats] runs (default 3) — the standard way to
    suppress scheduler noise for deterministic kernels. *)

val best_of_samples : ?repeats:int -> (unit -> unit) -> float * float array
(** Like {!best_of} but also returns every per-repeat sample (in run
    order), for callers that want to report variance, not just the
    minimum. *)

val throughput_gbps : elems:int -> elt_bytes:int -> ns:float -> float
(** Eq. 37: [2 * elems * elt_bytes / t] — every byte read once and
    written once. *)
