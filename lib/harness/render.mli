(** Plain-text rendering of the paper's three figure styles: histograms
    (Figs. 3, 6, 7), heatmap landscapes (Figs. 4, 5) and line series
    (Figs. 8, 9), plus aligned tables (Tables 1, 2). *)

val histogram :
  ?bins:int -> ?width:int -> title:string -> unit:string -> float array -> string
(** ASCII histogram with the median marked, one bin per line:
    {v 12.0-14.0 | ############ 42 v} *)

val table : header:string list -> rows:string list list -> string
(** Column-aligned table with a rule under the header.
    @raise Invalid_argument if a row's arity differs from the header's. *)

val heatmap :
  title:string ->
  xlabel:string ->
  ylabel:string ->
  xs:float array ->
  ys:float array ->
  (int -> int -> float) ->
  string
(** Shaded-character heatmap of [f xi yi] over the grid; includes a legend
    with the value range. *)

val series :
  title:string ->
  xlabel:string ->
  unit:string ->
  xs:float array ->
  (string * float array) list ->
  string
(** Multi-series table: one row per x, one column per named series (the
    form the paper's line plots reduce to in text). *)

val csv : header:string list -> rows:float array list -> string
(** Machine-readable dump used alongside each figure. *)
