(** Figure 3 and Table 1: CPU in-place transposition throughput over
    randomly sized matrices of 64-bit elements.

    Paper setup: 1000 matrices, m,n uniform in [1000, 10000), Core i7 950.
    Default here: dimensions scaled by 10 (m,n in [100, 1000)) and fewer
    samples so the experiment completes quickly on one core; pass a larger
    [scale] to move toward the paper's sizes. The container exposes a
    single core, so the multi-threaded row measures parallel overhead, not
    speedup — see EXPERIMENTS.md. *)

open Xpose_core
module S = Storage.Float64
module Par = Xpose_cpu.Par_transpose.Make (S)
module Mkl = Xpose_baselines.Mkl_like.Make (S)
module Gus = Xpose_baselines.Gustavson.Make (S)

type impl = {
  name : string;
  metric_key : string;
  run : pool:Xpose_cpu.Pool.t -> m:int -> n:int -> S.t -> unit;
}

let impls =
  [
    {
      name = "MKL-like (cycle leader)";
      metric_key = "median_mkl_gbps";
      run = (fun ~pool:_ ~m ~n buf -> Mkl.imatcopy ~rows:m ~cols:n buf);
    };
    {
      name = "C2R, 1 thread";
      metric_key = "median_c2r_1t_gbps";
      run = (fun ~pool:_ ~m ~n buf -> Kernels_f64.transpose ~m ~n buf);
    };
    {
      (* Same algorithm through the element-generic functor: the fair
         yardstick for the generic tiled baseline below. *)
      name = "C2R, 1 thread (generic)";
      metric_key = "median_c2r_generic_gbps";
      run =
        (fun ~pool:_ ~m ~n buf ->
          Par.transpose Xpose_cpu.Pool.sequential ~m ~n buf);
    };
    {
      name = "C2R, pooled";
      metric_key = "median_c2r_pool_gbps";
      run = (fun ~pool ~m ~n buf -> Xpose_cpu.Par_f64.transpose pool ~m ~n buf);
    };
    {
      name = "Gustavson (tiled)";
      metric_key = "median_gustavson_gbps";
      run = (fun ~pool ~m ~n buf -> Gus.transpose ~pool ~m ~n buf);
    };
  ]

let run ?(seed = 42) ?(samples = 24) ?(dim_lo = 100) ?(dim_hi = 600)
    ?(workers = 4) () =
  let rng = Rng.create ~seed in
  let dims = Workload.random_dims rng ~lo:dim_lo ~hi:dim_hi ~count:samples in
  let results =
    Xpose_cpu.Pool.with_pool ~workers (fun pool ->
        List.map
          (fun impl ->
            let gbps =
              Array.map
                (fun (m, n) ->
                  let buf = S.create (m * n) in
                  Storage.fill_iota (module S) buf;
                  let ns = Timing.time_ns (fun () -> impl.run ~pool ~m ~n buf) in
                  Timing.throughput_gbps ~elems:(m * n) ~elt_bytes:8 ~ns)
                dims
            in
            (impl, gbps))
          impls)
  in
  let b = Buffer.create 4096 in
  List.iter
    (fun (impl, gbps) ->
      Buffer.add_string b
        (Render.histogram ~bins:16 ~title:impl.name ~unit:"GB/s" gbps);
      Buffer.add_char b '\n')
    results;
  Buffer.add_string b "Table 1: Median in-place transposition throughputs (GB/s)\n";
  Buffer.add_string b
    (Render.table
       ~header:[ "Implementation"; "Median GB/s" ]
       ~rows:
         (List.map
            (fun (impl, gbps) ->
              [ impl.name; Printf.sprintf "%.4f" (Stats.median gbps) ])
            results));
  let metrics =
    List.map (fun (impl, gbps) -> (impl.metric_key, Stats.median gbps)) results
  in
  let figures =
    List.map
      (fun (impl, gbps) ->
        ( Printf.sprintf "fig3_%s.svg" impl.metric_key,
          Svg.histogram ~title:impl.name ~unit:"GB/s" gbps ))
      results
  in
  {
    Outcome.id = "fig3";
    title =
      Printf.sprintf
        "CPU throughput histograms & medians (Figure 3 / Table 1); %d \
         samples, dims in [%d, %d), float64, %d workers"
        samples dim_lo dim_hi workers;
    rendered = Buffer.contents b;
    metrics;
    figures;
  }

let table1 ?seed ?samples ?dim_lo ?dim_hi ?workers () =
  let o = run ?seed ?samples ?dim_lo ?dim_hi ?workers () in
  { o with Outcome.id = "table1" }
