(** Deterministic pseudo-random numbers for workload generation
    (SplitMix64). Experiments must be reproducible run-to-run, so no
    global state: every generator is explicitly seeded. *)

type t

val create : seed:int -> t

val next : t -> int
(** Next raw 62-bit non-negative value. *)

val int_range : t -> lo:int -> hi:int -> int
(** Uniform in [[lo, hi)]. @raise Invalid_argument if [hi <= lo]. *)

val float_unit : t -> float
(** Uniform in [[0, 1)]. *)

val permutation : t -> int -> int array
(** Fisher-Yates permutation of [[0, n)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** An independently-seeded generator derived from this one. *)
