let buf_add = Buffer.add_string

let histogram ?(bins = 20) ?(width = 50) ~title ~unit values =
  if Array.length values = 0 then invalid_arg "Render.histogram: empty sample";
  if bins < 1 || width < 1 then invalid_arg "Render.histogram: bins/width";
  let lo = Array.fold_left Float.min values.(0) values in
  let hi = Array.fold_left Float.max values.(0) values in
  let hi = if hi = lo then lo +. 1.0 else hi in
  let counts = Array.make bins 0 in
  Array.iter
    (fun v ->
      let b =
        int_of_float (float_of_int bins *. (v -. lo) /. (hi -. lo))
      in
      let b = if b >= bins then bins - 1 else b in
      counts.(b) <- counts.(b) + 1)
    values;
  let maxc = Array.fold_left max 1 counts in
  let median = Stats.median values in
  let b = Buffer.create 1024 in
  buf_add b
    (Printf.sprintf "%s  (n=%d, median=%.2f %s)\n" title
       (Array.length values) median unit);
  for i = 0 to bins - 1 do
    let blo = lo +. ((hi -. lo) *. float_of_int i /. float_of_int bins) in
    let bhi = lo +. ((hi -. lo) *. float_of_int (i + 1) /. float_of_int bins) in
    let bar = width * counts.(i) / maxc in
    let marker = if median >= blo && median < bhi then " <- median" else "" in
    buf_add b
      (Printf.sprintf "%8.2f-%-8.2f | %s %d%s\n" blo bhi (String.make bar '#')
         counts.(i) marker)
  done;
  Buffer.contents b

let table ~header ~rows =
  let arity = List.length header in
  List.iter
    (fun r ->
      if List.length r <> arity then
        invalid_arg "Render.table: row arity mismatch")
    rows;
  let all = header :: rows in
  let widths =
    List.init arity (fun c ->
        List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all)
  in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c cell -> Printf.sprintf "%-*s" (List.nth widths c) cell)
         row)
  in
  let rule =
    String.concat "--"
      (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows)
  ^ "\n"

let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let heatmap ~title ~xlabel ~ylabel ~xs ~ys f =
  let nx = Array.length xs and ny = Array.length ys in
  if nx = 0 || ny = 0 then invalid_arg "Render.heatmap: empty axes";
  let vals = Array.init ny (fun yi -> Array.init nx (fun xi -> f xi yi)) in
  let lo = ref vals.(0).(0) and hi = ref vals.(0).(0) in
  Array.iter
    (Array.iter (fun v ->
         if v < !lo then lo := v;
         if v > !hi then hi := v))
    vals;
  let range = if !hi = !lo then 1.0 else !hi -. !lo in
  let b = Buffer.create 4096 in
  buf_add b (Printf.sprintf "%s\n" title);
  buf_add b
    (Printf.sprintf "x: %s in [%.0f, %.0f]; y: %s in [%.0f, %.0f]\n" xlabel
       xs.(0)
       xs.(nx - 1)
       ylabel ys.(0)
       ys.(ny - 1));
  buf_add b
    (Printf.sprintf "shade ' '..'@' spans %.2f..%.2f GB/s\n" !lo !hi);
  (* y grows downward in the rendering, like the paper's figures *)
  for yi = 0 to ny - 1 do
    buf_add b (Printf.sprintf "%7.0f |" ys.(yi));
    for xi = 0 to nx - 1 do
      let v = vals.(yi).(xi) in
      let s =
        int_of_float ((v -. !lo) /. range *. float_of_int (Array.length shades - 1))
      in
      Buffer.add_char b shades.(s);
      Buffer.add_char b shades.(s)
    done;
    Buffer.add_char b '\n'
  done;
  buf_add b (Printf.sprintf "        +%s\n" (String.make (2 * nx) '-'));
  Buffer.contents b

let series ~title ~xlabel ~unit ~xs named =
  let b = Buffer.create 1024 in
  buf_add b (Printf.sprintf "%s  (%s)\n" title unit);
  let header = xlabel :: List.map fst named in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i x ->
           Printf.sprintf "%.0f" x
           :: List.map (fun (_, ys) -> Printf.sprintf "%.2f" ys.(i)) named)
         xs)
  in
  buf_add b (table ~header ~rows);
  Buffer.contents b

let csv ~header ~rows =
  let b = Buffer.create 1024 in
  buf_add b (String.concat "," header);
  Buffer.add_char b '\n';
  List.iter
    (fun row ->
      buf_add b
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%.6g") row)));
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b
