(** Figures 4 and 5: C2R and R2C performance landscapes over the (m, n)
    plane on the simulated K20c, at the paper's true dimension range
    (the transaction model is analytic, so paper-scale matrices cost
    nothing to price). *)

open Xpose_simd_machine
open Xpose_simd

let landscape ~algorithm ~id ~title ?(points = 17) ?(lo = 1000) ?(hi = 25000)
    ?(elt_bytes = 8) () =
  let cfg = Config.k20c in
  let xs = Workload.axis ~lo ~hi ~points in
  let ys = Workload.axis ~lo ~hi ~points in
  let grid =
    Array.init points (fun yi ->
        Array.init points (fun xi ->
            let n = int_of_float xs.(xi) and m = int_of_float ys.(yi) in
            (Gpu_transpose.cost cfg ~algorithm ~elt_bytes ~m ~n)
              .Gpu_transpose.gbps))
  in
  let rendered =
    Render.heatmap ~title ~xlabel:"columns n" ~ylabel:"rows m" ~xs ~ys
      (fun xi yi -> grid.(yi).(xi))
  in
  let flat = Array.concat (Array.to_list grid) in
  (* the on-chip band: the first columns of the grid vs the rest *)
  let band_cols = max 1 (points / 6) in
  let band = ref [] and rest = ref [] in
  Array.iteri
    (fun yi row ->
      ignore yi;
      Array.iteri
        (fun xi v -> if xi < band_cols then band := v :: !band else rest := v :: !rest)
        row)
    grid;
  let band = Array.of_list !band and rest = Array.of_list !rest in
  let csv =
    Render.csv
      ~header:[ "m"; "n"; "gbps" ]
      ~rows:
        (List.concat_map
           (fun yi ->
             List.init points (fun xi ->
                 [| ys.(yi); xs.(xi); grid.(yi).(xi) |]))
           (List.init points Fun.id))
  in
  let svg =
    Svg.heatmap ~title ~xlabel:"columns n" ~ylabel:"rows m" ~xs ~ys
      (fun xi yi -> grid.(yi).(xi))
  in
  {
    Outcome.id;
    title;
    rendered = rendered ^ "\n" ^ csv;
    metrics =
      [
        ("median_gbps", Stats.median flat);
        ("max_gbps", Stats.summarize flat |> fun s -> s.Stats.max);
        ("band_median_gbps", Stats.median band);
        ("offband_median_gbps", Stats.median rest);
      ];
    figures = [ (id ^ ".svg", svg) ];
  }

let fig4 ?points ?lo ?hi () =
  landscape ~algorithm:`C2r ~id:"fig4"
    ~title:"C2R performance landscape, simulated K20c, float64 (Figure 4)"
    ?points ?lo ?hi ()

(* Figure 5's band is horizontal (small m); reuse the same grid but swap
   the banding axis by transposing the roles in the metric computation. *)
let fig5 ?(points = 17) ?(lo = 1000) ?(hi = 25000) () =
  let cfg = Config.k20c in
  let xs = Workload.axis ~lo ~hi ~points in
  let ys = Workload.axis ~lo ~hi ~points in
  let grid =
    Array.init points (fun yi ->
        Array.init points (fun xi ->
            let n = int_of_float xs.(xi) and m = int_of_float ys.(yi) in
            (Gpu_transpose.cost cfg ~algorithm:`R2c ~elt_bytes:8 ~m ~n)
              .Gpu_transpose.gbps))
  in
  let rendered =
    Render.heatmap
      ~title:"R2C performance landscape, simulated K20c, float64 (Figure 5)"
      ~xlabel:"columns n" ~ylabel:"rows m" ~xs ~ys
      (fun xi yi -> grid.(yi).(xi))
  in
  let flat = Array.concat (Array.to_list grid) in
  let band_rows = max 1 (points / 6) in
  let band = ref [] and rest = ref [] in
  Array.iteri
    (fun yi row ->
      Array.iter
        (fun v -> if yi < band_rows then band := v :: !band else rest := v :: !rest)
        row)
    grid;
  let svg =
    Svg.heatmap ~title:"R2C performance landscape (Figure 5)"
      ~xlabel:"columns n" ~ylabel:"rows m" ~xs ~ys (fun xi yi ->
        grid.(yi).(xi))
  in
  {
    Outcome.id = "fig5";
    title = "R2C performance landscape (Figure 5)";
    rendered;
    metrics =
      [
        ("median_gbps", Stats.median flat);
        ("band_median_gbps", Stats.median (Array.of_list !band));
        ("offband_median_gbps", Stats.median (Array.of_list !rest));
      ];
    figures = [ ("fig5.svg", svg) ];
  }
