type summary = {
  count : int;
  mean : float;
  median : float;
  min : float;
  max : float;
  p25 : float;
  p75 : float;
  p99 : float;
}

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let median xs = percentile xs 50.0

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty sample";
  {
    count = Array.length xs;
    mean = mean xs;
    median = median xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    p25 = percentile xs 25.0;
    p75 = percentile xs 75.0;
    p99 = percentile xs 99.0;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d median=%.3f mean=%.3f min=%.3f p25=%.3f p75=%.3f p99=%.3f max=%.3f"
    s.count s.median s.mean s.min s.p25 s.p75 s.p99 s.max
