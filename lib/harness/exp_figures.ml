(** Figures 1 and 2: the paper's worked illustrations, regenerated from
    the actual phase implementations. *)

open Xpose_core

let fig1 () =
  let m = 3 and n = 8 in
  let left = Trace.iota ~m ~n in
  let t = Trace.r2c ~m ~n left in
  let right = Trace.final t in
  let back = Trace.final (Trace.c2r ~m ~n right) in
  let b = Buffer.create 512 in
  let add_mat label mat =
    Buffer.add_string b (label ^ "\n");
    Buffer.add_string b (Format.asprintf "%a" Trace.pp_matrix mat)
  in
  add_mat "left (row-major iota, m=3 n=8):" left;
  add_mat "Rows to Columns ->" right;
  add_mat "Columns to Rows -> (back)" back;
  {
    Outcome.id = "fig1";
    title = "C2R and R2C transpositions, m = 3, n = 8 (Figure 1)";
    rendered = Buffer.contents b;
    metrics =
      [
        ("element16_row", float_of_int (if right.(1).(5) = 16 then 1 else 0));
        ( "roundtrip_identity",
          if back = left then 1.0 else 0.0 );
      ];
    figures = [];
  }

let fig2 () =
  let m = 4 and n = 8 in
  let initial = Array.init m (fun i -> Array.init n (fun j -> i + (m * j))) in
  let t = Trace.c2r ~m ~n initial in
  let rendered = Format.asprintf "%a" Trace.pp t in
  let final = Trace.final t in
  let is_iota =
    final = Array.init m (fun i -> Array.init n (fun j -> (i * n) + j))
  in
  {
    Outcome.id = "fig2";
    title = "C2R transpose of a 4 x 8 matrix, phase by phase (Figure 2)";
    rendered;
    metrics = [ ("final_is_rowmajor_iota", if is_iota then 1.0 else 0.0) ];
    figures = [];
  }
