type t = {
  id : string;
  title : string;
  rendered : string;
  metrics : (string * float) list;
  figures : (string * string) list;
}

let metric t name = List.assoc name t.metrics

let write_figures ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun (name, doc) ->
      let path = Filename.concat dir name in
      Svg.write_file ~path doc;
      path)
    t.figures

let print t =
  Printf.printf "==== %s: %s ====\n%s\n" t.id t.title t.rendered;
  if t.metrics <> [] then begin
    Printf.printf "metrics:\n";
    List.iter (fun (k, v) -> Printf.printf "  %-32s %.4f\n" k v) t.metrics
  end;
  print_newline ()
