let time_ns f =
  let t0 = Unix.gettimeofday () in
  f ();
  (Unix.gettimeofday () -. t0) *. 1e9

let best_of ?(repeats = 3) f =
  let best = ref infinity in
  for _ = 1 to max 1 repeats do
    let t = time_ns f in
    if t < !best then best := t
  done;
  !best

let throughput_gbps ~elems ~elt_bytes ~ns =
  if ns <= 0.0 then 0.0 else 2.0 *. float_of_int (elems * elt_bytes) /. ns
