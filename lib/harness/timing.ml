let time_ns f =
  let t0 = Unix.gettimeofday () in
  f ();
  (Unix.gettimeofday () -. t0) *. 1e9

let best_of_samples ?(repeats = 3) f =
  let samples = Array.init (max 1 repeats) (fun _ -> time_ns f) in
  (Array.fold_left Float.min infinity samples, samples)

let best_of ?repeats f = fst (best_of_samples ?repeats f)

let throughput_gbps ~elems ~elt_bytes ~ns =
  if ns <= 0.0 then 0.0 else 2.0 *. float_of_int (elems * elt_bytes) /. ns
