(** Registry of every reproduction experiment — one entry per table and
    figure of the paper — with a [scale] knob that grows sample counts and
    matrix sizes toward the paper's full setup. *)

type spec = {
  id : string;
  description : string;
  run : scale:float -> Outcome.t;
}

val all : spec list
(** In paper order: fig1, fig2, fig3, table1, fig4, fig5, fig6, table2,
    fig7, fig8, fig9. *)

val find : string -> spec
(** @raise Not_found for an unknown id. *)

val ids : unit -> string list
