(** Word-addressed simulated device memory with cache-line transaction
    accounting.

    Data lives in a flat array of {!Config.t} [word_bytes]-sized words
    (values are opaque integers; the transposition algorithms only move
    them). Every warp-level access is accounted at line granularity:
    the distinct lines covered by the active lanes each cost one
    transaction. Bulk "charge" entry points let higher-level kernels that
    perform perfectly coalesced streaming passes account their traffic
    without enumerating every lane (the landscape experiments use this;
    the in-register SIMD path uses the exact per-instruction API). *)

type t

type kind = Load | Store

val create : Config.t -> words:int -> t
(** Fresh memory of [words] words, zero-filled, counters at zero. *)

val config : t -> Config.t
val words : t -> int

(** {1 Un-accounted host access (setup and verification)} *)

val peek : t -> int -> int
val poke : t -> int -> int -> unit

(** {1 Warp-level accounted access}

    [addrs] has one slot per lane; [None] marks an inactive lane.
    Addresses are word indices. Each call is one memory instruction. *)

val warp_load : t -> addrs:int option array -> int option array
(** @raise Invalid_argument on wrong arity or out-of-range address. *)

val warp_store : t -> addrs:int option array -> values:int option array -> unit
(** Active lanes must have [Some] value.
    @raise Invalid_argument on arity/range mismatch. *)

val charge_warp_span : t -> kind -> starts:int option array -> span:int -> unit
(** Account one warp memory instruction in which every active lane touches
    [span] consecutive words starting at its address (the model of a
    hardware vector load/store, §6: "Vector"). Counts the distinct lines
    covered by all active spans; useful bytes are [active * span * word].
    Does not move data.
    @raise Invalid_argument on arity/range errors or [span < 1]. *)

(** {1 Bulk accounting (no data movement)} *)

val charge_stream : t -> kind -> bytes:int -> unit
(** Perfectly coalesced streaming traffic: [bytes] useful bytes in
    [ceil(bytes/line)] full-line transactions. *)

val charge_lines : t -> kind -> lines:int -> useful_bytes:int -> unit
(** Irregular traffic: [lines] transactions carrying [useful_bytes] useful
    bytes. Stores whose average line fill is partial pay the
    write-allocate factor. *)

val charge_instrs : t -> int -> unit
(** Account [n] warp-wide compute instructions (shuffles, selects). *)

(** {1 Results} *)

type stats = {
  load_transactions : int;
  store_transactions : int;
  instructions : int;  (** compute + memory instructions *)
  useful_bytes : int;
  weighted_bytes : float;
      (** line traffic in bytes, partial-store lines multiplied by the
          write-allocate factor *)
}

val stats : t -> stats

val snapshot : t -> stats
(** Alias of {!stats}, named for the snapshot/diff idiom: take one
    snapshot before a phase and {!diff} a later one against it instead
    of destructively {!reset}ing the counters between phases. *)

val zero_stats : stats

val diff : stats -> stats -> stats
(** [diff after before] is the field-wise difference: the traffic of
    whatever ran between the two snapshots. *)

val time_ns_of : Config.t -> stats -> float
(** {!time_ns} evaluated on an arbitrary (e.g. diffed) [stats] value. *)

val time_ns : t -> float
(** [max(weighted_bytes / effective_gbps, instructions * instr_ns)]. *)

val gbps : t -> useful_bytes:int -> float
(** Effective throughput for a caller-defined useful-byte count (e.g.
    Eq. 37's [2mns]) over {!time_ns}. *)

val reset : t -> unit
(** Reset counters; keep data. *)
