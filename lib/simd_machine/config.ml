type t = {
  name : string;
  lanes : int;
  word_bytes : int;
  line_bytes : int;
  coalesce_bytes : int;
  effective_gbps : float;
  partial_store_factor : float;
  instr_ns : float;
  onchip_bytes : int;
}

let k20c =
  {
    name = "Tesla K20c (simulated)";
    lanes = 32;
    word_bytes = 4;
    line_bytes = 32;
    coalesce_bytes = 128;
    effective_gbps = 180.0;
    partial_store_factor = 2.0;
    instr_ns = 0.05;
    onchip_bytes = 29440 * 8;
  }

let avx512_like =
  {
    name = "AVX-512-like CPU SIMD (simulated)";
    lanes = 16;
    word_bytes = 4;
    line_bytes = 64;
    coalesce_bytes = 64;
    effective_gbps = 40.0;
    partial_store_factor = 2.0;
    instr_ns = 0.15;
    onchip_bytes = 32 * 1024;
  }

let validate t =
  if t.lanes < 1 then invalid_arg "Config: lanes";
  if t.word_bytes < 1 then invalid_arg "Config: word_bytes";
  if t.line_bytes < t.word_bytes || t.line_bytes mod t.word_bytes <> 0 then
    invalid_arg "Config: line_bytes must be a positive multiple of word_bytes";
  if t.coalesce_bytes < t.line_bytes || t.coalesce_bytes mod t.line_bytes <> 0
  then
    invalid_arg "Config: coalesce_bytes must be a positive multiple of line_bytes";
  if t.effective_gbps <= 0.0 then invalid_arg "Config: effective_gbps";
  if t.partial_store_factor < 1.0 then invalid_arg "Config: partial_store_factor";
  if t.instr_ns < 0.0 then invalid_arg "Config: instr_ns";
  if t.onchip_bytes < 1 then invalid_arg "Config: onchip_bytes"
