(** A warp-resident register tile and the three in-register primitives of
    §6.2.

    Each of the warp's lanes holds [regs] registers, forming a
    [regs x lanes] array in the register file. The three primitives are
    exactly the paper's:

    - {!shfl} — the SIMD lane-shuffle instruction (§6.2.1): one warp
      instruction per register row;
    - {!rotate_dynamic} — branch-free per-lane rotation of the register
      vector by a lane-dependent amount, implemented as a barrel rotator
      over the bits of the amount (§6.2.2): [ceil(log2 regs)] conditional
      steps of [regs] select instructions;
    - {!permute_static} — a compile-time register renaming identical in
      every lane (§6.2.3): zero instructions.

    Instruction counts are charged to the {!Memory.t} the warp works
    against, so the cost model sees compute and memory in one place. *)

type t

val create : Memory.t -> regs:int -> t
(** A register tile of [regs] registers per lane, zero-initialized.
    @raise Invalid_argument if [regs < 1]. *)

val lanes : t -> int
val regs : t -> int

val memory : t -> Memory.t
(** The memory (and counter set) this warp works against. *)

val get : t -> reg:int -> lane:int -> int
val set : t -> reg:int -> lane:int -> int -> unit

val shfl : t -> reg:int -> src:(int -> int) -> unit
(** [shfl w ~reg ~src] makes lane [j]'s register [reg] take the value that
    lane [src j] held in the same register (all lanes exchange
    simultaneously). One instruction.
    @raise Invalid_argument if a source lane is out of range. *)

val rotate_dynamic : t -> amount:(int -> int) -> unit
(** [rotate_dynamic w ~amount] rotates each lane [j]'s register vector [x]
    by [amount j] (any integer; reduced mod [regs]):
    afterwards [x'[r] = x[(r + amount j) mod regs]]. Charged
    [regs * ceil(log2 regs)] select instructions. *)

val permute_static : t -> perm:(int -> int) -> unit
(** [permute_static w ~perm] renames registers identically in every lane:
    afterwards [x'[r] = x[perm r]]. [perm] must be a permutation of
    [[0, regs)]. Zero instructions (done by the compiler).
    @raise Invalid_argument if [perm] is not a permutation. *)

(** {1 Memory instructions} *)

val load_rows : t -> base:int -> unit
(** Coalesced tile load: register row [r] of lane [j] takes the word at
    [base + r*lanes + j] — [regs] fully-coalesced load instructions. *)

val store_rows : t -> base:int -> unit
(** Coalesced tile store, inverse addressing of {!load_rows}. *)

val load_gather : t -> addr:(reg:int -> lane:int -> int option) -> unit
(** One load instruction per register row with arbitrary per-lane
    addresses ([None] = inactive lane, register left unchanged). *)

val store_scatter : t -> addr:(reg:int -> lane:int -> int option) -> unit
(** One store instruction per register row with arbitrary per-lane
    addresses. *)
