(** Parameters of the simulated SIMT processor.

    The paper's GPU results (§5.2, §6) are statements about memory access
    {e shape}: how many cache-line transactions a warp's memory instruction
    generates, whether permutations happen in the register file or through
    DRAM, and how instruction overhead compares to memory time. The
    simulator models exactly those quantities:

    - a warp of [lanes] lanes issues one memory instruction at a time;
      the distinct [line_bytes]-sized lines covered by the lanes' addresses
      each cost one transaction that moves a whole line;
    - store transactions that fill only part of a line pay
      [partial_store_factor] (write-allocate: the line is read, merged,
      written back);
    - kernel time is [max(weighted_bytes / effective_gbps,
      instructions * instr_ns)] — bandwidth-bound unless the instruction
      stream is long (e.g. many [dlog2 m] select steps of the dynamic
      rotation, §6.2.2);
    - [onchip_bytes] bounds the row length that the row shuffle can stage
      on chip in a single pass (§4.5). *)

type t = {
  name : string;
  lanes : int;  (** warp width *)
  word_bytes : int;  (** smallest addressable access granule *)
  line_bytes : int;
      (** memory transaction size — on Kepler-class hardware global
          accesses move 32-byte sectors *)
  coalesce_bytes : int;
      (** the width grouped kernels aim to move per sub-row (a full
          128-byte cache line) *)
  effective_gbps : float;
      (** sustained streaming bandwidth, in bytes per nanosecond
          (numerically equal to GB/s) *)
  partial_store_factor : float;
      (** cost multiplier for store transactions that fill only part of a
          line *)
  instr_ns : float;
      (** aggregate cost per warp-wide instruction (shuffle, select),
          already amortized over the chip's parallelism *)
  onchip_bytes : int;
      (** per-multiprocessor staging capacity for single-pass row shuffles *)
}

val k20c : t
(** An NVIDIA Tesla K20c-like machine: 32 lanes, 32-byte transaction
    sectors within 128-byte lines, 180 GB/s effective bandwidth (the
    paper's measured peak for transposed accesses), and on-chip capacity
    for 29440 64-bit elements per row (§4.5). *)

val avx512_like : t
(** A CPU SIMD instantiation (§1 notes the algorithm suits "both CPUs and
    GPUs"): 16 four-byte lanes (one 512-bit vector), 64-byte cache lines,
    and an L1-sized staging budget. Lane shuffles map to [vperm*],
    the barrel rotation to masked [valign]-style steps. *)

val validate : t -> unit
(** @raise Invalid_argument if any field is non-positive or [line_bytes]
    is not a multiple of [word_bytes]. *)
