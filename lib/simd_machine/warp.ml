type t = {
  mem : Memory.t;
  n_lanes : int;
  n_regs : int;
  file : int array; (* file.(reg * n_lanes + lane) *)
}

let create mem ~regs =
  if regs < 1 then invalid_arg "Warp.create: regs";
  let n_lanes = (Memory.config mem).Config.lanes in
  { mem; n_lanes; n_regs = regs; file = Array.make (regs * n_lanes) 0 }

let lanes t = t.n_lanes
let regs t = t.n_regs
let memory t = t.mem

let get t ~reg ~lane = t.file.((reg * t.n_lanes) + lane)
let set t ~reg ~lane v = t.file.((reg * t.n_lanes) + lane) <- v

let shfl t ~reg ~src =
  let row = Array.init t.n_lanes (fun j -> get t ~reg ~lane:j) in
  for j = 0 to t.n_lanes - 1 do
    let s = src j in
    if s < 0 || s >= t.n_lanes then invalid_arg "Warp.shfl: source lane";
    set t ~reg ~lane:j row.(s)
  done;
  Memory.charge_instrs t.mem 1

let rotate_dynamic t ~amount =
  let m = t.n_regs in
  if m > 1 then begin
    let steps = Xpose_core.Intmath.ceil_log2 m in
    let old = Array.make m 0 in
    for j = 0 to t.n_lanes - 1 do
      let k = Xpose_core.Intmath.emod (amount j) m in
      (* Barrel rotation: statically iterate over the bits of k,
         conditionally rotating by 2^bit. Semantically equal to one rotate
         by k; the cost is what the select cascade pays. *)
      for r = 0 to m - 1 do
        old.(r) <- get t ~reg:r ~lane:j
      done;
      for r = 0 to m - 1 do
        set t ~reg:r ~lane:j old.((r + k) mod m)
      done
    done;
    Memory.charge_instrs t.mem (m * steps)
  end

let permute_static t ~perm =
  let m = t.n_regs in
  let idx = Array.init m perm in
  let seen = Array.make m false in
  Array.iter
    (fun r ->
      if r < 0 || r >= m || seen.(r) then
        invalid_arg "Warp.permute_static: perm is not a permutation";
      seen.(r) <- true)
    idx;
  let old = Array.make m 0 in
  for j = 0 to t.n_lanes - 1 do
    for r = 0 to m - 1 do
      old.(r) <- get t ~reg:r ~lane:j
    done;
    for r = 0 to m - 1 do
      set t ~reg:r ~lane:j old.(idx.(r))
    done
  done

let load_gather t ~addr =
  for r = 0 to t.n_regs - 1 do
    let addrs = Array.init t.n_lanes (fun j -> addr ~reg:r ~lane:j) in
    let values = Memory.warp_load t.mem ~addrs in
    Array.iteri
      (fun j v -> match v with None -> () | Some v -> set t ~reg:r ~lane:j v)
      values
  done

let store_scatter t ~addr =
  for r = 0 to t.n_regs - 1 do
    let addrs = Array.init t.n_lanes (fun j -> addr ~reg:r ~lane:j) in
    let values =
      Array.init t.n_lanes (fun j ->
          match addrs.(j) with
          | None -> None
          | Some _ -> Some (get t ~reg:r ~lane:j))
    in
    Memory.warp_store t.mem ~addrs ~values
  done

let load_rows t ~base =
  load_gather t ~addr:(fun ~reg ~lane -> Some (base + (reg * t.n_lanes) + lane))

let store_rows t ~base =
  store_scatter t ~addr:(fun ~reg ~lane ->
      Some (base + (reg * t.n_lanes) + lane))
