type kind = Load | Store

type t = {
  cfg : Config.t;
  data : int array;
  mutable load_tx : int;
  mutable store_tx : int;
  mutable instrs : int;
  mutable useful : int;
  mutable weighted : float;
  scratch_lines : int array; (* per-instruction line ids, length lanes *)
}

type stats = {
  load_transactions : int;
  store_transactions : int;
  instructions : int;
  useful_bytes : int;
  weighted_bytes : float;
}

let create cfg ~words =
  Config.validate cfg;
  if words < 0 then invalid_arg "Memory.create: words";
  {
    cfg;
    data = Array.make words 0;
    load_tx = 0;
    store_tx = 0;
    instrs = 0;
    useful = 0;
    weighted = 0.0;
    scratch_lines = Array.make cfg.Config.lanes 0;
  }

let config t = t.cfg
let words t = Array.length t.data

let peek t a = t.data.(a)
let poke t a v = t.data.(a) <- v

let words_per_line t = t.cfg.Config.line_bytes / t.cfg.Config.word_bytes

(* Count distinct lines among the active lanes' addresses and, for stores,
   how full each line is. Returns (lines, full_lines). *)
let collect_lines t ~addrs =
  let wpl = words_per_line t in
  let k = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some a ->
          if a < 0 || a >= Array.length t.data then
            invalid_arg "Memory: address out of range";
          t.scratch_lines.(!k) <- a / wpl;
          incr k)
    addrs;
  let active = !k in
  if active = 0 then (0, 0, 0)
  else begin
    let lines = Array.sub t.scratch_lines 0 active in
    Array.sort compare lines;
    let distinct = ref 1 and max_fill = ref 1 and fill = ref 1 in
    for i = 1 to active - 1 do
      if lines.(i) = lines.(i - 1) then begin
        incr fill;
        if !fill > !max_fill then max_fill := !fill
      end
      else begin
        incr distinct;
        fill := 1
      end
    done;
    (active, !distinct, !max_fill)
  end

let check_arity t ~addrs =
  if Array.length addrs <> t.cfg.Config.lanes then
    invalid_arg "Memory: address vector must have one slot per lane"

let warp_load t ~addrs =
  check_arity t ~addrs;
  let active, lines, _ = collect_lines t ~addrs in
  t.instrs <- t.instrs + 1;
  if active > 0 then begin
    t.load_tx <- t.load_tx + lines;
    t.useful <- t.useful + (active * t.cfg.Config.word_bytes);
    t.weighted <- t.weighted +. float_of_int (lines * t.cfg.Config.line_bytes)
  end;
  Array.map (Option.map (fun a -> t.data.(a))) addrs

let warp_store t ~addrs ~values =
  check_arity t ~addrs;
  if Array.length values <> t.cfg.Config.lanes then
    invalid_arg "Memory: value vector must have one slot per lane";
  let active, lines, _ = collect_lines t ~addrs in
  t.instrs <- t.instrs + 1;
  if active > 0 then begin
    t.store_tx <- t.store_tx + lines;
    t.useful <- t.useful + (active * t.cfg.Config.word_bytes);
    (* A line is partial unless enough active lanes cover it entirely; use
       the average fill across this instruction's lines. *)
    let wpl = words_per_line t in
    let avg_fill = float_of_int active /. float_of_int lines in
    let factor =
      if avg_fill >= float_of_int wpl then 1.0
      else t.cfg.Config.partial_store_factor
    in
    t.weighted <-
      t.weighted +. (factor *. float_of_int (lines * t.cfg.Config.line_bytes))
  end;
  Array.iteri
    (fun lane slot ->
      match (slot, values.(lane)) with
      | None, _ -> ()
      | Some a, Some v -> t.data.(a) <- v
      | Some _, None -> invalid_arg "Memory: active lane without a value")
    addrs

let charge_warp_span t kind ~starts ~span =
  check_arity t ~addrs:starts;
  if span < 1 then invalid_arg "Memory.charge_warp_span: span";
  let wpl = words_per_line t in
  (* Collect the line ids covered by every active lane's span. *)
  let ids = ref [] in
  let active = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some a ->
          if a < 0 || a + span > Array.length t.data then
            invalid_arg "Memory: span out of range";
          incr active;
          let first = a / wpl and last = (a + span - 1) / wpl in
          for l = first to last do
            ids := l :: !ids
          done)
    starts;
  t.instrs <- t.instrs + 1;
  if !active > 0 then begin
    let ids = List.sort_uniq compare !ids in
    let lines = List.length ids in
    let useful = !active * span * t.cfg.Config.word_bytes in
    (match kind with
    | Load -> t.load_tx <- t.load_tx + lines
    | Store -> t.store_tx <- t.store_tx + lines);
    t.useful <- t.useful + useful;
    let factor =
      match kind with
      | Load -> 1.0
      | Store ->
          if useful >= lines * t.cfg.Config.line_bytes then 1.0
          else t.cfg.Config.partial_store_factor
    in
    t.weighted <-
      t.weighted +. (factor *. float_of_int (lines * t.cfg.Config.line_bytes))
  end

let charge_stream t kind ~bytes =
  if bytes < 0 then invalid_arg "Memory.charge_stream: bytes";
  let line = t.cfg.Config.line_bytes in
  let lines = (bytes + line - 1) / line in
  (match kind with
  | Load -> t.load_tx <- t.load_tx + lines
  | Store -> t.store_tx <- t.store_tx + lines);
  t.useful <- t.useful + bytes;
  t.weighted <- t.weighted +. float_of_int (lines * line);
  (* One warp instruction per lanes*word_bytes of traffic. *)
  t.instrs <-
    t.instrs
    + ((bytes + (t.cfg.Config.lanes * t.cfg.Config.word_bytes) - 1)
      / (t.cfg.Config.lanes * t.cfg.Config.word_bytes))

let charge_lines t kind ~lines ~useful_bytes =
  if lines < 0 || useful_bytes < 0 then invalid_arg "Memory.charge_lines";
  let line = t.cfg.Config.line_bytes in
  (match kind with
  | Load -> t.load_tx <- t.load_tx + lines
  | Store -> t.store_tx <- t.store_tx + lines);
  t.useful <- t.useful + useful_bytes;
  let factor =
    match kind with
    | Load -> 1.0
    | Store ->
        if lines = 0 || useful_bytes >= lines * line then 1.0
        else t.cfg.Config.partial_store_factor
  in
  t.weighted <- t.weighted +. (factor *. float_of_int (lines * line));
  t.instrs <-
    t.instrs
    + ((useful_bytes + (t.cfg.Config.lanes * t.cfg.Config.word_bytes) - 1)
      / (t.cfg.Config.lanes * t.cfg.Config.word_bytes))

let charge_instrs t n =
  if n < 0 then invalid_arg "Memory.charge_instrs";
  t.instrs <- t.instrs + n

let stats t =
  {
    load_transactions = t.load_tx;
    store_transactions = t.store_tx;
    instructions = t.instrs;
    useful_bytes = t.useful;
    weighted_bytes = t.weighted;
  }

let snapshot = stats

let zero_stats =
  {
    load_transactions = 0;
    store_transactions = 0;
    instructions = 0;
    useful_bytes = 0;
    weighted_bytes = 0.0;
  }

let diff (after : stats) (before : stats) =
  {
    load_transactions = after.load_transactions - before.load_transactions;
    store_transactions = after.store_transactions - before.store_transactions;
    instructions = after.instructions - before.instructions;
    useful_bytes = after.useful_bytes - before.useful_bytes;
    weighted_bytes = after.weighted_bytes -. before.weighted_bytes;
  }

let time_ns_of (cfg : Config.t) (s : stats) =
  Float.max
    (s.weighted_bytes /. cfg.Config.effective_gbps)
    (float_of_int s.instructions *. cfg.Config.instr_ns)

let time_ns t =
  Float.max
    (t.weighted /. t.cfg.Config.effective_gbps)
    (float_of_int t.instrs *. t.cfg.Config.instr_ns)

let gbps t ~useful_bytes =
  let ns = time_ns t in
  if ns <= 0.0 then 0.0 else float_of_int useful_bytes /. ns

let reset t =
  t.load_tx <- 0;
  t.store_tx <- 0;
  t.instrs <- 0;
  t.useful <- 0;
  t.weighted <- 0.0
