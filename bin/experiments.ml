(* Command-line driver that regenerates any table or figure of the paper.
   `experiments list` enumerates them; `experiments run fig3 --scale 2`
   runs one; `experiments all` runs everything in paper order. *)

open Cmdliner

let emit ?out outcome =
  Xpose_harness.Outcome.print outcome;
  match out with
  | None -> ()
  | Some dir ->
      let written = Xpose_harness.Outcome.write_figures ~dir outcome in
      List.iter (fun p -> Printf.printf "wrote %s\n" p) written

let run_one ~scale ?out id =
  match Xpose_harness.Experiments.find id with
  | spec ->
      emit ?out (spec.Xpose_harness.Experiments.run ~scale);
      `Ok ()
  | exception Not_found ->
      `Error
        ( false,
          Printf.sprintf "unknown experiment %S; try: %s" id
            (String.concat ", " (Xpose_harness.Experiments.ids ())) )

let out_arg =
  let doc = "Directory to write SVG figure files into." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"DIR" ~doc)

let scale_arg =
  let doc =
    "Scale factor for sample counts and matrix sizes (1.0 = bundled quick \
     defaults; larger values approach the paper's full setup)."
  in
  Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let id_arg =
  let doc = "Experiment id (a table or figure of the paper), e.g. fig3." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)

let list_cmd =
  let doc = "List available experiments." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun s ->
              Printf.printf "%-8s %s\n" s.Xpose_harness.Experiments.id
                s.Xpose_harness.Experiments.description)
            Xpose_harness.Experiments.all)
      $ const ())

let run_cmd =
  let doc = "Run one experiment and print its figure/table." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const (fun scale out id -> run_one ~scale ?out id)
        $ scale_arg $ out_arg $ id_arg))

let all_cmd =
  let doc = "Run every experiment in paper order." in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const (fun scale out ->
          List.iter
            (fun s -> emit ?out (s.Xpose_harness.Experiments.run ~scale))
            Xpose_harness.Experiments.all)
      $ scale_arg $ out_arg)

let main =
  let doc =
    "Reproduce the tables and figures of 'A Decomposition for In-place \
     Matrix Transposition' (PPoPP 2014)."
  in
  Cmd.group (Cmd.info "experiments" ~doc) [ list_cmd; run_cmd; all_cmd ]

let () =
  Xpose_obs.Clock.install (fun () -> Unix.gettimeofday () *. 1e9);
  exit (Cmd.eval main)
