(* A small CLI around the library: transpose matrices read from files or
   generated on the fly, choose the algorithm, and validate results.

     xpose demo --m 4 --n 8            # print the phase-by-phase trace
     xpose transpose --m 3 --n 5 1 2 3 ... --algorithm c2r
     xpose bench --m 2000 --n 1500     # one-off timing with each engine
*)

open Cmdliner
open Xpose_core

(* Global observability flags, shared by every subcommand: [--trace FILE]
   records spans for the whole invocation and writes Chrome trace_event
   JSON (Perfetto-loadable) on exit; [--metrics] dumps the metrics
   registry on exit. *)
let obs_args =
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a trace of the whole invocation and write it to $(docv) \
             as Chrome trace_event JSON (load it at ui.perfetto.dev).")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the metrics registry on exit (one line per metric).")
  in
  let setup trace metrics =
    Xpose_obs.Clock.install (fun () -> Unix.gettimeofday () *. 1e9);
    if trace <> None then Xpose_obs.Tracer.start ();
    at_exit (fun () ->
        (match trace with
        | None -> ()
        | Some file ->
            Xpose_obs.Tracer.stop ();
            let oc = open_out file in
            output_string oc (Xpose_obs.Tracer.to_chrome_json ());
            close_out oc;
            Printf.eprintf "trace written to %s (%d events)\n%!" file
              (List.length (Xpose_obs.Tracer.events ())));
        if metrics then print_string (Xpose_obs.Metrics.render ()))
  in
  Term.(const setup $ trace_arg $ metrics_arg)

(* [cmd info term] is [Cmd.v] with the observability flags grafted on
   (the setup side effects run before the command body). *)
let cmd info term =
  Cmd.v info Term.(ret (const (fun () r -> r) $ obs_args $ term))

let m_arg =
  Arg.(required & opt (some int) None & info [ "m"; "rows" ] ~docv:"M" ~doc:"Rows.")

let n_arg =
  Arg.(
    required & opt (some int) None & info [ "n"; "cols" ] ~docv:"N" ~doc:"Columns.")

let algorithm_arg =
  let algo_conv =
    Arg.enum
      [ ("auto", `Auto); ("c2r", `C2r); ("r2c", `R2c); ("cycle", `Cycle) ]
  in
  Arg.(
    value & opt algo_conv `Auto
    & info [ "a"; "algorithm" ] ~docv:"ALGO"
        ~doc:"One of auto, c2r, r2c, cycle (cycle-following baseline).")

let order_arg =
  let order_conv =
    Arg.enum [ ("row", Layout.Row_major); ("col", Layout.Col_major) ]
  in
  Arg.(
    value & opt order_conv Layout.Row_major
    & info [ "order" ] ~docv:"ORDER" ~doc:"Storage order: row or col.")

let demo_cmd =
  let doc = "Print the phase-by-phase C2R trace of an M x N iota matrix." in
  let run m n =
    if m < 1 || n < 1 then `Error (false, "dimensions must be positive")
    else begin
      let t = Trace.c2r ~m ~n (Trace.iota ~m ~n) in
      Format.printf "%a" Trace.pp t;
      Format.printf "reinterpreted as %d x %d:@." n m;
      Format.printf "%a" Trace.pp_matrix (Trace.reinterpret t);
      `Ok ()
    end
  in
  cmd (Cmd.info "demo" ~doc) Term.(const run $ m_arg $ n_arg)

let elements_arg =
  Arg.(
    value & pos_all float []
    & info [] ~docv:"ELEMENTS" ~doc:"Matrix elements, row by row.")

module F = Instances.F64
module S = Storage.Float64
module Cycle = Xpose_baselines.Cycle_follow.Make (S)

let transpose_buf ~algorithm ~order ~m ~n buf =
  match algorithm with
  | `Auto -> F.transpose ~order ~m ~n buf
  | `C2r ->
      let tmp = S.create (max m n) in
      F.transpose_with ~algorithm:`C2r ~order ~m ~n buf ~tmp
  | `R2c ->
      let tmp = S.create (max m n) in
      F.transpose_with ~algorithm:`R2c ~order ~m ~n buf ~tmp
  | `Cycle -> Cycle.transpose_bitvec ~order ~m ~n buf

let transpose_cmd =
  let doc = "Transpose the given elements in place and print the result." in
  let run m n algorithm order elements =
    if List.length elements <> m * n then
      `Error
        ( false,
          Printf.sprintf "expected %d elements for a %d x %d matrix, got %d"
            (m * n) m n (List.length elements) )
    else begin
      let buf = S.create (m * n) in
      List.iteri (fun i v -> S.set buf i v) elements;
      transpose_buf ~algorithm ~order ~m ~n buf;
      for i = 0 to n - 1 do
        for j = 0 to m - 1 do
          if j > 0 then print_char ' ';
          Printf.printf "%g"
            (S.get buf
               (match order with
               | Layout.Row_major -> (i * m) + j
               | Layout.Col_major -> (j * n) + i))
        done;
        print_newline ()
      done;
      `Ok ()
    end
  in
  cmd (Cmd.info "transpose" ~doc)
    Term.(const run $ m_arg $ n_arg $ algorithm_arg $ order_arg $ elements_arg)

let rotate_cmd =
  let doc = "Rotate the given M x N elements a quarter or half turn in place." in
  let dir_conv =
    Arg.enum [ ("cw", `Cw); ("ccw", `Ccw); ("half", `Half) ]
  in
  let dir_arg =
    Arg.(
      value & opt dir_conv `Cw
      & info [ "d"; "direction" ] ~docv:"DIR" ~doc:"cw, ccw or half.")
  in
  let run m n dir elements =
    if List.length elements <> m * n then
      `Error
        ( false,
          Printf.sprintf "expected %d elements for a %d x %d matrix, got %d"
            (m * n) m n (List.length elements) )
    else begin
      let module R = Rotate90.Make (S) in
      let buf = S.create (m * n) in
      List.iteri (fun i v -> S.set buf i v) elements;
      let out_m, out_n =
        match dir with
        | `Cw ->
            R.clockwise ~m ~n buf;
            (n, m)
        | `Ccw ->
            R.counter_clockwise ~m ~n buf;
            (n, m)
        | `Half ->
            R.half_turn ~m ~n buf;
            (m, n)
      in
      for i = 0 to out_m - 1 do
        for j = 0 to out_n - 1 do
          if j > 0 then print_char ' ';
          Printf.printf "%g" (S.get buf ((i * out_n) + j))
        done;
        print_newline ()
      done;
      `Ok ()
    end
  in
  cmd (Cmd.info "rotate" ~doc)
    Term.(const run $ m_arg $ n_arg $ dir_arg $ elements_arg)

let plan_cmd =
  let doc = "Print the transposition plan and permutation structure for M x N." in
  let run m n =
    if m < 1 || n < 1 then `Error (false, "dimensions must be positive")
    else begin
      let p = Plan.make ~m ~n in
      Format.printf "%a@." Plan.pp p;
      Printf.printf "coprime: %b (pre-rotation %s)
" (Plan.coprime p)
        (if Plan.coprime p then "skipped" else "required");
      Printf.printf "scratch elements: %d
" (Plan.scratch_elements p);
      let touches, _ = Theory.theorem6_work_and_space p in
      Printf.printf "element touches: %d (bound %d = 6mn)
" touches (6 * m * n);
      let lengths = Xpose_baselines.Cycle_follow.cycle_lengths ~m ~n in
      let longest = Array.fold_left max 1 lengths in
      Printf.printf
        "monolithic permutation: %d cycles, longest %d of %d elements (%.1f%%)
"
        (Array.length lengths) longest (m * n)
        (100.0 *. float_of_int longest /. float_of_int (m * n));
      Printf.printf "decomposition's largest independent unit: %d elements
"
        (max m n);
      `Ok ()
    end
  in
  cmd (Cmd.info "plan" ~doc) Term.(const run $ m_arg $ n_arg)

(* Engine selection shared by bench and report: [functor] is the
   element-generic Algo functor, [kernels] the specialized float64
   kernels, [decomposed] the same kernels with the §4.1 decomposed
   column passes (separate col_rotate / row_permute sweeps), [cache]
   the cache-aware §4.6/4.7 sweeps, [fused] the pass-fused panel
   engine, [ooc] the windowed out-of-core engine (bench only: it
   transposes a backing file under a --window-bytes residency budget). *)
let engine_conv =
  Arg.enum
    [
      ("functor", `Functor);
      ("kernels", `Kernels);
      ("decomposed", `Decomposed);
      ("cache", `Cache);
      ("fused", `Fused);
      ("ooc", `Ooc);
    ]

let engine_arg =
  Arg.(
    value & opt engine_conv `Functor
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "One of functor, kernels, decomposed, cache, fused, ooc. See the \
           bench suite for what each measures.")

module CA = Xpose_cpu.Cache_aware.Make (S)

let transpose_engine ~engine ~algorithm ~m ~n buf =
  match engine with
  | `Functor -> transpose_buf ~algorithm ~order:Layout.Row_major ~m ~n buf
  | `Kernels -> Kernels_f64.transpose ~m ~n buf
  | `Decomposed ->
      let tmp = S.create (max m n) in
      if m > n then
        Kernels_f64.c2r ~variant:Algo.C2r_decomposed (Plan.make ~m ~n) buf ~tmp
      else
        Kernels_f64.r2c ~variant:Algo.R2c_decomposed (Plan.make ~m:n ~n:m) buf
          ~tmp
  | `Cache ->
      let tmp = S.create (max m n) in
      if m > n then CA.c2r (Plan.make ~m ~n) buf ~tmp
      else CA.r2c (Plan.make ~m:n ~n:m) buf ~tmp
  | `Fused -> Xpose_cpu.Fused_f64.transpose ~m ~n buf
  | `Ooc ->
      (* bench routes the ooc engine to its file path before reaching
         here; the other subcommands reject it. *)
      invalid_arg "the ooc engine transposes files, not in-RAM buffers"

(* The out-of-core bench leg: stage an iota matrix in a temp file,
   transpose it in place in the file under the window budget, verify
   against the oracle. *)
let bench_ooc ~m ~n ~workers ~window_bytes ~prefetch =
  let path = Filename.temp_file "xpose_bench_ooc" ".mat" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Xpose_mmap.File_matrix.create ~path ~elements:(m * n);
      Xpose_mmap.File_matrix.with_map ~path (fun buf ->
          Storage.fill_iota (module S) buf);
      let t0 = Unix.gettimeofday () in
      (if workers = 1 then
         Xpose_ooc.Ooc_f64.transpose_file ~window_bytes ~prefetch ~path ~m ~n ()
       else
         Xpose_cpu.Pool.with_pool ~workers (fun pool ->
             Xpose_ooc.Ooc_f64.transpose_file ~pool ~window_bytes ~prefetch
               ~path ~m ~n ()));
      let dt = Unix.gettimeofday () -. t0 in
      let gbps = 2.0 *. float_of_int (m * n * 8) /. (dt *. 1e9) in
      Printf.printf "%d x %d float64 out-of-core (window %d B): %.3f ms, %.3f GB/s\n"
        m n window_bytes (dt *. 1e3) gbps;
      let ok = ref true in
      Xpose_mmap.File_matrix.with_map ~write:false ~path (fun buf ->
          for l = 0 to (m * n) - 1 do
            let expected = float_of_int ((n * (l mod m)) + (l / m)) in
            if S.get buf l <> expected then ok := false
          done);
      if !ok then begin
        Printf.printf "verified: result is the transpose\n";
        `Ok ()
      end
      else `Error (false, "verification failed"))

let bench_cmd =
  let doc =
    "Time one in-place transpose of an M x N float64 matrix (or a batch of \
     BATCH same-shape matrices) with the selected engine. The ooc engine \
     transposes a staged temp file in place under the --window-bytes \
     residency budget instead."
  in
  let batch_arg =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"BATCH"
          ~doc:"Number of same-shape matrices to transpose.")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"W"
          ~doc:"Worker domains for batched runs (1 runs serially).")
  in
  let window_bytes_arg =
    Arg.(
      value
      & opt int Xpose_ooc.Ooc_f64.default_window_bytes
      & info [ "window-bytes" ] ~docv:"BYTES"
          ~doc:
            "Resident window budget for the ooc engine: at most $(docv) of \
             the file is mapped at any moment.")
  in
  let no_prefetch_arg =
    Arg.(
      value & flag
      & info [ "no-prefetch" ]
          ~doc:
            "Disable the ooc engine's I/O-domain double-buffered prefetch \
             (windows are mapped synchronously).")
  in
  let run m n algorithm engine batch workers window_bytes no_prefetch =
    if m < 1 || n < 1 then `Error (false, "dimensions must be positive")
    else if batch < 1 then `Error (false, "batch must be >= 1")
    else if workers < 1 then `Error (false, "workers must be >= 1")
    else if engine = `Ooc && batch > 1 then
      `Error (false, "the ooc engine has no batched path")
    else if engine = `Ooc && window_bytes < 8 then
      `Error (false, "window-bytes must be >= 8")
    else if engine = `Ooc then
      bench_ooc ~m ~n ~workers ~window_bytes ~prefetch:(not no_prefetch)
    else begin
      let bufs =
        Array.init batch (fun _ ->
            let buf = S.create (m * n) in
            Storage.fill_iota (module S) buf;
            buf)
      in
      let t0 = Unix.gettimeofday () in
      (if batch = 1 && workers = 1 then
         transpose_engine ~engine ~algorithm ~m ~n bufs.(0)
       else
         Xpose_cpu.Pool.with_pool ~workers (fun pool ->
             match engine with
             | `Fused -> Xpose_cpu.Fused_f64.transpose_batch pool ~m ~n bufs
             | _ ->
                 (* Other engines have no batched path: fan the serial
                    engine across the pool. *)
                 Xpose_cpu.Pool.parallel_for pool ~lo:0 ~hi:batch (fun b ->
                     transpose_engine ~engine ~algorithm ~m ~n bufs.(b))));
      let dt = Unix.gettimeofday () -. t0 in
      let bytes = 2.0 *. float_of_int (batch * m * n * 8) in
      let gbps = bytes /. (dt *. 1e9) in
      if batch = 1 then
        Printf.printf "%d x %d float64: %.3f ms, %.3f GB/s\n" m n (dt *. 1e3)
          gbps
      else
        Printf.printf "%d x (%d x %d) float64: %.3f ms, %.3f GB/s\n" batch m n
          (dt *. 1e3) gbps;
      (* verify *)
      let ok = ref true in
      Array.iter
        (fun buf ->
          for l = 0 to (m * n) - 1 do
            let expected = float_of_int ((n * (l mod m)) + (l / m)) in
            if S.get buf l <> expected then ok := false
          done)
        bufs;
      if !ok then begin
        if batch = 1 then Printf.printf "verified: result is the transpose\n"
        else Printf.printf "verified: all %d results are transposes\n" batch;
        `Ok ()
      end
      else `Error (false, "verification failed")
    end
  in
  cmd (Cmd.info "bench" ~doc)
    Term.(
      const run $ m_arg $ n_arg $ algorithm_arg $ engine_arg $ batch_arg
      $ workers_arg $ window_bytes_arg $ no_prefetch_arg)

let permute_cmd =
  let doc =
    "Plan a rank-N in-place axis permutation, print the chosen decomposition \
     and its predicted cost, then execute and verify it."
  in
  let dims_arg =
    Arg.(
      required
      & opt (some (list int)) None
      & info [ "dims" ] ~docv:"D0,D1,..."
          ~doc:"Tensor dimensions, row-major (last axis fastest).")
  in
  let perm_arg =
    Arg.(
      required
      & opt (some (list int)) None
      & info [ "perm" ] ~docv:"P0,P1,..."
          ~doc:
            "Axis permutation: output axis $(i,k) carries source axis \
             $(i,Pk) (NumPy transpose convention).")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Also list the rejected candidate plans.")
  in
  let run dims perm all =
    let dims = Array.of_list dims and perm = Array.of_list perm in
    let module P = Xpose_permute in
    match P.Shape.validate ~dims ~perm with
    | exception Invalid_argument msg -> `Error (false, msg)
    | () ->
        let module Si = Storage.Int_elt in
        let module Nd = Tensor_nd.Make (Si) in
        let plan = Tensor_nd.plan ~dims ~perm in
        Format.printf "%a" P.Permute.pp_plan plan;
        if all then begin
          match Tensor_nd.candidates ~dims ~perm with
          | _ :: (_ :: _ as rest) ->
              List.iter
                (fun (c : P.Permute.plan) ->
                  Format.printf "rejected: %d passes, score %.1f@."
                    c.P.Permute.cost.P.Cost.passes c.P.Permute.cost.P.Cost.score)
                rest
          | _ -> print_endline "no other candidates"
        end;
        let total = P.Shape.nelems dims in
        let buf = Si.create total in
        Storage.fill_iota (module Si) buf;
        Nd.execute plan buf;
        let ok = ref true in
        for l = 0 to total - 1 do
          let dst =
            P.Shape.permuted_index ~dims ~perm (P.Shape.multi_index ~dims l)
          in
          if Si.get buf dst <> l then ok := false
        done;
        if !ok then begin
          Printf.printf "verified: %d elements match the permuted_index oracle\n"
            total;
          `Ok ()
        end
        else `Error (false, "verification failed")
  in
  cmd (Cmd.info "permute" ~doc)
    Term.(const run $ dims_arg $ perm_arg $ all_arg)

let report_cmd =
  let doc =
    "Run one traced in-place transpose of an M x N float64 matrix on a \
     worker pool and print the per-pass predicted-vs-measured report: \
     Theorem-6 element touches, measured time, relative error of the \
     touch-proportional time model, and pool load imbalance."
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"W"
          ~doc:"Worker domains for the pool (1 runs serially).")
  in
  let repeats_arg =
    Arg.(
      value & opt int 1
      & info [ "repeats" ] ~docv:"R"
          ~doc:"Trace $(docv) runs and report the fastest one.")
  in
  let no_times_arg =
    Arg.(
      value & flag
      & info [ "no-times" ]
          ~doc:
            "Omit the wall-clock-derived columns (measured time, relative \
             error, imbalance) so the output is deterministic.")
  in
  let run m n algorithm engine workers repeats no_times =
    if m < 1 || n < 1 then `Error (false, "dimensions must be positive")
    else if workers < 1 then `Error (false, "workers must be >= 1")
    else if repeats < 1 then `Error (false, "repeats must be >= 1")
    else begin
      let module PT = Xpose_cpu.Par_transpose.Make (S) in
      let module FF = Xpose_cpu.Fused_f64 in
      (* §5.2 heuristic, as in [transpose]: more rows than columns
         favours C2R; both orientations transpose the row-major m x n
         buffer in place. *)
      let algorithm =
        match algorithm with
        | `Auto -> if m > n then `C2r else `R2c
        | (`C2r | `R2c | `Cycle) as a -> a
      in
      match (algorithm, engine) with
      | `Cycle, _ -> `Error (false, "report: algorithm must be c2r or r2c")
      | _, (`Kernels | `Decomposed | `Cache | `Ooc) ->
          `Error (false, "report: engine must be functor or fused")
      | (`C2r | `R2c) as algorithm, ((`Functor | `Fused) as engine) ->
          let transpose_once pool buf =
            match (engine, algorithm) with
            | `Functor, `C2r -> PT.c2r pool (Plan.make ~m ~n) buf
            | `Functor, `R2c -> PT.r2c pool (Plan.make ~m:n ~n:m) buf
            | `Fused, `C2r -> FF.c2r_pool pool (Plan.make ~m ~n) buf
            | `Fused, `R2c -> FF.r2c_pool pool (Plan.make ~m:n ~n:m) buf
          in
          let buf = S.create (m * n) in
          let best = ref None in
          Xpose_cpu.Pool.with_pool ~workers (fun pool ->
              for _ = 1 to repeats do
                Storage.fill_iota (module S) buf;
                Xpose_obs.Tracer.start ();
                transpose_once pool buf;
                Xpose_obs.Tracer.stop ();
                let r =
                  Xpose_obs.Report.of_events (Xpose_obs.Tracer.events ())
                in
                match !best with
                | Some (b : Xpose_obs.Report.t)
                  when b.total_ns <= r.Xpose_obs.Report.total_ns ->
                    ()
                | _ -> best := Some r
              done);
          let ok = ref true in
          for l = 0 to (m * n) - 1 do
            if S.get buf l <> float_of_int ((n * (l mod m)) + (l / m)) then
              ok := false
          done;
          if not !ok then `Error (false, "verification failed")
          else begin
            Printf.printf "%d x %d float64 %s, %d worker%s, best of %d:\n" m n
              (match algorithm with `C2r -> "c2r" | `R2c -> "r2c")
              workers
              (if workers = 1 then "" else "s")
              repeats;
            (match !best with
            | None -> ()
            | Some r ->
                print_string
                  (Xpose_obs.Report.render ~show_times:(not no_times) r));
            `Ok ()
          end
    end
  in
  cmd (Cmd.info "report" ~doc)
    Term.(
      const run $ m_arg $ n_arg $ algorithm_arg $ engine_arg $ workers_arg
      $ repeats_arg $ no_times_arg)

let check_cmd =
  let doc =
    "Statically verify the engines: prove every plan's pass pipeline equal to \
     the transpose specification (symbolic, no data movement), prove the \
     parallel drivers' chunk footprints disjoint, and optionally run the \
     checked-access engine twins. Non-zero exit on any violation or seeded \
     detection."
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let shadow_arg =
    Arg.(
      value & flag
      & info [ "shadow" ]
          ~doc:
            "Also run the checked-access twins of the float64 engines on \
             real (small) buffers: every access bounds-verified.")
  in
  let seed_race_arg =
    Arg.(
      value & flag
      & info [ "seed-race" ]
          ~doc:
            "Negative test: model the pool's chunk split with a deliberate \
             off-by-one; the race analyzer must detect the overlap (non-zero \
             exit).")
  in
  let seed_oob_arg =
    Arg.(
      value & flag
      & info [ "seed-oob" ]
          ~doc:
            "Negative test: run a checked kernel over a deliberately short \
             buffer; the access checker must detect the out-of-bounds read \
             (non-zero exit).")
  in
  let lanes_arg =
    Arg.(
      value
      & opt (list int) Xpose_check.Driver.default_lanes
      & info [ "lanes" ] ~docv:"L1,L2,.."
          ~doc:"Worker-lane counts to analyze the parallel footprints at.")
  in
  let run json shadow seed_race seed_oob lanes =
    if lanes = [] || List.exists (fun l -> l < 1) lanes then
      `Error (false, "lanes must be positive")
    else begin
      let r =
        Xpose_check.Driver.run ~lanes ~seed_race ~seed_oob ~shadow ()
      in
      if json then print_string (Xpose_check.Driver.to_json r)
      else Format.printf "%a" Xpose_check.Driver.pp r;
      if Xpose_check.Driver.ok r then `Ok ()
      else if r.Xpose_check.Driver.violations > 0 then
        `Error
          ( false,
            Printf.sprintf "%d of %d checks violated"
              r.Xpose_check.Driver.violations r.Xpose_check.Driver.checked )
      else
        `Error
          ( false,
            Printf.sprintf "%d seeded defect(s) detected"
              r.Xpose_check.Driver.detections )
    end
  in
  cmd (Cmd.info "check" ~doc)
    Term.(
      const run $ json_arg $ shadow_arg $ seed_race_arg $ seed_oob_arg
      $ lanes_arg)

let main =
  let doc = "In-place matrix transposition by decomposition (PPoPP 2014)." in
  Cmd.group (Cmd.info "xpose" ~doc)
    [
      demo_cmd;
      transpose_cmd;
      rotate_cmd;
      plan_cmd;
      bench_cmd;
      permute_cmd;
      report_cmd;
      check_cmd;
    ]

let () = exit (Cmd.eval main)
