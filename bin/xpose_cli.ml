(* A small CLI around the library: transpose matrices read from files or
   generated on the fly, choose the algorithm, and validate results.

     xpose demo --m 4 --n 8            # print the phase-by-phase trace
     xpose transpose --m 3 --n 5 1 2 3 ... --algorithm c2r
     xpose bench --m 2000 --n 1500     # one-off timing with each engine
*)

open Cmdliner
open Xpose_core

(* Global observability flags, shared by every subcommand: [--trace FILE]
   records spans for the whole invocation and writes Chrome trace_event
   JSON (Perfetto-loadable) on exit; [--metrics] dumps the metrics
   registry on exit; [--calibration FILE] loads the machine's bandwidth
   roofs so traces and reports carry roofline attribution. *)

(* The loaded calibration, if any — read by [report] and the trace
   sink. *)
let calibration : Xpose_obs.Calibrate.t option ref = ref None

let obs_args =
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a trace of the whole invocation and write it to $(docv) \
             as Chrome trace_event JSON (load it at ui.perfetto.dev).")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the metrics registry on exit (one line per metric).")
  in
  let calibration_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "calibration" ] ~docv:"FILE"
          ~doc:
            "Load the machine calibration written by $(b,xpose obs \
             calibrate): traced pass/panel spans gain achieved GB/s and \
             roofline-fraction args, and $(b,xpose report) adds GB/s and \
             roofline columns.")
  in
  let setup trace metrics cal_file =
    Xpose_obs.Clock.install (fun () -> Unix.gettimeofday () *. 1e9);
    (match cal_file with
    | None -> ()
    | Some file -> (
        match Xpose_obs.Calibrate.load ~file with
        | Ok cal -> calibration := Some cal
        | Error msg ->
            Printf.eprintf "warning: ignoring calibration %s: %s\n%!" file msg));
    (match trace with
    | None -> ()
    | Some file ->
        (* The sink rewrites the file with a full (roofline-annotated)
           snapshot on every flush, so a server drained by SIGTERM has
           already written its trace before the at_exit below runs —
           which flushes once more and prints the summary line. *)
        Xpose_obs.Tracer.set_sink
          (Some
             (fun events ->
               let events =
                 match !calibration with
                 | None -> events
                 | Some cal -> Xpose_obs.Roofline.annotate cal events
               in
               let oc = open_out file in
               output_string oc (Xpose_obs.Tracer.to_chrome_json_events events);
               close_out oc));
        Xpose_obs.Tracer.start ());
    at_exit (fun () ->
        (match trace with
        | None -> ()
        | Some file ->
            Xpose_obs.Tracer.stop ();
            Xpose_obs.Tracer.flush ();
            Printf.eprintf "trace written to %s (%d events)\n%!" file
              (List.length (Xpose_obs.Tracer.events ())));
        if metrics then print_string (Xpose_obs.Metrics.render ()))
  in
  Term.(const setup $ trace_arg $ metrics_arg $ calibration_arg)

(* [cmd info term] is [Cmd.v] with the observability flags grafted on
   (the setup side effects run before the command body). *)
let cmd info term =
  Cmd.v info Term.(ret (const (fun () r -> r) $ obs_args $ term))

let m_arg =
  Arg.(required & opt (some int) None & info [ "m"; "rows" ] ~docv:"M" ~doc:"Rows.")

let n_arg =
  Arg.(
    required & opt (some int) None & info [ "n"; "cols" ] ~docv:"N" ~doc:"Columns.")

let algorithm_arg =
  let algo_conv =
    Arg.enum
      [ ("auto", `Auto); ("c2r", `C2r); ("r2c", `R2c); ("cycle", `Cycle) ]
  in
  Arg.(
    value & opt algo_conv `Auto
    & info [ "a"; "algorithm" ] ~docv:"ALGO"
        ~doc:"One of auto, c2r, r2c, cycle (cycle-following baseline).")

let order_arg =
  let order_conv =
    Arg.enum [ ("row", Layout.Row_major); ("col", Layout.Col_major) ]
  in
  Arg.(
    value & opt order_conv Layout.Row_major
    & info [ "order" ] ~docv:"ORDER" ~doc:"Storage order: row or col.")

let demo_cmd =
  let doc = "Print the phase-by-phase C2R trace of an M x N iota matrix." in
  let run m n =
    if m < 1 || n < 1 then `Error (false, "dimensions must be positive")
    else begin
      let t = Trace.c2r ~m ~n (Trace.iota ~m ~n) in
      Format.printf "%a" Trace.pp t;
      Format.printf "reinterpreted as %d x %d:@." n m;
      Format.printf "%a" Trace.pp_matrix (Trace.reinterpret t);
      `Ok ()
    end
  in
  cmd (Cmd.info "demo" ~doc) Term.(const run $ m_arg $ n_arg)

let elements_arg =
  Arg.(
    value & pos_all float []
    & info [] ~docv:"ELEMENTS" ~doc:"Matrix elements, row by row.")

module F = Instances.F64
module S = Storage.Float64
module Cycle = Xpose_baselines.Cycle_follow.Make (S)

let transpose_buf ~algorithm ~order ~m ~n buf =
  match algorithm with
  | `Auto -> F.transpose ~order ~m ~n buf
  | `C2r ->
      let tmp = S.create (max m n) in
      F.transpose_with ~algorithm:`C2r ~order ~m ~n buf ~tmp
  | `R2c ->
      let tmp = S.create (max m n) in
      F.transpose_with ~algorithm:`R2c ~order ~m ~n buf ~tmp
  | `Cycle -> Cycle.transpose_bitvec ~order ~m ~n buf

let transpose_cmd =
  let doc = "Transpose the given elements in place and print the result." in
  let run m n algorithm order elements =
    if List.length elements <> m * n then
      `Error
        ( false,
          Printf.sprintf "expected %d elements for a %d x %d matrix, got %d"
            (m * n) m n (List.length elements) )
    else begin
      let buf = S.create (m * n) in
      List.iteri (fun i v -> S.set buf i v) elements;
      transpose_buf ~algorithm ~order ~m ~n buf;
      for i = 0 to n - 1 do
        for j = 0 to m - 1 do
          if j > 0 then print_char ' ';
          Printf.printf "%g"
            (S.get buf
               (match order with
               | Layout.Row_major -> (i * m) + j
               | Layout.Col_major -> (j * n) + i))
        done;
        print_newline ()
      done;
      `Ok ()
    end
  in
  cmd (Cmd.info "transpose" ~doc)
    Term.(const run $ m_arg $ n_arg $ algorithm_arg $ order_arg $ elements_arg)

let rotate_cmd =
  let doc = "Rotate the given M x N elements a quarter or half turn in place." in
  let dir_conv =
    Arg.enum [ ("cw", `Cw); ("ccw", `Ccw); ("half", `Half) ]
  in
  let dir_arg =
    Arg.(
      value & opt dir_conv `Cw
      & info [ "d"; "direction" ] ~docv:"DIR" ~doc:"cw, ccw or half.")
  in
  let run m n dir elements =
    if List.length elements <> m * n then
      `Error
        ( false,
          Printf.sprintf "expected %d elements for a %d x %d matrix, got %d"
            (m * n) m n (List.length elements) )
    else begin
      let module R = Rotate90.Make (S) in
      let buf = S.create (m * n) in
      List.iteri (fun i v -> S.set buf i v) elements;
      let out_m, out_n =
        match dir with
        | `Cw ->
            R.clockwise ~m ~n buf;
            (n, m)
        | `Ccw ->
            R.counter_clockwise ~m ~n buf;
            (n, m)
        | `Half ->
            R.half_turn ~m ~n buf;
            (m, n)
      in
      for i = 0 to out_m - 1 do
        for j = 0 to out_n - 1 do
          if j > 0 then print_char ' ';
          Printf.printf "%g" (S.get buf ((i * out_n) + j))
        done;
        print_newline ()
      done;
      `Ok ()
    end
  in
  cmd (Cmd.info "rotate" ~doc)
    Term.(const run $ m_arg $ n_arg $ dir_arg $ elements_arg)

let plan_cmd =
  let doc = "Print the transposition plan and permutation structure for M x N." in
  let run m n =
    if m < 1 || n < 1 then `Error (false, "dimensions must be positive")
    else begin
      let p = Plan.make ~m ~n in
      Format.printf "%a@." Plan.pp p;
      Printf.printf "coprime: %b (pre-rotation %s)
" (Plan.coprime p)
        (if Plan.coprime p then "skipped" else "required");
      Printf.printf "scratch elements: %d
" (Plan.scratch_elements p);
      let touches, _ = Theory.theorem6_work_and_space p in
      Printf.printf "element touches: %d (bound %d = 6mn)
" touches (6 * m * n);
      let lengths = Xpose_baselines.Cycle_follow.cycle_lengths ~m ~n in
      let longest = Array.fold_left max 1 lengths in
      Printf.printf
        "monolithic permutation: %d cycles, longest %d of %d elements (%.1f%%)
"
        (Array.length lengths) longest (m * n)
        (100.0 *. float_of_int longest /. float_of_int (m * n));
      Printf.printf "decomposition's largest independent unit: %d elements
"
        (max m n);
      `Ok ()
    end
  in
  cmd (Cmd.info "plan" ~doc) Term.(const run $ m_arg $ n_arg)

(* Engine selection shared by bench and report: [functor] is the
   element-generic Algo functor, [kernels] the specialized float64
   kernels, [decomposed] the same kernels with the §4.1 decomposed
   column passes (separate col_rotate / row_permute sweeps), [cache]
   the cache-aware §4.6/4.7 sweeps, [fused] the pass-fused panel
   engine, [ooc] the windowed out-of-core engine (bench only: it
   transposes a backing file under a --window-bytes residency budget). *)
let engine_conv =
  Arg.enum
    [
      ("functor", `Functor);
      ("kernels", `Kernels);
      ("decomposed", `Decomposed);
      ("cache", `Cache);
      ("fused", `Fused);
      ("ooc", `Ooc);
      ("tuned", `Tuned);
    ]

let engine_arg =
  Arg.(
    value & opt engine_conv `Functor
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "One of functor, kernels, decomposed, cache, fused, ooc, tuned. \
           The tuned engine looks the shape up in a tuning DB written by \
           $(b,xpose tune) (pass --db) and runs whatever won there. See the \
           bench suite for what each measures.")

(* Kernel tier of the fused engine's inner loops (scalar | mk8 | mk16).
   Only the fused engine has the micro-kernel tier; the tuned engine
   reads its tier from the DB entry instead. *)
let tier_arg =
  let tier_conv =
    Arg.enum
      (List.map
         (fun t -> (Tune_params.tier_to_string t, t))
         Tune_params.supported_tiers)
  in
  Arg.(
    value & opt tier_conv Tune_params.Scalar
    & info [ "tier" ] ~docv:"TIER"
        ~doc:
          "Inner-loop kernel tier of the fused engine: scalar, mk8 or mk16 \
           (in-register 8x8 / 16x16 blocked column movers). Only meaningful \
           with the fused engine; every tier computes the same result.")

module CA = Xpose_cpu.Cache_aware.Make (S)
module ES = Xpose_tune.Engine_select

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_tuning_db file =
  match read_whole_file file with
  | exception Sys_error msg -> Error msg
  | bytes -> Xpose_tune.Db.of_json bytes

let db_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "db" ] ~docv:"FILE"
        ~doc:
          "Tuning DB written by $(b,xpose tune); required by the tuned \
           engine, ignored by the others.")

let transpose_engine ~engine ~algorithm ~m ~n buf =
  match engine with
  | `Functor -> transpose_buf ~algorithm ~order:Layout.Row_major ~m ~n buf
  | `Kernels -> Kernels_f64.transpose ~m ~n buf
  | `Decomposed ->
      let tmp = S.create (max m n) in
      if m > n then
        Kernels_f64.c2r ~variant:Algo.C2r_decomposed (Plan.make ~m ~n) buf ~tmp
      else
        Kernels_f64.r2c ~variant:Algo.R2c_decomposed (Plan.make ~m:n ~n:m) buf
          ~tmp
  | `Cache ->
      let tmp = S.create (max m n) in
      if m > n then CA.c2r (Plan.make ~m ~n) buf ~tmp
      else CA.r2c (Plan.make ~m:n ~n:m) buf ~tmp
  | `Fused -> Xpose_cpu.Fused_f64.transpose ~m ~n buf
  | `Ooc ->
      (* bench routes the ooc engine to its file path before reaching
         here; the other subcommands reject it. *)
      invalid_arg "the ooc engine transposes files, not in-RAM buffers"
  | `Tuned ->
      (* bench builds a selector from --db before reaching here; the
         other subcommands reject it. *)
      invalid_arg "the tuned engine needs a tuning DB (xpose bench --db)"

(* The out-of-core bench leg: stage an iota matrix in a temp file,
   transpose it in place in the file under the window budget, verify
   against the oracle. *)
let bench_ooc ~m ~n ~workers ~window_bytes ~prefetch =
  let path = Filename.temp_file "xpose_bench_ooc" ".mat" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Xpose_mmap.File_matrix.create ~path ~elements:(m * n);
      Xpose_mmap.File_matrix.with_map ~path (fun buf ->
          Storage.fill_iota (module S) buf);
      let t0 = Unix.gettimeofday () in
      (if workers = 1 then
         Xpose_ooc.Ooc_f64.transpose_file ~window_bytes ~prefetch ~path ~m ~n ()
       else
         Xpose_cpu.Pool.with_pool ~workers (fun pool ->
             Xpose_ooc.Ooc_f64.transpose_file ~pool ~window_bytes ~prefetch
               ~path ~m ~n ()));
      let dt = Unix.gettimeofday () -. t0 in
      let gbps = 2.0 *. float_of_int (m * n * 8) /. (dt *. 1e9) in
      Printf.printf "%d x %d float64 out-of-core (window %d B): %.3f ms, %.3f GB/s\n"
        m n window_bytes (dt *. 1e3) gbps;
      let ok = ref true in
      Xpose_mmap.File_matrix.with_map ~write:false ~path (fun buf ->
          for l = 0 to (m * n) - 1 do
            let expected = float_of_int ((n * (l mod m)) + (l / m)) in
            if S.get buf l <> expected then ok := false
          done);
      if !ok then begin
        Printf.printf "verified: result is the transpose\n";
        `Ok ()
      end
      else `Error (false, "verification failed"))

let bench_cmd =
  let doc =
    "Time one in-place transpose of an M x N float64 matrix (or a batch of \
     BATCH same-shape matrices) with the selected engine. The ooc engine \
     transposes a staged temp file in place under the --window-bytes \
     residency budget instead."
  in
  let batch_arg =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"BATCH"
          ~doc:"Number of same-shape matrices to transpose.")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"W"
          ~doc:"Worker domains for batched runs (1 runs serially).")
  in
  let window_bytes_arg =
    Arg.(
      value
      & opt int Xpose_ooc.Ooc_f64.default_window_bytes
      & info [ "window-bytes" ] ~docv:"BYTES"
          ~doc:
            "Resident window budget for the ooc engine: at most $(docv) of \
             the file is mapped at any moment.")
  in
  let no_prefetch_arg =
    Arg.(
      value & flag
      & info [ "no-prefetch" ]
          ~doc:
            "Disable the ooc engine's I/O-domain double-buffered prefetch \
             (windows are mapped synchronously).")
  in
  let run m n algorithm engine tier batch workers window_bytes no_prefetch db =
    if m < 1 || n < 1 then `Error (false, "dimensions must be positive")
    else if batch < 1 then `Error (false, "batch must be >= 1")
    else if workers < 1 then `Error (false, "workers must be >= 1")
    else if tier <> Tune_params.Scalar && engine <> `Fused then
      `Error (false, "--tier selects the fused engine's kernels: use --engine fused")
    else if engine = `Ooc && batch > 1 then
      `Error (false, "the ooc engine has no batched path")
    else if engine = `Ooc && window_bytes < 8 then
      `Error (false, "window-bytes must be >= 8")
    else if engine = `Ooc then
      bench_ooc ~m ~n ~workers ~window_bytes ~prefetch:(not no_prefetch)
    else begin
      let selector =
        match (engine, db) with
        | `Tuned, None ->
            Error "--engine tuned needs --db FILE (written by xpose tune)"
        | `Tuned, Some file -> (
            match load_tuning_db file with
            | Ok tdb -> Ok (Some (ES.create ~db:tdb ()))
            | Error msg ->
                Error (Printf.sprintf "cannot load tuning DB %s: %s" file msg))
        | _ -> Ok None
      in
      match selector with
      | Error msg -> `Error (false, msg)
      | Ok selector ->
      let bufs =
        Array.init batch (fun _ ->
            let buf = S.create (m * n) in
            Storage.fill_iota (module S) buf;
            buf)
      in
      let t0 = Unix.gettimeofday () in
      (if batch = 1 && workers = 1 then
         (match (selector, engine) with
         | Some sel, _ -> ES.dispatch sel ~m ~n bufs.(0)
         | None, `Fused -> Xpose_cpu.Fused_f64.transpose ~tier ~m ~n bufs.(0)
         | None, _ -> transpose_engine ~engine ~algorithm ~m ~n bufs.(0))
       else
         Xpose_cpu.Pool.with_pool ~workers (fun pool ->
             match (engine, selector) with
             | _, Some sel -> ES.dispatch_batch sel pool ~m ~n bufs
             | `Fused, None ->
                 Xpose_cpu.Fused_f64.transpose_batch ~tier pool ~m ~n bufs
             | _ ->
                 (* Other engines have no batched path: fan the serial
                    engine across the pool. *)
                 Xpose_cpu.Pool.parallel_for pool ~lo:0 ~hi:batch (fun b ->
                     transpose_engine ~engine ~algorithm ~m ~n bufs.(b))));
      let dt = Unix.gettimeofday () -. t0 in
      (match selector with
      | Some sel ->
          Printf.printf "tuned: %s (%s)\n"
            (Tune_params.to_string (ES.params_for sel ~m ~n))
            (if ES.hits sel > 0 then "db hit" else "db miss, default")
      | None -> ());
      let bytes = 2.0 *. float_of_int (batch * m * n * 8) in
      let gbps = bytes /. (dt *. 1e9) in
      if batch = 1 then
        Printf.printf "%d x %d float64: %.3f ms, %.3f GB/s\n" m n (dt *. 1e3)
          gbps
      else
        Printf.printf "%d x (%d x %d) float64: %.3f ms, %.3f GB/s\n" batch m n
          (dt *. 1e3) gbps;
      (* verify *)
      let ok = ref true in
      Array.iter
        (fun buf ->
          for l = 0 to (m * n) - 1 do
            let expected = float_of_int ((n * (l mod m)) + (l / m)) in
            if S.get buf l <> expected then ok := false
          done)
        bufs;
      if !ok then begin
        if batch = 1 then Printf.printf "verified: result is the transpose\n"
        else Printf.printf "verified: all %d results are transposes\n" batch;
        `Ok ()
      end
      else `Error (false, "verification failed")
    end
  in
  cmd (Cmd.info "bench" ~doc)
    Term.(
      const run $ m_arg $ n_arg $ algorithm_arg $ engine_arg $ tier_arg
      $ batch_arg $ workers_arg $ window_bytes_arg $ no_prefetch_arg $ db_arg)

let permute_cmd =
  let doc =
    "Plan a rank-N in-place axis permutation, print the chosen decomposition \
     and its predicted cost, then execute and verify it."
  in
  let dims_arg =
    Arg.(
      required
      & opt (some (list int)) None
      & info [ "dims" ] ~docv:"D0,D1,..."
          ~doc:"Tensor dimensions, row-major (last axis fastest).")
  in
  let perm_arg =
    Arg.(
      required
      & opt (some (list int)) None
      & info [ "perm" ] ~docv:"P0,P1,..."
          ~doc:
            "Axis permutation: output axis $(i,k) carries source axis \
             $(i,Pk) (NumPy transpose convention).")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Also list the rejected candidate plans.")
  in
  let run dims perm all =
    let dims = Array.of_list dims and perm = Array.of_list perm in
    let module P = Xpose_permute in
    match P.Shape.validate ~dims ~perm with
    | exception Invalid_argument msg -> `Error (false, msg)
    | () ->
        let module Si = Storage.Int_elt in
        let module Nd = Tensor_nd.Make (Si) in
        let plan = Tensor_nd.plan ~dims ~perm in
        Format.printf "%a" P.Permute.pp_plan plan;
        if all then begin
          match Tensor_nd.candidates ~dims ~perm with
          | _ :: (_ :: _ as rest) ->
              List.iter
                (fun (c : P.Permute.plan) ->
                  Format.printf "rejected: %d passes, score %.1f@."
                    c.P.Permute.cost.P.Cost.passes c.P.Permute.cost.P.Cost.score)
                rest
          | _ -> print_endline "no other candidates"
        end;
        let total = P.Shape.nelems dims in
        let buf = Si.create total in
        Storage.fill_iota (module Si) buf;
        Nd.execute plan buf;
        let ok = ref true in
        for l = 0 to total - 1 do
          let dst =
            P.Shape.permuted_index ~dims ~perm (P.Shape.multi_index ~dims l)
          in
          if Si.get buf dst <> l then ok := false
        done;
        if !ok then begin
          Printf.printf "verified: %d elements match the permuted_index oracle\n"
            total;
          `Ok ()
        end
        else `Error (false, "verification failed")
  in
  cmd (Cmd.info "permute" ~doc)
    Term.(const run $ dims_arg $ perm_arg $ all_arg)

let report_cmd =
  let doc =
    "Run one traced in-place transpose of an M x N float64 matrix on a \
     worker pool and print the per-pass predicted-vs-measured report: \
     Theorem-6 element touches, measured time, relative error of the \
     touch-proportional time model, and pool load imbalance."
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"W"
          ~doc:"Worker domains for the pool (1 runs serially).")
  in
  let repeats_arg =
    Arg.(
      value & opt int 1
      & info [ "repeats" ] ~docv:"R"
          ~doc:"Trace $(docv) runs and report the fastest one.")
  in
  let no_times_arg =
    Arg.(
      value & flag
      & info [ "no-times" ]
          ~doc:
            "Omit the wall-clock-derived columns (measured time, relative \
             error, imbalance) so the output is deterministic.")
  in
  let run m n algorithm engine tier workers repeats no_times =
    if m < 1 || n < 1 then `Error (false, "dimensions must be positive")
    else if workers < 1 then `Error (false, "workers must be >= 1")
    else if repeats < 1 then `Error (false, "repeats must be >= 1")
    else if tier <> Tune_params.Scalar && engine <> `Fused then
      `Error (false, "--tier selects the fused engine's kernels: use --engine fused")
    else begin
      let module PT = Xpose_cpu.Par_transpose.Make (S) in
      let module FF = Xpose_cpu.Fused_f64 in
      (* §5.2 heuristic, as in [transpose]: more rows than columns
         favours C2R; both orientations transpose the row-major m x n
         buffer in place. *)
      let algorithm =
        match algorithm with
        | `Auto -> if m > n then `C2r else `R2c
        | (`C2r | `R2c | `Cycle) as a -> a
      in
      match (algorithm, engine) with
      | `Cycle, _ -> `Error (false, "report: algorithm must be c2r or r2c")
      | _, (`Kernels | `Decomposed | `Cache | `Ooc | `Tuned) ->
          `Error (false, "report: engine must be functor or fused")
      | (`C2r | `R2c) as algorithm, ((`Functor | `Fused) as engine) ->
          let transpose_once pool buf =
            match (engine, algorithm) with
            | `Functor, `C2r -> PT.c2r pool (Plan.make ~m ~n) buf
            | `Functor, `R2c -> PT.r2c pool (Plan.make ~m:n ~n:m) buf
            | `Fused, `C2r -> FF.c2r_pool ~tier pool (Plan.make ~m ~n) buf
            | `Fused, `R2c -> FF.r2c_pool ~tier pool (Plan.make ~m:n ~n:m) buf
          in
          let buf = S.create (m * n) in
          let best = ref None in
          Xpose_cpu.Pool.with_pool ~workers (fun pool ->
              for _ = 1 to repeats do
                Storage.fill_iota (module S) buf;
                Xpose_obs.Tracer.start ();
                transpose_once pool buf;
                Xpose_obs.Tracer.stop ();
                let r =
                  Xpose_obs.Report.of_events ?cal:!calibration
                    (Xpose_obs.Tracer.events ())
                in
                match !best with
                | Some (b : Xpose_obs.Report.t)
                  when b.total_ns <= r.Xpose_obs.Report.total_ns ->
                    ()
                | _ -> best := Some r
              done);
          let ok = ref true in
          for l = 0 to (m * n) - 1 do
            if S.get buf l <> float_of_int ((n * (l mod m)) + (l / m)) then
              ok := false
          done;
          if not !ok then `Error (false, "verification failed")
          else begin
            Printf.printf "%d x %d float64 %s, %d worker%s, best of %d:\n" m n
              (match algorithm with `C2r -> "c2r" | `R2c -> "r2c")
              workers
              (if workers = 1 then "" else "s")
              repeats;
            (match !best with
            | None -> ()
            | Some r ->
                print_string
                  (Xpose_obs.Report.render ~show_times:(not no_times) r));
            `Ok ()
          end
    end
  in
  cmd (Cmd.info "report" ~doc)
    Term.(
      const run $ m_arg $ n_arg $ algorithm_arg $ engine_arg $ tier_arg
      $ workers_arg $ repeats_arg $ no_times_arg)

let check_cmd =
  let doc =
    "Statically verify the engines: prove every plan's pass pipeline equal to \
     the transpose specification (symbolic, no data movement), prove the \
     parallel drivers' chunk footprints disjoint, optionally run the \
     checked-access engine twins, and optionally certify every unsafe access \
     in bounds and alias-free parametrically, for all shapes at once \
     (--prove-bounds). Non-zero exit on any violation or seeded detection."
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let shadow_arg =
    Arg.(
      value & flag
      & info [ "shadow" ]
          ~doc:
            "Also run the checked-access twins of the float64 engines on \
             real (small) buffers: every access bounds-verified.")
  in
  let seed_race_arg =
    Arg.(
      value & flag
      & info [ "seed-race" ]
          ~doc:
            "Negative test: model the pool's chunk split with a deliberate \
             off-by-one; the race analyzer must detect the overlap (non-zero \
             exit).")
  in
  let seed_oob_arg =
    Arg.(
      value & flag
      & info [ "seed-oob" ]
          ~doc:
            "Negative test: run a checked kernel over a deliberately short \
             buffer; the access checker must detect the out-of-bounds read \
             (non-zero exit).")
  in
  let prove_bounds_arg =
    Arg.(
      value & flag
      & info [ "prove-bounds" ]
          ~doc:
            "Add the parametric certificate grids: prove every access of \
             every engine pipeline in bounds, and every chunk/window split \
             and barrier footprint alias-free, for all shapes, widths, lane \
             counts and window budgets at once (symbolic proofs, no \
             enumeration).")
  in
  let seed_oob_static_arg =
    Arg.(
      value & flag
      & info [ "seed-oob-static" ]
          ~doc:
            "Negative test: certify a deliberately off-by-one access \
             summary; the bounds prover must refute it with a concrete \
             witness shape (non-zero exit).")
  in
  let only_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "only" ] ~docv:"ANALYSIS,.."
          ~doc:
            "Restrict the report to the named analyses: perm (plan), race, \
             shadow, bounds, alias. Naming an opt-in analysis enables it.")
  in
  let lanes_arg =
    Arg.(
      value
      & opt (list int) Xpose_check.Driver.default_lanes
      & info [ "lanes" ] ~docv:"L1,L2,.."
          ~doc:"Worker-lane counts to analyze the parallel footprints at.")
  in
  let run json shadow seed_race seed_oob prove_bounds seed_oob_static only
      lanes =
    if lanes = [] || List.exists (fun l -> l < 1) lanes then
      `Error (false, "lanes must be positive")
    else
      match
        List.find_opt
          (fun f -> Xpose_check.Driver.family_of_name f = None)
          only
      with
      | Some bad ->
          `Error
            ( false,
              Printf.sprintf
                "unknown analysis %S (expected perm, race, shadow, bounds or \
                 alias)"
                bad )
      | None -> begin
          let r =
            Xpose_check.Driver.run ~lanes ~seed_race ~seed_oob ~shadow
              ~prove_bounds ~seed_oob_static ~only ()
          in
          if json then print_string (Xpose_check.Driver.to_json r)
          else Format.printf "%a" Xpose_check.Driver.pp r;
          match Xpose_check.Driver.verdict r with
          | Ok () -> `Ok ()
          | Error msg -> `Error (false, msg)
        end
  in
  cmd (Cmd.info "check" ~doc)
    Term.(
      const run $ json_arg $ shadow_arg $ seed_race_arg $ seed_oob_arg
      $ prove_bounds_arg $ seed_oob_static_arg $ only_arg $ lanes_arg)

(* -- the job server ------------------------------------------------------ *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

(* NAME:QUOTA:WINDOW, sizes in bytes. *)
let tenant_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ name; quota; window ] -> (
        match (int_of_string_opt quota, int_of_string_opt window) with
        | Some quota_bytes, Some window_bytes
          when quota_bytes >= 1 && window_bytes >= 8 ->
            Ok { Xpose_server.Admission.name; quota_bytes; window_bytes }
        | _ -> Error (`Msg (Printf.sprintf "bad tenant sizes in %S" s)))
    | _ -> Error (`Msg (Printf.sprintf "expected NAME:QUOTA:WINDOW, got %S" s))
  in
  let print ppf (t : Xpose_server.Admission.tenant) =
    Format.fprintf ppf "%s:%d:%d" t.name t.quota_bytes t.window_bytes
  in
  Arg.conv (parse, print)

let serve_cmd =
  let doc =
    "Run the transpose job server on a Unix-domain socket: framed \
     transpose/stats requests, priority queues with shape-coalescing \
     batching, admission control under a global memory budget (over-quota \
     jobs run out-of-core under the tenant's window), backpressure replies \
     when saturated. SIGTERM or SIGINT shuts down cleanly: every admitted \
     job is answered first."
  in
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"W" ~doc:"Worker domains for the engines.")
  in
  let budget_arg =
    Arg.(
      value
      & opt int (1024 * 1024 * 1024)
      & info [ "budget-bytes" ] ~docv:"BYTES"
          ~doc:
            "Global admission budget: payload bytes in flight (queued plus \
             executing) never exceed $(docv); requests beyond it get a busy \
             reply.")
  in
  let quota_arg =
    Arg.(
      value
      & opt int (16 * 1024 * 1024)
      & info [ "quota-bytes" ] ~docv:"BYTES"
          ~doc:
            "Default per-tenant in-memory footprint quota: bigger jobs are \
             routed to the out-of-core engine.")
  in
  let window_arg =
    Arg.(
      value
      & opt int (4 * 1024 * 1024)
      & info [ "window-bytes" ] ~docv:"BYTES"
          ~doc:
            "Default per-tenant residency window for out-of-core routed \
             jobs.")
  in
  let tenant_arg =
    Arg.(
      value & opt_all tenant_conv []
      & info [ "tenant" ] ~docv:"NAME:QUOTA:WINDOW"
          ~doc:"Per-tenant override (repeatable), sizes in bytes.")
  in
  let max_queue_jobs_arg =
    Arg.(
      value & opt int 1024
      & info [ "max-queue-jobs" ] ~docv:"N"
          ~doc:"Per-priority queue depth before backpressure.")
  in
  let max_queue_bytes_arg =
    Arg.(
      value
      & opt int (256 * 1024 * 1024)
      & info [ "max-queue-bytes" ] ~docv:"BYTES"
          ~doc:"Queued payload bytes before backpressure.")
  in
  let coalesce_us_arg =
    Arg.(
      value & opt int 2000
      & info [ "coalesce-window-us" ] ~docv:"US"
          ~doc:
            "Same-shape requests arriving within $(docv) microseconds are \
             batched through one fused transpose_batch dispatch.")
  in
  let max_batch_arg =
    Arg.(
      value & opt int 8
      & info [ "max-batch" ] ~docv:"N" ~doc:"Largest coalesced batch.")
  in
  let no_prefetch_arg =
    Arg.(
      value & flag
      & info [ "no-prefetch" ]
          ~doc:"Disable the ooc engine's I/O-domain prefetch for routed jobs.")
  in
  let metrics_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-file" ] ~docv:"FILE"
          ~doc:
            "Periodically rewrite $(docv) with the Prometheus text \
             exposition of the server's metrics (atomic \
             write-then-rename), plus once more on shutdown.")
  in
  let metrics_interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "metrics-interval-s" ] ~docv:"S"
          ~doc:"Seconds between metrics-file dumps.")
  in
  let tuning_db_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tuning-db" ] ~docv:"FILE"
          ~doc:
            "Tuning DB written by $(b,xpose tune): dispatches consult it \
             per shape (tuned engine, panel width, batch split; ooc window \
             capped at the tenant's). Missing or unreadable files degrade \
             to default parameters.")
  in
  let run socket workers budget quota window tenants max_queue_jobs
      max_queue_bytes coalesce_us max_batch no_prefetch metrics_file
      metrics_interval tuning_db =
    if workers < 1 then `Error (false, "workers must be >= 1")
    else if budget < 8 then `Error (false, "budget-bytes must be >= 8")
    else if quota < 8 then `Error (false, "quota-bytes must be >= 8")
    else if window < 8 then `Error (false, "window-bytes must be >= 8")
    else if max_batch < 1 then `Error (false, "max-batch must be >= 1")
    else if coalesce_us < 0 then `Error (false, "coalesce-window-us must be >= 0")
    else if not (metrics_interval > 0.0) then
      `Error (false, "metrics-interval-s must be > 0")
    else begin
      let cfg =
        {
          (Xpose_server.Server.default_config ~socket_path:socket) with
          workers;
          budget_bytes = budget;
          default_quota_bytes = quota;
          default_window_bytes = window;
          tenants;
          max_queue_jobs;
          max_queue_bytes;
          coalesce_window_ns = coalesce_us * 1000;
          max_batch;
          prefetch = not no_prefetch;
          metrics_file;
          metrics_interval_s = metrics_interval;
          tuning_db;
        }
      in
      let server = Xpose_server.Server.start cfg in
      let stop_rd, stop_wr = Unix.pipe () in
      let request_stop _ =
        try ignore (Unix.write stop_wr (Bytes.make 1 '!') 0 1)
        with Unix.Unix_error _ -> ()
      in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
      Printf.printf "xpose server listening on %s (workers %d, budget %d B)\n%!"
        socket workers budget;
      let rec wait () =
        match Unix.select [ stop_rd ] [] [] (-1.0) with
        | [], _, _ -> wait ()
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      wait ();
      Printf.printf "shutting down: draining admitted jobs\n%!";
      Xpose_server.Server.stop server;
      Printf.printf "server stopped\n%!";
      `Ok ()
    end
  in
  cmd (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ workers_arg $ budget_arg $ quota_arg
      $ window_arg $ tenant_arg $ max_queue_jobs_arg $ max_queue_bytes_arg
      $ coalesce_us_arg $ max_batch_arg $ no_prefetch_arg $ metrics_file_arg
      $ metrics_interval_arg $ tuning_db_arg)

(* Pull one "name": value field out of the stats JSON without a JSON
   dependency: the server emits flat two-level objects with quoted keys,
   so a textual scan for the exact quoted key is unambiguous. *)
let json_number_field json name =
  let needle = Printf.sprintf "\"%s\":" name in
  match String.index_opt json '{' with
  | None -> None
  | Some _ -> (
      let rec find from =
        match String.index_from_opt json from '"' with
        | None -> None
        | Some q ->
            if
              q + String.length needle <= String.length json
              && String.sub json q (String.length needle) = needle
            then Some (q + String.length needle)
            else find (q + 1)
      in
      match find 0 with
      | None -> None
      | Some p ->
          let len = String.length json in
          let p = ref p in
          while !p < len && (json.[!p] = ' ' || json.[!p] = '\n') do incr p done;
          let q = ref !p in
          while
            !q < len
            && (match json.[!q] with
               | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
               | _ -> false)
          do
            incr q
          done;
          float_of_string_opt (String.sub json !p (!q - !p)))

let loadtest_cmd =
  let doc =
    "Replay the paper's random-shape distribution (element counts drawn \
     log-uniformly from 1000-250000, a bounded pool of distinct shapes as a \
     serving workload would repeat) as concurrent client traffic against a \
     running server; verify every result against the transpose oracle, \
     retry on backpressure, and report p50/p99 latency, throughput, and the \
     server's coalesce/admission/residency counters as JSON."
  in
  let clients_arg =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~docv:"C" ~doc:"Concurrent client connections.")
  in
  let requests_arg =
    Arg.(
      value & opt int 100
      & info [ "requests" ] ~docv:"R" ~doc:"Requests per client.")
  in
  let shapes_arg =
    Arg.(
      value & opt int 12
      & info [ "shapes" ] ~docv:"S"
          ~doc:"Distinct shapes in the replayed distribution.")
  in
  let min_elems_arg =
    Arg.(
      value & opt int 1000
      & info [ "min-elems" ] ~docv:"E" ~doc:"Smallest matrix element count.")
  in
  let max_elems_arg =
    Arg.(
      value & opt int 250000
      & info [ "max-elems" ] ~docv:"E" ~doc:"Largest matrix element count.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Traffic seed.")
  in
  let tenant_name_arg =
    Arg.(
      value & opt string ""
      & info [ "tenant-name" ] ~docv:"NAME" ~doc:"Tenant to submit as.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write the JSON report to $(docv).")
  in
  let lt_engine_arg =
    Arg.(
      value
      & opt (enum [ ("fused", `Fused); ("tuned", `Tuned) ]) `Fused
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "fused reports the classic serving counters; tuned additionally \
             reports the server's tuning-DB hit ratio (tune_db.hits / \
             tune_db.misses) — run the server with $(b,--tuning-db) for the \
             lookups to hit.")
  in
  let run socket clients requests shapes min_elems max_elems seed tenant out
      lt_engine =
    if clients < 1 then `Error (false, "clients must be >= 1")
    else if requests < 1 then `Error (false, "requests must be >= 1")
    else if shapes < 1 then `Error (false, "shapes must be >= 1")
    else if min_elems < 4 || max_elems < min_elems then
      `Error (false, "need 4 <= min-elems <= max-elems")
    else begin
      let module C = Xpose_server.Client in
      let module P = Xpose_server.Protocol in
      (* The shape pool: element counts log-uniform over
         [min_elems, max_elems] (the paper's evaluation range), rows
         bounded so even the widest matrix stays within an ooc window's
         two-rows-and-two-columns regime. *)
      let rng = Random.State.make [| seed |] in
      let shape_pool =
        Array.init shapes (fun _ ->
            let lo = log (float_of_int min_elems)
            and hi = log (float_of_int max_elems) in
            let target =
              int_of_float (exp (lo +. Random.State.float rng (hi -. lo)))
            in
            let m = 16 + Random.State.int rng 497 in
            let n = max 1 (target / m) in
            (m, n))
      in
      let mu = Mutex.create () in
      (* Latencies go into a sharded histogram instead of per-worker
         lists: O(1) memory under any request count, and the quantiles
         come from the same bucket-interpolated estimator the server's
         exposition uses. *)
      let lat_hist = Xpose_obs.Metrics.histogram "loadtest.latency_ns" in
      let ok = ref 0
      and busy_retries = ref 0
      and failed = ref 0
      and verify_failures = ref 0
      and payload_bytes = ref 0 in
      let worker k () =
        let rng = Random.State.make [| seed; k |] in
        let w_ok = ref 0
        and w_busy = ref 0
        and w_failed = ref 0
        and w_bad = ref 0
        and w_bytes = ref 0 in
        C.with_client ~socket_path:socket (fun client ->
            for _ = 1 to requests do
              let m, n = shape_pool.(Random.State.int rng shapes) in
              let buf = S.create (m * n) in
              Storage.fill_iota (module S) buf;
              let rec attempt tries =
                let t0 = Unix.gettimeofday () in
                match C.transpose ~tenant client ~m ~n buf with
                | P.Result { m = rm; n = rn; payload; _ } ->
                    let dt_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
                    Xpose_obs.Metrics.observe lat_hist dt_ns;
                    incr w_ok;
                    w_bytes := !w_bytes + (m * n * 8);
                    if rm <> n || rn <> m then incr w_bad
                    else begin
                      let good = ref true in
                      for l = 0 to (m * n) - 1 do
                        let expected =
                          float_of_int ((n * (l mod m)) + (l / m))
                        in
                        if S.get payload l <> expected then good := false
                      done;
                      if not !good then incr w_bad
                    end
                | P.Busy _ ->
                    incr w_busy;
                    if tries >= 200 then incr w_failed
                    else begin
                      Thread.delay (0.001 *. float_of_int (1 + (tries mod 8)));
                      attempt (tries + 1)
                    end
                | P.Error_reply _ | P.Stats_reply _ -> incr w_failed
              in
              attempt 0
            done);
        Mutex.lock mu;
        ok := !ok + !w_ok;
        busy_retries := !busy_retries + !w_busy;
        failed := !failed + !w_failed;
        verify_failures := !verify_failures + !w_bad;
        payload_bytes := !payload_bytes + !w_bytes;
        Mutex.unlock mu
      in
      let t0 = Unix.gettimeofday () in
      let threads = List.init clients (fun k -> Thread.create (worker k) ()) in
      List.iter Thread.join threads;
      let wall_s = Unix.gettimeofday () -. t0 in
      let stats =
        C.with_client ~socket_path:socket (fun client -> C.stats client)
      in
      let counter name =
        match json_number_field stats name with Some v -> v | None -> 0.0
      in
      let batches = counter "server.batches" in
      let batched = counter "server.batched_jobs" in
      let coalesce_ratio = if batches > 0.0 then batched /. batches else 0.0 in
      let pct p =
        let v = Xpose_obs.Metrics.histogram_quantile lat_hist p in
        if Float.is_nan v then 0.0 else v
      in
      let mean =
        let c = Xpose_obs.Metrics.histogram_count lat_hist in
        if c = 0 then 0.0
        else Xpose_obs.Metrics.histogram_sum lat_hist /. float_of_int c
      in
      let b = Buffer.create 1024 in
      Printf.bprintf b "{\n  \"suite\": \"xpose_server\",\n";
      Printf.bprintf b "  \"clients\": %d,\n  \"requests_per_client\": %d,\n"
        clients requests;
      Printf.bprintf b
        "  \"shapes\": %d,\n  \"min_elems\": %d,\n  \"max_elems\": %d,\n"
        shapes min_elems max_elems;
      Printf.bprintf b "  \"seed\": %d,\n" seed;
      Printf.bprintf b
        "  \"ok\": %d,\n  \"busy_retries\": %d,\n  \"failed\": %d,\n" !ok
        !busy_retries !failed;
      Printf.bprintf b "  \"verify_failures\": %d,\n" !verify_failures;
      Printf.bprintf b
        "  \"p50_latency_ns\": %.0f,\n  \"p99_latency_ns\": %.0f,\n\
        \  \"mean_latency_ns\": %.0f,\n"
        (pct 0.50) (pct 0.99) mean;
      Printf.bprintf b "  \"wall_s\": %.3f,\n" wall_s;
      Printf.bprintf b "  \"throughput_rps\": %.1f,\n"
        (float_of_int !ok /. wall_s);
      Printf.bprintf b "  \"payload_mb_per_s\": %.2f,\n"
        (float_of_int !payload_bytes /. 1e6 /. wall_s);
      Printf.bprintf b
        "  \"coalesce_batches\": %.0f,\n  \"coalesced_jobs\": %.0f,\n\
        \  \"coalesce_ratio\": %.3f,\n"
        batches batched coalesce_ratio;
      Printf.bprintf b
        "  \"admit_fused\": %.0f,\n  \"admit_ooc\": %.0f,\n\
        \  \"rejects_budget\": %.0f,\n  \"rejects_queue\": %.0f,\n"
        (counter "server.admit.fused")
        (counter "server.admit.ooc")
        (counter "server.rejects.budget")
        (counter "server.rejects.queue_full")
      ;
      Printf.bprintf b "  \"ooc_window_peak_bytes\": %.0f,\n"
        (counter "ooc.window_peak_bytes");
      Printf.bprintf b "  \"plan_cache_hits\": %.0f,\n"
        (counter "plan_cache.hits");
      (match lt_engine with
      | `Fused -> ()
      | `Tuned ->
          let hits = counter "tune_db.hits"
          and misses = counter "tune_db.misses" in
          let total = hits +. misses in
          Printf.bprintf b
            "  \"tune_db_hits\": %.0f,\n  \"tune_db_misses\": %.0f,\n\
            \  \"tune_db_hit_ratio\": %.3f,\n"
            hits misses
            (if total > 0.0 then hits /. total else 0.0));
      Printf.bprintf b "  \"server_stats\": %s}\n"
        (String.trim stats);
      let report = Buffer.contents b in
      print_string report;
      (match out with
      | None -> ()
      | Some file ->
          let oc = open_out file in
          output_string oc report;
          close_out oc;
          Printf.eprintf "report written to %s\n%!" file);
      if !verify_failures > 0 then
        `Error (false, "some responses failed oracle verification")
      else if !failed > 0 then
        `Error (false, "some requests failed or exhausted retries")
      else `Ok ()
    end
  in
  cmd (Cmd.info "loadtest" ~doc)
    Term.(
      const run $ socket_arg $ clients_arg $ requests_arg $ shapes_arg
      $ min_elems_arg $ max_elems_arg $ seed_arg $ tenant_name_arg $ out_arg
      $ lt_engine_arg)

let tune_cmd =
  let doc =
    "Tune shapes against the machine's calibration: price the \
     engine/panel-width/batch-split/window search space with the \
     calibrated cost model, time the surviving candidates (best-of-N, \
     bounded by --budget-ms per shape), and record each shape's winner in \
     a persistent tuning DB consumed by $(b,--engine tuned), $(b,xpose \
     serve --tuning-db), and the server's dispatcher. The DB is stamped \
     with the calibration fingerprint: re-running is pure DB hits (zero \
     timing runs) until the calibration changes, which discards every \
     entry and re-tunes."
  in
  let shapes_pos_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"MxN[xNB]"
          ~doc:
            "Shapes to tune, e.g. 512x384 or 512x384x4 (NB = batch size, \
             default 1).")
  in
  let db_file_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "db" ] ~docv:"FILE"
          ~doc:"Tuning DB to read, update, and atomically rewrite.")
  in
  let budget_arg =
    Arg.(
      value & opt float 500.0
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:
            "Per-shape timing budget. The model-predicted best candidate \
             and the default configuration are always timed, whatever the \
             budget, so the winner is never slower than the default.")
  in
  let repeats_arg =
    Arg.(
      value & opt int 3
      & info [ "repeats" ] ~docv:"R"
          ~doc:"Best-of-$(docv) timing per candidate.")
  in
  let keep_arg =
    Arg.(
      value & opt int 8
      & info [ "keep" ] ~docv:"K"
          ~doc:"Candidates surviving the cost-model prune, per shape.")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"W"
          ~doc:
            "Worker domains: tune the pool-parallel variants (batch splits \
             become meaningful).")
  in
  let ooc_window_arg =
    Arg.(
      value & opt_all int []
      & info [ "ooc-window" ] ~docv:"BYTES"
          ~doc:
            "Also consider the out-of-core engine at this residency window \
             (repeatable). Off by default: staging through a file rarely \
             wins for shapes that fit in RAM.")
  in
  let replay_arg =
    Arg.(
      value & opt int 0
      & info [ "replay" ] ~docv:"S"
          ~doc:
            "Instead of (or besides) positional shapes, tune $(docv) \
             distinct shapes drawn from the loadtest traffic distribution \
             (element counts log-uniform over --min-elems..--max-elems), \
             so a server fed by that workload hits the DB.")
  in
  let min_elems_arg =
    Arg.(
      value & opt int 1000
      & info [ "min-elems" ] ~docv:"E"
          ~doc:"Smallest replayed element count.")
  in
  let max_elems_arg =
    Arg.(
      value & opt int 250000
      & info [ "max-elems" ] ~docv:"E"
          ~doc:"Largest replayed element count.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Replay distribution seed.")
  in
  let bench_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE"
          ~doc:
            "Write a bench JSON ({name, ns_per_run} pairs: each shape's \
             tuned winner and its measured default) consumable by $(b,xpose \
             obs diff) — the CI gate that tuned never regresses.")
  in
  let parse_shape str =
    match String.split_on_char 'x' (String.lowercase_ascii str) with
    | [ m; n ] -> (
        match (int_of_string_opt m, int_of_string_opt n) with
        | Some m, Some n when m >= 1 && n >= 1 -> Some (m, n, 1)
        | _ -> None)
    | [ m; n; nb ] -> (
        match (int_of_string_opt m, int_of_string_opt n, int_of_string_opt nb)
        with
        | Some m, Some n, Some nb when m >= 1 && n >= 1 && nb >= 1 ->
            Some (m, n, nb)
        | _ -> None)
    | _ -> None
  in
  (* Same generator as [loadtest]: tuning the replayed distribution
     makes the loadtest's traffic hit the DB. *)
  let replay_shapes ~shapes ~min_elems ~max_elems ~seed =
    let rng = Random.State.make [| seed |] in
    List.init shapes (fun _ ->
        let lo = log (float_of_int min_elems)
        and hi = log (float_of_int max_elems) in
        let target =
          int_of_float (exp (lo +. Random.State.float rng (hi -. lo)))
        in
        let m = 16 + Random.State.int rng 497 in
        let n = max 1 (target / m) in
        (m, n, 1))
  in
  let run shape_strs db_file budget_ms repeats keep workers ooc_windows
      replay min_elems max_elems seed bench_out =
    let bad = List.filter (fun s -> parse_shape s = None) shape_strs in
    if bad <> [] then
      `Error
        ( false,
          Printf.sprintf "cannot parse shape %s (want MxN or MxNxNB)"
            (List.hd bad) )
    else if replay < 0 then `Error (false, "replay must be >= 0")
    else if replay > 0 && (min_elems < 4 || max_elems < min_elems) then
      `Error (false, "need 4 <= min-elems <= max-elems")
    else if budget_ms < 0.0 then `Error (false, "budget-ms must be >= 0")
    else if repeats < 1 then `Error (false, "repeats must be >= 1")
    else if keep < 1 then `Error (false, "keep must be >= 1")
    else if workers < 1 then `Error (false, "workers must be >= 1")
    else if List.exists (fun w -> w < 8) ooc_windows then
      `Error (false, "ooc-window must be >= 8")
    else begin
      let shapes =
        List.filter_map parse_shape shape_strs
        @ (if replay > 0 then
             replay_shapes ~shapes:replay ~min_elems ~max_elems ~seed
           else [])
      in
      match (shapes, !calibration) with
      | [], _ -> `Error (false, "nothing to tune: give shapes or --replay N")
      | _, None ->
          `Error
            ( false,
              "tune needs the machine's roofs: pass --calibration FILE \
               (from xpose obs calibrate)" )
      | shapes, Some cal -> (
          let fingerprint = Xpose_obs.Calibrate.fingerprint cal in
          match Xpose_tune.Db.load ~file:db_file ~fingerprint with
          | Error msg ->
              `Error
                (false, Printf.sprintf "cannot load %s: %s" db_file msg)
          | Ok (db, status) ->
              Printf.printf "tuning DB %s: %s\n" db_file
                (match status with
                | Xpose_tune.Db.Fresh -> "fresh (no previous file)"
                | Xpose_tune.Db.Loaded ->
                    Printf.sprintf "loaded (%d entries, calibration matches)"
                      (Xpose_tune.Db.length db)
                | Xpose_tune.Db.Invalidated ->
                    "invalidated (calibration changed - re-tuning everything)");
              let space =
                if ooc_windows = [] then Xpose_tune.Space.make ()
                else
                  Xpose_tune.Space.make
                    ~engines:
                      [
                        Tune_params.Kernels;
                        Tune_params.Cache;
                        Tune_params.Fused;
                        Tune_params.Ooc;
                      ]
                    ~windows:ooc_windows ()
              in
              let tune_all pool =
                Xpose_tune.Tuner.tune ?pool ~db_file ~cal ~db ~space
                  ~budget_ms ~repeats ~keep shapes
              in
              let outcomes =
                if workers = 1 then tune_all None
                else
                  Xpose_cpu.Pool.with_pool ~workers (fun pool ->
                      tune_all (Some pool))
              in
              let db_hits = ref 0 and timed_total = ref 0 in
              List.iter
                (fun (o : Xpose_tune.Tuner.outcome) ->
                  if o.db_hit then incr db_hits;
                  timed_total := !timed_total + o.timed;
                  let w = o.winner in
                  let speedup =
                    if w.Xpose_tune.Measure.measured_ns > 0.0 then
                      o.default_ns /. w.Xpose_tune.Measure.measured_ns
                    else 1.0
                  in
                  Printf.printf
                    "%dx%d nb=%d: %s %s  %.0f ns/matrix (predicted %.0f, \
                     default %.0f, %.2fx, %.2f roofline)%s\n"
                    o.m o.n o.nb
                    (if o.db_hit then "db-hit" else "tuned ")
                    (Tune_params.to_string w.Xpose_tune.Measure.params)
                    w.Xpose_tune.Measure.measured_ns
                    w.Xpose_tune.Measure.predicted_ns o.default_ns speedup
                    w.Xpose_tune.Measure.roofline_frac
                    (if o.db_hit then ""
                     else
                       Printf.sprintf " [timed %d, pruned %d]" o.timed
                         o.pruned))
                outcomes;
              Printf.printf
                "shapes=%d db_hits=%d tuned=%d timing_runs=%d db_entries=%d\n"
                (List.length outcomes) !db_hits
                (List.length outcomes - !db_hits)
                !timed_total
                (Xpose_tune.Db.length db);
              (match bench_out with
              | None -> ()
              | Some file ->
                  let b = Buffer.create 1024 in
                  Buffer.add_string b
                    "{\n  \"suite\": \"xpose\",\n  \"benchmarks\": [\n";
                  let lines =
                    List.concat_map
                      (fun (o : Xpose_tune.Tuner.outcome) ->
                        let name kind =
                          Printf.sprintf "tune/%dx%d/%s" o.m o.n kind
                        in
                        [
                          ( name "tuned",
                            o.winner.Xpose_tune.Measure.measured_ns );
                          (name "fused_default", o.default_ns);
                        ])
                      outcomes
                  in
                  List.iteri
                    (fun i (name, ns) ->
                      Printf.bprintf b
                        "    {\"name\": \"%s\", \"ns_per_run\": %.3f}%s\n"
                        name ns
                        (if i = (2 * List.length outcomes) - 1 then "" else ","))
                    lines;
                  Buffer.add_string b "  ]\n}\n";
                  let oc = open_out file in
                  output_string oc (Buffer.contents b);
                  close_out oc;
                  Printf.eprintf "bench JSON written to %s\n%!" file);
              `Ok ())
    end
  in
  cmd (Cmd.info "tune" ~doc)
    Term.(
      const run $ shapes_pos_arg $ db_file_arg $ budget_arg $ repeats_arg
      $ keep_arg $ workers_arg $ ooc_window_arg $ replay_arg $ min_elems_arg
      $ max_elems_arg $ seed_arg $ bench_out_arg)

let obs_calibrate_cmd =
  let doc =
    "Measure the machine's four bandwidth roofs (streaming copy, strided \
     gather and scatter at the fused engine's panel width, permuted write) \
     and write them to a JSON calibration file. Load it back with the \
     global $(b,--calibration) flag or $(b,xpose bench --calibration) to \
     get roofline-attributed traces, reports, and bench output."
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the calibration JSON to $(docv).")
  in
  let elems_arg =
    Arg.(
      value & opt int Xpose_obs.Calibrate.default_elems
      & info [ "elems" ] ~docv:"E"
          ~doc:
            "Float64 elements per probe buffer (default 2^21 = 16 MiB, past \
             any sane L2 so the roofs measure memory).")
  in
  let repeats_arg =
    Arg.(
      value & opt int Xpose_obs.Calibrate.default_repeats
      & info [ "repeats" ] ~docv:"R"
          ~doc:"Best-of-$(docv) timing per probe, after a warm-up run.")
  in
  let run out elems repeats =
    if elems < 1024 then `Error (false, "elems must be >= 1024")
    else if repeats < 1 then `Error (false, "repeats must be >= 1")
    else begin
      let cal = Xpose_obs.Calibrate.run ~elems ~repeats () in
      Xpose_obs.Calibrate.save cal ~file:out;
      let open Xpose_obs.Calibrate in
      Printf.printf "calibration written to %s (%d elems, best of %d)\n" out
        cal.elems cal.repeats;
      List.iter
        (fun (name, p) -> Printf.printf "  %-8s %8.3f GB/s\n" name p.gbps)
        [
          ("stream", cal.stream);
          ("gather", cal.gather);
          ("scatter", cal.scatter);
          ("permute", cal.permute);
        ];
      `Ok ()
    end
  in
  cmd
    (Cmd.info "calibrate" ~doc)
    Term.(const run $ out_arg $ elems_arg $ repeats_arg)

let obs_diff_cmd =
  let doc =
    "Compare two bench JSON files (written by the bench driver's --json or \
     by a previous CI run) with noise-aware relative thresholds and print a \
     machine-readable verdict. Exits non-zero when any benchmark slowed \
     down, any counter grew, any roofline fraction dropped beyond its \
     threshold, or a baseline benchmark disappeared — the CI regression \
     sentinel."
  in
  let baseline_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline bench JSON.")
  in
  let current_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Current bench JSON.")
  in
  let d = Xpose_obs.Diff.default_thresholds in
  let time_rel_arg =
    Arg.(
      value & opt float d.Xpose_obs.Diff.time_rel
      & info [ "time-rel" ] ~docv:"FRAC"
          ~doc:"Allowed relative growth of ns_per_run (0.5 = +50%).")
  in
  let counter_rel_arg =
    Arg.(
      value & opt float d.Xpose_obs.Diff.counter_rel
      & info [ "counter-rel" ] ~docv:"FRAC"
          ~doc:"Allowed relative growth of a work counter.")
  in
  let roofline_drop_arg =
    Arg.(
      value & opt float d.Xpose_obs.Diff.roofline_drop
      & info [ "roofline-drop" ] ~docv:"FRAC"
          ~doc:"Allowed absolute drop of a pass's roofline fraction.")
  in
  let min_ns_arg =
    Arg.(
      value & opt float d.Xpose_obs.Diff.min_ns
      & info [ "min-ns" ] ~docv:"NS"
          ~doc:"Absolute floor: time deltas below $(docv) ns are noise.")
  in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let run baseline current time_rel counter_rel roofline_drop min_ns =
    let thresholds =
      { Xpose_obs.Diff.time_rel; counter_rel; roofline_drop; min_ns }
    in
    match
      Xpose_obs.Diff.compare ~thresholds ~baseline:(read_file baseline)
        ~current:(read_file current) ()
    with
    | Error msg -> `Error (false, msg)
    | Ok verdict ->
        print_endline (Xpose_obs.Diff.render_verdict verdict);
        if verdict.Xpose_obs.Diff.ok then `Ok ()
        else begin
          List.iter
            (fun (f : Xpose_obs.Diff.finding) ->
              Printf.eprintf "regression [%s] %s: %s\n%!" f.category f.metric
                f.message)
            verdict.Xpose_obs.Diff.findings;
          `Error (false, "bench regression against baseline")
        end
  in
  cmd (Cmd.info "diff" ~doc)
    Term.(
      const run $ baseline_arg $ current_arg $ time_rel_arg $ counter_rel_arg
      $ roofline_drop_arg $ min_ns_arg)

let stats_cmd =
  let doc =
    "Fetch a running server's metrics snapshot over its socket: the JSON \
     registry dump by default, or with $(b,--text) the Prometheus text \
     exposition (the wire Stats_text request) — counters, gauges, and \
     cumulative histogram buckets with p50/p90/p99 quantile samples, ready \
     for a scraper."
  in
  let text_arg =
    Arg.(
      value & flag
      & info [ "text" ]
          ~doc:"Print the Prometheus text exposition instead of JSON.")
  in
  let run socket text =
    let module C = Xpose_server.Client in
    match
      C.with_client ~socket_path:socket (fun client ->
          if text then C.stats_text client else C.stats client)
    with
    | exception Unix.Unix_error (e, _, _) ->
        `Error
          (false,
           Printf.sprintf "cannot reach server at %s: %s" socket
             (Unix.error_message e))
    | exception C.Protocol_failure msg -> `Error (false, msg)
    | body ->
        print_string body;
        if body = "" || body.[String.length body - 1] <> '\n' then
          print_newline ();
        `Ok ()
  in
  cmd (Cmd.info "stats" ~doc) Term.(const run $ socket_arg $ text_arg)

let obs_cmd =
  let doc =
    "Observability utilities: machine roofline calibration and the bench \
     regression sentinel."
  in
  Cmd.group (Cmd.info "obs" ~doc) [ obs_calibrate_cmd; obs_diff_cmd ]

let main =
  let doc = "In-place matrix transposition by decomposition (PPoPP 2014)." in
  Cmd.group (Cmd.info "xpose" ~doc)
    [
      demo_cmd;
      transpose_cmd;
      rotate_cmd;
      plan_cmd;
      bench_cmd;
      permute_cmd;
      report_cmd;
      check_cmd;
      serve_cmd;
      loadtest_cmd;
      tune_cmd;
      stats_cmd;
      obs_cmd;
    ]

let () = exit (Cmd.eval main)
