(* Differential fuzzer: every transposition implementation in the
   repository is run on the same random matrices and compared against the
   out-of-place reference. Exits non-zero on the first divergence, with a
   reproducer line. Used by CI-style checks (`xpose-fuzz -i 500`) beyond
   the unit test suite's fixed cases. *)

open Cmdliner
open Xpose_core
module S = Storage.Int_elt
module A = Instances.I
module CacheA = Xpose_cpu.Cache_aware.Make (S)
module ParT = Xpose_cpu.Par_transpose.Make (S)
module ParC = Xpose_cpu.Par_cache_aware.Make (S)
module Cycle = Xpose_baselines.Cycle_follow.Make (S)
module Gus = Xpose_baselines.Gustavson.Make (S)
module SungI = Xpose_baselines.Sung.Make (S)

let iota len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let to_list buf = List.init (S.length buf) (S.get buf)

let expected ~m ~n = List.init (m * n) (fun l -> (n * (l mod m)) + (l / m))

type impl = { name : string; run : pool:Xpose_cpu.Pool.t -> m:int -> n:int -> S.t -> unit }

let impls =
  [
    { name = "algo-gather";
      run = (fun ~pool:_ ~m ~n buf ->
          A.c2r ~variant:Algo.C2r_gather (Plan.make ~m ~n) buf
            ~tmp:(S.create (max m n))) };
    { name = "algo-scatter";
      run = (fun ~pool:_ ~m ~n buf ->
          A.c2r ~variant:Algo.C2r_scatter (Plan.make ~m ~n) buf
            ~tmp:(S.create (max m n))) };
    { name = "algo-decomposed";
      run = (fun ~pool:_ ~m ~n buf ->
          A.c2r ~variant:Algo.C2r_decomposed (Plan.make ~m ~n) buf
            ~tmp:(S.create (max m n))) };
    { name = "algo-r2c";
      run = (fun ~pool:_ ~m ~n buf ->
          A.r2c (Plan.make ~m:n ~n:m) buf ~tmp:(S.create (max m n))) };
    { name = "cache-aware";
      run = (fun ~pool:_ ~m ~n buf ->
          CacheA.c2r (Plan.make ~m ~n) buf ~tmp:(S.create (max m n))) };
    { name = "parallel";
      run = (fun ~pool ~m ~n buf -> ParT.c2r pool (Plan.make ~m ~n) buf) };
    { name = "parallel-cache-aware";
      run = (fun ~pool ~m ~n buf -> ParC.c2r pool (Plan.make ~m ~n) buf) };
    { name = "cycle-bitvec";
      run = (fun ~pool:_ ~m ~n buf -> Cycle.transpose_bitvec ~m ~n buf) };
    { name = "cycle-leader";
      run = (fun ~pool:_ ~m ~n buf -> Cycle.transpose_leader ~m ~n buf) };
    { name = "gustavson";
      run = (fun ~pool:_ ~m ~n buf -> Gus.transpose ~m ~n buf) };
    { name = "sung";
      run = (fun ~pool:_ ~m ~n buf -> SungI.transpose ~m ~n buf) };
  ]

module Nd = Tensor_nd.Make (S)
module ParP = Xpose_cpu.Par_permute.Make (S)
module Shape = Xpose_permute.Shape

(* random rank-N permutation problem with at most 2^16 elements *)
let random_problem rng =
  let rank = Xpose_harness.Rng.int_range rng ~lo:1 ~hi:6 in
  let dims = Array.make rank 1 in
  let budget = ref 65536 in
  for ax = 0 to rank - 1 do
    let hi = min 16 !budget in
    dims.(ax) <- Xpose_harness.Rng.int_range rng ~lo:1 ~hi:(hi + 1);
    budget := !budget / dims.(ax)
  done;
  (dims, Xpose_harness.Rng.permutation rng rank)

let permute_check ~pool ~rng it seed failures =
  let dims, perm = random_problem rng in
  let total = Shape.nelems dims in
  let want = Array.make total 0 in
  for l = 0 to total - 1 do
    want.(Shape.permuted_index ~dims ~perm (Shape.multi_index ~dims l)) <- l
  done;
  let reproducer name =
    incr failures;
    Printf.printf "MISMATCH %s at dims %s perm %s (iteration %d, seed %d)\n"
      name
      (Format.asprintf "%a" Shape.pp_dims dims)
      (Format.asprintf "%a" Shape.pp_perm perm)
      it seed
  in
  let agrees buf = Array.for_all Fun.id
      (Array.init total (fun i -> S.to_int (S.get buf i) = want.(i)))
  in
  let serial = iota total in
  (match Nd.permute ~dims ~perm serial with
  | () -> if not (agrees serial) then reproducer "permute-serial"
  | exception exn ->
      incr failures;
      Printf.printf "EXCEPTION permute-serial at dims %s: %s\n"
        (Format.asprintf "%a" Shape.pp_dims dims)
        (Printexc.to_string exn));
  let par = iota total in
  match ParP.permute pool ~dims ~perm par with
  | () -> if not (agrees par) then reproducer "permute-parallel"
  | exception exn ->
      incr failures;
      Printf.printf "EXCEPTION permute-parallel at dims %s: %s\n"
        (Format.asprintf "%a" Shape.pp_dims dims)
        (Printexc.to_string exn)

let gpu_exec_check ~m ~n =
  (* the executed GPU kernels, on a fresh simulated memory *)
  let open Xpose_simd_machine in
  let mem =
    Memory.create Config.k20c
      ~words:((m * n) + Xpose_simd.Gpu_exec.scratch_words ~m ~n)
  in
  for l = 0 to (m * n) - 1 do
    Memory.poke mem l l
  done;
  ignore (Xpose_simd.Gpu_exec.c2r mem ~m ~n);
  List.init (m * n) (Memory.peek mem)

let run_fuzz iterations seed max_dim workers =
  let rng = Xpose_harness.Rng.create ~seed in
  let failures = ref 0 in
  Xpose_cpu.Pool.with_pool ~workers (fun pool ->
      for it = 1 to iterations do
        let m = Xpose_harness.Rng.int_range rng ~lo:1 ~hi:(max_dim + 1) in
        let n = Xpose_harness.Rng.int_range rng ~lo:1 ~hi:(max_dim + 1) in
        let want = expected ~m ~n in
        List.iter
          (fun impl ->
            let buf = iota (m * n) in
            match impl.run ~pool ~m ~n buf with
            | () ->
                if to_list buf <> want then begin
                  incr failures;
                  Printf.printf
                    "MISMATCH %s at m=%d n=%d (iteration %d, seed %d)\n"
                    impl.name m n it seed
                end
            | exception exn ->
                incr failures;
                Printf.printf "EXCEPTION %s at m=%d n=%d: %s\n" impl.name m n
                  (Printexc.to_string exn))
          impls;
        if gpu_exec_check ~m ~n <> want then begin
          incr failures;
          Printf.printf "MISMATCH gpu-exec at m=%d n=%d (iteration %d)\n" m n it
        end;
        permute_check ~pool ~rng it seed failures
      done);
  if !failures = 0 then begin
    Printf.printf "fuzz: %d iterations x %d implementations, all agree\n"
      iterations
      (List.length impls + 1);
    Printf.printf
      "fuzz: %d rank-N permutations x 2 executors, all match the oracle\n"
      iterations;
    `Ok ()
  end
  else `Error (false, Printf.sprintf "%d divergences found" !failures)

let iterations_arg =
  Arg.(value & opt int 50 & info [ "i"; "iterations" ] ~docv:"N" ~doc:"Iterations.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let max_dim_arg =
  Arg.(value & opt int 64 & info [ "max-dim" ] ~docv:"D" ~doc:"Maximum dimension.")

let workers_arg =
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"W" ~doc:"Pool workers.")

let main =
  let doc = "Differential fuzzing across every transposition implementation." in
  Cmd.v (Cmd.info "xpose-fuzz" ~doc)
    Term.(ret (const run_fuzz $ iterations_arg $ seed_arg $ max_dim_arg $ workers_arg))

let () = exit (Cmd.eval main)
