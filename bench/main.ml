(* Bechamel micro-benchmarks: one Test per table/figure of the paper
   (kernel-level, at sizes that settle in milliseconds), plus ablations
   for the design choices DESIGN.md calls out (strength reduction,
   algorithm variants, cache-aware passes, kernel specialization).

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Xpose_core
module S = Storage.Float64
module A = Instances.F64
module Mkl = Xpose_baselines.Mkl_like.Make (S)
module Gus = Xpose_baselines.Gustavson.Make (S)
module Cache = Xpose_cpu.Cache_aware.Make (S)
module ConvAos = Xpose_simd.Aos.Make (S)

let f64_iota len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

(* Each staged closure re-runs on the same buffer; a transpose followed by
   its inverse leaves the buffer unchanged, keeping runs identical. *)

let bench_m = 311
let bench_n = 217

let roundtrip_pair name fwd bwd =
  let buf = f64_iota (bench_m * bench_n) in
  Test.make ~name
    (Staged.stage (fun () ->
         fwd buf;
         bwd buf))

(* -- Table 1 / Figure 3: CPU implementations ---------------------------- *)

let table1_tests =
  let p = Plan.make ~m:bench_m ~n:bench_n in
  let tmp () = S.create (Plan.scratch_elements p) in
  let t1 = tmp () in
  Test.make_grouped ~name:"table1_cpu"
    [
      roundtrip_pair "mkl_like_cycle_leader"
        (fun buf -> Mkl.imatcopy ~rows:bench_m ~cols:bench_n buf)
        (fun buf -> Mkl.imatcopy ~rows:bench_n ~cols:bench_m buf);
      roundtrip_pair "c2r_f64_kernels"
        (fun buf -> Kernels_f64.c2r p buf ~tmp:t1)
        (fun buf -> Kernels_f64.r2c p buf ~tmp:t1);
      roundtrip_pair "c2r_generic_functor"
        (fun buf -> A.c2r p buf ~tmp:t1)
        (fun buf -> A.r2c p buf ~tmp:t1);
      roundtrip_pair "gustavson_tiled"
        (fun buf -> Gus.transpose ~m:bench_m ~n:bench_n buf)
        (fun buf -> Gus.transpose ~m:bench_n ~n:bench_m buf);
    ]

(* -- Table 2 / Figure 6: GPU cost model --------------------------------- *)

let cfg = Xpose_simd_machine.Config.k20c

let table2_tests =
  Test.make_grouped ~name:"table2_gpu_model"
    [
      Test.make ~name:"sung_float"
        (Staged.stage (fun () ->
             ignore (Xpose_simd.Sung_gpu.cost cfg ~elt_bytes:4 ~m:4099 ~n:9013)));
      Test.make ~name:"c2r_float"
        (Staged.stage (fun () ->
             ignore
               (Xpose_simd.Gpu_transpose.auto cfg ~elt_bytes:4 ~m:4099 ~n:9013)));
      Test.make ~name:"c2r_double"
        (Staged.stage (fun () ->
             ignore
               (Xpose_simd.Gpu_transpose.auto cfg ~elt_bytes:8 ~m:4099 ~n:9013)));
    ]

(* -- Figures 4/5: landscape points -------------------------------------- *)

let landscape_tests =
  Test.make_grouped ~name:"fig4_fig5_landscape_point"
    [
      Test.make ~name:"fig4_c2r_band"
        (Staged.stage (fun () ->
             ignore
               (Xpose_simd.Gpu_transpose.cost cfg ~algorithm:`C2r ~elt_bytes:8
                  ~m:20000 ~n:2000)));
      Test.make ~name:"fig4_c2r_offband"
        (Staged.stage (fun () ->
             ignore
               (Xpose_simd.Gpu_transpose.cost cfg ~algorithm:`C2r ~elt_bytes:8
                  ~m:20000 ~n:20000)));
      Test.make ~name:"fig5_r2c_band"
        (Staged.stage (fun () ->
             ignore
               (Xpose_simd.Gpu_transpose.cost cfg ~algorithm:`R2c ~elt_bytes:8
                  ~m:2000 ~n:20000)));
    ]

(* -- Figure 7: AoS <-> SoA conversion ------------------------------------ *)

let fig7_tests =
  let structs = 20000 and fields = 8 in
  let buf = f64_iota (structs * fields) in
  Test.make_grouped ~name:"fig7_aos_soa"
    [
      Test.make ~name:"aos_to_soa_roundtrip"
        (Staged.stage (fun () ->
             ConvAos.aos_to_soa ~structs ~fields buf;
             ConvAos.soa_to_aos ~structs ~fields buf));
      Test.make ~name:"cost_model_specialized"
        (Staged.stage (fun () ->
             ignore
               (Xpose_simd.Aos.cost_specialized cfg ~elt_bytes:8
                  ~structs:1_000_000 ~fields:8)));
    ]

(* -- Figures 8/9: SIMD access simulation -------------------------------- *)

let access_tests =
  let open Xpose_simd in
  Test.make_grouped ~name:"fig8_fig9_simd_access"
    [
      Test.make ~name:"fig8_c2r_store_64B"
        (Staged.stage (fun () ->
             ignore
               (Access.run_store cfg ~struct_words:16 ~n_structs:512
                  Access.Unit_stride Access.C2r)));
      Test.make ~name:"fig8_direct_store_64B"
        (Staged.stage (fun () ->
             ignore
               (Access.run_store cfg ~struct_words:16 ~n_structs:512
                  Access.Unit_stride Access.Direct)));
      Test.make ~name:"fig9_c2r_gather_64B"
        (Staged.stage (fun () ->
             ignore
               (Access.run_load cfg ~struct_words:16 ~n_structs:512
                  (Access.Random (Array.init 512 (fun i -> (i * 97) mod 512)))
                  Access.C2r)));
      Test.make ~name:"reg_transpose_m16"
        (Staged.stage
           (let mem = Xpose_simd_machine.Memory.create cfg ~words:0 in
            let w = Xpose_simd_machine.Warp.create mem ~regs:16 in
            fun () ->
              Reg_transpose.r2c w;
              Reg_transpose.c2r w));
    ]

(* -- Ablations ----------------------------------------------------------- *)

let ablation_magic =
  (* The divisor must be opaque: with a literal the compiler strength-
     reduces the hardware path itself, which is exactly the transformation
     §4.4 performs by hand for divisors known only at plan time. *)
  let d = Sys.opaque_identity 97 in
  let mg = Magic.make d in
  let acc = ref 0 in
  Test.make_grouped ~name:"ablation_strength_reduction"
    [
      Test.make ~name:"magic_divmod"
        (Staged.stage (fun () ->
             for x = 0 to 4095 do
               let q, r = Magic.divmod mg x in
               acc := !acc + q + r
             done));
      Test.make ~name:"hardware_divmod"
        (Staged.stage (fun () ->
             for x = 0 to 4095 do
               acc := !acc + (x / d) + (x mod d)
             done));
    ]

let ablation_variants =
  let p = Plan.make ~m:bench_m ~n:bench_n in
  let tmp = S.create (Plan.scratch_elements p) in
  let make name variant =
    let buf = f64_iota (bench_m * bench_n) in
    Test.make ~name
      (Staged.stage (fun () ->
           Kernels_f64.c2r ~variant p buf ~tmp;
           Kernels_f64.r2c p buf ~tmp))
  in
  Test.make_grouped ~name:"ablation_c2r_variants"
    [
      make "scatter" Algo.C2r_scatter;
      make "gather" Algo.C2r_gather;
      make "decomposed" Algo.C2r_decomposed;
    ]

let ablation_skinny =
  let structs = 40000 and fields = 8 in
  let buf1 = f64_iota (structs * fields) in
  let buf2 = f64_iota (structs * fields) in
  Test.make_grouped ~name:"ablation_skinny_conversion"
    [
      Test.make ~name:"skinny_f64_roundtrip"
        (Staged.stage (fun () ->
             Xpose_cpu.Skinny_f64.aos_to_soa ~structs ~fields buf1;
             Xpose_cpu.Skinny_f64.soa_to_aos ~structs ~fields buf1));
      Test.make ~name:"generic_kernels_roundtrip"
        (Staged.stage (fun () ->
             ConvAos.aos_to_soa ~structs ~fields buf2;
             ConvAos.soa_to_aos ~structs ~fields buf2));
    ]

let ablation_cache_aware =
  (* Large enough that one column's cache lines overflow L2: the naive
     rotate then re-misses per element while the cache-aware one moves
     whole sub-rows (§4.6). (This host's 260 MB LLC absorbs anything
     smaller; the gap widens with matrices beyond the LLC.) *)
  let m = 32768 and n = 128 in
  let p = Plan.make ~m ~n in
  let tmp = S.create (Plan.scratch_elements p) in
  let buf1 = f64_iota (m * n) in
  let buf2 = f64_iota (m * n) in
  Test.make_grouped ~name:"ablation_cache_aware_rotate"
    [
      Test.make ~name:"naive_column_rotate"
        (Staged.stage (fun () ->
             A.Phases.rotate_columns p buf1 ~tmp ~amount:(fun j -> j) ~lo:0
               ~hi:n));
      Test.make ~name:"cache_aware_rotate"
        (Staged.stage (fun () ->
             Cache.rotate_columns p buf2 ~amount:(fun j -> j)));
    ]

let extension_tests =
  let module T3 = Tensor3.Make (S) in
  let module Rot = Rotate90.Make (S) in
  let tensor_buf = f64_iota (48 * 40 * 24) in
  let rot_buf = f64_iota (320 * 200) in
  let exec_mem =
    Xpose_simd_machine.Memory.create cfg
      ~words:((96 * 72) + Xpose_simd.Gpu_exec.scratch_words ~m:96 ~n:72)
  in
  Test.make_grouped ~name:"extensions"
    [
      Test.make ~name:"tensor3_permute_roundtrip"
        (Staged.stage (fun () ->
             T3.permute ~dims:(48, 40, 24) ~perm:(1, 2, 0) tensor_buf;
             T3.permute ~dims:(40, 24, 48) ~perm:(2, 0, 1) tensor_buf));
      Test.make ~name:"rotate90_four_quarters"
        (Staged.stage (fun () ->
             Rot.clockwise ~m:320 ~n:200 rot_buf;
             Rot.clockwise ~m:200 ~n:320 rot_buf;
             Rot.clockwise ~m:320 ~n:200 rot_buf;
             Rot.clockwise ~m:200 ~n:320 rot_buf));
      Test.make ~name:"gpu_exec_96x72"
        (Staged.stage (fun () ->
             ignore (Xpose_simd.Gpu_exec.c2r exec_mem ~m:96 ~n:72);
             ignore (Xpose_simd.Gpu_exec.r2c exec_mem ~m:72 ~n:96)));
    ]

(* -- Fused tile engine ---------------------------------------------------- *)

let fused_tests =
  (* Non-coprime shape (gcd = 96) so every pass of the C2R sequence runs,
     large enough that the column phase dominates: the fused engine saves
     one full-matrix sweep over the unfused cache-aware passes, and both
     should beat the decomposed per-column kernels. *)
  let fm = 480 and fn = 384 in
  let p = Plan.make ~m:fm ~n:fn in
  let tmp = S.create (Plan.scratch_elements p) in
  let ws = Workspace.F64.create () in
  let roundtrip name fwd bwd =
    let buf = f64_iota (fm * fn) in
    Test.make ~name
      (Staged.stage (fun () ->
           fwd buf;
           bwd buf))
  in
  let plan_cache = Plan.Cache.create ~capacity:8 () in
  let pool = Xpose_cpu.Pool.create ~workers:2 () in
  let batch = 8 and bm = 192 and bn = 144 in
  let batch_bufs = Array.init batch (fun _ -> f64_iota (bm * bn)) in
  Test.make_grouped ~name:"fused_engine"
    [
      roundtrip "fused_f64"
        (fun buf -> Xpose_cpu.Fused_f64.c2r ~ws p buf)
        (fun buf -> Xpose_cpu.Fused_f64.r2c ~ws p buf);
      roundtrip "cache_aware_functor"
        (fun buf -> Cache.c2r p buf ~tmp)
        (fun buf -> Cache.r2c p buf ~tmp);
      roundtrip "kernels_decomposed"
        (fun buf -> Kernels_f64.c2r ~variant:Algo.C2r_decomposed p buf ~tmp)
        (fun buf -> Kernels_f64.r2c ~variant:Algo.R2c_decomposed p buf ~tmp);
      Test.make ~name:"plan_make"
        (Staged.stage (fun () -> ignore (Plan.make ~m:fm ~n:fn)));
      Test.make ~name:"plan_cache_hit"
        (Staged.stage (fun () ->
             ignore (Plan.Cache.get ~cache:plan_cache ~m:fm ~n:fn ())));
      Test.make ~name:"batch8_pool2"
        (Staged.stage (fun () ->
             Xpose_cpu.Fused_f64.transpose_batch pool ~m:bm ~n:bn batch_bufs;
             Xpose_cpu.Fused_f64.transpose_batch pool ~m:bn ~n:bm batch_bufs));
    ]

(* -- Micro-kernel tier --------------------------------------------------- *)

let microkernel_tests =
  (* The three kernel tiers of the fused engine at a shape large enough
     for the in-register blocked movers to pay for themselves (the fine
     phase dominates once whole panels stop fitting in L2). *)
  let mm = 1024 and mn = 768 in
  let p = Plan.make ~m:mm ~n:mn in
  let ws = Workspace.F64.create () in
  let roundtrip name tier =
    let buf = f64_iota (mm * mn) in
    Test.make ~name
      (Staged.stage (fun () ->
           Xpose_cpu.Fused_f64.c2r ~tier ~ws p buf;
           Xpose_cpu.Fused_f64.r2c ~tier ~ws p buf))
  in
  Test.make_grouped ~name:"microkernel"
    [
      roundtrip "fused_scalar" Tune_params.Scalar;
      roundtrip "fused_mk8" Tune_params.Mk8;
      roundtrip "fused_mk16" Tune_params.Mk16;
    ]

(* -- Out-of-core engine --------------------------------------------------- *)

let ooc_tests =
  (* A transpose followed by its inverse restores the file, so every run
     sees identical bytes.  The 4x shapes force the windowed path (four
     row windows / column panels per pass); the fits shape measures the
     whole-file fast path on the same data. *)
  let om = 256 and on = 192 in
  let file_bytes = om * on * 8 in
  let make_file () =
    let path = Filename.temp_file "xpose_bench_ooc" ".mat" in
    at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
    Xpose_mmap.File_matrix.create ~path ~elements:(om * on);
    Xpose_mmap.File_matrix.with_map ~path (fun buf ->
        Storage.fill_iota (module S) buf);
    path
  in
  let roundtrip name ~window_bytes ~prefetch =
    let path = make_file () in
    Test.make ~name
      (Staged.stage (fun () ->
           Xpose_ooc.Ooc_f64.transpose_file ~window_bytes ~prefetch ~path ~m:om
             ~n:on ();
           Xpose_ooc.Ooc_f64.transpose_file ~window_bytes ~prefetch ~path ~m:on
             ~n:om ()))
  in
  Test.make_grouped ~name:"ooc_file_transpose"
    [
      roundtrip "fits_in_window" ~window_bytes:(2 * file_bytes) ~prefetch:false;
      roundtrip "window_quarter_prefetch" ~window_bytes:(file_bytes / 4)
        ~prefetch:true;
      roundtrip "window_quarter_noprefetch" ~window_bytes:(file_bytes / 4)
        ~prefetch:false;
    ]

(* -- Rank-N permutation planner ------------------------------------------ *)

let permute_tests =
  let module Nd = Tensor_nd.Make (S) in
  let module Sh = Xpose_permute.Shape in
  (* forward + inverse leaves the buffer unchanged between runs *)
  let roundtrip name dims perm =
    let buf = f64_iota (Sh.nelems dims) in
    let fwd = Tensor_nd.plan ~dims ~perm in
    let bwd =
      Tensor_nd.plan
        ~dims:(Sh.permuted_dims ~dims ~perm)
        ~perm:(Sh.inverse perm)
    in
    Test.make ~name
      (Staged.stage (fun () ->
           Nd.execute fwd buf;
           Nd.execute bwd buf))
  in
  Test.make_grouped ~name:"permute_planner"
    [
      (* AoS -> SoA at rank 4 (NCHW <-> NHWC: one batched pass each way) *)
      roundtrip "rank4_nchw_nhwc" [| 24; 18; 20; 8 |] [| 0; 2; 3; 1 |];
      (* full reversal: nothing fuses, two passes each way *)
      roundtrip "rank4_reversal" [| 24; 18; 20; 8 |] [| 3; 2; 1; 0 |];
      (* rank-5 shuffle: three passes through the move graph *)
      roundtrip "rank5_shuffle" [| 12; 5; 14; 3; 16 |] [| 4; 2; 0; 3; 1 |];
      (* fused identity in disguise: planner cost is pure overhead *)
      roundtrip "rank5_fused_flat" [| 6; 7; 8; 9; 4 |] [| 2; 3; 4; 0; 1 |];
    ]

(* -- Job-server building blocks ------------------------------------------ *)

let server_tests =
  let module P = Xpose_server.Protocol in
  let module Adm = Xpose_server.Admission in
  let module Co = Xpose_server.Coalescer in
  let module Jq = Xpose_server.Job_queue in
  (* One hot-path request: big enough that payload encoding dominates,
     small enough to stay a fused-route job. *)
  let sm = 64 and sn = 48 in
  let req =
    P.Transpose
      {
        id = 1;
        trace = 0;
        tenant = "bench";
        priority = P.Normal;
        m = sm;
        n = sn;
        payload = f64_iota (sm * sn);
      }
  in
  let body = P.encode_request req in
  let adm = Adm.create () in
  let queue = Jq.create () in
  let key = { Co.priority = P.Normal; m = sm; n = sn } in
  Test.make_grouped ~name:"server_protocol"
    [
      Test.make ~name:"encode_request_24k"
        (Staged.stage (fun () -> ignore (P.encode_request req)));
      Test.make ~name:"decode_request_24k"
        (Staged.stage (fun () ->
             match P.decode_request body with
             | Ok _ -> ()
             | Error _ -> assert false));
      Test.make ~name:"admission_admit_release"
        (Staged.stage (fun () ->
             match Adm.admit adm ~tenant:"bench" ~bytes:(sm * sn * 8) with
             | Adm.Admit _ -> Adm.release adm ~bytes:(sm * sn * 8)
             | Adm.Reject _ -> assert false));
      Test.make ~name:"queue_offer_pop"
        (Staged.stage (fun () ->
             (match Jq.offer queue ~priority:P.Normal ~bytes:8 () with
             | `Ok -> ()
             | `Queue_full | `Bytes_full -> assert false);
             ignore (Jq.pop queue)));
      Test.make ~name:"coalescer_add8_ready"
        (Staged.stage (fun () ->
             let c = Co.create ~max_batch:8 ~window_ns:1_000 () in
             for i = 0 to 7 do
               Co.add c ~now_ns:i ~batchable:true ~key i
             done;
             ignore (Co.ready c ~now_ns:8)));
    ]

let all_groups =
  [
    table1_tests;
    table2_tests;
    landscape_tests;
    fig7_tests;
    access_tests;
    ablation_magic;
    ablation_variants;
    ablation_cache_aware;
    ablation_skinny;
    fused_tests;
    microkernel_tests;
    ooc_tests;
    extension_tests;
    permute_tests;
    server_tests;
  ]

(* [--only PREFIX] keeps the groups whose name starts with PREFIX, so a
   single family can be re-measured without paying for the whole suite. *)
let select_tests ~only =
  let groups =
    match only with
    | None -> all_groups
    | Some prefix ->
        List.filter
          (fun g ->
            let name = Test.name g in
            String.length name >= String.length prefix
            && String.equal (String.sub name 0 (String.length prefix)) prefix)
          all_groups
  in
  if groups = [] then (
    Printf.eprintf "no benchmark group matches --only %s; groups are:\n"
      (Option.value only ~default:"");
    List.iter (fun g -> Printf.eprintf "  %s\n" (Test.name g)) all_groups;
    exit 1);
  Test.make_grouped ~name:"xpose" groups

(* -- roofline attribution ------------------------------------------------ *)

(* One traced fused c2r at the fused_tests shape, placed against the
   machine's calibrated roofs: the per-family roofline fractions land
   next to the timings in the JSON so the regression sentinel can watch
   bandwidth efficiency, not just wall time. Warm-up first so the
   traced run measures steady state. *)
let roofline_report cal =
  let fm = 480 and fn = 384 in
  let p = Plan.make ~m:fm ~n:fn in
  let buf = f64_iota (fm * fn) in
  let ws = Workspace.F64.create () in
  Xpose_cpu.Fused_f64.c2r ~ws p buf;
  Xpose_cpu.Fused_f64.r2c ~ws p buf;
  Xpose_obs.Tracer.start ();
  Xpose_cpu.Fused_f64.c2r ~ws p buf;
  Xpose_obs.Tracer.stop ();
  let report =
    Xpose_obs.Report.of_events ~cal (Xpose_obs.Tracer.events ())
  in
  Xpose_obs.Tracer.clear ();
  report

(* -- micro-kernel ratio sentinel ------------------------------------------ *)

(* Best-of-N micro-kernel time over best-of-N scalar time at a large
   square shape, scaled by 1000. Both tiers run on this box and only
   their quotient is recorded, so the committed baseline
   (bench/baselines/BENCH_microkernel.json, pinned at 1000) gates with
   zero cross-machine slack: [obs diff --time-rel 0 --min-ns 0] fails
   exactly when the micro-kernel tier stops beating the scalar tier. *)
let microkernel_ratio ~quick =
  let mm = 1024 and mn = 1024 in
  let p = Plan.make ~m:mm ~n:mn in
  let ws = Workspace.F64.create () in
  let buf = f64_iota (mm * mn) in
  let repeats = if quick then 3 else 7 in
  let time_tier tier =
    let roundtrip () =
      Xpose_cpu.Fused_f64.c2r ~tier ~ws p buf;
      Xpose_cpu.Fused_f64.r2c ~tier ~ws p buf
    in
    roundtrip ();
    let best = ref infinity in
    for _ = 1 to repeats do
      let t0 = Unix.gettimeofday () in
      roundtrip ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let scalar = time_tier Tune_params.Scalar in
  let mk =
    Float.min (time_tier Tune_params.Mk8) (time_tier Tune_params.Mk16)
  in
  ("microkernel/mk_vs_scalar_ratio_x1000", Some (1000.0 *. mk /. scalar))

(* -- machine-readable sink ----------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x =
  if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

let write_json ~file ~quick ~roofline rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"suite\": \"xpose\",\n";
  Printf.bprintf b "  \"quick\": %b,\n" quick;
  Buffer.add_string b "  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, est) ->
      if i > 0 then Buffer.add_string b ",\n";
      Printf.bprintf b "    {\"name\": \"%s\", \"ns_per_run\": %s}"
        (json_escape name)
        (match est with
        | Some e when Float.is_finite e -> Printf.sprintf "%.3f" e
        | _ -> "null"))
    rows;
  Buffer.add_string b "\n  ],\n  \"counters\": {\n";
  let counters =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Xpose_obs.Metrics.Counter c -> Some (name, c)
        | _ -> None)
      (Xpose_obs.Metrics.dump ())
  in
  List.iteri
    (fun i (name, c) ->
      if i > 0 then Buffer.add_string b ",\n";
      Printf.bprintf b "    \"%s\": %d" (json_escape name) c)
    counters;
  Buffer.add_string b "\n  },\n  \"roofline\": {\n";
  List.iteri
    (fun i (r : Xpose_obs.Report.row) ->
      if i > 0 then Buffer.add_string b ",\n";
      Printf.bprintf b
        "    \"%s\": {\"roofline_frac\": %s, \"gbps\": %s, \"rel_err\": %s}"
        (json_escape r.name) (json_float r.roofline_frac) (json_float r.gbps)
        (json_float r.rel_err))
    (match roofline with
    | None -> []
    | Some (rep : Xpose_obs.Report.t) -> rep.passes);
  Buffer.add_string b "\n  }\n}\n";
  let oc = open_out file in
  Buffer.output_buffer oc b;
  close_out oc

let () =
  (* [--quick] shrinks each benchmark's quota to a dry run (CI uses it to
     validate the pipeline and the JSON output, not the numbers);
     [--out FILE] overrides the JSON destination;
     [--only PREFIX] restricts the run to matching benchmark groups. *)
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let out = ref "BENCH_xpose.json" in
  let only = ref None in
  let cal_file = ref None in
  Array.iteri
    (fun i a ->
      if String.equal a "--out" && i + 1 < Array.length Sys.argv then
        out := Sys.argv.(i + 1);
      if String.equal a "--only" && i + 1 < Array.length Sys.argv then
        only := Some Sys.argv.(i + 1);
      if String.equal a "--calibration" && i + 1 < Array.length Sys.argv then
        cal_file := Some Sys.argv.(i + 1))
    Sys.argv;
  Xpose_obs.Clock.install (fun () -> Unix.gettimeofday () *. 1e9);
  (* Roofline attribution needs the machine's roofs: load a calibration
     file written by [xpose obs calibrate] when given one, otherwise
     run a reduced in-process calibration (2 MiB probes, best of 2 —
     coarse, but the sentinel's thresholds are generous). *)
  let cal =
    match !cal_file with
    | Some file -> (
        match Xpose_obs.Calibrate.load ~file with
        | Ok cal -> cal
        | Error msg ->
            Printf.eprintf "bench: bad calibration %s: %s\n%!" file msg;
            exit 1)
    | None -> Xpose_obs.Calibrate.run ~elems:(1 lsl 18) ~repeats:2 ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let benchmark_cfg =
    if quick then
      Benchmark.cfg ~limit:20 ~quota:(Time.second 0.005) ~stabilize:false ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:true ()
  in
  let raw = Benchmark.all benchmark_cfg instances (select_tests ~only:!only) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-60s %14s\n" "benchmark" "ns/run";
  Printf.printf "%s\n" (String.make 75 '-');
  let estimates =
    List.map
      (fun (name, ols) ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] ->
            Printf.printf "%-60s %14.1f\n" name est;
            (name, Some est)
        | Some _ | None ->
            Printf.printf "%-60s %14s\n" name "n/a";
            (name, None))
      rows
  in
  let estimates =
    (* The ratio pseudo-benchmark belongs to the microkernel group: emit
       it whenever that group was selected. *)
    let selected =
      match !only with
      | None -> true
      | Some prefix ->
          String.length prefix <= String.length "microkernel"
          && String.equal (String.sub "microkernel" 0 (String.length prefix))
               prefix
    in
    if selected then estimates @ [ microkernel_ratio ~quick ] else estimates
  in
  let roofline = roofline_report cal in
  write_json ~file:!out ~quick ~roofline:(Some roofline) estimates;
  Printf.printf "wrote %s (%d benchmarks, %d roofline passes)\n" !out
    (List.length estimates)
    (List.length roofline.Xpose_obs.Report.passes)
