(* Interleaved-to-planar image conversion as an in-place transpose.

   Images usually arrive interleaved (RGBRGBRGB...), but per-channel
   processing wants planar storage (RRR...GGG...BBB). With pixels as
   3-byte blob elements... actually each CHANNEL BYTE is the element: the
   interleaved image is a (width*height) x 3 row-major matrix of bytes,
   and the planar image is its 3 x (width*height) transpose. This example
   does the conversion in place using the byte-blob storage instance, on
   a synthetic image, and verifies both directions.

   Run with: dune exec examples/rgb_planes.exe *)

open Xpose_core

module Px = Storage.Blob (struct
  let elt_bytes = 1 (* one channel byte per element *)
end)

module A = Algo.Make (Px)

let width = 640
let height = 360
let channels = 3

let synth_channel_value ~pixel ~channel =
  (pixel * 7 * (channel + 1)) land 0xff

let () =
  let pixels = width * height in
  (* Interleaved: element (p, c) at p*channels + c. *)
  let img = Px.create (pixels * channels) in
  for p = 0 to pixels - 1 do
    for c = 0 to channels - 1 do
      Px.set img ((p * channels) + c)
        (Px.of_int (synth_channel_value ~pixel:p ~channel:c))
    done
  done;

  (* Interleaved -> planar: transpose the pixels x channels matrix. *)
  let t0 = Unix.gettimeofday () in
  A.transpose ~m:pixels ~n:channels img;
  let dt = Unix.gettimeofday () -. t0 in

  (* Planar: channel c occupies [c * pixels, (c+1) * pixels). *)
  let ok = ref true in
  for c = 0 to channels - 1 do
    for p = 0 to pixels - 1 do
      if
        Px.to_int (Px.get img ((c * pixels) + p))
        <> synth_channel_value ~pixel:p ~channel:c
      then ok := false
    done
  done;
  Printf.printf
    "interleaved -> planar of a %dx%d RGB image in place: %s (%.1f ms)\n"
    width height
    (if !ok then "verified" else "FAILED")
    (dt *. 1e3);

  (* Channel-wise processing is now a contiguous scan; e.g. the mean of
     the green plane: *)
  let green_base = 1 * pixels in
  let sum = ref 0 in
  for p = 0 to pixels - 1 do
    sum := !sum + Px.to_int (Px.get img (green_base + p))
  done;
  Printf.printf "mean green value: %.2f\n"
    (float_of_int !sum /. float_of_int pixels);

  (* And back to interleaved for the encoder. *)
  A.transpose ~m:channels ~n:pixels img;
  let ok = ref true in
  for p = 0 to pixels - 1 do
    for c = 0 to channels - 1 do
      if
        Px.to_int (Px.get img ((p * channels) + c))
        <> synth_channel_value ~pixel:p ~channel:c
      then ok := false
    done
  done;
  Printf.printf "planar -> interleaved round trip: %s\n"
    (if !ok then "verified" else "FAILED")
