(* Rank-4 axis permutation with the cost-model-driven planner: NCHW
   activations rearranged to NHWC in place. The planner fuses the H and W
   axes (they stay adjacent through the permutation), prices every
   minimal factorization into the paper's 2-D transpose primitives, and
   settles on a single batched pass — scratch stays O(C*H*W), far below
   the full copy an out-of-place permute needs.

   Run with: dune exec examples/permute_planner.exe *)

open Xpose_core
module S = Storage.Float64
module Nd = Tensor_nd.Make (S)
module P = Xpose_permute

let dims = [| 32; 3; 64; 64 |] (* N, C, H, W *)
let perm = [| 0; 2; 3; 1 |] (* NCHW -> NHWC *)

let value ~n ~c ~h ~w =
  float_of_int ((n * 100000) + (c * 10000) + (h * 100) + w)

let () =
  (* inspect the plan before touching any data: it is pure index
     arithmetic and reusable across buffers *)
  let plan = Tensor_nd.plan ~dims ~perm in
  Format.printf "%a" P.Permute.pp_plan plan;

  let buf = S.create (P.Shape.nelems dims) in
  for n = 0 to dims.(0) - 1 do
    for c = 0 to dims.(1) - 1 do
      for h = 0 to dims.(2) - 1 do
        for w = 0 to dims.(3) - 1 do
          S.set buf
            (P.Shape.linear_index ~dims [| n; c; h; w |])
            (value ~n ~c ~h ~w)
        done
      done
    done
  done;

  Nd.execute plan buf;
  let out_dims = P.Shape.permuted_dims ~dims ~perm in
  Format.printf "permuted %a -> %a in place@." P.Shape.pp_dims dims
    P.Shape.pp_dims out_dims;

  (* the channel axis is now innermost: one pixel's channels are
     contiguous *)
  let n = 7 and h = 20 and w = 33 in
  let base = P.Shape.linear_index ~dims:out_dims [| n; h; w; 0 |] in
  for c = 0 to dims.(1) - 1 do
    assert (S.get buf (base + c) = value ~n ~c ~h ~w)
  done;
  Printf.printf "pixel (n=%d,h=%d,w=%d): %d channels contiguous at %d\n" n h w
    dims.(1) base;

  (* verify a scattered entry against the index oracle *)
  let idx = [| 13; 2; 5; 60 |] in
  let l = P.Shape.permuted_index ~dims ~perm idx in
  assert (S.get buf l = value ~n:13 ~c:2 ~h:5 ~w:60);
  Printf.printf "layout verified: element (13,2,5,60) found at %d\n" l;

  (* and back again via the inverse permutation *)
  Nd.permute ~dims:out_dims ~perm:(P.Shape.inverse perm) buf;
  assert (
    S.get buf (P.Shape.linear_index ~dims [| 13; 2; 5; 60 |])
    = value ~n:13 ~c:2 ~h:5 ~w:60);
  Printf.printf "inverse permutation restored the original layout\n"
