(* Out-of-core transposition: a matrix living in a file is transposed in
   place in the file, with only max(m, n) doubles of RAM scratch — the
   O(max(m,n)) auxiliary-space bound is what makes this practical.

   Run with: dune exec examples/out_of_core.exe *)

let () =
  let path = Filename.temp_file "xpose_demo" ".mat" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let m = 1200 and n = 900 in
      Xpose_mmap.File_matrix.create ~path ~elements:(m * n);
      Xpose_mmap.File_matrix.with_map ~path (fun buf ->
          for l = 0 to (m * n) - 1 do
            Bigarray.Array1.set buf l (float_of_int l)
          done);
      Printf.printf "wrote a %d x %d float64 matrix (%.1f MB) to %s\n" m n
        (float_of_int (m * n * 8) /. 1e6)
        path;

      let t0 = Unix.gettimeofday () in
      Xpose_mmap.File_matrix.transpose_file ~path ~m ~n ();
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "transposed in place in the file in %.1f ms using %d \
                     doubles of RAM scratch\n"
        (dt *. 1e3) (max m n);

      Xpose_mmap.File_matrix.with_map ~write:false ~path (fun buf ->
          let ok = ref true in
          for l = 0 to (m * n) - 1 do
            if
              Bigarray.Array1.get buf l
              <> float_of_int ((n * (l mod m)) + (l / m))
            then ok := false
          done;
          Printf.printf "file contents verified: %s\n"
            (if !ok then "the n x m transpose" else "FAILED")))
