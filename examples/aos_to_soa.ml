(* Array-of-Structures to Structure-of-Arrays, in place (paper §6.1).

   An N-body-style particle system stores particles as structs
   {x; y; z; mass}. Struct-wise storage is convenient to build and to
   pass across interfaces, but field-wise (SoA) storage is what
   vectorized kernels want. The conversion is exactly an in-place
   transpose of the N x 4 row-major matrix.

   Run with: dune exec examples/aos_to_soa.exe *)

open Xpose_core
module S = Storage.Float64
module Conv = Xpose_simd.Aos.Make (S)

let fields = 4 (* x, y, z, mass *)
let particles = 100_000

let () =
  (* Build the AoS: particle p is the 4 consecutive slots starting at
     p * fields. *)
  let a = S.create (particles * fields) in
  for p = 0 to particles - 1 do
    let fp = float_of_int p in
    S.set a ((p * fields) + 0) (fp *. 1.0);
    S.set a ((p * fields) + 1) (fp *. 2.0);
    S.set a ((p * fields) + 2) (fp *. 3.0);
    S.set a ((p * fields) + 3) 1.5
  done;

  (* Convert in place: afterwards field f occupies the contiguous slice
     [f * particles, (f+1) * particles). *)
  Conv.aos_to_soa ~structs:particles ~fields a;

  (* A field-wise kernel: center-of-mass x coordinate, now a dense dot
     product over two contiguous slices. *)
  let xs_base = 0 * particles and mass_base = 3 * particles in
  let weighted = ref 0.0 and total = ref 0.0 in
  for p = 0 to particles - 1 do
    let mass = S.get a (mass_base + p) in
    weighted := !weighted +. (mass *. S.get a (xs_base + p));
    total := !total +. mass
  done;
  Printf.printf "center of mass (x): %.3f\n" (!weighted /. !total);

  (* And back, in place, for the struct-wise consumer. *)
  Conv.soa_to_aos ~structs:particles ~fields a;
  let ok = ref true in
  for p = 0 to particles - 1 do
    if S.get a ((p * fields) + 1) <> float_of_int p *. 2.0 then ok := false
  done;
  Printf.printf "round trip back to AoS: %s\n" (if !ok then "verified" else "FAILED");

  (* The modeled GPU throughput of this conversion (Figure 7 regime): *)
  let r =
    Xpose_simd.Aos.cost_specialized Xpose_simd_machine.Config.k20c ~elt_bytes:8
      ~structs:particles ~fields
  in
  Printf.printf
    "on the simulated K20c this conversion runs at %.1f GB/s (skinny \
     specialization)\n"
    r.Xpose_simd.Aos.gbps
