(* SIMD Array-of-Structures access through the in-register transpose
   (paper §6.2 and Fig. 10's coalesced_ptr).

   A warp of 32 lanes each wants one 6-word structure. Dereferencing
   per-lane pointers directly produces strided memory instructions; the
   cooperative load + in-register R2C reaches the same register state
   with a fraction of the transactions. This example runs both on the
   simulated machine and prints the transaction counts.

   Run with: dune exec examples/simd_access.exe *)

open Xpose_simd_machine
open Xpose_simd

let cfg = Config.k20c
let struct_words = 6

let () =
  let words = 32 * struct_words in
  let mem = Memory.create cfg ~words in
  for a = 0 to words - 1 do
    Memory.poke mem a (1000 + a)
  done;
  Memory.reset mem;

  (* Cooperative: coalesced tile load, then R2C in registers. *)
  let warp = Warp.create mem ~regs:struct_words in
  Coalesced.load_unit_stride warp ~base:0 ~first_struct:0;
  let coop = Memory.stats mem in

  (* Check: lane 7 holds structure 7. *)
  for r = 0 to struct_words - 1 do
    assert (Warp.get warp ~reg:r ~lane:7 = 1000 + (7 * struct_words) + r)
  done;

  (* Direct: lane j reads its own structure word by word. *)
  Memory.reset mem;
  for r = 0 to struct_words - 1 do
    ignore
      (Memory.warp_load mem
         ~addrs:(Array.init 32 (fun j -> Some ((j * struct_words) + r))))
  done;
  let direct = Memory.stats mem in

  Printf.printf "loading 32 structures of %d bytes per lane:\n"
    (struct_words * cfg.Config.word_bytes);
  Printf.printf "  cooperative + in-register R2C: %4d transactions, %d instructions\n"
    coop.Memory.load_transactions coop.Memory.instructions;
  Printf.printf "  direct per-lane dereference:   %4d transactions, %d instructions\n"
    direct.Memory.load_transactions direct.Memory.instructions;
  Printf.printf "  transaction ratio: %.1fx\n"
    (float_of_int direct.Memory.load_transactions
    /. float_of_int coop.Memory.load_transactions);

  (* The in-register transpose itself costs what §6.2 promises: *)
  Printf.printf "\nin-register R2C for m=%d: %d warp instructions (m shuffles + 2 barrel rotations)\n"
    struct_words
    (Reg_transpose.instruction_count ~lanes:32 ~regs:struct_words `R2c);

  (* End-to-end bandwidth of the three access methods at this size
     (Figure 8a's 24-byte point): *)
  List.iter
    (fun (name, meth) ->
      let r =
        Access.run_store cfg ~struct_words ~n_structs:1024 Access.Unit_stride
          meth
      in
      Printf.printf "  %-8s store bandwidth: %6.1f GB/s\n" name r.Access.gbps)
    [ ("C2R", Access.C2r); ("Direct", Access.Direct); ("Vector", Access.Vector) ]
