(* Rank-3 tensor axis permutation in place: a batch of images stored as
   (image, row, pixel) rearranged to (row, pixel, image) so per-position
   statistics across the batch become contiguous scans — the kind of
   layout change ML pipelines call "transpose" and usually pay a full
   copy for.

   Run with: dune exec examples/tensor_permute.exe *)

open Xpose_core
module T = Tensor3.Make (Storage.Float64)
module S = Storage.Float64

let images = 64
let rows = 32
let pixels = 48

let value ~img ~row ~px =
  float_of_int ((img * 1000) + (row * 10)) +. (float_of_int px /. 100.0)

let () =
  let dims = (images, rows, pixels) in
  let buf = S.create (images * rows * pixels) in
  for img = 0 to images - 1 do
    for row = 0 to rows - 1 do
      for px = 0 to pixels - 1 do
        S.set buf
          ((((img * rows) + row) * pixels) + px)
          (value ~img ~row ~px)
      done
    done
  done;

  (* (image, row, pixel) -> (row, pixel, image): axis order (1, 2, 0) *)
  let perm = (1, 2, 0) in
  T.permute ~dims ~perm buf;
  let d0', d1', d2' = T.permuted_dims ~dims ~perm in
  Printf.printf "permuted (%d, %d, %d) -> (%d, %d, %d) in place\n" images rows
    pixels d0' d1' d2';

  (* The batch axis is now innermost: the mean over images at a fixed
     (row, pixel) is one contiguous scan. *)
  let row = 5 and px = 7 in
  let base = (((row * pixels) + px) * images) in
  let sum = ref 0.0 in
  for img = 0 to images - 1 do
    sum := !sum +. S.get buf (base + img)
  done;
  Printf.printf "mean over the batch at (row=%d, px=%d): %.3f\n" row px
    (!sum /. float_of_int images);

  (* verify one entry against the layout specification *)
  let img = 13 in
  let expected = value ~img ~row ~px in
  let l = T.permuted_index ~dims ~perm (img, row, px) in
  assert (S.get buf l = expected);
  Printf.printf "layout verified: element (img=%d,row=%d,px=%d) found at %d\n"
    img row px l;

  (* and back: the inverse of (1,2,0) is (2,0,1) *)
  T.permute ~dims:(d0', d1', d2') ~perm:(2, 0, 1) buf;
  assert (S.get buf ((((img * rows) + row) * pixels) + px) = expected);
  Printf.printf "inverse permutation restored the original layout\n"
