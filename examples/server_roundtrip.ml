(* Transpose as a service, end to end in one process: start the job
   server on a private socket, submit matrices over the wire, watch
   admission route a small job to the fused in-memory engine and an
   over-quota job out of core, then read the stats snapshot.

   Run with:  dune exec examples/server_roundtrip.exe *)

module P = Xpose_server.Protocol
module Server = Xpose_server.Server
module Client = Xpose_server.Client
module S = Xpose_core.Storage.Float64

let iota mn =
  let b = S.create mn in
  for i = 0 to mn - 1 do
    S.set b i (float_of_int i)
  done;
  b

let print_matrix ~rows ~cols buf =
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Printf.printf "%5.0f" (S.get buf ((r * cols) + c))
    done;
    print_newline ()
  done

let () =
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xpose_example_%d.sock" (Unix.getpid ()))
  in
  let config =
    {
      (Server.default_config ~socket_path) with
      (* "bulk" jobs over 2 KiB leave RAM: served by the out-of-core
         engine under a 64 KiB residency window. *)
      Server.tenants =
        [ { Xpose_server.Admission.name = "bulk";
            quota_bytes = 2048; window_bytes = 65536 } ];
    }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      Client.with_client ~socket_path (fun c ->
          let m = 4 and n = 6 in
          Printf.printf "A (%d x %d):\n" m n;
          let a = iota (m * n) in
          print_matrix ~rows:m ~cols:n a;
          (match Client.transpose c ~m ~n a with
          | P.Result { m = rm; n = rn; payload; _ } ->
              Printf.printf "\nA^T (%d x %d), transposed by the server:\n"
                rm rn;
              print_matrix ~rows:rm ~cols:rn payload
          | P.Busy _ -> print_endline "server busy — retry later"
          | P.Error_reply { message; _ } -> Printf.printf "error: %s\n" message
          | P.Stats_reply _ -> assert false);
          (* The same request from the "bulk" tenant exceeds its 2 KiB
             quota (64 x 64 f64 = 32 KiB): admission demotes it to the
             out-of-core engine; the reply is byte-identical either
             way. *)
          (match Client.transpose c ~tenant:"bulk" ~m:64 ~n:64 (iota 4096) with
          | P.Result _ ->
              print_endline
                "\n64 x 64 from tenant \"bulk\": served out of core \
                 (over quota), reply verified below via stats"
          | _ -> print_endline "\nunexpected reply to the bulk job");
          (* Every engine shares one metrics registry; the stats reply
             snapshots it as JSON. *)
          let json = Client.stats c in
          let interesting =
            [ "server.admit.fused"; "server.admit.ooc"; "server.batches" ]
          in
          print_endline "\nstats excerpt:";
          String.split_on_char '\n' json
          |> List.iter (fun line ->
                 if
                   List.exists
                     (fun k ->
                       let n = String.length k in
                       let rec go i =
                         i + n <= String.length line
                         && (String.sub line i n = k || go (i + 1))
                       in
                       go 0)
                     interesting
                 then print_endline line)))
