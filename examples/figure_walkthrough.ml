(* Walk through the paper's Figures 1 and 2 with the actual phase
   implementations, printing every intermediate state.

   Run with: dune exec examples/figure_walkthrough.exe *)

open Xpose_core

let () =
  Format.printf "Figure 1: C2R and R2C transpositions, m = 3, n = 8@.@.";
  let left = Trace.iota ~m:3 ~n:8 in
  Format.printf "%a@." Trace.pp_matrix left;
  Format.printf "--- Rows to Columns (R2C) -->@.@.";
  let right = Trace.final (Trace.r2c ~m:3 ~n:8 left) in
  Format.printf "%a@." Trace.pp_matrix right;
  Format.printf "<-- Columns to Rows (C2R) ---@.@.";

  Format.printf
    "The element with value 16 moved from (2, 0) to (1, 5), matching the \
     paper's worked example: s(2,0) = (0 + 2*8) mod 3 = %d, c(2,0) = \
     (0 + 2*8) / 3 = %d@.@."
    (Layout.s ~m:3 ~n:8 2 0)
    (Layout.c ~m:3 ~n:8 2 0);

  Format.printf "Figure 2: C2R transpose of a 4 x 8 matrix, phase by phase@.@.";
  let initial = Array.init 4 (fun i -> Array.init 8 (fun j -> i + (4 * j))) in
  let t = Trace.c2r ~m:4 ~n:8 initial in
  Format.printf "%a@." Trace.pp t;
  Format.printf "reinterpreted as the 8 x 4 transpose:@.";
  Format.printf "%a@." Trace.pp_matrix (Trace.reinterpret t);

  Format.printf
    "Note how the column rotate sends column j down by floor(j/b) = \
     floor(j/2), the row shuffle scatters within each row by Eq. 24, and \
     the column shuffle gathers by Eq. 26 — no cycle following anywhere.@."
