(* Quickstart: transpose a matrix in place.

   Run with: dune exec examples/quickstart.exe *)

open Xpose_core

let () =
  (* A 3 x 5 row-major matrix of floats. *)
  let m = 3 and n = 5 in
  let a = Storage.Float64.create (m * n) in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      Storage.Float64.set a ((i * n) + j) (float_of_int ((10 * i) + j))
    done
  done;

  Printf.printf "before (3 x 5):\n";
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      Printf.printf "%5.1f " (Storage.Float64.get a ((i * n) + j))
    done;
    print_newline ()
  done;

  (* One call. The library picks C2R or R2C by the paper's heuristic and
     allocates the max(m, n) scratch internally. For float64 the
     specialized kernels are the fast path: *)
  Kernels_f64.transpose ~m ~n a;

  Printf.printf "\nafter, in the same buffer (5 x 3):\n";
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      Printf.printf "%5.1f " (Storage.Float64.get a ((i * m) + j))
    done;
    print_newline ()
  done;

  (* The same works for any element type through the generic functor, and
     with explicit control over algorithm and storage order: *)
  let module A = Algo.Make (Storage.Int64_elt) in
  let b = Storage.Int64_elt.create (m * n) in
  Storage.fill_iota (module Storage.Int64_elt) b;
  let original = A.copy b in
  let tmp = Storage.Int64_elt.create (max m n) in
  A.transpose_with ~algorithm:`C2r ~order:Layout.Col_major ~m ~n b ~tmp;
  assert (A.is_transpose_of ~order:Layout.Col_major ~m ~n ~original b);
  Printf.printf "\ncolumn-major int64 transpose via explicit C2R: verified\n";

  (* In-place means in place: large matrices need no second copy. *)
  let m = 2000 and n = 1500 in
  let big = Storage.Float64.create (m * n) in
  Storage.fill_iota (module Storage.Float64) big;
  let t0 = Unix.gettimeofday () in
  Kernels_f64.transpose ~m ~n big;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf
    "\n%d x %d float64 transposed in place in %.1f ms (%.2f GB/s), using \
     only a %d-element scratch\n"
    m n (dt *. 1e3)
    (2.0 *. float_of_int (m * n * 8) /. (dt *. 1e9))
    (max m n)
