(* The coalescer is pure bookkeeping over a caller-supplied clock, so
   these tests drive time explicitly and are fully deterministic. *)

module P = Xpose_server.Protocol
module C = Xpose_server.Coalescer

let key ?(priority = P.Normal) m n = { C.priority; m; n }

let names groups = List.map (fun (_, jobs) -> jobs) groups

let test_window_grouping () =
  let c = C.create ~max_batch:8 ~window_ns:1_000 () in
  C.add c ~now_ns:0 ~batchable:true ~key:(key 4 5) "a";
  C.add c ~now_ns:200 ~batchable:true ~key:(key 4 5) "b";
  C.add c ~now_ns:400 ~batchable:true ~key:(key 4 5) "c";
  Alcotest.(check int) "pending" 3 (C.pending c);
  Alcotest.(check (list (list string))) "window still open at t=999" []
    (names (C.ready c ~now_ns:999));
  (* The window runs from the FIRST job's arrival. *)
  Alcotest.(check (list (list string)))
    "expired window dispatches one group in arrival order"
    [ [ "a"; "b"; "c" ] ]
    (names (C.ready c ~now_ns:1_000));
  Alcotest.(check int) "nothing left" 0 (C.pending c)

let test_distinct_shapes_distinct_groups () =
  let c = C.create ~max_batch:8 ~window_ns:1_000 () in
  C.add c ~now_ns:0 ~batchable:true ~key:(key 4 5) "a";
  C.add c ~now_ns:1 ~batchable:true ~key:(key 5 4) "b";
  C.add c ~now_ns:2 ~batchable:true ~key:(key 4 5) "c";
  Alcotest.(check (list (list string)))
    "same shape groups, different shapes do not"
    [ [ "a"; "c" ]; [ "b" ] ]
    (names (C.ready c ~now_ns:2_000))

let test_max_batch_closes_group () =
  let c = C.create ~max_batch:2 ~window_ns:1_000_000 () in
  C.add c ~now_ns:0 ~batchable:true ~key:(key 3 3) "a";
  C.add c ~now_ns:1 ~batchable:true ~key:(key 3 3) "b";
  (* Full group dispatches immediately, long before its window. *)
  Alcotest.(check (list (list string))) "full group is ready at once"
    [ [ "a"; "b" ] ]
    (names (C.ready c ~now_ns:2));
  (* A full group is closed: later same-shape jobs start a fresh group
     with a fresh window. *)
  C.add c ~now_ns:10 ~batchable:true ~key:(key 3 3) "c";
  Alcotest.(check (list (list string))) "new group still open" []
    (names (C.ready c ~now_ns:11));
  C.add c ~now_ns:12 ~batchable:true ~key:(key 3 3) "d";
  Alcotest.(check (list (list string))) "fills and dispatches"
    [ [ "c"; "d" ] ]
    (names (C.ready c ~now_ns:13))

let test_non_batchable_ready_at_once () =
  let c = C.create ~max_batch:8 ~window_ns:1_000_000 () in
  C.add c ~now_ns:0 ~batchable:true ~key:(key 4 5) "fused";
  C.add c ~now_ns:1 ~batchable:false ~key:(key 100 100) "ooc";
  Alcotest.(check (list (list string)))
    "ooc job bypasses the window; fused job keeps waiting" [ [ "ooc" ] ]
    (names (C.ready c ~now_ns:2));
  Alcotest.(check int) "fused job still pending" 1 (C.pending c)

let test_priority_order_in_ready () =
  let c = C.create ~max_batch:8 ~window_ns:10 () in
  C.add c ~now_ns:0 ~batchable:true ~key:(key ~priority:P.Low 2 2) "low";
  C.add c ~now_ns:1 ~batchable:true ~key:(key ~priority:P.Normal 2 2) "norm";
  C.add c ~now_ns:2 ~batchable:true ~key:(key ~priority:P.High 2 2) "high";
  Alcotest.(check (list (list string)))
    "higher priorities dispatch first"
    [ [ "high" ]; [ "norm" ]; [ "low" ] ]
    (names (C.ready c ~now_ns:1_000))

let test_flush () =
  let c = C.create ~max_batch:8 ~window_ns:1_000_000 () in
  C.add c ~now_ns:0 ~batchable:true ~key:(key 4 5) "a";
  C.add c ~now_ns:1 ~batchable:true ~key:(key 6 7) "b";
  Alcotest.(check (list (list string))) "nothing ready yet" []
    (names (C.ready c ~now_ns:2));
  Alcotest.(check (list (list string))) "flush drains everything"
    [ [ "a" ]; [ "b" ] ]
    (names (C.flush c));
  Alcotest.(check int) "empty after flush" 0 (C.pending c);
  Alcotest.(check (list (list string))) "flush is idempotent" []
    (names (C.flush c))

let test_next_deadline () =
  let c = C.create ~max_batch:8 ~window_ns:1_000 () in
  Alcotest.(check (option int)) "empty: no deadline" None
    (C.next_deadline_ns c);
  C.add c ~now_ns:500 ~batchable:true ~key:(key 4 5) "a";
  Alcotest.(check (option int)) "window deadline" (Some 1_500)
    (C.next_deadline_ns c);
  C.add c ~now_ns:600 ~batchable:true ~key:(key 6 7) "b";
  Alcotest.(check (option int)) "earliest deadline wins" (Some 1_500)
    (C.next_deadline_ns c);
  C.add c ~now_ns:700 ~batchable:false ~key:(key 9 9) "ooc";
  Alcotest.(check (option int)) "non-batchable job is due now" (Some 0)
    (C.next_deadline_ns c);
  ignore (C.flush c);
  Alcotest.(check (option int)) "drained: no deadline" None
    (C.next_deadline_ns c)

let test_metrics_counters () =
  let batches = Xpose_obs.Metrics.counter "server.batches" in
  let batched = Xpose_obs.Metrics.counter "server.batched_jobs" in
  let b0 = Xpose_obs.Metrics.counter_value batches in
  let j0 = Xpose_obs.Metrics.counter_value batched in
  let c = C.create ~max_batch:8 ~window_ns:10 () in
  C.add c ~now_ns:0 ~batchable:true ~key:(key 4 5) "a";
  C.add c ~now_ns:1 ~batchable:true ~key:(key 4 5) "b";
  C.add c ~now_ns:2 ~batchable:true ~key:(key 4 5) "c";
  ignore (C.ready c ~now_ns:100);
  Alcotest.(check int) "one batch counted" 1
    (Xpose_obs.Metrics.counter_value batches - b0);
  Alcotest.(check int) "three jobs counted" 3
    (Xpose_obs.Metrics.counter_value batched - j0)

let test_invalid () =
  Alcotest.check_raises "max_batch >= 1"
    (Invalid_argument "Coalescer.create: max_batch must be >= 1") (fun () ->
      ignore (C.create ~max_batch:0 ()));
  Alcotest.check_raises "window_ns >= 0"
    (Invalid_argument "Coalescer.create: window_ns must be >= 0") (fun () ->
      ignore (C.create ~window_ns:(-1) ()))

let tests =
  [
    Alcotest.test_case "window grouping" `Quick test_window_grouping;
    Alcotest.test_case "distinct shapes stay separate" `Quick
      test_distinct_shapes_distinct_groups;
    Alcotest.test_case "max_batch closes a group" `Quick
      test_max_batch_closes_group;
    Alcotest.test_case "non-batchable jobs are immediate" `Quick
      test_non_batchable_ready_at_once;
    Alcotest.test_case "priority order in ready" `Quick
      test_priority_order_in_ready;
    Alcotest.test_case "flush" `Quick test_flush;
    Alcotest.test_case "next_deadline_ns" `Quick test_next_deadline;
    Alcotest.test_case "dispatch metrics" `Quick test_metrics_counters;
    Alcotest.test_case "invalid args" `Quick test_invalid;
  ]
