(* Codec tests: the QCheck round-trip law (encode then decode is the
   identity), the truncated / oversized error paths, and a seeded
   corruption fuzz asserting the decoders are total — hostile bytes
   come back as [Error], never as an exception. *)

module P = Xpose_server.Protocol
module S = Xpose_core.Storage.Float64

let buf_of_array a =
  let b = S.create (Array.length a) in
  Array.iteri (fun i v -> S.set b i v) a;
  b

let iota_buf len = buf_of_array (Array.init len float_of_int)

(* -- generators ------------------------------------------------------- *)

let gen_special_float =
  QCheck2.Gen.oneofl
    [ nan; infinity; neg_infinity; -0.0; 0.0; Float.max_float; epsilon_float ]

let gen_elt =
  QCheck2.Gen.(oneof [ float; gen_special_float; map float_of_int small_int ])

let gen_payload mn = QCheck2.Gen.array_repeat mn gen_elt

let gen_id = QCheck2.Gen.int_range 0 0xffff_ffff
let gen_priority = QCheck2.Gen.oneofl [ P.High; P.Normal; P.Low ]

let gen_tenant =
  QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 12))

let gen_transpose =
  QCheck2.Gen.(
    let* id = gen_id in
    let* trace = gen_id in
    let* tenant = gen_tenant in
    let* priority = gen_priority in
    let* m = int_range 1 9 in
    let* n = int_range 1 9 in
    let* payload = gen_payload (m * n) in
    return
      (P.Transpose
         { id; trace; tenant; priority; m; n; payload = buf_of_array payload }))

let gen_request =
  QCheck2.Gen.(
    frequency
      [
        (4, gen_transpose);
        (1, map (fun id -> P.Stats { id }) gen_id);
        (1, map (fun id -> P.Stats_text { id }) gen_id);
      ])

let gen_response =
  QCheck2.Gen.(
    let* id = gen_id in
    oneof
      [
        (let* m = int_range 1 9 in
         let* n = int_range 1 9 in
         let* payload = gen_payload (m * n) in
         return (P.Result { id; m; n; payload = buf_of_array payload }));
        (let* reason = oneofl [ P.Queue_full; P.Budget_exhausted ] in
         let* queued_jobs = int_range 0 10_000 in
         let* queued_bytes = int_range 0 0xffff_ffff in
         return (P.Busy { id; reason; queued_jobs; queued_bytes }));
        (let* message = string_size ~gen:printable (int_range 0 60) in
         return (P.Error_reply { id; message }));
        (let* json = string_size ~gen:printable (int_range 0 200) in
         return (P.Stats_reply { id; json }));
      ])

(* -- round trip ------------------------------------------------------- *)

let prop_request_roundtrip =
  QCheck2.Test.make ~name:"decode_request (encode_request r) = Ok r" ~count:500
    gen_request (fun req ->
      match P.decode_request (P.encode_request req) with
      | Ok req' -> P.equal_request req req'
      | Error e -> QCheck2.Test.fail_reportf "%s" (P.error_to_string e))

let prop_response_roundtrip =
  QCheck2.Test.make ~name:"decode_response (encode_response r) = Ok r"
    ~count:500 gen_response (fun resp ->
      match P.decode_response (P.encode_response resp) with
      | Ok resp' -> P.equal_response resp resp'
      | Error e -> QCheck2.Test.fail_reportf "%s" (P.error_to_string e))

(* -- truncation ------------------------------------------------------- *)

(* Every strict prefix of a well-formed body must decode to
   [Error `Truncated]: field lengths inside a genuine encoding are
   consistent, so the only way a prefix fails is by running out of
   bytes. *)
let prop_request_prefix_truncated =
  QCheck2.Test.make ~name:"strict prefixes decode to `Truncated" ~count:100
    gen_request (fun req ->
      let body = P.encode_request req in
      let ok = ref true in
      for len = 0 to Bytes.length body - 1 do
        match P.decode_request (Bytes.sub body 0 len) with
        | Error `Truncated -> ()
        | Ok _ | Error _ -> ok := false
      done;
      !ok)

let test_response_prefix_truncated () =
  let responses =
    [
      P.Result { id = 7; m = 3; n = 4; payload = iota_buf 12 };
      P.Busy
        { id = 8; reason = P.Queue_full; queued_jobs = 3; queued_bytes = 96 };
      P.Error_reply { id = 9; message = "bad frame" };
      P.Stats_reply { id = 10; json = "{}" };
    ]
  in
  List.iter
    (fun resp ->
      let body = P.encode_response resp in
      for len = 0 to Bytes.length body - 1 do
        match P.decode_response (Bytes.sub body 0 len) with
        | Error `Truncated -> ()
        | Ok _ ->
            Alcotest.failf "prefix of length %d decoded successfully" len
        | Error e ->
            Alcotest.failf "prefix of length %d: expected `Truncated, got %s"
              len (P.error_to_string e)
      done)
    responses

let test_trailing_bytes () =
  let body = P.encode_request (P.Stats { id = 3 }) in
  let padded = Bytes.cat body (Bytes.make 1 '\x00') in
  match P.decode_request padded with
  | Error (`Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "trailing bytes accepted"
  | Error e -> Alcotest.failf "expected `Corrupt, got %s" (P.error_to_string e)

(* -- oversized -------------------------------------------------------- *)

let test_oversized_payload () =
  (* A hand-built header announcing a 65536 x 65536 payload (32 GiB)
     with no payload bytes behind it: the decoder must refuse before
     allocating. *)
  let b = Buffer.create 32 in
  Buffer.add_char b '\x01';
  (* id *)
  Buffer.add_string b "\x00\x00\x00\x2a";
  (* priority = normal *)
  Buffer.add_char b '\x01';
  (* trace = 0 *)
  Buffer.add_string b "\x00\x00\x00\x00";
  (* tenant = "" *)
  Buffer.add_string b "\x00\x00";
  (* m = n = 65536 *)
  Buffer.add_string b "\x00\x01\x00\x00";
  Buffer.add_string b "\x00\x01\x00\x00";
  match P.decode_request (Buffer.to_bytes b) with
  | Error (`Oversized bytes) ->
      Alcotest.(check int) "announced size" (65536 * 65536 * 8) bytes
  | Ok _ -> Alcotest.fail "oversized payload accepted"
  | Error e ->
      Alcotest.failf "expected `Oversized, got %s" (P.error_to_string e)

let test_oversized_overflowing_shape () =
  (* m = n = 2^31: m * n * 8 = 2^65 wraps to 0 on 64-bit ints, which
     would sail past a multiply-then-compare guard. The decoder must
     still answer [`Oversized] — and on both sides, since responses
     carry the same shape + payload layout. *)
  let request =
    let b = Buffer.create 32 in
    Buffer.add_char b '\x01';
    (* id *)
    Buffer.add_string b "\x00\x00\x00\x2a";
    (* priority = normal *)
    Buffer.add_char b '\x01';
    (* trace = 0 *)
    Buffer.add_string b "\x00\x00\x00\x00";
    (* tenant = "" *)
    Buffer.add_string b "\x00\x00";
    (* m = n = 0x80000000 *)
    Buffer.add_string b "\x80\x00\x00\x00";
    Buffer.add_string b "\x80\x00\x00\x00";
    Buffer.to_bytes b
  and response =
    let b = Buffer.create 32 in
    Buffer.add_char b '\x81';
    Buffer.add_string b "\x00\x00\x00\x2a";
    Buffer.add_string b "\x80\x00\x00\x00";
    Buffer.add_string b "\x80\x00\x00\x00";
    Buffer.to_bytes b
  in
  (match P.decode_request request with
  | Error (`Oversized _) -> ()
  | Ok _ -> Alcotest.fail "2^31 x 2^31 request accepted"
  | Error e ->
      Alcotest.failf "expected `Oversized, got %s" (P.error_to_string e)
  | exception e ->
      Alcotest.failf "decode_request raised %s" (Printexc.to_string e));
  match P.decode_response response with
  | Error (`Oversized _) -> ()
  | Ok _ -> Alcotest.fail "2^31 x 2^31 response accepted"
  | Error e ->
      Alcotest.failf "expected `Oversized, got %s" (P.error_to_string e)
  | exception e ->
      Alcotest.failf "decode_response raised %s" (Printexc.to_string e)

let test_oversized_respects_max_bytes () =
  let req =
    P.Transpose
      {
        id = 1;
        trace = 0;
        tenant = "t";
        priority = P.Normal;
        m = 8;
        n = 8;
        payload = iota_buf 64;
      }
  in
  let body = P.encode_request req in
  (match P.decode_request ~max_bytes:(64 * 8) body with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "payload at the cap rejected: %s" (P.error_to_string e));
  match P.decode_request ~max_bytes:((64 * 8) - 1) body with
  | Error (`Oversized _) -> ()
  | Ok _ -> Alcotest.fail "payload over the cap accepted"
  | Error e ->
      Alcotest.failf "expected `Oversized, got %s" (P.error_to_string e)

(* -- structural corruption -------------------------------------------- *)

let test_bad_tag () =
  (match P.decode_request (Bytes.of_string "\x7f\x00\x00\x00\x01") with
  | Error (`Bad_tag 0x7f) -> ()
  | _ -> Alcotest.fail "unknown request tag not reported");
  match P.decode_response (Bytes.of_string "\xff\x00\x00\x00\x01") with
  | Error (`Bad_tag 0xff) -> ()
  | _ -> Alcotest.fail "unknown response tag not reported"

let test_empty_body () =
  (match P.decode_request Bytes.empty with
  | Error `Truncated -> ()
  | _ -> Alcotest.fail "empty request body must be `Truncated");
  match P.decode_response Bytes.empty with
  | Error `Truncated -> ()
  | _ -> Alcotest.fail "empty response body must be `Truncated"

let test_bad_priority_and_shape () =
  let body = P.encode_request (P.Transpose
    { id = 1; trace = 0; tenant = ""; priority = P.Low; m = 2; n = 2;
      payload = iota_buf 4 }) in
  (* priority byte lives right after tag + id *)
  let bad_priority = Bytes.copy body in
  Bytes.set bad_priority 5 '\x09';
  (match P.decode_request bad_priority with
  | Error (`Corrupt _) -> ()
  | _ -> Alcotest.fail "priority byte 9 accepted");
  (* zero rows: m field sits after
     tag(1) id(4) priority(1) trace(4) tenant(2) *)
  let bad_shape = Bytes.copy body in
  Bytes.blit_string "\x00\x00\x00\x00" 0 bad_shape 12 4;
  match P.decode_request bad_shape with
  | Error (`Corrupt _) -> ()
  | _ -> Alcotest.fail "m = 0 accepted"

(* -- seeded corruption fuzz ------------------------------------------- *)

(* Flip bytes of valid encodings at random: the decoders must return
   [Ok] or [Error], never raise. The seed is fixed so a failure
   reproduces. *)
let test_corruption_total () =
  let rng = Random.State.make [| 0x5eed; 42 |] in
  let requests =
    [
      P.encode_request
        (P.Transpose
           {
             id = 123;
             trace = 0xdead_beef;
             tenant = "acme";
             priority = P.High;
             m = 5;
             n = 7;
             payload = iota_buf 35;
           });
      P.encode_request (P.Stats { id = 99 });
      P.encode_request (P.Stats_text { id = 100 });
    ]
  and responses =
    [
      P.encode_response (P.Result { id = 123; m = 7; n = 5; payload = iota_buf 35 });
      P.encode_response
        (P.Busy
           { id = 4; reason = P.Budget_exhausted; queued_jobs = 1;
             queued_bytes = 280 });
      P.encode_response (P.Error_reply { id = 5; message = "nope" });
      P.encode_response (P.Stats_reply { id = 6; json = "{\"a\": 1}" });
    ]
  in
  let corrupt body =
    let b = Bytes.copy body in
    let flips = 1 + Random.State.int rng 4 in
    for _ = 1 to flips do
      let i = Random.State.int rng (Bytes.length b) in
      Bytes.set b i (Char.chr (Random.State.int rng 256))
    done;
    b
  in
  let trials = 2000 in
  let errors = ref 0 in
  for _ = 1 to trials do
    List.iter
      (fun body ->
        match P.decode_request (corrupt body) with
        | Ok _ -> ()
        | Error _ -> incr errors
        | exception e ->
            Alcotest.failf "decode_request raised %s" (Printexc.to_string e))
      requests;
    List.iter
      (fun body ->
        match P.decode_response (corrupt body) with
        | Ok _ -> ()
        | Error _ -> incr errors
        | exception e ->
            Alcotest.failf "decode_response raised %s" (Printexc.to_string e))
      responses
  done;
  (* Sanity: the fuzz actually exercises the error paths. *)
  Alcotest.(check bool) "corruption was detected at least once" true
    (!errors > 0)

(* -- framing over a real fd ------------------------------------------- *)

let with_pipe f =
  let rd, wr = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close rd with Unix.Unix_error _ -> ());
      try Unix.close wr with Unix.Unix_error _ -> ())
    (fun () -> f rd wr)

let test_frame_roundtrip () =
  with_pipe (fun rd wr ->
      let body = P.encode_request (P.Stats { id = 17 }) in
      P.write_frame wr body;
      match P.read_frame rd with
      | Ok body' ->
          Alcotest.(check bool) "frame body survives" true (Bytes.equal body body')
      | Error _ -> Alcotest.fail "frame did not round-trip")

let test_frame_eof_and_truncation () =
  with_pipe (fun rd wr ->
      Unix.close wr;
      match P.read_frame rd with
      | Error `Eof -> ()
      | _ -> Alcotest.fail "close at frame boundary must be `Eof");
  with_pipe (fun rd wr ->
      (* a header promising 100 bytes, then only 3 *)
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 100l;
      ignore (Unix.write wr header 0 4);
      ignore (Unix.write wr (Bytes.of_string "abc") 0 3);
      Unix.close wr;
      match P.read_frame rd with
      | Error `Truncated -> ()
      | _ -> Alcotest.fail "close mid-frame must be `Truncated")

let test_frame_oversized () =
  with_pipe (fun rd wr ->
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 0x7fff_ffffl;
      ignore (Unix.write wr header 0 4);
      match P.read_frame rd with
      | Error (`Oversized n) -> Alcotest.(check int) "announced" 0x7fff_ffff n
      | _ -> Alcotest.fail "giant header must be `Oversized")

let tests =
  [
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_response_roundtrip;
    QCheck_alcotest.to_alcotest prop_request_prefix_truncated;
    Alcotest.test_case "response prefixes truncate" `Quick
      test_response_prefix_truncated;
    Alcotest.test_case "trailing bytes rejected" `Quick test_trailing_bytes;
    Alcotest.test_case "oversized payload refused" `Quick test_oversized_payload;
    Alcotest.test_case "overflowing shape refused" `Quick
      test_oversized_overflowing_shape;
    Alcotest.test_case "max_bytes is respected" `Quick
      test_oversized_respects_max_bytes;
    Alcotest.test_case "bad tag" `Quick test_bad_tag;
    Alcotest.test_case "empty body" `Quick test_empty_body;
    Alcotest.test_case "bad priority / shape" `Quick test_bad_priority_and_shape;
    Alcotest.test_case "seeded corruption never raises" `Quick
      test_corruption_total;
    Alcotest.test_case "frame round-trip over fd" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame EOF and truncation" `Quick
      test_frame_eof_and_truncation;
    Alcotest.test_case "frame oversized header" `Quick test_frame_oversized;
  ]
