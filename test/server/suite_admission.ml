module P = Xpose_server.Protocol
module A = Xpose_server.Admission

let kib n = n * 1024

let check_admit name expected got =
  let pp = function
    | A.Admit A.Fused -> "Admit Fused"
    | A.Admit (A.Ooc { window_bytes }) ->
        Printf.sprintf "Admit (Ooc %d)" window_bytes
    | A.Reject P.Queue_full -> "Reject Queue_full"
    | A.Reject P.Budget_exhausted -> "Reject Budget_exhausted"
  in
  Alcotest.(check string) name (pp expected) (pp got)

let test_routing_by_quota () =
  let a =
    A.create ~budget_bytes:(kib 1024) ~default_quota_bytes:(kib 64)
      ~default_window_bytes:(kib 16) ()
  in
  check_admit "small job runs fused" (A.Admit A.Fused)
    (A.admit a ~tenant:"t" ~bytes:(kib 64));
  check_admit "over-quota job is demoted to ooc"
    (A.Admit (A.Ooc { window_bytes = kib 16 }))
    (A.admit a ~tenant:"t" ~bytes:(kib 64 + 1));
  Alcotest.(check int) "both charged" ((kib 128) + 1) (A.in_flight_bytes a);
  A.release a ~bytes:(kib 64);
  A.release a ~bytes:(kib 64 + 1);
  Alcotest.(check int) "released" 0 (A.in_flight_bytes a)

let test_budget_reject () =
  let a =
    A.create ~budget_bytes:(kib 100) ~default_quota_bytes:(kib 100)
      ~default_window_bytes:(kib 16) ()
  in
  check_admit "fills the budget" (A.Admit A.Fused)
    (A.admit a ~tenant:"t" ~bytes:(kib 70));
  check_admit "next job over budget is refused"
    (A.Reject P.Budget_exhausted)
    (A.admit a ~tenant:"t" ~bytes:(kib 31));
  Alcotest.(check int) "reject does not charge" (kib 70)
    (A.in_flight_bytes a);
  check_admit "a job at the remaining budget fits" (A.Admit A.Fused)
    (A.admit a ~tenant:"t" ~bytes:(kib 30));
  A.release a ~bytes:(kib 70);
  check_admit "release reopens the budget" (A.Admit A.Fused)
    (A.admit a ~tenant:"t" ~bytes:(kib 70));
  A.release a ~bytes:(kib 70);
  A.release a ~bytes:(kib 30)

let test_single_oversized_job () =
  let a = A.create ~budget_bytes:(kib 8) () in
  check_admit "a job bigger than the whole budget is always refused"
    (A.Reject P.Budget_exhausted)
    (A.admit a ~tenant:"t" ~bytes:(kib 8 + 1))

let test_tenant_overrides () =
  let a =
    A.create ~budget_bytes:(kib 1024) ~default_quota_bytes:(kib 64)
      ~default_window_bytes:(kib 32)
      ~tenants:
        [ { A.name = "small"; quota_bytes = kib 1; window_bytes = kib 4 } ]
      ()
  in
  check_admit "override tenant has a 1 KiB quota"
    (A.Admit (A.Ooc { window_bytes = kib 4 }))
    (A.admit a ~tenant:"small" ~bytes:(kib 2));
  check_admit "other tenants keep the default quota" (A.Admit A.Fused)
    (A.admit a ~tenant:"other" ~bytes:(kib 2));
  let tn = A.tenant_of a "small" in
  Alcotest.(check int) "tenant_of reports the override" (kib 1) tn.A.quota_bytes;
  let dflt = A.tenant_of a "unknown" in
  Alcotest.(check int) "unknown tenants get defaults" (kib 64)
    dflt.A.quota_bytes;
  Alcotest.(check int) "and the default window" (kib 32) dflt.A.window_bytes;
  A.release a ~bytes:(kib 2);
  A.release a ~bytes:(kib 2)

let test_invalid () =
  Alcotest.check_raises "budget >= 1"
    (Invalid_argument "Admission.create: budget_bytes must be >= 1") (fun () ->
      ignore (A.create ~budget_bytes:0 ()));
  Alcotest.check_raises "quota >= 1"
    (Invalid_argument "Admission.create: default_quota_bytes must be >= 1")
    (fun () -> ignore (A.create ~default_quota_bytes:0 ()))

let test_concurrent_admit_release () =
  (* Hammer the budget from several domains; the invariant is that
     in-flight bytes return to zero and never go negative (release
     asserts internally). *)
  let a = A.create ~budget_bytes:(kib 64) ~default_quota_bytes:(kib 64) () in
  let admitted = Atomic.make 0 and rejected = Atomic.make 0 in
  let worker () =
    for _ = 1 to 500 do
      match A.admit a ~tenant:"t" ~bytes:(kib 16) with
      | A.Admit _ ->
          Atomic.incr admitted;
          Domain.cpu_relax ();
          A.release a ~bytes:(kib 16)
      | A.Reject _ -> Atomic.incr rejected
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  Alcotest.(check int) "everything admitted was released" 0
    (A.in_flight_bytes a);
  Alcotest.(check int) "every attempt was decided" 2000
    (Atomic.get admitted + Atomic.get rejected);
  Alcotest.(check bool) "some admissions went through" true
    (Atomic.get admitted > 0)

let tests =
  [
    Alcotest.test_case "routing by tenant quota" `Quick test_routing_by_quota;
    Alcotest.test_case "budget rejection and release" `Quick test_budget_reject;
    Alcotest.test_case "job bigger than the budget" `Quick
      test_single_oversized_job;
    Alcotest.test_case "tenant overrides" `Quick test_tenant_overrides;
    Alcotest.test_case "invalid args" `Quick test_invalid;
    Alcotest.test_case "concurrent admit/release" `Quick
      test_concurrent_admit_release;
  ]
