let () =
  Alcotest.run "xpose_server"
    [
      ("protocol", Suite_protocol.tests);
      ("job_queue", Suite_queue.tests);
      ("admission", Suite_admission.tests);
      ("coalescer", Suite_coalescer.tests);
      ("server", Suite_server.tests);
    ]
